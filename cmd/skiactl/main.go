// Command skiactl drives a skiaserve sweep service: it submits N jobs
// over C concurrent clients, retries submissions on backpressure
// (429/5xx) with jittered exponential backoff, consumes each job's
// NDJSON result stream to its final manifest, and reports client-side
// latency percentiles (p50/p90/p99/max). With -out it aggregates the
// returned report envelopes into a directory in the same
// manifest.json format cmd/skiaexp -out writes, so cmd/skiacmp and
// other downstream tooling read service results and batch results
// identically.
//
// Usage:
//
//	skiactl -addr http://127.0.0.1:8344 -exp table1 -n 100 -c 8
//	skiactl -addr $URL -exp fig14 -n 32 -c 32 \
//	    -benchmarks noop,voter -warmup 20000 -measure 100000 \
//	    -out results/ -journal streams.ndjson -max-p99 60s
//
// Exit status is nonzero if any job fails (or is lost: every accepted
// job must deliver exactly one manifest) or the -max-p99 gate is
// exceeded — the contract the CI service smoke job relies on.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
)

// jobOutcome is one journal row: what happened to one submitted job,
// written as NDJSON for CI artifacts.
type jobOutcome struct {
	Seq            int     `json:"seq"`
	JobID          string  `json:"job_id,omitempty"`
	Experiment     string  `json:"experiment"`
	Status         string  `json:"status"`
	Rows           int     `json:"rows"`
	LatencySeconds float64 `json:"latency_seconds"`
	// QueueSeconds and RunSeconds are the server-reported split of the
	// job's life (manifest queue_seconds/run_seconds): shard-queue wait
	// versus simulation time. Latency regressions attribute to one or
	// the other.
	QueueSeconds float64 `json:"queue_seconds,omitempty"`
	RunSeconds   float64 `json:"run_seconds,omitempty"`
	TraceID      string  `json:"trace_id,omitempty"`
	// SpecHash is the server-computed canonical spec hash
	// (internal/store): failed and canceled jobs journal it too, so an
	// outcome row can be joined against the run-history archive even
	// when no report was produced. Cached marks results served from the
	// archive rather than simulated.
	SpecHash string `json:"spec_hash,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
	Error    string `json:"error,omitempty"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8344", "skiaserve base URL")
		exp      = flag.String("exp", "table1", "experiment id(s), comma-separated; jobs round-robin across them")
		n        = flag.Int("n", 1, "total jobs to submit")
		conc     = flag.Int("c", 1, "concurrent clients")
		warmup   = flag.Uint64("warmup", 0, "warmup instructions per run (0 = default)")
		measure  = flag.Uint64("measure", 0, "measured instructions per run (0 = default)")
		benches  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: full suite)")
		interval = flag.Uint64("intervals", 0, "collect interval metrics every N retired instructions (0 = off)")
		attrib   = flag.Bool("attrib", false, "enable per-cause miss attribution")
		timeout  = flag.Float64("job-timeout", 0, "per-job timeout_seconds (0 = server default)")
		outDir   = flag.String("out", "", "aggregate report envelopes + manifest.json into this directory (skiaexp -out format)")
		journal  = flag.String("journal", "", "append one NDJSON outcome row per job to this file")
		maxP99   = flag.Duration("max-p99", 0, "fail if client-side p99 latency exceeds this (0 = no gate)")
		retries  = flag.Int("retries", 10, "max submission attempts per job")
		seed     = flag.Int64("seed", 1, "backoff jitter seed (fixed seeds reproduce schedules)")
	)
	flag.Parse()
	if err := run(*addr, strings.Split(*exp, ","), *n, *conc, specOpts{
		warmup: *warmup, measure: *measure, benches: *benches,
		interval: *interval, attrib: *attrib, timeout: *timeout,
	}, *outDir, *journal, *maxP99, *retries, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "skiactl: %v\n", err)
		os.Exit(1)
	}
}

// specOpts carries the per-job spec knobs.
type specOpts struct {
	warmup, measure uint64
	benches         string
	interval        uint64
	attrib          bool
	timeout         float64
}

// spec builds the JobSpec for one experiment id.
func (o specOpts) spec(exp string) serve.JobSpec {
	s := serve.JobSpec{
		SchemaVersion: experiments.SchemaVersion,
		Experiment:    exp,
		Meta: experiments.RunMeta{
			WarmupInstructions:  o.warmup,
			MeasureInstructions: o.measure,
		},
		Interval:       o.interval,
		Attrib:         o.attrib,
		TimeoutSeconds: o.timeout,
	}
	if o.benches != "" {
		for _, b := range strings.Split(o.benches, ",") {
			s.Meta.Benchmarks = append(s.Meta.Benchmarks, experiments.BenchmarkRef{Name: b})
		}
	}
	return s
}

func run(addr string, exps []string, n, conc int, opts specOpts, outDir, journal string, maxP99 time.Duration, retries int, seed int64) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	client := serve.NewClient(addr, seed)
	client.MaxAttempts = retries

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}

	results := make([]result, n)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				e := exps[i%len(exps)]
				t0 := time.Now()
				res, err := client.RunJob(ctx, opts.spec(e))
				lat := time.Since(t0)
				out := jobOutcome{Seq: i, Experiment: e, LatencySeconds: lat.Seconds()}
				if res != nil && res.Status != nil {
					out.JobID = res.Status.JobID
					// The submit ack already carries trace_id and
					// spec_hash, so jobs that die before a manifest
					// streams (timeouts, cancels racing the queue) still
					// journal both.
					out.TraceID = res.Status.TraceID
					out.SpecHash = res.Status.SpecHash
				}
				if res != nil && res.Manifest != nil {
					out.QueueSeconds = res.Manifest.QueueSeconds
					out.RunSeconds = res.Manifest.RunSeconds
					out.TraceID = res.Manifest.TraceID
					out.SpecHash = res.Manifest.SpecHash
					out.Cached = res.Manifest.Cached
				}
				switch {
				case err != nil && res != nil && res.Manifest != nil:
					out.Status = res.Manifest.Status
					out.Error = res.Manifest.Error
				case err != nil:
					out.Status = "lost"
					out.Error = err.Error()
				default:
					out.Status = res.Manifest.Status
					out.Rows = res.Manifest.Rows
					results[i].report = res.Report
				}
				results[i].outcome = out
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return ctx.Err()
		}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	// Reconcile: count outcomes, collect latencies, detect lost or
	// duplicated jobs (every accepted job must report exactly one
	// manifest with a unique job ID).
	var lats, queueLats, runLats []time.Duration
	counts := map[string]int{}
	ids := map[string]int{}
	var failures []string
	for _, r := range results {
		counts[r.outcome.Status]++
		lats = append(lats, time.Duration(r.outcome.LatencySeconds*float64(time.Second)))
		queueLats = append(queueLats, time.Duration(r.outcome.QueueSeconds*float64(time.Second)))
		runLats = append(runLats, time.Duration(r.outcome.RunSeconds*float64(time.Second)))
		if r.outcome.JobID != "" {
			ids[r.outcome.JobID]++
		}
		if r.outcome.Status != serve.StatusDone {
			failures = append(failures, fmt.Sprintf("job %d (%s): %s: %s",
				r.outcome.Seq, r.outcome.Experiment, r.outcome.Status, r.outcome.Error))
		}
	}
	dups := 0
	//skia:detmap-ok only the count of duplicated IDs is used; iteration order is irrelevant
	for _, c := range ids {
		if c > 1 {
			dups += c - 1
		}
	}

	if journal != "" {
		if err := writeJournal(journal, results); err != nil {
			return err
		}
	}
	if outDir != "" {
		if err := writeAggregate(outDir, results, elapsed); err != nil {
			return err
		}
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	sort.Slice(queueLats, func(i, j int) bool { return queueLats[i] < queueLats[j] })
	sort.Slice(runLats, func(i, j int) bool { return runLats[i] < runLats[j] })
	fmt.Printf("%d jobs in %s (%.1f jobs/s), %d concurrent clients\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), conc)
	fmt.Printf("status: done=%d failed=%d canceled=%d lost=%d duplicated=%d\n",
		counts[serve.StatusDone], counts[serve.StatusFailed], counts[serve.StatusCanceled],
		counts["lost"], dups)
	p50, p90, p99 := percentile(lats, 0.50), percentile(lats, 0.90), percentile(lats, 0.99)
	queueP50, queueP99 := percentile(queueLats, 0.50), percentile(queueLats, 0.99)
	runP50, runP99 := percentile(runLats, 0.50), percentile(runLats, 0.99)
	fmt.Printf("latency (total): p50=%s p90=%s p99=%s max=%s\n",
		p50.Round(time.Microsecond), p90.Round(time.Microsecond),
		p99.Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	fmt.Printf("latency (queue wait): p50=%s p99=%s\n",
		queueP50.Round(time.Microsecond), queueP99.Round(time.Microsecond))
	fmt.Printf("latency (run time):   p50=%s p99=%s\n",
		runP50.Round(time.Microsecond), runP99.Round(time.Microsecond))

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "skiactl: "+f)
		}
		return fmt.Errorf("%d of %d jobs did not complete", len(failures), n)
	}
	if dups > 0 {
		return fmt.Errorf("%d duplicated job IDs", dups)
	}
	if maxP99 > 0 && p99 > maxP99 {
		// Name the component that blew the budget, so the gate failure
		// says whether to add workers (queue wait) or shrink the jobs
		// (run time).
		component := "queue wait"
		if runP99 >= queueP99 {
			component = "run time"
		}
		return fmt.Errorf("p99 latency %s exceeds gate %s: %s dominates (queue-wait p99 %s, run-time p99 %s)",
			p99, maxP99, component, queueP99.Round(time.Microsecond), runP99.Round(time.Microsecond))
	}
	return nil
}

// result pairs one job's outcome with its report envelope (nil when
// the job did not complete).
type result struct {
	outcome jobOutcome
	report  json.RawMessage
}

// writeJournal writes one NDJSON outcome row per job — the raw
// material the CI smoke job uploads on failure.
func writeJournal(path string, results []result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, r := range results {
		if err := enc.Encode(r.outcome); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// writeAggregate writes each job's report envelope as
// DIR/<job-id>.json plus a DIR/manifest.json index in the exact
// format cmd/skiaexp -out produces, so skiacmp diffs service results
// against batch results directly.
func writeAggregate(dir string, results []result, elapsed time.Duration) error {
	mf := experiments.Manifest{
		SchemaVersion:    experiments.SchemaVersion,
		GeneratedAt:      time.Now().UTC().Format(time.RFC3339),
		Args:             os.Args[1:],
		TotalWallSeconds: elapsed.Seconds(),
	}
	for _, r := range results {
		if r.report == nil {
			continue
		}
		rep, err := experiments.DecodeReport(r.report)
		if err != nil {
			return fmt.Errorf("job %s: %w", r.outcome.JobID, err)
		}
		file := r.outcome.JobID + ".json"
		if err := os.WriteFile(filepath.Join(dir, file), append(r.report, '\n'), 0o644); err != nil {
			return err
		}
		mf.Experiments = append(mf.Experiments, experiments.ManifestEntry{
			ID:          r.outcome.JobID,
			Title:       rep.Title,
			File:        file,
			WallSeconds: r.outcome.LatencySeconds,
		})
	}
	data, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	fmt.Printf("wrote %s (%d reports)\n", filepath.Join(dir, "manifest.json"), len(mf.Experiments))
	return nil
}

// percentile returns the pth percentile of sorted latencies
// (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
