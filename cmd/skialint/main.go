// Command skialint runs the simulator's invariant analyzers (detmap,
// nondet, noalloc, conserve, statlock) over the module and exits
// non-zero if any finding survives. It is the static half of the
// determinism/conservation story: the runtime half is the
// skiainvariants build tag.
//
// Usage:
//
//	skialint [-root dir] [-run a,b] [-list] [packages]
//
// With no package arguments (or "./..."), the whole module is
// analyzed. Explicit directory arguments (relative to the module
// root) restrict per-package analyzers to those packages; testdata
// fixture directories are reachable only this way.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	root := flag.String("root", ".", "module root (directory containing go.mod)")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*run, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "skialint: unknown analyzer %q (use -list)\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	var dirs []string
	for _, arg := range flag.Args() {
		if arg == "./..." || arg == "..." {
			continue // whole module, the default
		}
		dirs = append(dirs, strings.TrimPrefix(arg, "./"))
	}

	prog, err := lint.Load(*root, dirs...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skialint:", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skialint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "skialint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
