// Command skialint runs the simulator's invariant analyzers (detmap,
// nondet, noalloc, conserve, statlock, clonecomplete, ctxwait,
// atomicmix, hookpure, directive) over the module and exits non-zero
// if any finding survives. It is the static half of the
// determinism/conservation story: the runtime half is the
// skiainvariants build tag.
//
// Usage:
//
//	skialint [-root dir] [-run a,b] [-list] [-json file] [packages]
//
// With no package arguments (or "./..."), the whole module is
// analyzed. Explicit directory arguments (relative to the module
// root) restrict per-package analyzers to those packages; testdata
// fixture directories are reachable only this way.
//
// -json writes the findings to the named file ("-" for stdout) as a
// JSON array of {file, line, col, analyzer, message, directive}
// objects — directive being the //skia: suppression that can waive
// that analyzer's findings — alongside the human output, so one run
// both gates CI and produces the machine-readable artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

// jsonDiagnostic is the machine-readable finding shape the -json
// artifact carries.
type jsonDiagnostic struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Analyzer  string `json:"analyzer"`
	Message   string `json:"message"`
	Directive string `json:"directive,omitempty"`
}

func main() {
	root := flag.String("root", ".", "module root (directory containing go.mod)")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.String("json", "", "write findings as JSON to this file (\"-\" for stdout)")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*run, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "skialint: unknown analyzer %q (use -list)\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	var dirs []string
	for _, arg := range flag.Args() {
		if arg == "./..." || arg == "..." {
			continue // whole module, the default
		}
		dirs = append(dirs, strings.TrimPrefix(arg, "./"))
	}

	prog, err := lint.Load(*root, dirs...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skialint:", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skialint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, diags, analyzers); err != nil {
			fmt.Fprintln(os.Stderr, "skialint:", err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "skialint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// writeJSON renders the diagnostics as the -json artifact. An empty
// finding list still writes `[]`, so CI always has an artifact to
// upload.
func writeJSON(path string, diags []lint.Diagnostic, analyzers []*lint.Analyzer) error {
	directives := make(map[string]string, len(analyzers))
	for _, a := range analyzers {
		directives[a.Name] = a.Directive
	}
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:      d.Pos.Filename,
			Line:      d.Pos.Line,
			Col:       d.Pos.Column,
			Analyzer:  d.Analyzer,
			Message:   d.Message,
			Directive: directives[d.Analyzer],
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
