// Command skiaserve runs the sweep service: simulation-as-a-service
// over the experiment catalog. It accepts job specs (the report
// envelope's JSON vocabulary) on an HTTP job API, runs them on a
// sharded bounded-queue worker pool, and streams results back as
// NDJSON. See API.md for the full HTTP surface and a curl quickstart;
// cmd/skiactl is the matching load-generating client.
//
// Usage:
//
//	skiaserve                                  # listen on :8344
//	skiaserve -addr 127.0.0.1:0                # ephemeral port (printed)
//	skiaserve -shards 4 -workers 2 -queue 256  # 8 workers, 1024 queued
//	skiaserve -job-timeout 5m -grace 30s
//
// SIGINT/SIGTERM begin a graceful drain: /healthz flips to 503, new
// submissions are rejected retriably, queued jobs fail fast with a
// retriable error, and in-flight jobs get -grace to finish before
// their simulations are canceled mid-run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8344", "listen address (host:port; port 0 picks one)")
		shards  = flag.Int("shards", 1, "worker-pool shards (jobs join the shortest shard queue)")
		workers = flag.Int("workers", 1, "worker goroutines per shard")
		queue   = flag.Int("queue", 64, "bounded queue depth per shard (full queue => 429)")
		jobWorkers = flag.Int("job-workers", 1, "simulation concurrency inside one job")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "default per-job run timeout (0 = unbounded)")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 rejections")
		grace      = flag.Duration("grace", 30*time.Second, "shutdown grace period for in-flight jobs")
		verbose    = flag.Bool("v", false, "log job lifecycle events")
	)
	flag.Parse()

	cfg := serve.Config{
		Shards:         *shards,
		Workers:        *workers,
		QueueDepth:     *queue,
		JobWorkers:     *jobWorkers,
		DefaultTimeout: *jobTimeout,
		RetryAfter:     *retryAfter,
	}
	logger := log.New(os.Stderr, "skiaserve: ", log.LstdFlags|log.Lmicroseconds)
	if *verbose {
		cfg.Hooks.OnSubmit = func(id string) { logger.Printf("submit %s", id) }
		cfg.Hooks.OnFinish = func(id, status string) { logger.Printf("finish %s %s", id, status) }
		cfg.Hooks.OnReject = func(reason string) { logger.Printf("reject: %s", reason) }
	}
	srv := serve.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	// Machine-readable first line so harnesses (CI smoke, skiactl
	// wrappers) can scrape the bound address under -addr :0.
	fmt.Printf("skiaserve listening on %s\n", ln.Addr())
	logger.Printf("%d shard(s) x %d worker(s), queue %d/shard, job timeout %s",
		cfg.Shards, cfg.Workers, cfg.QueueDepth, *jobTimeout)

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Printf("received %s; draining (grace %s)", sig, *grace)
	case err := <-errc:
		logger.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain: %v", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	c := srv.Counters()
	logger.Printf("drained: %d completed, %d failed, %d canceled, %d rejected",
		c.Completed, c.Failed, c.Canceled, c.Rejected)
}
