// Command skiaserve runs the sweep service: simulation-as-a-service
// over the experiment catalog. It accepts job specs (the report
// envelope's JSON vocabulary) on an HTTP job API, runs them on a
// sharded bounded-queue worker pool, and streams results back as
// NDJSON. See API.md for the full HTTP surface and a curl quickstart;
// cmd/skiactl is the matching load-generating client and cmd/skiatop
// the live terminal dashboard over /metrics and /v1/jobs.
//
// Usage:
//
//	skiaserve                                  # listen on :8344
//	skiaserve -addr 127.0.0.1:0                # ephemeral port (printed)
//	skiaserve -shards 4 -workers 2 -queue 256  # 8 workers, 1024 queued
//	skiaserve -job-timeout 5m -grace 30s
//	skiaserve -log json -log-level debug       # structured job logs
//	skiaserve -archive runs/ -cache            # run-history archive + result cache
//
// Job lifecycle events (accept/start/finish/reject/drain) are logged
// structurally via log/slog with job-scoped attributes; -log selects
// text, json, or off, and -log-level debug additionally logs per-chunk
// simulation progress.
//
// SIGINT/SIGTERM begin a graceful drain: /healthz flips to 503, new
// submissions are rejected retriably, queued jobs fail fast with a
// retriable error, and in-flight jobs get -grace to finish before
// their simulations are canceled mid-run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

// gitDescribe best-effort identifies the tree serving results; archived
// records carry it so trajectories can be pinned to code versions.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	var (
		addr       = flag.String("addr", ":8344", "listen address (host:port; port 0 picks one)")
		shards     = flag.Int("shards", 1, "worker-pool shards (jobs join the shortest shard queue)")
		workers    = flag.Int("workers", 1, "worker goroutines per shard")
		queue      = flag.Int("queue", 64, "bounded queue depth per shard (full queue => 429)")
		jobWorkers = flag.Int("job-workers", 1, "simulation concurrency inside one job")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "default per-job run timeout (0 = unbounded)")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 rejections")
		grace      = flag.Duration("grace", 30*time.Second, "shutdown grace period for in-flight jobs")
		progressIv = flag.Duration("progress-interval", time.Second, "stream progress-frame rate limit (negative disables)")
		logFormat  = flag.String("log", "text", "job lifecycle log format: text, json, or off")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
		verbose    = flag.Bool("v", false, "shorthand for -log-level debug")
		archiveDir = flag.String("archive", "", "persist finished reports into this run-history archive and serve GET /v1/history")
		cache      = flag.Bool("cache", false, "serve byte-identical archived reports on spec-hash match instead of re-simulating (requires -archive)")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel, *verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skiaserve: %v\n", err)
		os.Exit(2)
	}
	if *cache && *archiveDir == "" {
		fmt.Fprintln(os.Stderr, "skiaserve: -cache requires -archive")
		os.Exit(2)
	}
	var archive *store.Archive
	if *archiveDir != "" {
		if archive, err = store.Open(*archiveDir); err != nil {
			fmt.Fprintf(os.Stderr, "skiaserve: %v\n", err)
			os.Exit(2)
		}
	}

	cfg := serve.Config{
		Shards:           *shards,
		Workers:          *workers,
		QueueDepth:       *queue,
		JobWorkers:       *jobWorkers,
		DefaultTimeout:   *jobTimeout,
		RetryAfter:       *retryAfter,
		ProgressInterval: *progressIv,
		Logger:           logger,
		Archive:          archive,
		Cache:            *cache,
		GitDescribe:      gitDescribe(),
	}
	if logger != nil && logger.Enabled(context.Background(), slog.LevelDebug) {
		// The lifecycle hooks duplicate the server's own Info-level
		// records but fire synchronously at the transition point, which
		// is the ordering debugging needs; progress is chatty (one
		// callback per 262,144 retired instructions per job). Both only
		// exist at debug level.
		cfg.Hooks.OnSubmit = func(id string) {
			logger.Debug("hook: job enqueued", "job_id", id)
		}
		cfg.Hooks.OnFinish = func(id, status string) {
			logger.Debug("hook: job finished", "job_id", id, "status", status)
		}
		cfg.Hooks.OnReject = func(reason string) {
			logger.Debug("hook: job rejected", "reason", reason)
		}
		cfg.Hooks.OnProgress = func(id string, done, planned uint64) {
			logger.Debug("job progress", "job_id", id, "retired", done, "planned", planned)
		}
	}
	srv := serve.New(cfg)

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "skiaserve: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Machine-readable first line so harnesses (CI smoke, skiactl
	// wrappers) can scrape the bound address under -addr :0.
	fmt.Printf("skiaserve listening on %s\n", ln.Addr())
	if logger != nil {
		logger.Info("serving",
			"addr", ln.Addr().String(), "shards", cfg.Shards, "workers", cfg.Workers,
			"queue_depth", cfg.QueueDepth, "job_timeout", jobTimeout.String())
	}

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		if logger != nil {
			logger.Info("signal received; draining", "signal", sig.String(), "grace", grace.String())
		}
	case err := <-errc:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && logger != nil {
		logger.Warn("drain", "err", err.Error())
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil && logger != nil {
		logger.Warn("http shutdown", "err", err.Error())
	}
	c := srv.Counters()
	if logger != nil {
		logger.Info("drained",
			"completed", c.Completed, "failed", c.Failed,
			"canceled", c.Canceled, "rejected", c.Rejected)
	}
}

// buildLogger assembles the slog.Logger the server's lifecycle records
// go to; nil (format "off") disables logging entirely.
func buildLogger(format, level string, verbose bool) (*slog.Logger, error) {
	if format == "off" {
		return nil, nil
	}
	var lv slog.Level
	if verbose {
		level = "debug"
	}
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log format %q (want text, json, or off)", format)
	}
}
