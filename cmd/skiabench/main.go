// Command skiabench records the simulator's performance trajectory:
// it runs the tier-1 hot-loop benchmarks with allocation reporting,
// measures end-to-end experiment throughput, and emits one versioned
// BENCH_*.json envelope per run so future changes diff performance the
// same way cmd/skiacmp diffs correctness.
//
// Usage:
//
//	skiabench                       # print the table
//	skiabench -out BENCH_8.json     # also write the JSON envelope
//	skiabench -baseline BENCH_8.json -max-regress 0.25
//	skiabench -bench frontend       # run a subset by substring
//	skiabench -archive runs/        # record the envelope in a run-history archive
//
// With -baseline the run gates like a regression test: any benchmark
// whose ns/op exceeds the baseline's by more than -max-regress fails
// the run (exit 1). Allocation counts gate under the same threshold,
// but only for benchmarks whose baseline allocates enough (≥100
// allocs/op) for the ratio to be meaningful. The envelope schema is
// documented in EXPERIMENTS.md ("Benchmark trajectory schema").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// SchemaVersion identifies the BENCH_*.json envelope format. The
// envelope types live in internal/benchfmt so the run-history archive
// (internal/store) and the dashboard (cmd/skiaboard) share them.
const SchemaVersion = benchfmt.SchemaVersion

// Entry and Envelope alias the shared envelope types.
type (
	Entry    = benchfmt.Entry
	Envelope = benchfmt.Envelope
)

// cycleCore builds a warmed core for the hot-loop benchmarks,
// mirroring bench_test.go's BenchmarkFrontEndCycle setup so the two
// report comparable numbers.
func cycleCore(cfg cpu.Config) (*cpu.Core, error) {
	prof, err := workload.ByName("voter")
	if err != nil {
		return nil, err
	}
	w, err := workload.Generate(prof)
	if err != nil {
		return nil, err
	}
	c, err := cpu.New(cfg, w)
	if err != nil {
		return nil, err
	}
	c.Run(100_000)
	c.ResetStats()
	return c, nil
}

// benchCycle measures the simulated front-end cycle in 1000-instruction
// slices (the same loop as bench_test.go's BenchmarkFrontEndCycle).
func benchCycle(cfg cpu.Config) (Entry, error) {
	var retired uint64
	r := testing.Benchmark(func(b *testing.B) {
		// The core is rebuilt per invocation: testing.Benchmark probes
		// the function at growing b.N, and retired instructions must
		// count only the final timed run.
		retired = 0
		b.StopTimer()
		c, err := cycleCore(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if c.Run(1000) == 0 {
				b.StopTimer()
				nc, err := cycleCore(cfg)
				if err != nil {
					b.Fatal(err)
				}
				retired += c.Retired()
				c = nc
				b.StartTimer()
			}
		}
		retired += c.Retired()
	})
	e := Entry{
		Iterations:  r.N,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.T > 0 {
		e.Metrics = map[string]float64{
			"minsts_per_s": float64(retired) / r.T.Seconds() / 1e6,
		}
	}
	return e, nil
}

// benchExperiment runs one experiment harness once on a reduced window
// and records its wall time plus the runner's simulated-MIPS
// throughput (Meta.Sim.InstructionsPerSec).
func benchExperiment(f func(experiments.Options) (*experiments.Report, error)) (Entry, error) {
	o := experiments.Options{
		Warmup:     100_000,
		Measure:    300_000,
		Benchmarks: []string{"voter", "noop"},
	}
	start := time.Now()
	rep, err := f(o)
	if err != nil {
		return Entry{}, err
	}
	wall := time.Since(start)
	e := Entry{
		Iterations: 1,
		NsPerOp:    float64(wall.Nanoseconds()),
		Metrics:    map[string]float64{},
	}
	if rep.Meta.Sim != nil {
		e.Metrics["sim_mips"] = rep.Meta.Sim.InstructionsPerSec / 1e6
	}
	return e, nil
}

// benchFig14Sharded measures the accelerated sweep path end to end:
// one exact fig14 reference pass populates warmup checkpoints (and
// SampleEcho rows), then a sampled serial pass and a sampled sharded
// pass rerun the same sweep reusing those checkpoints. It reports the
// combined checkpoint+sampling+sharding speedup over the exact pass
// and the sharding parallel efficiency, and hard-fails unless (a)
// every sampled metric's confidence interval contains the exact value
// (the skiacmp -sample-ci tolerance: CI + 0.01 + 0.05*|exact|) and
// (b) the sharded pass's sampling summaries are DeepEqual to the
// serial pass's.
func benchFig14Sharded() (Entry, error) {
	const shards = 4
	cache := sim.NewCheckpointCache()
	base := experiments.Options{
		Warmup:      16_000_000,
		Measure:     4_000_000,
		Benchmarks:  []string{"voter"},
		Checkpoint:  true,
		Checkpoints: cache,
	}
	plan := sim.SamplePlan{Intervals: 5, IntervalInsts: 60_000, MicroWarmup: 30_000}

	run := func(o experiments.Options) (*experiments.Report, time.Duration, error) {
		start := time.Now()
		rep, err := experiments.Fig14(o)
		return rep, time.Since(start), err
	}

	exactOpt := base
	exactOpt.SampleEcho = true
	exact, wallExact, err := run(exactOpt)
	if err != nil {
		return Entry{}, err
	}

	serialOpt := base
	p := plan
	serialOpt.Sample = &p
	serial, wallSerial, err := run(serialOpt)
	if err != nil {
		return Entry{}, err
	}

	shardedOpt := base
	ps := plan
	ps.Shards = shards
	shardedOpt.Sample = &ps
	sharded, wallSharded, err := run(shardedOpt)
	if err != nil {
		return Entry{}, err
	}

	// Gate 1: sharding must not change results at all.
	if !reflect.DeepEqual(serial.Sampling, sharded.Sampling) {
		return Entry{}, fmt.Errorf("fig14-sharded: sharded sampling summaries differ from serial (shard-count invariance broken)")
	}

	// Gate 2: every sampled metric's CI must contain the exact value.
	type key struct{ bench, label, metric string }
	exactVals := make(map[key]float64)
	for _, ss := range exact.Sampling {
		for _, m := range ss.Summary.Metrics {
			exactVals[key{ss.Benchmark, ss.Label, m.Name}] = m.Mean
		}
	}
	var ciFails []string
	for _, ss := range sharded.Sampling {
		for _, m := range ss.Summary.Metrics {
			want, ok := exactVals[key{ss.Benchmark, ss.Label, m.Name}]
			if !ok {
				ciFails = append(ciFails, fmt.Sprintf("%s/%s %s: no exact echo row", ss.Benchmark, ss.Label, m.Name))
				continue
			}
			if tol := m.CI + 0.01 + 0.05*math.Abs(want); math.Abs(m.Mean-want) > tol {
				ciFails = append(ciFails, fmt.Sprintf("%s/%s %s: sampled %.4f vs exact %.4f exceeds CI tolerance %.4f",
					ss.Benchmark, ss.Label, m.Name, m.Mean, want, tol))
			}
		}
	}
	if len(ciFails) > 0 {
		return Entry{}, fmt.Errorf("fig14-sharded: %d sampled metrics outside exact CI:\n  %s",
			len(ciFails), strings.Join(ciFails, "\n  "))
	}

	e := Entry{
		Iterations: 1,
		NsPerOp:    float64(wallSharded.Nanoseconds()),
		Metrics: map[string]float64{
			"speedup_vs_exact":    wallExact.Seconds() / wallSharded.Seconds(),
			"parallel_efficiency": wallSerial.Seconds() / (wallSharded.Seconds() * math.Min(shards, float64(runtime.NumCPU()))),
			"exact_wall_s":        wallExact.Seconds(),
			"serial_wall_s":       wallSerial.Seconds(),
		},
	}
	if sharded.Meta.Sim != nil {
		e.Metrics["sim_mips"] = sharded.Meta.Sim.InstructionsPerSec / 1e6
	}
	return e, nil
}

// registry lists every tracked benchmark in report order.
// regEntry is one registered benchmark. maxAllocs, when >= 0, is an
// absolute allocs/op budget enforced on every run (no baseline file
// needed): the steady-state front-end cycle path is annotated
// //skia:noalloc and must stay allocation-free, so its budget is the
// occasional map-growth rehash, not a percentage of a prior run.
type regEntry struct {
	name      string
	run       func() (Entry, error)
	maxAllocs int64
}

func registry() []regEntry {
	noCache := cpu.SkiaConfig()
	noCache.Frontend.NoDecodeCache = true
	return []regEntry{
		{"frontend-cycle", func() (Entry, error) { return benchCycle(cpu.SkiaConfig()) }, 1},
		{"frontend-cycle-nocache", func() (Entry, error) { return benchCycle(noCache) }, -1},
		{"frontend-cycle-baseline", func() (Entry, error) { return benchCycle(cpu.DefaultConfig()) }, 1},
		{"fig14-reduced", func() (Entry, error) { return benchExperiment(experiments.Fig14) }, -1},
		{"fig14-sharded", benchFig14Sharded, -1},
	}
}

func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// gate compares a run against a baseline envelope; it returns one
// message per regression beyond maxRegress.
func gate(base, head *Envelope, maxRegress float64) []string {
	byName := make(map[string]Entry, len(base.Entries))
	for _, e := range base.Entries {
		byName[e.Name] = e
	}
	var fails []string
	for _, e := range head.Entries {
		b, ok := byName[e.Name]
		if !ok {
			continue // new benchmark: nothing to regress against
		}
		if b.NsPerOp > 0 && e.NsPerOp > b.NsPerOp*(1+maxRegress) {
			fails = append(fails, fmt.Sprintf("%s: ns/op %.0f -> %.0f (+%.1f%%, limit +%.0f%%)",
				e.Name, b.NsPerOp, e.NsPerOp, (e.NsPerOp/b.NsPerOp-1)*100, maxRegress*100))
		}
		// Allocation gate: only when the baseline allocates enough for
		// the ratio to be stable (tiny counts flap on map growth).
		if b.AllocsPerOp >= 100 && float64(e.AllocsPerOp) > float64(b.AllocsPerOp)*(1+maxRegress) {
			fails = append(fails, fmt.Sprintf("%s: allocs/op %d -> %d (+%.1f%%, limit +%.0f%%)",
				e.Name, b.AllocsPerOp, e.AllocsPerOp,
				(float64(e.AllocsPerOp)/float64(b.AllocsPerOp)-1)*100, maxRegress*100))
		}
	}
	return fails
}

func main() {
	var (
		out        = flag.String("out", "", "write the JSON envelope to this file")
		baseline   = flag.String("baseline", "", "gate against this BENCH_*.json baseline")
		maxRegress = flag.Float64("max-regress", 0.25, "maximum tolerated ns/op (and allocs/op) regression vs -baseline")
		match      = flag.String("bench", "", "only run benchmarks whose name contains this substring")
		archiveDir = flag.String("archive", "", "also record the envelope in this run-history archive (skiaboard renders the trajectory)")
	)
	var prof metrics.Profiler
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "skiabench: %v\n", err)
		os.Exit(2)
	}

	env := &Envelope{
		SchemaVersion: SchemaVersion,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GitDescribe:   gitDescribe(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
	}
	var budgetFails []string
	for _, reg := range registry() {
		if *match != "" && !strings.Contains(reg.name, *match) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", reg.name)
		e, err := reg.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "skiabench: %s: %v\n", reg.name, err)
			os.Exit(2)
		}
		e.Name = reg.name
		if reg.maxAllocs >= 0 && e.AllocsPerOp > reg.maxAllocs {
			budgetFails = append(budgetFails, fmt.Sprintf("%s: %d allocs/op exceeds the absolute budget of %d",
				reg.name, e.AllocsPerOp, reg.maxAllocs))
		}
		env.Entries = append(env.Entries, e)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "skiabench: %v\n", err)
	}

	fmt.Printf("%-26s %12s %12s %12s %10s\n", "benchmark", "ns/op", "B/op", "allocs/op", "extra")
	for _, e := range env.Entries {
		extra := ""
		if v, ok := e.Metrics["minsts_per_s"]; ok {
			extra = fmt.Sprintf("%.2f Mi/s", v)
		} else if v, ok := e.Metrics["speedup_vs_exact"]; ok {
			extra = fmt.Sprintf("%.1fx exact", v)
		} else if v, ok := e.Metrics["sim_mips"]; ok {
			extra = fmt.Sprintf("%.2f MIPS", v)
		}
		fmt.Printf("%-26s %12.0f %12d %12d %10s\n", e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, extra)
	}

	if *out != "" || *archiveDir != "" {
		data, err := json.MarshalIndent(env, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "skiabench: %v\n", err)
			os.Exit(2)
		}
		if *out != "" {
			if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "skiabench: %v\n", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
		}
		if *archiveDir != "" {
			a, err := store.Open(*archiveDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "skiabench: %v\n", err)
				os.Exit(2)
			}
			entry, added, err := a.PutBench(data, store.PutMeta{
				RecordedAt: time.Now(), GitDescribe: env.GitDescribe, Source: "skiabench",
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "skiabench: %v\n", err)
				os.Exit(2)
			}
			state := "archived"
			if !added {
				state = "already archived (dedup)"
			}
			fmt.Fprintf(os.Stderr, "%s in %s as %s\n", state, *archiveDir, entry.ID[:12])
		}
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skiabench: baseline: %v\n", err)
			os.Exit(2)
		}
		var base Envelope
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "skiabench: baseline: %v\n", err)
			os.Exit(2)
		}
		if base.SchemaVersion > SchemaVersion {
			fmt.Fprintf(os.Stderr, "skiabench: baseline schema v%d is newer than this build (v%d)\n",
				base.SchemaVersion, SchemaVersion)
			os.Exit(2)
		}
		fails := gate(&base, env, *maxRegress)
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "REGRESSION %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ok: within %.0f%% of %s\n", *maxRegress*100, *baseline)
	}

	if len(budgetFails) > 0 {
		for _, f := range budgetFails {
			fmt.Fprintf(os.Stderr, "BUDGET %s\n", f)
		}
		os.Exit(1)
	}
}
