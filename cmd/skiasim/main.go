// Command skiasim runs a single benchmark on the simulated core and
// prints the full statistics breakdown: IPC, BTB/SBB behaviour, L1-I
// pressure, re-steer counts, and predictor accuracy.
//
// Usage:
//
//	skiasim -bench voter                # paper baseline (no Skia)
//	skiasim -bench voter -skia          # baseline + Skia
//	skiasim -bench voter -skia -head=false   # tail-only shadow decode
//	skiasim -bench dotty -btb 16384 -measure 10000000
//	skiasim -list
//
// Observability (see README, "Tracing & profiling"):
//
//	skiasim -bench voter -skia -intervals 100000 -intervals-out iv.ndjson
//	skiasim -bench voter -skia -trace-out fe.trace.json   # open in Perfetto
//	skiasim -bench voter -cpuprofile cpu.pprof -pprof localhost:6060
//	skiasim -bench voter -attrib                # why is my BTB missing?
//	skiasim -bench voter -skia -attrib-out at.ndjson
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attrib"
	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "voter", "benchmark name (see -list)")
		list    = flag.Bool("list", false, "list benchmarks and exit")
		skia    = flag.Bool("skia", false, "enable the Shadow Branch Decoder + SBB")
		head    = flag.Bool("head", true, "enable Head shadow decoding (with -skia)")
		tail    = flag.Bool("tail", true, "enable Tail shadow decoding (with -skia)")
		btbSz   = flag.Int("btb", 8192, "BTB entries")
		inf     = flag.Bool("infbtb", false, "infinite BTB (upper bound)")
		warmup  = flag.Uint64("warmup", sim.DefaultWarmup, "warmup instructions")
		measure = flag.Uint64("measure", sim.DefaultMeasure, "measured instructions")

		intervals = flag.Uint64("intervals", 0,
			"collect interval metrics every N retired instructions (0 = off; implied by -intervals-out)")
		intervalsOut = flag.String("intervals-out", "",
			"write per-interval metrics as NDJSON to this file")
		traceOut = flag.String("trace-out", "",
			"record front-end events and write Chrome trace_event JSON (Perfetto-loadable) to this file")
		traceBuf = flag.Int("trace-buf", metrics.DefaultRingCapacity,
			"event-trace ring capacity; oldest events drop past this")
		attribOn = flag.Bool("attrib", false,
			"classify every BTB miss and front-end stall cycle by cause (implied by -attrib-out)")
		attribOut = flag.String("attrib-out", "",
			"write the attribution summary as NDJSON to this file")

		sample = flag.Bool("sample", false,
			"sampled simulation: splice K detail intervals over the measurement window; metrics print with 95% confidence intervals")
		sampleIntervals = flag.Int("sample-intervals", 0,
			"detail intervals (0 = default 10; implies -sample)")
		sampleInterval = flag.Uint64("sample-interval", 0,
			"measured instructions per interval (0 = measure/K/10; implies -sample)")
		sampleWarmup = flag.Uint64("sample-warmup", 0,
			"detail micro-warmup before each interval (0 = interval/2; implies -sample)")
		sampleWarmWindow = flag.Uint64("sample-warm-window", 0,
			"bound functional warming to the final N instructions of each skip; the rest skips cold (0 = warm everything; implies -sample)")
		sampleShards = flag.Int("sample-shards", 0,
			"cores to fan intervals out over; identical results to serial (0 = 1; implies -sample)")
	)
	var prof metrics.Profiler
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "skiasim:", err)
		os.Exit(1)
	}

	if *list {
		fmt.Println("benchmarks (paper Table 2):")
		for _, n := range workload.Names() {
			p, _ := workload.ByName(n)
			fmt.Printf("  %-18s %s\n", n, p.Suite)
		}
		return
	}

	cfg := cpu.DefaultConfig()
	if *skia {
		cfg = cpu.SkiaConfig()
		cfg.Frontend.SBD.Head = *head
		cfg.Frontend.SBD.Tail = *tail
	}
	cfg.Frontend.BTB = sim.BTBWithEntries(*btbSz)
	cfg.Frontend.BTB.Infinite = *inf

	if *intervalsOut != "" && *intervals == 0 {
		*intervals = metrics.DefaultEvery
	}
	if *attribOut != "" {
		*attribOn = true
	}
	var tracer *metrics.RingTracer
	if *traceOut != "" {
		tracer = metrics.NewRingTracer(*traceBuf)
	}

	r := sim.NewRunner()
	spec := sim.RunSpec{
		Benchmark: *bench, Config: cfg,
		Warmup: *warmup, Measure: *measure, Label: "run",
		Interval: *intervals,
		Attrib:   *attribOn,
	}
	if *sample || *sampleIntervals != 0 || *sampleInterval != 0 || *sampleWarmup != 0 ||
		*sampleWarmWindow != 0 || *sampleShards != 0 {
		spec.Sample = &sim.SamplePlan{
			Intervals:     *sampleIntervals,
			IntervalInsts: *sampleInterval,
			MicroWarmup:   *sampleWarmup,
			WarmWindow:    *sampleWarmWindow,
			Shards:        *sampleShards,
		}
	}
	if tracer != nil {
		spec.Tracer = tracer
	}
	res, err := r.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skiasim:", err)
		os.Exit(1)
	}

	if *intervalsOut != "" {
		if err := writeFileWith(*intervalsOut, func(f *os.File) error {
			return metrics.WriteNDJSON(f, res.Intervals)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "skiasim:", err)
			os.Exit(1)
		}
	}
	if tracer != nil {
		if err := writeFileWith(*traceOut, func(f *os.File) error {
			return tracer.WriteChromeTrace(f)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "skiasim:", err)
			os.Exit(1)
		}
	}
	if *attribOut != "" && res.Attribution != nil {
		if err := writeFileWith(*attribOut, func(f *os.File) error {
			return attrib.WriteNDJSON(f, *bench, "run", *res.Attribution)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "skiasim:", err)
			os.Exit(1)
		}
	}

	fe := res.FE
	tb := stats.NewTable("metric", "value")
	row := func(k string, format string, args ...any) {
		tb.AddRow(k, fmt.Sprintf(format, args...))
	}
	row("benchmark", "%s", *bench)
	row("instructions", "%d", res.Instructions)
	row("cycles", "%d", res.Cycles)
	row("IPC", "%.4f", res.IPC)
	row("L1-I MPKI (prefetch fills)", "%.2f", res.L1IMPKI)
	row("L1-I pollution evicted", "%d", res.L1I.PollutionEvicted)
	row("BTB miss MPKI", "%.3f", res.BTBMissMPKI)
	row("BTB miss w/ L1-I hit", "%.1f%%", res.BTBMissL1IHitFrac*100)
	row("BTB misses by type (c/u/ca/r/i)", "%d/%d/%d/%d/%d",
		fe.BTBMissCond, fe.BTBMissUncond, fe.BTBMissCall, fe.BTBMissReturn, fe.BTBMissIndirect)
	row("decode re-steers", "%d", fe.DecodeResteers)
	row("execute re-steers", "%d", fe.ExecResteers)
	row("cond mispredict MPKI", "%.2f", res.CondMPKI)
	row("indirect / return mispredicts", "%d / %d", fe.IndirectMispredicts, fe.ReturnMispredicts)
	row("stale BTB targets fixed at decode", "%d", fe.StaleBTBTarget)
	row("decoder idle cycles", "%.1f%%", res.DecodeIdleFrac*100)
	row("wrong-path FTQ blocks", "%d", fe.WrongPathBlocks)
	if *skia {
		row("effective miss MPKI (after SBB)", "%.3f", res.EffectiveMissMPKI)
		row("SBB covered (U / R)", "%d / %d", fe.SBBCoveredU, fe.SBBCoveredR)
		row("SBD inserts", "%d", fe.SBDInserts)
		bogus := 0.0
		if fe.SBDInserts > 0 {
			bogus = float64(fe.SBDBogusInserts) / float64(fe.SBDInserts)
		}
		row("SBD bogus insert rate", "%.5f%%", bogus*100)
		row("bogus SBB entries used", "%d", fe.BogusSBBUsed)
		row("head regions (decoded/discarded)", "%d/%d",
			res.SBD.HeadRegions, res.SBD.HeadDiscarded)
		row("head / tail branches extracted", "%d / %d",
			res.SBD.HeadBranches, res.SBD.TailBranches)
		row("tail regions", "%d", res.SBD.TailRegions)
	}
	if s := res.Sampling; s != nil && !s.Exact {
		row("sampled intervals (K x insts)", "%d x %d", s.Intervals, s.IntervalInstructions)
		row("sampled micro-warmup", "%d insts", s.MicroWarmupInstructions)
		if s.WarmWindowInstructions > 0 {
			row("sampled warm window", "%d insts", s.WarmWindowInstructions)
		}
		row("instructions skipped / measured", "%d / %d",
			s.Counters.SkippedInstructions, s.Counters.MeasuredInstructions)
		for _, m := range s.Metrics {
			row("sampled "+m.Name, "%.4f ± %.4f", m.Mean, m.CI)
		}
	}
	if *intervals > 0 {
		sum := metrics.Summarize(*intervals, res.Intervals)
		row("intervals (every N insts)", "%d x %d", sum.Count, sum.Every)
		row("interval IPC min/mean/max", "%.4f / %.4f / %.4f",
			sum.IPCMin, sum.IPCMean, sum.IPCMax)
		row("interval IPC first -> last", "%.4f -> %.4f", sum.IPCFirst, sum.IPCLast)
	}
	if tracer != nil {
		row("traced events (kept/total)", "%d/%d",
			uint64(len(tracer.Events())), tracer.Total())
	}
	if at := res.Attribution; at != nil {
		row("BTB misses attributed", "%d", at.BTBMisses)
		row("shadow-resident share", "%.1f%%", at.ShadowResidentShare*100)
		row("  head / tail split", "%.1f%% / %.1f%%", at.HeadShare*100, at.TailShare*100)
		for _, c := range at.Causes {
			if c.Count > 0 {
				row("  cause "+c.Cause, "%d (%.1f%%)", c.Count, c.Share*100)
			}
		}
		row("stall cycles attributed", "%d", at.StallCycles)
		for _, s := range at.Stalls {
			if s.Count > 0 {
				row("  stall "+s.Kind, "%d (%.1f%%)", s.Count, s.Share*100)
			}
		}
		for i, o := range at.TopOffenders {
			if i >= 5 {
				break
			}
			row(fmt.Sprintf("  offender #%d", i+1), "pc 0x%x: %d misses (%s)",
				o.PC, o.Count, o.TopCause)
		}
		row("FTQ occupancy p50/p90", "%.0f / %.0f", at.FTQOccupancy.P50, at.FTQOccupancy.P90)
		if at.SBDValidPaths.Count > 0 {
			row("SBD valid paths p50/p99", "%.0f / %.0f", at.SBDValidPaths.P50, at.SBDValidPaths.P99)
		}
		if at.SBBLifetime.Count > 0 {
			row("SBB evicted-entry lifetime p50", "%.0f cycles", at.SBBLifetime.P50)
		}
		if at.ResteerDistance.Count > 0 {
			row("re-steer distance p50/p99", "%.0f / %.0f bytes",
				at.ResteerDistance.P50, at.ResteerDistance.P99)
		}
	}
	fmt.Print(tb)

	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "skiasim:", err)
		os.Exit(1)
	}
}

// writeFileWith creates path, hands it to write, and closes it,
// reporting the first error.
func writeFileWith(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
