// Command skiasim runs a single benchmark on the simulated core and
// prints the full statistics breakdown: IPC, BTB/SBB behaviour, L1-I
// pressure, re-steer counts, and predictor accuracy.
//
// Usage:
//
//	skiasim -bench voter                # paper baseline (no Skia)
//	skiasim -bench voter -skia          # baseline + Skia
//	skiasim -bench voter -skia -head=false   # tail-only shadow decode
//	skiasim -bench dotty -btb 16384 -measure 10000000
//	skiasim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "voter", "benchmark name (see -list)")
		list    = flag.Bool("list", false, "list benchmarks and exit")
		skia    = flag.Bool("skia", false, "enable the Shadow Branch Decoder + SBB")
		head    = flag.Bool("head", true, "enable Head shadow decoding (with -skia)")
		tail    = flag.Bool("tail", true, "enable Tail shadow decoding (with -skia)")
		btbSz   = flag.Int("btb", 8192, "BTB entries")
		inf     = flag.Bool("infbtb", false, "infinite BTB (upper bound)")
		warmup  = flag.Uint64("warmup", sim.DefaultWarmup, "warmup instructions")
		measure = flag.Uint64("measure", sim.DefaultMeasure, "measured instructions")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks (paper Table 2):")
		for _, n := range workload.Names() {
			p, _ := workload.ByName(n)
			fmt.Printf("  %-18s %s\n", n, p.Suite)
		}
		return
	}

	cfg := cpu.DefaultConfig()
	if *skia {
		cfg = cpu.SkiaConfig()
		cfg.Frontend.SBD.Head = *head
		cfg.Frontend.SBD.Tail = *tail
	}
	cfg.Frontend.BTB = sim.BTBWithEntries(*btbSz)
	cfg.Frontend.BTB.Infinite = *inf

	r := sim.NewRunner()
	res, err := r.Run(sim.RunSpec{
		Benchmark: *bench, Config: cfg,
		Warmup: *warmup, Measure: *measure, Label: "run",
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "skiasim:", err)
		os.Exit(1)
	}

	fe := res.FE
	tb := stats.NewTable("metric", "value")
	row := func(k string, format string, args ...any) {
		tb.AddRow(k, fmt.Sprintf(format, args...))
	}
	row("benchmark", "%s", *bench)
	row("instructions", "%d", res.Instructions)
	row("cycles", "%d", res.Cycles)
	row("IPC", "%.4f", res.IPC)
	row("L1-I MPKI (prefetch fills)", "%.2f", res.L1IMPKI)
	row("L1-I pollution evicted", "%d", res.L1I.PollutionEvicted)
	row("BTB miss MPKI", "%.3f", res.BTBMissMPKI)
	row("BTB miss w/ L1-I hit", "%.1f%%", res.BTBMissL1IHitFrac*100)
	row("BTB misses by type (c/u/ca/r/i)", "%d/%d/%d/%d/%d",
		fe.BTBMissCond, fe.BTBMissUncond, fe.BTBMissCall, fe.BTBMissReturn, fe.BTBMissIndirect)
	row("decode re-steers", "%d", fe.DecodeResteers)
	row("execute re-steers", "%d", fe.ExecResteers)
	row("cond mispredict MPKI", "%.2f", res.CondMPKI)
	row("decoder idle cycles", "%.1f%%", res.DecodeIdleFrac*100)
	row("wrong-path FTQ blocks", "%d", fe.WrongPathBlocks)
	if *skia {
		row("effective miss MPKI (after SBB)", "%.3f", res.EffectiveMissMPKI)
		row("SBB covered (U / R)", "%d / %d", fe.SBBCoveredU, fe.SBBCoveredR)
		row("SBD inserts", "%d", fe.SBDInserts)
		bogus := 0.0
		if fe.SBDInserts > 0 {
			bogus = float64(fe.SBDBogusInserts) / float64(fe.SBDInserts)
		}
		row("SBD bogus insert rate", "%.5f%%", bogus*100)
		row("bogus SBB entries used", "%d", fe.BogusSBBUsed)
		row("head regions (decoded/discarded)", "%d/%d",
			res.SBD.HeadRegions, res.SBD.HeadDiscarded)
		row("tail regions", "%d", res.SBD.TailRegions)
	}
	fmt.Print(tb)
}
