package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunOutDirCreationFailure: -out pointing below an existing
// regular file cannot be created; run must return the error instead
// of exiting 0.
func TestRunOutDirCreationFailure(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	err := run([]string{"-exp", "table1", "-out", filepath.Join(blocker, "results")}, &out, &errw)
	if err == nil {
		t.Fatal("run returned nil for an uncreatable -out directory")
	}
}

// TestRunManifestWriteFailure is the regression test for the exit-0
// bug: the per-experiment report files write fine, then the final
// manifest.json write fails (here: the path is occupied by a
// directory). run must surface the joined error rather than
// reporting success over a partial result set.
func TestRunManifestWriteFailure(t *testing.T) {
	dir := t.TempDir()
	// Occupy manifest.json with a directory so the final WriteFile
	// fails after the experiment file has already been written.
	if err := os.MkdirAll(filepath.Join(dir, "manifest.json"), 0o755); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	err := run([]string{"-exp", "table1", "-out", dir}, &out, &errw)
	if err == nil {
		t.Fatal("run returned nil although manifest.json could not be written")
	}
	if !strings.Contains(err.Error(), "manifest") {
		t.Errorf("error does not name the manifest write: %v", err)
	}
	// The per-experiment report must still be on disk: the failure is
	// the index, not the data.
	if _, statErr := os.Stat(filepath.Join(dir, "table1.json")); statErr != nil {
		t.Errorf("table1.json missing: %v", statErr)
	}
}

// TestRunWritesReportAndManifest pins the happy path end to end.
func TestRunWritesReportAndManifest(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	if err := run([]string{"-exp", "table1", "-out", dir}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"table1.json", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s missing: %v", f, err)
		}
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Errorf("stdout lacks write confirmations: %q", out.String())
	}
}

// TestRunUnknownExperiment: unknown ids are an error, not a silent
// success.
func TestRunUnknownExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &out, &errw); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}
