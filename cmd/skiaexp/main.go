// Command skiaexp regenerates the paper's evaluation artifacts: every
// figure and table from "Exposing Shadow Branches" (ASPLOS 2025), plus
// the ablations documented in DESIGN.md.
//
// Usage:
//
//	skiaexp -list
//	skiaexp -exp fig14
//	skiaexp -exp all -measure 3000000
//	skiaexp -exp fig3 -benchmarks voter,tpcc,kafka -warmup 500000
//
// Absolute numbers will not match the paper's gem5/Alder Lake testbed;
// the shapes (who wins, by roughly what factor, where crossovers fall)
// are the reproduction target. See EXPERIMENTS.md for the recorded
// comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
)

type expFn func(experiments.Options) (*experiments.Report, error)

func catalog() map[string]expFn {
	return map[string]expFn{
		"fig1":  func(o experiments.Options) (*experiments.Report, error) { return experiments.Fig1(o, nil) },
		"fig3":  func(o experiments.Options) (*experiments.Report, error) { return experiments.Fig3(o, nil) },
		"fig6":  experiments.Fig6,
		"fig13": experiments.Fig13,
		"fig14": experiments.Fig14,
		"fig15": experiments.Fig15,
		"fig16": experiments.Fig16,
		"fig17": experiments.Fig17,
		"fig18": experiments.Fig18,
		"bolt":  experiments.Bolt,
		"table1": func(experiments.Options) (*experiments.Report, error) {
			return experiments.Table1(), nil
		},
		"table2": func(experiments.Options) (*experiments.Report, error) {
			return experiments.Table2()
		},
		"ablation-index": experiments.AblationIndexPolicy,
		"ablation-pathcap": func(o experiments.Options) (*experiments.Report, error) {
			return experiments.AblationPathCap(o, nil)
		},
		"ablation-replacement": experiments.AblationReplacement,
		"ablation-sbdtobtb":    experiments.AblationInsertIntoBTB,
		"ablation-wrongpath":   experiments.AblationWrongPath,
		"ext-conds":            experiments.ExtensionShadowConds,
	}
}

// order lists experiments in presentation order for -exp all.
var order = []string{
	"table1", "table2",
	"fig1", "fig3", "fig6", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
	"bolt",
	"ablation-index", "ablation-pathcap", "ablation-replacement",
	"ablation-sbdtobtb", "ablation-wrongpath",
	"ext-conds",
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		warmup  = flag.Uint64("warmup", 0, "warmup instructions per run (0 = default)")
		measure = flag.Uint64("measure", 0, "measured instructions per run (0 = default)")
		benches = flag.String("benchmarks", "", "comma-separated benchmark subset (default: full suite)")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cat := catalog()
	if *list || *exp == "" {
		fmt.Println("available experiments:")
		names := make([]string, 0, len(cat))
		for n := range cat {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println("  " + n)
		}
		fmt.Println("  all")
		return
	}

	opts := experiments.Options{Warmup: *warmup, Measure: *measure, Workers: *workers}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = order
	}
	for _, id := range ids {
		fn, ok := cat[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "skiaexp: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep, err := fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skiaexp: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		fmt.Printf("(%s in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
