// Command skiaexp regenerates the paper's evaluation artifacts: every
// figure and table from "Exposing Shadow Branches" (ASPLOS 2025), plus
// the ablations documented in DESIGN.md.
//
// Usage:
//
//	skiaexp -list
//	skiaexp -exp fig14
//	skiaexp -exp all -measure 3000000
//	skiaexp -exp fig3 -benchmarks voter,tpcc,kafka -warmup 500000
//	skiaexp -exp all -json -out results/
//
// By default reports render as aligned plain text. With -json each
// report is emitted as a versioned JSON envelope (schema documented in
// EXPERIMENTS.md, "Results schema"); with -out DIR the envelopes are
// written to DIR/<id>.json plus a DIR/manifest.json index, ready for
// regression diffing with cmd/skiacmp.
//
// Absolute numbers will not match the paper's gem5/Alder Lake testbed;
// the shapes (who wins, by roughly what factor, where crossovers fall)
// are the reproduction target. See EXPERIMENTS.md for the recorded
// comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

type expFn func(experiments.Options) (*experiments.Report, error)

func catalog() map[string]expFn {
	return map[string]expFn{
		"fig1":  func(o experiments.Options) (*experiments.Report, error) { return experiments.Fig1(o, nil) },
		"fig3":  func(o experiments.Options) (*experiments.Report, error) { return experiments.Fig3(o, nil) },
		"fig6":  experiments.Fig6,
		"fig13": experiments.Fig13,
		"fig14": experiments.Fig14,
		"fig15": experiments.Fig15,
		"fig16": experiments.Fig16,
		"fig17": experiments.Fig17,
		"fig18": experiments.Fig18,
		"bolt":  experiments.Bolt,
		"table1": func(experiments.Options) (*experiments.Report, error) {
			return experiments.Table1(), nil
		},
		"table2": func(experiments.Options) (*experiments.Report, error) {
			return experiments.Table2()
		},
		"ablation-index": experiments.AblationIndexPolicy,
		"ablation-pathcap": func(o experiments.Options) (*experiments.Report, error) {
			return experiments.AblationPathCap(o, nil)
		},
		"ablation-replacement": experiments.AblationReplacement,
		"ablation-sbdtobtb":    experiments.AblationInsertIntoBTB,
		"ablation-wrongpath":   experiments.AblationWrongPath,
		"ext-conds":            experiments.ExtensionShadowConds,
	}
}

// order lists experiments in presentation order for -exp all.
var order = []string{
	"table1", "table2",
	"fig1", "fig3", "fig6", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
	"bolt",
	"ablation-index", "ablation-pathcap", "ablation-replacement",
	"ablation-sbdtobtb", "ablation-wrongpath",
	"ext-conds",
}

// manifestEntry indexes one written report in manifest.json.
type manifestEntry struct {
	ID          string  `json:"id"`
	Title       string  `json:"title"`
	File        string  `json:"file"`
	WallSeconds float64 `json:"wall_seconds"`
}

// manifest is the top-level index a -json -out run writes alongside
// the per-experiment files.
type manifest struct {
	SchemaVersion    int             `json:"schema_version"`
	GeneratedAt      string          `json:"generated_at"`
	GitDescribe      string          `json:"git_describe,omitempty"`
	Args             []string        `json:"args"`
	Experiments      []manifestEntry `json:"experiments"`
	TotalWallSeconds float64         `json:"total_wall_seconds"`
}

// gitDescribe best-effort identifies the tree that produced a report;
// empty when git or the repository is unavailable.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		warmup  = flag.Uint64("warmup", 0, "warmup instructions per run (0 = default)")
		measure = flag.Uint64("measure", 0, "measured instructions per run (0 = default)")
		benches = flag.String("benchmarks", "", "comma-separated benchmark subset (default: full suite)")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		asJSON  = flag.Bool("json", false, "emit JSON report envelopes instead of plain text")
		outDir  = flag.String("out", "", "write <id>.json per experiment plus manifest.json into this directory (implies -json)")

		intervals = flag.Uint64("intervals", 0,
			"collect interval metrics every N retired instructions per run; summaries land in the report envelope's `intervals` section (0 = off)")
		attribOn = flag.Bool("attrib", false,
			"classify BTB misses and stall cycles by cause on every run; summaries land in the report envelope's `attribution` section")
	)
	var prof metrics.Profiler
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *outDir != "" {
		*asJSON = true
	}
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "skiaexp: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "skiaexp: %v\n", err)
		}
	}()

	cat := catalog()
	if *list || *exp == "" {
		fmt.Println("available experiments:")
		names := make([]string, 0, len(cat))
		for n := range cat {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println("  " + n)
		}
		fmt.Println("  all")
		return
	}

	opts := experiments.Options{Warmup: *warmup, Measure: *measure, Workers: *workers, Interval: *intervals, Attrib: *attribOn}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "skiaexp: %v\n", err)
			os.Exit(1)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = order
	}
	describe := gitDescribe()
	mf := manifest{
		SchemaVersion: experiments.SchemaVersion,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GitDescribe:   describe,
		Args:          os.Args[1:],
	}
	for _, id := range ids {
		fn, ok := cat[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "skiaexp: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep, err := fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skiaexp: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if !*asJSON {
			fmt.Println(rep)
			fmt.Printf("(%s in %s)\n\n", id, elapsed.Round(time.Millisecond))
			continue
		}
		rep.Meta.GitDescribe = describe
		rep.Meta.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "skiaexp: %s: marshal: %v\n", id, err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *outDir == "" {
			os.Stdout.Write(data)
			continue
		}
		file := id + ".json"
		if err := os.WriteFile(filepath.Join(*outDir, file), data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "skiaexp: %s: %v\n", id, err)
			os.Exit(1)
		}
		mf.Experiments = append(mf.Experiments, manifestEntry{
			ID: id, Title: rep.Title, File: file, WallSeconds: elapsed.Seconds(),
		})
		mf.TotalWallSeconds += elapsed.Seconds()
		fmt.Printf("wrote %s (%s in %s)\n", filepath.Join(*outDir, file), id, elapsed.Round(time.Millisecond))
	}
	if *outDir != "" {
		data, err := json.MarshalIndent(mf, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "skiaexp: manifest: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*outDir, "manifest.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "skiaexp: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments)\n", path, len(mf.Experiments))
	}
}
