// Command skiaexp regenerates the paper's evaluation artifacts: every
// figure and table from "Exposing Shadow Branches" (ASPLOS 2025), plus
// the ablations documented in DESIGN.md.
//
// Usage:
//
//	skiaexp -list
//	skiaexp -exp fig14
//	skiaexp -exp all -measure 3000000
//	skiaexp -exp fig3 -benchmarks voter,tpcc,kafka -warmup 500000
//	skiaexp -exp all -json -out results/
//
// By default reports render as aligned plain text. With -json each
// report is emitted as a versioned JSON envelope (schema documented in
// EXPERIMENTS.md, "Results schema"); with -out DIR the envelopes are
// written to DIR/<id>.json plus a DIR/manifest.json index, ready for
// regression diffing with cmd/skiacmp. For a long-running service
// around the same harnesses, see cmd/skiaserve and API.md.
//
// Every failure — experiment errors, report or manifest write errors,
// profiler shutdown errors — exits nonzero; a partial -out directory
// is never silently reported as success.
//
// Absolute numbers will not match the paper's gem5/Alder Lake testbed;
// the shapes (who wins, by roughly what factor, where crossovers fall)
// are the reproduction target. See EXPERIMENTS.md for the recorded
// comparison.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store"
)

// gitDescribe best-effort identifies the tree that produced a report;
// empty when git or the repository is unavailable.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "skiaexp: %v\n", err)
		os.Exit(1)
	}
}

// run executes the CLI and returns every failure joined: an error from
// any experiment, report write, manifest write, or profiler stop makes
// the process exit nonzero (regression-tested in main_test.go — an
// earlier version exited 0 when the manifest write failed after the
// per-experiment files were already on disk).
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("skiaexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("exp", "", "experiment id (see -list), or 'all'")
		list    = fs.Bool("list", false, "list available experiments")
		warmup  = fs.Uint64("warmup", 0, "warmup instructions per run (0 = default)")
		measure = fs.Uint64("measure", 0, "measured instructions per run (0 = default)")
		benches = fs.String("benchmarks", "", "comma-separated benchmark subset (default: full suite)")
		workers = fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		asJSON  = fs.Bool("json", false, "emit JSON report envelopes instead of plain text")
		outDir  = fs.String("out", "", "write <id>.json per experiment plus manifest.json into this directory (implies -json)")
		arcDir  = fs.String("archive", "", "also record each report in this run-history archive (implies -json; see cmd/skiaboard)")

		intervals = fs.Uint64("intervals", 0,
			"collect interval metrics every N retired instructions per run; summaries land in the report envelope's `intervals` section (0 = off)")
		attribOn = fs.Bool("attrib", false,
			"classify BTB misses and stall cycles by cause on every run; summaries land in the report envelope's `attribution` section")

		sample = fs.Bool("sample", false,
			"sampled simulation: splice K detail intervals over the measurement window instead of simulating it exactly; every headline metric gains a 95% CI in the envelope's `sampling` section")
		sampleIntervals = fs.Int("sample-intervals", 0,
			"detail intervals per sampled run (0 = default 10; implies -sample)")
		sampleInterval = fs.Uint64("sample-interval", 0,
			"measured instructions per detail interval (0 = measure/K/10; implies -sample)")
		sampleWarmup = fs.Uint64("sample-warmup", 0,
			"detail micro-warmup instructions before each interval (0 = interval/2; implies -sample)")
		sampleWarmWindow = fs.Uint64("sample-warm-window", 0,
			"bound functional warming to the final N instructions of each interval's skip; the rest skips cold (0 = warm the whole distance; implies -sample)")
		sampleShards = fs.Int("sample-shards", 0,
			"fan sampled intervals out over this many cores per run; results are identical to serial (0 = 1; implies -sample)")
		checkpoint = fs.Bool("checkpoint", false,
			"share detail warmup between runs with the same (benchmark, warmup, config) via core checkpoints; bit-identical results, less wall-clock")
		sampleEcho = fs.Bool("sample-echo", false,
			"make exact runs publish a CI-free `sampling` section too, for skiacmp -sample-ci gating")
	)
	var prof metrics.Profiler
	prof.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir != "" || *arcDir != "" {
		*asJSON = true
	}
	var arc *store.Archive
	if *arcDir != "" {
		var err error
		if arc, err = store.Open(*arcDir); err != nil {
			return err
		}
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	var failures []error
	cat := experiments.Catalog()
	if *list || *exp == "" {
		fmt.Fprintln(stdout, "available experiments:")
		for _, n := range experiments.IDs() {
			fmt.Fprintln(stdout, "  "+n)
		}
		fmt.Fprintln(stdout, "  all")
		return stopProf()
	}

	opts := experiments.Options{Warmup: *warmup, Measure: *measure, Workers: *workers, Interval: *intervals, Attrib: *attribOn,
		Checkpoint: *checkpoint, SampleEcho: *sampleEcho}
	if *sample || *sampleIntervals != 0 || *sampleInterval != 0 || *sampleWarmup != 0 ||
		*sampleWarmWindow != 0 || *sampleShards != 0 {
		opts.Sample = &sim.SamplePlan{
			Intervals:     *sampleIntervals,
			IntervalInsts: *sampleInterval,
			MicroWarmup:   *sampleWarmup,
			WarmWindow:    *sampleWarmWindow,
			Shards:        *sampleShards,
		}
	}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			failures = append(failures, err)
			return errors.Join(append(failures, stopProf())...)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Order
	}
	describe := gitDescribe()
	mf := experiments.Manifest{
		SchemaVersion: experiments.SchemaVersion,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GitDescribe:   describe,
		Args:          args,
	}
	for _, id := range ids {
		fn, ok := cat[id]
		if !ok {
			failures = append(failures, fmt.Errorf("unknown experiment %q (try -list)", id))
			break
		}
		start := time.Now()
		rep, err := fn(opts)
		if err != nil {
			failures = append(failures, fmt.Errorf("%s: %w", id, err))
			break
		}
		elapsed := time.Since(start)
		if !*asJSON {
			fmt.Fprintln(stdout, rep)
			fmt.Fprintf(stdout, "(%s in %s)\n\n", id, elapsed.Round(time.Millisecond))
			continue
		}
		rep.Meta.GitDescribe = describe
		rep.Meta.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			failures = append(failures, fmt.Errorf("%s: marshal: %w", id, err))
			break
		}
		data = append(data, '\n')
		if arc != nil {
			entry, added, err := arc.PutReport(data, store.NewSpec(id, opts), store.PutMeta{
				RecordedAt: time.Now(), GitDescribe: describe, Source: "skiaexp",
			})
			if err != nil {
				failures = append(failures, fmt.Errorf("%s: archive: %w", id, err))
				break
			}
			state := "archived"
			if !added {
				state = "already archived (dedup)"
			}
			fmt.Fprintf(stdout, "%s %s as %s (spec %s)\n", state, id, entry.ID[:12], entry.SpecHash[:12])
		}
		if *outDir == "" {
			stdout.Write(data)
			continue
		}
		file := id + ".json"
		if err := os.WriteFile(filepath.Join(*outDir, file), data, 0o644); err != nil {
			failures = append(failures, fmt.Errorf("%s: %w", id, err))
			break
		}
		mf.Experiments = append(mf.Experiments, experiments.ManifestEntry{
			ID: id, Title: rep.Title, File: file, WallSeconds: elapsed.Seconds(),
		})
		mf.TotalWallSeconds += elapsed.Seconds()
		fmt.Fprintf(stdout, "wrote %s (%s in %s)\n", filepath.Join(*outDir, file), id, elapsed.Round(time.Millisecond))
	}
	if *outDir != "" {
		if err := writeManifest(*outDir, mf); err != nil {
			failures = append(failures, err)
		} else {
			fmt.Fprintf(stdout, "wrote %s (%d experiments)\n", filepath.Join(*outDir, "manifest.json"), len(mf.Experiments))
		}
	}
	if err := stopProf(); err != nil {
		failures = append(failures, err)
	}
	return errors.Join(failures...)
}

// writeManifest serializes the run index to DIR/manifest.json.
func writeManifest(dir string, mf experiments.Manifest) error {
	data, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	path := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return nil
}
