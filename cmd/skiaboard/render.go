package main

import (
	"flag"
	"fmt"
	"html/template"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/store"
)

// cmdRender writes the dashboard: one self-contained HTML file with a
// metric-trajectory section per experiment (roll-up table plus inline
// SVG sparklines), attribution share stacks from each experiment's
// latest attributed record, and the skiabench performance trajectory.
func cmdRender(args []string) error {
	fs := flag.NewFlagSet("skiaboard render", flag.ExitOnError)
	var (
		dir   = fs.String("archive", "", "run-history archive directory")
		out   = fs.String("out", "skiaboard.html", "output HTML file")
		title = fs.String("title", "skiaboard — run history", "dashboard title")
	)
	fs.Parse(args)
	a, err := openArchive(*dir)
	if err != nil {
		return err
	}
	d, err := buildDashboard(a, *title)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := pageTmpl.Execute(f, d); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "skiaboard: wrote %s (%d records, %d experiments)\n",
		*out, d.Records, len(d.Experiments))
	return nil
}

// Dashboard view model.
type dashboard struct {
	Title       string
	GeneratedAt string
	ArchiveDir  string
	Records     int
	Experiments []expSection
	Bench       []benchRow
	BenchRuns   int
}

type expSection struct {
	ID      string
	Points  int
	Specs   int
	Metrics []metricRow
	Attrib  []attribStack
}

type metricRow struct {
	Name     string
	Unit     string
	Count    int
	First    string
	Last     string
	P50      string
	Min      string
	Max      string
	Delta    string
	DeltaCls string // "up", "down", or "flat" for CSS
	Spark    template.HTML
}

type attribStack struct {
	Spec     string // benchmark/label
	Segments []stackSegment
}

type stackSegment struct {
	Cause string
	Share float64
	X, W  float64 // percent offsets into the 100-wide stack
	Color string
}

type benchRow struct {
	Name   string
	NsLast string
	Delta  string
	Spark  template.HTML
}

func buildDashboard(a *store.Archive, title string) (*dashboard, error) {
	d := &dashboard{
		Title:       title,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		ArchiveDir:  a.Dir(),
		Records:     a.Len(),
	}
	for _, exp := range a.Experiments() {
		sec, err := buildExpSection(a, exp)
		if err != nil {
			return nil, err
		}
		d.Experiments = append(d.Experiments, sec)
	}
	bench, err := a.BenchHistory()
	if err != nil {
		return nil, err
	}
	d.BenchRuns = len(bench)
	d.Bench = buildBenchRows(bench)
	return d, nil
}

func buildExpSection(a *store.Archive, exp string) (expSection, error) {
	hist, err := a.History(exp)
	if err != nil {
		return expSection{}, err
	}
	specs := make(map[string]bool)
	for _, p := range hist.Points {
		specs[p.SpecHash] = true
	}
	sec := expSection{ID: exp, Points: len(hist.Points), Specs: len(specs)}
	// Per-metric value series in trajectory order, for sparklines.
	values := make(map[string][]float64)
	for _, p := range hist.Points {
		for _, m := range p.Metrics {
			values[m.Name] = append(values[m.Name], m.Value)
		}
	}
	for _, ru := range hist.Rollups {
		row := metricRow{
			Name:  ru.Name,
			Unit:  ru.Unit,
			Count: ru.Count,
			First: fmtVal(ru.First),
			Last:  fmtVal(ru.Last),
			P50:   fmtVal(ru.P50),
			Min:   fmtVal(ru.Min),
			Max:   fmtVal(ru.Max),
			Spark: sparkline(values[ru.Name], 160, 36),
		}
		row.Delta, row.DeltaCls = fmtDelta(ru.First, ru.Last)
		sec.Metrics = append(sec.Metrics, row)
	}
	sec.Attrib, err = buildAttribStacks(a, exp)
	return sec, err
}

// buildAttribStacks renders the latest attributed record's per-spec
// BTB-miss cause mix as horizontal stacked bars.
func buildAttribStacks(a *store.Archive, exp string) ([]attribStack, error) {
	series, err := a.Series(exp)
	if err != nil {
		return nil, err
	}
	var latest *experiments.Report
	var latestAt string
	for _, sr := range series {
		rec := sr.Records[len(sr.Records)-1]
		if rec.RecordedAt < latestAt {
			continue
		}
		rep, err := experiments.DecodeReport(rec.Payload)
		if err != nil {
			return nil, fmt.Errorf("record %s: %w", rec.ID, err)
		}
		if len(rep.Attribution) > 0 {
			latest, latestAt = rep, rec.RecordedAt
		}
	}
	if latest == nil {
		return nil, nil
	}
	var stacks []attribStack
	for _, at := range latest.Attribution {
		spec := at.Benchmark
		if at.Label != "" {
			spec += "/" + at.Label
		}
		st := attribStack{Spec: spec}
		x := 0.0
		for i, c := range at.Summary.Causes {
			if c.Share <= 0 {
				continue
			}
			w := c.Share * 100
			st.Segments = append(st.Segments, stackSegment{
				Cause: c.Cause, Share: c.Share,
				X: x, W: w, Color: palette[i%len(palette)],
			})
			x += w
		}
		stacks = append(stacks, st)
	}
	return stacks, nil
}

func buildBenchRows(points []store.BenchPoint) []benchRow {
	// name -> ns/op series in trajectory order.
	values := make(map[string][]float64)
	var names []string
	for _, p := range points {
		for _, e := range p.Envelope.Entries {
			if _, seen := values[e.Name]; !seen {
				names = append(names, e.Name)
			}
			values[e.Name] = append(values[e.Name], e.NsPerOp)
		}
	}
	sort.Strings(names)
	var rows []benchRow
	for _, n := range names {
		vs := values[n]
		row := benchRow{
			Name:   n,
			NsLast: fmtVal(vs[len(vs)-1]),
			Spark:  sparkline(vs, 160, 36),
		}
		row.Delta, _ = fmtDelta(vs[0], vs[len(vs)-1])
		rows = append(rows, row)
	}
	return rows
}

// palette colors the attribution stack segments (cause order is the
// taxonomy's enum order, so colors are stable across renders).
var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// sparkline renders a value series as an inline SVG polyline with a
// dot on the newest point. Empty and single-point series render a flat
// placeholder.
func sparkline(vs []float64, w, h int) template.HTML {
	if len(vs) == 0 {
		return ""
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	span := hi - lo
	if span == 0 {
		span = 1 // flat line at mid-height
	}
	pad := 3.0
	fx := func(i int) float64 {
		if len(vs) == 1 {
			return float64(w) / 2
		}
		return pad + float64(i)/float64(len(vs)-1)*(float64(w)-2*pad)
	}
	fy := func(v float64) float64 {
		return float64(h) - pad - (v-lo)/span*(float64(h)-2*pad)
	}
	var pts []string
	for i, v := range vs {
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", fx(i), fy(v)))
	}
	lastX, lastY := fx(len(vs)-1), fy(vs[len(vs)-1])
	svg := fmt.Sprintf(
		`<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d">`+
			`<polyline fill="none" stroke="#4e79a7" stroke-width="1.5" points="%s"/>`+
			`<circle cx="%.1f" cy="%.1f" r="2.5" fill="#e15759"/></svg>`,
		w, h, w, h, strings.Join(pts, " "), lastX, lastY)
	return template.HTML(svg)
}

// fmtVal renders a metric value compactly.
func fmtVal(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.3g", v)
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
	}
}

// fmtDelta renders first→last drift with a CSS class.
func fmtDelta(first, last float64) (string, string) {
	if first == last {
		return "—", "flat"
	}
	cls := "up"
	if last < first {
		cls = "down"
	}
	if first == 0 {
		return fmt.Sprintf("%+.3g", last), cls
	}
	return fmt.Sprintf("%+.1f%%", (last/first-1)*100), cls
}

var pageTmpl = template.Must(template.New("page").Funcs(template.FuncMap{
	// mulf turns a share fraction into percent for display.
	"mulf": func(v float64) float64 { return v * 100 },
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #1a1a2e; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; border-bottom: 1px solid #ddd; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: right; padding: .25rem .6rem; border-bottom: 1px solid #eee; white-space: nowrap; }
th:first-child, td:first-child { text-align: left; }
th { color: #555; font-weight: 600; }
.meta { color: #777; font-size: .85rem; }
.spark { vertical-align: middle; }
.up { color: #2a7d2a; } .down { color: #b03030; } .flat { color: #999; }
.stack { display: flex; height: 18px; width: 100%; max-width: 28rem; border-radius: 3px; overflow: hidden; }
.legend { font-size: .8rem; color: #555; }
.legend span { display: inline-block; margin-right: .8rem; }
.swatch { display: inline-block; width: .7em; height: .7em; border-radius: 2px; margin-right: .25em; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p class="meta">generated {{.GeneratedAt}} · archive {{.ArchiveDir}} · {{.Records}} records</p>

{{range .Experiments}}
<h2>{{.ID}}</h2>
<p class="meta">{{.Points}} archived runs across {{.Specs}} spec(s)</p>
<table>
<tr><th>metric</th><th>unit</th><th>runs</th><th>first</th><th>last</th><th>Δ</th><th>p50</th><th>min</th><th>max</th><th>trajectory</th></tr>
{{range .Metrics}}
<tr><td>{{.Name}}</td><td>{{.Unit}}</td><td>{{.Count}}</td><td>{{.First}}</td><td>{{.Last}}</td>
<td class="{{.DeltaCls}}">{{.Delta}}</td><td>{{.P50}}</td><td>{{.Min}}</td><td>{{.Max}}</td><td>{{.Spark}}</td></tr>
{{end}}
</table>
{{if .Attrib}}
<h3>BTB-miss attribution (latest run)</h3>
{{range .Attrib}}
<p class="meta">{{.Spec}}</p>
<div class="stack">{{range .Segments}}<div title="{{.Cause}}: {{printf "%.1f%%" (mulf .Share)}}" style="width:{{printf "%.2f" .W}}%;background:{{.Color}}"></div>{{end}}</div>
<p class="legend">{{range .Segments}}<span><span class="swatch" style="background:{{.Color}}"></span>{{.Cause}} {{printf "%.1f%%" (mulf .Share)}}</span>{{end}}</p>
{{end}}
{{end}}
{{else}}
<p>No experiment records archived yet.</p>
{{end}}

<h2>Benchmark trajectory (skiabench)</h2>
{{if .Bench}}
<p class="meta">{{.BenchRuns}} archived envelopes</p>
<table>
<tr><th>benchmark</th><th>ns/op (latest)</th><th>Δ since first</th><th>trajectory</th></tr>
{{range .Bench}}
<tr><td>{{.Name}}</td><td>{{.NsLast}}</td><td>{{.Delta}}</td><td>{{.Spark}}</td></tr>
{{end}}
</table>
{{else}}
<p>No bench envelopes archived yet (skiabench -archive, or skiaboard put -bench BENCH_*.json).</p>
{{end}}
</body>
</html>
`))
