// Command skiaboard is the regression observatory over the run-history
// archive (internal/store): it renders a static HTML dashboard of
// metric trajectories, attribution share stacks, and the skiabench
// performance trajectory, checks the newest run of every trajectory
// against its predecessor under the internal/compare tolerance bands
// (sign-flip gate included) with exit-code gating for CI, and imports
// report or bench envelope files into the archive.
//
// Usage:
//
//	skiaboard render -archive DIR -out dashboard.html
//	skiaboard check  -archive DIR [-rtol 0.05] [-atol 1e-6] ...
//	skiaboard put    -archive DIR [-bench] FILE...
//
// render and the dashboard are stdlib-only (html/template plus inline
// SVG sparklines) — the output is one self-contained file suitable for
// a CI artifact. check diffs, per experiment and per spec hash, the
// latest archived record against the one before it; any tolerance
// violation or speedup sign flip exits 1. put stamps files produced
// elsewhere (skiaexp -out, skiactl report files, BENCH_*.json) into
// the archive, which is how CI injects a synthetic regression to prove
// the gate trips.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/compare"
	"repro/internal/experiments"
	"repro/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "render":
		err = cmdRender(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "put":
		err = cmdPut(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "skiaboard: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if err == errCheckFailed {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "skiaboard: %v\n", err)
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  skiaboard render -archive DIR [-out FILE] [-title T]   render the HTML dashboard
  skiaboard check  -archive DIR [tolerance flags]        gate the newest run of every trajectory (exit 1 on regression)
  skiaboard put    -archive DIR [-bench] FILE...         import report or bench envelope files
`)
}

// errCheckFailed signals the exit-1 path (regression found) as opposed
// to exit-2 operational errors.
var errCheckFailed = fmt.Errorf("check failed")

// openArchive opens the -archive directory, required by every
// subcommand.
func openArchive(dir string) (*store.Archive, error) {
	if dir == "" {
		return nil, fmt.Errorf("-archive is required")
	}
	return store.Open(dir)
}

// gitDescribe best-effort identifies the current tree ("" off-repo).
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// cmdCheck is the tolerance-band regression detector: for every
// (experiment, spec hash) trajectory with at least two records it
// diffs the previous record against the latest under the
// internal/compare tolerances — the same bands and speedup sign-flip
// gate cmd/skiacmp applies between result directories — and exits 1
// if any trajectory regressed.
func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("skiaboard check", flag.ExitOnError)
	var (
		dir       = fs.String("archive", "", "run-history archive directory")
		rtol      = fs.Float64("rtol", 0.05, "relative tolerance per numeric cell")
		atol      = fs.Float64("atol", 1e-6, "absolute tolerance floor for near-zero cells")
		flipMin   = fs.Float64("flip-min", 1e-3, "minimum |speedup| on both sides before a sign flip counts")
		ivRTol    = fs.Float64("iv-rtol", 0.05, "relative tolerance for per-spec interval summaries")
		attribTol = fs.Float64("attrib-tol", 0.05, "absolute tolerance for attribution shares")
	)
	fs.Parse(args)
	a, err := openArchive(*dir)
	if err != nil {
		return err
	}
	opt := compare.Options{RTol: *rtol, ATol: *atol, FlipMin: *flipMin,
		IVRTol: *ivRTol, AttribTol: *attribTol}

	checked, failed := 0, 0
	for _, exp := range a.Experiments() {
		series, err := a.Series(exp)
		if err != nil {
			return err
		}
		for _, sr := range series {
			n := len(sr.Records)
			if n < 2 {
				fmt.Printf("%s %s: 1 record, nothing to gate\n", exp, short(sr.SpecHash))
				continue
			}
			prev, err := experiments.DecodeReport(sr.Records[n-2].Payload)
			if err != nil {
				return fmt.Errorf("record %s: %w", sr.Records[n-2].ID, err)
			}
			latest, err := experiments.DecodeReport(sr.Records[n-1].Payload)
			if err != nil {
				return fmt.Errorf("record %s: %w", sr.Records[n-1].ID, err)
			}
			checked++
			res := compare.Diff(
				map[string]*experiments.Report{exp: prev},
				map[string]*experiments.Report{exp: latest}, opt)
			verdict := "ok"
			if res.Failed() {
				verdict = "REGRESSION"
				failed++
			}
			fmt.Printf("%s %s: %s (%s -> %s, %d cells)\n",
				exp, short(sr.SpecHash), verdict,
				short(sr.Records[n-2].ContentHash), short(sr.Records[n-1].ContentHash),
				res.Compared)
			if res.Failed() {
				fmt.Print(indent(res.String()))
			}
		}
	}
	fmt.Printf("checked %d trajectories, %d regressed\n", checked, failed)
	if failed > 0 {
		return errCheckFailed
	}
	return nil
}

// cmdPut imports envelope files into the archive: experiment reports
// by default (spec recovered from the envelope via store.SpecOfReport),
// BENCH_*.json envelopes with -bench.
func cmdPut(args []string) error {
	fs := flag.NewFlagSet("skiaboard put", flag.ExitOnError)
	var (
		dir      = fs.String("archive", "", "run-history archive directory")
		bench    = fs.Bool("bench", false, "files are skiabench BENCH_*.json envelopes, not reports")
		source   = fs.String("source", "skiaboard", "source label stamped on the records")
		describe = fs.String("git-describe", "", "tree version to stamp (default: the envelope's own, else git describe)")
	)
	fs.Parse(args)
	a, err := openArchive(*dir)
	if err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("put: no files given")
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		m := store.PutMeta{RecordedAt: time.Now(), GitDescribe: *describe, Source: *source}
		var entry store.IndexEntry
		var added bool
		if *bench {
			entry, added, err = a.PutBench(data, m)
		} else {
			rep, derr := experiments.DecodeReport(data)
			if derr != nil {
				return fmt.Errorf("%s: %w", path, derr)
			}
			if m.GitDescribe == "" {
				m.GitDescribe = rep.Meta.GitDescribe
			}
			if m.GitDescribe == "" {
				m.GitDescribe = gitDescribe()
			}
			entry, added, err = a.PutReport(data, store.SpecOfReport(rep), m)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		state := "archived"
		if !added {
			state = "already archived (dedup)"
		}
		fmt.Printf("%s: %s as %s (spec %s)\n", path, state, short(entry.ID), short(entry.SpecHash))
	}
	return nil
}

// short abbreviates a hash for terminal output ("" stays "").
func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// indent prefixes every non-empty line for nested findings output.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
