// Command vlxdump inspects generated VLX workloads: it disassembles
// cache lines, shows function layout (the hot/cold interleaving that
// creates shadow branches), and replays the Shadow Branch Decoder on a
// chosen line so the Index Computation / Path Validation phases can be
// studied byte by byte.
//
// Usage:
//
//	vlxdump -bench voter -layout | head -40
//	vlxdump -bench voter -line 0x400440
//	vlxdump -bench voter -line 0x400440 -entry 24   # head decode at offset 24
//	vlxdump -bench voter -line 0x400440 -exit 12    # tail decode from offset 12
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

func main() {
	var (
		bench  = flag.String("bench", "voter", "benchmark name")
		layout = flag.Bool("layout", false, "print the function layout")
		line   = flag.Uint64("line", 0, "cache line address to inspect")
		entry  = flag.Int("entry", -1, "run Head shadow decode with this entry offset")
		exit   = flag.Int("exit", -1, "run Tail shadow decode from this offset")
		stat   = flag.Bool("stats", false, "print workload statistics")
	)
	flag.Parse()

	r := sim.NewRunner()
	w, err := r.Workload(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlxdump:", err)
		os.Exit(1)
	}

	if *stat || (!*layout && *line == 0) {
		fmt.Printf("benchmark:       %s (%s)\n", w.Profile.Name, w.Profile.Suite)
		fmt.Printf("image:           %d bytes at %#x\n", len(w.Prog.Code), w.Prog.Base)
		fmt.Printf("functions:       %d\n", len(w.Prog.Funcs))
		fmt.Printf("static insts:    %d\n", w.NumStaticInsts())
		fmt.Printf("static branches: %d\n", w.StaticBranchCount())
		fmt.Printf("entry:           %#x\n", w.Prog.Entry)
		if !*layout && *line == 0 {
			fmt.Println("\nuse -layout or -line 0x<addr> to inspect code")
		}
	}

	if *layout {
		for _, f := range w.Prog.Funcs {
			kind := "cold"
			if f.Hot {
				kind = "HOT "
			}
			fmt.Printf("%#08x %5dB %s %s\n", f.Addr, f.Size, kind, f.Name)
		}
	}

	if *line != 0 {
		la := program.LineAddr(*line)
		bytes := w.Prog.Line(la)
		if bytes == nil {
			fmt.Fprintf(os.Stderr, "vlxdump: line %#x outside image\n", la)
			os.Exit(1)
		}
		fmt.Printf("\nline %#x:\n", la)
		// Disassemble on the canonical stream where boundaries exist.
		for off := 0; off < program.LineSize; {
			pc := la + uint64(off)
			in, ok := w.InstAt(pc)
			if !ok {
				fmt.Printf("  +%02d  %02x        (mid-instruction)\n", off, bytes[off])
				off++
				continue
			}
			mark := " "
			if in.Class.IsBranch() {
				mark = "*"
			}
			end := off + int(in.Len)
			if end > program.LineSize {
				end = program.LineSize
			}
			fmt.Printf("  +%02d %s % -24x %s\n", off, mark, bytes[off:end], isa.Disassemble(in))
			off += int(in.Len)
		}

		sbd := core.NewSBD(core.DefaultSBDConfig())
		if *entry >= 0 {
			found := sbd.DecodeHead(bytes, la, *entry, nil)
			fmt.Printf("\nhead decode (entry offset %d): %d shadow branches\n", *entry, len(found))
			for _, sb := range found {
				fmt.Printf("  %#x %-14s target %#x\n", sb.PC, sb.Class, sb.Target)
			}
			s := sbd.Stats()
			fmt.Printf("  regions=%d discarded=%d novalid=%d\n",
				s.HeadRegions, s.HeadDiscarded, s.HeadNoValidPath)
		}
		if *exit >= 0 {
			found := sbd.DecodeTail(bytes, la, *exit, nil)
			fmt.Printf("\ntail decode (from offset %d): %d shadow branches\n", *exit, len(found))
			for _, sb := range found {
				fmt.Printf("  %#x %-14s target %#x\n", sb.PC, sb.Class, sb.Target)
			}
		}
	}
}
