// Command skiacmp diffs two experiment result sets written by
// skiaexp -json -out and gates on regressions.
//
// Usage:
//
//	skiacmp [flags] BASE NEW
//
// BASE and NEW are result directories (holding <id>.json files) or
// single .json report files. Every numeric table cell shared by the
// two sets is compared: a cell fails when |new-old| exceeds
// atol + rtol*|old|, and cells in "speedup"-unit columns additionally
// fail on a sign flip — a who-wins shape regression — regardless of
// magnitude. Experiments, rows, or columns present in BASE but
// missing from NEW also fail; additions only warn.
//
// When the envelopes carry the optional `intervals` (schema v2+) or
// `attribution` (schema v3+) sections, those diff too: per-spec
// interval IPC mean and SBB coverage under -iv-rtol, and attribution
// shares (BTB-miss cause mix, stall mix, shadow residency) under the
// absolute -attrib-tol bound.
//
// Exit status: 0 when NEW is within tolerance of BASE, 1 on any
// regression, 2 on usage or load errors.
//
// Example regression gate:
//
//	skiaexp -exp all -json -out results/base   # on main
//	skiaexp -exp all -json -out results/head   # on the candidate
//	skiacmp results/base results/head
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/compare"
)

func main() {
	var (
		rtol      = flag.Float64("rtol", 0.05, "relative tolerance per numeric cell")
		atol      = flag.Float64("atol", 1e-6, "absolute tolerance floor for near-zero cells")
		flipMin   = flag.Float64("flip-min", 1e-3, "minimum |speedup| on both sides before a sign flip counts")
		ivRTol    = flag.Float64("iv-rtol", 0.05, "relative tolerance for per-spec interval summaries (IPC mean, SBB coverage)")
		attribTol = flag.Float64("attrib-tol", 0.05, "absolute tolerance for attribution shares (cause/stall mix, shadow residency)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: skiacmp [flags] BASE NEW\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := compare.LoadPath(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "skiacmp: %v\n", err)
		os.Exit(2)
	}
	head, err := compare.LoadPath(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "skiacmp: %v\n", err)
		os.Exit(2)
	}
	res := compare.Diff(base, head, compare.Options{
		RTol: *rtol, ATol: *atol, FlipMin: *flipMin,
		IVRTol: *ivRTol, AttribTol: *attribTol,
	})
	fmt.Print(res)
	if res.Failed() {
		os.Exit(1)
	}
}
