// Command skiacmp diffs two experiment result sets written by
// skiaexp -json -out and gates on regressions.
//
// Usage:
//
//	skiacmp [flags] BASE NEW
//
// BASE and NEW are result directories (holding <id>.json files) or
// single .json report files. Every numeric table cell shared by the
// two sets is compared: a cell fails when |new-old| exceeds
// atol + rtol*|old|, and cells in "speedup"-unit columns additionally
// fail on a sign flip — a who-wins shape regression — regardless of
// magnitude. Experiments, rows, or columns present in BASE but
// missing from NEW also fail; additions only warn.
//
// When the envelopes carry the optional `intervals` (schema v2+),
// `attribution` (schema v3+), or `sampling` (schema v5+) sections,
// those diff too: per-spec interval IPC mean and SBB coverage under
// -iv-rtol, attribution shares (BTB-miss cause mix, stall mix, shadow
// residency) under the absolute -attrib-tol bound, and sampled-metric
// point estimates under the ordinary cell rule.
//
// With -sample-ci the diff switches to sampled-validation mode: BASE
// is an exact reference (run with -sample-echo so its envelope carries
// CI-free sampling rows) and NEW a sampled run of the same experiment.
// Only the sampling sections are compared, and each sampled metric
// must contain the reference value inside its stated 95% confidence
// interval plus -sample-atol + -sample-rtol*|ref| of slack.
//
// Exit status: 0 when NEW is within tolerance of BASE, 1 on any
// regression, 2 on usage or load errors.
//
// Example regression gate:
//
//	skiaexp -exp all -json -out results/base   # on main
//	skiaexp -exp all -json -out results/head   # on the candidate
//	skiacmp results/base results/head
//
// Example sampled-accuracy gate:
//
//	skiaexp -exp fig14 -sample-echo -json -out results/exact
//	skiaexp -exp fig14 -sample -sample-shards 8 -json -out results/sampled
//	skiacmp -sample-ci results/exact results/sampled
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/compare"
)

func main() {
	var (
		rtol      = flag.Float64("rtol", 0.05, "relative tolerance per numeric cell")
		atol      = flag.Float64("atol", 1e-6, "absolute tolerance floor for near-zero cells")
		flipMin   = flag.Float64("flip-min", 1e-3, "minimum |speedup| on both sides before a sign flip counts")
		ivRTol    = flag.Float64("iv-rtol", 0.05, "relative tolerance for per-spec interval summaries (IPC mean, SBB coverage)")
		attribTol = flag.Float64("attrib-tol", 0.05, "absolute tolerance for attribution shares (cause/stall mix, shadow residency)")

		sampleCI   = flag.Bool("sample-ci", false, "validate NEW's sampled metrics against BASE's (exact) reference values: each must land inside its 95% CI plus slack")
		sampleATol = flag.Float64("sample-atol", 0.01, "absolute slack added to the CI bound (with -sample-ci)")
		sampleRTol = flag.Float64("sample-rtol", 0.05, "relative slack added to the CI bound (with -sample-ci)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: skiacmp [flags] BASE NEW\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := compare.LoadPath(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "skiacmp: %v\n", err)
		os.Exit(2)
	}
	head, err := compare.LoadPath(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "skiacmp: %v\n", err)
		os.Exit(2)
	}
	res := compare.Diff(base, head, compare.Options{
		RTol: *rtol, ATol: *atol, FlipMin: *flipMin,
		IVRTol: *ivRTol, AttribTol: *attribTol,
		SampleCI: *sampleCI, SampleATol: *sampleATol, SampleRTol: *sampleRTol,
	})
	fmt.Print(res)
	if res.Failed() {
		os.Exit(1)
	}
}
