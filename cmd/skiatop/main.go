// Command skiatop is a terminal dashboard over a running skiaserve: it
// polls /metrics, /healthz, and /v1/jobs and renders shard queue
// occupancy, worker utilization, latency percentiles (from the
// /metrics log2-bucket histograms), and per-job progress bars with
// simulated MIPS and ETA — the service's whole observability surface
// on one screen.
//
// Usage:
//
//	skiatop -addr http://127.0.0.1:8344              # refresh every 1s
//	skiatop -addr $URL -interval 250ms -jobs 20
//	skiatop -addr $URL -once                         # one frame, no ANSI (CI smoke)
//
// skiatop is a pure client: it renders only what the HTTP surface
// exposes, so anything visible here is equally available to curl.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8344", "skiaserve base URL")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		jobRows  = flag.Int("jobs", 12, "max job rows to display")
		once     = flag.Bool("once", false, "render a single frame without ANSI control codes and exit")
	)
	flag.Parse()

	if *once {
		frame, err := buildFrame(*addr, *jobRows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skiatop: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(frame)
		return
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		frame, err := buildFrame(*addr, *jobRows)
		if err != nil {
			frame = fmt.Sprintf("skiatop: %v (retrying)\n", err)
		}
		// Clear screen + home, then the frame.
		fmt.Print("\x1b[2J\x1b[H" + frame)
		select {
		case <-sigc:
			fmt.Println()
			return
		case <-ticker.C:
		}
	}
}

// buildFrame fetches the three endpoints and renders one dashboard
// frame.
func buildFrame(addr string, jobRows int) (string, error) {
	snap, err := scrapeMetrics(addr + "/metrics")
	if err != nil {
		return "", err
	}
	health, err := fetchHealth(addr + "/healthz")
	if err != nil {
		return "", err
	}
	jobs, err := fetchJobs(addr + "/v1/jobs")
	if err != nil {
		return "", err
	}
	var b strings.Builder
	renderFrame(&b, addr, snap, health, jobs, jobRows)
	return b.String(), nil
}

func fetchHealth(url string) (*serve.Health, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// Draining servers answer 503 with the same body; both render.
	var h serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("decode healthz: %w", err)
	}
	return &h, nil
}

func fetchJobs(url string) ([]serve.JobStatus, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("jobs: http %d", resp.StatusCode)
	}
	var jobs []serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		return nil, fmt.Errorf("decode jobs: %w", err)
	}
	return jobs, nil
}

func scrapeMetrics(url string) (*metricsSnapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: http %d", resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	return parseMetrics(string(data))
}

// renderFrame writes one dashboard frame: header, shard queues,
// latency percentiles, job table.
func renderFrame(b *strings.Builder, addr string, m *metricsSnapshot, h *serve.Health, jobs []serve.JobStatus, jobRows int) {
	status := h.Status
	fmt.Fprintf(b, "skiatop  %s  status=%s  workers %d/%d busy  queued %d  inflight %d\n",
		addr, status, h.WorkersBusy, h.Workers, h.Queued, h.Inflight)
	fmt.Fprintf(b, "jobs: submitted=%d done=%d failed=%d canceled=%d rejected=%d\n",
		uint64(m.scalar("jobs_submitted_total")), uint64(m.scalar("jobs_completed_total")),
		uint64(m.scalar("jobs_failed_total")), uint64(m.scalar("jobs_canceled_total")),
		uint64(m.scalar("jobs_rejected_total")))

	for _, sh := range h.Shards {
		fmt.Fprintf(b, "shard %d  %s %d/%d\n",
			sh.Shard, bar(float64(sh.QueueDepth), float64(sh.QueueCapacity), 20),
			sh.QueueDepth, sh.QueueCapacity)
	}

	line := func(label, hist string) {
		hd, ok := m.hists[hist]
		if !ok || hd.count == 0 {
			fmt.Fprintf(b, "%-22s (no samples)\n", label)
			return
		}
		fmt.Fprintf(b, "%-22s p50<=%s  p99<=%s  n=%d\n",
			label, fmtSeconds(hd.quantile(0.50)), fmtSeconds(hd.quantile(0.99)), hd.count)
	}
	line("queue wait", "job_queue_wait_seconds")
	line("run time", "job_run_seconds")
	for _, route := range []string{"submit", "status", "stream"} {
		line("http "+route, `http_request_seconds{route="`+route+`"}`)
	}

	// Jobs: running first (with progress bars), then queued, then the
	// most recent terminal ones, up to jobRows.
	sort.SliceStable(jobs, func(i, k int) bool {
		return jobOrder(jobs[i].Status) < jobOrder(jobs[k].Status)
	})
	shown := 0
	for _, j := range jobs {
		if shown >= jobRows {
			fmt.Fprintf(b, "… %d more jobs\n", len(jobs)-shown)
			break
		}
		shown++
		switch j.Status {
		case serve.StatusRunning:
			p := j.Progress
			if p == nil {
				fmt.Fprintf(b, "%s %-8s running\n", j.JobID, j.Experiment)
				continue
			}
			eta := ""
			if p.ETASeconds > 0 {
				eta = fmt.Sprintf("  eta %s", fmtSeconds(p.ETASeconds))
			}
			fmt.Fprintf(b, "%s %-8s %s %5.1f%%  %6.1f MIPS%s\n",
				j.JobID, j.Experiment, bar(p.Fraction, 1, 20), p.Fraction*100, p.SimMIPS, eta)
		case serve.StatusQueued:
			wait := ""
			if j.Progress != nil {
				wait = fmt.Sprintf("  waiting %s", fmtSeconds(j.Progress.QueueSeconds))
			}
			fmt.Fprintf(b, "%s %-8s queued on shard %d%s\n", j.JobID, j.Experiment, j.Shard, wait)
		default:
			fmt.Fprintf(b, "%s %-8s %s  wall %s\n",
				j.JobID, j.Experiment, j.Status, fmtSeconds(j.WallSeconds))
		}
	}
}

func jobOrder(status string) int {
	switch status {
	case serve.StatusRunning:
		return 0
	case serve.StatusQueued:
		return 1
	default:
		return 2
	}
}

// bar renders a fixed-width occupancy bar.
func bar(v, max float64, width int) string {
	if max <= 0 {
		max = 1
	}
	f := v / max
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	full := int(f * float64(width))
	return "[" + strings.Repeat("#", full) + strings.Repeat(".", width-full) + "]"
}

// fmtSeconds renders a duration in seconds at a human scale.
func fmtSeconds(s float64) string {
	d := time.Duration(s * float64(time.Second))
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
