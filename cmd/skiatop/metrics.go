package main

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// metricsSnapshot is one parsed /metrics scrape: unlabeled scalars by
// short name (the skiaserve_ prefix stripped) and histograms by
// "name" or "name{labels}" series key.
type metricsSnapshot struct {
	scalars map[string]float64
	hists   map[string]*promHistogram
}

// promHistogram reassembles one exposition-format histogram series:
// ascending bucket upper bounds with cumulative counts, plus sum and
// count.
type promHistogram struct {
	bounds []float64 // ascending; +Inf is implicit via count
	counts []uint64  // cumulative, aligned with bounds
	sum    float64
	count  uint64
}

// quantile returns the upper bound of the first bucket covering the
// q-quantile — the same "p99 <= bound" reading Prometheus'
// histogram_quantile gives, without interpolation.
func (h *promHistogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	for i, c := range h.counts {
		if c >= target {
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

func (m *metricsSnapshot) scalar(name string) float64 { return m.scalars[name] }

// parseMetrics parses the Prometheus text exposition format far enough
// for the dashboard: skiaserve_-prefixed scalar lines and histogram
// _bucket/_sum/_count series. Comment lines (# HELP/# TYPE) are
// skipped; unknown metrics are retained as scalars.
func parseMetrics(text string) (*metricsSnapshot, error) {
	m := &metricsSnapshot{
		scalars: map[string]float64{},
		hists:   map[string]*promHistogram{},
	}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("metrics line %q: no value", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics line %q: %v", line, err)
		}
		name, labels := splitSeries(series)
		name = strings.TrimPrefix(name, "skiaserve_")
		switch {
		case strings.HasSuffix(name, "_bucket"):
			base := strings.TrimSuffix(name, "_bucket")
			le, rest := extractLabel(labels, "le")
			h := m.hist(histKey(base, rest))
			if le == "+Inf" {
				// The +Inf bucket equals _count; recorded there.
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return nil, fmt.Errorf("metrics line %q: bad le: %v", line, err)
			}
			h.bounds = append(h.bounds, bound)
			h.counts = append(h.counts, uint64(val))
		case strings.HasSuffix(name, "_sum"):
			m.hist(histKey(strings.TrimSuffix(name, "_sum"), labels)).sum = val
		case strings.HasSuffix(name, "_count"):
			m.hist(histKey(strings.TrimSuffix(name, "_count"), labels)).count = uint64(val)
		case labels == "":
			m.scalars[name] = val
		default:
			m.scalars[name+"{"+labels+"}"] = val
		}
	}
	return m, nil
}

func (m *metricsSnapshot) hist(key string) *promHistogram {
	h := m.hists[key]
	if h == nil {
		h = &promHistogram{}
		m.hists[key] = h
	}
	return h
}

func histKey(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// splitSeries splits `name{labels}` into name and the raw label body.
func splitSeries(series string) (name, labels string) {
	open := strings.IndexByte(series, '{')
	if open < 0 {
		return series, ""
	}
	close := strings.LastIndexByte(series, '}')
	if close < open {
		return series, ""
	}
	return series[:open], series[open+1 : close]
}

// extractLabel removes one label pair from a label body, returning its
// value and the remaining labels. Good enough for the exposition
// format skiaserve emits (no escaped quotes in label values).
func extractLabel(labels, key string) (value, rest string) {
	var kept []string
	for _, part := range strings.Split(labels, ",") {
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if ok && k == key {
			value = strings.Trim(v, `"`)
			continue
		}
		kept = append(kept, part)
	}
	return value, strings.Join(kept, ",")
}
