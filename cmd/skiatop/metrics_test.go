package main

import (
	"math"
	"strings"
	"testing"
)

const sampleScrape = `# HELP skiaserve_jobs_submitted_total Jobs accepted (HTTP 202).
# TYPE skiaserve_jobs_submitted_total counter
skiaserve_jobs_submitted_total 32
skiaserve_jobs_queued 3
skiaserve_draining 0
skiaserve_shard_queue_depth{shard="0"} 2
skiaserve_shard_queue_depth{shard="1"} 1
# TYPE skiaserve_job_run_seconds histogram
skiaserve_job_run_seconds_bucket{le="0.25"} 10
skiaserve_job_run_seconds_bucket{le="0.5"} 25
skiaserve_job_run_seconds_bucket{le="1"} 31
skiaserve_job_run_seconds_bucket{le="+Inf"} 32
skiaserve_job_run_seconds_sum 14.500000
skiaserve_job_run_seconds_count 32
skiaserve_http_request_seconds_bucket{route="submit",le="0.001"} 30
skiaserve_http_request_seconds_bucket{route="submit",le="+Inf"} 32
skiaserve_http_request_seconds_sum{route="submit"} 0.040000
skiaserve_http_request_seconds_count{route="submit"} 32
`

func TestParseMetricsScalarsAndShards(t *testing.T) {
	m, err := parseMetrics(sampleScrape)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.scalar("jobs_submitted_total"); got != 32 {
		t.Errorf("submitted = %v", got)
	}
	if got := m.scalar("jobs_queued"); got != 3 {
		t.Errorf("queued = %v", got)
	}
	if got := m.scalar(`shard_queue_depth{shard="1"}`); got != 1 {
		t.Errorf("shard 1 depth = %v", got)
	}
}

func TestParseMetricsHistogram(t *testing.T) {
	m, err := parseMetrics(sampleScrape)
	if err != nil {
		t.Fatal(err)
	}
	h := m.hists["job_run_seconds"]
	if h == nil {
		t.Fatal("no job_run_seconds histogram")
	}
	if h.count != 32 || h.sum != 14.5 {
		t.Errorf("count=%d sum=%v", h.count, h.sum)
	}
	if len(h.bounds) != 3 {
		t.Fatalf("bounds = %v (+Inf must be implicit)", h.bounds)
	}
	// p50 of 32 samples: target 16 -> first bucket with count >= 16 is
	// le=0.5. p99: target 32 -> beyond the finite buckets -> +Inf.
	if q := h.quantile(0.50); q != 0.5 {
		t.Errorf("p50 = %v, want 0.5", q)
	}
	if q := h.quantile(0.99); !math.IsInf(q, 1) {
		t.Errorf("p99 = %v, want +Inf", q)
	}
	// Labeled series key includes the remaining labels.
	hr := m.hists[`http_request_seconds{route="submit"}`]
	if hr == nil || hr.count != 32 {
		t.Fatalf("labeled histogram = %+v", hr)
	}
	if q := hr.quantile(0.5); q != 0.001 {
		t.Errorf("submit p50 = %v, want 0.001", q)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	var h promHistogram
	if q := h.quantile(0.99); q != 0 {
		t.Errorf("empty histogram quantile = %v", q)
	}
	h = promHistogram{bounds: []float64{2}, counts: []uint64{1}, count: 1}
	if q := h.quantile(0.5); q != 2 {
		t.Errorf("single-sample p50 = %v", q)
	}
}

func TestBarAndFmtSeconds(t *testing.T) {
	if got := bar(0, 1, 4); got != "[....]" {
		t.Errorf("empty bar = %q", got)
	}
	if got := bar(1, 1, 4); got != "[####]" {
		t.Errorf("full bar = %q", got)
	}
	if got := bar(3, 2, 4); got != "[####]" {
		t.Errorf("overfull bar = %q (must clamp)", got)
	}
	if got := fmtSeconds(90); got != "1m30s" {
		t.Errorf("fmtSeconds(90) = %q", got)
	}
	if got := fmtSeconds(0.5); !strings.HasSuffix(got, "ms") {
		t.Errorf("fmtSeconds(0.5) = %q", got)
	}
}
