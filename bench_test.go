// Package repro's benchmark harness: one testing.B benchmark per table
// and figure in the paper's evaluation, plus the DESIGN.md ablations.
// Each benchmark runs the corresponding experiment harness on a reduced
// benchmark subset and window (so `go test -bench=.` completes on a
// laptop) and reports the figure's headline quantities as custom
// metrics. For full-suite, full-window numbers use:
//
//	go run ./cmd/skiaexp -exp all
package repro

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/attrib"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// benchOpts returns reduced-size options sized for iteration under
// `go test -bench`.
func benchOpts() experiments.Options {
	return experiments.Options{
		Warmup:  200_000,
		Measure: 600_000,
		// A representative spread: two high-gain call/return-heavy
		// OLTP workloads, one cond-dominated (low-gain), one small.
		Benchmarks: []string{"voter", "sibench", "kafka", "finagle-chirper"},
	}
}

// parsePct extracts a percentage cell like "+5.64%" into a float.
func parsePct(s string) float64 {
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// lastRowCell fetches a cell from the rendered table's final data row.
func lastRowCell(rep *experiments.Report, col int) string {
	lines := strings.Split(strings.TrimRight(rep.Table.String(), "\n"), "\n")
	fields := strings.Fields(lines[len(lines)-1])
	if col < len(fields) {
		return fields[col]
	}
	return ""
}

func runOnce(b *testing.B, f func(experiments.Options) (*experiments.Report, error)) *experiments.Report {
	b.Helper()
	var rep *experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = f(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// BenchmarkTable1Config renders the processor configuration table.
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1() == nil {
			b.Fatal("no report")
		}
	}
}

// BenchmarkTable2Benchmarks renders the benchmark registry table.
func BenchmarkTable2Benchmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig01BTBMissVsL1IHit regenerates Figure 1: BTB-miss MPKI and
// the L1-I-resident fraction across BTB sizes.
func BenchmarkFig01BTBMissVsL1IHit(b *testing.B) {
	rep := runOnce(b, func(o experiments.Options) (*experiments.Report, error) {
		return experiments.Fig1(o, []int{2048, 8192})
	})
	// Final row is the 8K size; column 3 is the resident fraction.
	b.ReportMetric(parsePct(lastRowCell(rep, 3)), "l1i-hit-%@8K")
}

// BenchmarkFig03SpeedupVsBTBSize regenerates Figure 3 at two BTB sizes.
func BenchmarkFig03SpeedupVsBTBSize(b *testing.B) {
	rep := runOnce(b, func(o experiments.Options) (*experiments.Report, error) {
		return experiments.Fig3(o, []int{4096, 8192})
	})
	b.ReportMetric(parsePct(lastRowCell(rep, 3)), "skia-speedup-%@8K")
}

// BenchmarkFig06MissByType regenerates Figure 6: BTB misses by branch
// type per benchmark.
func BenchmarkFig06MissByType(b *testing.B) {
	runOnce(b, experiments.Fig6)
}

// BenchmarkFig13L1IValidation regenerates Figure 13: simulated L1-I
// MPKI against the recorded real-system targets.
func BenchmarkFig13L1IValidation(b *testing.B) {
	runOnce(b, experiments.Fig13)
}

// BenchmarkFig14IPCGain regenerates Figure 14: head-only, tail-only and
// combined IPC gains with the geomean row.
func BenchmarkFig14IPCGain(b *testing.B) {
	rep := runOnce(b, experiments.Fig14)
	b.ReportMetric(parsePct(lastRowCell(rep, 1)), "head-%")
	b.ReportMetric(parsePct(lastRowCell(rep, 2)), "tail-%")
	b.ReportMetric(parsePct(lastRowCell(rep, 3)), "both-%")
}

// BenchmarkFig15MissResidency regenerates Figure 15: per-benchmark BTB
// misses split by L1-I residency.
func BenchmarkFig15MissResidency(b *testing.B) {
	runOnce(b, experiments.Fig15)
}

// BenchmarkFig16MissMPKI regenerates Figure 16: miss MPKI for baseline,
// equal-state BTB, and Skia.
func BenchmarkFig16MissMPKI(b *testing.B) {
	runOnce(b, experiments.Fig16)
}

// BenchmarkFig17SBBSensitivity regenerates Figure 17: the U/R split and
// total-size sweeps.
func BenchmarkFig17SBBSensitivity(b *testing.B) {
	runOnce(b, experiments.Fig17)
}

// BenchmarkFig18DecoderIdle regenerates Figure 18: decoder idle-cycle
// reduction.
func BenchmarkFig18DecoderIdle(b *testing.B) {
	runOnce(b, experiments.Fig18)
}

// BenchmarkBoltComparison regenerates Section 6.1.4: pre-BOLT vs bolted
// verilator.
func BenchmarkBoltComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Benchmarks = nil // Bolt picks its own variants
		if _, err := experiments.Bolt(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationIndexPolicy sweeps First/Zero/Merge head-decode
// start policies (DESIGN.md ablation 2).
func BenchmarkAblationIndexPolicy(b *testing.B) {
	runOnce(b, experiments.AblationIndexPolicy)
}

// BenchmarkAblationPathCap sweeps the head decoder's valid-path cap
// (DESIGN.md ablation 3).
func BenchmarkAblationPathCap(b *testing.B) {
	runOnce(b, func(o experiments.Options) (*experiments.Report, error) {
		return experiments.AblationPathCap(o, []int{1, 6, 12})
	})
}

// BenchmarkAblationRetiredBit compares retired-first SBB eviction
// against plain LRU (DESIGN.md ablation 4).
func BenchmarkAblationRetiredBit(b *testing.B) {
	runOnce(b, experiments.AblationReplacement)
}

// BenchmarkAblationInsertIntoBTB compares the parallel SBB against
// inserting shadow branches straight into the BTB (DESIGN.md
// ablation 6).
func BenchmarkAblationInsertIntoBTB(b *testing.B) {
	runOnce(b, experiments.AblationInsertIntoBTB)
}

// BenchmarkAblationWrongPath quantifies wrong-path fetch volume and its
// cost (DESIGN.md ablation 1).
func BenchmarkAblationWrongPath(b *testing.B) {
	runOnce(b, experiments.AblationWrongPath)
}

// BenchmarkExtensionShadowConds evaluates the beyond-paper extension of
// storing shadow conditionals in the U-SBB.
func BenchmarkExtensionShadowConds(b *testing.B) {
	runOnce(b, experiments.ExtensionShadowConds)
}

// cycleCore builds a core on a small workload for the hot-loop
// benchmarks below, warmed so the timed region measures steady state.
func cycleCore(b *testing.B, cfg cpu.Config) *cpu.Core {
	b.Helper()
	prof, err := workload.ByName("voter")
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.Generate(prof)
	if err != nil {
		b.Fatal(err)
	}
	c, err := cpu.New(cfg, w)
	if err != nil {
		b.Fatal(err)
	}
	c.Run(100_000) // warm predictors and caches out of the timed region
	c.ResetStats()
	return c
}

// observabilityCore builds a Skia-configured core on a small workload
// for the disabled- vs enabled-observability overhead pair below.
func observabilityCore(b *testing.B) *cpu.Core {
	b.Helper()
	return cycleCore(b, cpu.SkiaConfig())
}

// benchCycle is the shared hot loop: run the simulated core in 1000-
// instruction slices, rebuilding it when the workload halts, and report
// simulated instruction throughput alongside the allocation counters.
func benchCycle(b *testing.B, mk func() *cpu.Core) {
	c := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Run(1000) == 0 {
			b.StopTimer()
			c = mk()
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(c.Retired())/float64(b.Elapsed().Seconds())/1e6, "Minsts/s")
}

// BenchmarkFrontEndCycle is the headline hot-loop benchmark the perf
// trajectory (BENCH_*.json) tracks: the full Skia front-end cycle —
// IAG, FTQ, L1-I, shadow decode (memoized), decode verification — with
// no observability attached. cmd/skiabench records its ns/op, B/op,
// allocs/op, and Minsts/s every run.
func BenchmarkFrontEndCycle(b *testing.B) {
	benchCycle(b, func() *cpu.Core { return cycleCore(b, cpu.SkiaConfig()) })
}

// BenchmarkFrontEndCycle_NoDecodeCache is the same loop with the
// shadow-decode memoization disabled: every line entering the FTQ is
// re-length-decoded. The gap to BenchmarkFrontEndCycle is the cache's
// net win.
func BenchmarkFrontEndCycle_NoDecodeCache(b *testing.B) {
	cfg := cpu.SkiaConfig()
	cfg.Frontend.NoDecodeCache = true
	benchCycle(b, func() *cpu.Core { return cycleCore(b, cfg) })
}

// BenchmarkFrontEndCycle_Baseline runs the non-Skia baseline front-end
// (no shadow decoders at all), isolating how much of the cycle cost the
// Skia structures add.
func BenchmarkFrontEndCycle_Baseline(b *testing.B) {
	benchCycle(b, func() *cpu.Core { return cycleCore(b, cpu.DefaultConfig()) })
}

// BenchmarkFrontEndCycle_NoObservability is the zero-overhead guard's
// baseline: the simulated core with no collector and no tracer. Compare
// ns/op against _WithTracer; the disabled path must stay within noise
// (<2%) of what the pre-observability core cost.
func BenchmarkFrontEndCycle_NoObservability(b *testing.B) {
	c := observabilityCore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Run(1000) == 0 {
			b.StopTimer()
			c = observabilityCore(b)
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(c.Retired())/float64(b.Elapsed().Seconds())/1e6, "Minsts/s")
}

// BenchmarkFrontEndCycle_WithTracer measures the same loop with the
// full observability stack attached: an interval collector sampling
// every 10k instructions and a ring tracer receiving every event.
func BenchmarkFrontEndCycle_WithTracer(b *testing.B) {
	c := observabilityCore(b)
	attach := func(c *cpu.Core) {
		c.AttachCollector(metrics.NewCollector(10_000))
		c.SetTracer(metrics.NewRingTracer(1 << 16))
	}
	attach(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Run(1000) == 0 {
			b.StopTimer()
			c = observabilityCore(b)
			attach(c)
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(c.Retired())/float64(b.Elapsed().Seconds())/1e6, "Minsts/s")
}

// BenchmarkFrontEndCycle_WithAttribution measures the loop with a miss
// attribution engine attached: per-cycle FTQ sampling, per-miss
// classification, and per-stall-cycle accounting. Compare ns/op against
// _NoObservability; attribution must stay within a few percent (the
// <2% guard is on the *disabled* path, which stays a nil check —
// enabled attribution is expected to cost slightly more than tracing
// since it hooks every cycle).
func BenchmarkFrontEndCycle_WithAttribution(b *testing.B) {
	c := observabilityCore(b)
	attach := func(c *cpu.Core) {
		c.AttachAttribution(attrib.NewEngine())
	}
	attach(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Run(1000) == 0 {
			b.StopTimer()
			c = observabilityCore(b)
			attach(c)
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(c.Retired())/float64(b.Elapsed().Seconds())/1e6, "Minsts/s")
}

// TestFrontEndCycleAllocBudget is the dynamic counterpart of the
// //skia:noalloc annotations on the front-end cycle path: the static
// check proves no compiler-reported escape sits inside an annotated
// function, and this ratchet proves the composed steady-state loop
// (1000 cycles per op) stays within one allocation per op — the
// occasional map-growth rehash, nothing per-cycle. skiabench enforces
// the same absolute budget on the frontend-cycle registry entry.
func TestFrontEndCycleAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full benchmark")
	}
	if invariantsArmed {
		t.Skip("skiainvariants assertions are noinline and cost a few allocs; the budget pins the default build")
	}
	r := testing.Benchmark(BenchmarkFrontEndCycle)
	if a := r.AllocsPerOp(); a > 1 {
		t.Fatalf("front-end cycle path allocates %d allocs/op (budget 1): a per-cycle allocation crept past the //skia:noalloc annotations", a)
	}
}
