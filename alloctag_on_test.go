//go:build skiainvariants

package repro

const invariantsArmed = true
