//go:build !skiainvariants

package repro

// invariantsArmed mirrors the internal invariantsEnabled consts so
// root-package tests can tell which build they are pinning.
const invariantsArmed = false
