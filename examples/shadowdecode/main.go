// Shadowdecode walks the Shadow Branch Decoder through hand-built cache
// lines, reproducing the paper's worked examples: Figure 8's ambiguous
// Head region (two decodings that merge), Figure 9's Index Computation
// and Path Validation phases, and Figure 10's unambiguous Tail decode.
// It closes with a live run of the miss-attribution engine, measuring
// the paper's Figures 1-2 observation — what fraction of BTB misses
// were already resident in L1-I shadow bytes, split Head vs Tail — on
// a simulated workload (the same numbers `skiasim -bench voter -skia
// -attrib` prints).
//
//	go run ./examples/shadowdecode
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

func dump(label string, line []byte, n int) {
	fmt.Printf("%s bytes:", label)
	for i := 0; i < n; i++ {
		fmt.Printf(" %02x", line[i])
	}
	fmt.Println()
}

func main() {
	const base = 0x40_0000

	// --- Figure 8: ambiguity with merging paths -------------------------
	fmt.Println("== Head ambiguity (paper Figure 8) ==")
	line := make([]byte, program.LineSize)
	line[0] = 0xB0 // movi r0, imm8 — consumes byte 1...
	line[1] = 0xC3 // ...which, decoded on its own, is a ret
	line[2] = 0xE9 // the real shadow branch: jmp rel32
	line[3], line[4], line[5], line[6] = 0x10, 0, 0, 0
	for i := 7; i < program.LineSize; i++ {
		line[i] = 0x90
	}
	dump("head", line, 7)
	fmt.Println("decoding from byte 0: movi(2B) -> jmp(5B) -> entry ✓")
	fmt.Println("decoding from byte 1: ret(1B)  -> jmp(5B) -> entry ✓ (merging path)")

	sbd := core.NewSBD(core.DefaultSBDConfig())
	found := sbd.DecodeHead(line, base, 7, nil)
	for _, sb := range found {
		fmt.Printf("extracted: %-14s at %#x target %#x\n", sb.Class, sb.PC, sb.Target)
	}
	fmt.Println("the bogus ret is uncorroborated and suppressed; the real jmp survives.")

	// --- Figure 9: index computation over a head region ----------------
	fmt.Println("\n== Index computation (paper Figure 9) ==")
	var a isa.Asm
	a.IncDec(5, false)  // 1 byte
	a.CallRel32(0x3_00) // 5 bytes
	a.Nop(2)            // bytes 6,7
	entry := a.Len()    // 8
	a.MovImm32(1, 42)   // the executed block
	head := make([]byte, program.LineSize)
	copy(head, a.Bytes())
	dump("head", head, entry)
	for off := 0; off < entry; off++ {
		fmt.Printf("  Length[%d] = %d\n", off, isa.LengthAt(head, off))
	}
	found = sbd.DecodeHead(head, base, entry, nil)
	for _, sb := range found {
		fmt.Printf("extracted: %-14s at +%d target %#x\n",
			sb.Class, sb.PC-base, sb.Target)
	}

	// --- Figure 10: tail decode -----------------------------------------
	fmt.Println("\n== Tail decode (paper Figure 10) ==")
	a.Reset()
	a.Nop(4)
	a.JmpRel32(0x200) // the executed exit at offset 4..8
	exit := a.Len()   // tail shadow starts at 9
	a.ALUReg(0, 1, 2)
	a.CallRel32(0x80)
	a.Ret()
	tail := make([]byte, program.LineSize)
	copy(tail, a.Bytes())
	for i := a.Len(); i < program.LineSize; i++ {
		tail[i] = 0x90
	}
	fmt.Printf("executed block exits at offset %d; decoding the tail:\n", exit)
	found = sbd.DecodeTail(tail, base, exit, nil)
	for _, sb := range found {
		fmt.Printf("extracted: %-14s at +%d target %#x\n", sb.Class, sb.PC-base, sb.Target)
	}
	fmt.Println("\ntail decoding is unambiguous: the exit branch's end fixes the start byte.")

	// --- Attribution: the Figure 1/2 observation, measured --------------
	fmt.Println("\n== Miss attribution (paper Figures 1-2) ==")
	res, err := sim.NewRunner().Run(sim.RunSpec{
		Benchmark: "voter", Config: cpu.SkiaConfig(),
		Warmup: 100_000, Measure: 300_000, Label: "skia", Attrib: true,
	})
	if err != nil {
		panic(err)
	}
	at := res.Attribution
	fmt.Printf("BTB misses attributed: %d\n", at.BTBMisses)
	fmt.Printf("shadow-resident share: %.1f%% (head %.1f%% / tail %.1f%% still undecoded)\n",
		at.ShadowResidentShare*100, at.HeadShare*100, at.TailShare*100)
	for _, c := range at.Causes {
		if c.Count > 0 {
			fmt.Printf("  %-18s %6d (%.1f%%)\n", c.Cause, c.Count, c.Share*100)
		}
	}
	fmt.Println("the shadow-resident buckets (sbb-hit + shadow-head/tail + sbb-evicted)")
	fmt.Println("are the misses Skia can serve from bytes the L1-I already holds.")
}
