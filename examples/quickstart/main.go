// Quickstart: generate one of the paper's benchmark models, simulate
// the baseline FDIP front-end and the same front-end with Skia, and
// print the headline comparison (paper Section 6.1).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	runner := sim.NewRunner()
	const bench = "voter" // one of the paper's biggest gainers

	run := func(label string, cfg cpu.Config) sim.Result {
		res, err := runner.Run(sim.RunSpec{
			Benchmark: bench,
			Config:    cfg,
			Warmup:    500_000,
			Measure:   2_000_000,
			Label:     label,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("simulating %q: baseline 8K-entry BTB, then + 12.25KB SBB (Skia)...\n\n", bench)
	base := run("baseline", cpu.DefaultConfig())
	skia := run("skia", cpu.SkiaConfig())

	fmt.Printf("baseline:  IPC %.3f   BTB miss MPKI %.2f   decode re-steers %d\n",
		base.IPC, base.BTBMissMPKI, base.FE.DecodeResteers)
	fmt.Printf("skia:      IPC %.3f   effective MPKI %.2f   decode re-steers %d\n",
		skia.IPC, skia.EffectiveMissMPKI, skia.FE.DecodeResteers)
	fmt.Printf("\nspeedup: %s (SBB covered %d BTB misses: %d jumps/calls, %d returns)\n",
		stats.Percent(stats.Speedup(skia.IPC, base.IPC)),
		skia.FE.SBBCoveredTotal(), skia.FE.SBBCoveredU, skia.FE.SBBCoveredR)
	fmt.Printf("of the baseline's BTB misses, %.0f%% were on L1-I-resident lines —\n",
		base.BTBMissL1IHitFrac*100)
	fmt.Println("the shadow-branch opportunity the paper is built on (its Figure 1: ~75%).")
}
