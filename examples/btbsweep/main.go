// Btbsweep reproduces the shape of the paper's Figure 3 on a single
// benchmark: sweeping BTB capacity and comparing a plain BTB, a BTB
// grown by the SBB's hardware budget, and the BTB+SBB (Skia), against
// an infinite-BTB upper bound.
//
//	go run ./examples/btbsweep [-bench tpcc]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	bench := flag.String("bench", "voter", "benchmark to sweep")
	flag.Parse()

	runner := sim.NewRunner()
	run := func(cfg cpu.Config) float64 {
		res, err := runner.Run(sim.RunSpec{
			Benchmark: *bench, Config: cfg,
			Warmup: 400_000, Measure: 1_200_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res.IPC
	}

	sizes := []int{2048, 4096, 8192, 16384}
	sbbBits := core.DefaultSBBConfig().StorageBits()

	// Baseline for normalization: the smallest plain BTB.
	baseCfg := cpu.DefaultConfig()
	baseCfg.Frontend.BTB = sim.BTBWithEntries(sizes[0])
	baseIPC := run(baseCfg)

	infCfg := cpu.DefaultConfig()
	infCfg.Frontend.BTB.Infinite = true
	infIPC := run(infCfg)

	tb := stats.NewTable("btb_entries", "btb", "btb+state", "btb+sbb")
	for _, size := range sizes {
		plain := cpu.DefaultConfig()
		plain.Frontend.BTB = sim.BTBWithEntries(size)

		grown := cpu.DefaultConfig()
		grown.Frontend.BTB = sim.AugmentedBTB(sim.BTBWithEntries(size), sbbBits)

		skia := cpu.SkiaConfig()
		skia.Frontend.BTB = sim.BTBWithEntries(size)

		tb.AddRow(fmt.Sprintf("%d", size),
			stats.Percent(stats.Speedup(run(plain), baseIPC)),
			stats.Percent(stats.Speedup(run(grown), baseIPC)),
			stats.Percent(stats.Speedup(run(skia), baseIPC)))
	}
	fmt.Printf("speedup over a %d-entry BTB on %q (infinite BTB: %s)\n\n",
		sizes[0], *bench, stats.Percent(stats.Speedup(infIPC, baseIPC)))
	fmt.Print(tb)
	fmt.Println("\npaper Figure 3's shape: at every size until saturation, the SBB's")
	fmt.Println("12.25KB beats giving the BTB the same budget, because the branches")
	fmt.Println("the SBB captures are ones the BTB keeps evicting.")
}
