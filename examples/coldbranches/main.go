// Coldbranches demonstrates the phenomenon the paper is built on
// (Sections 1-2): "cold" branches that recur throughout execution but
// are evicted from the BTB between recurrences — capacity misses, not
// compulsory misses — while their cache lines stay L1-I resident
// because hot code shares them.
//
// It runs the functional emulator over a benchmark, tracks every
// branch's re-reference distances (in dynamic branches), and classifies
// sites into hot (short re-reference) and cold (long re-reference),
// then shows where the cold sites live relative to hot code lines.
//
//	go run ./examples/coldbranches [-bench tpcc]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/emu"
	"repro/internal/program"
	"repro/internal/sim"
)

func main() {
	bench := flag.String("bench", "voter", "benchmark to analyze")
	n := flag.Uint64("n", 3_000_000, "instructions to emulate")
	flag.Parse()

	runner := sim.NewRunner()
	w, err := runner.Workload(*bench)
	if err != nil {
		log.Fatal(err)
	}
	e := emu.New(w)

	lastSeen := map[uint64]uint64{} // branch pc -> dynamic branch index
	sumDist := map[uint64]uint64{}
	refs := map[uint64]uint64{}
	var branchIdx uint64

	for i := uint64(0); i < *n; i++ {
		st, err := e.Step()
		if err != nil {
			log.Fatal(err)
		}
		if !st.Inst.Class.IsBranch() {
			continue
		}
		pc := st.Inst.PC
		if prev, ok := lastSeen[pc]; ok {
			sumDist[pc] += branchIdx - prev
			refs[pc]++
		}
		lastSeen[pc] = branchIdx
		branchIdx++
	}

	// Classify: a site is "cold" when its mean re-reference distance
	// exceeds the 8K-entry BTB's plausible retention window.
	const retention = 8192
	type site struct {
		pc   uint64
		dist uint64
		n    uint64
	}
	pcs := make([]uint64, 0, len(sumDist))
	for pc := range sumDist {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	var hot, cold []site
	for _, pc := range pcs {
		mean := sumDist[pc] / refs[pc]
		if mean > retention {
			cold = append(cold, site{pc, mean, refs[pc]})
		} else {
			hot = append(hot, site{pc, mean, refs[pc]})
		}
	}
	sort.Slice(cold, func(i, j int) bool { return cold[i].n > cold[j].n })

	fmt.Printf("%q: %d dynamic branches over %d instructions\n", *bench, branchIdx, *n)
	fmt.Printf("recurring branch sites: %d hot (re-ref <= %d branches), %d cold\n",
		len(hot), retention, len(cold))
	fmt.Println("\ncold sites recur — these are capacity misses, not compulsory misses:")
	for i, s := range cold {
		if i >= 8 {
			break
		}
		f := w.Prog.FuncAt(s.pc)
		name := "?"
		if f != nil {
			name = f.Name
		}
		// Does the cold site's line also hold hot-function bytes?
		la := program.LineAddr(s.pc)
		shared := ""
		for _, off := range []uint64{0, 63} {
			if g := w.Prog.FuncAt(la + off); g != nil && g.Hot && g != f {
				shared = " [line shared with hot " + g.Name + "]"
				break
			}
		}
		fmt.Printf("  %#x in %-6s recurred %4d times, mean distance %6d branches%s\n",
			s.pc, name, s.n, s.dist, shared)
	}
	fmt.Println("\nwith hot code keeping those lines L1-I resident, Skia's shadow decoder")
	fmt.Println("can re-learn these branches from the line bytes before they re-execute.")
}
