package serve

import (
	"strings"
	"testing"
)

// TestParseTraceparent pins the W3C validation rules the submit
// handler applies: anything malformed is ignored (ok=false) and the
// job self-roots — a bad telemetry header must never fail a request.
func TestParseTraceparent(t *testing.T) {
	const (
		traceID = "0af7651916cd43dd8448eb211c80319c"
		spanID  = "b7ad6b7169203331"
	)
	valid := "00-" + traceID + "-" + spanID + "-01"
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"valid", valid, true},
		{"empty", "", false},
		{"too few fields", "00-" + traceID + "-" + spanID, false},
		{"version too short", "0-" + traceID + "-" + spanID + "-01", false},
		{"version too long", "000-" + traceID + "-" + spanID + "-01", false},
		{"version not hex", "zz-" + traceID + "-" + spanID + "-01", false},
		{"version uppercase", "0A-" + traceID + "-" + spanID + "-01", false},
		{"version ff reserved", "ff-" + traceID + "-" + spanID + "-01", false},
		{"version 00 with trailing field", valid + "-extra", false},
		{"future version extra fields ok", "01-" + traceID + "-" + spanID + "-01-extra", true},
		{"trace id short", "00-" + traceID[:31] + "-" + spanID + "-01", false},
		{"trace id long", "00-" + traceID + "0-" + spanID + "-01", false},
		{"trace id uppercase", "00-" + strings.ToUpper(traceID) + "-" + spanID + "-01", false},
		{"trace id all zero", "00-" + strings.Repeat("0", 32) + "-" + spanID + "-01", false},
		{"span id short", "00-" + traceID + "-" + spanID[:15] + "-01", false},
		{"span id not hex", "00-" + traceID + "-" + spanID[:15] + "g-01", false},
		{"span id all zero", "00-" + traceID + "-" + strings.Repeat("0", 16) + "-01", false},
		{"flags short", "00-" + traceID + "-" + spanID + "-1", false},
		{"flags not hex", "00-" + traceID + "-" + spanID + "-zz", false},
	}
	for _, tc := range cases {
		gotTrace, gotSpan, ok := parseTraceparent(tc.in)
		if ok != tc.ok {
			t.Errorf("%s: parseTraceparent(%q) ok = %v, want %v", tc.name, tc.in, ok, tc.ok)
			continue
		}
		if ok && (gotTrace != traceID || gotSpan != spanID) {
			t.Errorf("%s: parsed (%q, %q), want (%q, %q)", tc.name, gotTrace, gotSpan, traceID, spanID)
		}
	}
}

// TestDeriveIDs: span and trace IDs are deterministic functions of the
// job identity (never random draws), well-formed, and distinct across
// phases.
func TestDeriveIDs(t *testing.T) {
	tr := deriveTraceID("job-00000001")
	if len(tr) != 32 || !isLowerHex(tr) || isAllZero(tr) {
		t.Errorf("trace id %q not 32 lowercase hex", tr)
	}
	if tr != deriveTraceID("job-00000001") {
		t.Error("trace id not deterministic")
	}
	if tr == deriveTraceID("job-00000002") {
		t.Error("distinct jobs share a trace id")
	}
	seen := map[string]bool{}
	for _, phase := range []string{"submit", "queue", "run", "stream"} {
		id := deriveSpanID("job-00000001", phase)
		if len(id) != 16 || !isLowerHex(id) || isAllZero(id) {
			t.Errorf("span id %q not 16 lowercase hex", id)
		}
		if id != deriveSpanID("job-00000001", phase) {
			t.Errorf("span id for %q not deterministic", phase)
		}
		if seen[id] {
			t.Errorf("span id collision at phase %q", phase)
		}
		seen[id] = true
	}
}
