package serve

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// JobSpec is the submit-request body: which experiment to run and
// under which windows. It deliberately reuses the report envelope's
// vocabulary — `schema_version` follows experiments.SchemaVersion and
// the options live in the same `meta` object (RunMeta) the result
// envelope carries, so a spec is readable as "the meta I want the
// report to come back with". Decoders accept schema versions 1
// through experiments.SchemaVersion; fields later versions added
// (interval, attrib) are simply absent from older specs.
//
// API.md ("Job spec") documents the JSON field by field; a doc-sync
// test fails the build when the two drift.
type JobSpec struct {
	// SchemaVersion is the envelope schema the submitter speaks,
	// 1..experiments.SchemaVersion. Zero means latest.
	SchemaVersion int `json:"schema_version,omitempty"`
	// Experiment is a catalog ID (skiaexp -list): "fig14", "table1", …
	Experiment string `json:"experiment"`
	// Meta carries the run options in report-envelope form. Honored
	// fields: warmup_instructions, measure_instructions, benchmarks
	// (names only; seeds are implied by the registry). Everything else
	// (git_describe, sim, …) is report output and ignored on input.
	Meta experiments.RunMeta `json:"meta"`
	// Interval, when nonzero, collects interval metrics every N
	// retired instructions; per-spec summaries stream back as
	// `intervals` events and land in the report envelope. Requires
	// schema version >= 2.
	Interval uint64 `json:"interval,omitempty"`
	// Attrib enables per-cause BTB-miss attribution (report envelope
	// `attribution` section). Requires schema version >= 3.
	Attrib bool `json:"attrib,omitempty"`
	// Sample switches every run to sampled simulation (report envelope
	// `sampling` section): K detail intervals spliced over the
	// measurement window, each headline metric with a 95% CI. The plan
	// comes from the meta sample_* fields (sample_intervals,
	// sample_interval_instructions, sample_micro_warmup_instructions,
	// sample_warm_window_instructions, sample_shards), defaults
	// resolved; setting any of those implies Sample. Requires schema
	// version >= 5.
	Sample bool `json:"sample,omitempty"`
	// Checkpoint shares detail warmup between the job's runs with the
	// same (benchmark, warmup, config): bit-identical results, less
	// wall-clock. Requires schema version >= 5.
	Checkpoint bool `json:"checkpoint,omitempty"`
	// SampleEcho makes exact runs publish CI-free `sampling` rows, the
	// reference side of a skiacmp -sample-ci gate. Requires schema
	// version >= 5.
	SampleEcho bool `json:"sample_echo,omitempty"`
	// TimeoutSeconds bounds the job's wall-clock run time; expiry
	// cancels the simulation and fails the job with a non-retriable
	// timeout error. Zero uses the server default.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// Validate checks the spec against the catalog and the workload
// registry so bad requests fail at submit time (HTTP 400), not as
// failed jobs.
func (s JobSpec) Validate() error {
	if s.SchemaVersion < 0 || s.SchemaVersion > experiments.SchemaVersion {
		return fmt.Errorf("schema_version %d outside 1..%d", s.SchemaVersion, experiments.SchemaVersion)
	}
	if s.Experiment == "" {
		return fmt.Errorf("experiment is required")
	}
	if _, ok := experiments.Catalog()[s.Experiment]; !ok {
		return fmt.Errorf("unknown experiment %q (have %v)", s.Experiment, experiments.IDs())
	}
	for _, b := range s.Meta.Benchmarks {
		if _, err := workload.ByName(b.Name); err != nil {
			return fmt.Errorf("benchmark %q: %w", b.Name, err)
		}
	}
	if s.SchemaVersion != 0 && s.SchemaVersion < 2 && s.Interval != 0 {
		return fmt.Errorf("interval requires schema_version >= 2 (got %d)", s.SchemaVersion)
	}
	if s.SchemaVersion != 0 && s.SchemaVersion < 3 && s.Attrib {
		return fmt.Errorf("attrib requires schema_version >= 3 (got %d)", s.SchemaVersion)
	}
	if s.SchemaVersion != 0 && s.SchemaVersion < 5 && s.sampling() {
		return fmt.Errorf("sample/checkpoint/sample_echo require schema_version >= 5 (got %d)", s.SchemaVersion)
	}
	if s.Meta.SampleIntervals < 0 || s.Meta.SampleShards < 0 {
		return fmt.Errorf("sample_intervals and sample_shards must be >= 0")
	}
	if s.TimeoutSeconds < 0 {
		return fmt.Errorf("timeout_seconds must be >= 0")
	}
	return nil
}

// sampling reports whether the spec asks for any schema-v5 sampling
// feature: the explicit toggles or an implicit plan via the meta
// sample_* fields.
func (s JobSpec) sampling() bool {
	return s.Sample || s.Checkpoint || s.SampleEcho ||
		s.Meta.SampleIntervals != 0 || s.Meta.SampleIntervalInstructions != 0 ||
		s.Meta.SampleMicroWarmupInstructions != 0 ||
		s.Meta.SampleWarmWindowInstructions != 0 || s.Meta.SampleShards != 0
}

// options translates the spec into harness options. Per-job simulation
// concurrency comes from the server (jobWorkers), not the spec: the
// worker pool owns the machine's parallelism budget.
func (s JobSpec) options(jobWorkers int) experiments.Options {
	o := experiments.Options{
		Warmup:     s.Meta.WarmupInstructions,
		Measure:    s.Meta.MeasureInstructions,
		Workers:    jobWorkers,
		Interval:   s.Interval,
		Attrib:     s.Attrib,
		Checkpoint: s.Checkpoint,
		SampleEcho: s.SampleEcho,
	}
	if s.Sample || s.Meta.SampleIntervals != 0 || s.Meta.SampleIntervalInstructions != 0 ||
		s.Meta.SampleMicroWarmupInstructions != 0 ||
		s.Meta.SampleWarmWindowInstructions != 0 || s.Meta.SampleShards != 0 {
		o.Sample = &sim.SamplePlan{
			Intervals:     s.Meta.SampleIntervals,
			IntervalInsts: s.Meta.SampleIntervalInstructions,
			MicroWarmup:   s.Meta.SampleMicroWarmupInstructions,
			WarmWindow:    s.Meta.SampleWarmWindowInstructions,
			Shards:        s.Meta.SampleShards,
		}
	}
	for _, b := range s.Meta.Benchmarks {
		o.Benchmarks = append(o.Benchmarks, b.Name)
	}
	return o
}

// Job states, in lifecycle order.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// JobStatus is the status JSON returned by submit, GET /v1/jobs/{id},
// and the stream's `job` events.
type JobStatus struct {
	JobID      string `json:"job_id"`
	Experiment string `json:"experiment"`
	Status     string `json:"status"`
	// Shard is the worker-pool shard the job was enqueued on.
	Shard int `json:"shard"`
	// QueueDepth is the shard's queue occupancy observed at submit
	// time (submit response only).
	QueueDepth int `json:"queue_depth,omitempty"`
	// Error and Retriable describe terminal failures. Retriable means
	// resubmitting the identical spec may succeed (shutdown, queue
	// pressure) as opposed to a deterministic failure (bad benchmark,
	// simulation error, timeout).
	Error     string `json:"error,omitempty"`
	Retriable bool   `json:"retriable,omitempty"`
	// Timestamps are RFC 3339 with subsecond precision; unset phases
	// are omitted.
	EnqueuedAt  string  `json:"enqueued_at,omitempty"`
	StartedAt   string  `json:"started_at,omitempty"`
	FinishedAt  string  `json:"finished_at,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// Rows counts the result table's data rows once the job is done.
	Rows int `json:"rows,omitempty"`
	// TraceID is the W3C trace the job's spans belong to: the
	// submitter's trace when the request carried a valid `traceparent`
	// header, otherwise a self-rooted one derived from the job ID.
	TraceID string `json:"trace_id,omitempty"`
	// SpecHash is the canonical spec hash of (experiment, normalized
	// options) — the key the run-history archive (internal/store) and
	// the result cache share. Stamped at submit on every job.
	SpecHash string `json:"spec_hash,omitempty"`
	// Cached marks a done job whose report was served from the archive
	// on a spec-hash match instead of being re-simulated.
	Cached bool `json:"cached,omitempty"`
	// Progress carries live execution progress (instructions retired,
	// simulated MIPS, ETA) once the job has a plan; nil while queued.
	Progress *JobProgress `json:"progress,omitempty"`
}

// JobProgress is live execution progress: the payload of stream
// `progress` events and the `progress` field of a running or terminal
// job's status. Counts come from the simulator's instruction-chunk
// checkpoints (every 262,144 retired instructions), so a long window
// updates a few times per simulated second at typical MIPS.
type JobProgress struct {
	// InstructionsRetired and InstructionsPlanned are cumulative over
	// every simulation the job runs; planned is registered up front so
	// Fraction's denominator is stable from the first checkpoint.
	InstructionsRetired uint64 `json:"instructions_retired"`
	InstructionsPlanned uint64 `json:"instructions_planned,omitempty"`
	// Fraction is retired/planned clamped to [0, 1]; 0 when the plan is
	// unknown.
	Fraction float64 `json:"fraction"`
	// SimMIPS is the job's simulated throughput: millions of retired
	// instructions per wall-clock second of run time so far.
	SimMIPS float64 `json:"sim_mips,omitempty"`
	// ETASeconds estimates remaining run time from SimMIPS and the
	// unretired remainder; omitted when the rate is still unknown.
	ETASeconds float64 `json:"eta_seconds,omitempty"`
	// QueueSeconds and RunSeconds split the job's wall clock at the
	// moment the snapshot was taken: time spent waiting on the shard
	// queue versus time spent simulating.
	QueueSeconds float64 `json:"queue_seconds,omitempty"`
	RunSeconds   float64 `json:"run_seconds,omitempty"`
}

// Row is one result-table row in a stream `row` event. Index is the
// 0-based row position in the report table; cells align with the
// preceding `columns` event.
type Row struct {
	Index int          `json:"index"`
	Cells []stats.Cell `json:"cells"`
}

// JobError is the stream `error` event payload.
type JobError struct {
	Message string `json:"message"`
	// Retriable marks transient failures (shutdown drain); resubmit
	// the same spec. Deterministic failures (timeout, simulation
	// error) are not retriable.
	Retriable bool `json:"retriable"`
}

// JobManifest is the stream's final event: the job's closing summary.
// Every stream ends with exactly one manifest, success or failure, so
// a client that counts manifests reconciles jobs exactly.
type JobManifest struct {
	SchemaVersion int    `json:"schema_version"`
	JobID         string `json:"job_id"`
	Experiment    string `json:"experiment"`
	Status        string `json:"status"`
	// Rows is the number of `row` events the stream carried.
	Rows        int     `json:"rows"`
	WallSeconds float64 `json:"wall_seconds"`
	// QueueSeconds and RunSeconds split WallSeconds into shard-queue
	// wait and simulation time, so latency regressions attribute to the
	// right component without scraping /metrics.
	QueueSeconds float64 `json:"queue_seconds,omitempty"`
	RunSeconds   float64 `json:"run_seconds,omitempty"`
	// TraceID links the manifest to the job's spans (see
	// GET /v1/jobs/{id}/trace).
	TraceID string `json:"trace_id,omitempty"`
	// SpecHash joins the manifest to the job's archive records and
	// history trajectory (see JobStatus.SpecHash).
	SpecHash string `json:"spec_hash,omitempty"`
	// Cached marks a result served from the archive without
	// re-simulating.
	Cached    bool   `json:"cached,omitempty"`
	Error     string `json:"error,omitempty"`
	Retriable bool   `json:"retriable,omitempty"`
}

// StreamEvent is one NDJSON line of a job result stream. Type selects
// which payload field is set:
//
//	"job"       → Job: status snapshot (first line of every stream)
//	"progress"  → Progress: live progress heartbeat while the job waits
//	              or runs (rate-limited; only while the stream blocks)
//	"columns"   → Columns: result-table column descriptors
//	"row"       → Row: one result-table row
//	"intervals" → Intervals: one spec's interval-metrics summary
//	"sampling"  → Sampling: one spec's sampled-simulation summary
//	"report"    → Report: the full versioned report envelope
//	"error"     → Error: terminal failure description
//	"manifest"  → Manifest: closing summary (always the last line)
type StreamEvent struct {
	Type      string              `json:"type"`
	Job       *JobStatus          `json:"job,omitempty"`
	Progress  *JobProgress        `json:"progress,omitempty"`
	Columns   []stats.Column      `json:"columns,omitempty"`
	Row       *Row                `json:"row,omitempty"`
	Intervals *sim.SpecIntervals  `json:"intervals,omitempty"`
	Sampling  *sim.SpecSampling   `json:"sampling,omitempty"`
	Report    *experiments.Report `json:"report,omitempty"`
	Error     *JobError           `json:"error,omitempty"`
	Manifest  *JobManifest        `json:"manifest,omitempty"`
}

// job is the server-side job record. Mutable fields are guarded by the
// server mutex; result fields are written once before done closes and
// only read after.
type job struct {
	id    string
	spec  JobSpec
	shard int
	// specHash is the canonical store.Spec hash, fixed at submit.
	specHash string

	// Trace identity, fixed at submit: the trace the job's spans join
	// (the client's, or self-rooted from the job ID), the client span
	// that parents the submit span ("" when self-rooted), and the
	// submit span's ID, which parents the queue/run/stream spans.
	traceID    string
	parentSpan string
	submitSpan string

	// Progress counters, written by simulation worker goroutines at
	// instruction-chunk boundaries and read lock-free by status and
	// stream handlers.
	progressDone    atomic.Uint64
	progressPlanned atomic.Uint64

	// Guarded by Server.mu.
	status     string
	cached     bool // report served from the archive, not simulated
	errMsg     string
	retriable  bool
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time
	rows       int
	spans      []metrics.Span

	// runCtx is canceled by DELETE /v1/jobs/{id} and by shutdown
	// grace expiry; the worker threads it (plus the per-job timeout)
	// into the simulation loop.
	runCtx context.Context
	cancel func()
	// done closes when the job reaches a terminal state; report/runErr
	// are immutable afterwards.
	done   chan struct{}
	report *experiments.Report
	runErr error
}

// rfc3339 renders a timestamp for status JSON ("" when unset).
func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}
