package serve_test

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/serve"
)

// extractFenced returns the first ```<lang> fenced block after marker
// in doc, following the report_test.go doc-sync pattern.
func extractFenced(t *testing.T, doc, file, marker, lang string) string {
	t.Helper()
	i := strings.Index(doc, marker)
	if i < 0 {
		t.Fatalf("%s lacks the %q section", file, marker)
	}
	rest := doc[i:]
	fence := "```" + lang + "\n"
	start := strings.Index(rest, fence)
	if start < 0 {
		t.Fatalf("no fenced %s block after %q in %s", lang, marker, file)
	}
	rest = rest[start+len(fence):]
	end := strings.Index(rest, "```")
	if end < 0 {
		t.Fatalf("unterminated %s block after %q in %s", lang, marker, file)
	}
	return rest[:end]
}

func readDoc(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestAPISpecExampleMatchesMarshaller holds API.md's job-spec example
// to the marshaller: it must decode into a valid JobSpec and re-marshal
// byte-identically, so the documented JSON is exactly what the server
// accepts and what a Go client produces.
func TestAPISpecExampleMatchesMarshaller(t *testing.T) {
	example := extractFenced(t, readDoc(t, "../../API.md"), "API.md", "### Example: job spec", "json")
	var spec serve.JobSpec
	if err := json.Unmarshal([]byte(example), &spec); err != nil {
		t.Fatalf("documented spec does not decode: %v", err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("documented spec does not validate: %v", err)
	}
	out, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(example) != string(out) {
		t.Errorf("API.md job-spec example is not what the marshaller emits;\nupdate the doc\n--- doc ---\n%s\n--- marshaller ---\n%s", example, out)
	}
}

// TestAPIStreamExampleDecodes holds API.md's NDJSON stream example to
// the framing contract: every line decodes as a StreamEvent with a
// known type, the first is `job`, and the last is `manifest`.
func TestAPIStreamExampleDecodes(t *testing.T) {
	example := extractFenced(t, readDoc(t, "../../API.md"), "API.md", "### Example: result stream", "ndjson")
	manifest, err := serve.ParseStream(strings.NewReader(example), func(ev serve.StreamEvent) error {
		switch ev.Type {
		case "job", "progress", "columns", "row", "intervals", "sampling", "report", "error", "manifest":
		default:
			t.Errorf("documented stream has unknown event type %q", ev.Type)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("documented stream does not parse: %v", err)
	}
	if manifest.Status != serve.StatusDone || manifest.JobID == "" {
		t.Errorf("documented manifest = %+v", manifest)
	}
	first := strings.SplitN(strings.TrimSpace(example), "\n", 2)[0]
	var ev serve.StreamEvent
	if err := json.Unmarshal([]byte(first), &ev); err != nil || ev.Type != "job" {
		t.Errorf("documented stream does not open with a job event: %q (err %v)", first, err)
	}
}

// jsonTags collects the json field names of a struct type.
func jsonTags(t *testing.T, v any) []string {
	t.Helper()
	var tags []string
	rt := reflect.TypeOf(v)
	for i := 0; i < rt.NumField(); i++ {
		tag := rt.Field(i).Tag.Get("json")
		if tag == "" || tag == "-" {
			continue
		}
		tags = append(tags, strings.Split(tag, ",")[0])
	}
	return tags
}

// TestDocsMentionEverySpecField fails on JSON field drift: every json
// tag of JobSpec (and of the stream framing types) must be mentioned
// in API.md, and every JobSpec tag also in EXPERIMENTS.md's "Sweep
// service" section. Add a field without documenting it and this test
// names it.
func TestDocsMentionEverySpecField(t *testing.T) {
	api := readDoc(t, "../../API.md")
	exp := readDoc(t, "../../EXPERIMENTS.md")
	i := strings.Index(exp, "# Sweep service")
	if i < 0 {
		t.Fatal(`EXPERIMENTS.md lacks the "# Sweep service" section`)
	}
	sweep := exp[i:]
	if j := strings.Index(sweep[1:], "\n# "); j >= 0 {
		sweep = sweep[:j+1]
	}
	for _, tag := range jsonTags(t, serve.JobSpec{}) {
		if !strings.Contains(api, "`"+tag+"`") {
			t.Errorf("API.md does not document JobSpec field %q", tag)
		}
		if !strings.Contains(sweep, "`"+tag+"`") {
			t.Errorf("EXPERIMENTS.md (Sweep service) does not mention JobSpec field %q", tag)
		}
	}
	for _, v := range []any{serve.JobManifest{}, serve.JobError{}, serve.JobProgress{}, serve.Health{}, serve.ShardHealth{}} {
		for _, tag := range jsonTags(t, v) {
			if !strings.Contains(api, "`"+tag+"`") {
				t.Errorf("API.md does not document %T field %q", v, tag)
			}
		}
	}
	// The stream event types themselves.
	for _, typ := range []string{"job", "progress", "columns", "row", "intervals", "sampling", "report", "error", "manifest"} {
		if !strings.Contains(api, "`"+typ+"`") {
			t.Errorf("API.md does not document stream event type %q", typ)
		}
	}
}
