package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
)

// newTestServer starts a Server under httptest and returns it with a
// seeded client; cleanup shuts both down.
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *serve.Client) {
	t.Helper()
	s := serve.New(cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		hs.Close()
	})
	c := serve.NewClient(hs.URL, 1)
	c.Backoff = 5 * time.Millisecond
	return s, c
}

// tinyFig14 is a reduced fig14 sweep spec (two benchmarks, small
// windows) that runs in well under a second.
func tinyFig14() serve.JobSpec {
	return serve.JobSpec{
		SchemaVersion: experiments.SchemaVersion,
		Experiment:    "fig14",
		Meta: experiments.RunMeta{
			WarmupInstructions:  20_000,
			MeasureInstructions: 100_000,
			Benchmarks: []experiments.BenchmarkRef{
				{Name: "voter"}, {Name: "noop"},
			},
		},
	}
}

// table1Spec is the cheapest possible job: a static table.
func table1Spec() serve.JobSpec {
	return serve.JobSpec{SchemaVersion: experiments.SchemaVersion, Experiment: "table1"}
}

// TestSubmitAndStreamMatchesBatch runs a reduced fig14 sweep through
// the service and requires the streamed rows to equal — cell for cell
// — what the batch harness produces for the same options. The service
// is a transport, not a different simulator.
func TestSubmitAndStreamMatchesBatch(t *testing.T) {
	_, c := newTestServer(t, serve.Config{Workers: 2})
	res, err := c.RunJob(context.Background(), tinyFig14())
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Fig14(experiments.Options{
		Warmup: 20_000, Measure: 100_000, Benchmarks: []string{"voter", "noop"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Rows); got != want.Table.NumRows() {
		t.Fatalf("streamed %d rows, batch produced %d", got, want.Table.NumRows())
	}
	for i, row := range res.Rows {
		if row.Index != i {
			t.Errorf("row %d has index %d", i, row.Index)
		}
		if !reflect.DeepEqual(row.Cells, want.Table.Row(i)) {
			t.Errorf("row %d differs:\nstream: %+v\nbatch:  %+v", i, row.Cells, want.Table.Row(i))
		}
	}
	// The full envelope must decode as a regular report.
	rep, err := experiments.DecodeReport(res.Report)
	if err != nil {
		t.Fatalf("report event does not decode: %v", err)
	}
	if rep.ID != "fig14" {
		t.Errorf("report id = %q", rep.ID)
	}
	if res.Manifest.Status != serve.StatusDone || res.Manifest.Rows != len(res.Rows) {
		t.Errorf("manifest = %+v", res.Manifest)
	}
}

// TestIntervalSummariesStream: interval collection requested in the
// spec arrives as `intervals` stream events and in the envelope.
func TestIntervalSummariesStream(t *testing.T) {
	_, c := newTestServer(t, serve.Config{})
	spec := tinyFig14()
	spec.Interval = 40_000
	st, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var intervals int
	_, err = c.Stream(context.Background(), st.JobID, func(ev serve.StreamEvent) error {
		if ev.Type == "intervals" {
			intervals++
			if ev.Intervals.Benchmark == "" {
				t.Errorf("intervals event lacks benchmark: %+v", ev.Intervals)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 benchmarks x 4 variants.
	if intervals != 8 {
		t.Errorf("intervals events = %d, want 8", intervals)
	}
}

// TestSubmitValidation: bad specs are 400s with a JSON error, never
// jobs.
func TestSubmitValidation(t *testing.T) {
	s, c := newTestServer(t, serve.Config{})
	cases := []serve.JobSpec{
		{},                                  // no experiment
		{Experiment: "not-an-experiment"},   // unknown id
		{Experiment: "fig14", Meta: experiments.RunMeta{Benchmarks: []experiments.BenchmarkRef{{Name: "nope"}}}},
		{Experiment: "fig14", SchemaVersion: experiments.SchemaVersion + 1},
		{Experiment: "fig14", SchemaVersion: 1, Interval: 1000},  // intervals are v2+
		{Experiment: "fig14", SchemaVersion: 2, Attrib: true},    // attribution is v3+
		{Experiment: "fig14", TimeoutSeconds: -1},
	}
	for i, spec := range cases {
		c.MaxAttempts = 1
		if _, err := c.Submit(context.Background(), spec); err == nil {
			t.Errorf("case %d: bad spec accepted: %+v", i, spec)
		}
	}
	if got := s.Counters().Submitted; got != 0 {
		t.Errorf("validation failures created %d jobs", got)
	}
}

// TestBackpressure429: with one busy worker and a tiny queue, excess
// submissions get 429 with Retry-After and a retriable JSON error.
func TestBackpressure429(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1, QueueDepth: 2})
	hs := httptest.NewServer(s)
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	// A slow job to occupy the worker, then fill the queue.
	slow := tinyFig14()
	slow.Meta.MeasureInstructions = 30_000_000
	slow.Meta.Benchmarks = slow.Meta.Benchmarks[:1]
	post := func(spec serve.JobSpec) *http.Response {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	var accepted []string
	resp := post(slow)
	var st serve.JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	accepted = append(accepted, st.JobID)
	// Wait until the worker picks it up so the queue is empty again.
	deadline := time.Now().Add(5 * time.Second)
	for s.Counters().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started the slow job")
		}
		time.Sleep(time.Millisecond)
	}
	// Fill the queue, then overflow it.
	saw429 := false
	for i := 0; i < 6; i++ {
		resp := post(table1Spec())
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st serve.JobStatus
			json.NewDecoder(resp.Body).Decode(&st)
			accepted = append(accepted, st.JobID)
		case http.StatusTooManyRequests:
			saw429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			var ae struct {
				Error     string `json:"error"`
				Retriable bool   `json:"retriable"`
			}
			json.NewDecoder(resp.Body).Decode(&ae)
			if !ae.Retriable {
				t.Errorf("429 not marked retriable: %+v", ae)
			}
		default:
			t.Errorf("unexpected status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !saw429 {
		t.Error("queue never overflowed into a 429")
	}
	if got := s.Counters().Rejected; got == 0 {
		t.Error("rejected counter did not move")
	}
	// Unblock the pool.
	for _, id := range accepted {
		req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}
}

// TestCancelQueuedAndRunning covers both cancellation paths: a queued
// job finishes canceled without ever running; a running job's
// simulation is aborted at the next instruction chunk.
func TestCancelQueuedAndRunning(t *testing.T) {
	_, c := newTestServer(t, serve.Config{Workers: 1, QueueDepth: 8})
	ctx := context.Background()

	// Occupy the single worker with a long job, then queue another.
	long := tinyFig14()
	long.Meta.MeasureInstructions = 50_000_000
	running, err := c.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(ctx, table1Spec())
	if err != nil {
		t.Fatal(err)
	}
	// Cancel the queued job first: it must terminate as canceled with
	// zero rows.
	if _, err := c.Cancel(ctx, queued.JobID); err != nil {
		t.Fatal(err)
	}
	m, err := c.Stream(ctx, queued.JobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != serve.StatusCanceled || m.Rows != 0 {
		t.Errorf("queued-cancel manifest = %+v", m)
	}
	// Cancel the running job: the stream must close with canceled well
	// before the 50M-instruction window could finish.
	if _, err := c.Cancel(ctx, running.JobID); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	m, err = c.Stream(ctx, running.JobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != serve.StatusCanceled {
		t.Errorf("running-cancel manifest = %+v", m)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("cancel took %v; context is not reaching the simulation loop", elapsed)
	}
}

// TestJobTimeout: a spec-level timeout fails the job (non-retriable)
// long before its window would complete.
func TestJobTimeout(t *testing.T) {
	_, c := newTestServer(t, serve.Config{})
	spec := tinyFig14()
	spec.Meta.MeasureInstructions = 100_000_000
	spec.TimeoutSeconds = 0.05
	res, err := c.RunJob(context.Background(), spec)
	if err == nil {
		t.Fatal("timeout job reported success")
	}
	if res == nil || res.Manifest == nil {
		t.Fatalf("no manifest for timed-out job (err=%v)", err)
	}
	if res.Manifest.Status != serve.StatusFailed || res.Manifest.Retriable {
		t.Errorf("manifest = %+v, want non-retriable failed", res.Manifest)
	}
	if !strings.Contains(res.Manifest.Error, "timeout") {
		t.Errorf("error does not mention timeout: %q", res.Manifest.Error)
	}
}

// TestStatusAndListEndpoints exercises GET /v1/jobs and /v1/jobs/{id}.
func TestStatusAndListEndpoints(t *testing.T) {
	_, c := newTestServer(t, serve.Config{Workers: 2})
	ctx := context.Background()
	var ids []string
	for i := 0; i < 3; i++ {
		res, err := c.RunJob(ctx, table1Spec())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, res.Status.JobID)
	}
	base := c.BaseURL
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("list has %d jobs, want 3", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].JobID >= list[i].JobID {
			t.Errorf("list not sorted: %q before %q", list[i-1].JobID, list[i].JobID)
		}
	}
	resp2, err := http.Get(base + "/v1/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st serve.JobStatus
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.JobID != ids[0] || st.Status != serve.StatusDone || st.Rows == 0 {
		t.Errorf("status = %+v", st)
	}
	if resp3, _ := http.Get(base + "/v1/jobs/job-99999999"); resp3 != nil {
		if resp3.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job returned %d", resp3.StatusCode)
		}
		resp3.Body.Close()
	}
}

// TestMetricsEndpointAndConservation: /metrics renders every counter
// deterministically and the accounting conserves — submitted jobs are
// exactly partitioned among queued, inflight, and the three terminal
// counters, the discipline the attribution engine established for
// simulation counters applied to the service's own bookkeeping.
func TestMetricsEndpointAndConservation(t *testing.T) {
	var mu sync.Mutex
	finished := map[string]int{}
	s, c := newTestServer(t, serve.Config{
		Workers: 4,
		Hooks: serve.Hooks{
			OnSubmit: func(string) {},
			OnFinish: func(_, status string) {
				mu.Lock()
				finished[status]++
				mu.Unlock()
			},
			OnReject: func(string) {},
		},
	})
	ctx := context.Background()
	var wg sync.WaitGroup
	const jobs = 32
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.RunJob(ctx, table1Spec())
		}()
	}
	// Check conservation while jobs are in flight.
	for i := 0; i < 50; i++ {
		cs := s.Counters()
		total := cs.Queued + cs.Inflight + int(cs.Completed) + int(cs.Failed) + int(cs.Canceled) + int(cs.Cached)
		if int(cs.Submitted) != total {
			t.Fatalf("conservation violated mid-flight: submitted=%d partition=%d (%+v)", cs.Submitted, total, cs)
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	cs := s.Counters()
	if cs.Submitted != jobs || cs.Completed != jobs || cs.Queued != 0 || cs.Inflight != 0 {
		t.Errorf("final counters = %+v", cs)
	}
	mu.Lock()
	if finished[serve.StatusDone] != jobs {
		t.Errorf("OnFinish saw %v", finished)
	}
	mu.Unlock()

	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"skiaserve_jobs_submitted_total 32",
		"skiaserve_jobs_completed_total 32",
		"skiaserve_jobs_cached_total 0",
		"skiaserve_jobs_queued 0",
		"skiaserve_jobs_inflight 0",
		"skiaserve_workers 4",
		"skiaserve_queue_capacity 64",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics lacks %q:\n%s", want, text)
		}
	}
}

// TestHealthz: ok while serving.
func TestHealthz(t *testing.T) {
	_, c := newTestServer(t, serve.Config{})
	resp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

// TestClientRetriesBackpressure: a client facing a saturated server
// retries with backoff until its job is accepted — no manual retry
// loop needed by callers.
func TestClientRetriesBackpressure(t *testing.T) {
	_, c := newTestServer(t, serve.Config{Workers: 1, QueueDepth: 1})
	c.MaxAttempts = 50
	c.Backoff = 2 * time.Millisecond
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 12)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.RunJob(ctx, table1Spec())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
}
