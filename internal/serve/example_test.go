package serve_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"

	"repro/internal/serve"
)

// ExampleClient_RunJob submits one job to an in-process server and
// consumes its stream to the final manifest — the whole client
// lifecycle in one call.
func ExampleClient_RunJob() {
	srv := serve.New(serve.Config{Workers: 2})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer srv.Shutdown(context.Background())

	client := serve.NewClient(hs.URL, 1)
	res, err := client.RunJob(context.Background(), serve.JobSpec{
		Experiment: "table1", // the static configuration table: instant and deterministic
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("job:", res.Status.JobID)
	fmt.Println("status:", res.Manifest.Status)
	fmt.Println("rows:", res.Manifest.Rows)
	fmt.Println("first column:", res.Columns[0])
	// Output:
	// job: job-00000001
	// status: done
	// rows: 15
	// first column: field
}

// ExampleParseStream decodes a captured NDJSON job stream — what a
// plain HTTP GET of /v1/jobs/{id}/stream (or `curl`) returns — without
// a live server.
func ExampleParseStream() {
	stream := `{"type":"job","job":{"job_id":"job-00000007","experiment":"table1","status":"queued","shard":0}}
{"type":"columns","columns":[{"name":"structure"},{"name":"configuration"}]}
{"type":"row","row":{"index":0,"cells":[{"kind":"str","text":"BTB"},{"kind":"str","text":"8K entries"}]}}
{"type":"manifest","manifest":{"schema_version":1,"job_id":"job-00000007","experiment":"table1","status":"done","rows":1,"wall_seconds":0.002}}
`
	manifest, err := serve.ParseStream(strings.NewReader(stream), func(ev serve.StreamEvent) error {
		fmt.Println("event:", ev.Type)
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("job %s finished %s with %d row(s)\n", manifest.JobID, manifest.Status, manifest.Rows)
	// Output:
	// event: job
	// event: columns
	// event: row
	// event: manifest
	// job job-00000007 finished done with 1 row(s)
}
