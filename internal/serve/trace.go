package serve

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/metrics"
)

// Request tracing: every accepted job gets a four-span lifecycle —
//
//	submit  — the POST handler, from entry to enqueue (the local root)
//	queue   — enqueue to worker pickup (or to terminal state, for jobs
//	          canceled or drained off the queue)
//	run     — worker pickup to terminal state
//	stream  — one span per GET …/stream request, entry to manifest
//
// queue/run/stream parent the submit span. When the submission carries
// a valid W3C `traceparent` header the spans join the caller's trace
// (submit's parent is the caller's span); otherwise the job self-roots
// a trace derived from its ID. Span and trace IDs are deterministic
// functions of the job ID and phase name (FNV), not random draws — the
// service stays reproducible and the nondet discipline intact.
//
// Spans land in two places: the job record (served back as a Chrome
// trace_event file by GET /v1/jobs/{id}/trace, loadable in
// chrome://tracing or Perfetto) and a server-wide bounded ring
// (Server.Spans, newest win) for tooling.

// parseTraceparent validates a W3C trace-context `traceparent` header:
//
//	version "-" trace-id "-" parent-id "-" flags
//
// version is 2 lowercase hex digits (not "ff"); trace-id is 32
// lowercase hex digits, not all zero; parent-id is 16 lowercase hex
// digits, not all zero; flags is 2 lowercase hex digits. Version 00
// must have exactly those four fields; unknown future versions are
// accepted if their first four fields parse (per spec). Anything
// malformed returns ok=false — the caller ignores the header and
// self-roots, never failing the request over bad telemetry metadata.
func parseTraceparent(h string) (traceID, parentID string, ok bool) {
	if h == "" {
		return "", "", false
	}
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return "", "", false
	}
	ver := parts[0]
	if len(ver) != 2 || !isLowerHex(ver) || ver == "ff" {
		return "", "", false
	}
	if ver == "00" && len(parts) != 4 {
		return "", "", false
	}
	traceID, parentID = parts[1], parts[2]
	flags := parts[3]
	if len(traceID) != 32 || !isLowerHex(traceID) || isAllZero(traceID) {
		return "", "", false
	}
	if len(parentID) != 16 || !isLowerHex(parentID) || isAllZero(parentID) {
		return "", "", false
	}
	if len(flags) != 2 || !isLowerHex(flags) {
		return "", "", false
	}
	return traceID, parentID, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func isAllZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// deriveTraceID builds a self-rooted 128-bit trace ID from a job ID.
// FNV, not rand: the same job ID always yields the same trace, keeping
// the service free of nondeterministic draws.
func deriveTraceID(jobID string) string {
	h := fnv.New128a()
	io.WriteString(h, "skiaserve/trace/"+jobID)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// deriveSpanID builds the deterministic 64-bit span ID for one phase of
// a job's lifecycle.
func deriveSpanID(jobID, name string) string {
	h := fnv.New64a()
	io.WriteString(h, jobID+"/"+name)
	return fmt.Sprintf("%016x", h.Sum64())
}

// spanLocked records one lifecycle span on the job record and the
// server-wide ring. The caller holds s.mu.
func (s *Server) spanLocked(j *job, name string, start, end time.Time, parent string) {
	sp := metrics.Span{
		TraceID:  j.traceID,
		SpanID:   deriveSpanID(j.id, name),
		ParentID: parent,
		Name:     name,
		Scope:    j.id,
		Start:    start,
		End:      end,
	}
	j.spans = append(j.spans, sp)
	s.spans.RecordSpan(sp)
}

// Spans returns the server-wide span ring's retained spans, oldest
// first (tests, tooling).
func (s *Server) Spans() []metrics.Span { return s.spans.Spans() }

// handleTrace implements GET /v1/jobs/{id}/trace: the job's lifecycle
// spans as a Chrome trace_event JSON file (open in chrome://tracing or
// Perfetto). Available at any point in the lifecycle — a running job
// shows its submit and queue spans; the run span appears on finish.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + r.PathValue("id")})
		return
	}
	s.mu.Lock()
	spans := append([]metrics.Span(nil), j.spans...)
	status := j.status
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	metrics.WriteSpanChromeTrace(w, spans, map[string]any{
		"job_id":     j.id,
		"experiment": j.spec.Experiment,
		"status":     status,
		"trace_id":   j.traceID,
	})
}
