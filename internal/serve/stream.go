package serve

import (
	"encoding/json"
	"net/http"
)

// handleStream implements GET /v1/jobs/{id}/stream: an NDJSON event
// stream (Content-Type application/x-ndjson). The first line is a
// `job` status snapshot, flushed immediately so clients see their job
// was found before it finishes. The handler then blocks until the job
// reaches a terminal state (or the client goes away) and delivers the
// result: `columns` + one `row` per table row + optional `intervals`
// summaries + the full `report` envelope on success, an `error` event
// on failure — and in every case exactly one final `manifest` event,
// so counting manifests reconciles jobs exactly. See API.md
// ("Streaming") for the framing contract.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + r.PathValue("id")})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	st := s.status(j)
	enc.Encode(StreamEvent{Type: "job", Job: &st})
	flush()

	select {
	case <-j.done:
	case <-r.Context().Done():
		return // client went away; the job keeps running
	}

	st = s.status(j)
	rows := 0
	if j.runErr == nil && j.report != nil {
		rep := j.report
		enc.Encode(StreamEvent{Type: "columns", Columns: rep.Table.Columns()})
		for i := 0; i < rep.Table.NumRows(); i++ {
			enc.Encode(StreamEvent{Type: "row", Row: &Row{Index: i, Cells: rep.Table.Row(i)}})
			rows++
		}
		for i := range rep.Intervals {
			enc.Encode(StreamEvent{Type: "intervals", Intervals: &rep.Intervals[i]})
		}
		enc.Encode(StreamEvent{Type: "report", Report: rep})
	} else if j.runErr != nil {
		enc.Encode(StreamEvent{Type: "error", Error: &JobError{Message: st.Error, Retriable: st.Retriable}})
	}
	enc.Encode(StreamEvent{Type: "manifest", Manifest: &JobManifest{
		SchemaVersion: 1,
		JobID:         st.JobID,
		Experiment:    st.Experiment,
		Status:        st.Status,
		Rows:          rows,
		WallSeconds:   st.WallSeconds,
		Error:         st.Error,
		Retriable:     st.Retriable,
	}})
	flush()
}
