package serve

import (
	"encoding/json"
	"net/http"
	"time"
)

// handleStream implements GET /v1/jobs/{id}/stream: an NDJSON event
// stream (Content-Type application/x-ndjson). The first line is a
// `job` status snapshot, flushed immediately so clients see their job
// was found before it finishes. While the job waits or runs, the
// stream carries rate-limited `progress` heartbeats (at most one per
// Config.ProgressInterval, and only when the retired-instruction count
// moved — an idle queue produces one frame, then silence). Once the
// job reaches a terminal state (or the client goes away) the handler
// delivers the result: `columns` + one `row` per table row + optional
// `intervals` and `sampling` summaries + the full `report` envelope on
// success, an
// `error` event on failure — and in every case exactly one final
// `manifest` event, so counting manifests reconciles jobs exactly.
// Progress frames never carry result content, so the result portion of
// the stream is byte-identical with heartbeats on or off. See API.md
// ("Streaming") for the framing contract.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + r.PathValue("id")})
		return
	}
	streamStart := time.Now()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	st := s.status(j)
	enc.Encode(StreamEvent{Type: "job", Job: &st})
	flush()

	if !s.waitStreaming(j, r, enc, flush) {
		return // client went away; the job keeps running
	}

	st = s.status(j)
	rows := 0
	if j.runErr == nil && j.report != nil {
		rep := j.report
		enc.Encode(StreamEvent{Type: "columns", Columns: rep.Table.Columns()})
		for i := 0; i < rep.Table.NumRows(); i++ {
			enc.Encode(StreamEvent{Type: "row", Row: &Row{Index: i, Cells: rep.Table.Row(i)}})
			rows++
		}
		for i := range rep.Intervals {
			enc.Encode(StreamEvent{Type: "intervals", Intervals: &rep.Intervals[i]})
		}
		for i := range rep.Sampling {
			enc.Encode(StreamEvent{Type: "sampling", Sampling: &rep.Sampling[i]})
		}
		enc.Encode(StreamEvent{Type: "report", Report: rep})
	} else if j.runErr != nil {
		enc.Encode(StreamEvent{Type: "error", Error: &JobError{Message: st.Error, Retriable: st.Retriable}})
	}
	man := JobManifest{
		SchemaVersion: 1,
		JobID:         st.JobID,
		Experiment:    st.Experiment,
		Status:        st.Status,
		Rows:          rows,
		WallSeconds:   st.WallSeconds,
		TraceID:       st.TraceID,
		SpecHash:      st.SpecHash,
		Cached:        st.Cached,
		Error:         st.Error,
		Retriable:     st.Retriable,
	}
	if st.Progress != nil {
		man.QueueSeconds = st.Progress.QueueSeconds
		man.RunSeconds = st.Progress.RunSeconds
	}
	enc.Encode(StreamEvent{Type: "manifest", Manifest: &man})
	flush()
	s.mu.Lock()
	s.spanLocked(j, "stream", streamStart, time.Now(), j.submitSpan)
	s.mu.Unlock()
}

// waitStreaming blocks until the job reaches a terminal state, emitting
// rate-limited progress heartbeats while it waits. Returns false when
// the client went away first.
func (s *Server) waitStreaming(j *job, r *http.Request, enc *json.Encoder, flush func()) bool {
	if s.cfg.ProgressInterval < 0 {
		select {
		case <-j.done:
			return true
		case <-r.Context().Done():
			return false
		}
	}
	ticker := time.NewTicker(s.cfg.ProgressInterval)
	defer ticker.Stop()
	// Sentinel distinct from any real count, so the first tick emits
	// even at zero retired instructions (queue-wait visibility).
	lastDone := ^uint64(0)
	for {
		select {
		case <-j.done:
			return true
		case <-r.Context().Done():
			return false
		case <-ticker.C:
			s.mu.Lock()
			p := s.progressLocked(j, time.Now())
			s.mu.Unlock()
			if p == nil || p.InstructionsRetired == lastDone {
				continue
			}
			lastDone = p.InstructionsRetired
			enc.Encode(StreamEvent{Type: "progress", Progress: p})
			flush()
		}
	}
}
