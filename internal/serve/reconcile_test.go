package serve_test

import (
	"context"
	"errors"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
)

// TestThousandJobReconciliation is the acceptance-scale test from the
// issue: >=1000 queued sweep requests complete with zero lost and zero
// duplicated results, and every streamed result reconciles exactly
// against a batch run of the same spec. The queue is kept small
// relative to the load so the 429/backoff path is genuinely exercised,
// not just the happy path.
func TestThousandJobReconciliation(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-job load test")
	}
	// Total queue capacity (2 shards x 1) is far below the client
	// count, so whenever the workers are all busy simulating,
	// submissions overflow into 429s and the retry path carries real
	// load. MaxAttempts is generous because saturated stretches last
	// seconds while individual backoffs cap at 50ms.
	s, c := newTestServer(t, serve.Config{Shards: 2, Workers: 4, QueueDepth: 1})
	c.MaxAttempts = 1000
	c.Backoff = time.Millisecond
	c.MaxBackoff = 50 * time.Millisecond

	// Deterministic backpressure: park an effectively-endless job on
	// every worker and fill both shard queues, then prove with a
	// no-retry client that the next submission is turned away with a
	// 429. Waiting for the fleet below to overflow the queue
	// organically is timing-dependent (it stops happening when a loaded
	// machine slows the clients more than the workers), so the retry
	// path gets its guaranteed exercise here and merely extra load
	// later.
	const blockers = 2*4 + 2*1 // one per worker + one per queue slot
	blockSpec := serve.JobSpec{
		SchemaVersion: experiments.SchemaVersion,
		Experiment:    "fig14",
		Meta: experiments.RunMeta{
			WarmupInstructions:  5_000,
			MeasureInstructions: 2_000_000_000, // outlives the test; canceled below
			Benchmarks:          []experiments.BenchmarkRef{{Name: "noop"}},
		},
	}
	blockIDs := make([]string, 0, blockers)
	for i := 0; i < blockers; i++ {
		st, err := c.Submit(context.Background(), blockSpec)
		if err != nil {
			t.Fatalf("blocker %d: %v", i, err)
		}
		blockIDs = append(blockIDs, st.JobID)
	}
	for deadline := time.Now().Add(30 * time.Second); ; time.Sleep(time.Millisecond) {
		cs := s.Counters()
		if cs.Inflight == 8 && cs.Queued == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blockers never saturated the pool: %+v", cs)
		}
	}
	probe := serve.NewClient(c.BaseURL, 2)
	probe.MaxAttempts = 1
	if _, err := probe.Submit(context.Background(), table1Spec()); err == nil {
		t.Fatal("submit against a saturated pool succeeded, want 429")
	} else {
		var re *serve.RetriableError
		if !errors.As(err, &re) || re.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated submit error = %v, want a 429 RetriableError", err)
		}
	}
	for _, id := range blockIDs {
		if _, err := c.Cancel(context.Background(), id); err != nil {
			t.Fatalf("cancel blocker %s: %v", id, err)
		}
	}
	for _, id := range blockIDs {
		m, err := c.Stream(context.Background(), id, nil)
		if err != nil {
			t.Fatalf("stream blocker %s: %v", id, err)
		}
		if m.Status != serve.StatusCanceled {
			t.Fatalf("blocker %s ended %q, want canceled", id, m.Status)
		}
	}

	// Every eighth job is a real (tiny) fig14 sweep; the rest are
	// static table1 lookups. The sims keep workers busy for stretches —
	// pushing cheap jobs into the queue and, when timing allows, into
	// further 429s — and double as the determinism check: the simulator
	// must produce bit-identical results no matter which worker ran the
	// job or how the queue interleaved it.
	simSpec := serve.JobSpec{
		SchemaVersion: experiments.SchemaVersion,
		Experiment:    "fig14",
		Meta: experiments.RunMeta{
			WarmupInstructions:  5_000,
			MeasureInstructions: 20_000,
			Benchmarks:          []experiments.BenchmarkRef{{Name: "noop"}},
		},
	}
	// The batch references: the same experiments run once through the
	// harness directly. Every service run must reproduce its reference
	// cell for cell.
	wantSim, err := experiments.Fig14(experiments.Options{
		Warmup: 5_000, Measure: 20_000, Benchmarks: []string{"noop"},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTable, err := experiments.Run("table1", experiments.Options{})
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 1000
	const clients = 32
	isSim := func(i int) bool { return i%8 == 0 }
	type outcome struct {
		manifests int
		jobID     string
		status    string
		rows      []serve.Row
		err       error
	}
	outcomes := make([]outcome, jobs)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				spec := table1Spec()
				if isSim(i) {
					spec = simSpec
				}
				res, err := c.RunJob(context.Background(), spec)
				o := outcome{err: err}
				if res != nil {
					o.rows = res.Rows
					if res.Status != nil {
						o.jobID = res.Status.JobID
					}
					if res.Manifest != nil {
						o.manifests = 1
						o.status = res.Manifest.Status
					}
				}
				outcomes[i] = o
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		work <- i
	}
	close(work)
	wg.Wait()

	// Reconcile: every job produced exactly one manifest, done, with a
	// unique ID, and rows identical to the batch run.
	ids := make(map[string]bool, jobs)
	lost, dup, failed, mismatched := 0, 0, 0, 0
	for i, o := range outcomes {
		if o.err != nil || o.manifests == 0 {
			lost++
			if lost <= 3 {
				t.Errorf("job %d lost: err=%v manifests=%d", i, o.err, o.manifests)
			}
			continue
		}
		if o.status != serve.StatusDone {
			failed++
			continue
		}
		if ids[o.jobID] {
			dup++
		}
		ids[o.jobID] = true
		want := wantTable
		if isSim(i) {
			want = wantSim
		}
		if len(o.rows) != want.Table.NumRows() {
			mismatched++
			continue
		}
		for r := range o.rows {
			if !reflect.DeepEqual(o.rows[r].Cells, want.Table.Row(r)) {
				mismatched++
				break
			}
		}
	}
	if lost != 0 || dup != 0 || failed != 0 || mismatched != 0 {
		t.Fatalf("reconciliation: lost=%d duplicated=%d failed=%d mismatched=%d of %d", lost, dup, failed, mismatched, jobs)
	}
	cs := s.Counters()
	if cs.Submitted != jobs+blockers || cs.Completed != jobs || cs.Canceled != blockers {
		t.Errorf("counters after load = %+v, want submitted=%d completed=%d canceled=%d",
			cs, jobs+blockers, jobs, blockers)
	}
	if int(cs.Submitted) != cs.Queued+cs.Inflight+int(cs.Completed+cs.Failed+cs.Canceled+cs.Cached) {
		t.Errorf("conservation violated after load: %+v", cs)
	}
	if cs.Rejected == 0 {
		t.Error("no rejections booked; the saturation probe above must count as one")
	}
	t.Logf("%d jobs reconciled (%d submissions rejected)", jobs, cs.Rejected)
}

// TestConcurrentSubmitCancelStreamHammer races submissions, immediate
// cancellations, and streams against each other; run under -race this
// is the memory-model check on the job table, the shard queues, and
// the stream/finish handoff. Every job must still terminate with
// exactly one manifest whose status is a legal terminal state.
func TestConcurrentSubmitCancelStreamHammer(t *testing.T) {
	_, c := newTestServer(t, serve.Config{Shards: 2, Workers: 2, QueueDepth: 4})
	c.MaxAttempts = 200
	c.Backoff = time.Millisecond
	c.MaxBackoff = 20 * time.Millisecond

	const jobs = 60
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			spec := table1Spec()
			if i%3 == 1 { // a slower job, so cancels land mid-queue or mid-run
				spec = tinyFig14()
				spec.Meta.Benchmarks = spec.Meta.Benchmarks[:1]
			}
			st, err := c.Submit(ctx, spec)
			if err != nil {
				errs[i] = err
				return
			}
			if i%3 != 0 {
				// Racing cancel: may land before, during, or after the run.
				go c.Cancel(ctx, st.JobID)
			}
			m, err := c.Stream(ctx, st.JobID, nil)
			if err != nil {
				errs[i] = err
				return
			}
			switch m.Status {
			case serve.StatusDone, serve.StatusFailed, serve.StatusCanceled:
			default:
				t.Errorf("job %s terminal status %q", st.JobID, m.Status)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
}
