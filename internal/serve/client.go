package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Client speaks the job API. It retries submissions on backpressure
// (429), draining (503), other 5xx, and transport errors, with
// jittered exponential backoff that honors the server's Retry-After
// hint. cmd/skiactl is a thin load-generating wrapper around it.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds submission attempts (default 8).
	MaxAttempts int
	// Backoff is the first retry delay (default 50ms); it doubles per
	// attempt up to MaxBackoff (default 2s), each delay jittered
	// uniformly in [delay/2, delay]. A Retry-After hint overrides the
	// schedule when larger.
	Backoff, MaxBackoff time.Duration
	// Traceparent, when non-nil, supplies the W3C `traceparent` header
	// for each submission attempt. When nil, Submit generates one from
	// the client's seeded RNG, so the server's job spans root under a
	// client-side trace and fixed seeds yield reproducible trace IDs.
	Traceparent func() string

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient builds a client. The seed drives backoff jitter only —
// fixed seeds make load-test schedules reproducible.
func NewClient(baseURL string, seed int64) *Client {
	return &Client{BaseURL: baseURL, rng: rand.New(rand.NewSource(seed))}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 8
}

// traceparent returns the header value for one submission: the
// Traceparent override when set, otherwise a sampled W3C traceparent
// with RNG-drawn trace and span IDs (zero IDs are invalid, so zero
// draws are bumped).
func (c *Client) traceparent() string {
	if c.Traceparent != nil {
		return c.Traceparent()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(1))
	}
	hi, lo, span := c.rng.Uint64(), c.rng.Uint64(), c.rng.Uint64()
	if hi == 0 && lo == 0 {
		lo = 1
	}
	if span == 0 {
		span = 1
	}
	return fmt.Sprintf("00-%016x%016x-%016x-01", hi, lo, span)
}

// jitter returns a uniformly jittered delay in [d/2, d].
func (c *Client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(1))
	}
	half := d / 2
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}

// backoffDelay computes the attempt'th delay (0-based), folding in a
// Retry-After hint when the server sent one.
func (c *Client) backoffDelay(attempt int, retryAfter time.Duration) time.Duration {
	base := c.Backoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxB := c.MaxBackoff
	if maxB <= 0 {
		maxB = 2 * time.Second
	}
	d := base << uint(attempt)
	if d > maxB || d <= 0 {
		d = maxB
	}
	d = c.jitter(d)
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// RetriableError wraps a submission rejection worth retrying; Submit
// returns it (wrapped) only once MaxAttempts is exhausted.
type RetriableError struct {
	StatusCode int
	Message    string
}

func (e *RetriableError) Error() string {
	return fmt.Sprintf("http %d: %s", e.StatusCode, e.Message)
}

// Submit posts a job spec, retrying on 429/503/5xx and transport
// errors, and returns the accepted job's status.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var last error
	var lastHint time.Duration
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		if attempt > 0 {
			delay := c.backoffDelay(attempt-1, lastHint)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("traceparent", c.traceparent())
		resp, err := c.httpClient().Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			last, lastHint = &RetriableError{Message: err.Error()}, 0
			continue
		}
		st, hint, rerr := decodeSubmitResponse(resp)
		if rerr == nil {
			return st, nil
		}
		var re *RetriableError
		if !errors.As(rerr, &re) {
			return nil, rerr // permanent (400, 404, decode failure)
		}
		last, lastHint = rerr, hint
	}
	return nil, fmt.Errorf("serve: submit gave up after %d attempts: %w", c.maxAttempts(), last)
}

// decodeSubmitResponse classifies a submit response: 202 yields the
// status, 429/503/5xx yield a *RetriableError plus the parsed
// Retry-After hint, anything else is permanent.
func decodeSubmitResponse(resp *http.Response) (*JobStatus, time.Duration, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode == http.StatusAccepted {
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return nil, 0, fmt.Errorf("serve: decode submit response: %w", err)
		}
		return &st, 0, nil
	}
	msg := string(bytes.TrimSpace(data))
	var ae apiError
	if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
		msg = ae.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable ||
		resp.StatusCode >= 500 {
		hint := time.Duration(0)
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil {
				hint = time.Duration(secs) * time.Second
			}
		}
		return nil, hint, &RetriableError{StatusCode: resp.StatusCode, Message: msg}
	}
	return nil, 0, fmt.Errorf("serve: submit: http %d: %s", resp.StatusCode, msg)
}

// ParseStream decodes one NDJSON job stream, invoking fn (when
// non-nil) per event, and returns the final manifest. It errors if
// the stream ends without a manifest — the framing contract every
// stream must satisfy.
func ParseStream(r io.Reader, fn func(StreamEvent) error) (*JobManifest, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var manifest *JobManifest
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("serve: decode stream event: %w", err)
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return nil, err
			}
		}
		if ev.Type == "manifest" {
			manifest = ev.Manifest
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if manifest == nil {
		return nil, fmt.Errorf("serve: stream ended without a manifest event")
	}
	return manifest, nil
}

// Stream opens a job's result stream and parses it to completion.
func (c *Client) Stream(ctx context.Context, jobID string, fn func(StreamEvent) error) (*JobManifest, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%s/stream", c.BaseURL, jobID), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("serve: stream: http %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return ParseStream(resp.Body, fn)
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, jobID string) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		fmt.Sprintf("%s/v1/jobs/%s", c.BaseURL, jobID), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("serve: cancel: http %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// JobResult is RunJob's aggregate: the submit-time status, every
// streamed row, the full report envelope (raw JSON, ready to write as
// a skiaexp-style <id>.json file), and the closing manifest.
type JobResult struct {
	Status   *JobStatus
	Columns  []string
	Rows     []Row
	Report   json.RawMessage
	Manifest *JobManifest
}

// RunJob submits a spec and consumes its stream to the final
// manifest. A terminal status other than done is returned as an error
// (a *RetriableError when the manifest marks the failure retriable);
// the JobResult still carries whatever the stream delivered.
func (c *Client) RunJob(ctx context.Context, spec JobSpec) (*JobResult, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	res := &JobResult{Status: st}
	_, err = c.Stream(ctx, st.JobID, func(ev StreamEvent) error {
		switch ev.Type {
		case "columns":
			for _, col := range ev.Columns {
				res.Columns = append(res.Columns, col.Name)
			}
		case "row":
			res.Rows = append(res.Rows, *ev.Row)
		case "report":
			raw, err := json.MarshalIndent(ev.Report, "", "  ")
			if err != nil {
				return err
			}
			res.Report = raw
		case "manifest":
			res.Manifest = ev.Manifest
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if m := res.Manifest; m.Status != StatusDone {
		if m.Retriable {
			return res, &RetriableError{Message: fmt.Sprintf("job %s %s: %s", m.JobID, m.Status, m.Error)}
		}
		return res, fmt.Errorf("serve: job %s %s: %s", m.JobID, m.Status, m.Error)
	}
	return res, nil
}
