package serve

import (
	"fmt"
	"net/http"
	"strings"
)

// Counters is a snapshot of the server's job accounting, exposed as
// JSON (tests, tooling) and as the plain-text /metrics rendering.
//
// The counters conserve: Submitted == Queued + Inflight + Completed +
// Failed + Canceled at every instant (Rejected requests never receive
// a job ID and are counted separately). TestMetricsConservation holds
// the server to that identity under concurrent load, the same way the
// simulator's attribution engine proves its cause taxonomy against
// aggregate counters.
type Counters struct {
	// Submitted counts accepted jobs (HTTP 202).
	Submitted uint64 `json:"jobs_submitted_total"`
	// Rejected counts submissions turned away with 429 (queue full)
	// or 503 (draining); they never become jobs.
	Rejected uint64 `json:"jobs_rejected_total"`
	// Completed/Failed/Canceled count terminal jobs.
	Completed uint64 `json:"jobs_completed_total"`
	Failed    uint64 `json:"jobs_failed_total"`
	Canceled  uint64 `json:"jobs_canceled_total"`
	// Queued and Inflight are gauges over live jobs.
	Queued   int `json:"jobs_queued"`
	Inflight int `json:"jobs_inflight"`
	// Workers is the pool size (shards × workers per shard);
	// WorkersBusy is the gauge of workers currently running a job, and
	// BusySeconds accumulates their occupied wall time — utilization
	// over a scrape window is ΔBusySeconds / (Workers × Δt).
	Workers     int     `json:"workers"`
	WorkersBusy int     `json:"workers_busy"`
	BusySeconds float64 `json:"worker_busy_seconds_total"`
	// QueueCapacity is the bounded queue size summed over shards.
	QueueCapacity int `json:"queue_capacity"`
}

// metricsText renders the counters in the conventional one-line-per-
// metric exposition format. Rows are emitted in fixed order (no map),
// so the rendering is deterministic — the skialint detmap discipline
// applied to an HTTP response.
func (c Counters) metricsText() string {
	var b strings.Builder
	row := func(name string, v any) {
		fmt.Fprintf(&b, "skiaserve_%s %v\n", name, v)
	}
	row("jobs_submitted_total", c.Submitted)
	row("jobs_rejected_total", c.Rejected)
	row("jobs_completed_total", c.Completed)
	row("jobs_failed_total", c.Failed)
	row("jobs_canceled_total", c.Canceled)
	row("jobs_queued", c.Queued)
	row("jobs_inflight", c.Inflight)
	row("workers", c.Workers)
	row("workers_busy", c.WorkersBusy)
	row("worker_busy_seconds_total", fmt.Sprintf("%.6f", c.BusySeconds))
	row("queue_capacity", c.QueueCapacity)
	return b.String()
}

// Hooks are optional observation points, nil-checked at every call
// site in the internal/metrics style: an unset hook costs one nil
// check, never an allocation or a lock. They run on the server's
// request/worker goroutines, so implementations must be fast and
// concurrency-safe.
type Hooks struct {
	// OnSubmit fires after a job is accepted and enqueued.
	OnSubmit func(id string)
	// OnFinish fires when a job reaches a terminal status
	// (done/failed/canceled).
	OnFinish func(id, status string)
	// OnReject fires when a submission is turned away (429/503).
	OnReject func(reason string)
}

// handleHealthz implements GET /healthz: 200 "ok" while accepting
// work, 503 "draining" once shutdown has begun.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics implements GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.Counters().metricsText())
}
