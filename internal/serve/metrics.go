package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/stats"
)

// Counters is a snapshot of the server's job accounting, exposed as
// JSON (tests, tooling) and as the /metrics counter block.
//
// The counters conserve: Submitted == Queued + Inflight + Completed +
// Failed + Canceled + Cached at every instant (Rejected requests never
// receive a job ID and are counted separately). TestMetricsConservation
// holds the server to that identity under concurrent load, the same way
// the simulator's attribution engine proves its cause taxonomy against
// aggregate counters.
type Counters struct {
	// Submitted counts accepted jobs (HTTP 202).
	Submitted uint64 `json:"jobs_submitted_total"`
	// Rejected counts submissions turned away with 429 (queue full)
	// or 503 (draining); they never become jobs.
	Rejected uint64 `json:"jobs_rejected_total"`
	// Completed/Failed/Canceled count terminal jobs. Completed counts
	// simulated successes only; jobs whose report was served from the
	// run-history archive on a spec-hash match (-cache) book to Cached
	// instead, so the cache's work savings read directly off /metrics.
	Completed uint64 `json:"jobs_completed_total"`
	Failed    uint64 `json:"jobs_failed_total"`
	Canceled  uint64 `json:"jobs_canceled_total"`
	Cached    uint64 `json:"jobs_cached_total"`
	// Queued and Inflight are gauges over live jobs.
	Queued   int `json:"jobs_queued"`
	Inflight int `json:"jobs_inflight"`
	// Workers is the pool size (shards × workers per shard);
	// WorkersBusy is the gauge of workers currently running a job, and
	// BusySeconds accumulates their occupied wall time — utilization
	// over a scrape window is ΔBusySeconds / (Workers × Δt).
	Workers     int     `json:"workers"`
	WorkersBusy int     `json:"workers_busy"`
	BusySeconds float64 `json:"worker_busy_seconds_total"`
	// QueueCapacity is the bounded queue size summed over shards.
	QueueCapacity int `json:"queue_capacity"`
}

// ServiceStats holds the server's latency histograms (guarded by the
// server mutex). Observations follow the job lifecycle: QueueWait at
// the queued→running transition, Run when a running job reaches a
// terminal state. Both render on /metrics as Prometheus histograms
// with log2 buckets (stats.Histogram.Log2Buckets), so queue pressure
// and run-time regressions separate cleanly in one scrape.
type ServiceStats struct {
	QueueWait stats.Histogram
	Run       stats.Histogram
}

// Routes, for the per-route HTTP latency histograms. Fixed order: the
// /metrics rendering iterates this, never a map.
const (
	routeSubmit = iota
	routeList
	routeStatus
	routeCancel
	routeStream
	routeTrace
	routeHistory
	routeHealthz
	routeMetrics
)

var routeNames = [...]string{
	routeSubmit:  "submit",
	routeList:    "list",
	routeStatus:  "status",
	routeCancel:  "cancel",
	routeStream:  "stream",
	routeTrace:   "trace",
	routeHistory: "history",
	routeHealthz: "healthz",
	routeMetrics: "metrics",
}

// timed wraps a handler with its route's request-latency histogram.
// Note the stream route times the whole stream — long values there
// mean long jobs, not a slow server; the submit/status routes are the
// ones that must stay in the low buckets.
func (s *Server) timed(route int, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		sec := time.Since(t0).Seconds()
		s.mu.Lock()
		s.httpLat[route].Observe(sec)
		s.mu.Unlock()
	}
}

// Hooks are optional observation points, nil-checked at every call
// site in the internal/metrics style: an unset hook costs one nil
// check, never an allocation or a lock. They run on the server's
// request/worker goroutines, so implementations must be fast and
// concurrency-safe.
type Hooks struct {
	// OnSubmit fires after a job is accepted and enqueued.
	OnSubmit func(id string)
	// OnFinish fires when a job reaches a terminal status
	// (done/failed/canceled).
	OnFinish func(id, status string)
	// OnReject fires when a submission is turned away (429/503).
	OnReject func(reason string)
	// OnProgress fires at every simulation instruction-chunk checkpoint
	// of a running job (cumulative retired vs planned instructions). It
	// runs on simulation worker goroutines at chunk frequency — keep it
	// cheap.
	OnProgress func(id string, done, planned uint64)
}

// Health is the GET /healthz body: liveness plus enough queue detail
// to see where capacity is going without scraping /metrics.
type Health struct {
	// Status is "ok" while accepting work, "draining" once shutdown
	// has begun (the HTTP status mirrors it: 200 vs 503).
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	// Queued and Inflight are the live-job gauges; Workers and
	// WorkersBusy size the pool and its current occupancy.
	Queued      int `json:"queued"`
	Inflight    int `json:"inflight"`
	Workers     int `json:"workers"`
	WorkersBusy int `json:"workers_busy"`
	// Shards reports each shard queue's occupancy against its bound —
	// one hot shard with the rest idle is a balance bug, all full is
	// genuine saturation.
	Shards []ShardHealth `json:"shards"`
}

// ShardHealth is one shard queue's occupancy in the /healthz body.
type ShardHealth struct {
	Shard         int `json:"shard"`
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
}

// handleHealthz implements GET /healthz: 200 while accepting work, 503
// once shutdown has begun, with a JSON body carrying per-shard queue
// depths and the drain state.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	h := Health{
		Status:      "ok",
		Draining:    s.draining,
		Queued:      s.queued,
		Inflight:    s.inflight,
		Workers:     s.cfg.Shards * s.cfg.Workers,
		WorkersBusy: s.inflight,
	}
	for i := range s.shards {
		h.Shards = append(h.Shards, ShardHealth{
			Shard:         i,
			QueueDepth:    len(s.shards[i]),
			QueueCapacity: s.cfg.QueueDepth,
		})
	}
	s.mu.Unlock()
	code := http.StatusOK
	if h.Draining {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// handleMetrics implements GET /metrics in the Prometheus text
// exposition format: the conserved job counters (the same
// `skiaserve_<name> <value>` lines the service has always served, now
// under # HELP/# TYPE headers), per-shard queue-depth gauges, and
// log2-bucket latency histograms for queue wait, run duration, and
// per-route HTTP request time. Everything renders in fixed order — the
// skialint detmap discipline applied to an HTTP response.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	s.renderMetrics(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}

// histSnapshot is one histogram's state captured under the server
// mutex, rendered after release.
type histSnapshot struct {
	labels  string // inner label set, e.g. `route="submit"`, or ""
	buckets []stats.Bucket
	sum     float64
	count   uint64
}

func snapshotHist(h *stats.Histogram, labels string) histSnapshot {
	return histSnapshot{labels: labels, buckets: h.Log2Buckets(), sum: h.Sum(), count: uint64(h.Count())}
}

func (s *Server) renderMetrics(b *strings.Builder) {
	c := s.Counters()

	s.mu.Lock()
	draining := 0
	if s.draining {
		draining = 1
	}
	depths := make([]int, len(s.shards))
	for i := range s.shards {
		depths[i] = len(s.shards[i])
	}
	queueWait := snapshotHist(&s.svc.QueueWait, "")
	run := snapshotHist(&s.svc.Run, "")
	httpLat := make([]histSnapshot, len(routeNames))
	for i := range routeNames {
		httpLat[i] = snapshotHist(&s.httpLat[i], fmt.Sprintf("route=%q", routeNames[i]))
	}
	s.mu.Unlock()

	family := func(name, help, typ string) {
		fmt.Fprintf(b, "# HELP skiaserve_%s %s\n# TYPE skiaserve_%s %s\n", name, help, name, typ)
	}
	scalar := func(name, help, typ string, v any) {
		family(name, help, typ)
		fmt.Fprintf(b, "skiaserve_%s %v\n", name, v)
	}
	scalar("jobs_submitted_total", "Jobs accepted (HTTP 202).", "counter", c.Submitted)
	scalar("jobs_rejected_total", "Submissions rejected with 429 or 503.", "counter", c.Rejected)
	scalar("jobs_completed_total", "Jobs finished successfully.", "counter", c.Completed)
	scalar("jobs_failed_total", "Jobs finished in failure.", "counter", c.Failed)
	scalar("jobs_canceled_total", "Jobs canceled before completion.", "counter", c.Canceled)
	scalar("jobs_cached_total", "Jobs served from the run-history archive without simulating.", "counter", c.Cached)
	scalar("jobs_queued", "Jobs waiting on shard queues.", "gauge", c.Queued)
	scalar("jobs_inflight", "Jobs currently running.", "gauge", c.Inflight)
	scalar("workers", "Worker pool size (shards x workers).", "gauge", c.Workers)
	scalar("workers_busy", "Workers currently running a job.", "gauge", c.WorkersBusy)
	scalar("worker_busy_seconds_total", "Accumulated worker-occupied wall time.", "counter",
		fmt.Sprintf("%.6f", c.BusySeconds))
	scalar("queue_capacity", "Bounded queue size summed over shards.", "gauge", c.QueueCapacity)
	scalar("draining", "1 once shutdown has begun, else 0.", "gauge", draining)

	family("shard_queue_depth", "Jobs waiting on one shard's queue.", "gauge")
	for i, d := range depths {
		fmt.Fprintf(b, "skiaserve_shard_queue_depth{shard=\"%d\"} %d\n", i, d)
	}
	family("shard_queue_capacity", "One shard's bounded queue size.", "gauge")
	for i := range depths {
		fmt.Fprintf(b, "skiaserve_shard_queue_capacity{shard=\"%d\"} %d\n", i, s.cfg.QueueDepth)
	}

	family("job_queue_wait_seconds", "Shard-queue wait per job, enqueue to worker pickup.", "histogram")
	renderHist(b, "job_queue_wait_seconds", queueWait)
	family("job_run_seconds", "Run duration per job, worker pickup to terminal state.", "histogram")
	renderHist(b, "job_run_seconds", run)
	family("http_request_seconds", "HTTP request latency by route (stream spans the whole stream).", "histogram")
	for _, snap := range httpLat {
		renderHist(b, "http_request_seconds", snap)
	}
}

// renderHist writes one histogram series (cumulative log2 buckets,
// +Inf, _sum, _count) in exposition format.
func renderHist(b *strings.Builder, name string, snap histSnapshot) {
	sep := ""
	if snap.labels != "" {
		sep = ","
	}
	for _, bk := range snap.buckets {
		fmt.Fprintf(b, "skiaserve_%s_bucket{%s%sle=\"%g\"} %d\n", name, snap.labels, sep, bk.UpperBound, bk.Count)
	}
	fmt.Fprintf(b, "skiaserve_%s_bucket{%s%sle=\"+Inf\"} %d\n", name, snap.labels, sep, snap.count)
	if snap.labels == "" {
		fmt.Fprintf(b, "skiaserve_%s_sum %.6f\n", name, snap.sum)
		fmt.Fprintf(b, "skiaserve_%s_count %d\n", name, snap.count)
		return
	}
	fmt.Fprintf(b, "skiaserve_%s_sum{%s} %.6f\n", name, snap.labels, snap.sum)
	fmt.Fprintf(b, "skiaserve_%s_count{%s} %d\n", name, snap.labels, snap.count)
}
