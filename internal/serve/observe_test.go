package serve_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/serve"
)

// slowSpec is a job big enough to be observed mid-run: one benchmark,
// a couple of million instructions.
func slowSpec() serve.JobSpec {
	return serve.JobSpec{
		SchemaVersion: experiments.SchemaVersion,
		Experiment:    "fig14",
		Meta: experiments.RunMeta{
			WarmupInstructions:  50_000,
			MeasureInstructions: 1_000_000,
			Benchmarks:          []experiments.BenchmarkRef{{Name: "noop"}},
		},
	}
}

// TestSpanSetConservation: every accepted-and-streamed job emits
// exactly one submit/queue/run/stream span set, all on the job's
// trace, with queue/run/stream parented under submit. The span
// taxonomy conserves the same way the job counters do.
func TestSpanSetConservation(t *testing.T) {
	s, c := newTestServer(t, serve.Config{Workers: 2})
	ctx := context.Background()
	const jobs = 6
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		res, err := c.RunJob(ctx, table1Spec())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, res.Status.JobID)
	}
	byJob := map[string]map[string][]metrics.Span{}
	for _, sp := range s.Spans() {
		if byJob[sp.Scope] == nil {
			byJob[sp.Scope] = map[string][]metrics.Span{}
		}
		byJob[sp.Scope][sp.Name] = append(byJob[sp.Scope][sp.Name], sp)
	}
	for _, id := range ids {
		phases := byJob[id]
		if phases == nil {
			t.Errorf("job %s recorded no spans", id)
			continue
		}
		for _, name := range []string{"submit", "queue", "run", "stream"} {
			if got := len(phases[name]); got != 1 {
				t.Errorf("job %s has %d %q spans, want exactly 1", id, got, name)
			}
		}
		if total := len(phases); total != 4 {
			t.Errorf("job %s has %d span phases, want 4", id, total)
		}
		submit := phases["submit"][0]
		if submit.TraceID == "" {
			t.Errorf("job %s submit span has no trace id", id)
		}
		for _, name := range []string{"queue", "run", "stream"} {
			for _, sp := range phases[name] {
				if sp.TraceID != submit.TraceID {
					t.Errorf("job %s %s span trace %q != submit trace %q", id, name, sp.TraceID, submit.TraceID)
				}
				if sp.ParentID != submit.SpanID {
					t.Errorf("job %s %s span parent %q != submit span %q", id, name, sp.ParentID, submit.SpanID)
				}
				if sp.End.Before(sp.Start) {
					t.Errorf("job %s %s span ends before it starts", id, name)
				}
			}
		}
	}
}

// TestTraceparentPropagation: a valid client traceparent makes the
// job's spans join the caller's trace with the caller's span as the
// submit parent; a malformed one is ignored and the job self-roots.
func TestTraceparentPropagation(t *testing.T) {
	const (
		traceID = "0af7651916cd43dd8448eb211c80319c"
		spanID  = "b7ad6b7169203331"
	)
	s, c := newTestServer(t, serve.Config{})
	ctx := context.Background()

	c.Traceparent = func() string { return "00-" + traceID + "-" + spanID + "-01" }
	res, err := c.RunJob(ctx, table1Spec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status.TraceID != traceID {
		t.Errorf("status trace id = %q, want caller's %q", res.Status.TraceID, traceID)
	}
	if res.Manifest.TraceID != traceID {
		t.Errorf("manifest trace id = %q, want caller's %q", res.Manifest.TraceID, traceID)
	}
	var submitParent string
	for _, sp := range s.Spans() {
		if sp.Scope == res.Status.JobID && sp.Name == "submit" {
			submitParent = sp.ParentID
		}
	}
	if submitParent != spanID {
		t.Errorf("submit span parent = %q, want caller span %q", submitParent, spanID)
	}

	// Malformed header: ignored, job self-roots a well-formed trace.
	c.Traceparent = func() string { return "00-borked-trace-header" }
	res, err = c.RunJob(ctx, table1Spec())
	if err != nil {
		t.Fatal(err)
	}
	got := res.Status.TraceID
	if len(got) != 32 || got == traceID || strings.ToLower(got) != got {
		t.Errorf("self-rooted trace id = %q, want fresh 32 lowercase hex", got)
	}
}

// TestStreamProgressFrames: with a short ProgressInterval a streamed
// long job carries `progress` heartbeats — monotonic retired counts,
// fraction in [0,1] — strictly before any result event, and the
// framing contract (exactly one manifest, last) still holds.
func TestStreamProgressFrames(t *testing.T) {
	_, c := newTestServer(t, serve.Config{ProgressInterval: 3 * time.Millisecond})
	ctx := context.Background()
	st, err := c.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	var progress []serve.JobProgress
	var sawResult bool
	man, err := c.Stream(ctx, st.JobID, func(ev serve.StreamEvent) error {
		switch ev.Type {
		case "progress":
			if sawResult {
				t.Error("progress frame after result events")
			}
			progress = append(progress, *ev.Progress)
		case "columns", "row", "report":
			sawResult = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if man.Status != serve.StatusDone {
		t.Fatalf("manifest = %+v", man)
	}
	if len(progress) == 0 {
		t.Fatal("no progress frames on a multi-million-instruction stream")
	}
	var last uint64
	for i, p := range progress {
		if p.InstructionsRetired < last {
			t.Errorf("frame %d retired count regressed: %d after %d", i, p.InstructionsRetired, last)
		}
		last = p.InstructionsRetired
		if p.Fraction < 0 || p.Fraction > 1 {
			t.Errorf("frame %d fraction = %v", i, p.Fraction)
		}
	}
	if man.RunSeconds <= 0 {
		t.Errorf("manifest run_seconds = %v, want > 0", man.RunSeconds)
	}
}

// TestStatusProgressAndManifestSplit: once a job is done its status
// and manifest carry the full progress accounting — fraction 1, a
// positive simulated-MIPS figure, and the queue-wait/run-time split
// that lets latency regressions attribute to the right component.
func TestStatusProgressAndManifestSplit(t *testing.T) {
	_, c := newTestServer(t, serve.Config{ProgressInterval: -1})
	ctx := context.Background()
	st, err := c.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	man, err := c.Stream(ctx, st.JobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL + "/v1/jobs/" + st.JobID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var final serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	p := final.Progress
	if p == nil {
		t.Fatal("terminal status has no progress")
	}
	if p.InstructionsPlanned == 0 || p.InstructionsRetired < p.InstructionsPlanned {
		t.Errorf("retired %d of %d planned", p.InstructionsRetired, p.InstructionsPlanned)
	}
	if p.Fraction != 1 {
		t.Errorf("terminal fraction = %v, want 1", p.Fraction)
	}
	if p.SimMIPS <= 0 {
		t.Errorf("sim_mips = %v, want > 0", p.SimMIPS)
	}
	if p.ETASeconds != 0 {
		t.Errorf("terminal eta_seconds = %v, want omitted", p.ETASeconds)
	}
	if p.RunSeconds <= 0 || p.QueueSeconds < 0 {
		t.Errorf("latency split = queue %v / run %v", p.QueueSeconds, p.RunSeconds)
	}
	if man.QueueSeconds != p.QueueSeconds || man.RunSeconds != p.RunSeconds {
		t.Errorf("manifest split (%v, %v) != status split (%v, %v)",
			man.QueueSeconds, man.RunSeconds, p.QueueSeconds, p.RunSeconds)
	}
	if man.TraceID != final.TraceID || man.TraceID == "" {
		t.Errorf("manifest trace %q != status trace %q", man.TraceID, final.TraceID)
	}
}

// TestJobTraceEndpoint: GET /v1/jobs/{id}/trace serves a loadable
// Chrome trace_event file holding the job's span set.
func TestJobTraceEndpoint(t *testing.T) {
	_, c := newTestServer(t, serve.Config{})
	res, err := c.RunJob(context.Background(), table1Spec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL + "/v1/jobs/" + res.Status.JobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint = %d", resp.StatusCode)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Metadata["job_id"] != res.Status.JobID {
		t.Errorf("trace metadata = %v", out.Metadata)
	}
	complete := map[string]bool{}
	for _, e := range out.TraceEvents {
		if e.Phase == "X" {
			complete[e.Name] = true
		}
	}
	// The stream span lands after the manifest is written, so a trace
	// fetched immediately afterwards may or may not include it; the
	// first three lifecycle phases must be there.
	for _, name := range []string{"submit", "queue", "run"} {
		if !complete[name] {
			t.Errorf("trace lacks %q span (have %v)", name, complete)
		}
	}

	if resp, err := http.Get(c.BaseURL + "/v1/jobs/nope/trace"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job trace = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestMetricsPrometheusText: /metrics speaks the Prometheus text
// exposition format — HELP/TYPE headers, per-shard gauges, log2-bucket
// latency histograms with cumulative monotonic buckets — while keeping
// the exact counter lines earlier tooling greps.
func TestMetricsPrometheusText(t *testing.T) {
	_, c := newTestServer(t, serve.Config{Shards: 2, Workers: 1})
	ctx := context.Background()
	const jobs = 3
	for i := 0; i < jobs; i++ {
		if _, err := c.RunJob(ctx, table1Spec()); err != nil {
			t.Fatal(err)
		}
	}
	scrape := func() string {
		t.Helper()
		resp, err := http.Get(c.BaseURL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	// The stream route's own latency observation lands just after the
	// client sees the stream close; poll briefly for it.
	text := scrape()
	for deadline := time.Now().Add(2 * time.Second); !strings.Contains(text,
		`skiaserve_http_request_seconds_count{route="stream"} 3`) && time.Now().Before(deadline); {
		time.Sleep(2 * time.Millisecond)
		text = scrape()
	}

	for _, want := range []string{
		"# HELP skiaserve_jobs_submitted_total",
		"# TYPE skiaserve_jobs_submitted_total counter",
		"skiaserve_jobs_submitted_total 3",
		"skiaserve_jobs_completed_total 3",
		"# TYPE skiaserve_jobs_queued gauge",
		"skiaserve_draining 0",
		`skiaserve_shard_queue_depth{shard="0"} 0`,
		`skiaserve_shard_queue_depth{shard="1"} 0`,
		`skiaserve_shard_queue_capacity{shard="0"} 64`,
		"# TYPE skiaserve_job_queue_wait_seconds histogram",
		"# TYPE skiaserve_job_run_seconds histogram",
		"# TYPE skiaserve_http_request_seconds histogram",
		"skiaserve_job_queue_wait_seconds_count 3",
		"skiaserve_job_run_seconds_count 3",
		`skiaserve_http_request_seconds_count{route="submit"} 3`,
		`skiaserve_http_request_seconds_count{route="stream"} 3`,
		`skiaserve_http_request_seconds_bucket{route="status",le="+Inf"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}

	// Histogram buckets must be cumulative (monotonic nondecreasing,
	// ending at _count).
	bucketRe := regexp.MustCompile(`^skiaserve_job_run_seconds_bucket\{le="([^"]+)"\} (\d+)$`)
	var counts []uint64
	for _, line := range strings.Split(text, "\n") {
		if m := bucketRe.FindStringSubmatch(line); m != nil {
			v, err := strconv.ParseUint(m[2], 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			counts = append(counts, v)
		}
	}
	if len(counts) < 2 {
		t.Fatalf("job_run_seconds has %d buckets (incl +Inf), want >= 2", len(counts))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Errorf("bucket counts not cumulative: %v", counts)
		}
	}
	if counts[len(counts)-1] != jobs {
		t.Errorf("+Inf bucket = %d, want %d", counts[len(counts)-1], jobs)
	}

	// Two scrapes with no traffic in between render identically except
	// for the metrics/healthz route's own self-observation.
	if !strings.Contains(text, "# HELP skiaserve_job_run_seconds") {
		t.Error("histogram family lacks HELP")
	}
}

// TestHealthzShardDetail: /healthz reports per-shard queue occupancy
// and the drain state as JSON, not just a status string.
func TestHealthzShardDetail(t *testing.T) {
	_, c := newTestServer(t, serve.Config{Shards: 3, QueueDepth: 7, Workers: 1})
	resp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var h serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Draining {
		t.Errorf("health = %+v", h)
	}
	if h.Workers != 3 {
		t.Errorf("workers = %d, want 3", h.Workers)
	}
	if len(h.Shards) != 3 {
		t.Fatalf("healthz reports %d shards, want 3", len(h.Shards))
	}
	for i, sh := range h.Shards {
		if sh.Shard != i || sh.QueueCapacity != 7 || sh.QueueDepth != 0 {
			t.Errorf("shard %d health = %+v", i, sh)
		}
	}
}

// TestCanceledQueuedJobSpans: a job canceled off the queue closes its
// queue span at cancel time and never gets a run span — the trace
// shows exactly where its life ended.
func TestCanceledQueuedJobSpans(t *testing.T) {
	// Single worker, occupied by a slow job, so the second job waits.
	s, c := newTestServer(t, serve.Config{Workers: 1})
	ctx := context.Background()
	first, err := c.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Submit(ctx, table1Spec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, second.JobID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream(ctx, first.JobID, nil); err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	for _, sp := range s.Spans() {
		if sp.Scope == second.JobID {
			phases[sp.Name]++
		}
	}
	// The cancel raced worker pickup: either it died queued (submit +
	// queue, no run) or it had just started (full set minus stream).
	if phases["submit"] != 1 || phases["queue"] != 1 {
		t.Errorf("canceled job spans = %v, want one submit and one queue", phases)
	}
	if phases["stream"] != 0 {
		t.Errorf("canceled unstreamed job has a stream span: %v", phases)
	}
}
