// Package serve is the sweep service: it exposes the experiment
// harnesses in internal/experiments as a long-running HTTP job API, so
// config-sweep matrices (the paper's Figure 14 grid, BTB-size
// head-to-heads, future rival-mechanism comparisons) can be driven at
// scale by many concurrent clients instead of one batch skiaexp
// process.
//
// The composition is deliberately thin over layers earlier PRs built:
// job specs reuse the versioned report-envelope schema
// (experiments.RunMeta, schema versions 1..experiments.SchemaVersion),
// results stream back as NDJSON rows of the same typed stats.Table
// cells the envelopes carry, cancellation rides sim.Runner's context
// plumbing into the simulation loop, and the /metrics counters follow
// the conservation discipline the attribution engine established
// (submitted = queued + inflight + completed + failed + canceled,
// enforced by test).
//
// Architecture: submissions join the shortest of N shard queues, each a bounded
// FIFO queue drained by its own worker goroutines. A full shard queue
// rejects with HTTP 429 and a Retry-After hint — backpressure is the
// client's signal to slow down, and cmd/skiactl's jittered backoff
// consumes it. Shutdown drains: in-flight jobs finish within a grace
// period (then are canceled at the next instruction chunk), queued
// jobs fail immediately with a retriable error, and new submissions
// get 503.
//
// API.md documents the HTTP surface end to end with executable
// examples; EXPERIMENTS.md ("Sweep service") documents the spec
// schema's versioning contract.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/store"
)

// Config tunes a Server. The zero value is a usable single-shard,
// single-worker service with a 64-deep queue.
type Config struct {
	// Shards is the number of independent worker-pool shards; jobs
	// join the shortest shard queue at submit time. Default 1.
	Shards int
	// Workers is the number of worker goroutines per shard, each
	// running one job at a time. Default 1.
	Workers int
	// QueueDepth bounds each shard's queue; a full queue rejects
	// submissions with 429. Default 64.
	QueueDepth int
	// JobWorkers bounds simulation concurrency inside one job
	// (experiments.Options.Workers). Default 1: the pool, not the
	// job, owns machine parallelism.
	JobWorkers int
	// DefaultTimeout bounds each job's run time when the spec leaves
	// timeout_seconds at zero. Zero means unbounded.
	DefaultTimeout time.Duration
	// RetryAfter is the hint sent with 429/503 rejections. Default 1s.
	RetryAfter time.Duration
	// MaxJobsRetained caps terminal-job retention for status/stream
	// lookups; the oldest terminal jobs are evicted beyond it.
	// Default 16384.
	MaxJobsRetained int
	// ProgressInterval rate-limits the stream's `progress` heartbeat
	// frames: while a streamed job waits or runs, at most one frame per
	// interval, and only when the retired-instruction count moved.
	// Default 1s; negative disables progress frames entirely (streams
	// then carry result events only, exactly the pre-progress framing).
	ProgressInterval time.Duration
	// SpanCapacity bounds the server-wide span ring (the newest spans
	// win; per-job spans are retained with the job regardless).
	// Default metrics.DefaultSpanRingCapacity.
	SpanCapacity int
	// Logger, when non-nil, receives structured job-lifecycle records
	// (accept/start/finish/reject/drain) with job-scoped attributes.
	// nil disables logging entirely — the nil-checked-hook discipline.
	Logger *slog.Logger
	// Hooks are optional observation callbacks (nil-checked).
	Hooks Hooks
	// Archive, when non-nil, persists every successfully finished
	// job's report to the run-history archive (keyed by the job's spec
	// hash) and enables GET /v1/history/{experiment}. Archive errors
	// are logged, never fail the job.
	Archive *store.Archive
	// Cache, with Archive set, serves a byte-identical archived report
	// on spec-hash match at worker pickup instead of re-simulating.
	// Cache-served jobs finish done with Cached set and book to the
	// conserved `cached` counter lane.
	Cache bool
	// GitDescribe stamps archive records with the serving tree's
	// version (filled by cmd/skiaserve; empty means unknown).
	GitDescribe string
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 1
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobsRetained <= 0 {
		c.MaxJobsRetained = 16384
	}
	if c.ProgressInterval == 0 {
		c.ProgressInterval = time.Second
	}
	if c.SpanCapacity <= 0 {
		c.SpanCapacity = metrics.DefaultSpanRingCapacity
	}
	return c
}

// Server is the sweep service. Create with New, expose with ServeHTTP
// (it implements http.Handler), stop with Shutdown.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	shards []chan *job
	stop   chan struct{}
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	terminal []string // terminal job IDs in finish order, for eviction
	seq      uint64
	draining bool

	// shutdownOnce makes Shutdown idempotent (a second SIGTERM, or test
	// cleanup racing an explicit drain, must not double-close stop).
	shutdownOnce sync.Once
	shutdownErr  error

	// Job accounting (gauges derived at snapshot time). cached is the
	// fourth terminal lane: done jobs whose report came from the
	// archive (completed counts only simulated successes, so the
	// conservation identity stays exact).
	submitted, rejected, completed, failed, canceled, cached uint64
	queued, inflight                                         int
	busySeconds                                              float64

	// Latency accounting (guarded by mu): job-lifecycle histograms plus
	// one HTTP-request histogram per route.
	svc     ServiceStats
	httpLat [len(routeNames)]stats.Histogram

	// spans is the server-wide span ring (internally synchronized);
	// per-job spans additionally live on the job record under mu.
	spans *metrics.SpanRing
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		mux:  http.NewServeMux(),
		stop: make(chan struct{}),
		jobs: make(map[string]*job),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, make(chan *job, cfg.QueueDepth))
	}
	s.spans = metrics.NewSpanRing(cfg.SpanCapacity)
	s.mux.HandleFunc("POST /v1/jobs", s.timed(routeSubmit, s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs", s.timed(routeList, s.handleList))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.timed(routeStatus, s.handleStatus))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.timed(routeCancel, s.handleCancel))
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.timed(routeStream, s.handleStream))
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.timed(routeTrace, s.handleTrace))
	s.mux.HandleFunc("GET /v1/history/{experiment}", s.timed(routeHistory, s.handleHistory))
	s.mux.HandleFunc("GET /healthz", s.timed(routeHealthz, s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.timed(routeMetrics, s.handleMetrics))
	for sh := 0; sh < cfg.Shards; sh++ {
		for w := 0; w < cfg.Workers; w++ {
			s.wg.Add(1)
			go s.worker(sh)
		}
	}
	return s
}

// ServeHTTP dispatches to the job API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Counters snapshots the server's job accounting.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Counters{
		Submitted:     s.submitted,
		Rejected:      s.rejected,
		Completed:     s.completed,
		Failed:        s.failed,
		Canceled:      s.canceled,
		Cached:        s.cached,
		Queued:        s.queued,
		Inflight:      s.inflight,
		Workers:       s.cfg.Shards * s.cfg.Workers,
		WorkersBusy:   s.inflight,
		BusySeconds:   s.busySeconds,
		QueueCapacity: s.cfg.Shards * s.cfg.QueueDepth,
	}
}

// shardFor picks the shard with the shortest queue (join-shortest-
// queue), breaking ties by lowest index so the choice is
// deterministic. Jobs are stateless, so nothing needs hash affinity —
// and hashing sequential job IDs in fact lands heavily on one shard,
// rejecting submissions while other shards sit idle.
func (s *Server) shardFor() int {
	best, bestLen := 0, len(s.shards[0])
	for i := 1; i < len(s.shards); i++ {
		if l := len(s.shards[i]); l < bestLen {
			best, bestLen = i, l
		}
	}
	return best
}

// apiError is the JSON error body for non-2xx responses.
type apiError struct {
	Error string `json:"error"`
	// Retriable marks rejections worth retrying after backing off
	// (queue full, draining) as opposed to permanent ones (validation).
	Retriable bool `json:"retriable"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// handleSubmit implements POST /v1/jobs: validate, assign an ID,
// enqueue on the least-loaded shard, 202 with the job status — or
// 429/503 with Retry-After under backpressure.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decode job spec: " + err.Error()})
		return
	}
	if err := spec.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	retryAfter := strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second))
	t0 := time.Now()
	clientTrace, clientSpan, _ := parseTraceparent(r.Header.Get("traceparent"))

	s.mu.Lock()
	if s.draining {
		s.rejected++
		s.mu.Unlock()
		s.reject(w, http.StatusServiceUnavailable, retryAfter, "draining", "server is draining")
		return
	}
	s.seq++
	id := fmt.Sprintf("job-%08d", s.seq)
	sh := s.shardFor()
	runCtx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:         id,
		spec:       spec,
		shard:      sh,
		specHash:   store.NewSpec(spec.Experiment, spec.options(s.cfg.JobWorkers)).Hash(),
		traceID:    clientTrace,
		parentSpan: clientSpan,
		submitSpan: deriveSpanID(id, "submit"),
		status:     StatusQueued,
		enqueuedAt: time.Now(),
		cancel:     cancel,
		done:       make(chan struct{}),
	}
	if j.traceID == "" {
		// No (valid) traceparent: the job self-roots a trace derived
		// from its ID, so every accepted job is traceable.
		j.traceID = deriveTraceID(id)
	}
	j.runCtx = runCtx
	select {
	case s.shards[sh] <- j:
	default:
		// Bounded queue full: undo the ID grant and push back.
		s.seq--
		s.rejected++
		s.mu.Unlock()
		cancel()
		s.reject(w, http.StatusTooManyRequests, retryAfter, "queue full",
			fmt.Sprintf("shard %d queue full (%d deep)", sh, s.cfg.QueueDepth))
		return
	}
	s.jobs[id] = j
	s.submitted++
	s.queued++
	s.spanLocked(j, "submit", t0, time.Now(), j.parentSpan)
	depth := len(s.shards[sh])
	st := s.statusLocked(j)
	st.QueueDepth = depth
	s.mu.Unlock()
	if s.cfg.Hooks.OnSubmit != nil {
		s.cfg.Hooks.OnSubmit(id)
	}
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("job accepted",
			"job_id", id, "experiment", spec.Experiment, "shard", sh,
			"queue_depth", depth, "trace_id", j.traceID)
	}
	writeJSON(w, http.StatusAccepted, st)
}

// reject writes a retriable rejection (429/503) with its Retry-After
// hint and fires the reject observers.
func (s *Server) reject(w http.ResponseWriter, code int, retryAfter, reason, msg string) {
	if s.cfg.Hooks.OnReject != nil {
		s.cfg.Hooks.OnReject(reason)
	}
	if s.cfg.Logger != nil {
		s.cfg.Logger.Warn("submission rejected", "reason", reason, "status", code)
	}
	w.Header().Set("Retry-After", retryAfter)
	writeJSON(w, code, apiError{Error: msg, Retriable: true})
}

// statusLocked snapshots a job's status; the caller holds s.mu.
func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{
		JobID:      j.id,
		Experiment: j.spec.Experiment,
		Status:     j.status,
		Shard:      j.shard,
		SpecHash:   j.specHash,
		Cached:     j.cached,
		Error:      j.errMsg,
		Retriable:  j.retriable,
		EnqueuedAt: rfc3339(j.enqueuedAt),
		StartedAt:  rfc3339(j.startedAt),
		FinishedAt: rfc3339(j.finishedAt),
		Rows:       j.rows,
	}
	if !j.startedAt.IsZero() && !j.finishedAt.IsZero() {
		st.WallSeconds = j.finishedAt.Sub(j.startedAt).Seconds()
	}
	st.TraceID = j.traceID
	st.Progress = s.progressLocked(j, time.Now())
	return st
}

// progressLocked snapshots a job's live progress; the caller holds
// s.mu. While the job is queued only the queue-wait clock runs; once
// running, the retired-instruction counters (published lock-free by the
// simulation workers) drive fraction, simulated MIPS, and the ETA.
func (s *Server) progressLocked(j *job, now time.Time) *JobProgress {
	if j.enqueuedAt.IsZero() {
		return nil
	}
	done := j.progressDone.Load()
	planned := j.progressPlanned.Load()
	p := &JobProgress{InstructionsRetired: done, InstructionsPlanned: planned}
	end := now
	if !j.finishedAt.IsZero() {
		end = j.finishedAt
	}
	if j.startedAt.IsZero() {
		p.QueueSeconds = end.Sub(j.enqueuedAt).Seconds()
		return p
	}
	p.QueueSeconds = j.startedAt.Sub(j.enqueuedAt).Seconds()
	p.RunSeconds = end.Sub(j.startedAt).Seconds()
	if planned > 0 {
		f := float64(done) / float64(planned)
		if f > 1 {
			f = 1
		}
		p.Fraction = f
	}
	if p.RunSeconds > 0 && done > 0 {
		p.SimMIPS = float64(done) / 1e6 / p.RunSeconds
		if j.finishedAt.IsZero() && planned > done {
			p.ETASeconds = float64(planned-done) / 1e6 / p.SimMIPS
		}
	}
	return p
}

// status snapshots a job's status.
func (s *Server) status(j *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(j)
}

// lookup finds a job by ID.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// handleStatus implements GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

// handleList implements GET /v1/jobs: every retained job's status,
// sorted by job ID (submission order, since IDs are sequential).
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, s.statusLocked(j))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].JobID < out[k].JobID })
	writeJSON(w, http.StatusOK, out)
}

// handleCancel implements DELETE /v1/jobs/{id}: queued jobs finish
// immediately as canceled; running jobs get their context canceled and
// reach the canceled state at the next instruction chunk.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + r.PathValue("id")})
		return
	}
	s.mu.Lock()
	if j.status == StatusQueued {
		s.finishLocked(j, nil, errors.New("canceled by client"), StatusCanceled, false)
	}
	st := s.statusLocked(j)
	s.mu.Unlock()
	// Running (or already terminal): cancel is an idempotent signal.
	j.cancel()
	writeJSON(w, http.StatusOK, st)
}

// worker drains one shard's queue until the server stops.
func (s *Server) worker(sh int) {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.shards[sh]:
			s.runJob(j)
		}
	}
}

// runJob executes one dequeued job through the experiment catalog,
// with the job's cancellation context (plus the per-job timeout)
// threaded into the simulation loop via experiments.Options.Context.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.status != StatusQueued { // canceled while queued
		s.mu.Unlock()
		return
	}
	if s.draining {
		s.finishLocked(j, nil, errors.New("server shutting down before job started; resubmit"), StatusCanceled, true)
		s.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.startedAt = time.Now()
	s.queued--
	s.inflight++
	queueWait := j.startedAt.Sub(j.enqueuedAt).Seconds()
	s.svc.QueueWait.Observe(queueWait)
	s.spanLocked(j, "queue", j.enqueuedAt, j.startedAt, j.submitSpan)
	timeout := s.cfg.DefaultTimeout
	if j.spec.TimeoutSeconds > 0 {
		timeout = time.Duration(j.spec.TimeoutSeconds * float64(time.Second))
	}
	s.mu.Unlock()
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("job started",
			"job_id", j.id, "experiment", j.spec.Experiment, "shard", j.shard,
			"queue_seconds", queueWait)
	}

	// Result cache: with -cache on, a spec-hash match in the archive
	// finishes the job right at worker pickup with the archived report
	// — byte-identical to the original run — without simulating. The
	// job passed through queued→running normally, so the lifecycle
	// spans, queue-wait histogram, and counter conservation all hold;
	// it books to the `cached` lane instead of `completed`.
	if s.cfg.Cache && s.cfg.Archive != nil {
		if rep, ok := s.cacheLookup(j); ok {
			s.mu.Lock()
			j.cached = true
			s.finishLocked(j, rep, nil, StatusDone, false)
			s.mu.Unlock()
			return
		}
	}

	ctx := j.runCtx
	var cancelTimeout context.CancelFunc
	if timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, timeout)
		defer cancelTimeout()
	}
	opts := j.spec.options(s.cfg.JobWorkers)
	opts.Context = ctx
	opts.Progress = func(done, planned uint64) {
		j.progressDone.Store(done)
		j.progressPlanned.Store(planned)
		if s.cfg.Hooks.OnProgress != nil {
			s.cfg.Hooks.OnProgress(j.id, done, planned)
		}
	}
	rep, err := experiments.Run(j.spec.Experiment, opts)

	// Archive before the terminal transition: once the stream's
	// manifest is out (j.done closes inside finishLocked), the record
	// is already durable, so a second pass — or a restarted server —
	// can never miss a result it was told about.
	if err == nil {
		s.archivePut(j, rep, time.Now())
	}

	s.mu.Lock()
	switch {
	case err == nil:
		s.finishLocked(j, rep, nil, StatusDone, false)
	case errors.Is(err, context.DeadlineExceeded):
		s.finishLocked(j, nil, fmt.Errorf("job timeout after %s: %w", timeout, err), StatusFailed, false)
	case errors.Is(err, context.Canceled):
		// Client cancel, or shutdown grace expiry: retriable only in
		// the latter case — the spec itself is fine.
		s.finishLocked(j, nil, err, StatusCanceled, s.draining)
	default:
		s.finishLocked(j, nil, err, StatusFailed, false)
	}
	s.mu.Unlock()
}

// cacheLookup finds the newest archived report matching the job's spec
// hash. Runs outside the server mutex (it reads record files).
func (s *Server) cacheLookup(j *job) (*experiments.Report, bool) {
	rec, ok, err := s.cfg.Archive.Latest(j.specHash)
	if err != nil || !ok {
		if err != nil && s.cfg.Logger != nil {
			s.cfg.Logger.Warn("cache lookup failed", "job_id", j.id, "error", err.Error())
		}
		return nil, false
	}
	rep, err := experiments.DecodeReport(rec.Payload)
	if err != nil {
		if s.cfg.Logger != nil {
			s.cfg.Logger.Warn("cached record undecodable; simulating",
				"job_id", j.id, "record_id", rec.ID, "error", err.Error())
		}
		return nil, false
	}
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("cache hit",
			"job_id", j.id, "spec_hash", j.specHash, "record_id", rec.ID)
	}
	return rep, true
}

// archivePut persists a successfully simulated report to the archive,
// outside the server mutex (file IO). Dedup is the store's: rerunning
// an identical spec on the same tree appends nothing. Errors log and
// are otherwise swallowed — archiving is observability, not the job.
func (s *Server) archivePut(j *job, rep *experiments.Report, finished time.Time) {
	if s.cfg.Archive == nil || rep == nil {
		return
	}
	payload, err := json.Marshal(rep)
	if err == nil {
		_, _, err = s.cfg.Archive.PutReport(payload,
			store.NewSpec(j.spec.Experiment, j.spec.options(s.cfg.JobWorkers)),
			store.PutMeta{RecordedAt: finished, GitDescribe: s.cfg.GitDescribe, Source: "skiaserve"})
	}
	if err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("archive put failed", "job_id", j.id, "error", err.Error())
	}
}

// handleHistory implements GET /v1/history/{experiment}: the archived
// trajectory (points plus per-metric roll-ups) for one experiment.
// 404 without -archive; an empty trajectory for a valid experiment is
// a 200 with zero points.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Archive == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no archive configured (start skiaserve with -archive)"})
		return
	}
	exp := r.PathValue("experiment")
	if _, ok := experiments.Catalog()[exp]; !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown experiment " + exp})
		return
	}
	hist, err := s.cfg.Archive.History(exp)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, hist)
}

// finishLocked moves a job to a terminal state, books the counters,
// and wakes streamers. The caller holds s.mu; hooks fire inline
// (nil-checked) and must not call back into the server.
func (s *Server) finishLocked(j *job, rep *experiments.Report, err error, status string, retriable bool) {
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusCanceled {
		return
	}
	wasQueued := j.status == StatusQueued
	wasRunning := j.status == StatusRunning
	j.finishedAt = time.Now()
	j.report = rep
	j.runErr = err
	j.retriable = retriable
	if err != nil {
		j.errMsg = err.Error()
	}
	if rep != nil {
		j.rows = rep.Table.NumRows()
	}
	j.status = status
	if wasQueued {
		s.queued--
		// The job dies on the queue: its queue span ends at finish time
		// and no run span exists — the trace shows where the time went.
		s.spanLocked(j, "queue", j.enqueuedAt, j.finishedAt, j.submitSpan)
	}
	if wasRunning {
		s.inflight--
		runSeconds := j.finishedAt.Sub(j.startedAt).Seconds()
		s.busySeconds += runSeconds
		s.svc.Run.Observe(runSeconds)
		s.spanLocked(j, "run", j.startedAt, j.finishedAt, j.submitSpan)
	}
	switch status {
	case StatusDone:
		// Cache-served jobs book to their own conserved lane:
		// submitted = queued + inflight + completed + failed +
		// canceled + cached, with completed counting only simulated
		// successes.
		if j.cached {
			s.cached++
		} else {
			s.completed++
		}
	case StatusFailed:
		s.failed++
	case StatusCanceled:
		s.canceled++
	}
	s.terminal = append(s.terminal, j.id)
	s.evictLocked()
	close(j.done)
	if s.cfg.Hooks.OnFinish != nil {
		s.cfg.Hooks.OnFinish(j.id, status)
	}
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("job finished",
			"job_id", j.id, "status", status, "rows", j.rows,
			"wall_seconds", j.finishedAt.Sub(j.enqueuedAt).Seconds(),
			"error", j.errMsg)
	}
}

// evictLocked drops the oldest terminal jobs beyond the retention cap.
func (s *Server) evictLocked() {
	over := len(s.terminal) - s.cfg.MaxJobsRetained
	for i := 0; i < over; i++ {
		delete(s.jobs, s.terminal[i])
	}
	if over > 0 {
		s.terminal = append([]string(nil), s.terminal[over:]...)
	}
}

// Shutdown drains the server: new submissions get 503, queued jobs
// fail immediately with a retriable error, and in-flight jobs get
// until ctx's deadline to finish before their contexts are canceled
// (aborting the simulations at the next instruction chunk). It returns
// nil when every job reached a terminal state. Idempotent: later calls
// return the first call's result without re-draining.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() { s.shutdownErr = s.shutdown(ctx) })
	return s.shutdownErr
}

func (s *Server) shutdown(ctx context.Context) error {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("drain started")
	}
	s.mu.Lock()
	s.draining = true
	// Reject everything still queued, retriably: the client should
	// resubmit elsewhere or after restart.
	var queued []*job
	for _, ch := range s.shards {
	drain:
		for {
			select {
			case j := <-ch:
				queued = append(queued, j)
			default:
				break drain
			}
		}
	}
	for _, j := range queued {
		if j.status == StatusQueued {
			s.finishLocked(j, nil, errors.New("server shutting down before job started; resubmit"), StatusCanceled, true)
		}
	}
	s.mu.Unlock()

	// Wait for in-flight jobs within the grace period.
	done := make(chan struct{})
	go func() {
		for {
			s.mu.Lock()
			idle := s.inflight == 0 && s.queued == 0
			s.mu.Unlock()
			if idle {
				close(done)
				return
			}
			select {
			case <-time.After(10 * time.Millisecond):
			case <-ctx.Done():
				return
			}
		}
	}()
	var graceErr error
	select {
	case <-done:
	case <-ctx.Done():
		graceErr = fmt.Errorf("serve: grace period expired; canceling in-flight jobs: %w", ctx.Err())
		s.mu.Lock()
		var inflight []*job
		//skia:detmap-ok collection order only sequences idempotent cancel() calls; no output depends on it
		for _, j := range s.jobs {
			if j.status == StatusRunning || j.status == StatusQueued {
				inflight = append(inflight, j)
			}
		}
		s.mu.Unlock()
		for _, j := range inflight {
			j.cancel()
		}
		// Canceled simulations abort at the next chunk; wait for the
		// workers to book them.
		for {
			s.mu.Lock()
			idle := s.inflight == 0 && s.queued == 0
			s.mu.Unlock()
			if idle {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	close(s.stop)
	s.wg.Wait()
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("drain complete", "graceful", graceErr == nil)
	}
	return graceErr
}
