package serve_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// waitInflight polls until the server reports n in-flight jobs.
func waitInflight(t *testing.T, s *serve.Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.Counters().Inflight < n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d in-flight jobs (counters %+v)", n, s.Counters())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShutdownDrainsInflightWithinGrace: an in-flight job is allowed
// to finish during the grace period and completes done; a queued job
// behind it is rejected immediately, canceled and retriable; healthz
// flips to 503 while draining; submissions during the drain get 503
// with Retry-After.
func TestShutdownDrainsInflightWithinGrace(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1, QueueDepth: 8})
	hs := httptest.NewServer(s)
	defer hs.Close()
	c := serve.NewClient(hs.URL, 1)
	ctx := context.Background()

	// ~4M instructions across the fig14 variants: long enough to still
	// be running when Shutdown starts, short enough to finish well
	// inside the grace period.
	inflight := tinyFig14()
	inflight.Meta.MeasureInstructions = 1_000_000
	inflight.Meta.Benchmarks = inflight.Meta.Benchmarks[:1]
	running, err := c.Submit(ctx, inflight)
	if err != nil {
		t.Fatal(err)
	}
	waitInflight(t, s, 1)
	queued, err := c.Submit(ctx, table1Spec())
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		drained <- s.Shutdown(sctx)
	}()

	// While draining: healthz 503, submissions 503 + Retry-After.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never flipped to 503 during drain")
		}
		time.Sleep(time.Millisecond)
	}
	c2 := serve.NewClient(hs.URL, 2)
	c2.MaxAttempts = 1
	_, err = c2.Submit(ctx, table1Spec())
	var re *serve.RetriableError
	if !errors.As(err, &re) || re.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain: err = %v, want wrapped 503 RetriableError", err)
	}

	if err := <-drained; err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}
	// The in-flight job finished; the queued one was canceled retriably.
	m, err := c.Stream(ctx, running.JobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != serve.StatusDone {
		t.Errorf("in-flight job = %+v, want done", m)
	}
	m, err = c.Stream(ctx, queued.JobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != serve.StatusCanceled || !m.Retriable {
		t.Errorf("queued job = %+v, want retriable canceled", m)
	}
	if !strings.Contains(m.Error, "resubmit") {
		t.Errorf("queued-job error does not tell the client to resubmit: %q", m.Error)
	}
	cs := s.Counters()
	if cs.Completed != 1 || cs.Canceled != 1 || cs.Inflight != 0 || cs.Queued != 0 {
		t.Errorf("post-drain counters = %+v", cs)
	}
}

// TestShutdownGraceExpiryCancelsInflight: when the grace period
// expires, in-flight simulations are canceled at the next instruction
// chunk, booked as retriable canceled, and Shutdown reports the
// expiry — but still returns with every job terminal.
func TestShutdownGraceExpiryCancelsInflight(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1})
	hs := httptest.NewServer(s)
	defer hs.Close()
	c := serve.NewClient(hs.URL, 1)
	ctx := context.Background()

	long := tinyFig14()
	long.Meta.MeasureInstructions = 2_000_000_000 // minutes of work
	long.Meta.Benchmarks = long.Meta.Benchmarks[:1]
	st, err := c.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	waitInflight(t, s, 1)

	sctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.Shutdown(sctx)
	if err == nil {
		t.Fatal("shutdown reported a clean drain despite expiring grace")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("shutdown took %v after grace expiry; cancellation is not reaching the simulation", elapsed)
	}
	m, serr := c.Stream(ctx, st.JobID, nil)
	if serr != nil {
		t.Fatal(serr)
	}
	if m.Status != serve.StatusCanceled || !m.Retriable {
		t.Errorf("grace-expired job = %+v, want retriable canceled", m)
	}
	// Idempotency: a second Shutdown (second SIGTERM) returns the same
	// result without panicking or re-draining.
	if err2 := s.Shutdown(context.Background()); err2 == nil || err2.Error() != err.Error() {
		t.Errorf("second Shutdown = %v, want first result %v", err2, err)
	}
}
