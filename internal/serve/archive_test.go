package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/serve"
	"repro/internal/store"
)

// openArchive opens a run-history archive rooted in a test tempdir.
func openArchive(t *testing.T, dir string) *store.Archive {
	t.Helper()
	a, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestArchiveDedupsAndCacheServesByteIdentical is the tentpole's
// end-to-end contract: running the same spec twice against an archive
// yields one store record; a second server generation with -cache
// serves the archived report byte-identically without simulating,
// books the job to the conserved `cached` lane, and preserves the
// stream framing (exactly one manifest, now carrying spec_hash and
// cached).
func TestArchiveDedupsAndCacheServesByteIdentical(t *testing.T) {
	dir := t.TempDir()

	// Generation 1: archive only.
	s1, c1 := newTestServer(t, serve.Config{
		Workers: 2, Archive: openArchive(t, dir), GitDescribe: "gen1",
	})
	res1, err := c1.RunJob(context.Background(), tinyFig14())
	if err != nil {
		t.Fatal(err)
	}
	if res1.Manifest.SpecHash == "" {
		t.Error("manifest lacks spec_hash")
	}
	if res1.Manifest.Cached {
		t.Error("first run claims to be cached")
	}
	res1b, err := c1.RunJob(context.Background(), tinyFig14())
	if err != nil {
		t.Fatal(err)
	}
	if res1b.Manifest.SpecHash != res1.Manifest.SpecHash {
		t.Errorf("same spec hashed differently: %s vs %s",
			res1b.Manifest.SpecHash, res1.Manifest.SpecHash)
	}
	// Deterministic simulation + same tree: the rerun deduped.
	if cs := s1.Counters(); cs.Completed != 2 || cs.Cached != 0 {
		t.Errorf("gen1 counters: %+v", cs)
	}

	// Generation 2: fresh server, same archive, cache on.
	fresh := openArchive(t, dir)
	if n := fresh.Len(); n != 1 {
		t.Fatalf("archive has %d records after two identical runs, want 1", n)
	}
	s2, c2 := newTestServer(t, serve.Config{
		Workers: 2, Archive: fresh, Cache: true, GitDescribe: "gen2",
	})
	res2, err := c2.RunJob(context.Background(), tinyFig14())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Manifest.Cached {
		t.Fatal("cache-eligible job was not served from the archive")
	}
	if res2.Manifest.Status != serve.StatusDone {
		t.Errorf("cached job status = %q", res2.Manifest.Status)
	}
	if !bytes.Equal(res2.Report, res1.Report) {
		t.Error("cached report is not byte-identical to the archived run's report")
	}
	if res2.Manifest.Rows == 0 || res2.Manifest.Rows != res1.Manifest.Rows {
		t.Errorf("cached manifest rows = %d, original %d", res2.Manifest.Rows, res1.Manifest.Rows)
	}

	// A different spec misses the cache and simulates.
	other := tinyFig14()
	other.Meta.MeasureInstructions = 120_000
	res3, err := c2.RunJob(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Manifest.Cached {
		t.Error("different spec hit the cache")
	}
	if res3.Manifest.SpecHash == res2.Manifest.SpecHash {
		t.Error("different windows share a spec hash")
	}

	// Conservation with the cached lane: submitted partitions exactly.
	cs := s2.Counters()
	if cs.Cached != 1 || cs.Completed != 1 {
		t.Errorf("gen2 counters: %+v", cs)
	}
	total := cs.Completed + cs.Failed + cs.Canceled + cs.Cached +
		uint64(cs.Queued) + uint64(cs.Inflight)
	if cs.Submitted != total {
		t.Errorf("conservation violated: submitted=%d partition=%d (%+v)", cs.Submitted, total, cs)
	}
	// The miss was archived: the store now tracks both specs.
	if n := fresh.Len(); n != 2 {
		t.Errorf("archive has %d records, want 2", n)
	}
}

// TestHistoryEndpoint: /v1/history/{experiment} serves the archived
// trajectory; without -archive it 404s; unknown experiments 404.
func TestHistoryEndpoint(t *testing.T) {
	dir := t.TempDir()
	_, c := newTestServer(t, serve.Config{
		Workers: 2, Archive: openArchive(t, dir), GitDescribe: "t",
	})
	if _, err := c.RunJob(context.Background(), tinyFig14()); err != nil {
		t.Fatal(err)
	}

	get := func(url string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, body := get(c.BaseURL + "/v1/history/fig14")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("history: HTTP %d: %s", resp.StatusCode, body)
	}
	var hist store.History
	if err := json.Unmarshal(body, &hist); err != nil {
		t.Fatalf("history does not decode: %v", err)
	}
	if hist.Experiment != "fig14" || len(hist.Points) != 1 {
		t.Fatalf("history = experiment %q, %d points", hist.Experiment, len(hist.Points))
	}
	if len(hist.Points[0].Metrics) == 0 || hist.Points[0].SpecHash == "" {
		t.Errorf("history point lacks metrics or spec hash: %+v", hist.Points[0])
	}
	if len(hist.Rollups) == 0 {
		t.Error("history lacks rollups")
	}

	if resp, _ := get(c.BaseURL + "/v1/history/not-an-experiment"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment: HTTP %d, want 404", resp.StatusCode)
	}

	// A valid experiment with no archived runs is an empty 200.
	if resp, body := get(c.BaseURL + "/v1/history/table1"); resp.StatusCode != http.StatusOK {
		t.Errorf("empty history: HTTP %d: %s", resp.StatusCode, body)
	}

	// No archive configured: the route is absent functionality, 404.
	_, noArch := newTestServer(t, serve.Config{})
	if resp, _ := get(noArch.BaseURL + "/v1/history/fig14"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("no archive: HTTP %d, want 404", resp.StatusCode)
	}
}
