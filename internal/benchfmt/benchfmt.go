// Package benchfmt defines the versioned BENCH_*.json envelope that
// cmd/skiabench writes: the repo's performance trajectory format.
// It lives here (rather than inside the command) so internal/store can
// archive bench envelopes and cmd/skiaboard can chart the trajectory
// without importing a main package.
package benchfmt

import (
	"encoding/json"
	"fmt"
)

// SchemaVersion identifies the BENCH_*.json envelope format.
const SchemaVersion = 1

// Entry is one benchmark's measured cost.
type Entry struct {
	Name string `json:"name"`
	// Iterations is testing.B's chosen N (1 for experiment entries).
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per operation. For hot-loop benchmarks an
	// operation is 1000 simulated instructions; for experiment entries
	// it is the whole experiment.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp come from testing.B's allocation
	// counters (absent for experiment entries).
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Metrics carries benchmark-specific extras: "minsts_per_s" for
	// hot loops (simulated Minstructions per wall second), "sim_mips"
	// for experiment entries (the runner's aggregate throughput).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Envelope is the BENCH_*.json file layout.
type Envelope struct {
	SchemaVersion int     `json:"schema_version"`
	GeneratedAt   string  `json:"generated_at"`
	GitDescribe   string  `json:"git_describe,omitempty"`
	GoVersion     string  `json:"go_version"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	NumCPU        int     `json:"num_cpu"`
	Entries       []Entry `json:"entries"`
}

// Decode parses one BENCH_*.json envelope, rejecting schema versions
// newer than this build.
func Decode(data []byte) (*Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, err
	}
	if env.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("benchfmt: envelope schema v%d is newer than this build (v%d)",
			env.SchemaVersion, SchemaVersion)
	}
	return &env, nil
}
