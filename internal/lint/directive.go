package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// DirectiveAnalyzer validates the //skia: directive grammar itself: a
// misspelled directive (`//skia:sharedok`) silently suppresses nothing
// while its author believes the exception is recorded, and a bare
// `-ok` directive with no justification defeats the point of requiring
// one. Suppressions are part of the audited invariant surface, so the
// grammar is checked as strictly as the invariants.
//
// The grammar (also tabulated in the README):
//
//	//skia:noalloc                      marker, no argument
//	//skia:serial                       marker, no argument
//	//skia:detmap-ok <justification>    suppression, justification required
//	//skia:nondet-ok <justification>    suppression, justification required
//	//skia:statlock-ok <justification>  suppression, justification required
//	//skia:shared-ok <justification>    suppression, justification required
//	//skia:ctxwait-ok <justification>   suppression, justification required
//	//skia:atomicmix-ok <justification> suppression, justification required
//	//skia:hookpure-ok <justification>  suppression, justification required
//
// Only comments beginning exactly `//skia:` (no space, the Go
// directive convention) are directives; prose mentioning a directive
// is untouched.
var DirectiveAnalyzer = &Analyzer{
	Name: "directive",
	Doc:  "validates //skia: directive spelling and required justifications",
	Run:  runDirective,
}

// skiaDirectives maps each known directive name to whether it requires
// a justification argument.
var skiaDirectives = map[string]bool{
	"noalloc":      false,
	"serial":       false,
	"detmap-ok":    true,
	"nondet-ok":    true,
	"statlock-ok":  true,
	"shared-ok":    true,
	"ctxwait-ok":   true,
	"atomicmix-ok": true,
	"hookpure-ok":  true,
}

func runDirective(pass *Pass) error {
	files := append(append([]*ast.File{}, pass.Pkg.Files...), pass.Pkg.TestFiles...)
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//skia:")
				if !ok {
					continue
				}
				name, arg, _ := strings.Cut(rest, " ")
				needsArg, known := skiaDirectives[name]
				if !known {
					pass.Reportf(c.Pos(), "unknown directive //skia:%s: it suppresses nothing; known directives are %s", name, knownDirectiveList())
					continue
				}
				if needsArg && strings.TrimSpace(arg) == "" {
					pass.Reportf(c.Pos(), "directive //skia:%s requires a justification: suppressions are audited, say why the exception is sound", name)
				}
			}
		}
	}
	return nil
}

// knownDirectiveList renders the valid names, sorted, for diagnostics.
func knownDirectiveList() string {
	names := make([]string, 0, len(skiaDirectives))
	for n := range skiaDirectives {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic: the suite's own detmap discipline
	return strings.Join(names, ", ")
}
