package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NonDetAnalyzer forbids ambient nondeterminism sources inside
// simulation packages: wall-clock reads (time.Now/Since/Until) and the
// global math/rand generator (any package-level function other than
// the explicit constructors rand.New / rand.NewSource). Simulated
// behavior must be a pure function of the workload seed; workloads
// thread a seeded *rand.Rand instead.
//
// Allowlisted packages (throughput observability, the HTTP service
// layer, and CLI envelopes): internal/metrics, internal/serve, cmd/*,
// examples/*. internal/serve schedules and times jobs around the
// simulator — wall-clock is its job — and nothing it computes feeds
// back into simulated state, which still runs under the annotated
// sim/experiments packages. Inside simulation packages, a wall-clock
// read that feeds only run timing can be annotated with
// `//skia:nondet-ok <justification>` on the line above.
var NonDetAnalyzer = &Analyzer{
	Name:      "nondet",
	Doc:       "forbids wall-clock and global-RNG use in simulation packages",
	Directive: "//skia:nondet-ok",
	Exclude:   nonDetExcluded,
	Run:       runNonDet,
}

func nonDetExcluded(path string) bool {
	const mod = "repro"
	return path == mod+"/internal/metrics" ||
		strings.HasPrefix(path, mod+"/internal/metrics/") ||
		path == mod+"/internal/serve" ||
		strings.HasPrefix(path, mod+"/internal/serve/") ||
		strings.HasPrefix(path, mod+"/cmd/") ||
		strings.HasPrefix(path, mod+"/examples/")
}

// nonDetTimeFuncs are the wall-clock reads. time.Since/Until read the
// clock internally.
var nonDetTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// nonDetRandOK are the math/rand package-level names that construct
// explicitly seeded state instead of touching the global generator.
var nonDetRandOK = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runNonDet(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if nonDetTimeFuncs[sel.Sel.Name] && isFuncUse(info, sel) {
					if !lineDirective(pass.Pkg, file, sel.Pos(), "//skia:nondet-ok") {
						pass.Reportf(sel.Pos(), "wall-clock read time.%s in simulation package %s: simulated state must be deterministic; thread cycle counts instead, or annotate //skia:nondet-ok if this feeds only run timing", sel.Sel.Name, pass.Pkg.Path)
					}
				}
			case "math/rand", "math/rand/v2":
				if isFuncUse(info, sel) && !nonDetRandOK[sel.Sel.Name] {
					if !lineDirective(pass.Pkg, file, sel.Pos(), "//skia:nondet-ok") {
						pass.Reportf(sel.Pos(), "global RNG rand.%s in simulation package %s: thread a seeded *rand.Rand (rand.New(rand.NewSource(seed))) through the workload instead", sel.Sel.Name, pass.Pkg.Path)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isFuncUse reports whether the selector resolves to a function (not a
// type or constant of the package).
func isFuncUse(info *types.Info, sel *ast.SelectorExpr) bool {
	_, ok := info.Uses[sel.Sel].(*types.Func)
	return ok
}
