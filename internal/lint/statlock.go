package lint

import (
	"go/ast"
	"go/types"
)

// StatLockAnalyzer enforces the `//skia:serial` directive: a struct so
// annotated is documented single-goroutine (the per-core metrics
// collector, the attribution engine) and values of that type must not
// leak into concurrently running code. Two patterns are flagged:
//
//   - a `go func() { ... }()` literal that captures a serial-typed
//     variable from the enclosing scope, unless the literal body
//     visibly acquires a lock (calls a method named Lock/RLock);
//   - a `go f(x)` launch that passes a serial-typed value as an
//     argument (the callee's body is out of view, so locking cannot be
//     verified).
//
// A launch that is known-safe (e.g. the goroutine owns the value
// exclusively) can be annotated `//skia:statlock-ok <justification>`
// on the line above the go statement.
var StatLockAnalyzer = &Analyzer{
	Name:      "statlock",
	Doc:       "forbids handing //skia:serial (single-goroutine) values to goroutines without a lock",
	Directive: "//skia:statlock-ok",
	Run:       runStatLock,
}

func runStatLock(pass *Pass) error {
	serial := serialTypes(pass.Pkg)
	// Serial types imported from other module packages count too: walk
	// the whole program's packages for annotations.
	for _, pkg := range pass.Prog.Packages {
		if pkg != pass.Pkg {
			for tn := range serialTypes(pkg) {
				serial[tn] = true
			}
		}
	}
	if len(serial) == 0 {
		return nil
	}

	isSerial := func(t types.Type) bool {
		if named := namedOf(t); named != nil {
			return serial[named.Obj()]
		}
		return false
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lineDirective(pass.Pkg, file, g.Pos(), "//skia:statlock-ok") {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				checkGoLiteral(pass, g, lit, isSerial)
			} else {
				for _, arg := range g.Call.Args {
					tv, ok := pass.Pkg.Info.Types[arg]
					if ok && isSerial(tv.Type) {
						pass.Reportf(g.Pos(), "go statement passes //skia:serial value of type %s to a goroutine: serial collectors are single-goroutine by contract; guard with a mutex or annotate //skia:statlock-ok", typeName(tv.Type))
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkGoLiteral flags serial-typed captures inside a `go func(){...}()`
// literal body that does not visibly lock.
func checkGoLiteral(pass *Pass, g *ast.GoStmt, lit *ast.FuncLit, isSerial func(types.Type) bool) {
	if locksInside(pass.Pkg.Info, lit) {
		return
	}
	info := pass.Pkg.Info
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || reported[obj] {
			return true
		}
		// Captured = declared outside the literal.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		if isSerial(obj.Type()) {
			reported[obj] = true
			pass.Reportf(id.Pos(), "goroutine captures //skia:serial value %s (type %s) without a lock: serial collectors are single-goroutine by contract; guard with a mutex or annotate //skia:statlock-ok on the go statement", obj.Name(), typeName(obj.Type()))
		}
		return true
	})
	// Arguments to the immediate call also escape into the goroutine.
	for _, arg := range g.Call.Args {
		tv, ok := info.Types[arg]
		if ok && isSerial(tv.Type) {
			pass.Reportf(arg.Pos(), "goroutine receives //skia:serial value of type %s as an argument without a lock", typeName(tv.Type))
		}
	}
}

// locksInside reports whether the func literal's body calls a method
// named Lock or RLock — the visible-synchronization escape hatch.
func locksInside(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
			}
		}
		return true
	})
	return found
}

// serialTypes collects the package's struct types annotated
// //skia:serial (directive in the type's doc comment).
func serialTypes(pkg *Package) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if !hasDirective(doc, "//skia:serial") {
					continue
				}
				if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					out[tn] = true
				}
			}
		}
	}
	return out
}

// typeName renders a type for diagnostics, preferring the named form.
func typeName(t types.Type) string {
	if named := namedOf(t); named != nil {
		return named.Obj().Name()
	}
	return t.String()
}
