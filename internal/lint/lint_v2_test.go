package lint

import (
	"path/filepath"
	"testing"
)

func TestCloneCompleteFixtures(t *testing.T) {
	runFixture(t, CloneCompleteAnalyzer, "clonecomplete/bad")
	runFixture(t, CloneCompleteAnalyzer, "clonecomplete/good")
}

func TestCtxWaitFixtures(t *testing.T) {
	runFixture(t, CtxWaitAnalyzer, "ctxwait/bad")
	runFixture(t, CtxWaitAnalyzer, "ctxwait/good")
}

func TestAtomicMixFixtures(t *testing.T) {
	runFixture(t, AtomicMixAnalyzer, "atomicmix/bad")
	runFixture(t, AtomicMixAnalyzer, "atomicmix/good")
}

func TestHookPureFixtures(t *testing.T) {
	runFixture(t, HookPureAnalyzer, "hookpure/bad")
	runFixture(t, HookPureAnalyzer, "hookpure/good")
}

func TestDirectiveFixtures(t *testing.T) {
	runFixture(t, DirectiveAnalyzer, "directive/bad")
	runFixture(t, DirectiveAnalyzer, "directive/good")
}

// TestCloneCompleteCoversCheckpointTypes is the fixture-backed
// self-test the acceptance criteria name: it proves clonecomplete
// really analyzed the two types whose Clone methods anchor the
// sampling era's checkpoints — frontend.FrontEnd and cpu.Core — and
// found them complete. Deleting any field-copy line from either Clone
// (or any component Clone they delegate to) flips the published fact
// or produces a diagnostic, failing this test; so does a refactor
// that renames the types out from under the analyzer.
func TestCloneCompleteCoversCheckpointTypes(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(prog, []*Analyzer{CloneCompleteAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("clonecomplete finding in the module tree: %s", d)
	}
	for _, want := range []struct{ pkg, typ string }{
		{"repro/internal/frontend", "FrontEnd"},
		{"repro/internal/cpu", "Core"},
		{"repro/internal/emu", "Emulator"},
		{"repro/internal/core", "SBD"},
		{"repro/internal/core", "SBB"},
		{"repro/internal/core", "DecodeCache"},
		{"repro/internal/btb", "BTB"},
		{"repro/internal/tage", "Predictor"},
		{"repro/internal/ittage", "Predictor"},
		{"repro/internal/ras", "Stack"},
		{"repro/internal/cache", "Cache"},
	} {
		pkg := prog.ByPath(want.pkg)
		if pkg == nil {
			t.Errorf("package %s not loaded", want.pkg)
			continue
		}
		obj := pkg.Types.Scope().Lookup(want.typ)
		if obj == nil {
			t.Errorf("%s.%s: type not found", want.pkg, want.typ)
			continue
		}
		if !prog.Facts().Bool(obj, "clonecomplete.checked") {
			t.Errorf("%s.%s: clonecomplete never analyzed its Clone method", want.pkg, want.typ)
		}
		if !prog.Facts().Bool(obj, "clonecomplete.complete") {
			t.Errorf("%s.%s: Clone field coverage is incomplete", want.pkg, want.typ)
		}
	}
}

// TestCallGraphResolvesAcrossPackages pins the loader upgrade the v2
// analyzers build on: a cross-package method call resolves to a
// declaration the program can open.
func TestCallGraphResolvesAcrossPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	cpuPkg := prog.ByPath("repro/internal/cpu")
	if cpuPkg == nil {
		t.Fatal("repro/internal/cpu not loaded")
	}
	// cpu.Core.Clone calls frontend.FrontEnd.Clone across the package
	// boundary; the callee's declaration must be reachable.
	found := false
	for fn, site := range prog.declIndex() {
		if fn.Name() != "Clone" || site.Pkg != cpuPkg {
			continue
		}
		for _, callee := range prog.Callees(cpuPkg, site.Decl.Body) {
			if ds, ok := prog.DeclOf(callee); ok && ds.Pkg.Path == "repro/internal/frontend" && callee.Name() == "Clone" {
				found = true
			}
		}
	}
	if !found {
		t.Error("Core.Clone -> FrontEnd.Clone edge not resolved by the call graph")
	}
}
