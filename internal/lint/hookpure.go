package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HookPureAnalyzer polices the observability-hook contract every layer
// of the simulator relies on (tracers, attribution, progress, eviction
// observers): hooks are optional, so every invocation of an `On*`
// func-typed field must be nil-checked — a disabled hook costs one
// comparison, never a panic — and hook bodies must stay pure with
// respect to simulated state: a hook that mutates state feeding
// results makes output depend on whether observability is attached,
// which breaks the bit-identical-with-and-without-tracing guarantee
// the overhead benchmarks and sampled/exact comparisons rest on.
//
// Concretely:
//
//   - a call through a func field named On* must be guarded by an
//     enclosing `if x.OnFoo != nil` (or follow an
//     `if x.OnFoo == nil { return }` early-out) on the same receiver
//     chain;
//   - a func literal assigned to an On* field (or given as an On*
//     composite-literal key) must not assign to variables or fields
//     captured from outside the literal — observation is calls out
//     (tracer emissions, atomic counters), never writes back in.
//     Method-value registrations (x.OnRemove = n.pruneShadowOff) are
//     component wiring, not observers, and are exempt.
//
// Deliberate exceptions carry `//skia:hookpure-ok <justification>` on
// the offending line.
var HookPureAnalyzer = &Analyzer{
	Name:      "hookpure",
	Doc:       "requires On* hook calls to be nil-checked and hook literals to not mutate captured state",
	Directive: "//skia:hookpure-ok",
	Run:       runHookPure,
}

func runHookPure(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w := &hookWalker{pass: pass, file: file}
				w.stmts(fd.Body.List, nil)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			checkHookRegistration(pass, file, n)
			return true
		})
	}
	return nil
}

// guardKey identifies one hook expression: the field and the object the
// selector chain is rooted at, so `a.OnFoo != nil` does not vouch for
// `b.OnFoo()`.
type guardKey struct {
	root  types.Object
	field types.Object
}

// hookWalker carries nil-guard context down the statement tree.
type hookWalker struct {
	pass *Pass
	file *ast.File
}

// stmts checks a statement list under the given guards, threading
// early-out guards (`if x.On == nil { return }`) into the tail.
func (w *hookWalker) stmts(list []ast.Stmt, guards map[guardKey]bool) {
	for i, stmt := range list {
		ifs, ok := stmt.(*ast.IfStmt)
		if ok && ifs.Init == nil {
			if keys := nilGuards(w.pass.Pkg.Info, ifs.Cond, token.EQL); len(keys) > 0 && terminates(ifs.Body) && ifs.Else == nil {
				// if x.On == nil { return }: the rest of the list runs
				// with the hook known non-nil.
				w.exprs(ifs.Cond, guards)
				w.stmts(ifs.Body.List, guards)
				w.stmts(list[i+1:], withGuards(guards, keys))
				return
			}
		}
		w.stmt(stmt, guards)
	}
}

// stmt dispatches one statement, extending guards through if-chains.
func (w *hookWalker) stmt(stmt ast.Stmt, guards map[guardKey]bool) {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, guards)
		}
		w.exprs(s.Cond, guards)
		pos := nilGuards(w.pass.Pkg.Info, s.Cond, token.NEQ)
		neg := nilGuards(w.pass.Pkg.Info, s.Cond, token.EQL)
		w.stmts(s.Body.List, withGuards(guards, pos))
		if s.Else != nil {
			w.stmt(s.Else, withGuards(guards, neg))
		}
	case *ast.BlockStmt:
		w.stmts(s.List, guards)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, guards)
		}
		if s.Cond != nil {
			w.exprs(s.Cond, guards)
		}
		if s.Post != nil {
			w.stmt(s.Post, guards)
		}
		w.stmts(s.Body.List, guards)
	case *ast.RangeStmt:
		w.exprs(s.X, guards)
		w.stmts(s.Body.List, guards)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, guards)
		}
		if s.Tag != nil {
			w.exprs(s.Tag, guards)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.exprs(e, guards)
				}
				w.stmts(cc.Body, guards)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, guards)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, guards)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm, guards)
				}
				w.stmts(cc.Body, guards)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, guards)
	case *ast.ExprStmt:
		w.exprs(s.X, guards)
	case *ast.AssignStmt:
		for _, e := range s.Lhs {
			w.exprs(e, guards)
		}
		for _, e := range s.Rhs {
			w.exprs(e, guards)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.exprs(e, guards)
		}
	case *ast.GoStmt:
		w.exprs(s.Call, guards)
	case *ast.DeferStmt:
		w.exprs(s.Call, guards)
	case *ast.SendStmt:
		w.exprs(s.Chan, guards)
		w.exprs(s.Value, guards)
	case *ast.IncDecStmt:
		w.exprs(s.X, guards)
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.exprs(e, guards)
				return false
			}
			return true
		})
	}
}

// exprs checks hook-field calls inside an expression tree, descending
// into func literals with the current guards (a guarded defer/closure
// registration is the established idiom).
func (w *hookWalker) exprs(expr ast.Expr, guards map[guardKey]bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			w.stmts(node.Body.List, guards)
			return false
		case *ast.CallExpr:
			key, ok := hookCallKey(w.pass.Pkg.Info, node)
			if !ok || guards[key] {
				return true
			}
			if lineDirective(w.pass.Pkg, w.file, node.Pos(), "//skia:hookpure-ok") {
				return true
			}
			w.pass.Reportf(node.Pos(), "call to hook %s without a nil check: hooks are optional; guard with `if %s != nil`, or annotate //skia:hookpure-ok with a justification", hookName(node.Fun), hookName(node.Fun))
		}
		return true
	})
}

// hookCallKey resolves a call through an On*-named func-typed struct
// field to its guard key.
func hookCallKey(info *types.Info, call *ast.CallExpr) (guardKey, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return guardKey{}, false
	}
	return hookSelKey(info, sel)
}

// hookSelKey resolves a selector expression to an On* func-field guard
// key (field object + chain root object).
func hookSelKey(info *types.Info, sel *ast.SelectorExpr) (guardKey, bool) {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return guardKey{}, false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || len(v.Name()) < 3 || v.Name()[:2] != "On" || v.Name()[2] < 'A' || v.Name()[2] > 'Z' {
		return guardKey{}, false
	}
	if _, isFunc := v.Type().Underlying().(*types.Signature); !isFunc {
		return guardKey{}, false
	}
	return guardKey{root: rootObject(info, sel.X), field: v}, true
}

// nilGuards extracts the hook keys a condition compares against nil
// with op, following && conjunctions (for NEQ: `a != nil && b != nil`
// guards both; for EQL: `a == nil || b == nil` with early return
// guards both, so || is followed for EQL).
func nilGuards(info *types.Info, cond ast.Expr, op token.Token) []guardKey {
	var keys []guardKey
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		b, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			return
		}
		join := token.LAND
		if op == token.EQL {
			join = token.LOR
		}
		if b.Op == join {
			walk(b.X)
			walk(b.Y)
			return
		}
		if b.Op != op {
			return
		}
		operand := b.X
		if isNilIdent(info, operand) {
			operand = b.Y
		} else if !isNilIdent(info, b.Y) {
			return
		}
		if sel, ok := ast.Unparen(operand).(*ast.SelectorExpr); ok {
			if key, ok := hookSelKey(info, sel); ok {
				keys = append(keys, key)
			}
		}
	}
	walk(cond)
	return keys
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// withGuards returns guards extended by keys (copy-on-extend).
func withGuards(guards map[guardKey]bool, keys []guardKey) map[guardKey]bool {
	if len(keys) == 0 {
		return guards
	}
	out := make(map[guardKey]bool, len(guards)+len(keys))
	for k := range guards {
		out[k] = true
	}
	for _, k := range keys {
		out[k] = true
	}
	return out
}

// terminates reports whether a block's last statement leaves the
// enclosing statement list (return/break/continue/goto/panic).
func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// checkHookRegistration flags func literals registered as On* hooks
// that write captured state: `x.OnFoo = func(...) { captured++ }` and
// the composite-literal form `T{OnFoo: func(...) { ... }}`.
func checkHookRegistration(pass *Pass, file *ast.File, n ast.Node) {
	info := pass.Pkg.Info
	switch node := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range node.Lhs {
			if i >= len(node.Rhs) {
				break
			}
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if _, isHook := hookSelKey(info, sel); !isHook {
				continue
			}
			if lit, ok := ast.Unparen(node.Rhs[i]).(*ast.FuncLit); ok {
				checkHookBody(pass, file, sel.Sel.Name, lit)
			}
		}
	case *ast.CompositeLit:
		for _, elt := range node.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || len(key.Name) < 3 || key.Name[:2] != "On" {
				continue
			}
			fieldObj, _ := info.Uses[key].(*types.Var)
			if fieldObj == nil {
				continue
			}
			if _, isFunc := fieldObj.Type().Underlying().(*types.Signature); !isFunc {
				continue
			}
			if lit, ok := ast.Unparen(kv.Value).(*ast.FuncLit); ok {
				checkHookBody(pass, file, key.Name, lit)
			}
		}
	}
}

// checkHookBody flags writes to captured state inside a hook literal.
func checkHookBody(pass *Pass, file *ast.File, hook string, lit *ast.FuncLit) {
	info := pass.Pkg.Info
	captured := func(e ast.Expr) types.Object {
		obj := rootObject(info, e)
		if obj == nil || obj.Pos() == token.NoPos {
			return nil
		}
		if lit.Pos() <= obj.Pos() && obj.Pos() <= lit.End() {
			return nil // hook-local
		}
		return obj
	}
	report := func(s ast.Stmt, obj types.Object) {
		if !lineDirective(pass.Pkg, file, s.Pos(), "//skia:hookpure-ok") {
			pass.Reportf(s.Pos(), "hook %s mutates captured %s: hook bodies must not write simulator state (results must not depend on observers being attached); annotate //skia:hookpure-ok if the target provably never feeds results", hook, obj.Name())
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				if obj := captured(lhs); obj != nil {
					report(s, obj)
					break
				}
			}
		case *ast.IncDecStmt:
			if obj := captured(s.X); obj != nil {
				report(s, obj)
			}
		}
		return true
	})
}

// hookName renders a hook call target for diagnostics.
func hookName(fun ast.Expr) string {
	if sel, ok := ast.Unparen(fun).(*ast.SelectorExpr); ok {
		return describeLHS(sel)
	}
	return "hook"
}
