package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxWaitAnalyzer enforces the goroutine/context discipline the service
// and sampling layers rely on: in `internal/serve` and `internal/sim`,
// every spawned goroutine must observe cancellation, and every channel
// send must be cancellable. A goroutine that blocks forever after its
// context is cancelled leaks a worker per abandoned job; a bare send
// on a bounded queue deadlocks the whole pool when the consumer has
// already exited.
//
// "Observes cancellation" is established by any of:
//
//   - receiving from a `chan struct{}` — which covers both
//     `<-ctx.Done()` and the stop-channel idiom,
//   - calling `ctx.Err()` in a checked loop,
//   - passing a context.Context argument into a call (delegation:
//     the callee owns the discipline), or
//   - calling a module function that itself observes cancellation,
//     followed to a fixpoint through the whole-program call graph —
//     so `go s.worker(sh)` is proven by worker's select, and
//     `go func() { r.runContext(ctx, ...) }()` by runContext's
//     chunked ctx checks, across package boundaries.
//
// A send is cancellable when it is a select case alongside a default
// or a cancellation receive. Bare sends and goroutines the analyzer
// cannot prove need `//skia:ctxwait-ok <justification>` on the line —
// reserved for sends whose receiver provably outlives the sender.
var CtxWaitAnalyzer = &Analyzer{
	Name:      "ctxwait",
	Doc:       "requires goroutines in serve/sim to observe cancellation and channel sends to be cancellable",
	Directive: "//skia:ctxwait-ok",
	Exclude: func(pkgPath string) bool {
		if strings.Contains(pkgPath, "/testdata/") {
			return false
		}
		return !strings.HasSuffix(pkgPath, "/serve") && !strings.HasSuffix(pkgPath, "/sim")
	},
	RunProgram: runCtxWait,
}

func runCtxWait(pass *ProgramPass) error {
	obs := observesCancellation(pass.Prog)
	for _, pkg := range pass.Packages {
		for _, file := range pkg.Files {
			checkCtxWaitFile(pass, pkg, file, obs)
		}
	}
	return nil
}

func checkCtxWaitFile(pass *ProgramPass, pkg *Package, file *ast.File, obs map[*types.Func]bool) {
	// Select-comm sends are judged with their select statement; record
	// them so the generic SendStmt walk skips them.
	inSelect := make(map[*ast.SendStmt]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.GoStmt:
			if lineDirective(pkg, file, node.Pos(), "//skia:ctxwait-ok") {
				return true
			}
			if !goroutineObserves(pkg, node.Call, obs) {
				pass.Reportf(node.Pos(), "goroutine does not observe cancellation: select on ctx.Done()/a stop channel (or delegate to a function that does), or annotate //skia:ctxwait-ok with a justification")
			}
		case *ast.SelectStmt:
			judgeSelectSends(pass, pkg, file, node, inSelect)
		case *ast.SendStmt:
			if inSelect[node] {
				return true
			}
			if lineDirective(pkg, file, node.Pos(), "//skia:ctxwait-ok") {
				return true
			}
			pass.Reportf(node.Pos(), "bare channel send can block forever after cancellation: wrap in a select with a ctx.Done()/stop case or a default, or annotate //skia:ctxwait-ok with a justification")
		}
		return true
	})
}

// judgeSelectSends checks each send case of a select: fine when the
// select also has a default or a cancellation receive, flagged
// otherwise (a select whose only comm is a send is just a bare send).
func judgeSelectSends(pass *ProgramPass, pkg *Package, file *ast.File, sel *ast.SelectStmt, inSelect map[*ast.SendStmt]bool) {
	cancellable := false
	var sends []*ast.SendStmt
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		switch c := comm.Comm.(type) {
		case nil: // default clause
			cancellable = true
		case *ast.SendStmt:
			sends = append(sends, c)
			inSelect[c] = true
		case *ast.ExprStmt, *ast.AssignStmt:
			cancellable = true // a receive case unblocks the send
		}
	}
	if cancellable {
		return
	}
	for _, s := range sends {
		if lineDirective(pkg, file, s.Pos(), "//skia:ctxwait-ok") {
			continue
		}
		pass.Reportf(s.Pos(), "select send has no default or receive case to unblock it after cancellation: add a ctx.Done()/stop case, or annotate //skia:ctxwait-ok with a justification")
	}
}

// goroutineObserves decides the spawned call: a func literal is judged
// by its own body; a resolvable callee by the whole-program fixpoint.
// Unresolvable spawns (interface methods, function values) cannot be
// proven and are reported.
func goroutineObserves(pkg *Package, call *ast.CallExpr, obs map[*types.Func]bool) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return bodyObserves(pkg, lit.Body, obs)
	}
	if fn := CalleeOf(pkg.Info, call); fn != nil {
		return obs[fn]
	}
	return false
}

// observesCancellation computes, for every function declared in the
// module, whether its body observes cancellation — directly or through
// any module callee (fixpoint over the call graph).
func observesCancellation(prog *Program) map[*types.Func]bool {
	obs := make(map[*types.Func]bool)
	type site struct {
		pkg  *Package
		body *ast.BlockStmt
	}
	sites := make(map[*types.Func]site)
	for fn, ds := range prog.declIndex() {
		if ds.Decl.Body == nil {
			continue
		}
		sites[fn] = site{ds.Pkg, ds.Decl.Body}
		if directCancellation(ds.Pkg, ds.Decl.Body) {
			obs[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		//skia:detmap-ok monotone boolean fixpoint: obs only ever flips false->true, so the converged map is iteration-order independent
		for fn, s := range sites {
			if obs[fn] {
				continue
			}
			for _, callee := range prog.Callees(s.pkg, s.body) {
				if obs[callee] {
					obs[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return obs
}

// bodyObserves judges an inline body (a goroutine's func literal):
// direct evidence, or a call into an observing module function.
func bodyObserves(pkg *Package, body *ast.BlockStmt, obs map[*types.Func]bool) bool {
	if directCancellation(pkg, body) {
		return true
	}
	for _, callee := range pkg.Prog.Callees(pkg, body) {
		if obs[callee] {
			return true
		}
	}
	return false
}

// directCancellation scans a body for first-hand evidence: a receive
// from (or range over) a struct{} channel, a ctx.Err() poll, or a
// context.Context handed to a callee.
func directCancellation(pkg *Package, body ast.Node) bool {
	info := pkg.Info
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" && isSignalChan(info, node.X) {
				found = true
			}
		case *ast.RangeStmt:
			if isSignalChan(info, node.X) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Err" && isContext(exprType(info, sel.X)) {
				found = true
				return false
			}
			for _, arg := range node.Args {
				if isContext(exprType(info, arg)) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isSignalChan reports whether expr is a channel of struct{} — the
// shape of both ctx.Done() and stop channels.
func isSignalChan(info *types.Info, expr ast.Expr) bool {
	ch, ok := exprType(info, expr).Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// exprType returns the static type of expr (Invalid when unknown).
func exprType(info *types.Info, expr ast.Expr) types.Type {
	if tv, ok := info.Types[expr]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}
