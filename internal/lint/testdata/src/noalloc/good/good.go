// Package good holds noalloc passing cases: an annotated function
// that stays on the stack, and an unannotated one that may allocate
// freely.
package good

//skia:noalloc
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Boxed is not annotated: the allocation is fine.
func Boxed(v int) *int {
	p := new(int)
	*p = v
	return p
}
