// Package bad holds the noalloc failing case: an annotated hot-path
// function with a compiler-reported heap escape. This is the
// regression fixture for the attribution lineShadow fix: a value that
// belongs in a map by value was boxed per call instead.
package bad

// Sink keeps escaped pointers reachable so the escape is genuine.
var Sink *int

//skia:noalloc
func Leak(v int) { // want `heap escape`
	p := new(int)
	*p = v
	Sink = p
}
