// Package good holds conserve passing cases: every incremented
// counter is read or serialized, and every hook has a real consumer.
package good

// BarStats exports Hits by read and Misses by json schema.
type BarStats struct {
	Hits   uint64
	Misses uint64 `json:"misses"`
}

// Probe pairs its hook with a consumer in wire.
type Probe struct {
	OnEvict func(pc uint64)
}

func bump(s *BarStats) {
	s.Hits++
	s.Misses++
}

func export(s *BarStats) uint64 { return s.Hits }

type pruner struct{ gone map[uint64]bool }

func wire(p *Probe, k *pruner) {
	p.OnEvict = func(pc uint64) { delete(k.gone, pc) }
}

// Histogram stands in for stats.Histogram: Observe accumulates, any
// other use (render, snapshot, address-of) counts as a read.
type Histogram struct{ n uint64 }

func (h *Histogram) Observe(v float64) { h.n++ }
func (h *Histogram) Count() uint64     { return h.n }

// LatStats exports both histograms: Wait by a rendered quantile read,
// Run via an address-of snapshot (the renderMetrics idiom).
type LatStats struct {
	Wait Histogram
	Run  Histogram
}

func observe(s *LatStats) {
	s.Wait.Observe(0.5)
	s.Run.Observe(1.5)
}

func render(s *LatStats) uint64 { return s.Wait.Count() + snapshot(&s.Run) }

func snapshot(h *Histogram) uint64 { return h.Count() }
