// Package good holds conserve passing cases: every incremented
// counter is read or serialized, and every hook has a real consumer.
package good

// BarStats exports Hits by read and Misses by json schema.
type BarStats struct {
	Hits   uint64
	Misses uint64 `json:"misses"`
}

// Probe pairs its hook with a consumer in wire.
type Probe struct {
	OnEvict func(pc uint64)
}

func bump(s *BarStats) {
	s.Hits++
	s.Misses++
}

func export(s *BarStats) uint64 { return s.Hits }

type pruner struct{ gone map[uint64]bool }

func wire(p *Probe, k *pruner) {
	p.OnEvict = func(pc uint64) { delete(k.gone, pc) }
}
