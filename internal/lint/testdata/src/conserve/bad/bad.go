// Package bad holds conserve failing cases: a counter bumped but
// never exported, a hook with no consumer, and a hook consumed by a
// do-nothing literal — the extraOffs-leak bug class.
package bad

// FooStats mirrors the dead-counter findings this analyzer surfaced
// in the real tree (SBBStats.REvictions and friends).
type FooStats struct {
	Used uint64
	Dead uint64 // want `incremented but never read`
}

// Probe carries two unconsumed hooks.
type Probe struct {
	OnDrop func(pc uint64) // want `never registered`
	OnNoop func(pc uint64) // want `never registered`
}

func bump(s *FooStats) {
	s.Used++
	s.Dead++
}

func export(s *FooStats) uint64 { return s.Used }

func wire(p *Probe) {
	p.OnNoop = func(pc uint64) {} // want `empty func literal`
}

// Histogram stands in for stats.Histogram; Observe is the increment.
type Histogram struct{ n uint64 }

func (h *Histogram) Observe(v float64) { h.n++ }
func (h *Histogram) Count() uint64     { return h.n }

// LatStats accumulates Ghost samples that no renderer ever consumes.
type LatStats struct {
	Seen  Histogram
	Ghost Histogram // want `incremented but never read`
}

func observeHist(s *LatStats) {
	s.Seen.Observe(0.5)
	s.Ghost.Observe(1.5)
}

func renderHist(s *LatStats) uint64 { return s.Seen.Count() }
