// Package bad holds conserve failing cases: a counter bumped but
// never exported, a hook with no consumer, and a hook consumed by a
// do-nothing literal — the extraOffs-leak bug class.
package bad

// FooStats mirrors the dead-counter findings this analyzer surfaced
// in the real tree (SBBStats.REvictions and friends).
type FooStats struct {
	Used uint64
	Dead uint64 // want `incremented but never read`
}

// Probe carries two unconsumed hooks.
type Probe struct {
	OnDrop func(pc uint64) // want `never registered`
	OnNoop func(pc uint64) // want `never registered`
}

func bump(s *FooStats) {
	s.Used++
	s.Dead++
}

func export(s *FooStats) uint64 { return s.Used }

func wire(p *Probe) {
	p.OnNoop = func(pc uint64) {} // want `empty func literal`
}
