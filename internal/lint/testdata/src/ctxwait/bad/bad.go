// Package bad holds ctxwait failing cases: goroutines that outlive
// their context and sends that can block forever.
package bad

import "context"

// leakyWorker never looks at ctx (or any stop channel): once the job
// is cancelled this goroutine is leaked until process exit.
func leakyWorker(ctx context.Context, jobs []int) {
	done := 0
	go func() { // want `goroutine does not observe cancellation`
		for range jobs {
			done++
		}
	}()
	_ = done
	_ = ctx
}

// spin is a helper with no cancellation evidence of its own, so
// spawning it is flagged at the go statement.
func spin(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

func spawnSpin() {
	go spin(1000) // want `goroutine does not observe cancellation`
}

// bareSend deadlocks the pool when the consumer has already exited.
func bareSend(queue chan int, v int) {
	queue <- v // want `bare channel send can block forever`
}

// sendOnlySelect is a bare send wearing a select: no default and no
// receive case means nothing unblocks it after cancellation.
func sendOnlySelect(queue chan int, v int) {
	select {
	case queue <- v: // want `select send has no default or receive case`
	}
}
