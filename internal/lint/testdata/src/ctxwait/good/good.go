// Package good holds ctxwait passing cases: every goroutine observes
// cancellation and every send is cancellable.
package good

import "context"

// selectWorker observes ctx.Done directly.
func selectWorker(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// stopWorker uses the stop-channel idiom: receiving from a struct{}
// channel is cancellation evidence too.
func stopWorker(stop chan struct{}, jobs chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// checked polls ctx.Err at loop boundaries, the chunked-run idiom.
func checked(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return total
		}
		total += i
	}
	return total
}

// spawnChecked delegates: the spawned callee observes cancellation, so
// the go statement is proven through the call graph.
func spawnChecked(ctx context.Context) {
	go checked(ctx, 1000)
}

// spawnLiteralDelegate delegates from inside a literal body.
func spawnLiteralDelegate(ctx context.Context) {
	results := make(chan int, 1)
	go func() {
		select {
		case results <- checked(ctx, 1000):
		case <-ctx.Done():
		}
	}()
}

// cancellableSend is the bounded-queue discipline: the ctx.Done case
// unblocks the send after cancellation.
func cancellableSend(ctx context.Context, queue chan int, v int) bool {
	select {
	case queue <- v:
		return true
	case <-ctx.Done():
		return false
	}
}

// droppingSend never blocks: the default case sheds load instead.
func droppingSend(queue chan int, v int) bool {
	select {
	case queue <- v:
		return true
	default:
		return false
	}
}

// annotatedSend shows the suppression path: the receiver provably
// outlives the sender (it is joined in this same function).
func annotatedSend(v int) int {
	reply := make(chan int, 1)
	//skia:ctxwait-ok reply is buffered with capacity 1 and this function holds the only send
	reply <- v
	return <-reply
}
