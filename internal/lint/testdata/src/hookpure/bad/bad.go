// Package bad holds hookpure failing cases: unguarded hook calls and
// hook bodies that write captured state.
package bad

// Sim carries optional observability hooks.
type Sim struct {
	cycles   uint64
	inserts  uint64
	OnEvict  func(line uint64)
	OnInsert func(pc uint64)
}

// evict fires the hook without a nil check: every caller that never
// attached an observer panics.
func (s *Sim) evict(line uint64) {
	s.OnEvict(line) // want `call to hook s.OnEvict without a nil check`
}

// insertGuardedWrongField checks one hook but fires the other.
func (s *Sim) insertGuardedWrongField(pc uint64) {
	if s.OnEvict != nil {
		s.OnInsert(pc) // want `call to hook s.OnInsert without a nil check`
	}
}

// otherInstance shows the guard must cover the same receiver chain:
// a.OnEvict being non-nil says nothing about b.
func otherInstance(a, b *Sim) {
	if a.OnEvict != nil {
		b.OnEvict(0) // want `call to hook b.OnEvict without a nil check`
	}
}

// attach registers a hook that mutates captured simulator state: now
// results depend on whether the observer is attached.
func attach(s *Sim) {
	s.OnInsert = func(pc uint64) {
		s.inserts++ // want `hook OnInsert mutates captured s`
	}
}
