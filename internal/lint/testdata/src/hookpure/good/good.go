// Package good holds hookpure passing cases: guarded invocations and
// pure observer bodies.
package good

// Sim carries optional observability hooks.
type Sim struct {
	cycles   uint64
	evicts   uint64
	OnEvict  func(line uint64)
	OnInsert func(pc uint64)
	trace    func(ev string)
}

// evict uses the enclosing-if guard, the standard emission idiom.
func (s *Sim) evict(line uint64) {
	if s.OnEvict != nil {
		s.OnEvict(line)
	}
}

// insert uses the early-return guard; the tail of the function runs
// with the hook known non-nil.
func (s *Sim) insert(pc uint64) {
	if s.OnInsert == nil {
		return
	}
	s.OnInsert(pc)
}

// both guards two hooks with one conjunction.
func (s *Sim) both(line, pc uint64) {
	if s.OnEvict != nil && s.OnInsert != nil {
		s.OnEvict(line)
		s.OnInsert(pc)
	}
}

// observer is a pure hook body: it only reads captured state and calls
// out; locals are fair game.
func observer(s *Sim, log func(uint64)) {
	s.OnEvict = func(line uint64) {
		shifted := line << 1
		log(shifted + s.cycles)
	}
}

// prune is a method value, not an observer literal: component wiring
// (the SBB OnRemove pruner idiom) is exempt from the purity rule.
func (s *Sim) prune(pc uint64) { s.evicts = pc }

func wire(s *Sim) {
	s.OnInsert = s.prune
}

// counted carries the justified exception: the captured target feeds
// only the observer's own output, never simulation results.
func counted(s *Sim, sink *uint64) {
	s.OnEvict = func(line uint64) {
		//skia:hookpure-ok sink is the observer's private tally, read only by the observer's owner
		*sink++
	}
}
