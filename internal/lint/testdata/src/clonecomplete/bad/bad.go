// Package bad holds clonecomplete failing cases: Clone methods that
// silently miss fields — the checkpoint-corruption bug class.
package bad

// Sim is a composite-style Clone that forgot two fields: table shares
// its backing array with the original (divergence corruption) and pc
// restarts from zero (state loss). Both are exactly what a newly added
// field looks like when Clone is not updated.
type Sim struct {
	cycles uint64
	table  []int // want `field Sim.table is not copied`
	pc     uint64 // want `field Sim.pc is not copied`
	// OnRetire is func-typed: hooks are the owner's to re-wire, so
	// clonecomplete does not require a mention (hookpure governs them).
	OnRetire func(n uint64)
}

func (s *Sim) Clone() *Sim {
	return &Sim{cycles: s.cycles}
}

// hist shows the unexported-clone spelling is held to the same bar.
type hist struct {
	bits []uint64 // want `field hist.bits is not copied`
	ptr  int
}

func (h *hist) clone() hist {
	return hist{ptr: h.ptr}
}

// Nested misses the fix-up style too: assigning n.inner.x mentions
// inner, but other is never touched.
type Nested struct {
	inner Sim
	other []byte // want `field Nested.other is not copied`
}

func (n *Nested) Clone() *Nested {
	c := &Nested{}
	c.inner = *n.inner.Clone()
	return c
}
