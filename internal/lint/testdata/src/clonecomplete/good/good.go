// Package good holds clonecomplete passing cases: every field copied,
// fixed up, annotated, or implicitly covered by a value copy.
package good

// Sim is composite-style complete: every non-func field is a literal
// key or a later fix-up assignment.
type Sim struct {
	cycles uint64
	table  []int
	pc     uint64
	// scratch is deliberately shared: the //skia:shared-ok directive
	// (with its justification) suppresses the finding.
	//skia:shared-ok transient per-call buffer, overwritten before every use
	scratch []byte
	// OnRetire is func-typed and therefore exempt (owners re-wire).
	OnRetire func(n uint64)
}

func (s *Sim) Clone() *Sim {
	n := &Sim{cycles: s.cycles, pc: s.pc}
	n.table = make([]int, len(s.table))
	copy(n.table, s.table)
	return n
}

// hist is value-copy style: `c := *h` mentions every field at once,
// and the reference field is then deep-copy fixed up.
type hist struct {
	bits []uint64
	ptr  int
}

func (h *hist) clone() hist {
	c := *h
	c.bits = make([]uint64, len(h.bits))
	copy(c.bits, h.bits)
	return c
}

// trailer proves the trailing-comment directive placement works too.
type trailer struct {
	n    int
	memo map[int]int //skia:shared-ok pure-function memo, lazily rebuilt by the clone
}

func (t *trailer) Clone() *trailer {
	return &trailer{n: t.n}
}
