// Package good holds directive passing cases: every directive is
// spelled correctly, and every suppression says why.
package good

// Sim shows the marker directives (no argument) and a justified
// field suppression.
type Sim struct {
	cycles uint64
	//skia:shared-ok pure-function memo, lazily rebuilt by the clone
	memo map[int]int
}

//skia:noalloc
func hot(n int) int {
	return n * 2
}

func tally(m map[string]int) int {
	total := 0
	//skia:detmap-ok commutative += accumulation; no ordered output
	for _, v := range m {
		total += v
	}
	return total
}

// prose mentioning a directive like //skia:detmap-ok in a sentence
// (note the leading space) is documentation, not a directive.
var _ = hot(1)
