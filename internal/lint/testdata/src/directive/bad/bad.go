// Package bad holds directive failing cases: misspelled names that
// silently suppress nothing, and suppressions with no justification.
package bad

// Sim demonstrates the misspelling trap: the author believes the field
// is waived, but //skia:sharedok is not a directive.
type Sim struct {
	cycles uint64
	/* want `unknown directive //skia:sharedok` */ //skia:sharedok
	memo map[int]int
}

func tally(m map[string]int) int {
	total := 0
	/* want `directive //skia:detmap-ok requires a justification` */ //skia:detmap-ok
	for _, v := range m {
		total += v
	}
	return total
}

/* want `unknown directive //skia:no-alloc` */ //skia:no-alloc
func hot(n int) int {
	return n * 2
}
