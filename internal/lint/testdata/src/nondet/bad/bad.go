// Package bad holds nondet failing cases: ambient nondeterminism in
// what the analyzer treats as a simulation package.
package bad

import (
	"math/rand"
	"time"
)

func jitter() float64 {
	return rand.Float64() // want `global RNG rand.Float64`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global RNG rand.Shuffle`
}

func stamp() int64 {
	now := time.Now() // want `wall-clock read time.Now`
	return now.UnixNano()
}

func age(t time.Time) time.Duration {
	return time.Since(t) // want `wall-clock read time.Since`
}
