// Package good holds nondet passing cases: seeded RNG threading and
// the annotated wall-clock escape for throughput observability.
package good

import (
	"math/rand"
	"time"
)

// seeded is the required workload pattern: behavior is a pure function
// of the seed.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// wallClockForTimingOnly mirrors the sim.Runner timing bracket: the
// value feeds instructions-per-second reporting, never simulated state.
func wallClockForTimingOnly() time.Time {
	//skia:nondet-ok feeds throughput reporting only
	return time.Now()
}
