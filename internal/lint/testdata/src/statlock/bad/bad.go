// Package bad holds statlock failing cases: //skia:serial values
// handed to goroutines without visible synchronization.
package bad

// Collector is single-goroutine by contract, like metrics.Collector.
//
//skia:serial
type Collector struct {
	hits uint64
}

func (c *Collector) bump() { c.hits++ }

func spawnCapture(c *Collector) {
	done := make(chan struct{})
	go func() {
		c.bump() // want `captures //skia:serial value c`
		close(done)
	}()
	<-done
}

func spawnArg(c *Collector, work func(*Collector)) {
	go work(c) // want `passes //skia:serial value`
}
