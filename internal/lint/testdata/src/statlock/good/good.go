// Package good holds statlock passing cases: mutex-guarded access and
// the annotated exclusive-ownership escape.
package good

import "sync"

//skia:serial
type Collector struct {
	mu   sync.Mutex
	hits uint64
}

// lockedSpawn guards every touch with the collector's own mutex.
func lockedSpawn(c *Collector) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
	}()
	wg.Wait()
}

// annotated mirrors sim.RunAll: the goroutine owns the value
// exclusively for its whole lifetime.
func annotated(c *Collector) {
	done := make(chan struct{})
	//skia:statlock-ok the goroutine takes exclusive ownership for the run
	go func() {
		c.hits++
		close(done)
	}()
	<-done
}
