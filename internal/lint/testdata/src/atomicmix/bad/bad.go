// Package bad holds atomicmix failing cases: the same location touched
// both through sync/atomic and with plain loads/stores.
package bad

import "sync/atomic"

// Progress mixes access styles on done: the hot path increments it
// atomically, the report path reads it bare — a torn read on 32-bit
// platforms and a data race everywhere.
type Progress struct {
	done    uint64
	planned uint64
}

func (p *Progress) Tick() {
	atomic.AddUint64(&p.done, 1)
}

func (p *Progress) Fraction() float64 {
	if p.planned == 0 {
		return 0
	}
	return float64(p.done) / float64(p.planned) // want `plain access to done`
}

func (p *Progress) Reset() {
	p.done = 0 // want `plain access to done`
	p.planned = 0
}

// counter shows package-level variables are held to the same bar.
var counter uint64

func bump() {
	atomic.AddUint64(&counter, 1)
}

func read() uint64 {
	return counter // want `plain access to counter`
}
