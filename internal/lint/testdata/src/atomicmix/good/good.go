// Package good holds atomicmix passing cases: consistent atomic
// access, typed atomics, and a justified pre-publication exception.
package good

import "sync/atomic"

// Progress accesses done through sync/atomic everywhere.
type Progress struct {
	done    uint64
	planned uint64
}

func (p *Progress) Tick() {
	atomic.AddUint64(&p.done, 1)
}

func (p *Progress) Done() uint64 {
	return atomic.LoadUint64(&p.done)
}

func (p *Progress) Reset() {
	atomic.StoreUint64(&p.done, 0)
	p.planned = 0 // planned is never touched atomically: not tracked
}

// Typed is safe by construction — the type system forbids plain
// access, so the analyzer has nothing to track.
type Typed struct {
	done atomic.Uint64
}

func (t *Typed) Tick() {
	t.done.Add(1)
}

func (t *Typed) Done() uint64 {
	return t.done.Load()
}

// NewProgress shows the justified exception: initialization before the
// value is published needs no atomicity.
func NewProgress(planned uint64) *Progress {
	p := &Progress{planned: planned}
	//skia:atomicmix-ok pre-publication init: no other goroutine can hold p yet
	p.done = 0
	return p
}
