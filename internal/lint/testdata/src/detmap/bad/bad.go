// Package bad holds detmap failing cases: map-range loops whose
// effects depend on Go's randomized iteration order.
package bad

import "fmt"

// diffRows is the regression fixture for the compare.diffReport bug
// fixed alongside this analyzer: warnings accumulated in map order
// made report diffs flap between bit-identical runs.
func diffRows(newRows map[string]int, seen map[string]bool) []string {
	var warnings []string
	for key := range newRows { // want `appends to warnings`
		if !seen[key] {
			warnings = append(warnings, fmt.Sprintf("row %s only in new results", key))
		}
	}
	return warnings
}

func firstKey(m map[string]int) string {
	for k := range m { // want `returns from inside the loop`
		return k
	}
	return ""
}

func tally(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `writes sum`
		sum += v
	}
	return sum
}

func countdown(m map[string]int, n *int) {
	for range m { // want `updates counter`
		(*n)--
	}
}

func drainOther(m, other map[string]int) {
	for k := range m { // want `deletes from other`
		_ = k
		delete(other, "fixed")
	}
}
