// Package good holds detmap passing cases: every map-range exemption
// the analyzer grants without annotation, plus the directive escape.
package good

import "sort"

// diffRows is the fixed compare.diffReport shape: collect, sort, emit.
func diffRows(newRows map[string]int, seen map[string]bool) []string {
	var keys []string
	for key := range newRows {
		if !seen[key] {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, "row "+k+" only in new results")
	}
	return out
}

// reset writes the ranged map at the range key: order-independent.
func reset(m map[string]int) {
	for k := range m {
		m[k] = 0
	}
}

// relabel writes another map at a key derived from the range key:
// distinct keys commute.
func relabel(src, dst map[string]int) {
	for k, v := range src {
		dst["x."+k] = v
	}
}

// clearAll deletes the range key from the ranged map.
func clearAll(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// evictOne is the decode-cache eviction pattern: arbitrary selection
// justified by a directive because it cannot reach simulation output.
func evictOne(m map[string]int) {
	//skia:detmap-ok arbitrary victim is result-identical here, order reaches throughput only
	for k := range m {
		delete(m, k)
		return
	}
}
