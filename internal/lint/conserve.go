package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// ConserveAnalyzer enforces two conservation pairings across the whole
// module at once:
//
//  1. Counter conservation: every numeric field of a module-defined
//     *Stats struct (SBDStats, SBBStats, frontend.Stats, btb.Stats, …)
//     that is incremented anywhere must be consumed by a registered
//     exporter — read in a value context somewhere in the module
//     (report/table assembly, a conservation check, or a test), or
//     carried on a serialized schema via a json struct tag. A counter
//     that is bumped but never read is either dead weight or, worse, a
//     result someone believes is published when it is not. Histogram
//     fields (serve.ServiceStats and friends) follow the same rule
//     with Observe as the increment: a histogram that accumulates
//     samples nobody renders is the same dead weight.
//
//  2. Hook pairing: every func-typed struct field named On* (OnEvict,
//     OnRemove, OnHeadPaths, …) must have at least one non-nil
//     registration site in the module, and no registration may be an
//     empty func literal. This is the bug class behind PR 4's
//     extraOffs leak: an eviction hook that exists but has no pruning
//     consumer lets per-run state grow unboundedly and silently skews
//     footprint-sensitive results.
//
// Test files count as read sites (matched by field name, since test
// packages are not type-checked): conservation tests are legitimate
// counter consumers.
var ConserveAnalyzer = &Analyzer{
	Name:       "conserve",
	Doc:        "pairs every incremented stats counter with an exporter and every On* hook with a consumer",
	RunProgram: runConserve,
}

func runConserve(pass *ProgramPass) error {
	checkCounters(pass)
	checkHooks(pass)
	return nil
}

// counterField is one tracked *Stats field.
type counterField struct {
	owner string // type name, e.g. SBDStats
	obj   *types.Var
	pos   token.Pos
	json  bool // has a json struct tag (serialized schema)
}

func checkCounters(pass *ProgramPass) {
	// Collect the counter fields of every module-defined *Stats struct.
	fields := make(map[*types.Var]*counterField)
	byName := make(map[string][]*counterField) // test-file read matching
	for _, pkg := range pass.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || !strings.HasSuffix(name, "Stats") {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !isCounterLike(f.Type()) {
					continue
				}
				tag := reflect.StructTag(st.Tag(i)).Get("json")
				cf := &counterField{owner: name, obj: f, pos: f.Pos(), json: tag != "" && tag != "-"}
				fields[f] = cf
				byName[f.Name()] = append(byName[f.Name()], cf)
			}
		}
	}
	if len(fields) == 0 {
		return
	}

	incremented := make(map[*types.Var]bool)
	read := make(map[*types.Var]bool)
	for _, pkg := range pass.Packages {
		info := pkg.Info
		fieldOf := func(e ast.Expr) *types.Var {
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			s := info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return nil
			}
			f, ok := s.Obj().(*types.Var)
			if !ok {
				return nil
			}
			if _, tracked := fields[f]; !tracked {
				return nil
			}
			return f
		}
		for _, file := range pkg.Files {
			writeTargets := make(map[ast.Expr]bool)
			ast.Inspect(file, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.IncDecStmt:
					if f := fieldOf(st.X); f != nil {
						incremented[f] = true
						writeTargets[st.X] = true
					}
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						if f := fieldOf(lhs); f != nil {
							writeTargets[lhs] = true
							if st.Tok == token.ADD_ASSIGN {
								incremented[f] = true
							}
						}
					}
				case *ast.CallExpr:
					// h.Observe(v) on a tracked Histogram field is its
					// increment form, not a read.
					if sel, ok := st.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Observe" {
						if f := fieldOf(sel.X); f != nil && isHistogram(f.Type()) {
							incremented[f] = true
							writeTargets[sel.X] = true
						}
					}
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok && !writeTargets[sel] {
					if f := fieldOf(sel); f != nil {
						read[f] = true
					}
				}
				return true
			})
		}
		// Test files are parsed without type information; a selector
		// with a tracked field's name is accepted as a read. The
		// conservation tests living in _test.go files are exactly the
		// consumers this check wants to credit.
		for _, file := range pkg.TestFiles {
			ast.Inspect(file, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok {
					for _, cf := range byName[sel.Sel.Name] {
						read[cf.obj] = true
					}
				}
				return true
			})
		}
	}

	var out []*counterField
	for f, cf := range fields {
		if incremented[f] && !read[f] && !cf.json {
			out = append(out, cf)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	for _, cf := range out {
		pass.Reportf(cf.pos, "counter %s.%s is incremented but never read by a report, table, test, or json schema: export it or delete it", cf.owner, cf.obj.Name())
	}
}

// isCounterLike reports whether a *Stats field participates in counter
// conservation: numeric basics (classic counters/gauges) and Histogram
// fields, whose Observe calls are their increments.
func isCounterLike(t types.Type) bool {
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Info()&types.IsNumeric != 0
	}
	return isHistogram(t)
}

// isHistogram matches named Histogram types (stats.Histogram, or a
// fixture-local equivalent) by name: the analyzer cares about the
// Observe-accumulates/render-consumes shape, not the concrete package.
func isHistogram(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Histogram"
}

// hookField is one On* func-typed struct field.
type hookField struct {
	owner string
	obj   *types.Var
	pos   token.Pos
}

func checkHooks(pass *ProgramPass) {
	hooks := make(map[*types.Var]*hookField)
	for _, pkg := range pass.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !strings.HasPrefix(f.Name(), "On") || len(f.Name()) < 3 {
					continue
				}
				if _, ok := f.Type().Underlying().(*types.Signature); !ok {
					continue
				}
				hooks[f] = &hookField{owner: name, obj: f, pos: f.Pos()}
			}
		}
	}
	if len(hooks) == 0 {
		return
	}

	registered := make(map[*types.Var]bool)
	for _, pkg := range pass.Packages {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.AssignStmt)
				if !ok || st.Tok != token.ASSIGN {
					return true
				}
				for i, lhs := range st.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || i >= len(st.Rhs) {
						continue
					}
					s := info.Selections[sel]
					if s == nil || s.Kind() != types.FieldVal {
						continue
					}
					f, ok := s.Obj().(*types.Var)
					if !ok {
						continue
					}
					if _, tracked := hooks[f]; !tracked {
						continue
					}
					rhs := st.Rhs[i]
					if id, ok := rhs.(*ast.Ident); ok && id.Name == "nil" {
						continue // detachment, not registration
					}
					if lit, ok := rhs.(*ast.FuncLit); ok && len(lit.Body.List) == 0 {
						pass.Reportf(rhs.Pos(), "hook %s.%s is registered with an empty func literal: the hook's events are dropped; wire a consumer or assign nil", hooks[f].owner, f.Name())
						continue
					}
					registered[f] = true
				}
				return true
			})
		}
	}

	var out []*hookField
	for f, hf := range hooks {
		if !registered[f] {
			out = append(out, hf)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	for _, hf := range out {
		pass.Reportf(hf.pos, "hook %s.%s is declared but never registered with a non-nil consumer anywhere in the module: its events (evictions, removals, …) are unobserved, the hook-pairing leak class", hf.owner, hf.obj.Name())
	}
}
