package lint

import (
	"go/ast"
	"go/types"
)

// CloneCompleteAnalyzer guards the checkpoint-corruption bug class the
// sampling era created: a field added to any simulator struct that the
// type's `Clone()` (or unexported `clone()`) silently misses corrupts
// every sampled result while staying bit-identical on the exact path,
// because the clone either shares mutable state with the original or
// restarts it from the zero value.
//
// For every module type with a Clone/clone method, the analyzer proves
// each struct field is *mentioned* by the method:
//
//   - as a key in a composite literal of the receiver type
//     (`&T{f: ...}`),
//   - as an assignment target on a non-receiver variable of the
//     receiver type (`n.f = ...`, including nested fix-ups like
//     `n.l1i.OnEvict = ...`, which mention l1i), or
//   - implicitly, when the method value-copies the whole receiver
//     (`c := *t` / a bare value-receiver copy), which mentions every
//     field at once.
//
// Function-typed fields are exempt: hooks are closures over the
// original owner and the established Clone contract is that owners
// re-wire them (that contract is what hookpure polices).
//
// An unmentioned field needs `//skia:shared-ok <justification>` on its
// declaration (doc or trailing comment) — reserved for fields whose
// sharing or reset is provably sound: immutable workload aliases,
// allocation-recycling scratch, observability attachments that do not
// carry over.
//
// Whether a *mentioned* field is copied deeply enough is out of scope
// (that is what the randomized clone divergence tests check at
// runtime); the analyzer's job is making the "method misses the field
// entirely" failure mode impossible to commit.
//
// Facts published (for the fixture-backed self-test that proves the
// checkpointed types really were analyzed):
//
//	clonecomplete.checked  on the type name — a clone method was found
//	                       and its field coverage verified
//	clonecomplete.complete on the type name — checked, and every field
//	                       was mentioned or annotated
var CloneCompleteAnalyzer = &Analyzer{
	Name:      "clonecomplete",
	Doc:       "proves every struct field is copied or annotated //skia:shared-ok in Clone methods",
	Directive: "//skia:shared-ok",
	Run:       runCloneComplete,
}

func runCloneComplete(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Clone" && fd.Name.Name != "clone" {
				continue
			}
			checkCloneMethod(pass, fd)
		}
	}
	return nil
}

// checkCloneMethod verifies one Clone/clone method's field coverage.
func checkCloneMethod(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return
	}
	spec := structSpec(pass.Pkg, named)
	if spec == nil {
		return // defined via an alias or in generated code we cannot see
	}

	recvObj := receiverObject(info, fd)
	mentioned, allCopied := cloneMentions(info, fd.Body, named, recvObj)

	facts := pass.Prog.Facts()
	facts.Set(named.Obj(), "clonecomplete.checked", true)
	complete := true
	for _, field := range spec.Fields.List {
		if _, isFunc := fieldType(info, field).Underlying().(*types.Signature); isFunc {
			continue // hooks: owners re-wire, never copy (see hookpure)
		}
		if hasDirective(field.Doc, "//skia:shared-ok") || hasDirective(field.Comment, "//skia:shared-ok") {
			continue
		}
		for _, name := range field.Names {
			if allCopied || mentioned[name.Name] {
				continue
			}
			complete = false
			pass.Reportf(name.Pos(), "field %s.%s is not copied by (%s).%s: checkpoint clones will share or zero it; copy it explicitly or annotate //skia:shared-ok with a justification",
				named.Obj().Name(), name.Name, named.Obj().Name(), fd.Name.Name)
		}
		if len(field.Names) == 0 { // embedded field
			name := embeddedFieldName(field.Type)
			if name != "" && !allCopied && !mentioned[name] {
				complete = false
				pass.Reportf(field.Pos(), "embedded field %s.%s is not copied by (%s).%s: copy it explicitly or annotate //skia:shared-ok with a justification",
					named.Obj().Name(), name, named.Obj().Name(), fd.Name.Name)
			}
		}
	}
	if complete {
		facts.Set(named.Obj(), "clonecomplete.complete", true)
	}
}

// cloneMentions collects the field names the method body write-mentions
// for the receiver type. allCopied reports a whole-receiver value copy
// (`c := *t`), which mentions every field at once.
func cloneMentions(info *types.Info, body *ast.BlockStmt, named *types.Named, recvObj types.Object) (set map[string]bool, allCopied bool) {
	set = make(map[string]bool)
	sameNamed := func(t types.Type) bool {
		n := namedOf(t)
		return n != nil && n.Obj() == named.Obj()
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CompositeLit:
			if tv, ok := info.Types[node]; ok && sameNamed(tv.Type) {
				for _, elt := range node.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							set[id.Name] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if name, ok := cloneTargetField(info, lhs, sameNamed, recvObj); ok {
					set[name] = true
				}
			}
			// c := *t (or c := t for a value receiver): the whole
			// receiver is value-copied, every field is mentioned.
			for _, rhs := range node.Rhs {
				if isReceiverCopy(info, rhs, recvObj) {
					allCopied = true
				}
			}
		}
		return true
	})
	return set, allCopied
}

// cloneTargetField resolves an assignment target to the receiver-type
// field it mentions: the innermost selector whose base is a
// non-receiver variable of the receiver type (n.f = ..., n.f.g = ...
// both mention f).
func cloneTargetField(info *types.Info, lhs ast.Expr, sameNamed func(types.Type) bool, recvObj types.Object) (string, bool) {
	for {
		switch e := lhs.(type) {
		case *ast.SelectorExpr:
			if base := identObject(info, e.X); base != nil && base != recvObj {
				if _, isVar := base.(*types.Var); isVar && sameNamed(base.Type()) {
					return e.Sel.Name, true
				}
			}
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		default:
			return "", false
		}
	}
}

// isReceiverCopy reports whether expr value-copies the whole receiver:
// `*t` for pointer receivers, the bare receiver for value receivers.
func isReceiverCopy(info *types.Info, expr ast.Expr, recvObj types.Object) bool {
	if recvObj == nil {
		return false
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.StarExpr:
		return identObject(info, e.X) == recvObj
	case *ast.Ident:
		if info.Uses[e] != recvObj {
			return false
		}
		_, isPtr := recvObj.Type().Underlying().(*types.Pointer)
		return !isPtr // bare pointer receiver aliases; only a value receiver copies
	}
	return false
}

// receiverObject returns the receiver variable's object, or nil for an
// unnamed receiver.
func receiverObject(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fd.Recv.List[0].Names[0]]
}

// structSpec finds the AST struct type literal defining named within
// pkg, for field doc/comment directive access.
func structSpec(pkg *Package, named *types.Named) *ast.StructType {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != named.Obj().Name() {
					continue
				}
				if pkg.Info.Defs[ts.Name] != named.Obj() {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// fieldType resolves the declared type of a struct field.
func fieldType(info *types.Info, field *ast.Field) types.Type {
	if tv, ok := info.Types[field.Type]; ok {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// embeddedFieldName extracts the implicit field name of an embedded
// field type expression (pkg.T, *T, T).
func embeddedFieldName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedFieldName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr: // generic embedded type
		return embeddedFieldName(e.X)
	}
	return ""
}
