package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches the fixture expectation syntax, analysistest-style:
// a `// want `+"`regex`"+`` comment on the line a diagnostic lands on.
// The block form `/* want `+"`regex`"+` */` exists for lines where a
// //skia: line directive already owns the rest of the line (the
// directive analyzer's own fixtures).
var wantRe = regexp.MustCompile("(?://|/\\*) want `([^`]+)`")

// runFixture analyzes one fixture package under testdata/src and
// checks its diagnostics against the `// want` comments: every
// diagnostic must match a want on its line, and every want must be
// consumed by a diagnostic. Packages with no want comments therefore
// assert the analyzer stays silent.
func runFixture(t *testing.T, a *Analyzer, rel string) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dir := "internal/lint/testdata/src/" + rel
	prog, err := Load(root, dir)
	if err != nil {
		t.Fatalf("loading %s: %v", rel, err)
	}
	diags, err := RunAnalyzers(prog, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, rel, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	abs := filepath.Join(root, filepath.FromSlash(dir))
	ents, err := os.ReadDir(abs)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		path := filepath.Join(abs, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				k := key{path, i + 1}
				wants[k] = append(wants[k], re)
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

func TestDetMapFixtures(t *testing.T) {
	runFixture(t, DetMapAnalyzer, "detmap/bad")
	runFixture(t, DetMapAnalyzer, "detmap/good")
}

func TestNonDetFixtures(t *testing.T) {
	runFixture(t, NonDetAnalyzer, "nondet/bad")
	runFixture(t, NonDetAnalyzer, "nondet/good")
}

func TestNoAllocFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build for escape analysis")
	}
	runFixture(t, NoAllocAnalyzer, "noalloc/bad")
	runFixture(t, NoAllocAnalyzer, "noalloc/good")
}

func TestConserveFixtures(t *testing.T) {
	runFixture(t, ConserveAnalyzer, "conserve/bad")
	runFixture(t, ConserveAnalyzer, "conserve/good")
}

func TestStatLockFixtures(t *testing.T) {
	runFixture(t, StatLockAnalyzer, "statlock/bad")
	runFixture(t, StatLockAnalyzer, "statlock/good")
}

// TestRepoIsLintClean is the in-process version of the CI gate: the
// module's own tree must produce zero findings from the full suite.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module and shells out to go build")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(prog, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
