package lint

import (
	"go/ast"
	"go/types"
)

// DetMapAnalyzer flags `for range` loops over maps whose body has an
// order-sensitive effect: appending to (or writing) state declared
// outside the loop, or choosing an element via early exit. Go
// randomizes map iteration order per process, so any such loop can
// change simulation output between bit-identical runs — the
// nondeterminism class the determinism tests only sample one workload
// of.
//
// Order-INdependent map writes are permitted without annotation:
//
//   - zeroing/updating the ranged map itself at the range key
//     (m[k] = v inside `for k := range m`),
//   - deleting the range key from the ranged map,
//   - writing any map at a key derived from the range key (distinct
//     keys commute),
//   - appending to a slice that the same function subsequently sorts
//     with a total order (sort.Strings/Ints/Float64s/Slice/...).
//
// Anything else needs a `//skia:detmap-ok <justification>` directive
// on the line above the range statement — reserved for iteration whose
// order provably cannot reach simulation output (e.g. the decode
// cache's arbitrary-victim eviction, which affects throughput only).
var DetMapAnalyzer = &Analyzer{
	Name:      "detmap",
	Doc:       "flags map-order-dependent iteration that can leak nondeterminism into simulation output",
	Directive: "//skia:detmap-ok",
	Run:       runDetMap,
}

func runDetMap(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			detMapFunc(pass, file, fn)
			return true
		})
	}
	return nil
}

func detMapFunc(pass *Pass, file *ast.File, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if lineDirective(pass.Pkg, file, rng.Pos(), "//skia:detmap-ok") {
			return true
		}
		if msg := orderSensitive(pass, fn, rng); msg != "" {
			pass.Reportf(rng.Pos(), "map iteration order is nondeterministic and the loop %s; sort the keys first or annotate //skia:detmap-ok with a justification", msg)
		}
		return true
	})
}

// orderSensitive scans a map-range body for an order-sensitive effect
// and describes the first one found ("" when the loop is clean).
func orderSensitive(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) string {
	info := pass.Pkg.Info
	rangedObj := rootObject(info, rng.X)
	keyObj := identObject(info, rng.Key)

	// mentionsKey reports whether expr reads the range key variable —
	// a key-derived map index commutes across iteration orders.
	mentionsKey := func(expr ast.Expr) bool {
		if keyObj == nil {
			return false
		}
		found := false
		ast.Inspect(expr, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == keyObj {
				found = true
			}
			return !found
		})
		return found
	}

	// selfWrite reports whether the assignment target is an
	// order-independent map write.
	selfWrite := func(lhs ast.Expr) bool {
		ix, ok := lhs.(*ast.IndexExpr)
		if !ok {
			return false
		}
		if _, isMap := info.Types[ix.X].Type.Underlying().(*types.Map); !isMap {
			return false
		}
		if rangedObj != nil && rootObject(info, ix.X) == rangedObj && identObject(info, ix.Index) == keyObj && keyObj != nil {
			return true // m[k] = v over the ranged map itself
		}
		return mentionsKey(ix.Index) // other map, key-derived index
	}

	var msg string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if msg != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if selfWrite(lhs) {
					continue
				}
				// append to an outer slice: order-dependent unless the
				// function sorts the result afterwards.
				if i < len(st.Rhs) {
					if call, ok := st.Rhs[i].(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
						if obj := rootObject(info, lhs); obj != nil && declaredOutside(obj, rng) {
							if !sortedLater(info, fn, obj) {
								msg = "appends to " + obj.Name() + " (declared outside the loop) without sorting it"
							}
							continue
						}
					}
				}
				if obj := rootObject(info, lhs); obj != nil && declaredOutside(obj, rng) {
					msg = "writes " + describeLHS(lhs) + " (state declared outside the loop)"
				}
			}
		case *ast.IncDecStmt:
			if obj := rootObject(info, st.X); obj != nil && declaredOutside(obj, rng) {
				msg = "updates counter " + describeLHS(st.X) + " per iteration in map order"
			}
		case *ast.CallExpr:
			if isBuiltin(info, st, "delete") && len(st.Args) == 2 {
				if rootObject(info, st.Args[0]) == rangedObj && mentionsKey(st.Args[1]) {
					return false // delete(m, k) over the ranged map
				}
				if obj := rootObject(info, st.Args[0]); obj != nil && declaredOutside(obj, rng) && !mentionsKey(st.Args[1]) {
					msg = "deletes from " + obj.Name() + " at a key independent of the range key"
				}
			}
		case *ast.ReturnStmt:
			msg = "returns from inside the loop (selects an arbitrary element)"
		case *ast.BranchStmt:
			// A labeled break targets an outer loop; an unlabeled break
			// of this loop also commits to whichever element came first.
			if st.Tok.String() == "break" {
				msg = "breaks out of the loop (selects an arbitrary element)"
			}
		}
		return true
	})
	return msg
}

// describeLHS renders an assignment target for a diagnostic.
func describeLHS(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return describeLHS(t.X) + "." + t.Sel.Name
	case *ast.IndexExpr:
		return describeLHS(t.X) + "[...]"
	case *ast.StarExpr:
		return "*" + describeLHS(t.X)
	}
	return "state"
}

// rootObject resolves the base identifier of an expression chain
// (x.f[i].g -> object of x), or nil.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			if o := info.Uses[t]; o != nil {
				return o
			}
			return info.Defs[t]
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// identObject resolves a bare identifier expression to its object.
func identObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// declaredOutside reports whether obj was declared outside the range
// statement (captured state rather than a loop-local).
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// sortedLater reports whether fn contains a sort.* call whose first
// argument is rooted at obj — the collect-then-sort idiom that makes a
// map-order append deterministic.
func sortedLater(info *types.Info, fn *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		p := pn.Imported().Path()
		if p != "sort" && p != "slices" {
			return true
		}
		if rootObject(info, call.Args[0]) == obj {
			found = true
		}
		return true
	})
	return found
}
