// Package lint is the simulator's static-analysis suite: five
// invariant checkers (detmap, nondet, noalloc, conserve, statlock)
// that enforce, at CI time, the properties the paper's published
// figures depend on — deterministic simulation, allocation-free hot
// paths, and counter conservation — over every package instead of the
// single workloads the runtime tests sample.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic, testdata fixtures with `// want`
// comments) but is built on the standard library alone, because this
// module vendors nothing. Swapping an analyzer onto x/tools later is
// mechanical: the Run signature and reporting contract are the same.
//
// # Directives
//
// Analyzers honor machine-readable comments ("directives"):
//
//	//skia:noalloc
//	    On a function's doc comment: the function is a simulation hot
//	    path; any compiler-reported heap escape inside it fails lint
//	    (checked against `go build -gcflags=-m` output).
//
//	//skia:serial
//	    On a struct type's doc comment: values are single-goroutine
//	    (one collector per run); touching a captured instance inside a
//	    `go` statement without a mutex fails lint.
//
//	//skia:detmap-ok <justification>
//	    On the line before a map-range statement: the iteration order
//	    is deliberately allowed to vary because it cannot reach any
//	    simulation output. A justification is required.
//
//	//skia:nondet-ok <justification>
//	    On the line before a wall-clock or RNG use in a simulation
//	    package: the value feeds throughput observability, never
//	    simulated state. A justification is required.
//
//	//skia:statlock-ok <justification>
//	    On a go statement handing a //skia:serial value to a
//	    goroutine: access is provably exclusive (e.g. joined before
//	    the next touch). A justification is required.
//
//	//skia:shared-ok <justification>
//	    On a struct field declaration: the field is deliberately not
//	    copied by the type's Clone method — an immutable alias,
//	    recycling scratch, or a non-carrying observability
//	    attachment. A justification is required.
//
//	//skia:ctxwait-ok <justification>
//	    On a go statement or channel send in serve/sim: the goroutine
//	    or send provably cannot outlive its receiver. A justification
//	    is required.
//
//	//skia:atomicmix-ok <justification>
//	    On a plain access to a variable elsewhere accessed via
//	    sync/atomic: the access is ordered by other means (pre-
//	    publication init, lock covering all writers). A justification
//	    is required.
//
//	//skia:hookpure-ok <justification>
//	    On an unguarded On* hook call or a captured-state write inside
//	    a hook body: the hook is proven non-nil or the target never
//	    feeds results. A justification is required.
//
// The directive analyzer enforces this grammar itself: unknown names
// and missing justifications are findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Exactly one of Run and
// RunProgram is set: Run checks a single package at a time, RunProgram
// sees the whole module at once (for cross-package properties like
// counter conservation and compiler escape output).
type Analyzer struct {
	Name string
	Doc  string

	// Directive is the //skia: suppression directive this analyzer
	// honors ("" when it has none). Surfaced in -json output so CI
	// artifacts say how each finding can be waived.
	Directive string

	// Exclude, when non-nil, reports import paths the analyzer does
	// not apply to (allowlisted packages). Fixture packages never
	// match the module path, so they are always in scope.
	Exclude func(pkgPath string) bool

	Run        func(*Pass) error
	RunProgram func(*ProgramPass) error
}

// Diagnostic is one finding, positioned for file:line:col output.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one package through a per-package analyzer.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass carries the whole loaded module through a program-level
// analyzer. Packages excluded by Analyzer.Exclude are pre-filtered.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	Packages []*Package
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in reporting order. The second
// generation (clonecomplete, ctxwait, atomicmix, hookpure, directive)
// statically enforces the invariants the sampling/service era
// introduced dynamically: checkpoint clone completeness, goroutine
// cancellation discipline, atomics consistency, and hook purity.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetMapAnalyzer,
		NonDetAnalyzer,
		NoAllocAnalyzer,
		ConserveAnalyzer,
		StatLockAnalyzer,
		CloneCompleteAnalyzer,
		CtxWaitAnalyzer,
		AtomicMixAnalyzer,
		HookPureAnalyzer,
		DirectiveAnalyzer,
	}
}

// RunAnalyzers applies the given analyzers to prog and returns every
// diagnostic sorted by position. An analyzer error (not a finding; an
// inability to run) aborts with that error.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		inScope := func(pkg *Package) bool {
			return a.Exclude == nil || !a.Exclude(pkg.Path)
		}
		if a.RunProgram != nil {
			pp := &ProgramPass{Analyzer: a, Prog: prog, report: collect}
			for _, pkg := range prog.Packages {
				if inScope(pkg) {
					pp.Packages = append(pp.Packages, pkg)
				}
			}
			if err := a.RunProgram(pp); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range prog.Packages {
			if !inScope(pkg) {
				continue
			}
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, report: collect}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// hasDirective reports whether a comment group contains the given
// //skia: directive on a line of its own (arguments after the
// directive word are allowed: they are the justification).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	directive = strings.TrimPrefix(directive, "//")
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// lineDirective reports whether the statement starting at pos is
// annotated with the directive: a comment on the line immediately
// above it (or trailing on the same line) in the same file.
func lineDirective(pkg *Package, file *ast.File, pos token.Pos, directive string) bool {
	fset := pkg.Prog.Fset
	directive = strings.TrimPrefix(directive, "//")
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			cl := fset.Position(c.Pos()).Line
			if cl != line && cl != line-1 {
				continue
			}
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == directive || strings.HasPrefix(text, directive+" ") {
				return true
			}
		}
	}
	return false
}

// enclosingFile returns the *ast.File of pkg containing pos.
func enclosingFile(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// deref unwraps pointers and named types down to the underlying type.
func deref(t types.Type) types.Type {
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		return t.Underlying()
	}
}

// namedOf unwraps pointers to reach a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}
