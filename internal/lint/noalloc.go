package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// NoAllocAnalyzer enforces the `//skia:noalloc` directive: a function
// so annotated is a simulation hot path (the per-cycle front-end loop,
// shadow-decode memo lookups, SBB/BTB probes) and must not contain a
// compiler-reported heap escape. The check runs the annotated
// packages through `go build -gcflags=-m` and maps every
// "escapes to heap" / "moved to heap" diagnostic back to the enclosing
// annotated function, turning the hot-path allocation audit into a
// ratchet: a future change that re-introduces a per-cycle allocation
// fails lint instead of silently regressing benchmark throughput.
//
// Directive grammar (see the package doc): the line `//skia:noalloc`
// anywhere in a function's doc comment. It applies to that function's
// body only — not to callees — so annotate each function on the hot
// path. The dynamic complement is the BenchmarkFrontEndCycle
// allocs/op budget in bench_test.go.
var NoAllocAnalyzer = &Analyzer{
	Name:       "noalloc",
	Doc:        "forbids compiler-reported heap escapes inside //skia:noalloc functions",
	RunProgram: runNoAlloc,
}

// noallocSpan is one annotated function's file extent.
type noallocSpan struct {
	pkg      *Package
	name     string
	file     string // absolute path
	from, to int    // line range of the body, inclusive
	pos      token.Pos
}

func runNoAlloc(pass *ProgramPass) error {
	spans, pkgs := noallocSpans(pass)
	if len(spans) == 0 {
		return nil
	}
	out, err := escapeOutput(pass.Prog, pkgs)
	if err != nil {
		return err
	}
	for _, d := range parseEscapes(pass.Prog.Dir, out) {
		for _, sp := range spans {
			if d.file == sp.file && d.line >= sp.from && d.line <= sp.to {
				pass.Reportf(sp.pos, "//skia:noalloc function %s has a heap escape at %s:%d: %s", sp.name, filepath.Base(d.file), d.line, d.msg)
			}
		}
	}
	return nil
}

// noallocSpans collects every annotated function and the package set
// owning them.
func noallocSpans(pass *ProgramPass) ([]noallocSpan, []*Package) {
	var spans []noallocSpan
	var pkgs []*Package
	for _, pkg := range pass.Packages {
		had := false
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !hasDirective(fn.Doc, "//skia:noalloc") {
					continue
				}
				fset := pass.Prog.Fset
				spans = append(spans, noallocSpan{
					pkg:  pkg,
					name: funcDisplayName(fn),
					file: fset.Position(fn.Pos()).Filename,
					from: fset.Position(fn.Body.Pos()).Line,
					to:   fset.Position(fn.Body.End()).Line,
					pos:  fn.Pos(),
				})
				had = true
			}
		}
		if had {
			pkgs = append(pkgs, pkg)
		}
	}
	return spans, pkgs
}

// funcDisplayName renders "(*FrontEnd).Step" or "TryDecode".
func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := fn.Recv.List[0].Type
	var b strings.Builder
	switch t := recv.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			fmt.Fprintf(&b, "(*%s)", id.Name)
		}
	case *ast.Ident:
		b.WriteString(t.Name)
	}
	if b.Len() == 0 {
		b.WriteString("recv")
	}
	return b.String() + "." + fn.Name.Name
}

// escapeOutput runs the compiler's escape analysis over the packages
// and returns its combined diagnostics. The go command caches and
// replays compiler output, so warm-cache runs still produce the full
// -m stream; if the build fails the error surfaces here.
func escapeOutput(prog *Program, pkgs []*Package) (string, error) {
	args := []string{"build", "-gcflags=-m=1"}
	for _, pkg := range pkgs {
		rel, err := filepath.Rel(prog.Dir, pkg.Dir)
		if err != nil {
			return "", err
		}
		args = append(args, "./"+filepath.ToSlash(rel))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = prog.Dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	if !strings.Contains(string(out), ":") {
		// Defensive: if the toolchain ever stops replaying cached
		// compiler output, force a rebuild so escapes are not missed.
		cmd = exec.Command("go", append([]string{args[0], "-a"}, args[1:]...)...)
		cmd.Dir = prog.Dir
		out, err = cmd.CombinedOutput()
		if err != nil {
			return "", fmt.Errorf("lint: go build -a: %v\n%s", err, out)
		}
	}
	return string(out), nil
}

// escapeDiag is one heap-escape line of -m output.
type escapeDiag struct {
	file string
	line int
	msg  string
}

// parseEscapes extracts heap-escape diagnostics from -m output,
// resolving file paths against the module root.
func parseEscapes(root, out string) []escapeDiag {
	var ds []escapeDiag
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		if strings.Contains(line, "does not escape") {
			continue
		}
		parts := strings.SplitN(line, ":", 4)
		if len(parts) < 4 {
			continue
		}
		ln, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		file := parts[0]
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		ds = append(ds, escapeDiag{file: filepath.Clean(file), line: ln, msg: strings.TrimSpace(parts[3])})
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].file != ds[j].file {
			return ds[i].file < ds[j].file
		}
		return ds[i].line < ds[j].line
	})
	return ds
}
