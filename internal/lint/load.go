package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	Path  string // import path, e.g. repro/internal/core
	Name  string
	Dir   string
	Prog  *Program
	Files []*ast.File // non-test files, build-tag filtered
	// TestFiles are the package's _test.go files, parsed but NOT
	// type-checked (external test packages would need a second checker
	// configuration). Whole-program analyzers use them as read-site
	// evidence: conservation tests are legitimate counter consumers.
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// Program is a loaded module: every package, sharing one FileSet.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Dir        string // module root (where go.mod lives)
	Packages   []*Package
	byPath     map[string]*Package

	stdImporter types.Importer
	loading     map[string]bool

	// decls and facts back the call-graph and fact-store facilities in
	// callgraph.go; both are built lazily from the loaded packages.
	decls map[*types.Func]DeclSite
	facts *FactStore
}

// ByPath returns the loaded package with the given import path.
func (p *Program) ByPath(path string) *Package { return p.byPath[path] }

// modulePath extracts the module path from go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// Load parses and type-checks module packages under root. With no
// dirs, every package directory under root is loaded (skipping
// testdata, hidden, and underscore-prefixed directories — the same
// exclusions the go tool's ./... pattern applies). With explicit dirs
// (relative to root), exactly those directories are loaded, which is
// how fixture packages under testdata are reached.
func Load(root string, dirs ...string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:       token.NewFileSet(),
		ModulePath: mod,
		Dir:        root,
		byPath:     make(map[string]*Package),
		loading:    make(map[string]bool),
	}
	prog.stdImporter = importer.ForCompiler(prog.Fset, "gc", nil)

	if len(dirs) == 0 {
		dirs, err = packageDirs(root)
		if err != nil {
			return nil, err
		}
	}
	for _, d := range dirs {
		rel := filepath.ToSlash(filepath.Clean(d))
		path := mod
		if rel != "." {
			path = mod + "/" + rel
		}
		if _, err := prog.load(path); err != nil {
			return nil, err
		}
	}
	sort.Slice(prog.Packages, func(i, j int) bool {
		return prog.Packages[i].Path < prog.Packages[j].Path
	})
	return prog, nil
}

// packageDirs walks root for directories containing Go files.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(root, p)
				if err != nil {
					return err
				}
				dirs = append(dirs, rel)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// load type-checks one module package (memoized, cycle-checked).
func (p *Program) load(path string) (*Package, error) {
	if pkg, ok := p.byPath[path]; ok {
		return pkg, nil
	}
	if p.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	p.loading[path] = true
	defer delete(p.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, p.ModulePath), "/")
	dir := filepath.Join(p.Dir, filepath.FromSlash(rel))

	// go/build applies the default build constraints (tags, GOOS), so
	// mutually exclusive files like the skiainvariants on/off pair do
	// not double-define symbols.
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	pkg := &Package{Path: path, Name: bp.Name, Dir: dir, Prog: p}
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	for _, name := range append(append([]string{}, bp.TestGoFiles...), bp.XTestGoFiles...) {
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.TestFiles = append(pkg.TestFiles, f)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			if ipath == "unsafe" {
				return types.Unsafe, nil
			}
			if ipath == p.ModulePath || strings.HasPrefix(ipath, p.ModulePath+"/") {
				sub, err := p.load(ipath)
				if err != nil {
					return nil, err
				}
				return sub.Types, nil
			}
			return p.stdImporter.Import(ipath)
		}),
	}
	tpkg, err := conf.Check(path, p.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	p.byPath[path] = pkg
	p.Packages = append(p.Packages, pkg)
	return pkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
