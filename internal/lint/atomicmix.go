package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMixAnalyzer enforces atomics consistency: a variable or struct
// field accessed through the function-style sync/atomic API anywhere in
// the module (atomic.AddUint64(&s.n, 1)) must never be read or written
// with a plain load/store elsewhere. Mixed access is a data race the
// race detector only catches when a test happens to interleave it —
// and the progress counters this guards feed live observability, where
// a torn read silently misreports without failing anything.
//
// Typed atomics (atomic.Uint64 and friends) are safe by construction —
// the type system already forbids plain access — so they need no
// checking; this analyzer exists for the address-taking API, where the
// compiler accepts both access styles. The repo's own counters use the
// typed forms; the analyzer keeps the next contributor's
// function-style shortcut honest.
//
// A deliberate plain access (an init before the value is published, a
// read under a lock that also orders the writers) can be annotated
// `//skia:atomicmix-ok <justification>` on its line.
var AtomicMixAnalyzer = &Analyzer{
	Name:       "atomicmix",
	Doc:        "forbids mixing sync/atomic access with plain loads/stores on the same variable",
	Directive:  "//skia:atomicmix-ok",
	RunProgram: runAtomicMix,
}

func runAtomicMix(pass *ProgramPass) error {
	// Pass 1: every object whose address feeds a sync/atomic call, and
	// the source ranges of those calls (accesses inside them are the
	// sanctioned ones).
	atomicObjs := make(map[types.Object]token.Position)
	type span struct{ lo, hi token.Pos }
	var sanctioned []span
	for _, pkg := range pass.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg.Info, call) {
					return true
				}
				sanctioned = append(sanctioned, span{call.Pos(), call.End()})
				for _, arg := range call.Args {
					u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || u.Op != token.AND {
						continue
					}
					if obj := addressedObject(pkg.Info, u.X); obj != nil {
						if _, seen := atomicObjs[obj]; !seen {
							atomicObjs[obj] = pass.Prog.Fset.Position(call.Pos())
						}
					}
				}
				return true
			})
		}
	}
	if len(atomicObjs) == 0 {
		return nil
	}
	inSanctioned := func(pos token.Pos) bool {
		for _, s := range sanctioned {
			if s.lo <= pos && pos < s.hi {
				return true
			}
		}
		return false
	}

	// Pass 2: every other use of those objects is a plain access.
	for _, pkg := range pass.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var obj types.Object
				switch node := n.(type) {
				case *ast.SelectorExpr:
					if sel := pkg.Info.Selections[node]; sel != nil {
						obj = sel.Obj()
					}
				case *ast.Ident:
					obj = pkg.Info.Uses[node]
				default:
					return true
				}
				first, tracked := atomicObjs[obj]
				if !tracked || inSanctioned(n.Pos()) {
					return true
				}
				if lineDirective(pkg, file, n.Pos(), "//skia:atomicmix-ok") {
					return true
				}
				pass.Reportf(n.Pos(), "plain access to %s, which is accessed atomically at %s: use sync/atomic everywhere (or a typed atomic), or annotate //skia:atomicmix-ok with a justification", obj.Name(), first)
				return false // don't re-report the selector's ident
			})
		}
	}
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic package
// function (the address-taking API, not typed-atomic methods).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// addressedObject resolves &expr's operand to the variable or field
// object whose accesses must then all be atomic.
func addressedObject(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			return sel.Obj()
		}
	case *ast.IndexExpr:
		return addressedObject(info, e.X)
	}
	return nil
}
