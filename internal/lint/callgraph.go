package lint

import (
	"go/ast"
	"go/types"
)

// The second-generation analyzers (clonecomplete, ctxwait, hookpure)
// need to follow chains across package boundaries: a Clone method
// delegating to a component's Clone, a `go s.worker(sh)` statement
// whose cancellation discipline lives in the worker's body, a hook
// registered with a method value whose mutations live in the method.
// This file upgrades the loader with the two facilities that make such
// whole-program reasoning cheap:
//
//   - a declaration index mapping every *types.Func the checker
//     resolved to the *ast.FuncDecl (and owning *Package) that defines
//     it, so an analyzer holding a call site can open the callee's
//     body, and
//   - a per-object fact store in the x/tools go/analysis spirit:
//     analyzers publish facts about objects ("this type's Clone was
//     proven complete", "this function observes cancellation") that
//     later analyzers — and the self-tests proving an analyzer really
//     covered the types it gates — can query.
//
// Both are derived lazily from the one shared FileSet/type-info the
// loader already builds; no extra parsing or checking happens.

// DeclSite pairs a function declaration with the package owning it.
type DeclSite struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// declIndex builds (once) the *types.Func -> declaration map over every
// loaded package, including methods.
func (p *Program) declIndex() map[*types.Func]DeclSite {
	if p.decls != nil {
		return p.decls
	}
	p.decls = make(map[*types.Func]DeclSite)
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.decls[fn] = DeclSite{Pkg: pkg, Decl: fd}
				}
			}
		}
	}
	return p.decls
}

// DeclOf returns the declaration of fn, or ok=false for functions
// without a body in the loaded program (imports from the standard
// library, interface methods, linker stubs).
func (p *Program) DeclOf(fn *types.Func) (DeclSite, bool) {
	site, ok := p.declIndex()[fn]
	return site, ok
}

// CalleeOf statically resolves a call expression to the *types.Func it
// invokes: plain function calls, method calls on concrete receivers,
// and references through method values. Calls through interface
// methods, function-typed variables, or builtins resolve to nil — the
// callee's body is genuinely unknowable without flow analysis, and the
// analyzers treat such calls conservatively.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Interface method: no body to open.
				if isInterfaceRecv(fn) {
					return nil
				}
				return fn
			}
			return nil
		}
		// Package-qualified call (pkg.Fn).
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isInterfaceRecv reports whether fn is declared on an interface.
func isInterfaceRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// Callees lists the statically resolvable module-local functions a
// body calls (deduplicated, in first-call order). Functions outside
// the loaded program (stdlib) are omitted: analyzers follow module
// chains, and the standard library is trusted.
func (p *Program) Callees(pkg *Package, body ast.Node) []*types.Func {
	idx := p.declIndex()
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := CalleeOf(pkg.Info, call)
		if fn == nil || seen[fn] {
			return true
		}
		if _, local := idx[fn]; local {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}

// FactStore records analyzer-published facts about type-checked
// objects. Keys are namespaced by convention as "analyzer.fact"
// ("clonecomplete.complete", "ctxwait.observes"). Facts exist for the
// lifetime of one Program — exactly the scope whole-program analyzers
// and their self-tests share.
type FactStore struct {
	m map[types.Object]map[string]any
}

// Set publishes a fact about obj.
func (s *FactStore) Set(obj types.Object, key string, val any) {
	if s.m == nil {
		s.m = make(map[types.Object]map[string]any)
	}
	facts := s.m[obj]
	if facts == nil {
		facts = make(map[string]any)
		s.m[obj] = facts
	}
	facts[key] = val
}

// Get returns the fact value and whether it was published.
func (s *FactStore) Get(obj types.Object, key string) (any, bool) {
	v, ok := s.m[obj][key]
	return v, ok
}

// Bool returns a boolean fact (false when absent or non-bool).
func (s *FactStore) Bool(obj types.Object, key string) bool {
	v, _ := s.Get(obj, key)
	b, _ := v.(bool)
	return b
}

// Facts returns the program's shared fact store.
func (p *Program) Facts() *FactStore {
	if p.facts == nil {
		p.facts = &FactStore{}
	}
	return p.facts
}
