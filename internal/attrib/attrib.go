// Package attrib is the miss-attribution engine: it classifies every
// BTB miss into a single cause and every front-end stall cycle into a
// single account, turning the simulator's aggregate counters into the
// per-cause breakdowns the paper's argument rests on.
//
// The paper's central claim is quantitative — ~75% of BTB-missing
// branches are already resident in L1-I shadow bytes, split between
// Head and Tail regions — but aggregate hit/miss counters cannot show
// *why* a run under- or over-performs. This package answers that with
// three instruments:
//
//   - A BTB-miss cause taxonomy (Cause): each taken branch the IAG
//     failed to identify is assigned exactly one cause, so the cause
//     counts sum to the total BTB misses (a conservation law the
//     tests pin).
//   - A front-end stall account (StallKind): each cycle the decoder
//     sits idle is attributed to exactly one stage-level reason, so
//     the stall counts sum to the decoder's total idle cycles.
//   - Distribution statistics over streaming histograms: FTQ
//     occupancy, SBD valid paths per head region, SBB entry lifetime,
//     and re-steer distance.
//
// The engine is a leaf the front-end imports; every hook site
// nil-checks its *Engine so a detached engine costs one comparison.
// Not safe for concurrent use: attach one engine per core.
package attrib

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/stats"
)

// Cause classifies one BTB miss. Exactly one cause is assigned per
// miss; precedence is documented on ClassifyMiss.
type Cause uint8

const (
	// CauseSBBHit: the SBB identified the branch in parallel with the
	// missing BTB, so the miss cost no re-steer (Skia's win).
	CauseSBBHit Cause = iota
	// CauseShadowHead: the branch's line was L1-I resident and its
	// bytes lay in a Head shadow region (before a mid-line block
	// entry) — a miss Skia's head decoder targets.
	CauseShadowHead
	// CauseShadowTail: resident, in a Tail shadow region (after a
	// taken exit) — a miss Skia's tail decoder targets.
	CauseShadowTail
	// CauseIneligible: a conditional or indirect branch. Skia cannot
	// supply it: conditionals need a direction and indirect targets
	// need runtime state (the paper's eligibility rule, Section 3.1).
	CauseIneligible
	// CauseEvicted: the branch was decoded into the U-SBB/R-SBB at
	// some point but capacity-evicted (or invalidated) before this
	// miss — an SBB-sizing loss, not a decoder loss.
	CauseEvicted
	// CauseNotResident: the branch's line was not L1-I resident when
	// its block was formed; no shadow bytes existed to decode.
	CauseNotResident
	// CauseResidentDecoded: resident but outside every recorded
	// shadow region — the bytes were on the previously decoded path,
	// so this is a pure BTB capacity/aliasing miss the shadow decoder
	// never sees.
	CauseResidentDecoded

	NumCauses
)

var causeNames = [NumCauses]string{
	CauseSBBHit:          "sbb-hit",
	CauseShadowHead:      "shadow-head",
	CauseShadowTail:      "shadow-tail",
	CauseIneligible:      "ineligible",
	CauseEvicted:         "sbb-evicted",
	CauseNotResident:     "not-resident",
	CauseResidentDecoded: "resident-decoded",
}

// String returns the cause's stable wire name.
func (c Cause) String() string { return causeNames[c] }

// StallKind classifies one decoder-idle cycle.
type StallKind uint8

const (
	// StallResteerBTBMiss: repair window of a re-steer raised because
	// a taken branch was missing from both BTB and SBB.
	StallResteerBTBMiss StallKind = iota
	// StallResteerMispredict: repair window of a direction, indirect-
	// target, or return misprediction.
	StallResteerMispredict
	// StallResteerBogusSBB: repair window of a re-steer caused by a
	// bogus SBB entry exposed at decode (Skia's cost side).
	StallResteerBogusSBB
	// StallResteerOther: stale-target fixes, BTB aliases exposed as
	// phantoms, and safety-valve resyncs.
	StallResteerOther
	// StallFTQEmpty: the FTQ ran dry — the IAG could not keep ahead.
	StallFTQEmpty
	// StallICacheMiss: the FTQ head block was still waiting on an
	// L1-I (or deeper) fill.
	StallICacheMiss
	// StallFetchLatency: the head block was resident but still in the
	// fixed fetch pipeline.
	StallFetchLatency

	NumStallKinds
)

var stallNames = [NumStallKinds]string{
	StallResteerBTBMiss:    "resteer-btb-miss",
	StallResteerMispredict: "resteer-mispredict",
	StallResteerBogusSBB:   "resteer-bogus-sbb",
	StallResteerOther:      "resteer-other",
	StallFTQEmpty:          "ftq-empty",
	StallICacheMiss:        "icache-miss",
	StallFetchLatency:      "fetch-latency",
}

// String returns the stall kind's stable wire name.
func (k StallKind) String() string { return stallNames[k] }

// lineShadow records which bytes of one cache line have ever been in
// a shadow region: head bytes precede a mid-line block entry, tail
// bytes follow a taken exit. One bit per byte (LineSize = 64). Stored
// by value in Engine.shadow so block formation never heap-allocates
// when a new line is first noted (the //skia:noalloc budget of the
// front-end's formBlock includes the inlined NoteHead/NoteTail).
type lineShadow struct {
	head, tail uint64
}

// offender accumulates per-PC miss counts, one counter per cause.
type offender struct {
	counts [NumCauses]uint64
	total  uint64
}

// DefaultTopN is the offender-table size reported by Summary.
const DefaultTopN = 10

// Engine accumulates attribution state for one core. Create with
// NewEngine, attach via cpu.Core.AttachAttribution, and read the
// results with Summary after the run. Not safe for concurrent use:
// attach one engine per core.
//
//skia:serial
type Engine struct {
	causes [NumCauses]uint64
	stalls [NumStallKinds]uint64

	shadow    map[uint64]lineShadow
	inserted  map[uint64]struct{}
	offenders map[uint64]*offender

	// TopN bounds the offender table in Summary (0 = DefaultTopN).
	TopN int

	ftqOcc   stats.Histogram
	sbdPaths stats.Histogram
	sbbLife  stats.Histogram
	restDist stats.Histogram
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		shadow:    make(map[uint64]lineShadow),
		inserted:  make(map[uint64]struct{}),
		offenders: make(map[uint64]*offender),
	}
}

// NoteHead records that bytes [0, entryOff) of the line at lineAddr
// formed a Head shadow region (the IAG entered the line mid-way at a
// branch target). Called at block formation whether or not Skia is
// enabled, so baseline runs can report the shadow opportunity.
func (e *Engine) NoteHead(lineAddr uint64, entryOff int) {
	if entryOff <= 0 {
		return
	}
	if entryOff > program.LineSize {
		entryOff = program.LineSize
	}
	ls := e.shadow[lineAddr]
	ls.head |= lowBits(entryOff)
	e.shadow[lineAddr] = ls
}

// NoteTail records that bytes [startOff, LineSize) of the line at
// lineAddr formed a Tail shadow region (a taken branch exited the
// line at startOff).
func (e *Engine) NoteTail(lineAddr uint64, startOff int) {
	if startOff < 0 || startOff >= program.LineSize {
		return
	}
	ls := e.shadow[lineAddr]
	ls.tail |= ^lowBits(startOff)
	e.shadow[lineAddr] = ls
}

// lowBits returns a mask of the n lowest bits (n in [0, 64]).
func lowBits(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// NoteSBBInsert records that the shadow decoder installed pc into the
// SBB, enabling the inserted-then-evicted classification later.
func (e *Engine) NoteSBBInsert(pc uint64) {
	e.inserted[pc] = struct{}{}
}

// NoteSBBLifetime records the cycle lifetime of a capacity-evicted
// SBB entry.
func (e *Engine) NoteSBBLifetime(cycles uint64) {
	e.sbbLife.Observe(float64(cycles))
}

// NoteSBDPaths records the valid path-family count of one examined
// head region (0 for regions with no valid path).
func (e *Engine) NoteSBDPaths(n int) {
	e.sbdPaths.Observe(float64(n))
}

// NoteCycle samples per-cycle front-end occupancy state.
func (e *Engine) NoteCycle(ftqLen int) {
	e.ftqOcc.Observe(float64(ftqLen))
}

// NoteResteer records a scheduled re-steer's distance — |target -
// speculative PC| in bytes, how far off the IAG had wandered. The
// stall-kind accounting of the repair window happens per idle cycle
// via StallCycle.
func (e *Engine) NoteResteer(fromPC, toPC uint64) {
	d := toPC - fromPC
	if fromPC > toPC {
		d = fromPC - toPC
	}
	e.restDist.Observe(float64(d))
}

// StallCycle attributes one decoder-idle cycle.
func (e *Engine) StallCycle(kind StallKind) {
	e.stalls[kind]++
}

// ClassifyMiss assigns exactly one Cause to a BTB miss discovered at
// decode and returns it. Precedence:
//
//  1. covered — the SBB supplied the branch: CauseSBBHit.
//  2. conditional/indirect class: CauseIneligible.
//  3. previously inserted into the SBB but absent now: CauseEvicted.
//  4. line not L1-I resident at block formation: CauseNotResident.
//  5. branch byte in a recorded Head shadow region: CauseShadowHead.
//  6. branch byte in a recorded Tail shadow region: CauseShadowTail.
//  7. otherwise CauseResidentDecoded.
//
// covered reports whether the SBB steered the block (no re-steer);
// resident whether the branch's line was L1-I resident when its block
// was formed; inSBB whether the SBB currently holds the PC.
func (e *Engine) ClassifyMiss(pc uint64, class isa.Class, covered, resident, inSBB bool) Cause {
	cause := CauseResidentDecoded
	switch {
	case covered:
		cause = CauseSBBHit
	case class == isa.ClassDirectCond || class == isa.ClassIndirect || class == isa.ClassIndirectCall:
		cause = CauseIneligible
	case func() bool { _, ever := e.inserted[pc]; return ever && !inSBB }():
		cause = CauseEvicted
	case !resident:
		cause = CauseNotResident
	default:
		if ls, ok := e.shadow[program.LineAddr(pc)]; ok {
			bit := uint64(1) << uint(program.LineOffset(pc))
			switch {
			case ls.head&bit != 0:
				cause = CauseShadowHead
			case ls.tail&bit != 0:
				cause = CauseShadowTail
			}
		}
	}
	e.causes[cause]++
	o := e.offenders[pc]
	if o == nil {
		o = &offender{}
		e.offenders[pc] = o
	}
	o.counts[cause]++
	o.total++
	return cause
}

// CauseCount reports one taxonomy bucket with its share of all misses.
type CauseCount struct {
	Cause string  `json:"cause"`
	Count uint64  `json:"count"`
	Share float64 `json:"share"`
}

// StallCount reports one stall account with its share of idle cycles.
type StallCount struct {
	Kind  string  `json:"kind"`
	Count uint64  `json:"count"`
	Share float64 `json:"share"`
}

// Offender is one row of the per-PC top-N miss table.
type Offender struct {
	// PC is the branch address.
	PC uint64 `json:"pc"`
	// Count is its total BTB misses.
	Count uint64 `json:"count"`
	// TopCause is the most frequent cause for this PC.
	TopCause string `json:"top_cause"`
}

// DistSummary condenses one streaming histogram.
type DistSummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func summarizeHist(h *stats.Histogram) DistSummary {
	return DistSummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.5),
		P90:   h.Quantile(0.9),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// Summary is the attribution result embedded in report envelopes
// (schema v3, `attribution` section) and exported as NDJSON.
type Summary struct {
	// BTBMisses is the total misses classified; the cause counts sum
	// to exactly this value.
	BTBMisses uint64 `json:"btb_misses"`
	// StallCycles is the total decoder-idle cycles attributed; the
	// stall counts sum to exactly this value.
	StallCycles uint64 `json:"stall_cycles"`

	// ShadowResidentShare is the fraction of BTB misses whose bytes
	// were L1-I resident in shadow form (sbb-hit + shadow-head +
	// shadow-tail + sbb-evicted): the paper's ~75% observation.
	ShadowResidentShare float64 `json:"shadow_resident_share"`
	// HeadShare and TailShare split the not-yet-captured shadow
	// residency between the two decoder targets.
	HeadShare float64 `json:"head_share"`
	TailShare float64 `json:"tail_share"`

	// Causes lists every taxonomy bucket in enum order, zeros kept so
	// consumers never need existence checks.
	Causes []CauseCount `json:"causes"`
	// Stalls lists every stall account in enum order.
	Stalls []StallCount `json:"stalls"`
	// TopOffenders lists the worst-missing PCs, count-descending.
	TopOffenders []Offender `json:"top_offenders,omitempty"`

	// Distribution statistics.
	FTQOccupancy    DistSummary `json:"ftq_occupancy"`
	SBDValidPaths   DistSummary `json:"sbd_valid_paths"`
	SBBLifetime     DistSummary `json:"sbb_lifetime"`
	ResteerDistance DistSummary `json:"resteer_distance"`
}

// Summary snapshots the engine's accumulated attribution.
func (e *Engine) Summary() Summary {
	if invariantsEnabled {
		attribCheckInvariants(e)
	}
	s := Summary{
		FTQOccupancy:    summarizeHist(&e.ftqOcc),
		SBDValidPaths:   summarizeHist(&e.sbdPaths),
		SBBLifetime:     summarizeHist(&e.sbbLife),
		ResteerDistance: summarizeHist(&e.restDist),
	}
	for _, c := range e.causes {
		s.BTBMisses += c
	}
	for _, c := range e.stalls {
		s.StallCycles += c
	}
	for i := Cause(0); i < NumCauses; i++ {
		cc := CauseCount{Cause: i.String(), Count: e.causes[i]}
		if s.BTBMisses > 0 {
			cc.Share = float64(e.causes[i]) / float64(s.BTBMisses)
		}
		s.Causes = append(s.Causes, cc)
	}
	for i := StallKind(0); i < NumStallKinds; i++ {
		sc := StallCount{Kind: i.String(), Count: e.stalls[i]}
		if s.StallCycles > 0 {
			sc.Share = float64(e.stalls[i]) / float64(s.StallCycles)
		}
		s.Stalls = append(s.Stalls, sc)
	}
	if s.BTBMisses > 0 {
		shadow := e.causes[CauseSBBHit] + e.causes[CauseShadowHead] +
			e.causes[CauseShadowTail] + e.causes[CauseEvicted]
		s.ShadowResidentShare = float64(shadow) / float64(s.BTBMisses)
		s.HeadShare = float64(e.causes[CauseShadowHead]) / float64(s.BTBMisses)
		s.TailShare = float64(e.causes[CauseShadowTail]) / float64(s.BTBMisses)
	}
	s.TopOffenders = e.topOffenders()
	return s
}

// topOffenders ranks PCs by miss count (ties broken by address) and
// returns the top TopN.
func (e *Engine) topOffenders() []Offender {
	n := e.TopN
	if n <= 0 {
		n = DefaultTopN
	}
	out := make([]Offender, 0, len(e.offenders))
	for pc, o := range e.offenders {
		top := Cause(0)
		for c := Cause(1); c < NumCauses; c++ {
			if o.counts[c] > o.counts[top] {
				top = c
			}
		}
		out = append(out, Offender{PC: pc, Count: o.total, TopCause: top.String()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
