package attrib

import (
	"encoding/json"
	"fmt"
	"io"
)

// NDJSON row shapes. Every row carries "type" plus the benchmark/label
// identity, so rows from several specs can share one stream and still
// be grouped by consumers (same convention as the interval rows).
type ndjsonTotal struct {
	Type                string  `json:"type"`
	Benchmark           string  `json:"benchmark"`
	Label               string  `json:"label,omitempty"`
	BTBMisses           uint64  `json:"btb_misses"`
	StallCycles         uint64  `json:"stall_cycles"`
	ShadowResidentShare float64 `json:"shadow_resident_share"`
	HeadShare           float64 `json:"head_share"`
	TailShare           float64 `json:"tail_share"`
}

type ndjsonCause struct {
	Type      string  `json:"type"`
	Benchmark string  `json:"benchmark"`
	Label     string  `json:"label,omitempty"`
	Cause     string  `json:"cause"`
	Count     uint64  `json:"count"`
	Share     float64 `json:"share"`
}

type ndjsonStall struct {
	Type      string  `json:"type"`
	Benchmark string  `json:"benchmark"`
	Label     string  `json:"label,omitempty"`
	Kind      string  `json:"kind"`
	Count     uint64  `json:"count"`
	Share     float64 `json:"share"`
}

type ndjsonOffender struct {
	Type      string `json:"type"`
	Benchmark string `json:"benchmark"`
	Label     string `json:"label,omitempty"`
	PC        string `json:"pc"`
	Count     uint64 `json:"count"`
	TopCause  string `json:"top_cause"`
}

type ndjsonDist struct {
	Type      string  `json:"type"`
	Benchmark string  `json:"benchmark"`
	Label     string  `json:"label,omitempty"`
	Name      string  `json:"name"`
	Count     int     `json:"count"`
	Mean      float64 `json:"mean"`
	P50       float64 `json:"p50"`
	P90       float64 `json:"p90"`
	P99       float64 `json:"p99"`
	Max       float64 `json:"max"`
}

// WriteNDJSON streams one spec's attribution summary as NDJSON: one
// "total" row, one "cause" row per taxonomy bucket (enum order, zeros
// kept), one "stall" row per account, one "offender" row per top-N
// PC, and one "dist" row per distribution.
func WriteNDJSON(w io.Writer, benchmark, label string, s Summary) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(ndjsonTotal{
		Type: "total", Benchmark: benchmark, Label: label,
		BTBMisses:           s.BTBMisses,
		StallCycles:         s.StallCycles,
		ShadowResidentShare: s.ShadowResidentShare,
		HeadShare:           s.HeadShare,
		TailShare:           s.TailShare,
	}); err != nil {
		return err
	}
	for _, c := range s.Causes {
		if err := enc.Encode(ndjsonCause{
			Type: "cause", Benchmark: benchmark, Label: label,
			Cause: c.Cause, Count: c.Count, Share: c.Share,
		}); err != nil {
			return err
		}
	}
	for _, st := range s.Stalls {
		if err := enc.Encode(ndjsonStall{
			Type: "stall", Benchmark: benchmark, Label: label,
			Kind: st.Kind, Count: st.Count, Share: st.Share,
		}); err != nil {
			return err
		}
	}
	for _, o := range s.TopOffenders {
		if err := enc.Encode(ndjsonOffender{
			Type: "offender", Benchmark: benchmark, Label: label,
			PC: fmt.Sprintf("0x%x", o.PC), Count: o.Count, TopCause: o.TopCause,
		}); err != nil {
			return err
		}
	}
	dists := []struct {
		name string
		d    DistSummary
	}{
		{"ftq_occupancy", s.FTQOccupancy},
		{"sbd_valid_paths", s.SBDValidPaths},
		{"sbb_lifetime", s.SBBLifetime},
		{"resteer_distance", s.ResteerDistance},
	}
	for _, dd := range dists {
		if err := enc.Encode(ndjsonDist{
			Type: "dist", Benchmark: benchmark, Label: label, Name: dd.name,
			Count: dd.d.Count, Mean: dd.d.Mean,
			P50: dd.d.P50, P90: dd.d.P90, P99: dd.d.P99, Max: dd.d.Max,
		}); err != nil {
			return err
		}
	}
	return nil
}
