package attrib

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

func TestClassifyPrecedence(t *testing.T) {
	e := NewEngine()
	line := uint64(0x1000)
	e.NoteHead(line, 16)      // bytes [0,16) are head shadow
	e.NoteTail(line, 40)      // bytes [40,64) are tail shadow
	e.NoteSBBInsert(line + 8)  // pc 0x1008 was once in the SBB
	e.NoteSBBInsert(line + 24) // outside both shadow masks

	cases := []struct {
		name     string
		pc       uint64
		class    isa.Class
		covered  bool
		resident bool
		inSBB    bool
		want     Cause
	}{
		{"covered wins", line + 8, isa.ClassDirectUncond, true, true, true, CauseSBBHit},
		{"cond ineligible", line + 4, isa.ClassDirectCond, false, true, false, CauseIneligible},
		{"indirect ineligible", line + 4, isa.ClassIndirect, false, true, false, CauseIneligible},
		{"inserted then gone", line + 8, isa.ClassDirectUncond, false, true, false, CauseEvicted},
		{"inserted still present", line + 24, isa.ClassDirectUncond, false, true, true, CauseResidentDecoded},
		{"not resident", line + 4, isa.ClassDirectUncond, false, false, false, CauseNotResident},
		{"head shadow", line + 4, isa.ClassDirectUncond, false, true, false, CauseShadowHead},
		{"tail shadow", line + 48, isa.ClassReturn, false, true, false, CauseShadowTail},
		{"decoded path", line + 20, isa.ClassDirectUncond, false, true, false, CauseResidentDecoded},
	}
	for _, c := range cases {
		if got := e.ClassifyMiss(c.pc, c.class, c.covered, c.resident, c.inSBB); got != c.want {
			t.Errorf("%s: got %v want %v", c.name, got, c.want)
		}
	}

	// Conservation: every classified miss landed in exactly one bucket.
	s := e.Summary()
	if s.BTBMisses != uint64(len(cases)) {
		t.Fatalf("BTBMisses = %d, want %d", s.BTBMisses, len(cases))
	}
	var sum uint64
	for _, cc := range s.Causes {
		sum += cc.Count
	}
	if sum != s.BTBMisses {
		t.Fatalf("cause counts sum to %d, want %d", sum, s.BTBMisses)
	}
	if len(s.Causes) != int(NumCauses) {
		t.Fatalf("Causes has %d rows, want %d (zeros kept)", len(s.Causes), NumCauses)
	}
}

func TestHeadTailOverlapPrefersHead(t *testing.T) {
	// A byte can sit in both a head and a tail region across different
	// block formations; classification must still be deterministic
	// (head checked first).
	e := NewEngine()
	line := uint64(0x2000)
	e.NoteHead(line, 32)
	e.NoteTail(line, 16)
	got := e.ClassifyMiss(line+20, isa.ClassDirectUncond, false, true, false)
	if got != CauseShadowHead {
		t.Fatalf("overlap byte classified %v, want %v", got, CauseShadowHead)
	}
}

func TestNoteRegionBounds(t *testing.T) {
	e := NewEngine()
	line := uint64(0x3000)
	e.NoteHead(line, 0)                    // empty head: no-op
	e.NoteHead(line, program.LineSize+5)   // clamped to whole line
	e.NoteTail(line, program.LineSize)     // out of range: no-op
	e.NoteTail(line, -1)                   // out of range: no-op
	ls, ok := e.shadow[line]
	if !ok || ls.head != ^uint64(0) {
		t.Fatalf("clamped head mask = %#x, want all ones", ls.head)
	}
	if ls.tail != 0 {
		t.Fatalf("tail mask = %#x, want 0", ls.tail)
	}
}

func TestStallConservationAndShares(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.StallCycle(StallResteerBTBMiss)
	}
	for i := 0; i < 3; i++ {
		e.StallCycle(StallFTQEmpty)
	}
	s := e.Summary()
	if s.StallCycles != 10 {
		t.Fatalf("StallCycles = %d, want 10", s.StallCycles)
	}
	var sum uint64
	var shares float64
	for _, sc := range s.Stalls {
		sum += sc.Count
		shares += sc.Share
	}
	if sum != s.StallCycles {
		t.Fatalf("stall counts sum to %d, want %d", sum, s.StallCycles)
	}
	if shares < 0.999 || shares > 1.001 {
		t.Fatalf("stall shares sum to %v, want ~1", shares)
	}
	if len(s.Stalls) != int(NumStallKinds) {
		t.Fatalf("Stalls has %d rows, want %d", len(s.Stalls), NumStallKinds)
	}
}

func TestShadowResidentShare(t *testing.T) {
	e := NewEngine()
	line := uint64(0x4000)
	e.NoteHead(line, 16)
	// 2 covered, 1 head-shadow, 1 not-resident: shadow share = 3/4.
	e.ClassifyMiss(line+1, isa.ClassDirectUncond, true, true, true)
	e.ClassifyMiss(line+2, isa.ClassReturn, true, true, true)
	e.ClassifyMiss(line+4, isa.ClassDirectUncond, false, true, false)
	e.ClassifyMiss(line+99, isa.ClassDirectUncond, false, false, false)
	s := e.Summary()
	if s.ShadowResidentShare != 0.75 {
		t.Fatalf("ShadowResidentShare = %v, want 0.75", s.ShadowResidentShare)
	}
	if s.HeadShare != 0.25 || s.TailShare != 0 {
		t.Fatalf("Head/TailShare = %v/%v, want 0.25/0", s.HeadShare, s.TailShare)
	}
}

func TestTopOffenders(t *testing.T) {
	e := NewEngine()
	e.TopN = 2
	for i := 0; i < 5; i++ {
		e.ClassifyMiss(0x100, isa.ClassDirectCond, false, true, false)
	}
	for i := 0; i < 3; i++ {
		e.ClassifyMiss(0x200, isa.ClassDirectUncond, false, false, false)
	}
	e.ClassifyMiss(0x300, isa.ClassReturn, false, false, false)
	s := e.Summary()
	if len(s.TopOffenders) != 2 {
		t.Fatalf("TopOffenders has %d rows, want 2", len(s.TopOffenders))
	}
	if s.TopOffenders[0].PC != 0x100 || s.TopOffenders[0].Count != 5 {
		t.Fatalf("top offender = %+v, want pc 0x100 count 5", s.TopOffenders[0])
	}
	if s.TopOffenders[0].TopCause != "ineligible" {
		t.Fatalf("top offender cause = %q, want ineligible", s.TopOffenders[0].TopCause)
	}
	if s.TopOffenders[1].PC != 0x200 {
		t.Fatalf("second offender = %+v, want pc 0x200", s.TopOffenders[1])
	}
}

func TestDistributions(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.NoteCycle(i % 16)
	}
	e.NoteSBDPaths(3)
	e.NoteSBBLifetime(250)
	e.NoteResteer(0x1000, 0x1400)
	e.NoteResteer(0x2400, 0x2000) // distance is symmetric
	s := e.Summary()
	if s.FTQOccupancy.Count != 100 {
		t.Fatalf("FTQOccupancy.Count = %d, want 100", s.FTQOccupancy.Count)
	}
	if s.SBDValidPaths.Count != 1 || s.SBDValidPaths.Mean != 3 {
		t.Fatalf("SBDValidPaths = %+v, want count 1 mean 3", s.SBDValidPaths)
	}
	if s.SBBLifetime.Max != 250 {
		t.Fatalf("SBBLifetime.Max = %v, want 250", s.SBBLifetime.Max)
	}
	if s.ResteerDistance.Count != 2 || s.ResteerDistance.Max != 0x400 {
		t.Fatalf("ResteerDistance = %+v, want count 2 max 1024", s.ResteerDistance)
	}
}

func TestWriteNDJSON(t *testing.T) {
	e := NewEngine()
	e.ClassifyMiss(0x100, isa.ClassDirectUncond, false, false, false)
	e.StallCycle(StallFTQEmpty)
	e.NoteCycle(4)
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, "bench", "skia", e.Summary()); err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	var total ndjsonTotal
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON row %q: %v", sc.Text(), err)
		}
		ty, _ := row["type"].(string)
		types[ty]++
		if row["benchmark"] != "bench" || row["label"] != "skia" {
			t.Fatalf("row missing identity: %q", sc.Text())
		}
		if ty == "total" {
			if err := json.Unmarshal(sc.Bytes(), &total); err != nil {
				t.Fatal(err)
			}
		}
		if ty == "offender" {
			if pc, _ := row["pc"].(string); !strings.HasPrefix(pc, "0x") {
				t.Fatalf("offender pc not hex: %q", pc)
			}
		}
	}
	if types["total"] != 1 || types["cause"] != int(NumCauses) ||
		types["stall"] != int(NumStallKinds) || types["dist"] != 4 || types["offender"] != 1 {
		t.Fatalf("row type counts = %v", types)
	}
	if total.BTBMisses != 1 || total.StallCycles != 1 {
		t.Fatalf("total row = %+v", total)
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	e := NewEngine()
	e.ClassifyMiss(0x100, isa.ClassReturn, true, true, true)
	s := e.Summary()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.BTBMisses != 1 || len(back.Causes) != int(NumCauses) {
		t.Fatalf("round-trip lost data: %+v", back)
	}
}
