//go:build skiainvariants

package attrib

import "fmt"

// invariantsEnabled: see internal/core/invariants_on.go.
const invariantsEnabled = true

// attribCheckInvariants panics if the engine's double-entry accounting
// drifted: ClassifyMiss books every miss once in the cause taxonomy
// and once in the per-PC offender table, so the two ledgers must agree
// exactly, per offender and in total.
//
//go:noinline
func attribCheckInvariants(e *Engine) {
	var causes uint64
	for _, c := range e.causes {
		causes += c
	}
	var total uint64
	for pc, o := range e.offenders {
		var per uint64
		for _, c := range o.counts {
			per += c
		}
		if per != o.total {
			panic(fmt.Sprintf("skiainvariants: offender %#x cause counts sum to %d, total says %d", pc, per, o.total))
		}
		total += o.total
	}
	if total != causes {
		panic(fmt.Sprintf("skiainvariants: offender totals %d != attributed misses %d (conservation)", total, causes))
	}
}
