//go:build !skiainvariants

package attrib

// invariantsEnabled: see internal/core/invariants_off.go.
const invariantsEnabled = false

func attribCheckInvariants(*Engine) {}
