package compare

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/attrib"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
)

// mkReport builds a small two-row report in the shape the harnesses
// emit: a label column, an IPC column, and a speedup column.
func mkReport(id string, ipc, gain float64) *experiments.Report {
	tb := stats.NewTable("benchmark", "ipc", "gain").
		SetUnits(stats.UnitNone, stats.UnitIPC, stats.UnitSpeedup)
	tb.AddCells(stats.Str("voter"), stats.Num(ipc, "x"), stats.Num(gain, "y"))
	tb.AddCells(stats.Str("kafka"), stats.Num(1.5, "1.5"), stats.Num(0.01, "1%"))
	return &experiments.Report{ID: id, Title: "test " + id, Table: tb}
}

func writeDir(t *testing.T, reps ...*experiments.Report) string {
	t.Helper()
	dir := t.TempDir()
	for _, r := range reps {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, r.ID+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A manifest must be skipped, not parsed as a report.
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(`{"schema_version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestIdenticalDirsPass(t *testing.T) {
	dir := writeDir(t, mkReport("fig14", 2.4, 0.05), mkReport("bolt", 2.0, 0.10))
	a, err := LoadPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := Diff(a, b, Options{})
	if res.Failed() {
		t.Errorf("identical dirs failed:\n%s", res)
	}
	// 2 reports x 2 rows x 2 numeric columns.
	if res.Compared != 8 {
		t.Errorf("Compared = %d", res.Compared)
	}
}

func TestToleranceExceedingDeltaFails(t *testing.T) {
	a := map[string]*experiments.Report{"fig14": mkReport("fig14", 2.4, 0.05)}
	// 10% IPC delta against the default 5% relative tolerance.
	b := map[string]*experiments.Report{"fig14": mkReport("fig14", 2.64, 0.05)}
	res := Diff(a, b, Options{})
	if !res.Failed() || len(res.Findings) != 1 {
		t.Fatalf("10%% delta not flagged:\n%s", res)
	}
	f := res.Findings[0]
	if f.Column != "ipc" || f.SignFlip || math.Abs(f.Rel-0.1) > 1e-9 {
		t.Errorf("finding = %+v", f)
	}
	// The same delta passes under a looser tolerance.
	if res := Diff(a, b, Options{RTol: 0.2}); res.Failed() {
		t.Errorf("20%% tolerance still failed:\n%s", res)
	}
}

func TestSpeedupSignFlipFails(t *testing.T) {
	a := map[string]*experiments.Report{"fig14": mkReport("fig14", 2.4, 0.05)}
	b := map[string]*experiments.Report{"fig14": mkReport("fig14", 2.4, -0.05)}
	res := Diff(a, b, Options{})
	if !res.Failed() || len(res.Findings) != 1 || !res.Findings[0].SignFlip {
		t.Fatalf("sign flip not flagged:\n%s", res)
	}
	// A flip inside the noise floor does not count as a flip, but the
	// delta rule still applies: widen RTol so it alone is in play.
	a["fig14"] = mkReport("fig14", 2.4, 0.0002)
	b["fig14"] = mkReport("fig14", 2.4, -0.0002)
	res = Diff(a, b, Options{RTol: 1000})
	for _, f := range res.Findings {
		if f.SignFlip {
			t.Errorf("noise-floor flip flagged: %+v", f)
		}
	}
}

func TestMissingExperimentRowColumnFail(t *testing.T) {
	a := map[string]*experiments.Report{
		"fig14": mkReport("fig14", 2.4, 0.05),
		"bolt":  mkReport("bolt", 2.0, 0.10),
	}
	b := map[string]*experiments.Report{"fig14": mkReport("fig14", 2.4, 0.05)}
	res := Diff(a, b, Options{})
	if !res.Failed() || len(res.Mismatches) != 1 {
		t.Fatalf("missing experiment not flagged:\n%s", res)
	}
	// Extra experiments in the new set warn but do not fail.
	res = Diff(b, a, Options{})
	if res.Failed() || len(res.Warnings) != 1 {
		t.Errorf("extra experiment should warn only:\n%s", res)
	}

	// Missing row.
	short := mkReport("fig14", 2.4, 0.05)
	tb := stats.NewTable("benchmark", "ipc", "gain").
		SetUnits(stats.UnitNone, stats.UnitIPC, stats.UnitSpeedup)
	tb.AddCells(stats.Str("voter"), stats.Num(2.4, "x"), stats.Num(0.05, "y"))
	res = Diff(map[string]*experiments.Report{"fig14": short},
		map[string]*experiments.Report{"fig14": {ID: "fig14", Title: "t", Table: tb}}, Options{})
	if !res.Failed() || !strings.Contains(res.String(), "row [kafka] missing") {
		t.Errorf("missing row not flagged:\n%s", res)
	}

	// Missing column.
	tb2 := stats.NewTable("benchmark", "ipc").SetUnits(stats.UnitNone, stats.UnitIPC)
	tb2.AddCells(stats.Str("voter"), stats.Num(2.4, "x"))
	tb2.AddCells(stats.Str("kafka"), stats.Num(1.5, "1.5"))
	res = Diff(map[string]*experiments.Report{"fig14": mkReport("fig14", 2.4, 0.05)},
		map[string]*experiments.Report{"fig14": {ID: "fig14", Title: "t", Table: tb2}}, Options{})
	if !res.Failed() || !strings.Contains(res.String(), `column "gain" missing`) {
		t.Errorf("missing column not flagged:\n%s", res)
	}
}

func TestLoadPathSingleFileAndErrors(t *testing.T) {
	dir := writeDir(t, mkReport("fig14", 2.4, 0.05))
	reps, err := LoadPath(filepath.Join(dir, "fig14.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps["fig14"] == nil {
		t.Errorf("reps = %+v", reps)
	}
	if _, err := LoadPath(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing path accepted")
	}
	empty := t.TempDir()
	if _, err := LoadPath(empty); err == nil {
		t.Error("empty dir accepted")
	}
	// Duplicate IDs across files must be rejected.
	data, _ := json.Marshal(mkReport("fig14", 2.4, 0.05))
	if err := os.WriteFile(filepath.Join(dir, "copy.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPath(dir); err == nil {
		t.Error("duplicate experiment IDs accepted")
	}
}

func TestRowsPairByLabelNotPosition(t *testing.T) {
	// Same rows, different order: must still pass.
	a := mkReport("fig14", 2.4, 0.05)
	tb := stats.NewTable("benchmark", "ipc", "gain").
		SetUnits(stats.UnitNone, stats.UnitIPC, stats.UnitSpeedup)
	tb.AddCells(stats.Str("kafka"), stats.Num(1.5, "1.5"), stats.Num(0.01, "1%"))
	tb.AddCells(stats.Str("voter"), stats.Num(2.4, "x"), stats.Num(0.05, "y"))
	b := &experiments.Report{ID: "fig14", Title: "t", Table: tb}
	res := Diff(map[string]*experiments.Report{"fig14": a},
		map[string]*experiments.Report{"fig14": b}, Options{})
	if res.Failed() {
		t.Errorf("reordered rows failed:\n%s", res)
	}
}

// TestV2ReportDiffsAgainstV1Golden writes the same table as a
// hand-built schema-v1 file (with an unknown field, as an older tool
// could have left behind) and as a current-schema report, and requires
// the diff to be clean: schema evolution must not break regression
// runs against old goldens.
func TestV2ReportDiffsAgainstV1Golden(t *testing.T) {
	newDir := writeDir(t, mkReport("fig14", 2.4, 0.05))
	data, err := os.ReadFile(filepath.Join(newDir, "fig14.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	m["schema_version"] = json.RawMessage("1")
	delete(m, "intervals")
	m["legacy_only_field"] = json.RawMessage(`"kept by an older tool"`)
	old, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	oldDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(oldDir, "fig14.json"), old, 0o644); err != nil {
		t.Fatal(err)
	}

	a, err := LoadPath(oldDir)
	if err != nil {
		t.Fatalf("v1 golden with unknown field failed to load: %v", err)
	}
	b, err := LoadPath(newDir)
	if err != nil {
		t.Fatal(err)
	}
	res := Diff(a, b, Options{})
	if res.Failed() {
		t.Errorf("v1 golden vs v2 report failed:\n%s", res)
	}
	if res.Compared == 0 {
		t.Error("nothing compared")
	}
}

// mkIVReport attaches an intervals section to a base report.
func mkIVReport(ipcMean, coverage float64) *experiments.Report {
	r := mkReport("fig14", 2.4, 0.05)
	r.Intervals = []sim.SpecIntervals{{
		Benchmark: "voter", Label: "skia",
		Summary: metrics.Summary{Every: 1000, Count: 3, IPCMean: ipcMean, SBBCoverage: coverage},
	}}
	return r
}

func TestIntervalSummaryDrift(t *testing.T) {
	a := map[string]*experiments.Report{"fig14": mkIVReport(2.0, 0.60)}

	// Within the default 5% relative tolerance: clean.
	b := map[string]*experiments.Report{"fig14": mkIVReport(2.04, 0.61)}
	if res := Diff(a, b, Options{}); res.Failed() {
		t.Errorf("within-tolerance interval drift failed:\n%s", res)
	}

	// 10% IPC-mean drift against the default 5%: one finding naming
	// the intervals column.
	b = map[string]*experiments.Report{"fig14": mkIVReport(2.2, 0.60)}
	res := Diff(a, b, Options{})
	if !res.Failed() || len(res.Findings) != 1 {
		t.Fatalf("IPC-mean drift not flagged:\n%s", res)
	}
	if res.Findings[0].Column != "intervals.ipc_mean" {
		t.Errorf("Column = %q", res.Findings[0].Column)
	}

	// Coverage collapse is caught by the same bound.
	b = map[string]*experiments.Report{"fig14": mkIVReport(2.0, 0.30)}
	if res := Diff(a, b, Options{}); len(res.Findings) != 1 ||
		res.Findings[0].Column != "intervals.sbb_coverage" {
		t.Errorf("coverage drift not flagged:\n%s", res)
	}

	// A custom IVRTol loosens only the interval bound.
	if res := Diff(a, b, Options{IVRTol: 0.6}); res.Failed() {
		t.Errorf("IVRTol=0.6 still flagged 50%% coverage drift:\n%s", res)
	}

	// Section present in base, absent from new: a gating mismatch.
	b = map[string]*experiments.Report{"fig14": mkReport("fig14", 2.4, 0.05)}
	if res := Diff(a, b, Options{}); len(res.Mismatches) != 1 {
		t.Errorf("dropped intervals section not a mismatch:\n%s", res)
	}

	// Section only in new: a note, not a failure.
	if res := Diff(b, a, Options{}); res.Failed() || len(res.Warnings) != 1 {
		t.Errorf("added intervals section should only warn:\n%s", res)
	}
}

// mkAttribReport attaches an attribution section with a two-cause,
// one-stall summary whose shares are the test's inputs.
func mkAttribReport(sbbHit, notResident float64) *experiments.Report {
	r := mkReport("fig14", 2.4, 0.05)
	r.Attribution = []sim.SpecAttribution{{
		Benchmark: "voter", Label: "skia",
		Summary: attrib.Summary{
			BTBMisses: 100, StallCycles: 50, ShadowResidentShare: sbbHit,
			Causes: []attrib.CauseCount{
				{Cause: "sbb-hit", Count: uint64(sbbHit * 100), Share: sbbHit},
				{Cause: "not-resident", Count: uint64(notResident * 100), Share: notResident},
			},
			Stalls: []attrib.StallCount{{Kind: "ftq-empty", Count: 50, Share: 1}},
		},
	}}
	return r
}

func TestAttributionShareDrift(t *testing.T) {
	a := map[string]*experiments.Report{"fig14": mkAttribReport(0.70, 0.30)}

	// Shares moved two points: inside the default five-point bound.
	b := map[string]*experiments.Report{"fig14": mkAttribReport(0.72, 0.28)}
	if res := Diff(a, b, Options{}); res.Failed() {
		t.Errorf("two-point share drift failed:\n%s", res)
	}

	// Ten points is a mix shift: shadow_resident_share and both cause
	// shares trip the absolute bound.
	b = map[string]*experiments.Report{"fig14": mkAttribReport(0.60, 0.40)}
	res := Diff(a, b, Options{})
	if len(res.Findings) != 3 {
		t.Fatalf("ten-point drift findings = %d:\n%s", len(res.Findings), res)
	}
	cols := map[string]bool{}
	for _, f := range res.Findings {
		cols[f.Column] = true
		if f.Unit != "share" {
			t.Errorf("%s: Unit = %q", f.Column, f.Unit)
		}
	}
	for _, want := range []string{"attrib.shadow_resident_share", "attrib.cause.sbb-hit", "attrib.cause.not-resident"} {
		if !cols[want] {
			t.Errorf("missing finding for %s (got %v)", want, cols)
		}
	}

	// The absolute bound is tunable independently of the table rtol.
	if res := Diff(a, b, Options{AttribTol: 0.15}); res.Failed() {
		t.Errorf("AttribTol=0.15 still flagged ten-point drift:\n%s", res)
	}

	// Attribution dropped entirely: mismatch. Added: warning only.
	plain := map[string]*experiments.Report{"fig14": mkReport("fig14", 2.4, 0.05)}
	if res := Diff(a, plain, Options{}); len(res.Mismatches) != 1 {
		t.Errorf("dropped attribution section not a mismatch:\n%s", res)
	}
	if res := Diff(plain, a, Options{}); res.Failed() || len(res.Warnings) != 1 {
		t.Errorf("added attribution section should only warn:\n%s", res)
	}
}

// TestAttributionSectionsSurviveFileRoundTrip diffs attribution-bearing
// reports through the same write/LoadPath path skiacmp uses, proving
// the v3 envelope's optional sections reach the comparator from disk.
func TestAttributionSectionsSurviveFileRoundTrip(t *testing.T) {
	rep := mkAttribReport(0.70, 0.30)
	rep.Intervals = mkIVReport(2.0, 0.6).Intervals
	dir := writeDir(t, rep)
	a, err := LoadPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	drifted := mkAttribReport(0.50, 0.50)
	drifted.Intervals = mkIVReport(1.0, 0.6).Intervals
	b, err := LoadPath(writeDir(t, drifted))
	if err != nil {
		t.Fatal(err)
	}
	// Self-diff through disk: clean.
	if res := Diff(a, a, Options{}); res.Failed() {
		t.Errorf("file round-trip self-diff failed:\n%s", res)
	}
	// Drifted copy: both sections report findings from the loaded form.
	res := Diff(a, b, Options{})
	var ivHit, atHit bool
	for _, f := range res.Findings {
		switch f.Column {
		case "intervals.ipc_mean":
			ivHit = true
		case "attrib.shadow_resident_share":
			atHit = true
		}
	}
	if !ivHit || !atHit {
		t.Errorf("loaded sections missing findings (iv=%v at=%v):\n%s", ivHit, atHit, res)
	}
}

// mkSampled attaches a sampling section to a report: one spec with the
// given ipc mean and CI (exact echoes use ci 0).
func mkSampled(id string, mean, ci float64, exact bool) *experiments.Report {
	rep := mkReport(id, 2.4, 0.05)
	rep.Sampling = []sim.SpecSampling{{
		Benchmark: "voter", Label: "skia",
		Summary: sim.SampleSummary{
			Exact: exact,
			Metrics: []sim.MetricCI{
				{Name: "ipc", Mean: mean, CI: ci},
				{Name: "cond_mpki", Mean: 8.5, CI: 0.4},
			},
		},
	}}
	return rep
}

// TestSamplingSectionDrift checks the ordinary-mode sampling diff: a
// drifted point estimate fails under RTol, a matching one passes, and
// a vanished section is a mismatch.
func TestSamplingSectionDrift(t *testing.T) {
	base := map[string]*experiments.Report{"fig14": mkSampled("fig14", 2.40, 0.05, false)}
	same := map[string]*experiments.Report{"fig14": mkSampled("fig14", 2.41, 0.08, false)}
	if res := Diff(base, same, Options{}); res.Failed() {
		t.Errorf("near-identical sampling failed:\n%s", res)
	}
	drift := map[string]*experiments.Report{"fig14": mkSampled("fig14", 2.90, 0.05, false)}
	res := Diff(base, drift, Options{})
	if !res.Failed() {
		t.Fatalf("20%% sampled-ipc drift passed:\n%s", res)
	}
	found := false
	for _, f := range res.Findings {
		if f.Column == "sampling.ipc" {
			found = true
		}
	}
	if !found {
		t.Errorf("no sampling.ipc finding:\n%s", res)
	}
	gone := map[string]*experiments.Report{"fig14": mkReport("fig14", 2.4, 0.05)}
	if res := Diff(base, gone, Options{}); len(res.Mismatches) == 0 {
		t.Errorf("vanished sampling section not a mismatch:\n%s", res)
	}
}

// TestSampleCIGate checks sampled-validation mode: the sampled value
// passes while the exact reference sits inside mean±(CI+slack), fails
// outside it, and table cells are ignored entirely (the two reports'
// tables differ wildly without failing the gate).
func TestSampleCIGate(t *testing.T) {
	exact := mkSampled("fig14", 2.40, 0, true)
	exact.Table = stats.NewTable("benchmark", "other")
	base := map[string]*experiments.Report{"fig14": exact}

	// |2.52-2.40| = 0.12 <= CI 0.02 + atol 0.01 + rtol 0.05*2.40 = 0.15.
	pass := map[string]*experiments.Report{"fig14": mkSampled("fig14", 2.52, 0.02, false)}
	res := Diff(base, pass, Options{SampleCI: true})
	if res.Failed() {
		t.Errorf("in-CI sampled run failed the gate:\n%s", res)
	}
	if res.Compared != 2 {
		t.Errorf("Compared = %d, want 2 (sampling metrics only)", res.Compared)
	}

	// |2.60-2.40| = 0.20 > 0.15: outside the interval.
	fail := map[string]*experiments.Report{"fig14": mkSampled("fig14", 2.60, 0.02, false)}
	res = Diff(base, fail, Options{SampleCI: true})
	if !res.Failed() {
		t.Fatalf("out-of-CI sampled run passed the gate:\n%s", res)
	}
	if f := res.Findings[0]; !strings.Contains(f.Column, "ci-gate") {
		t.Errorf("finding = %+v", f)
	}

	// A wider stated CI absorbs the same delta.
	wide := map[string]*experiments.Report{"fig14": mkSampled("fig14", 2.60, 0.10, false)}
	if res := Diff(base, wide, Options{SampleCI: true}); res.Failed() {
		t.Errorf("wide-CI sampled run failed the gate:\n%s", res)
	}

	// A reference without a sampling section is a usage error.
	bare := map[string]*experiments.Report{"fig14": mkReport("fig14", 2.4, 0.05)}
	if res := Diff(bare, pass, Options{SampleCI: true}); len(res.Mismatches) == 0 {
		t.Error("reference without sampling section accepted")
	}
}
