// Package compare diffs two sets of JSON experiment reports (as
// written by skiaexp -json -out) cell by cell: it pairs experiments by
// ID, rows by their label cells, and columns by name, then checks
// every numeric cell against configurable tolerances. Columns with the
// "speedup" unit additionally get sign-flip detection — a speedup that
// changes sign is a "who wins" shape regression regardless of its
// magnitude. cmd/skiacmp is the CLI; its nonzero exit on Failed
// results is the regression gate future performance PRs cite.
package compare

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options tunes the diff.
type Options struct {
	// RTol is the relative tolerance: a numeric cell fails when
	// |new-old| > ATol + RTol*|old|. Default 0.05.
	RTol float64
	// ATol is the absolute tolerance floor shielding near-zero cells
	// from meaningless relative blowups. Default 1e-6.
	ATol float64
	// FlipMin is the minimum magnitude both sides of a speedup cell
	// must have before a sign flip counts (keeps ±0.01% noise from
	// flagging). Default 1e-3.
	FlipMin float64
	// IVRTol is the relative tolerance applied to per-spec interval
	// summaries (IPC mean, SBB coverage) from the envelopes' optional
	// `intervals` section. Default 0.05.
	IVRTol float64
	// AttribTol is the absolute tolerance applied to attribution
	// shares (BTB-miss cause shares, stall shares, shadow residency)
	// from the envelopes' optional `attribution` section. Shares are
	// fractions of the run's own totals, so an absolute bound compares
	// mix shifts directly without the near-zero blowups a relative
	// bound would hit on rare causes. Default 0.05 (five points).
	AttribTol float64
	// SampleCI switches the diff to sampled-validation mode (skiacmp
	// -sample-ci): only the envelopes' `sampling` sections are
	// compared, base as the reference (normally an exact run with
	// Runner.SampleEcho) and head as the sampled run under test. Each
	// metric passes when |base.mean - head.mean| <= head.CI + base.CI
	// + SampleATol + SampleRTol*|base.mean| — the sampled estimate
	// must contain the reference inside its stated confidence
	// interval, up to the slack tolerances.
	SampleCI bool
	// SampleATol and SampleRTol are the slack terms added to the
	// confidence-interval bound in SampleCI mode, covering the
	// residual bias functional warming cannot remove (wrong-path
	// effects). Defaults 0.01 and 0.05.
	SampleATol float64
	SampleRTol float64
}

// withDefaults fills unset tolerance fields.
func (o Options) withDefaults() Options {
	if o.RTol == 0 {
		o.RTol = 0.05
	}
	if o.ATol == 0 {
		o.ATol = 1e-6
	}
	if o.FlipMin == 0 {
		o.FlipMin = 1e-3
	}
	if o.IVRTol == 0 {
		o.IVRTol = 0.05
	}
	if o.AttribTol == 0 {
		o.AttribTol = 0.05
	}
	if o.SampleATol == 0 {
		o.SampleATol = 0.01
	}
	if o.SampleRTol == 0 {
		o.SampleRTol = 0.05
	}
	return o
}

// Finding is one failing numeric cell.
type Finding struct {
	Experiment string
	Row        string // row key: the row's label cells joined
	Column     string
	Unit       string
	Old, New   float64
	// Rel is |new-old| / |old| (Inf when old is 0 and new is not).
	Rel float64
	// SignFlip marks a speedup column whose sign changed.
	SignFlip bool
}

func (f Finding) String() string {
	kind := fmt.Sprintf("delta %+.4g (%.1f%% rel)", f.New-f.Old, f.Rel*100)
	if f.SignFlip {
		kind = "SIGN FLIP (who-wins regression)"
	}
	return fmt.Sprintf("%s: [%s] %s: %v -> %v: %s",
		f.Experiment, f.Row, f.Column, f.Old, f.New, kind)
}

// Result is the outcome of a diff.
type Result struct {
	// Compared counts numeric cells checked.
	Compared int
	// Findings lists tolerance violations and sign flips.
	Findings []Finding
	// Mismatches lists failing structural differences: experiments,
	// rows, or columns present in the old set but gone from the new.
	Mismatches []string
	// Warnings lists non-failing notes (additions in the new set).
	Warnings []string
}

// Failed reports whether the diff should gate (exit nonzero).
func (r *Result) Failed() bool {
	return len(r.Findings) > 0 || len(r.Mismatches) > 0
}

// String renders a human-readable summary.
func (r *Result) String() string {
	var b strings.Builder
	for _, m := range r.Mismatches {
		fmt.Fprintf(&b, "mismatch: %s\n", m)
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "fail: %s\n", f)
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&b, "note: %s\n", w)
	}
	verdict := "OK"
	if r.Failed() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "%s: %d cells compared, %d failures, %d mismatches, %d notes\n",
		verdict, r.Compared, len(r.Findings), len(r.Mismatches), len(r.Warnings))
	return b.String()
}

// LoadPath reads experiment reports from a single .json file or from
// every *.json in a directory (manifest.json skipped), keyed by
// experiment ID.
func LoadPath(path string) (map[string]*experiments.Report, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	files := []string{path}
	if info.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "*.json"))
		if err != nil {
			return nil, err
		}
	}
	out := make(map[string]*experiments.Report)
	for _, f := range files {
		if filepath.Base(f) == "manifest.json" {
			continue
		}
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		rep, err := experiments.DecodeReport(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		if _, dup := out[rep.ID]; dup {
			return nil, fmt.Errorf("%s: duplicate report for experiment %q", f, rep.ID)
		}
		out[rep.ID] = rep
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no reports found", path)
	}
	return out, nil
}

// RowKey identifies a row by its label (string-kind) cells — the same
// key Diff pairs rows with — exported so internal/store names a
// trajectory metric "rowkey/column" exactly the way a diff finding
// names a failing cell.
func RowKey(row []stats.Cell) string { return rowKey(row) }

// rowKey identifies a row by its label (string-kind) cells so rows
// still pair up when row order shifts. Tables whose rows carry no
// string cells fall back to positional pairing via the duplicate-key
// occurrence index in pairRows.
func rowKey(row []stats.Cell) string {
	var parts []string
	for _, c := range row {
		if c.Kind == stats.CellStr && c.Text != "" {
			parts = append(parts, c.Text)
		}
	}
	return strings.Join(parts, "/")
}

// pairRows indexes rows by key, disambiguating duplicates by
// occurrence order.
func pairRows(t *stats.Table) map[string][]stats.Cell {
	counts := make(map[string]int)
	out := make(map[string][]stats.Cell)
	for i := 0; i < t.NumRows(); i++ {
		row := t.Row(i)
		k := rowKey(row)
		if n := counts[k]; n > 0 {
			k = fmt.Sprintf("%s#%d", k, n)
		}
		counts[rowKey(row)]++
		out[k] = append([]stats.Cell(nil), row...)
	}
	return out
}

// Diff compares two report sets. base is the reference; regressions
// are judged from its point of view.
func Diff(base, head map[string]*experiments.Report, opt Options) *Result {
	opt = opt.withDefaults()
	res := &Result{}
	var ids []string
	for id := range base {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		b, ok := head[id]
		if !ok {
			res.Mismatches = append(res.Mismatches,
				fmt.Sprintf("experiment %q missing from new results", id))
			continue
		}
		diffReport(res, base[id], b, opt)
	}
	var extra []string
	for id := range head {
		if _, ok := base[id]; !ok {
			extra = append(extra, id)
		}
	}
	sort.Strings(extra)
	for _, id := range extra {
		res.Warnings = append(res.Warnings,
			fmt.Sprintf("experiment %q only in new results", id))
	}
	return res
}

// diffReport compares one experiment's tables cell by cell.
func diffReport(res *Result, base, head *experiments.Report, opt Options) {
	if opt.SampleCI {
		diffSampleCI(res, base, head, opt)
		return
	}
	id := base.ID
	oldCols := base.Table.Columns()
	newCols := head.Table.Columns()
	newColIdx := make(map[string]int, len(newCols))
	for i, c := range newCols {
		newColIdx[c.Name] = i
	}
	for _, c := range newCols {
		found := false
		for _, oc := range oldCols {
			if oc.Name == c.Name {
				found = true
				break
			}
		}
		if !found {
			res.Warnings = append(res.Warnings,
				fmt.Sprintf("%s: column %q only in new results", id, c.Name))
		}
	}

	newRows := pairRows(head.Table)
	oldRowSeen := make(map[string]bool)
	counts := make(map[string]int)
	for i := 0; i < base.Table.NumRows(); i++ {
		row := base.Table.Row(i)
		key := rowKey(row)
		if n := counts[key]; n > 0 {
			key = fmt.Sprintf("%s#%d", key, n)
		}
		counts[rowKey(row)]++
		oldRowSeen[key] = true
		newRow, ok := newRows[key]
		if !ok {
			res.Mismatches = append(res.Mismatches,
				fmt.Sprintf("%s: row [%s] missing from new results", id, key))
			continue
		}
		for ci, col := range oldCols {
			nj, ok := newColIdx[col.Name]
			if !ok {
				if i == 0 {
					res.Mismatches = append(res.Mismatches,
						fmt.Sprintf("%s: column %q missing from new results", id, col.Name))
				}
				continue
			}
			a, b := row[ci], newRow[nj]
			if a.Kind != b.Kind {
				res.Mismatches = append(res.Mismatches,
					fmt.Sprintf("%s: [%s] %s: cell kind changed %s -> %s",
						id, key, col.Name, a.Kind, b.Kind))
				continue
			}
			if a.Kind != stats.CellNum {
				continue
			}
			res.Compared++
			checkCell(res, id, key, col, a.Value, b.Value, opt)
		}
	}
	var newOnly []string
	for key := range newRows {
		if !oldRowSeen[key] {
			newOnly = append(newOnly, key)
		}
	}
	sort.Strings(newOnly)
	for _, key := range newOnly {
		res.Warnings = append(res.Warnings,
			fmt.Sprintf("%s: row [%s] only in new results", id, key))
	}
	diffIntervals(res, base, head, opt)
	diffAttribution(res, base, head, opt)
	diffSampling(res, base, head, opt)
}

// specKey identifies one spec's envelope section entry the way table
// rows are keyed: benchmark plus config label.
func specKey(bench, label string) string {
	if label == "" {
		return bench
	}
	return bench + "/" + label
}

// diffIntervals compares the per-spec interval summaries carried in
// the envelopes' optional `intervals` section (schema v2+): the
// cycle-weighted IPC mean and the window-wide SBB coverage, each under
// the (usually looser) IVRTol relative tolerance. Specs present in the
// base but gone from the new set fail; additions — e.g. the new run
// turned collection on — only warn. Reports without the section on
// either side are skipped entirely, so v1 envelopes diff unchanged.
func diffIntervals(res *Result, base, head *experiments.Report, opt Options) {
	if len(base.Intervals) == 0 && len(head.Intervals) == 0 {
		return
	}
	id := base.ID
	newByKey := make(map[string]sim.SpecIntervals, len(head.Intervals))
	for _, iv := range head.Intervals {
		newByKey[specKey(iv.Benchmark, iv.Label)] = iv
	}
	seen := make(map[string]bool, len(base.Intervals))
	for _, b := range base.Intervals {
		key := specKey(b.Benchmark, b.Label)
		seen[key] = true
		h, ok := newByKey[key]
		if !ok {
			res.Mismatches = append(res.Mismatches,
				fmt.Sprintf("%s: intervals for [%s] missing from new results", id, key))
			continue
		}
		ivOpt := opt
		ivOpt.RTol = opt.IVRTol
		res.Compared += 2
		checkCell(res, id, key,
			stats.Column{Name: "intervals.ipc_mean", Unit: stats.UnitIPC},
			b.Summary.IPCMean, h.Summary.IPCMean, ivOpt)
		checkCell(res, id, key,
			stats.Column{Name: "intervals.sbb_coverage"},
			b.Summary.SBBCoverage, h.Summary.SBBCoverage, ivOpt)
	}
	for _, iv := range head.Intervals {
		if key := specKey(iv.Benchmark, iv.Label); !seen[key] {
			res.Warnings = append(res.Warnings,
				fmt.Sprintf("%s: intervals for [%s] only in new results", id, key))
		}
	}
}

// diffAttribution compares the per-spec miss-attribution summaries in
// the envelopes' optional `attribution` section (schema v3+). Every
// cause share, stall share, and the headline shadow-residency share is
// checked under the absolute AttribTol bound: attribution reports a
// mix, so the question is "did any slice of the pie move more than N
// points", independent of how rare the slice is. Missing specs fail;
// additions warn; absent sections skip (older envelopes diff as
// before).
func diffAttribution(res *Result, base, head *experiments.Report, opt Options) {
	if len(base.Attribution) == 0 && len(head.Attribution) == 0 {
		return
	}
	id := base.ID
	newByKey := make(map[string]sim.SpecAttribution, len(head.Attribution))
	for _, at := range head.Attribution {
		newByKey[specKey(at.Benchmark, at.Label)] = at
	}
	seen := make(map[string]bool, len(base.Attribution))
	for _, b := range base.Attribution {
		key := specKey(b.Benchmark, b.Label)
		seen[key] = true
		h, ok := newByKey[key]
		if !ok {
			res.Mismatches = append(res.Mismatches,
				fmt.Sprintf("%s: attribution for [%s] missing from new results", id, key))
			continue
		}
		checkShare(res, id, key, "attrib.shadow_resident_share",
			b.Summary.ShadowResidentShare, h.Summary.ShadowResidentShare, opt)
		newCause := make(map[string]float64, len(h.Summary.Causes))
		for _, c := range h.Summary.Causes {
			newCause[c.Cause] = c.Share
		}
		for _, c := range b.Summary.Causes {
			nv, ok := newCause[c.Cause]
			if !ok {
				res.Mismatches = append(res.Mismatches,
					fmt.Sprintf("%s: [%s] attribution cause %q missing from new results", id, key, c.Cause))
				continue
			}
			checkShare(res, id, key, "attrib.cause."+c.Cause, c.Share, nv, opt)
		}
		newStall := make(map[string]float64, len(h.Summary.Stalls))
		for _, s := range h.Summary.Stalls {
			newStall[s.Kind] = s.Share
		}
		for _, s := range b.Summary.Stalls {
			nv, ok := newStall[s.Kind]
			if !ok {
				res.Mismatches = append(res.Mismatches,
					fmt.Sprintf("%s: [%s] attribution stall %q missing from new results", id, key, s.Kind))
				continue
			}
			checkShare(res, id, key, "attrib.stall."+s.Kind, s.Share, nv, opt)
		}
	}
	for _, at := range head.Attribution {
		if key := specKey(at.Benchmark, at.Label); !seen[key] {
			res.Warnings = append(res.Warnings,
				fmt.Sprintf("%s: attribution for [%s] only in new results", id, key))
		}
	}
}

// diffSampling compares the per-spec sampled-simulation summaries in
// the envelopes' optional `sampling` section (schema v5+) as a
// regression gate: each metric's point estimate is checked under the
// ordinary RTol/ATol rule, like a table cell. Confidence widths are
// not diffed — they are a property of the interval spread, not a
// result. Missing specs or metrics fail; additions warn; absent
// sections skip (older envelopes diff as before).
func diffSampling(res *Result, base, head *experiments.Report, opt Options) {
	if len(base.Sampling) == 0 && len(head.Sampling) == 0 {
		return
	}
	id := base.ID
	newByKey := make(map[string]sim.SpecSampling, len(head.Sampling))
	for _, s := range head.Sampling {
		newByKey[specKey(s.Benchmark, s.Label)] = s
	}
	seen := make(map[string]bool, len(base.Sampling))
	for _, b := range base.Sampling {
		key := specKey(b.Benchmark, b.Label)
		seen[key] = true
		h, ok := newByKey[key]
		if !ok {
			res.Mismatches = append(res.Mismatches,
				fmt.Sprintf("%s: sampling for [%s] missing from new results", id, key))
			continue
		}
		newMetric := metricsByName(h.Summary.Metrics)
		for _, m := range b.Summary.Metrics {
			nm, ok := newMetric[m.Name]
			if !ok {
				res.Mismatches = append(res.Mismatches,
					fmt.Sprintf("%s: [%s] sampled metric %q missing from new results", id, key, m.Name))
				continue
			}
			res.Compared++
			checkCell(res, id, key,
				stats.Column{Name: "sampling." + m.Name}, m.Mean, nm.Mean, opt)
		}
	}
	for _, s := range head.Sampling {
		if key := specKey(s.Benchmark, s.Label); !seen[key] {
			res.Warnings = append(res.Warnings,
				fmt.Sprintf("%s: sampling for [%s] only in new results", id, key))
		}
	}
}

// diffSampleCI validates a sampled result set against a reference
// (Options.SampleCI): base is the reference — normally an exact run
// whose envelope carries CI-free echo rows (Runner.SampleEcho) — and
// head is the sampled run under test. Each metric must contain the
// reference value inside its stated 95% confidence interval plus the
// slack tolerances; the table, intervals, and attribution sections are
// ignored entirely, so an exact and a sampled run of the same
// experiment can be gated against each other even though their tables
// legitimately differ.
func diffSampleCI(res *Result, base, head *experiments.Report, opt Options) {
	id := base.ID
	if len(base.Sampling) == 0 {
		res.Mismatches = append(res.Mismatches,
			fmt.Sprintf("%s: reference has no sampling section (run it with -sample-echo or -sample)", id))
		return
	}
	if len(head.Sampling) == 0 {
		res.Mismatches = append(res.Mismatches,
			fmt.Sprintf("%s: sampled results have no sampling section (run with -sample)", id))
		return
	}
	newByKey := make(map[string]sim.SpecSampling, len(head.Sampling))
	for _, s := range head.Sampling {
		newByKey[specKey(s.Benchmark, s.Label)] = s
	}
	for _, b := range base.Sampling {
		key := specKey(b.Benchmark, b.Label)
		h, ok := newByKey[key]
		if !ok {
			res.Mismatches = append(res.Mismatches,
				fmt.Sprintf("%s: sampling for [%s] missing from sampled results", id, key))
			continue
		}
		newMetric := metricsByName(h.Summary.Metrics)
		for _, m := range b.Summary.Metrics {
			nm, ok := newMetric[m.Name]
			if !ok {
				res.Mismatches = append(res.Mismatches,
					fmt.Sprintf("%s: [%s] sampled metric %q missing", id, key, m.Name))
				continue
			}
			res.Compared++
			tol := nm.CI + m.CI + opt.SampleATol + opt.SampleRTol*math.Abs(m.Mean)
			if math.Abs(nm.Mean-m.Mean) > tol {
				res.Findings = append(res.Findings, Finding{
					Experiment: id, Row: key, Column: "sampling." + m.Name + " (ci-gate)",
					Old: m.Mean, New: nm.Mean, Rel: rel(m.Mean, nm.Mean),
				})
			}
		}
	}
}

// metricsByName indexes a sampled metric list for pairing.
func metricsByName(ms []sim.MetricCI) map[string]sim.MetricCI {
	out := make(map[string]sim.MetricCI, len(ms))
	for _, m := range ms {
		out[m.Name] = m
	}
	return out
}

// checkShare applies the absolute AttribTol bound to one share pair.
func checkShare(res *Result, id, key, name string, a, b float64, opt Options) {
	res.Compared++
	if math.Abs(b-a) > opt.AttribTol {
		res.Findings = append(res.Findings, Finding{
			Experiment: id, Row: key, Column: name, Unit: "share",
			Old: a, New: b, Rel: rel(a, b),
		})
	}
}

// checkCell applies the tolerance and sign-flip rules to one numeric
// cell pair.
func checkCell(res *Result, id, key string, col stats.Column, a, b float64, opt Options) {
	if col.Unit == stats.UnitSpeedup &&
		math.Abs(a) >= opt.FlipMin && math.Abs(b) >= opt.FlipMin &&
		math.Signbit(a) != math.Signbit(b) {
		res.Findings = append(res.Findings, Finding{
			Experiment: id, Row: key, Column: col.Name, Unit: col.Unit,
			Old: a, New: b, Rel: rel(a, b), SignFlip: true,
		})
		return
	}
	if math.Abs(b-a) > opt.ATol+opt.RTol*math.Abs(a) {
		res.Findings = append(res.Findings, Finding{
			Experiment: id, Row: key, Column: col.Name, Unit: col.Unit,
			Old: a, New: b, Rel: rel(a, b),
		})
	}
}

// rel returns |b-a|/|a|, Inf for a==0 with b!=0, 0 when both are 0.
func rel(a, b float64) float64 {
	if a == 0 {
		if b == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(b-a) / math.Abs(a)
}
