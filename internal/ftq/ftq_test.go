package ftq

import "testing"

func TestPushPopFIFO(t *testing.T) {
	q := New[int](4)
	for i := 1; i <= 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(5) {
		t.Error("push into full queue succeeded")
	}
	if !q.Full() || q.Len() != 4 {
		t.Errorf("len=%d full=%v", q.Len(), q.Full())
	}
	for i := 1; i <= 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop from empty succeeded")
	}
}

func TestPeek(t *testing.T) {
	q := New[string](2)
	if _, ok := q.Peek(); ok {
		t.Error("peek on empty")
	}
	q.Push("a")
	q.Push("b")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Errorf("peek = %q,%v", v, ok)
	}
	if q.Len() != 2 {
		t.Error("peek consumed")
	}
}

func TestWrapAround(t *testing.T) {
	q := New[int](3)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !q.Push(round*10 + i) {
				t.Fatal("push failed")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := q.Pop()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: pop = %d,%v", round, v, ok)
			}
		}
	}
}

func TestFlush(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	q.Flush()
	if !q.Empty() || q.Len() != 0 {
		t.Error("flush left elements")
	}
	// Usable after flush.
	q.Push(99)
	if v, _ := q.Pop(); v != 99 {
		t.Error("queue broken after flush")
	}
}

func TestAt(t *testing.T) {
	q := New[int](4)
	q.Push(10)
	q.Push(20)
	q.Pop()
	q.Push(30)
	if v, ok := q.At(0); !ok || v != 20 {
		t.Errorf("At(0) = %d,%v", v, ok)
	}
	if v, ok := q.At(1); !ok || v != 30 {
		t.Errorf("At(1) = %d,%v", v, ok)
	}
	if _, ok := q.At(2); ok {
		t.Error("At past end")
	}
	if _, ok := q.At(-1); ok {
		t.Error("At(-1)")
	}
}

func TestMinCapacity(t *testing.T) {
	q := New[int](0)
	if q.Cap() != 1 {
		t.Errorf("cap = %d", q.Cap())
	}
	q.Push(1)
	if q.Push(2) {
		t.Error("capacity-1 queue accepted two")
	}
}
