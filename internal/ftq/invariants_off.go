//go:build !skiainvariants

package ftq

// invariantsEnabled: see internal/core/invariants_off.go.
const invariantsEnabled = false

func ftqCheckInvariants[T any](*Queue[T]) {}
