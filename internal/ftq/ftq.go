// Package ftq provides the Fetch Target Queue: the bounded FIFO that
// decouples the Instruction Address Generator from the Instruction
// Fetch Unit in an FDIP front-end (paper Section 2.1). Each element is
// one predicted basic block; the queue's depth (paper: 24) bounds how
// far the BPU can run ahead of fetch.
//
// The queue is generic so the front-end can store its own block type
// while tests exercise the container in isolation.
package ftq

// Queue is a bounded FIFO ring buffer. The zero value is unusable; use
// New. Not safe for concurrent use.
type Queue[T any] struct {
	buf   []T
	head  int
	count int
}

// New returns an empty queue with the given capacity (minimum 1).
func New[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{buf: make([]T, capacity)}
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return q.count }

// Cap returns the capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Full reports whether the queue is at capacity.
func (q *Queue[T]) Full() bool { return q.count == len(q.buf) }

// Empty reports whether the queue has no elements.
func (q *Queue[T]) Empty() bool { return q.count == 0 }

// Push appends an element; it reports false when the queue is full.
func (q *Queue[T]) Push(v T) bool {
	if invariantsEnabled {
		ftqCheckInvariants(q)
	}
	if q.Full() {
		return false
	}
	q.buf[(q.head+q.count)%len(q.buf)] = v
	q.count++
	return true
}

// Peek returns the oldest element without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if q.count == 0 {
		return zero, false
	}
	return q.buf[q.head], true
}

// Pop removes and returns the oldest element.
func (q *Queue[T]) Pop() (T, bool) {
	if invariantsEnabled {
		ftqCheckInvariants(q)
	}
	var zero T
	if q.count == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release references
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return v, true
}

// Flush discards every element (a pipeline squash).
func (q *Queue[T]) Flush() {
	var zero T
	for i := 0; i < q.count; i++ {
		q.buf[(q.head+i)%len(q.buf)] = zero
	}
	q.head, q.count = 0, 0
}

// Clone returns an independent deep copy of the queue. cloneElem, when
// non-nil, deep-copies each live element (needed when T holds pointers
// or slices); nil means plain value copies suffice.
func (q *Queue[T]) Clone(cloneElem func(T) T) *Queue[T] {
	n := &Queue[T]{buf: make([]T, len(q.buf)), head: q.head, count: q.count}
	for i := 0; i < q.count; i++ {
		idx := (q.head + i) % len(q.buf)
		if cloneElem != nil {
			n.buf[idx] = cloneElem(q.buf[idx])
		} else {
			n.buf[idx] = q.buf[idx]
		}
	}
	return n
}

// At returns the i-th oldest element (0 = front) for inspection.
func (q *Queue[T]) At(i int) (T, bool) {
	var zero T
	if i < 0 || i >= q.count {
		return zero, false
	}
	return q.buf[(q.head+i)%len(q.buf)], true
}
