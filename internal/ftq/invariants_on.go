//go:build skiainvariants

package ftq

import "fmt"

// invariantsEnabled: see internal/core/invariants_on.go.
const invariantsEnabled = true

// ftqCheckInvariants panics if the ring drifted out of bounds: the
// element count must stay within capacity and the head index within
// the backing array.
//
//go:noinline
func ftqCheckInvariants[T any](q *Queue[T]) {
	if q.count < 0 || q.count > len(q.buf) {
		panic(fmt.Sprintf("skiainvariants: FTQ count %d outside [0, %d]", q.count, len(q.buf)))
	}
	if q.head < 0 || q.head >= len(q.buf) {
		panic(fmt.Sprintf("skiainvariants: FTQ head %d outside [0, %d)", q.head, len(q.buf)))
	}
}
