package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// Geomean is the suite aggregate used throughout the paper's
// evaluation: the geometric mean keeps one outlier benchmark from
// dominating the average.
func ExampleGeomean() {
	ipcRatios := []float64{2, 8}
	fmt.Printf("%.2f\n", stats.Geomean(ipcRatios))
	// Output: 4.00
}

// GeomeanSpeedup aggregates per-benchmark (ipc, baseline) pairs the
// way the paper reports geomean speedups: geometric mean of the
// ratios, minus one.
func ExampleGeomeanSpeedup() {
	skiaIPC := []float64{2.42, 1.21}
	baseIPC := []float64{2.20, 1.10}
	fmt.Println(stats.Percent(stats.GeomeanSpeedup(skiaIPC, baseIPC)))
	// Output: +10.00%
}

// MPKI normalizes an event count (here BTB misses) to events per
// thousand retired instructions, the unit most figures use.
func ExampleMPKI() {
	var misses, instructions uint64 = 5_640, 1_500_000
	fmt.Printf("%.2f\n", stats.MPKI(misses, instructions))
	// Output: 3.76
}
