package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMPKI(t *testing.T) {
	if got := MPKI(50, 1000); !almostEqual(got, 50) {
		t.Errorf("MPKI = %v", got)
	}
	if got := MPKI(1, 1_000_000); !almostEqual(got, 0.001) {
		t.Errorf("MPKI = %v", got)
	}
	if got := MPKI(5, 0); got != 0 {
		t.Errorf("MPKI with zero insts = %v", got)
	}
}

func TestIPC(t *testing.T) {
	if got := IPC(100, 50); !almostEqual(got, 2) {
		t.Errorf("IPC = %v", got)
	}
	if got := IPC(100, 0); got != 0 {
		t.Errorf("IPC zero cycles = %v", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(1.1, 1.0); !almostEqual(got, 0.1) {
		t.Errorf("Speedup = %v", got)
	}
	if got := Speedup(1.0, 0); got != 0 {
		t.Errorf("Speedup base 0 = %v", got)
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); !almostEqual(got, 4) {
		t.Errorf("Geomean = %v", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Errorf("Geomean(nil) = %v", got)
	}
	// Non-positive entries must not produce NaN.
	if got := Geomean([]float64{1, 0}); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("Geomean with zero = %v", got)
	}
}

func TestGeomeanIsScaleInvariant(t *testing.T) {
	f := func(a, b, c float64) bool {
		clamp := func(v float64) float64 {
			v = math.Abs(v)
			if v > 1e6 || math.IsNaN(v) {
				v = math.Mod(v, 1e6)
			}
			return v + 0.1
		}
		xs := []float64{clamp(a), clamp(b), clamp(c)}
		g := Geomean(xs)
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = x * 3
		}
		g2 := Geomean(scaled)
		return math.Abs(g2-3*g) < 1e-6*math.Max(1, g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeomeanSpeedup(t *testing.T) {
	ipcs := []float64{1.1, 1.1}
	bases := []float64{1.0, 1.0}
	if got := GeomeanSpeedup(ipcs, bases); !almostEqual(got, 0.1) {
		t.Errorf("GeomeanSpeedup = %v", got)
	}
	if got := GeomeanSpeedup([]float64{1}, []float64{1, 2}); got != 0 {
		t.Errorf("mismatched lengths = %v", got)
	}
	if got := GeomeanSpeedup([]float64{1}, []float64{0}); got != 0 {
		t.Errorf("zero base = %v", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almostEqual(got, 2) {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.0564); got != "+5.64%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(-0.02); got != "-2.00%" {
		t.Errorf("Percent = %q", got)
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Inc("a")
	s.Add("b", 5)
	s.Inc("a")
	if got := s.Get("a"); got != 2 {
		t.Errorf("a = %d", got)
	}
	if got := s.Get("b"); got != 5 {
		t.Errorf("b = %d", got)
	}
	if got := s.Get("missing"); got != 0 {
		t.Errorf("missing = %d", got)
	}
	cs := s.Counters()
	if len(cs) != 2 || cs[0].Name != "a" || cs[1].Name != "b" {
		t.Errorf("Counters order = %+v", cs)
	}
	s.Reset()
	if s.Get("a") != 0 || s.Get("b") != 0 {
		t.Error("Reset did not zero values")
	}
	// order preserved after reset
	cs = s.Counters()
	if len(cs) != 2 || cs[0].Name != "a" {
		t.Errorf("order lost after reset: %+v", cs)
	}
}

func TestSetZeroValue(t *testing.T) {
	var s Set
	s.Inc("x")
	if s.Get("x") != 1 {
		t.Error("zero-value Set should work")
	}
}

func TestSetMerge(t *testing.T) {
	a := NewSet()
	a.Add("x", 1)
	b := NewSet()
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Errorf("merge got x=%d y=%d", a.Get("x"), a.Get("y"))
	}
	a.Merge(nil) // must not panic
}

func TestTable(t *testing.T) {
	tb := NewTable("bench", "ipc")
	tb.AddRow("kafka", "0.91")
	tb.AddRowf("tpcc", 1.234567)
	out := tb.String()
	if !strings.Contains(out, "kafka") || !strings.Contains(out, "1.235") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// extra cells dropped, missing cells empty
	tb2 := NewTable("a")
	tb2.AddRow("1", "2", "3")
	tb2.AddRow()
	if !strings.Contains(tb2.String(), "1") {
		t.Error("row content lost")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Error("empty histogram should return zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if q := h.Quantile(0); !almostEqual(q, 1) {
		t.Errorf("q0 = %v", q)
	}
	if q := h.Quantile(1); !almostEqual(q, 100) {
		t.Errorf("q1 = %v", q)
	}
	if q := h.Quantile(0.5); math.Abs(q-50.5) > 1 {
		t.Errorf("median = %v", q)
	}
	if m := h.Mean(); !almostEqual(m, 50.5) {
		t.Errorf("mean = %v", m)
	}
}

// TestHistogramAccuracyBound pins the streaming storage's contract:
// against an exact sorted-sample reference, every interior quantile of
// positive samples errs by at most HistogramMaxRelError (relative),
// endpoints and the mean are exact, and memory stays bounded by the
// value range rather than the sample count.
func TestHistogramAccuracyBound(t *testing.T) {
	var h Histogram
	// Log-spread samples over six orders of magnitude, deterministic.
	var exact []float64
	x := uint64(12345)
	for i := 0; i < 50_000; i++ {
		x = x*6364136223846793005 + 1442695040888963407 // LCG
		v := math.Exp(float64(x%1_000_000)/1_000_000*13.8) * 0.01
		exact = append(exact, v)
		h.Observe(v)
	}
	sorted := append([]float64(nil), exact...)
	sort.Float64s(sorted)
	quantAt := func(q float64) float64 {
		idx := q * float64(len(sorted)-1)
		lo := int(idx)
		frac := idx - float64(lo)
		if lo+1 >= len(sorted) {
			return sorted[lo]
		}
		return sorted[lo]*(1-frac) + sorted[lo+1]*frac
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		want := quantAt(q)
		got := h.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > HistogramMaxRelError+1e-9 {
			t.Errorf("q=%v: got %v want %v (rel err %.4f > bound %.4f)",
				q, got, want, rel, HistogramMaxRelError)
		}
	}
	if got := h.Quantile(0); got != sorted[0] {
		t.Errorf("q0 = %v, want exact min %v", got, sorted[0])
	}
	if got := h.Quantile(1); got != sorted[len(sorted)-1] {
		t.Errorf("q1 = %v, want exact max %v", got, sorted[len(sorted)-1])
	}
	var sum float64
	for _, v := range exact {
		sum += v
	}
	if mean := h.Mean(); math.Abs(mean-sum/float64(len(exact)))/mean > 1e-12 {
		t.Errorf("mean = %v, want exact %v", mean, sum/float64(len(exact)))
	}
	// Streaming storage: bucket count is bounded by the value range
	// (orders of magnitude x sub-buckets), not the 50k samples.
	if n := len(h.buckets); n > 24*histSubBuckets {
		t.Errorf("bucket count %d not bounded by value range", n)
	}
	if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
}

// TestHistogramNonPositive covers the shared bucket for samples <= 0.
func TestHistogramNonPositive(t *testing.T) {
	var h Histogram
	for _, v := range []float64{-4, 0, -2, 10, 20} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if q := h.Quantile(0); q != -4 {
		t.Errorf("q0 = %v", q)
	}
	if q := h.Quantile(1); q != 20 {
		t.Errorf("q1 = %v", q)
	}
	// The three non-positive samples share their mean (-2) as the
	// representative for interior quantiles landing among them.
	if q := h.Quantile(0.25); q != -2 {
		t.Errorf("q0.25 = %v, want non-positive bucket mean -2", q)
	}
	if m := h.Mean(); !almostEqual(m, 24.0/5) {
		t.Errorf("mean = %v", m)
	}
}

// TestHistogramMergeEqualsDirectObservation is the merge property the
// run-history roll-ups (internal/store) rely on: splitting a sample
// stream across K histograms and merging them is indistinguishable —
// exactly, not within tolerance — from observing the whole stream into
// one histogram. Checked across split counts, orderings, and a stream
// mixing six orders of magnitude with non-positive samples.
func TestHistogramMergeEqualsDirectObservation(t *testing.T) {
	// Deterministic mixed stream: log-spread positives plus a sprinkle
	// of zeros and negatives (the shared non-positive lane).
	var samples []float64
	x := uint64(98765)
	for i := 0; i < 20_000; i++ {
		x = x*6364136223846793005 + 1442695040888963407 // LCG
		v := math.Exp(float64(x%1_000_000)/1_000_000*13.8) * 0.01
		if x%17 == 0 {
			v = -v * 0.001
		} else if x%19 == 0 {
			v = 0
		}
		samples = append(samples, v)
	}
	var direct Histogram
	for _, v := range samples {
		direct.Observe(v)
	}
	quantiles := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	for _, parts := range []int{1, 2, 3, 7, 16} {
		shards := make([]Histogram, parts)
		for i, v := range samples {
			shards[i%parts].Observe(v)
		}
		var merged Histogram
		// Merge back-to-front so the test also covers "merge into an
		// already-populated histogram" for every shard but the last.
		for i := parts - 1; i >= 0; i-- {
			merged.Merge(&shards[i])
		}
		if merged.Count() != direct.Count() {
			t.Fatalf("parts=%d: count %d != %d", parts, merged.Count(), direct.Count())
		}
		if merged.Sum() != direct.Sum() {
			// Shard sums add in a different order; allow only float
			// reassociation noise, nothing structural.
			if math.Abs(merged.Sum()-direct.Sum()) > 1e-9*math.Abs(direct.Sum()) {
				t.Fatalf("parts=%d: sum %v != %v", parts, merged.Sum(), direct.Sum())
			}
		}
		if merged.Min() != direct.Min() || merged.Max() != direct.Max() {
			t.Fatalf("parts=%d: min/max %v/%v != %v/%v", parts,
				merged.Min(), merged.Max(), direct.Min(), direct.Max())
		}
		for _, q := range quantiles {
			got, want := merged.Quantile(q), direct.Quantile(q)
			// Positive quantiles are bit-exact (bucket counts add).
			// Quantiles landing in the shared non-positive lane report
			// that lane's mean, whose sum reassociates across shards —
			// permit only float rounding there, nothing structural.
			if got != want && math.Abs(got-want) > 1e-12*math.Abs(want) {
				t.Fatalf("parts=%d q=%v: merge-then-quantile %v != quantile-of-merged %v",
					parts, q, got, want)
			}
		}
		if !reflect.DeepEqual(merged.Log2Buckets(), direct.Log2Buckets()) {
			t.Fatalf("parts=%d: bucket views differ", parts)
		}
	}
}

// TestHistogramMergeEdgeCases pins merge behavior at the boundaries:
// empty and nil operands are no-ops, and merging into an empty
// histogram copies counts without disturbing the source.
func TestHistogramMergeEdgeCases(t *testing.T) {
	var a, b Histogram
	a.Observe(3)
	a.Merge(&b) // empty source: no-op
	a.Merge(nil)
	if a.Count() != 1 || a.Min() != 3 || a.Max() != 3 {
		t.Errorf("merge of empty/nil disturbed the target: %+v", a)
	}
	b.Merge(&a) // into empty target
	if b.Count() != 1 || b.Quantile(0.5) != 3 {
		t.Errorf("merge into empty target: count=%d median=%v", b.Count(), b.Quantile(0.5))
	}
	if a.Count() != 1 {
		t.Error("merge mutated its source")
	}
	// Self-merge via an independent copy (Merge into a fresh histogram
	// deep-copies the buckets) doubles every count.
	var c Histogram
	c.Merge(&a)
	a.Merge(&c)
	if a.Count() != 2 || a.Quantile(1) != 3 {
		t.Errorf("merge of copied self: count=%d max=%v", a.Count(), a.Quantile(1))
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 9, 3, 7, 2} {
		h.Observe(v)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.1 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotonic at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestTableTypedCellsAndUnits(t *testing.T) {
	tb := NewTable("bench", "ipc", "gain").SetUnits(UnitNone, UnitIPC, UnitSpeedup)
	tb.AddCells(Str("voter"), Num(2.262, "2.262"), Num(0.0753, "7.53%"))
	cols := tb.Columns()
	if cols[0].Unit != UnitNone || cols[1].Unit != UnitIPC || cols[2].Unit != UnitSpeedup {
		t.Errorf("units = %+v", cols)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	row := tb.Row(0)
	if row[0].Kind != CellStr || row[1].Kind != CellNum || row[1].Value != 2.262 {
		t.Errorf("row = %+v", row)
	}
	// Plain-text rendering uses the Text field.
	if out := tb.String(); !strings.Contains(out, "7.53%") {
		t.Errorf("rendering:\n%s", out)
	}
	// AddRowf produces numeric cells for numeric arguments.
	tb.AddRowf("kafka", 1.234567, uint64(42))
	row = tb.Row(1)
	if row[1].Kind != CellNum || row[1].Text != "1.235" || row[2].Value != 42 {
		t.Errorf("AddRowf row = %+v", row)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tb := NewTable("bench", "mpki", "gain").SetUnits(UnitNone, UnitMPKI, UnitSpeedup)
	tb.AddCells(Str("voter"), Num(3.68, "3.68"), Num(-0.021, "-2.10%"))
	tb.AddCells(Str("kafka"), Num(0, "0.00"), Num(0.0564, "+5.64%"))
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-valued numeric cells must keep their "value" key so kinds
	// survive the round trip.
	if !strings.Contains(string(data), `"value": 0`) && !strings.Contains(string(data), `"value":0`) {
		t.Errorf("zero num cell lost its value:\n%s", data)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tb.Columns(), back.Columns()) {
		t.Errorf("columns: %+v != %+v", tb.Columns(), back.Columns())
	}
	if back.NumRows() != tb.NumRows() {
		t.Fatalf("rows: %d != %d", back.NumRows(), tb.NumRows())
	}
	for i := 0; i < tb.NumRows(); i++ {
		if !reflect.DeepEqual(tb.Row(i), back.Row(i)) {
			t.Errorf("row %d: %+v != %+v", i, tb.Row(i), back.Row(i))
		}
	}
	if tb.String() != back.String() {
		t.Error("rendering changed across round trip")
	}
}

func TestTableJSONRejectsMalformed(t *testing.T) {
	var tb Table
	// Row width must match the column count.
	bad := `{"columns":[{"name":"a"},{"name":"b"}],"rows":[[{"kind":"str","text":"x"}]]}`
	if err := json.Unmarshal([]byte(bad), &tb); err == nil {
		t.Error("ragged row accepted")
	}
	// Unknown cell kinds must be rejected, not silently coerced.
	bad = `{"columns":[{"name":"a"}],"rows":[[{"kind":"complex","text":"x"}]]}`
	if err := json.Unmarshal([]byte(bad), &tb); err == nil {
		t.Error("unknown cell kind accepted")
	}
}

func TestEmptyTableJSON(t *testing.T) {
	tb := NewTable("a", "b")
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 0 || len(back.Columns()) != 2 {
		t.Errorf("empty table mangled: %+v", back)
	}
}

// TestHistogramLog2Buckets pins the cumulative power-of-two export the
// service /metrics endpoint renders: bounds ascend, counts are
// cumulative and end at Count(), every sample sits at or below its
// bucket's bound (up to the documented one-octave quantization for
// samples exactly on a power of two), and non-positive samples occupy
// a leading bound-0 bucket.
func TestHistogramLog2Buckets(t *testing.T) {
	var h Histogram
	if h.Log2Buckets() != nil {
		t.Error("empty histogram should export nil buckets")
	}
	samples := []float64{0.3, 0.7, 1.5, 1.5, 3, 6, 6.5, 100, -2, 0}
	var sum float64
	for _, v := range samples {
		h.Observe(v)
		sum += v
	}
	if got := h.Sum(); !almostEqual(got, sum) {
		t.Errorf("Sum = %v, want %v", got, sum)
	}
	bk := h.Log2Buckets()
	if len(bk) == 0 {
		t.Fatal("no buckets")
	}
	if bk[0].UpperBound != 0 || bk[0].Count != 2 {
		t.Errorf("non-positive bucket = %+v, want bound 0 count 2", bk[0])
	}
	for i := 1; i < len(bk); i++ {
		if bk[i].UpperBound <= bk[i-1].UpperBound {
			t.Errorf("bounds not ascending: %v after %v", bk[i].UpperBound, bk[i-1].UpperBound)
		}
		if bk[i].Count < bk[i-1].Count {
			t.Errorf("counts not cumulative: %d after %d", bk[i].Count, bk[i-1].Count)
		}
		if frac, _ := math.Frexp(bk[i].UpperBound); frac != 0.5 {
			t.Errorf("bound %v is not a power of two", bk[i].UpperBound)
		}
	}
	last := bk[len(bk)-1]
	if last.Count != uint64(h.Count()) {
		t.Errorf("final cumulative count %d != Count() %d", last.Count, h.Count())
	}
	// Cross-check each cumulative count against the raw samples, with
	// the documented power-of-two edge counting one bucket up.
	for _, b := range bk {
		var want uint64
		for _, v := range samples {
			if v < b.UpperBound || v <= 0 && b.UpperBound >= 0 {
				want++
			}
		}
		if b.Count != want {
			t.Errorf("bucket le=%v count=%d, want %d", b.UpperBound, b.Count, want)
		}
	}
}
