// Package stats provides the counters and derived metrics shared by
// every simulator component: misses per kilo-instruction, IPC, geometric
// means over benchmark suites, and plain-text table rendering for the
// experiment harnesses in internal/experiments.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// MPKI returns events per thousand instructions. A zero instruction
// count yields 0 rather than NaN so partially-warmed runs stay printable.
func MPKI(events, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(events) * 1000 / float64(instructions)
}

// IPC returns instructions per cycle, 0 when cycles is 0.
func IPC(instructions, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(instructions) / float64(cycles)
}

// Speedup returns the relative speedup of ipc over base as a fraction
// (0.057 for +5.7%).
func Speedup(ipc, base float64) float64 {
	if base == 0 {
		return 0
	}
	return ipc/base - 1
}

// Geomean returns the geometric mean of xs. Non-positive entries are
// clamped to a tiny epsilon so a single degenerate benchmark cannot
// poison a suite aggregate; an empty slice returns 0.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// GeomeanSpeedup aggregates per-benchmark (ipc, base) pairs into a suite
// speedup fraction the way the paper reports geomean speedups: geomean
// of the per-benchmark ratios, minus one.
func GeomeanSpeedup(ipcs, bases []float64) float64 {
	if len(ipcs) != len(bases) || len(ipcs) == 0 {
		return 0
	}
	ratios := make([]float64, len(ipcs))
	for i := range ipcs {
		if bases[i] == 0 {
			ratios[i] = 1
			continue
		}
		ratios[i] = ipcs[i] / bases[i]
	}
	return Geomean(ratios) - 1
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percent formats a fraction as a signed percentage with two decimals.
func Percent(frac float64) string {
	return fmt.Sprintf("%+.2f%%", frac*100)
}

// Counter is a named monotonically-increasing event count.
type Counter struct {
	Name  string
	Value uint64
}

// Set is an ordered collection of named counters. The zero value is
// ready to use.
type Set struct {
	order []string
	vals  map[string]uint64
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{vals: make(map[string]uint64)}
}

// Add increments the named counter by n, creating it on first use.
func (s *Set) Add(name string, n uint64) {
	if s.vals == nil {
		s.vals = make(map[string]uint64)
	}
	if _, ok := s.vals[name]; !ok {
		s.order = append(s.order, name)
	}
	s.vals[name] += n
}

// Inc increments the named counter by one.
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Get returns the counter value, 0 if absent.
func (s *Set) Get(name string) uint64 {
	if s.vals == nil {
		return 0
	}
	return s.vals[name]
}

// Counters returns the counters in insertion order.
func (s *Set) Counters() []Counter {
	out := make([]Counter, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, Counter{Name: n, Value: s.vals[n]})
	}
	return out
}

// Reset zeroes all counters while preserving their registration order.
func (s *Set) Reset() {
	for k := range s.vals {
		s.vals[k] = 0
	}
}

// Merge adds all of other's counters into s.
func (s *Set) Merge(other *Set) {
	if other == nil {
		return
	}
	for _, c := range other.Counters() {
		s.Add(c.Name, c.Value)
	}
}

// Table renders aligned plain-text tables for the experiment harnesses.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each cell with fmt.Sprint for
// convenience with mixed types.
func (t *Table) AddRowf(cells ...any) {
	ss := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			ss[i] = fmt.Sprintf("%.3f", v)
		default:
			ss[i] = fmt.Sprint(c)
		}
	}
	t.AddRow(ss...)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Histogram tracks a distribution of integer samples for diagnostics
// such as branch re-reference distances.
type Histogram struct {
	samples []float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.samples = append(h.samples, v) }

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Quantile returns the q-th quantile (0 <= q <= 1) of the observed
// samples, 0 if empty.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(h.samples))
	copy(sorted, h.samples)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := q * float64(len(sorted)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean of observed samples.
func (h *Histogram) Mean() float64 { return Mean(h.samples) }
