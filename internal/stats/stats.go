// Package stats provides the counters and derived metrics shared by
// every simulator component: misses per kilo-instruction, IPC, geometric
// means over benchmark suites, and plain-text table rendering for the
// experiment harnesses in internal/experiments.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// MPKI returns events per thousand instructions. A zero instruction
// count yields 0 rather than NaN so partially-warmed runs stay printable.
func MPKI(events, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(events) * 1000 / float64(instructions)
}

// IPC returns instructions per cycle, 0 when cycles is 0.
func IPC(instructions, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(instructions) / float64(cycles)
}

// Speedup returns the relative speedup of ipc over base as a fraction
// (0.057 for +5.7%).
func Speedup(ipc, base float64) float64 {
	if base == 0 {
		return 0
	}
	return ipc/base - 1
}

// Geomean returns the geometric mean of xs. Non-positive entries are
// clamped to a tiny epsilon so a single degenerate benchmark cannot
// poison a suite aggregate; an empty slice returns 0.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// GeomeanSpeedup aggregates per-benchmark (ipc, base) pairs into a suite
// speedup fraction the way the paper reports geomean speedups: geomean
// of the per-benchmark ratios, minus one.
func GeomeanSpeedup(ipcs, bases []float64) float64 {
	if len(ipcs) != len(bases) || len(ipcs) == 0 {
		return 0
	}
	ratios := make([]float64, len(ipcs))
	for i := range ipcs {
		if bases[i] == 0 {
			ratios[i] = 1
			continue
		}
		ratios[i] = ipcs[i] / bases[i]
	}
	return Geomean(ratios) - 1
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percent formats a fraction as a signed percentage with two decimals.
func Percent(frac float64) string {
	return fmt.Sprintf("%+.2f%%", frac*100)
}

// Counter is a named monotonically-increasing event count.
type Counter struct {
	Name  string
	Value uint64
}

// Set is an ordered collection of named counters. The zero value is
// ready to use.
type Set struct {
	order []string
	vals  map[string]uint64
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{vals: make(map[string]uint64)}
}

// Add increments the named counter by n, creating it on first use.
func (s *Set) Add(name string, n uint64) {
	if s.vals == nil {
		s.vals = make(map[string]uint64)
	}
	if _, ok := s.vals[name]; !ok {
		s.order = append(s.order, name)
	}
	s.vals[name] += n
}

// Inc increments the named counter by one.
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Get returns the counter value, 0 if absent.
func (s *Set) Get(name string) uint64 {
	if s.vals == nil {
		return 0
	}
	return s.vals[name]
}

// Counters returns the counters in insertion order.
func (s *Set) Counters() []Counter {
	out := make([]Counter, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, Counter{Name: n, Value: s.vals[n]})
	}
	return out
}

// Reset zeroes all counters while preserving their registration order.
func (s *Set) Reset() {
	for k := range s.vals {
		s.vals[k] = 0
	}
}

// Merge adds all of other's counters into s.
func (s *Set) Merge(other *Set) {
	if other == nil {
		return
	}
	for _, c := range other.Counters() {
		s.Add(c.Name, c.Value)
	}
}

// CellKind discriminates the two Table cell types carried through the
// JSON serialization: free-form strings and numeric values.
type CellKind string

const (
	// CellStr is a label cell (benchmark name, config name, …).
	CellStr CellKind = "str"
	// CellNum is a numeric cell: it carries both the machine-readable
	// value and the rendered text used by the plain-text output.
	CellNum CellKind = "num"
)

// Cell is one typed table cell. Text is always the rendered form; for
// CellNum cells Value holds the underlying number so tools such as
// cmd/skiacmp can diff results without re-parsing formatted strings.
type Cell struct {
	Kind  CellKind
	Text  string
	Value float64
}

// Str builds a string cell.
func Str(s string) Cell { return Cell{Kind: CellStr, Text: s} }

// Num builds a numeric cell with an explicit rendering.
func Num(v float64, text string) Cell { return Cell{Kind: CellNum, Text: text, Value: v} }

type cellJSON struct {
	Kind  CellKind `json:"kind"`
	Text  string   `json:"text"`
	Value *float64 `json:"value,omitempty"`
}

// MarshalJSON emits {"kind","text"} for string cells and adds "value"
// for numeric cells.
func (c Cell) MarshalJSON() ([]byte, error) {
	j := cellJSON{Kind: c.Kind, Text: c.Text}
	if c.Kind == CellNum {
		v := c.Value
		j.Value = &v
	}
	return json.Marshal(j)
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (c *Cell) UnmarshalJSON(b []byte) error {
	var j cellJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	switch j.Kind {
	case CellStr, CellNum:
	default:
		return fmt.Errorf("stats: unknown cell kind %q", j.Kind)
	}
	*c = Cell{Kind: j.Kind, Text: j.Text}
	if j.Value != nil {
		c.Value = *j.Value
	}
	return nil
}

// Units a Column can declare. The unit tells consumers how to interpret
// a numeric column; UnitSpeedup additionally marks the sign as a
// "who wins" result, which cmd/skiacmp watches for flips.
const (
	UnitNone    = ""        // labels and untyped columns
	UnitCount   = "count"   // raw event counts
	UnitMPKI    = "mpki"    // events per kilo-instruction
	UnitIPC     = "ipc"     // instructions per cycle
	UnitFrac    = "frac"    // fraction of a whole (rendered raw or as a percent)
	UnitSpeedup = "speedup" // signed fraction; sign encodes who wins
	UnitKB      = "kb"      // kilobytes of storage
)

// Column describes one table column.
type Column struct {
	Name string `json:"name"`
	Unit string `json:"unit,omitempty"`
}

// Table renders aligned plain-text tables for the experiment harnesses
// and serializes to JSON with typed cells and per-column units.
type Table struct {
	cols []Column
	rows [][]Cell
}

// NewTable creates a table with the given column headers (no units).
func NewTable(header ...string) *Table {
	cols := make([]Column, len(header))
	for i, h := range header {
		cols[i] = Column{Name: h}
	}
	return &Table{cols: cols}
}

// SetUnits assigns units to the columns in order; extra units are
// dropped and unnamed trailing columns keep UnitNone. It returns the
// table for chaining with NewTable.
func (t *Table) SetUnits(units ...string) *Table {
	for i, u := range units {
		if i >= len(t.cols) {
			break
		}
		t.cols[i].Unit = u
	}
	return t
}

// Columns returns a copy of the column descriptors.
func (t *Table) Columns() []Column {
	return append([]Column(nil), t.cols...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns a copy of data row i.
func (t *Table) Row(i int) []Cell {
	return append([]Cell(nil), t.rows[i]...)
}

// AddCells appends a typed row; cells beyond the header width are
// dropped and missing cells render empty.
func (t *Table) AddCells(cells ...Cell) {
	row := make([]Cell, len(t.cols))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		} else {
			row[i] = Str("")
		}
	}
	t.rows = append(t.rows, row)
}

// AddRow appends a row of string cells; cells beyond the header width
// are dropped and missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	typed := make([]Cell, len(cells))
	for i, c := range cells {
		typed[i] = Str(c)
	}
	t.AddCells(typed...)
}

// AddRowf appends a row formatting each cell for convenience with
// mixed types. Numeric arguments become CellNum cells (floats rendered
// with three decimals), everything else a string cell via fmt.Sprint.
func (t *Table) AddRowf(cells ...any) {
	typed := make([]Cell, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			typed[i] = Num(v, fmt.Sprintf("%.3f", v))
		case int:
			typed[i] = Num(float64(v), fmt.Sprint(v))
		case uint64:
			typed[i] = Num(float64(v), fmt.Sprint(v))
		default:
			typed[i] = Str(fmt.Sprint(c))
		}
	}
	t.AddCells(typed...)
}

type tableJSON struct {
	Columns []Column `json:"columns"`
	Rows    [][]Cell `json:"rows"`
}

// MarshalJSON serializes the table as {"columns":[...],"rows":[[...]]}.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]Cell{}
	}
	return json.Marshal(tableJSON{Columns: t.cols, Rows: rows})
}

// UnmarshalJSON is the inverse of MarshalJSON; it validates that every
// row matches the column count.
func (t *Table) UnmarshalJSON(b []byte) error {
	var j tableJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	for i, r := range j.Rows {
		if len(r) != len(j.Columns) {
			return fmt.Errorf("stats: table row %d has %d cells, want %d", i, len(r), len(j.Columns))
		}
	}
	t.cols = j.Columns
	t.rows = j.Rows
	return nil
}

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.cols))
	for i, c := range t.cols {
		widths[i] = len(c.Name)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c.Text) > widths[i] {
				widths[i] = len(c.Text)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	header := make([]string, len(t.cols))
	for i, c := range t.cols {
		header[i] = c.Name
	}
	writeRow(header)
	sep := make([]string, len(t.cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		texts := make([]string, len(r))
		for i, c := range r {
			texts[i] = c.Text
		}
		writeRow(texts)
	}
	return b.String()
}

// histSubBuckets is the linear sub-division of each power-of-two
// bucket. 32 sub-buckets bound the relative quantile error of a
// positive sample by half a sub-bucket width: 1/64 ≈ 1.6% (see
// HistogramMaxRelError).
const histSubBuckets = 32

// HistogramMaxRelError bounds the relative error of Quantile for
// positive samples: each log2 bucket is split into histSubBuckets
// linear sub-buckets and a sample is reported as its sub-bucket
// midpoint, so the error is at most half a sub-bucket width relative
// to the bucket's lower bound.
const HistogramMaxRelError = 1.0 / (2 * histSubBuckets)

// Histogram tracks a sample distribution in streaming log2-bucket
// storage: O(1) per Observe and memory bounded by the value range
// (one counter per occupied log-linear bucket), never by the sample
// count. Mean, Count, and the extreme quantiles (q<=0, q>=1) are
// exact; interior quantiles of positive samples are accurate to
// HistogramMaxRelError. Non-positive samples share a single bucket
// represented by their running mean (the diagnostics this backs —
// distances, occupancies, lifetimes — are non-negative). The zero
// value is ready to use.
type Histogram struct {
	count    uint64
	sum      float64
	min, max float64
	// buckets maps exp*histSubBuckets+sub -> count for positive
	// samples, where v = frac*2^exp (math.Frexp) and sub linearly
	// sub-divides frac's [0.5, 1) range.
	buckets map[int]uint64
	// nonPos counts samples <= 0; nonPosSum tracks their mean.
	nonPos    uint64
	nonPosSum float64
}

// bucketKey maps a positive sample to its log-linear bucket key.
func bucketKey(v float64) int {
	frac, exp := math.Frexp(v) // frac in [0.5, 1)
	sub := int((frac - 0.5) * (2 * histSubBuckets))
	if sub >= histSubBuckets {
		sub = histSubBuckets - 1
	}
	return exp*histSubBuckets + sub
}

// bucketMid returns the representative (midpoint) value of a key.
func bucketMid(key int) float64 {
	exp := key / histSubBuckets
	sub := key % histSubBuckets
	if sub < 0 { // Go rounds toward zero; normalize negative exps
		exp--
		sub += histSubBuckets
	}
	frac := 0.5 + (float64(sub)+0.5)/(2*histSubBuckets)
	return math.Ldexp(frac, exp)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v <= 0 {
		h.nonPos++
		h.nonPosSum += v
		return
	}
	if h.buckets == nil {
		h.buckets = make(map[int]uint64)
	}
	h.buckets[bucketKey(v)]++
}

// Merge folds every sample recorded in other into h, leaving other
// unchanged. The merge is exact with respect to the histogram's own
// storage: bucket counts, the non-positive lane, count, sum, and the
// min/max extremes all add, so quantiles of the merged histogram equal
// quantiles of a histogram that observed both sample streams directly
// (merge-then-quantile == quantile-of-merged). internal/store relies
// on this to roll per-spec history series up into per-experiment
// distributions without re-observing raw samples.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	h.nonPos += other.nonPos
	h.nonPosSum += other.nonPosSum
	if len(other.buckets) > 0 && h.buckets == nil {
		h.buckets = make(map[int]uint64, len(other.buckets))
	}
	//skia:detmap-ok commutative += accumulation; no ordered output
	for k, n := range other.buckets {
		h.buckets[k] += n
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return int(h.count) }

// Quantile returns the q-th quantile (0 <= q <= 1) of the observed
// samples, 0 if empty. Endpoints are exact; interior quantiles of
// positive samples carry at most HistogramMaxRelError relative error.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// Rank of the requested quantile, matching the sorted-sample
	// definition idx = q*(n-1) rounded to the containing sample.
	rank := uint64(q * float64(h.count-1))
	var seen uint64
	// The non-positive bucket sorts before every positive bucket.
	if h.nonPos > 0 {
		seen += h.nonPos
		if rank < seen {
			return h.nonPosSum / float64(h.nonPos)
		}
	}
	keys := make([]int, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		seen += h.buckets[k]
		if rank < seen {
			v := bucketMid(k)
			// Clamp to the observed range so endpoint buckets cannot
			// report values outside [min, max].
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Sum returns the exact sum of observed samples (0 when empty).
func (h *Histogram) Sum() float64 { return h.sum }

// Bucket is one cumulative bucket of an exported histogram view:
// Count samples were ≤ UpperBound. The slice form is the
// Prometheus-style cumulative rendering internal/serve writes to
// /metrics.
type Bucket struct {
	// UpperBound is the bucket's upper bound.
	UpperBound float64
	// Count is cumulative: the number of samples at or below
	// UpperBound (up to the log2 quantization noted on Log2Buckets).
	Count uint64
}

// Log2Buckets exports the histogram as cumulative power-of-two
// buckets, ascending, ending with a bucket whose Count equals Count().
// Non-positive samples report under an UpperBound-0 bucket; each
// positive sample v lands in the bucket with UpperBound 2^ceil(log2 v)
// — samples exactly on a power of two are counted one bucket up, an
// at-most-one-octave quantization that matches the histogram's
// internal log-linear storage. Returns nil when empty.
func (h *Histogram) Log2Buckets() []Bucket {
	if h.count == 0 {
		return nil
	}
	// Merge the 32 linear sub-buckets of each octave into one bound.
	byExp := make(map[int]uint64)
	//skia:detmap-ok commutative += accumulation; exps are sorted before any ordered output
	for k, n := range h.buckets {
		exp := k / histSubBuckets
		if k < 0 && k%histSubBuckets != 0 { // Go truncates toward zero
			exp--
		}
		byExp[exp] += n
	}
	exps := make([]int, 0, len(byExp))
	for e := range byExp {
		exps = append(exps, e)
	}
	sort.Ints(exps)
	out := make([]Bucket, 0, len(exps)+1)
	var cum uint64
	if h.nonPos > 0 {
		cum = h.nonPos
		out = append(out, Bucket{UpperBound: 0, Count: cum})
	}
	for _, e := range exps {
		cum += byExp[e]
		out = append(out, Bucket{UpperBound: math.Ldexp(1, e), Count: cum})
	}
	return out
}

// Mean returns the exact arithmetic mean of observed samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the exact observed extremes (0 when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact maximum observed sample (0 when empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}
