package btb

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

func small() *BTB {
	return MustNew(Config{Entries: 64, Ways: 4, TagBits: 16})
}

func TestNewValidation(t *testing.T) {
	bads := []Config{
		{Entries: 0, Ways: 4, TagBits: 10},
		{Entries: 64, Ways: 0, TagBits: 10},
		{Entries: 63, Ways: 4, TagBits: 10},
		{Entries: 96, Ways: 4, TagBits: 10}, // 24 sets, not pow2
		{Entries: 64, Ways: 4, TagBits: 0},
		{Entries: 64, Ways: 4, TagBits: 50},
	}
	for i, c := range bads {
		if _, err := New(c); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestStorageBits(t *testing.T) {
	// Paper: 8K-entry BTB = 78KB.
	bits := DefaultConfig().StorageBits()
	kb := float64(bits) / 8 / 1024
	if kb < 77 || kb > 79 {
		t.Errorf("8K BTB storage = %.2f KB, want ~78", kb)
	}
	if (Config{Infinite: true}).StorageBits() != 0 {
		t.Error("infinite BTB should report 0 storage")
	}
}

func TestInsertLookup(t *testing.T) {
	b := small()
	e := Entry{Target: 0x2000, FallThrough: 0x1005, Class: isa.ClassCall}
	b.Insert(0x1000, e)
	got, ok := b.Lookup(0x1000)
	if !ok || got != e {
		t.Fatalf("lookup = %+v, %v", got, ok)
	}
	if _, ok := b.Lookup(0x1040); ok {
		t.Error("phantom hit")
	}
	s := b.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Inserts != 1 || s.Lookups != 2 {
		t.Errorf("stats %+v", s)
	}
}

func TestUpdateInPlace(t *testing.T) {
	b := small()
	b.Insert(0x1000, Entry{Target: 1})
	b.Insert(0x1000, Entry{Target: 2})
	e, _ := b.Lookup(0x1000)
	if e.Target != 2 {
		t.Errorf("target = %d", e.Target)
	}
	if b.Stats().Updates != 1 {
		t.Errorf("updates = %d", b.Stats().Updates)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 4 ways per set; pcs that collide in one set: with 16 sets, stride
	// 16 in line-pc space... index uses low bits of pc directly.
	b := small()                               // 16 sets
	pcs := []uint64{0x10, 0x110, 0x210, 0x310} // all set 0 (low 4 bits = 0)
	for _, pc := range pcs {
		b.Insert(pc, Entry{Target: pc + 1})
	}
	b.Lookup(pcs[0])                      // refresh 0x10
	b.Insert(0x410, Entry{Target: 0x411}) // must evict 0x110 (LRU)
	if _, ok := b.Probe(pcs[0]); !ok {
		t.Error("refreshed entry evicted")
	}
	if _, ok := b.Probe(pcs[1]); ok {
		t.Error("LRU entry survived")
	}
	if b.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", b.Stats().Evictions)
	}
}

func TestProbeNoSideEffects(t *testing.T) {
	b := small()
	b.Insert(0x1000, Entry{Target: 5})
	before := b.Stats()
	if _, ok := b.Probe(0x1000); !ok {
		t.Error("probe missed")
	}
	if b.Stats() != before {
		t.Error("probe changed stats")
	}
}

func TestInvalidate(t *testing.T) {
	b := small()
	b.Insert(0x1000, Entry{Target: 5})
	b.Invalidate(0x1000)
	if _, ok := b.Probe(0x1000); ok {
		t.Error("entry survived invalidate")
	}
	b.Invalidate(0x9999) // absent: no panic
}

func TestPartialTagAliasing(t *testing.T) {
	// With a 4-bit tag and 16 sets, pcs 0x10 and 0x10 + 16*16 (same set,
	// same tag modulo 4 bits after a 2^8 stride) alias.
	b := MustNew(Config{Entries: 64, Ways: 4, TagBits: 4})
	pcA := uint64(0x0_10)
	pcB := pcA + (1 << (4 + 4)) // same set bits, tag differs only above 4 bits
	b.Insert(pcA, Entry{Target: 111})
	e, ok := b.Lookup(pcB)
	if !ok || e.Target != 111 {
		t.Errorf("expected alias hit with wrong target, got ok=%v e=%+v", ok, e)
	}
}

func TestInfinite(t *testing.T) {
	b := MustNew(Config{Infinite: true})
	for pc := uint64(0); pc < 100_000; pc += 7 {
		b.Insert(pc, Entry{Target: pc * 2})
	}
	for pc := uint64(0); pc < 100_000; pc += 7 {
		e, ok := b.Lookup(pc)
		if !ok || e.Target != pc*2 {
			t.Fatalf("infinite BTB lost %#x", pc)
		}
	}
	b.Invalidate(0)
	if _, ok := b.Probe(0); ok {
		t.Error("invalidate failed on infinite BTB")
	}
	if _, ok := b.Probe(3); ok {
		t.Error("phantom in infinite BTB")
	}
}

func TestResetStats(t *testing.T) {
	b := small()
	b.Insert(1, Entry{})
	b.Lookup(1)
	b.ResetStats()
	if b.Stats() != (Stats{}) {
		t.Error("stats not reset")
	}
	if _, ok := b.Probe(1); !ok {
		t.Error("reset dropped contents")
	}
}

func TestCapacityBehaviour(t *testing.T) {
	// Inserting far more unique branches than entries must evict; the
	// survivor count equals capacity.
	cfg := Config{Entries: 256, Ways: 4, TagBits: 20}
	b := MustNew(cfg)
	n := 4096
	rng := rand.New(rand.NewSource(1))
	pcs := make([]uint64, n)
	for i := range pcs {
		pcs[i] = uint64(rng.Intn(1 << 20))
		b.Insert(pcs[i], Entry{Target: 1})
	}
	resident := 0
	seen := map[uint64]bool{}
	for _, pc := range pcs {
		if seen[pc] {
			continue
		}
		seen[pc] = true
		if _, ok := b.Probe(pc); ok {
			resident++
		}
	}
	if resident > cfg.Entries {
		t.Errorf("%d resident > %d capacity", resident, cfg.Entries)
	}
	if resident < cfg.Entries/2 {
		t.Errorf("only %d resident of %d capacity", resident, cfg.Entries)
	}
}
