package btb

import (
	"math/rand"
	"testing"
)

// TestInfTableMatchesMap drives the open-addressed infinite-BTB table
// against a reference map through a random mix of inserts, updates,
// deletes, and lookups, crossing several growth thresholds. Keys are
// drawn from a small space so probe chains collide and backward-shift
// deletion is exercised in anger.
func TestInfTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := newInfTable()
	ref := make(map[uint64]Entry)

	key := func() uint64 { return uint64(rng.Intn(3 * infInitialSlots)) }
	for op := 0; op < 200_000; op++ {
		switch rng.Intn(4) {
		case 0, 1: // insert/update
			pc := key()
			e := Entry{Target: rng.Uint64(), FallThrough: pc + 4}
			_, present := ref[pc]
			if updated := tab.put(pc, e); updated != present {
				t.Fatalf("op %d: put(%#x) updated=%v, want %v", op, pc, updated, present)
			}
			ref[pc] = e
		case 2: // delete
			pc := key()
			tab.del(pc)
			delete(ref, pc)
		case 3: // lookup
			pc := key()
			got, ok := tab.get(pc)
			want, present := ref[pc]
			if ok != present || got != want {
				t.Fatalf("op %d: get(%#x) = %+v,%v want %+v,%v", op, pc, got, ok, want, present)
			}
		}
		if tab.n != len(ref) {
			t.Fatalf("op %d: size %d, want %d", op, tab.n, len(ref))
		}
	}
	// Full sweep: every reference key resolves, nothing extra survives.
	for pc, want := range ref {
		got, ok := tab.get(pc)
		if !ok || got != want {
			t.Fatalf("final: get(%#x) = %+v,%v want %+v,true", pc, got, ok, want)
		}
	}
}

// TestInfiniteBTBNeverEvicts pins the infinite configuration's
// contract: everything inserted stays retrievable with full precision.
func TestInfiniteBTBNeverEvicts(t *testing.T) {
	b := MustNew(Config{Infinite: true})
	const n = 100_000
	for i := uint64(0); i < n; i++ {
		b.Insert(i*8, Entry{Target: i, FallThrough: i*8 + 4})
	}
	for i := uint64(0); i < n; i++ {
		e, ok := b.Probe(i * 8)
		if !ok || e.Target != i {
			t.Fatalf("lost entry %d: %+v %v", i, e, ok)
		}
	}
	if s := b.Stats(); s.Evictions != 0 {
		t.Fatalf("infinite BTB evicted: %+v", s)
	}
}
