// Package btb models the Branch Target Buffer: the set-associative
// structure the Branch Prediction Unit consults to discover that a fetch
// region contains a branch and where that branch goes. Its capacity is
// the central bottleneck the paper attacks — contemporary commercial
// workloads overflow even an 8K-entry BTB, and the overflow victims are
// exactly the "cold" branches Skia recovers from cache-line shadows.
//
// Entry layout follows the paper's Figure 12: a 10-bit partial tag, a
// valid bit, per-way LRU state, 2 bits of branch type, and a full
// 64-bit target. Partial tags make aliasing possible (a hit that returns
// the wrong branch's target), which the front-end handles as a decode
// resteer, exactly like real hardware.
package btb

import (
	"fmt"

	"repro/internal/isa"
)

// Entry is one BTB entry's payload.
type Entry struct {
	// Target is the predicted branch target.
	Target uint64
	// FallThrough is the address of the instruction after the branch
	// (hardware stores this as a small end-offset; the IAG needs it to
	// continue past not-taken conditionals and to push return addresses
	// for calls).
	FallThrough uint64
	// Class is the branch type (2 bits in hardware).
	Class isa.Class
}

type way struct {
	tag   uint64
	valid bool
	lru   uint64
	e     Entry
}

// Config sizes a BTB.
type Config struct {
	// Entries is the total entry count (power of two).
	Entries int
	// Ways is the associativity.
	Ways int
	// TagBits is the partial tag width (paper: 10).
	TagBits int
	// Infinite disables capacity limits: every inserted branch is
	// retained with full-precision tags (the paper's "Infinite, Fully
	// Associative BTB" upper bound in Figure 3).
	Infinite bool
}

// DefaultConfig is the paper's nominal 8K-entry, 4-way BTB.
func DefaultConfig() Config {
	return Config{Entries: 8192, Ways: 4, TagBits: 10}
}

// StorageBits returns the hardware budget of the configured BTB in bits,
// using the paper's per-entry cost: tag + valid + LRU + 2-bit type +
// 64-bit target. An 8K-entry BTB costs 78KB, matching the paper.
func (c Config) StorageBits() int {
	if c.Infinite {
		return 0
	}
	perEntry := c.TagBits + 1 + 1 + 2 + 64
	return c.Entries * perEntry
}

// Stats counts BTB events.
type Stats struct {
	Lookups   uint64
	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Updates   uint64 // insert found the entry present; target refreshed
	Evictions uint64
}

// BTB is the branch target buffer. Not safe for concurrent use.
type BTB struct {
	cfg     Config
	sets    [][]way
	setMask uint64
	tagMask uint64
	tick    uint64
	inf     map[uint64]Entry
	stats   Stats
}

// New builds a BTB from cfg.
func New(cfg Config) (*BTB, error) {
	if cfg.Infinite {
		return &BTB{cfg: cfg, inf: make(map[uint64]Entry)}, nil
	}
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		return nil, fmt.Errorf("btb: bad geometry %d entries / %d ways", cfg.Entries, cfg.Ways)
	}
	nsets := cfg.Entries / cfg.Ways
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("btb: set count %d not a power of two", nsets)
	}
	if cfg.TagBits <= 0 || cfg.TagBits > 40 {
		return nil, fmt.Errorf("btb: tag width %d out of range", cfg.TagBits)
	}
	b := &BTB{
		cfg:     cfg,
		sets:    make([][]way, nsets),
		setMask: uint64(nsets - 1),
		tagMask: (1 << uint(cfg.TagBits)) - 1,
	}
	for i := range b.sets {
		b.sets[i] = make([]way, cfg.Ways)
	}
	return b, nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *BTB {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

func (b *BTB) index(pc uint64) (int, uint64) {
	set := int(pc & b.setMask)
	tag := (pc >> uint(popcount(b.setMask))) & b.tagMask
	return set, tag
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Lookup probes the BTB at pc, updating LRU on hit.
func (b *BTB) Lookup(pc uint64) (Entry, bool) {
	b.stats.Lookups++
	if b.inf != nil {
		e, ok := b.inf[pc]
		if ok {
			b.stats.Hits++
		} else {
			b.stats.Misses++
		}
		return e, ok
	}
	set, tag := b.index(pc)
	for w := range b.sets[set] {
		wy := &b.sets[set][w]
		if wy.valid && wy.tag == tag {
			b.tick++
			wy.lru = b.tick
			b.stats.Hits++
			return wy.e, true
		}
	}
	b.stats.Misses++
	return Entry{}, false
}

// Probe checks presence without LRU update or stats, for measurement
// harnesses.
func (b *BTB) Probe(pc uint64) (Entry, bool) {
	if b.inf != nil {
		e, ok := b.inf[pc]
		return e, ok
	}
	set, tag := b.index(pc)
	for w := range b.sets[set] {
		wy := &b.sets[set][w]
		if wy.valid && wy.tag == tag {
			return wy.e, true
		}
	}
	return Entry{}, false
}

// Insert installs or refreshes the entry for the branch at pc.
func (b *BTB) Insert(pc uint64, e Entry) {
	b.stats.Inserts++
	if b.inf != nil {
		if _, ok := b.inf[pc]; ok {
			b.stats.Updates++
		}
		b.inf[pc] = e
		return
	}
	set, tag := b.index(pc)
	b.tick++
	for w := range b.sets[set] {
		wy := &b.sets[set][w]
		if wy.valid && wy.tag == tag {
			wy.e = e
			wy.lru = b.tick
			b.stats.Updates++
			return
		}
	}
	// Replace invalid way first, else LRU.
	victim := -1
	var vlru uint64 = ^uint64(0)
	for w := range b.sets[set] {
		wy := &b.sets[set][w]
		if !wy.valid {
			victim = w
			break
		}
		if wy.lru < vlru {
			victim, vlru = w, wy.lru
		}
	}
	if b.sets[set][victim].valid {
		b.stats.Evictions++
	}
	b.sets[set][victim] = way{tag: tag, valid: true, lru: b.tick, e: e}
}

// Invalidate removes the entry for pc if present.
func (b *BTB) Invalidate(pc uint64) {
	if b.inf != nil {
		delete(b.inf, pc)
		return
	}
	set, tag := b.index(pc)
	for w := range b.sets[set] {
		wy := &b.sets[set][w]
		if wy.valid && wy.tag == tag {
			*wy = way{}
		}
	}
}

// Stats returns accumulated counts.
func (b *BTB) Stats() Stats { return b.stats }

// ResetStats zeroes statistics, preserving contents.
func (b *BTB) ResetStats() { b.stats = Stats{} }

// Config returns the construction configuration.
func (b *BTB) Config() Config { return b.cfg }
