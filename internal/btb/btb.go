// Package btb models the Branch Target Buffer: the set-associative
// structure the Branch Prediction Unit consults to discover that a fetch
// region contains a branch and where that branch goes. Its capacity is
// the central bottleneck the paper attacks — contemporary commercial
// workloads overflow even an 8K-entry BTB, and the overflow victims are
// exactly the "cold" branches Skia recovers from cache-line shadows.
//
// Entry layout follows the paper's Figure 12: a 10-bit partial tag, a
// valid bit, per-way LRU state, 2 bits of branch type, and a full
// 64-bit target. Partial tags make aliasing possible (a hit that returns
// the wrong branch's target), which the front-end handles as a decode
// resteer, exactly like real hardware.
package btb

import (
	"fmt"

	"repro/internal/isa"
)

// Entry is one BTB entry's payload.
type Entry struct {
	// Target is the predicted branch target.
	Target uint64
	// FallThrough is the address of the instruction after the branch
	// (hardware stores this as a small end-offset; the IAG needs it to
	// continue past not-taken conditionals and to push return addresses
	// for calls).
	FallThrough uint64
	// Class is the branch type (2 bits in hardware).
	Class isa.Class
}

type way struct {
	tag   uint64
	valid bool
	lru   uint64
	e     Entry
}

// Config sizes a BTB.
type Config struct {
	// Entries is the total entry count (power of two).
	Entries int
	// Ways is the associativity.
	Ways int
	// TagBits is the partial tag width (paper: 10).
	TagBits int
	// Infinite disables capacity limits: every inserted branch is
	// retained with full-precision tags (the paper's "Infinite, Fully
	// Associative BTB" upper bound in Figure 3).
	Infinite bool
}

// DefaultConfig is the paper's nominal 8K-entry, 4-way BTB.
func DefaultConfig() Config {
	return Config{Entries: 8192, Ways: 4, TagBits: 10}
}

// StorageBits returns the hardware budget of the configured BTB in bits,
// using the paper's per-entry cost: tag + valid + LRU + 2-bit type +
// 64-bit target. An 8K-entry BTB costs 78KB, matching the paper.
func (c Config) StorageBits() int {
	if c.Infinite {
		return 0
	}
	perEntry := c.TagBits + 1 + 1 + 2 + 64
	return c.Entries * perEntry
}

// Stats counts BTB events.
type Stats struct {
	Lookups   uint64
	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Updates   uint64 // insert found the entry present; target refreshed
	Evictions uint64
}

// infEntry is one slot of the infinite BTB's open-addressed table.
type infEntry struct {
	pc   uint64
	used bool
	e    Entry
}

// infTable is an open-addressed hash table with linear probing and
// backward-shift deletion, replacing the map[uint64]Entry the infinite
// configuration used to pay a hashed map access (plus per-bucket
// pointer chasing) for on every lookup of the simulator's hottest loop.
// Slots live in one flat slice: probes are sequential loads, inserts
// never allocate until the table grows, and deletion keeps probe chains
// intact without tombstones.
type infTable struct {
	slots []infEntry
	n     int
	shift uint // 64 - log2(len(slots)); Fibonacci-hash shift
}

const infInitialSlots = 1 << 12

func newInfTable() *infTable {
	t := &infTable{}
	t.init(infInitialSlots)
	return t
}

func (t *infTable) init(size int) {
	t.slots = make([]infEntry, size)
	t.shift = 64
	for s := 1; s < size; s <<= 1 {
		t.shift--
	}
}

func (t *infTable) home(pc uint64) uint64 {
	return (pc * 0x9E3779B97F4A7C15) >> t.shift
}

func (t *infTable) get(pc uint64) (Entry, bool) {
	mask := uint64(len(t.slots) - 1)
	for i := t.home(pc); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			return Entry{}, false
		}
		if s.pc == pc {
			return s.e, true
		}
	}
}

// put installs or refreshes pc's entry, reporting whether it was
// already present.
func (t *infTable) put(pc uint64, e Entry) bool {
	if t.n*4 >= len(t.slots)*3 {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := t.home(pc); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			*s = infEntry{pc: pc, used: true, e: e}
			t.n++
			return false
		}
		if s.pc == pc {
			s.e = e
			return true
		}
	}
}

// del removes pc's entry with backward-shift deletion: subsequent slots
// in the probe chain move back to fill the hole so no chain is broken.
func (t *infTable) del(pc uint64) {
	mask := uint64(len(t.slots) - 1)
	i := t.home(pc)
	for {
		s := &t.slots[i]
		if !s.used {
			return
		}
		if s.pc == pc {
			break
		}
		i = (i + 1) & mask
	}
	t.n--
	j := i
	for {
		j = (j + 1) & mask
		if !t.slots[j].used {
			break
		}
		// The entry at j may move back into the hole at i only if its
		// home position does not lie (cyclically) between i and j —
		// otherwise the move would strand it before its home.
		home := t.home(t.slots[j].pc)
		if (j-home)&mask >= (j-i)&mask {
			t.slots[i] = t.slots[j]
			i = j
		}
	}
	t.slots[i] = infEntry{}
}

func (t *infTable) grow() {
	old := t.slots
	t.init(len(old) * 2)
	t.n = 0
	for i := range old {
		if old[i].used {
			t.put(old[i].pc, old[i].e)
		}
	}
}

// BTB is the branch target buffer. Not safe for concurrent use.
type BTB struct {
	cfg     Config
	sets    [][]way
	setMask uint64
	tagMask uint64
	tick    uint64
	inf     *infTable
	stats   Stats
}

// New builds a BTB from cfg.
func New(cfg Config) (*BTB, error) {
	if cfg.Infinite {
		return &BTB{cfg: cfg, inf: newInfTable()}, nil
	}
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		return nil, fmt.Errorf("btb: bad geometry %d entries / %d ways", cfg.Entries, cfg.Ways)
	}
	nsets := cfg.Entries / cfg.Ways
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("btb: set count %d not a power of two", nsets)
	}
	if cfg.TagBits <= 0 || cfg.TagBits > 40 {
		return nil, fmt.Errorf("btb: tag width %d out of range", cfg.TagBits)
	}
	b := &BTB{
		cfg:     cfg,
		sets:    make([][]way, nsets),
		setMask: uint64(nsets - 1),
		tagMask: (1 << uint(cfg.TagBits)) - 1,
	}
	for i := range b.sets {
		b.sets[i] = make([]way, cfg.Ways)
	}
	return b, nil
}

// Clone returns an independent deep copy of the BTB: same geometry,
// same resident entries, LRU state, and statistics.
func (b *BTB) Clone() *BTB {
	n := &BTB{
		cfg:     b.cfg,
		setMask: b.setMask,
		tagMask: b.tagMask,
		tick:    b.tick,
		stats:   b.stats,
	}
	if b.inf != nil {
		n.inf = &infTable{
			slots: make([]infEntry, len(b.inf.slots)),
			n:     b.inf.n,
			shift: b.inf.shift,
		}
		copy(n.inf.slots, b.inf.slots)
	}
	if b.sets != nil {
		n.sets = make([][]way, len(b.sets))
		for i, s := range b.sets {
			n.sets[i] = make([]way, len(s))
			copy(n.sets[i], s)
		}
	}
	return n
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *BTB {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

func (b *BTB) index(pc uint64) (int, uint64) {
	set := int(pc & b.setMask)
	tag := (pc >> uint(popcount(b.setMask))) & b.tagMask
	return set, tag
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Lookup probes the BTB at pc, updating LRU on hit.
//skia:noalloc
func (b *BTB) Lookup(pc uint64) (Entry, bool) {
	b.stats.Lookups++
	if b.inf != nil {
		e, ok := b.inf.get(pc)
		if ok {
			b.stats.Hits++
		} else {
			b.stats.Misses++
		}
		return e, ok
	}
	set, tag := b.index(pc)
	for w := range b.sets[set] {
		wy := &b.sets[set][w]
		if wy.valid && wy.tag == tag {
			b.tick++
			wy.lru = b.tick
			b.stats.Hits++
			return wy.e, true
		}
	}
	b.stats.Misses++
	return Entry{}, false
}

// Probe checks presence without LRU update or stats, for measurement
// harnesses.
//skia:noalloc
func (b *BTB) Probe(pc uint64) (Entry, bool) {
	if b.inf != nil {
		return b.inf.get(pc)
	}
	set, tag := b.index(pc)
	for w := range b.sets[set] {
		wy := &b.sets[set][w]
		if wy.valid && wy.tag == tag {
			return wy.e, true
		}
	}
	return Entry{}, false
}

// Insert installs or refreshes the entry for the branch at pc.
//skia:noalloc
func (b *BTB) Insert(pc uint64, e Entry) {
	b.stats.Inserts++
	if b.inf != nil {
		if b.inf.put(pc, e) {
			b.stats.Updates++
		}
		return
	}
	set, tag := b.index(pc)
	b.tick++
	for w := range b.sets[set] {
		wy := &b.sets[set][w]
		if wy.valid && wy.tag == tag {
			wy.e = e
			wy.lru = b.tick
			b.stats.Updates++
			return
		}
	}
	// Replace invalid way first, else LRU.
	victim := -1
	var vlru uint64 = ^uint64(0)
	for w := range b.sets[set] {
		wy := &b.sets[set][w]
		if !wy.valid {
			victim = w
			break
		}
		if wy.lru < vlru {
			victim, vlru = w, wy.lru
		}
	}
	if b.sets[set][victim].valid {
		b.stats.Evictions++
	}
	b.sets[set][victim] = way{tag: tag, valid: true, lru: b.tick, e: e}
}

// Invalidate removes the entry for pc if present.
func (b *BTB) Invalidate(pc uint64) {
	if b.inf != nil {
		b.inf.del(pc)
		return
	}
	set, tag := b.index(pc)
	for w := range b.sets[set] {
		wy := &b.sets[set][w]
		if wy.valid && wy.tag == tag {
			*wy = way{}
		}
	}
}

// Stats returns accumulated counts.
func (b *BTB) Stats() Stats { return b.stats }

// ResetStats zeroes statistics, preserving contents.
func (b *BTB) ResetStats() { b.stats = Stats{} }

// Config returns the construction configuration.
func (b *BTB) Config() Config { return b.cfg }
