package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Spec is the normalized, simulation-affecting identity of a run: the
// experiment plus every option that changes the result table, with
// defaults resolved so "default windows" and "windows spelled out
// explicitly" hash identically. Knobs that cannot change the result
// (worker count, timeouts, the decode-cache toggle — reports are
// identical either way) are deliberately absent.
//
// Field order is the canonical JSON order; the hash is SHA-256 over
// encoding/json's marshal of this struct, which is deterministic
// because struct fields marshal in declaration order.
type Spec struct {
	// Experiment is the catalog ID ("fig14", "table1", …).
	Experiment string `json:"experiment"`
	// WarmupInstructions and MeasureInstructions are the effective
	// per-run windows, defaults resolved (never zero).
	WarmupInstructions  uint64 `json:"warmup_instructions"`
	MeasureInstructions uint64 `json:"measure_instructions"`
	// Benchmarks lists the workloads simulated with their registry
	// seeds, in run order (the suite default resolved).
	Benchmarks []experiments.BenchmarkRef `json:"benchmarks,omitempty"`
	// IntervalInstructions is the interval-metrics window (0 = off).
	IntervalInstructions uint64 `json:"interval_instructions,omitempty"`
	// Attrib records whether BTB-miss attribution was collected.
	Attrib bool `json:"attrib,omitempty"`
	// SampleIntervals, SampleIntervalInstructions,
	// SampleMicroWarmupInstructions, and SampleWarmWindowInstructions
	// are the normalized sampled-simulation plan, all zero for exact
	// runs (a zero warm window means full-distance warming). These
	// change the simulated numbers, so they key the archive. Knobs
	// that provably do not change results — shard count, warmup
	// checkpointing, worker count — are deliberately absent: a sharded
	// and a serial run of the same plan share one trajectory.
	SampleIntervals               int    `json:"sample_intervals,omitempty"`
	SampleIntervalInstructions    uint64 `json:"sample_interval_instructions,omitempty"`
	SampleMicroWarmupInstructions uint64 `json:"sample_micro_warmup_instructions,omitempty"`
	SampleWarmWindowInstructions  uint64 `json:"sample_warm_window_instructions,omitempty"`
	// SampleEcho records whether an exact run published reference
	// sampling rows; like Attrib it changes the report's content (the
	// `sampling` section), so cached reports must not cross it.
	SampleEcho bool `json:"sample_echo,omitempty"`
}

// NewSpec normalizes harness options into a Spec, resolving the
// default instruction windows and the default benchmark suite (with
// registry seeds) so equivalent option spellings produce one hash.
func NewSpec(experiment string, o experiments.Options) Spec {
	s := Spec{
		Experiment:           experiment,
		WarmupInstructions:   o.Warmup,
		MeasureInstructions:  o.Measure,
		IntervalInstructions: o.Interval,
		Attrib:               o.Attrib,
	}
	if s.WarmupInstructions == 0 {
		s.WarmupInstructions = sim.DefaultWarmup
	}
	if s.MeasureInstructions == 0 {
		s.MeasureInstructions = sim.DefaultMeasure
	}
	if o.Sample != nil {
		p := o.Sample.Normalized(s.MeasureInstructions)
		s.SampleIntervals = p.Intervals
		s.SampleIntervalInstructions = p.IntervalInsts
		s.SampleMicroWarmupInstructions = p.MicroWarmup
		s.SampleWarmWindowInstructions = p.WarmWindow
	} else {
		s.SampleEcho = o.SampleEcho
	}
	names := o.Benchmarks
	if len(names) == 0 {
		names = workload.SuiteNames()
	}
	for _, n := range names {
		ref := experiments.BenchmarkRef{Name: n}
		if p, err := workload.ByName(n); err == nil {
			ref.Seed = p.Seed
		}
		s.Benchmarks = append(s.Benchmarks, ref)
	}
	return s
}

// SpecOfReport recovers the spec from a report envelope's metadata.
// Schema v5 envelopes carry everything (the interval window and the
// sample plan included); older envelopes normalize with those features
// off. The
// recovered spec hashes identically to the NewSpec the producer would
// have built, so `skiaboard put` imports join the same trajectory as
// live skiaserve archives.
func SpecOfReport(rep *experiments.Report) Spec {
	s := Spec{
		Experiment:           rep.ID,
		WarmupInstructions:   rep.Meta.WarmupInstructions,
		MeasureInstructions:  rep.Meta.MeasureInstructions,
		Benchmarks:           rep.Meta.Benchmarks,
		IntervalInstructions: rep.Meta.IntervalInstructions,
		Attrib:               len(rep.Attribution) > 0,

		SampleIntervals:               rep.Meta.SampleIntervals,
		SampleIntervalInstructions:    rep.Meta.SampleIntervalInstructions,
		SampleMicroWarmupInstructions: rep.Meta.SampleMicroWarmupInstructions,
		SampleWarmWindowInstructions:  rep.Meta.SampleWarmWindowInstructions,
	}
	for _, row := range rep.Sampling {
		if row.Summary.Exact {
			s.SampleEcho = true
			break
		}
	}
	if s.WarmupInstructions == 0 {
		s.WarmupInstructions = sim.DefaultWarmup
	}
	if s.MeasureInstructions == 0 {
		s.MeasureInstructions = sim.DefaultMeasure
	}
	if len(s.Benchmarks) == 0 {
		// Static-table reports don't stamp benchmarks; normalize to the
		// default suite so they hash like the NewSpec a live producer
		// builds.
		for _, n := range workload.SuiteNames() {
			ref := experiments.BenchmarkRef{Name: n}
			if p, err := workload.ByName(n); err == nil {
				ref.Seed = p.Seed
			}
			s.Benchmarks = append(s.Benchmarks, ref)
		}
	}
	return s
}

// Hash is the spec's canonical-JSON SHA-256, hex-encoded: the key the
// archive, the serve-layer result cache, and skiaboard's trajectory
// grouping all share.
func (s Spec) Hash() string {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data (strings, integers, bool); Marshal cannot
		// fail on it.
		panic("store: spec marshal: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
