package store

import (
	"fmt"
	"sort"

	"repro/internal/benchfmt"
	"repro/internal/compare"
	"repro/internal/experiments"
	"repro/internal/stats"
)

// Metric is one numeric cell of a report table, named the way
// internal/compare names a failing cell: the row's label cells joined
// with "/", then the column name.
type Metric struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit,omitempty"`
	Value float64 `json:"value"`
}

// HistoryPoint is one archived run on an experiment's trajectory.
type HistoryPoint struct {
	RecordID    string   `json:"record_id"`
	SpecHash    string   `json:"spec_hash"`
	ContentHash string   `json:"content_hash"`
	GitDescribe string   `json:"git_describe,omitempty"`
	RecordedAt  string   `json:"recorded_at"`
	Source      string   `json:"source,omitempty"`
	Metrics     []Metric `json:"metrics"`
}

// MetricRollup aggregates one metric across an experiment's whole
// archived trajectory. The distribution statistics come from
// per-spec-hash histograms folded together with stats.Histogram.Merge,
// so a spec simulated a hundred times and a spec simulated once both
// contribute exactly their samples.
type MetricRollup struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit,omitempty"`
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	// First and Last are the metric's values at the trajectory's
	// chronological endpoints — the at-a-glance drift signal.
	First float64 `json:"first"`
	Last  float64 `json:"last"`
}

// History is the GET /v1/history/{experiment} payload: every archived
// point in trajectory order plus per-metric roll-ups.
type History struct {
	Experiment string         `json:"experiment"`
	Points     []HistoryPoint `json:"points"`
	Rollups    []MetricRollup `json:"rollups,omitempty"`
}

// ReportMetrics flattens a report's table into named numeric metrics.
// Duplicate names (tables with repeated row keys) disambiguate by
// occurrence index, mirroring compare's row pairing.
func ReportMetrics(rep *experiments.Report) []Metric {
	var out []Metric
	cols := rep.Table.Columns()
	counts := make(map[string]int)
	for i := 0; i < rep.Table.NumRows(); i++ {
		row := rep.Table.Row(i)
		key := compare.RowKey(row)
		if n := counts[key]; n > 0 {
			key = fmt.Sprintf("%s#%d", key, n)
		}
		counts[compare.RowKey(row)]++
		for ci, c := range row {
			if c.Kind != stats.CellNum || ci >= len(cols) {
				continue
			}
			name := cols[ci].Name
			if key != "" {
				name = key + "/" + name
			}
			out = append(out, Metric{Name: name, Unit: cols[ci].Unit, Value: c.Value})
		}
	}
	return out
}

// History assembles the experiment's archived trajectory: points in
// (recorded_at, id) order with their table metrics, and per-metric
// roll-ups built by observing each spec-hash series into its own
// histogram and merging the series histograms.
func (a *Archive) History(experiment string) (*History, error) {
	hist := &History{Experiment: experiment, Points: []HistoryPoint{}}
	type seriesKey struct{ spec, name string }
	seriesHists := make(map[seriesKey]*stats.Histogram)
	var seriesOrder []seriesKey
	type span struct {
		unit        string
		first, last float64
		haveFirst   bool
	}
	spans := make(map[string]*span)
	for _, e := range a.Entries() {
		if e.Kind != KindReport || e.Experiment != experiment {
			continue
		}
		rec, err := a.Load(e.ID)
		if err != nil {
			return nil, err
		}
		rep, err := experiments.DecodeReport(rec.Payload)
		if err != nil {
			return nil, fmt.Errorf("store: record %s: %w", e.ID, err)
		}
		ms := ReportMetrics(rep)
		hist.Points = append(hist.Points, HistoryPoint{
			RecordID:    e.ID,
			SpecHash:    e.SpecHash,
			ContentHash: e.ContentHash,
			GitDescribe: e.GitDescribe,
			RecordedAt:  e.RecordedAt,
			Source:      e.Source,
			Metrics:     ms,
		})
		for _, m := range ms {
			k := seriesKey{e.SpecHash, m.Name}
			h, ok := seriesHists[k]
			if !ok {
				h = &stats.Histogram{}
				seriesHists[k] = h
				seriesOrder = append(seriesOrder, k)
			}
			h.Observe(m.Value)
			sp, ok := spans[m.Name]
			if !ok {
				sp = &span{unit: m.Unit}
				spans[m.Name] = sp
			}
			if !sp.haveFirst {
				sp.first, sp.haveFirst = m.Value, true
			}
			sp.last = m.Value
		}
	}
	// Merge each metric's per-series histograms in deterministic
	// (name, spec) order.
	sort.Slice(seriesOrder, func(i, j int) bool {
		if seriesOrder[i].name != seriesOrder[j].name {
			return seriesOrder[i].name < seriesOrder[j].name
		}
		return seriesOrder[i].spec < seriesOrder[j].spec
	})
	merged := make(map[string]*stats.Histogram)
	var names []string
	for _, k := range seriesOrder {
		m, ok := merged[k.name]
		if !ok {
			m = &stats.Histogram{}
			merged[k.name] = m
			names = append(names, k.name)
		}
		m.Merge(seriesHists[k])
	}
	for _, name := range names { // already name-sorted via seriesOrder
		h := merged[name]
		sp := spans[name]
		hist.Rollups = append(hist.Rollups, MetricRollup{
			Name:  name,
			Unit:  sp.unit,
			Count: h.Count(),
			Mean:  h.Mean(),
			Min:   h.Min(),
			Max:   h.Max(),
			P50:   h.Quantile(0.5),
			First: sp.first,
			Last:  sp.last,
		})
	}
	return hist, nil
}

// Series is one spec hash's archived records for an experiment, in
// trajectory order, payloads loaded — the unit cmd/skiaboard's
// regression check diffs (previous record vs latest).
type Series struct {
	SpecHash string
	Spec     *Spec
	Records  []Record
}

// Series groups an experiment's report records by spec hash, each
// group in trajectory order, groups sorted by spec hash.
func (a *Archive) Series(experiment string) ([]Series, error) {
	byHash := make(map[string]*Series)
	var order []string
	for _, e := range a.Entries() {
		if e.Kind != KindReport || e.Experiment != experiment {
			continue
		}
		rec, err := a.Load(e.ID)
		if err != nil {
			return nil, err
		}
		s, ok := byHash[e.SpecHash]
		if !ok {
			s = &Series{SpecHash: e.SpecHash, Spec: rec.Spec}
			byHash[e.SpecHash] = s
			order = append(order, e.SpecHash)
		}
		s.Records = append(s.Records, rec)
	}
	sort.Strings(order)
	out := make([]Series, 0, len(order))
	for _, h := range order {
		out = append(out, *byHash[h])
	}
	return out, nil
}

// BenchPoint is one archived skiabench envelope on the performance
// trajectory.
type BenchPoint struct {
	RecordID    string            `json:"record_id"`
	RecordedAt  string            `json:"recorded_at"`
	GitDescribe string            `json:"git_describe,omitempty"`
	Source      string            `json:"source,omitempty"`
	Envelope    benchfmt.Envelope `json:"envelope"`
}

// BenchHistory returns every archived bench envelope in trajectory
// order.
func (a *Archive) BenchHistory() ([]BenchPoint, error) {
	var out []BenchPoint
	for _, e := range a.Entries() {
		if e.Kind != KindBench {
			continue
		}
		rec, err := a.Load(e.ID)
		if err != nil {
			return nil, err
		}
		env, err := benchfmt.Decode(rec.Payload)
		if err != nil {
			return nil, fmt.Errorf("store: record %s: %w", e.ID, err)
		}
		out = append(out, BenchPoint{
			RecordID:    e.ID,
			RecordedAt:  e.RecordedAt,
			GitDescribe: e.GitDescribe,
			Source:      e.Source,
			Envelope:    *env,
		})
	}
	return out, nil
}
