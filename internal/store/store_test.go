package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// fakeReport builds a minimal valid report envelope whose numeric
// cells are under the test's control.
func fakeReport(t *testing.T, id string, speedup float64) (*experiments.Report, []byte) {
	t.Helper()
	tb := stats.NewTable("benchmark", "speedup").SetUnits("", stats.UnitSpeedup)
	tb.AddCells(stats.Str("voter"), stats.Num(speedup, "x"))
	tb.AddCells(stats.Str("kafka"), stats.Num(speedup+0.5, "x"))
	rep := &experiments.Report{
		ID:    id,
		Title: "test " + id,
		Table: tb,
		Meta: experiments.RunMeta{
			Benchmarks: []experiments.BenchmarkRef{
				{Name: "voter", Seed: 1}, {Name: "kafka", Seed: 2},
			},
			WarmupInstructions:  100_000,
			MeasureInstructions: 300_000,
			GeneratedAt:         "2026-08-07T00:00:00Z", // volatile: stripped by content hash
			GitDescribe:         "v0-test",
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return rep, data
}

func stamp(sec int) PutMeta {
	return PutMeta{
		RecordedAt:  time.Date(2026, 8, 7, 12, 0, sec, 0, time.UTC),
		GitDescribe: "v0-test",
		Source:      "test",
	}
}

func TestPutDedupsIdenticalResults(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, data := fakeReport(t, "fig14", 1.2)
	spec := SpecOfReport(rep)

	e1, added, err := a.PutReport(data, spec, stamp(0))
	if err != nil || !added {
		t.Fatalf("first put: added=%v err=%v", added, err)
	}

	// Same result, later wall clock, different volatile provenance:
	// must dedup to the same record.
	rep2 := *rep
	rep2.Meta.GeneratedAt = "2026-08-07T01:00:00Z"
	data2, _ := json.MarshalIndent(&rep2, "", "  ")
	e2, added, err := a.PutReport(data2, spec, stamp(30))
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Error("identical result re-archived as a new record")
	}
	if e2.ID != e1.ID {
		t.Errorf("dedup returned a different record: %s vs %s", e2.ID, e1.ID)
	}
	if a.Len() != 1 {
		t.Errorf("archive has %d records, want 1", a.Len())
	}

	// A genuinely different result under the same spec is a new point
	// on the same trajectory.
	_, data3 := fakeReport(t, "fig14", 1.4)
	e3, added, err := a.PutReport(data3, spec, stamp(60))
	if err != nil || !added {
		t.Fatalf("changed result: added=%v err=%v", added, err)
	}
	if e3.SpecHash != e1.SpecHash {
		t.Error("same spec produced different spec hashes")
	}
	if e3.ContentHash == e1.ContentHash {
		t.Error("different results share a content hash")
	}
}

func TestLatestServesNewestPayloadByteIdentical(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, data1 := fakeReport(t, "fig14", 1.2)
	spec := SpecOfReport(rep)
	if _, _, err := a.PutReport(data1, spec, stamp(0)); err != nil {
		t.Fatal(err)
	}
	_, data2 := fakeReport(t, "fig14", 1.4)
	if _, _, err := a.PutReport(data2, spec, stamp(60)); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk: the index round-trips.
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("reopened archive has %d records, want 2", b.Len())
	}
	rec, ok, err := b.Latest(spec.Hash())
	if err != nil || !ok {
		t.Fatalf("Latest: ok=%v err=%v", ok, err)
	}
	// The cache contract: the archived payload re-marshals to the
	// exact bytes the producer wrote (records store the compact form;
	// decode → indent restores the original).
	got, err := experiments.DecodeReport(rec.Payload)
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data2) {
		t.Error("cache round-trip is not byte-identical to the newest archived report")
	}

	if _, ok, err := b.Latest("no-such-spec"); err != nil || ok {
		t.Errorf("Latest(miss): ok=%v err=%v, want miss", ok, err)
	}
}

func TestRecordFilesAreByteStable(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, data := fakeReport(t, "fig14", 1.2)
	e, _, err := a.PutReport(data, SpecOfReport(rep), stamp(0))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, e.File))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(out, '\n'), raw) {
		t.Error("record file does not re-marshal byte-identically")
	}
}

func TestPutRequiresStamp(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, data := fakeReport(t, "fig14", 1.2)
	if _, _, err := a.PutReport(data, SpecOfReport(rep), PutMeta{}); err == nil {
		t.Error("Put accepted a zero RecordedAt")
	}
}

func TestSpecNormalization(t *testing.T) {
	// Default windows spelled out vs left zero hash identically.
	explicit := NewSpec("fig14", experiments.Options{
		Warmup: sim.DefaultWarmup, Measure: sim.DefaultMeasure,
	})
	implicit := NewSpec("fig14", experiments.Options{})
	if explicit.Hash() != implicit.Hash() {
		t.Error("default windows spelled out hash differently from defaults left implicit")
	}
	if implicit.WarmupInstructions != sim.DefaultWarmup {
		t.Errorf("warmup not resolved: %d", implicit.WarmupInstructions)
	}
	if len(implicit.Benchmarks) != len(workload.SuiteNames()) {
		t.Errorf("default suite not resolved: %d benchmarks", len(implicit.Benchmarks))
	}

	// Result-irrelevant knobs must not affect the hash.
	tuned := NewSpec("fig14", experiments.Options{Workers: 7, NoDecodeCache: true})
	if tuned.Hash() != implicit.Hash() {
		t.Error("workers/decode-cache knobs leaked into the spec hash")
	}

	// Different simulation-affecting knobs must change it.
	windows := NewSpec("fig14", experiments.Options{Warmup: 42})
	if windows.Hash() == implicit.Hash() {
		t.Error("warmup change did not change the spec hash")
	}
}

func TestSpecOfReportMatchesNewSpec(t *testing.T) {
	o := experiments.Options{
		Warmup: 100_000, Measure: 300_000,
		Benchmarks: []string{"voter", "kafka"},
	}
	rep, _ := fakeReport(t, "fig14", 1.2)
	// fakeReport stamps the same windows and benchmark refs a live run
	// would; seeds must match the registry for the hashes to agree.
	for i := range rep.Meta.Benchmarks {
		p, err := workload.ByName(rep.Meta.Benchmarks[i].Name)
		if err != nil {
			t.Fatal(err)
		}
		rep.Meta.Benchmarks[i].Seed = p.Seed
	}
	if got, want := SpecOfReport(rep).Hash(), NewSpec("fig14", o).Hash(); got != want {
		t.Errorf("SpecOfReport hash %s != NewSpec hash %s", got, want)
	}
}

func TestHistoryTrajectoriesAndRollups(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, data1 := fakeReport(t, "fig14", 1.0)
	spec := SpecOfReport(rep)
	_, data2 := fakeReport(t, "fig14", 2.0)
	_, data3 := fakeReport(t, "fig14", 3.0)
	for i, d := range [][]byte{data1, data2, data3} {
		if _, _, err := a.PutReport(d, spec, stamp(i * 30)); err != nil {
			t.Fatal(err)
		}
	}
	h, err := a.History("fig14")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Points) != 3 {
		t.Fatalf("history has %d points, want 3", len(h.Points))
	}
	for i := 1; i < len(h.Points); i++ {
		if h.Points[i-1].RecordedAt > h.Points[i].RecordedAt {
			t.Error("history points out of trajectory order")
		}
	}
	var ru *MetricRollup
	for i := range h.Rollups {
		if h.Rollups[i].Name == "voter/speedup" {
			ru = &h.Rollups[i]
		}
	}
	if ru == nil {
		t.Fatalf("no rollup for voter/speedup (have %v)", h.Rollups)
	}
	if ru.Count != 3 || ru.First != 1.0 || ru.Last != 3.0 || ru.Min != 1.0 || ru.Max != 3.0 {
		t.Errorf("rollup = %+v, want count 3, first 1, last 3, min 1, max 3", *ru)
	}
	if ru.Mean != 2.0 {
		t.Errorf("rollup mean = %v, want 2", ru.Mean)
	}
	if ru.Unit != stats.UnitSpeedup {
		t.Errorf("rollup unit = %q, want %q", ru.Unit, stats.UnitSpeedup)
	}

	// Determinism: assembling twice yields identical JSON.
	h2, err := a.History("fig14")
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(h)
	j2, _ := json.Marshal(h2)
	if !bytes.Equal(j1, j2) {
		t.Error("History is not deterministic across calls")
	}

	if got := a.Experiments(); !reflect.DeepEqual(got, []string{"fig14"}) {
		t.Errorf("Experiments() = %v", got)
	}

	series, err := a.Series("fig14")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Records) != 3 {
		t.Fatalf("series shape wrong: %d series", len(series))
	}
	if series[0].Spec == nil || series[0].Spec.Experiment != "fig14" {
		t.Error("series lost its spec")
	}
}

func TestBenchHistory(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]any{
		"schema_version": 1,
		"generated_at":   "2026-08-07T00:00:00Z",
		"go_version":     "go1.x",
		"goos":           "linux", "goarch": "amd64", "num_cpu": 8,
		"entries": []map[string]any{
			{"name": "frontend-cycle", "iterations": 1000, "ns_per_op": 123.0,
				"allocs_per_op": 0, "bytes_per_op": 0},
		},
	}
	data, _ := json.Marshal(env)
	if _, added, err := a.PutBench(data, stamp(0)); err != nil || !added {
		t.Fatalf("PutBench: added=%v err=%v", added, err)
	}
	// Same measurements, new timestamp → dedup (content identical).
	env["generated_at"] = "2026-08-07T01:00:00Z"
	data2, _ := json.Marshal(env)
	if _, added, err := a.PutBench(data2, stamp(30)); err != nil || added {
		t.Fatalf("identical bench re-archived: added=%v err=%v", added, err)
	}
	pts, err := a.BenchHistory()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("bench history has %d points, want 1", len(pts))
	}
	if pts[0].Envelope.Entries[0].NsPerOp != 123.0 {
		t.Errorf("bench payload lost: %+v", pts[0].Envelope)
	}
}

// TestSpecSamplingNormalization pins the sampling half of the spec-
// hash contract: knobs that provably do not change results (shard
// count, warmup checkpointing) hash identically to their absence,
// equivalent plan spellings normalize to one hash, and the result-
// changing plan parameters — interval count, interval length, micro-
// warmup — each fork the trajectory. Exact and sampled runs of the
// same windows never share a hash, so the result cache cannot serve
// one for the other.
func TestSpecSamplingNormalization(t *testing.T) {
	exact := NewSpec("fig14", experiments.Options{})

	// Defaults spelled out vs left zero hash identically.
	implicit := NewSpec("fig14", experiments.Options{Sample: &sim.SamplePlan{}})
	spelled := NewSpec("fig14", experiments.Options{Sample: &sim.SamplePlan{
		Intervals:     sim.DefaultSampleIntervals,
		IntervalInsts: sim.DefaultMeasure / sim.DefaultSampleIntervals / 10,
		MicroWarmup:   sim.DefaultMeasure / sim.DefaultSampleIntervals / 20,
	}})
	if implicit.Hash() != spelled.Hash() {
		t.Error("default sample plan spelled out hashes differently from defaults left implicit")
	}

	// Sampled never collides with exact.
	if implicit.Hash() == exact.Hash() {
		t.Error("sampled and exact runs share a spec hash")
	}

	// Shards and checkpointing are result-invariant: same hash.
	sharded := NewSpec("fig14", experiments.Options{
		Sample: &sim.SamplePlan{Shards: 16}, Checkpoint: true, Workers: 3,
	})
	if sharded.Hash() != implicit.Hash() {
		t.Error("shards/checkpoint/workers leaked into the spec hash")
	}

	// Each result-changing plan parameter forks the hash.
	for name, p := range map[string]sim.SamplePlan{
		"intervals":    {Intervals: 7},
		"interval":     {IntervalInsts: 12_345},
		"micro-warmup": {MicroWarmup: 23_456},
	} {
		forked := NewSpec("fig14", experiments.Options{Sample: &sim.SamplePlan{
			Intervals:     p.Intervals,
			IntervalInsts: p.IntervalInsts,
			MicroWarmup:   p.MicroWarmup,
		}})
		if forked.Hash() == implicit.Hash() {
			t.Errorf("%s change did not change the spec hash", name)
		}
	}

	// SampleEcho changes the report's content, so it keys like Attrib —
	// but only on exact runs (sampled runs always carry the section).
	echo := NewSpec("fig14", experiments.Options{SampleEcho: true})
	if echo.Hash() == exact.Hash() {
		t.Error("sample-echo did not change the exact-run spec hash")
	}
	echoSampled := NewSpec("fig14", experiments.Options{SampleEcho: true, Sample: &sim.SamplePlan{}})
	if echoSampled.Hash() != implicit.Hash() {
		t.Error("sample-echo leaked into a sampled run's spec hash")
	}
}

// TestSpecOfReportRecoversSampling checks a sampled report's envelope
// hashes back to the producing spec, and an echoing exact report
// recovers its SampleEcho bit from the Exact sampling row.
func TestSpecOfReportRecoversSampling(t *testing.T) {
	o := experiments.Options{
		Warmup: 100_000, Measure: 300_000,
		Benchmarks: []string{"voter", "kafka"},
		Sample:     &sim.SamplePlan{Intervals: 4, Shards: 8},
	}
	rep, _ := fakeReport(t, "fig14", 1.2)
	for i := range rep.Meta.Benchmarks {
		p, err := workload.ByName(rep.Meta.Benchmarks[i].Name)
		if err != nil {
			t.Fatal(err)
		}
		rep.Meta.Benchmarks[i].Seed = p.Seed
	}
	pl := o.Sample.Normalized(o.Measure)
	rep.Meta.SampleIntervals = pl.Intervals
	rep.Meta.SampleIntervalInstructions = pl.IntervalInsts
	rep.Meta.SampleMicroWarmupInstructions = pl.MicroWarmup
	rep.Meta.SampleShards = pl.Shards
	if got, want := SpecOfReport(rep).Hash(), NewSpec("fig14", o).Hash(); got != want {
		t.Errorf("sampled SpecOfReport hash %s != NewSpec hash %s", got, want)
	}

	echoRep, _ := fakeReport(t, "fig14", 1.2)
	for i := range echoRep.Meta.Benchmarks {
		p, err := workload.ByName(echoRep.Meta.Benchmarks[i].Name)
		if err != nil {
			t.Fatal(err)
		}
		echoRep.Meta.Benchmarks[i].Seed = p.Seed
	}
	echoRep.Sampling = []sim.SpecSampling{{
		Benchmark: "voter",
		Summary:   sim.SampleSummary{Exact: true},
	}}
	oEcho := experiments.Options{
		Warmup: 100_000, Measure: 300_000,
		Benchmarks: []string{"voter", "kafka"},
		SampleEcho: true,
	}
	if got, want := SpecOfReport(echoRep).Hash(), NewSpec("fig14", oEcho).Hash(); got != want {
		t.Errorf("echo SpecOfReport hash %s != NewSpec hash %s", got, want)
	}
}
