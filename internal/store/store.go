// Package store is the run-history archive: a content-addressed,
// append-only record store for completed experiment reports (batch
// skiaexp runs, skiaserve jobs) and skiabench performance envelopes.
//
// Every record is keyed three ways:
//
//   - a spec hash — SHA-256 over the canonical JSON of the run's
//     simulation-affecting identity (experiment ID plus normalized
//     options; see Spec) — grouping records of the *same experiment
//     under the same knobs* into one trajectory;
//   - a content hash — SHA-256 over the payload with its volatile
//     provenance (timestamps, git version, wall-clock throughput)
//     stripped — so archiving the same deterministic result twice is
//     a no-op;
//   - the record ID — SHA-256 over (kind, spec hash, git version,
//     content hash) — the dedup identity: one record per distinct
//     result per tree version per spec.
//
// The archive is a directory: one canonical-JSON file per record under
// records/, plus an append-only NDJSON index (index.ndjson) carrying
// every record's identity without its payload. Records are immutable
// once written; readers order them by (recorded_at, id), which is
// deterministic because dedup collapses reruns and distinct records
// differ in ID.
//
// Consumers: internal/serve persists every finished job here
// (skiaserve -archive) and serves byte-identical archived reports on
// spec-hash match without re-simulating (-cache); cmd/skiaboard
// renders metric trajectories from History and gates regressions with
// the internal/compare tolerances; cmd/skiaexp and cmd/skiabench
// archive batch results with their -archive flags.
//
// The package itself never reads the wall clock (skialint's nondet
// discipline): callers stamp PutMeta.RecordedAt, so record identity
// and file bytes are a pure function of the inputs.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// SchemaVersion identifies the record and index-line format.
const SchemaVersion = 1

// Record kinds.
const (
	// KindReport is an experiments.Report envelope payload.
	KindReport = "report"
	// KindBench is a cmd/skiabench BENCH_*.json envelope payload
	// (internal/benchfmt.Envelope).
	KindBench = "bench"
)

// indexFile and recordsDir lay out the archive directory.
const (
	indexFile  = "index.ndjson"
	recordsDir = "records"
)

// Record is one archived result: identity plus the exact payload bytes
// the producer wrote (compacted to one canonical line). Payload bytes
// are immutable — a cache hit serves them back verbatim.
type Record struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`
	Kind          string `json:"kind"`
	// Experiment is the catalog ID for report records ("" for bench).
	Experiment string `json:"experiment,omitempty"`
	// SpecHash groups records of the same normalized spec into one
	// trajectory ("" for bench records, which have no spec).
	SpecHash string `json:"spec_hash,omitempty"`
	// ContentHash fingerprints the payload with volatile provenance
	// stripped; identical deterministic results share it.
	ContentHash string `json:"content_hash"`
	// GitDescribe identifies the tree that produced the payload.
	GitDescribe string `json:"git_describe,omitempty"`
	// RecordedAt is the caller-stamped RFC 3339 completion time.
	RecordedAt string `json:"recorded_at"`
	// Source names the producer: "skiaexp", "skiaserve", "skiabench",
	// "skiaboard" (put imports).
	Source string `json:"source,omitempty"`
	// Spec is the normalized spec the hash covers (report records).
	Spec *Spec `json:"spec,omitempty"`
	// Payload is the archived envelope, verbatim.
	Payload json.RawMessage `json:"payload"`
}

// IndexEntry is one index.ndjson line: a Record's identity without its
// payload, plus the payload-bearing record file, relative to the
// archive root.
type IndexEntry struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`
	Kind          string `json:"kind"`
	Experiment    string `json:"experiment,omitempty"`
	SpecHash      string `json:"spec_hash,omitempty"`
	ContentHash   string `json:"content_hash"`
	GitDescribe   string `json:"git_describe,omitempty"`
	RecordedAt    string `json:"recorded_at"`
	Source        string `json:"source,omitempty"`
	File          string `json:"file"`
}

// PutMeta carries the provenance a caller stamps onto a new record.
type PutMeta struct {
	// RecordedAt is the completion time; required (the store itself
	// never reads the clock, keeping record bytes a pure function of
	// the inputs).
	RecordedAt time.Time
	// GitDescribe identifies the producing tree (may be empty when
	// unknown).
	GitDescribe string
	// Source names the producer binary.
	Source string
}

// Archive is an open run-history archive. Safe for concurrent use.
type Archive struct {
	mu      sync.Mutex
	dir     string
	byID    map[string]int // record ID -> entries position
	entries []IndexEntry   // append (put) order
}

// Open opens (creating if needed) the archive rooted at dir and loads
// its index.
func Open(dir string) (*Archive, error) {
	if err := os.MkdirAll(filepath.Join(dir, recordsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	a := &Archive{dir: dir, byID: make(map[string]int)}
	data, err := os.ReadFile(filepath.Join(dir, indexFile))
	if os.IsNotExist(err) {
		return a, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for ln, line := range splitLines(data) {
		var e IndexEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("store: %s line %d: %w", indexFile, ln+1, err)
		}
		if e.SchemaVersion > SchemaVersion {
			return nil, fmt.Errorf("store: %s line %d: schema version %d newer than this build (%d)",
				indexFile, ln+1, e.SchemaVersion, SchemaVersion)
		}
		if _, dup := a.byID[e.ID]; dup {
			return nil, fmt.Errorf("store: %s line %d: duplicate record id %s", indexFile, ln+1, e.ID)
		}
		a.byID[e.ID] = len(a.entries)
		a.entries = append(a.entries, e)
	}
	return a, nil
}

// splitLines yields the non-empty lines of an NDJSON file.
func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i := 0; i <= len(data); i++ {
		if i == len(data) || data[i] == '\n' {
			line := data[start:i]
			if len(line) > 0 {
				out = append(out, line)
			}
			start = i + 1
		}
	}
	return out
}

// Dir returns the archive root directory.
func (a *Archive) Dir() string { return a.dir }

// Len returns the number of records in the archive.
func (a *Archive) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.entries)
}

// Entries returns every index entry in deterministic trajectory order:
// recorded_at ascending, record ID as the tiebreaker.
func (a *Archive) Entries() []IndexEntry {
	a.mu.Lock()
	out := append([]IndexEntry(nil), a.entries...)
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].RecordedAt != out[j].RecordedAt {
			return out[i].RecordedAt < out[j].RecordedAt
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Experiments returns the sorted distinct experiment IDs that have
// report records.
func (a *Archive) Experiments() []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range a.Entries() {
		if e.Kind == KindReport && e.Experiment != "" && !seen[e.Experiment] {
			seen[e.Experiment] = true
			out = append(out, e.Experiment)
		}
	}
	sort.Strings(out)
	return out
}

// PutReport archives one experiments.Report envelope (the exact bytes
// a producer wrote) under its normalized spec. It returns the index
// entry and whether a new record was written: re-archiving the same
// deterministic result from the same tree is a no-op, so archiving one
// sweep twice yields exactly one record per unique spec hash.
func (a *Archive) PutReport(payload []byte, spec Spec, m PutMeta) (IndexEntry, bool, error) {
	if spec.Experiment == "" {
		return IndexEntry{}, false, fmt.Errorf("store: report spec has no experiment")
	}
	return a.put(KindReport, spec.Experiment, spec.Hash(), &spec, payload, m)
}

// PutBench archives one cmd/skiabench envelope. Bench payloads carry
// no spec (their identity is the machine and tree); their content is
// the measured timings, so reruns archive as distinct records and the
// trajectory shows every measurement.
func (a *Archive) PutBench(payload []byte, m PutMeta) (IndexEntry, bool, error) {
	return a.put(KindBench, "", "", nil, payload, m)
}

func (a *Archive) put(kind, experiment, specHash string, spec *Spec, payload []byte, m PutMeta) (IndexEntry, bool, error) {
	if m.RecordedAt.IsZero() {
		return IndexEntry{}, false, fmt.Errorf("store: PutMeta.RecordedAt is required (the store never reads the clock)")
	}
	compact, err := canonicalPayload(payload)
	if err != nil {
		return IndexEntry{}, false, fmt.Errorf("store: payload: %w", err)
	}
	contentHash, err := contentHash(kind, payload)
	if err != nil {
		return IndexEntry{}, false, err
	}
	id := recordID(kind, specHash, m.GitDescribe, contentHash)

	a.mu.Lock()
	defer a.mu.Unlock()
	if i, ok := a.byID[id]; ok {
		return a.entries[i], false, nil
	}
	rec := Record{
		SchemaVersion: SchemaVersion,
		ID:            id,
		Kind:          kind,
		Experiment:    experiment,
		SpecHash:      specHash,
		ContentHash:   contentHash,
		GitDescribe:   m.GitDescribe,
		RecordedAt:    m.RecordedAt.UTC().Format(time.RFC3339Nano),
		Source:        m.Source,
		Spec:          spec,
		Payload:       compact,
	}
	entry := IndexEntry{
		SchemaVersion: rec.SchemaVersion,
		ID:            rec.ID,
		Kind:          rec.Kind,
		Experiment:    rec.Experiment,
		SpecHash:      rec.SpecHash,
		ContentHash:   rec.ContentHash,
		GitDescribe:   rec.GitDescribe,
		RecordedAt:    rec.RecordedAt,
		Source:        rec.Source,
		File:          filepath.Join(recordsDir, rec.ID[:2], rec.ID+".json"),
	}
	recData, err := json.Marshal(rec)
	if err != nil {
		return IndexEntry{}, false, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(a.dir, entry.File)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return IndexEntry{}, false, fmt.Errorf("store: %w", err)
	}
	if err := os.WriteFile(path, append(recData, '\n'), 0o644); err != nil {
		return IndexEntry{}, false, fmt.Errorf("store: %w", err)
	}
	line, err := json.Marshal(entry)
	if err != nil {
		return IndexEntry{}, false, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(a.dir, indexFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return IndexEntry{}, false, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return IndexEntry{}, false, fmt.Errorf("store: index append: %w", err)
	}
	if err := f.Close(); err != nil {
		return IndexEntry{}, false, fmt.Errorf("store: index append: %w", err)
	}
	a.byID[entry.ID] = len(a.entries)
	a.entries = append(a.entries, entry)
	return entry, true, nil
}

// Load reads one record (payload included) by ID.
func (a *Archive) Load(id string) (Record, error) {
	a.mu.Lock()
	i, ok := a.byID[id]
	var entry IndexEntry
	if ok {
		entry = a.entries[i]
	}
	a.mu.Unlock()
	if !ok {
		return Record{}, fmt.Errorf("store: unknown record %s", id)
	}
	data, err := os.ReadFile(filepath.Join(a.dir, entry.File))
	if err != nil {
		return Record{}, fmt.Errorf("store: %w", err)
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, fmt.Errorf("store: %s: %w", entry.File, err)
	}
	if rec.ID != id {
		return Record{}, fmt.Errorf("store: %s holds record %s, index says %s", entry.File, rec.ID, id)
	}
	return rec, nil
}

// Latest returns the newest report record (trajectory order) whose
// spec hash matches, payload included — the cache-hit lookup
// internal/serve uses. ok is false when the spec was never archived.
func (a *Archive) Latest(specHash string) (Record, bool, error) {
	var best *IndexEntry
	for _, e := range a.Entries() { // ascending: last match wins
		if e.Kind == KindReport && e.SpecHash == specHash {
			e := e
			best = &e
		}
	}
	if best == nil {
		return Record{}, false, nil
	}
	rec, err := a.Load(best.ID)
	if err != nil {
		return Record{}, false, err
	}
	return rec, true, nil
}

// canonicalPayload validates and compacts payload to one line of
// JSON, the byte-stable form records embed.
func canonicalPayload(payload []byte) (json.RawMessage, error) {
	var v json.RawMessage
	if err := json.Unmarshal(payload, &v); err != nil {
		return nil, err
	}
	out, err := json.Marshal(v) // compact, escape-normalized
	if err != nil {
		return nil, err
	}
	return out, nil
}

// contentHash fingerprints a payload with its volatile provenance
// stripped: two runs of the same deterministic simulation hash
// identically even though their timestamps and throughput differ.
// Canonical form is encoding/json's marshal of the generic decode,
// which sorts object keys.
func contentHash(kind string, payload []byte) (string, error) {
	var v any
	if err := json.Unmarshal(payload, &v); err != nil {
		return "", fmt.Errorf("store: payload: %w", err)
	}
	if top, ok := v.(map[string]any); ok {
		switch kind {
		case KindReport:
			if meta, ok := top["meta"].(map[string]any); ok {
				delete(meta, "generated_at")
				delete(meta, "git_describe")
				delete(meta, "sim")
			}
		case KindBench:
			delete(top, "generated_at")
			delete(top, "git_describe")
		}
	}
	canon, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("store: canonicalize: %w", err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// recordID derives the dedup identity: one record per distinct result
// (content hash) per tree version per spec. RecordedAt is deliberately
// excluded so re-archiving an identical result later is a no-op.
func recordID(kind, specHash, gitDescribe, contentHash string) string {
	h := sha256.New()
	for _, part := range []string{kind, specHash, gitDescribe, contentHash} {
		fmt.Fprintf(h, "%d:%s;", len(part), part)
	}
	return hex.EncodeToString(h.Sum(nil))
}
