// Package cpu assembles the whole simulated core: the decoupled FDIP
// front-end (internal/frontend) feeding a backend model with a
// reorder-buffer occupancy limit and a retire width. For the
// front-end-bound workloads the paper studies, IPC is set by how well
// the front-end keeps the decoder fed — which is exactly the quantity
// Skia improves — so the backend is deliberately simple: it retires up
// to RetireWidth instructions per cycle from a ROB the decoder fills.
package cpu

import (
	"fmt"

	"repro/internal/attrib"
	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/ittage"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/tage"
	"repro/internal/workload"
)

// Config parameterizes a core.
type Config struct {
	// Frontend configures the decoupled front-end.
	Frontend frontend.Config
	// RetireWidth is instructions retired per cycle (Table 1: 12).
	RetireWidth int
	// ROBSize bounds in-flight instructions (Table 1: 512).
	ROBSize int
}

// DefaultConfig is the paper's baseline core without Skia.
func DefaultConfig() Config {
	return Config{
		Frontend:    frontend.DefaultConfig(),
		RetireWidth: 12,
		ROBSize:     512,
	}
}

// SkiaConfig is the baseline plus the default Skia front-end.
func SkiaConfig() Config {
	c := DefaultConfig()
	c.Frontend = frontend.SkiaConfig()
	return c
}

// Result is the outcome of one simulation window.
type Result struct {
	Benchmark    string
	Cycles       uint64
	Instructions uint64
	IPC          float64

	FE     frontend.Stats
	L1I    cache.Stats
	L2     cache.Stats
	BTB    btb.Stats
	TAGE   tage.Stats
	ITTAGE ittage.Stats
	SBB    core.SBBStats
	SBD    core.SBDStats

	// BTBMissMPKI counts taken branches unidentified by the BTB per
	// kilo-instruction (SBB-covered ones included: they are still BTB
	// misses).
	BTBMissMPKI float64
	// EffectiveMissMPKI subtracts SBB-covered misses: the misses that
	// still cost a re-steer.
	EffectiveMissMPKI float64
	// L1IMPKI counts FDIP prefetch fills per kilo-instruction: the
	// demand-miss rate a non-prefetching cache would expose.
	L1IMPKI float64
	// BTBMissL1IHitFrac is the fraction of BTB misses whose line was
	// already L1-I resident (the shadow opportunity).
	BTBMissL1IHitFrac float64
	// DecodeIdleFrac is the fraction of cycles the decoder idled.
	DecodeIdleFrac float64
	// CondMPKI is conditional direction mispredictions per kilo-inst.
	CondMPKI float64
}

// Core is one simulated CPU. Not safe for concurrent use.
type Core struct {
	cfg Config
	fe  *frontend.FrontEnd

	cycles  uint64
	retired uint64
	rob     int

	// coll, when non-nil, receives interval samples as retirement
	// crosses each boundary; the run loop nil-checks it once per cycle,
	// so a detached collector costs one comparison.
	//skia:shared-ok observability attachment: Clone's contract is that clones start uncollected and callers attach their own
	coll *metrics.Collector
}

// New builds a core over a workload. The front-end's re-steer penalties
// are widened by the BTB's size-dependent access latency (the cacti
// adjustment from Section 5.1).
func New(cfg Config, w *workload.Workload) (*Core, error) {
	extra := BTBAccessLatency(cfg.Frontend.BTB) - BTBAccessLatency(btb.DefaultConfig())
	if extra > 0 {
		cfg.Frontend.DecodeResteerPenalty += extra
		cfg.Frontend.ExecResteerPenalty += extra
	}
	fe, err := frontend.New(cfg.Frontend, w)
	if err != nil {
		return nil, fmt.Errorf("cpu: %w", err)
	}
	if cfg.RetireWidth <= 0 || cfg.ROBSize <= 0 {
		return nil, fmt.Errorf("cpu: non-positive backend geometry %d/%d", cfg.RetireWidth, cfg.ROBSize)
	}
	return &Core{cfg: cfg, fe: fe}, nil
}

// Frontend exposes the front-end for inspection.
func (c *Core) Frontend() *frontend.FrontEnd { return c.fe }

// Clone returns an independent deep copy of the core: full front-end
// state (see frontend.Clone), backend occupancy, and window counters.
// The clone carries the latency-adjusted config New derived, so clones
// of clones stay consistent. Observability attachments (collector,
// tracer, attribution) do not carry over; callers attach their own.
func (c *Core) Clone() *Core {
	return &Core{
		cfg:     c.cfg,
		fe:      c.fe.Clone(),
		cycles:  c.cycles,
		retired: c.retired,
		rob:     c.rob,
	}
}

// FastForward functionally advances the true path by up to n
// instructions (emulator only — no cycles, no predictor or cache
// training) and squashes the in-flight pipeline, including the ROB
// contents, mirroring the front-end's deep-resteer resync. Skipped
// instructions do not count as retired; window counters are unchanged.
// It returns the number of instructions skipped (short only on halt).
func (c *Core) FastForward(n uint64) uint64 {
	c.rob = 0
	return c.fe.FastForward(n)
}

// FastForwardWarm is FastForward with functional warming: predictors
// and instruction caches are trained on the skipped true path (see
// frontend.FastForwardWarm). Skipped instructions still do not count as
// retired.
func (c *Core) FastForwardWarm(n uint64) uint64 {
	c.rob = 0
	return c.fe.FastForwardWarm(n)
}

// Cycles returns the cycles simulated since the last ResetStats.
func (c *Core) Cycles() uint64 { return c.cycles }

// Retired returns the instructions retired since the last ResetStats.
func (c *Core) Retired() uint64 { return c.retired }

// Run simulates until at least n more instructions retire or the
// workload ends. It returns the instructions retired during this call.
func (c *Core) Run(n uint64) uint64 {
	target := c.retired + n
	for c.retired < target && !c.fe.Done() {
		c.cycles++
		// Retire from the ROB.
		r := c.cfg.RetireWidth
		if r > c.rob {
			r = c.rob
		}
		c.rob -= r
		c.retired += uint64(r)
		// Decode into the ROB, bounded by free space.
		space := c.cfg.ROBSize - c.rob
		c.rob += c.fe.Step(space)
		if c.coll != nil && c.retired >= c.coll.Next() {
			c.coll.Record(c.Sample())
		}
	}
	return c.retired - (target - n)
}

// AttachCollector points interval collection at col (nil detaches),
// resetting its baseline to the core's current counters so intervals
// measure from the attachment point — typically the warmup boundary.
func (c *Core) AttachCollector(col *metrics.Collector) {
	c.coll = col
	if col != nil {
		col.Reset(c.Sample())
	}
}

// SetTracer attaches (or detaches, with nil) a front-end event tracer.
func (c *Core) SetTracer(t metrics.Tracer) { c.fe.SetTracer(t) }

// AttachAttribution attaches (or detaches, with nil) a miss-attribution
// engine to the front-end. Attach after warmup (alongside ResetStats)
// so the taxonomy covers the measurement window only.
func (c *Core) AttachAttribution(e *attrib.Engine) { c.fe.SetAttribution(e) }

// Attribution returns the attached engine (nil when disabled).
func (c *Core) Attribution() *attrib.Engine { return c.fe.Attribution() }

// Sample snapshots the cumulative counters the interval collector
// differences: cycles, instructions, and the front-end and cache
// events the timeseries rows derive their rates from.
func (c *Core) Sample() metrics.Sample {
	fe := c.fe.Stats()
	l1 := c.fe.L1I().Stats()
	l2 := c.fe.L2().Stats()
	return metrics.Sample{
		Cycles:                  c.cycles,
		Instructions:            c.retired,
		BTBMisses:               fe.BTBMissTotal(),
		SBBCovered:              fe.SBBCoveredTotal(),
		DecodeResteers:          fe.DecodeResteers,
		ExecResteers:            fe.ExecResteers,
		CondMispredicts:         fe.CondMispredicts,
		DecodeIdleCycles:        fe.DecodeIdleCycles,
		DecodeIdleFetchCycles:   fe.DecodeIdleFetchCycles,
		DecodeIdleResteerCycles: fe.DecodeIdleResteerCycles,
		L1IHits:                 l1.DemandHits + l1.PrefetchHits,
		L1IMisses:               l1.DemandMisses + l1.PrefetchFills,
		L2Hits:                  l2.DemandHits + l2.PrefetchHits,
		L2Misses:                l2.DemandMisses + l2.PrefetchFills,
	}
}

// ResetStats starts a fresh measurement window (the warmup boundary):
// all statistics reset, all learned microarchitectural state kept.
func (c *Core) ResetStats() {
	c.fe.ResetStats()
	c.cycles = 0
	c.retired = 0
	if c.coll != nil {
		c.coll.Reset(c.Sample())
	}
}

// Result snapshots the current measurement window.
func (c *Core) Result(benchmark string) Result {
	fe := c.fe.Stats()
	res := Result{
		Benchmark:    benchmark,
		Cycles:       c.cycles,
		Instructions: c.retired,
		IPC:          stats.IPC(c.retired, c.cycles),
		FE:           fe,
		L1I:          c.fe.L1I().Stats(),
		L2:           c.fe.L2().Stats(),
		BTB:          c.fe.BTB().Stats(),
		TAGE:         c.fe.TAGE().Stats(),
		ITTAGE:       c.fe.ITTAGE().Stats(),
	}
	if sbb := c.fe.SBB(); sbb != nil {
		res.SBB = sbb.Stats()
	}
	if sbd := c.fe.SBD(); sbd != nil {
		res.SBD = sbd.Stats()
	}
	res.Derive()
	return res
}

// Derive recomputes every derived metric (IPC, the MPKI family, the
// idle and residency fractions) from the raw counters. Core.Result
// calls it on fresh snapshots; sampled simulation (internal/sim) calls
// it after summing the counters of several measurement intervals, so
// point estimates are ratios of summed counters rather than means of
// per-interval ratios.
func (r *Result) Derive() {
	r.IPC = stats.IPC(r.Instructions, r.Cycles)
	r.BTBMissMPKI = stats.MPKI(r.FE.BTBMissTotal(), r.Instructions)
	r.EffectiveMissMPKI = stats.MPKI(r.FE.BTBMissTotal()-r.FE.SBBCoveredTotal(), r.Instructions)
	r.L1IMPKI = stats.MPKI(r.L1I.PrefetchFills, r.Instructions)
	r.BTBMissL1IHitFrac = 0
	if t := r.FE.BTBMissTotal(); t > 0 {
		r.BTBMissL1IHitFrac = float64(r.FE.BTBMissL1IHit) / float64(t)
	}
	r.DecodeIdleFrac = 0
	if r.Cycles > 0 {
		r.DecodeIdleFrac = float64(r.FE.DecodeIdleCycles) / float64(r.Cycles)
	}
	r.CondMPKI = stats.MPKI(r.FE.CondMispredicts, r.Instructions)
}

// BTBAccessLatency returns the approximate pipeline cycles to access a
// BTB of the given geometry, standing in for the paper's cacti-derived
// latency scaling: small BTBs fit a single cycle; every quadrupling
// past 8K entries costs another cycle.
func BTBAccessLatency(cfg btb.Config) int {
	if cfg.Infinite {
		return 1
	}
	lat := 1
	for e := cfg.Entries; e > 8192; e /= 4 {
		lat++
	}
	return lat
}
