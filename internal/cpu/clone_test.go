package cpu

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/workload"
)

// cloneConfigs enumerates the structurally distinct front-end shapes a
// checkpoint must capture: baseline (no SBB/SBD), full Skia (SBB + SBD
// + decode cache + L1-I eviction hook), Skia without the decode cache,
// the SBD-into-BTB ablation (no SBB), and a BTB large enough to
// trigger the access-latency config adjustment New applies.
func cloneConfigs() map[string]Config {
	skia := SkiaConfig()
	noCache := SkiaConfig()
	noCache.Frontend.NoDecodeCache = true
	toBTB := SkiaConfig()
	toBTB.Frontend.SBDToBTB = true
	bigBTB := SkiaConfig()
	bigBTB.Frontend.BTB.Entries = 65536
	tinyDC := SkiaConfig()
	tinyDC.Frontend.DecodeCacheLines = 4
	return map[string]Config{
		"baseline":     DefaultConfig(),
		"skia":         skia,
		"skia-nocache": noCache,
		"sbd-to-btb":   toBTB,
		"big-btb":      bigBTB,
		// A 4-line decode cache keeps the capacity bound under constant
		// pressure, so clones are taken with populated free lists and
		// every interval crosses eviction/recycling churn.
		"tiny-dcache": tinyDC,
	}
}

func cloneWorkload(t *testing.T, name string) *workload.Workload {
	t.Helper()
	prof, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// compareCores fails the test if the two cores' observable states
// diverge: the full result snapshot (which covers every component's
// statistics — front-end, L1I, L2, BTB, TAGE, ITTAGE, SBB, SBD), the
// interval sample, the decode-cache counters, and the probe-candidate
// footprint. The comparison is byte-level on the marshaled result, the
// strongest equality the ISSUE's "byte-identical" criterion asks for.
func compareCores(t *testing.T, label string, a, b *Core) {
	t.Helper()
	ra, rb := a.Result("w"), b.Result("w")
	ja, err := json.Marshal(ra)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(rb)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("%s: results not byte-identical:\n  a: %s\n  b: %s", label, ja, jb)
	}
	if !reflect.DeepEqual(a.Sample(), b.Sample()) {
		t.Errorf("%s: interval samples differ: %+v vs %+v", label, a.Sample(), b.Sample())
	}
	da, db := a.Frontend().DecodeCache(), b.Frontend().DecodeCache()
	if (da == nil) != (db == nil) {
		t.Fatalf("%s: decode cache presence differs", label)
	}
	if da != nil && da.Stats() != db.Stats() {
		t.Errorf("%s: decode cache stats differ: %+v vs %+v", label, da.Stats(), db.Stats())
	}
	if a.Frontend().ExtraOffLines() != b.Frontend().ExtraOffLines() {
		t.Errorf("%s: probe-candidate footprints differ: %d vs %d",
			label, a.Frontend().ExtraOffLines(), b.Frontend().ExtraOffLines())
	}
}

// TestSnapshotRestoreRunIdentical is the checkpointing determinism
// contract: Snapshot (Clone) → continue the original → continue the
// restored copy must be indistinguishable from the uninterrupted run,
// for every front-end shape. Each clone is taken mid-run, both cores
// then advance the same distance, and every component statistic must
// stay byte-identical.
func TestSnapshotRestoreRunIdentical(t *testing.T) {
	w := cloneWorkload(t, "voter")
	for name, cfg := range cloneConfigs() {
		t.Run(name, func(t *testing.T) {
			orig, err := New(cfg, w)
			if err != nil {
				t.Fatal(err)
			}
			orig.Run(120_000)
			snap := orig.Clone()
			compareCores(t, "at snapshot", orig, snap)

			orig.Run(120_000)
			snap.Run(120_000)
			compareCores(t, "after continue", orig, snap)
		})
	}
}

// TestCloneIndependence checks a clone and its original never alias
// state: running one must not move the other.
func TestCloneIndependence(t *testing.T) {
	w := cloneWorkload(t, "voter")
	c, err := New(SkiaConfig(), w)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(80_000)
	before := c.Sample()
	cl := c.Clone()
	cl.Run(200_000)
	if got := c.Sample(); !reflect.DeepEqual(before, got) {
		t.Fatalf("running a clone mutated the original: %+v -> %+v", before, got)
	}
	// And the other direction: running the original leaves the clone's
	// position where the snapshot put it.
	mid := cl.Sample()
	c.Run(200_000)
	if got := cl.Sample(); !reflect.DeepEqual(mid, got) {
		t.Fatalf("running the original mutated the clone: %+v -> %+v", mid, got)
	}
}

// TestCloneRandomizedSnapshotPoints is the property test over snapshot
// positions: clone at pseudo-random points along a run (deterministic
// LCG, so the test itself is reproducible) and verify each clone,
// advanced to a common horizon, matches the uninterrupted reference
// exactly.
func TestCloneRandomizedSnapshotPoints(t *testing.T) {
	w := cloneWorkload(t, "voter")
	const horizon = 400_000

	// The tiny-dcache shape is the regression case for the decode-cache
	// free list: with a 4-line bound every snapshot lands between
	// evictions, so the clone starts with recycled storage in flight
	// mid-interval and must still replay the reference bit-for-bit.
	for _, cfgName := range []string{"skia", "tiny-dcache"} {
		cfg := cloneConfigs()[cfgName]
		t.Run(cfgName, func(t *testing.T) {
			ref, err := New(cfg, w)
			if err != nil {
				t.Fatal(err)
			}
			ref.Run(horizon)
			want := ref.Result("w")

			c, err := New(cfg, w)
			if err != nil {
				t.Fatal(err)
			}
			seed := uint64(0x9E3779B97F4A7C15)
			var pos uint64
			for i := 0; i < 6; i++ {
				seed = seed*6364136223846793005 + 1442695040888963407
				step := 10_000 + seed%90_000
				if pos+step > horizon {
					break
				}
				c.Run(step)
				pos = c.Retired()
				cl := c.Clone()
				cl.Run(horizon - pos)
				if got := cl.Result("w"); !reflect.DeepEqual(want, got) {
					t.Errorf("clone at %d instructions diverged from the uninterrupted run:\n  want %+v\n  got  %+v", pos, want, got)
				}
				if dc := cl.Frontend().DecodeCache(); dc != nil && dc.Stats() != ref.Frontend().DecodeCache().Stats() {
					t.Errorf("clone at %d instructions: decode cache counters diverged: %+v vs %+v",
						pos, dc.Stats(), ref.Frontend().DecodeCache().Stats())
				}
			}
			if cfgName == "tiny-dcache" {
				// The case is only a regression test if eviction pressure
				// actually materialized.
				if ev := ref.Frontend().DecodeCache().Stats().Evictions; ev == 0 {
					t.Fatal("tiny-dcache run saw no evictions; the free-list case is not being exercised")
				}
			}
		})
	}
}

// TestFastForwardResyncsToTruePath checks the functional-skip
// primitive: after FastForward the core must be positioned on the true
// path and able to continue simulating without forced resyncs or
// emulator errors.
func TestFastForwardResyncsToTruePath(t *testing.T) {
	w := cloneWorkload(t, "voter")
	c, err := New(SkiaConfig(), w)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(50_000)
	skipped := c.FastForward(200_000)
	if skipped != 200_000 {
		t.Fatalf("FastForward skipped %d, want 200000", skipped)
	}
	c.ResetStats()
	if ran := c.Run(100_000); ran == 0 {
		t.Fatal("core would not run after FastForward")
	}
	if err := c.Frontend().Err(); err != nil {
		t.Fatal(err)
	}
	if fr := c.Result("w").FE.ForcedResyncs; fr != 0 {
		t.Fatalf("%d forced resyncs after FastForward", fr)
	}
}

// TestFastForwardMatchesDetailPosition checks FastForward lands on the
// same architectural point detail simulation reaches: a fast-forwarded
// core and a detail-run core, resynchronized at the same instruction
// position, must produce identical measurement windows... except that
// microarchitectural (cache/predictor) state legitimately differs.
// What must agree exactly is the functional position: PC-by-PC the two
// continue on the same true path, which this test asserts by checking
// the emulator cannot diverge (no errors, no forced resyncs) and both
// cores retire the full window.
func TestFastForwardMatchesDetailPosition(t *testing.T) {
	w := cloneWorkload(t, "noop")
	a, err := New(DefaultConfig(), w)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	a.Run(100_000) // detail
	b.FastForward(100_000)
	// Both cores continue; neither may error or force-resync.
	a.ResetStats()
	b.ResetStats()
	a.Run(50_000)
	b.Run(50_000)
	for name, c := range map[string]*Core{"detail": a, "fast-forward": b} {
		if err := c.Frontend().Err(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fr := c.Result("w").FE.ForcedResyncs; fr != 0 {
			t.Fatalf("%s: %d forced resyncs", name, fr)
		}
	}
}
