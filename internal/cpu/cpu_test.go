package cpu

import (
	"testing"

	"repro/internal/btb"
	"repro/internal/workload"
)

func testWorkload(t testing.TB) *workload.Workload {
	t.Helper()
	p, err := workload.ByName("voter")
	if err != nil {
		t.Fatal(err)
	}
	p.HotFuncs = 96
	p.ColdFuncs = 260
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func smallCfg(skia bool) Config {
	cfg := DefaultConfig()
	if skia {
		cfg = SkiaConfig()
	}
	cfg.Frontend.BTB.Entries = 1024
	return cfg
}

func TestNewValidation(t *testing.T) {
	w := testWorkload(t)
	bad := DefaultConfig()
	bad.RetireWidth = 0
	if _, err := New(bad, w); err == nil {
		t.Error("zero retire width accepted")
	}
	bad = DefaultConfig()
	bad.ROBSize = 0
	if _, err := New(bad, w); err == nil {
		t.Error("zero ROB accepted")
	}
	bad = DefaultConfig()
	bad.Frontend.L1ISize = 100 // invalid geometry
	if _, err := New(bad, w); err == nil {
		t.Error("bad L1-I geometry accepted")
	}
}

func TestRunProgress(t *testing.T) {
	w := testWorkload(t)
	c, err := New(smallCfg(false), w)
	if err != nil {
		t.Fatal(err)
	}
	ran := c.Run(100_000)
	if ran < 100_000 {
		t.Fatalf("ran only %d", ran)
	}
	if c.Cycles() == 0 {
		t.Error("no cycles counted")
	}
	if c.Retired() < 100_000 {
		t.Errorf("retired %d", c.Retired())
	}
}

func TestIPCBounds(t *testing.T) {
	w := testWorkload(t)
	c, err := New(smallCfg(false), w)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(300_000)
	r := c.Result("voter")
	if r.IPC <= 0.1 || r.IPC > float64(c.cfg.RetireWidth) {
		t.Errorf("IPC %.2f outside (0.1, %d]", r.IPC, c.cfg.RetireWidth)
	}
}

func TestWarmupBoundary(t *testing.T) {
	w := testWorkload(t)
	c, err := New(smallCfg(false), w)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(100_000)
	c.ResetStats()
	if c.Cycles() != 0 || c.Retired() != 0 {
		t.Error("counters survive ResetStats")
	}
	c.Run(100_000)
	r := c.Result("x")
	if r.Instructions < 100_000 || r.Cycles == 0 {
		t.Errorf("post-warmup window empty: %+v", r)
	}
}

func TestSkiaImprovesFrontEndBoundWorkload(t *testing.T) {
	// The headline claim, end to end: with a capacity-stressed BTB,
	// Skia must improve IPC.
	w := testWorkload(t)
	ipc := func(skia bool) float64 {
		c, err := New(smallCfg(skia), w)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(200_000)
		c.ResetStats()
		c.Run(600_000)
		return c.Result("voter").IPC
	}
	base, skia := ipc(false), ipc(true)
	if skia <= base {
		t.Errorf("Skia did not help: baseline %.3f vs skia %.3f", base, skia)
	}
}

func TestResultMetrics(t *testing.T) {
	w := testWorkload(t)
	c, err := New(smallCfg(true), w)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(100_000)
	c.ResetStats()
	c.Run(400_000)
	r := c.Result("voter")
	if r.Benchmark != "voter" {
		t.Error("benchmark name lost")
	}
	if r.BTBMissMPKI < r.EffectiveMissMPKI {
		t.Errorf("effective miss MPKI %.2f exceeds raw %.2f", r.EffectiveMissMPKI, r.BTBMissMPKI)
	}
	if r.BTBMissL1IHitFrac < 0 || r.BTBMissL1IHitFrac > 1 {
		t.Errorf("hit fraction %.2f out of range", r.BTBMissL1IHitFrac)
	}
	if r.DecodeIdleFrac <= 0 || r.DecodeIdleFrac >= 1 {
		t.Errorf("idle fraction %.2f implausible", r.DecodeIdleFrac)
	}
	if r.L1IMPKI <= 0 {
		t.Error("no L1-I pressure measured")
	}
	if r.SBB.UInserts == 0 {
		t.Error("Skia result carries no SBB stats")
	}
	if r.SBD.TailRegions == 0 {
		t.Error("Skia result carries no SBD stats")
	}
}

func TestBTBAccessLatency(t *testing.T) {
	cases := []struct {
		entries int
		want    int
	}{
		{1024, 1}, {4096, 1}, {8192, 1}, {16384, 2}, {32768, 2}, {131072, 3},
	}
	for _, c := range cases {
		cfg := btb.DefaultConfig()
		cfg.Entries = c.entries
		if got := BTBAccessLatency(cfg); got != c.want {
			t.Errorf("latency(%d) = %d, want %d", c.entries, got, c.want)
		}
	}
	if got := BTBAccessLatency(btb.Config{Infinite: true}); got != 1 {
		t.Errorf("infinite BTB latency = %d", got)
	}
}

func TestLargerBTBPenaltyApplied(t *testing.T) {
	// A 32K-entry BTB carries extra access latency, widening re-steer
	// penalties; verify construction does not reject it and that the
	// core still runs.
	w := testWorkload(t)
	cfg := DefaultConfig()
	cfg.Frontend.BTB.Entries = 32768
	c, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if c.Run(50_000) < 50_000 {
		t.Error("large-BTB core made no progress")
	}
}

func TestDeterministic(t *testing.T) {
	w := testWorkload(t)
	run := func() Result {
		c, err := New(smallCfg(true), w)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(200_000)
		return c.Result("v")
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions || a.FE != b.FE {
		t.Error("core simulation not deterministic")
	}
}

func BenchmarkCoreRun(b *testing.B) {
	w := testWorkload(b)
	c, err := New(SkiaConfig(), w)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	c.Run(uint64(b.N))
}
