package program

import (
	"testing"

	"repro/internal/isa"
)

// buildTiny builds a two-function program: main calls helper in a loop.
func buildTiny(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder(0x40_0000)
	m := b.Func("main", true)
	m.MovImm32(1, 10)
	m.Label("loop")
	m.CallTo("helper")
	m.IncDec(1, true)
	m.Test(1, 1)
	m.JccTo(4, "loop")
	m.Halt()
	h := b.Func("helper", true)
	h.ALUReg(0, 2, 3)
	h.Ret()
	p, err := b.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLinkResolvesTargets(t *testing.T) {
	p := buildTiny(t)
	mainAddr, ok := p.LabelAddr("main")
	if !ok {
		t.Fatal("main not resolved")
	}
	if p.Entry != mainAddr {
		t.Errorf("entry %#x != main %#x", p.Entry, mainAddr)
	}
	helperAddr, _ := p.LabelAddr("helper")
	loopAddr, ok := p.LabelAddr("main.loop")
	if !ok {
		t.Fatal("local label not resolved")
	}

	// Decode the call and verify its target is helper.
	in, err := p.Decode(loopAddr)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.OpCall {
		t.Fatalf("expected call at loop label, got %v", in.Op)
	}
	tgt, ok := in.BranchTarget()
	if !ok || tgt != helperAddr {
		t.Errorf("call target = %#x, want %#x", tgt, helperAddr)
	}

	// Walk forward to the jcc and verify it targets loop.
	pc := in.NextPC()
	for {
		in, err = p.Decode(pc)
		if err != nil {
			t.Fatal(err)
		}
		if in.Op == isa.OpJcc {
			tgt, _ := in.BranchTarget()
			if tgt != loopAddr {
				t.Errorf("jcc target = %#x, want %#x", tgt, loopAddr)
			}
			break
		}
		if in.Op == isa.OpHalt {
			t.Fatal("ran into halt before jcc")
		}
		pc = in.NextPC()
	}
}

func TestBaseLineAligned(t *testing.T) {
	b := NewBuilder(0x1001) // deliberately misaligned
	f := b.Func("f", false)
	f.Ret()
	p, err := b.Link("f")
	if err != nil {
		t.Fatal(err)
	}
	if p.Base%LineSize != 0 {
		t.Errorf("base %#x not line aligned", p.Base)
	}
	if len(p.Code)%LineSize != 0 {
		t.Errorf("image size %d not a whole number of lines", len(p.Code))
	}
}

func TestImageFullyDecodable(t *testing.T) {
	p := buildTiny(t)
	pc := p.Base
	for pc < p.End() {
		in, err := p.Decode(pc)
		if err != nil {
			t.Fatalf("image not decodable at %#x: %v", pc, err)
		}
		pc = in.NextPC()
	}
}

func TestFuncAt(t *testing.T) {
	p := buildTiny(t)
	mainAddr, _ := p.LabelAddr("main")
	helperAddr, _ := p.LabelAddr("helper")
	if f := p.FuncAt(mainAddr); f == nil || f.Name != "main" {
		t.Errorf("FuncAt(main) = %+v", f)
	}
	if f := p.FuncAt(helperAddr); f == nil || f.Name != "helper" {
		t.Errorf("FuncAt(helper) = %+v", f)
	}
	if f := p.FuncAt(p.Base - 1); f != nil {
		t.Errorf("FuncAt(before image) = %+v", f)
	}
	// Address in the middle of main still maps to main.
	if f := p.FuncAt(mainAddr + 2); f == nil || f.Name != "main" {
		t.Errorf("FuncAt(main+2) = %+v", f)
	}
}

func TestLine(t *testing.T) {
	p := buildTiny(t)
	l := p.Line(p.Entry)
	if len(l) != LineSize {
		t.Errorf("line length = %d", len(l))
	}
	if p.Line(p.End()+LineSize) != nil {
		t.Error("line outside image should be nil")
	}
}

func TestLineAddrHelpers(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Errorf("LineAddr = %#x", LineAddr(0x1234))
	}
	if LineOffset(0x1234) != 0x34 {
		t.Errorf("LineOffset = %d", LineOffset(0x1234))
	}
}

func TestUndefinedTarget(t *testing.T) {
	b := NewBuilder(0)
	f := b.Func("f", false)
	f.JmpTo("nowhere")
	if _, err := b.Link("f"); err == nil {
		t.Error("expected undefined target error")
	}
}

func TestUndefinedEntry(t *testing.T) {
	b := NewBuilder(0)
	f := b.Func("f", false)
	f.Ret()
	if _, err := b.Link("ghost"); err == nil {
		t.Error("expected undefined entry error")
	}
}

func TestDuplicateFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate function")
		}
	}()
	b := NewBuilder(0)
	b.Func("f", false)
	b.Func("f", false)
}

func TestAlignment(t *testing.T) {
	b := NewBuilder(0)
	f1 := b.Func("a", true)
	f1.Ret() // 1 byte
	f2 := b.Func("b", true)
	f2.SetAlign(16)
	f2.Ret()
	p, err := b.Link("a")
	if err != nil {
		t.Fatal(err)
	}
	bAddr, _ := p.LabelAddr("b")
	if bAddr%16 != 0 {
		t.Errorf("aligned func at %#x", bAddr)
	}
	// The pad between a and b must decode as NOPs.
	pc := p.Base + 1
	for pc < bAddr {
		in, err := p.Decode(pc)
		if err != nil {
			t.Fatalf("pad not decodable at %#x: %v", pc, err)
		}
		if in.Op != isa.OpNop {
			t.Fatalf("pad byte at %#x decodes to %v", pc, in.Op)
		}
		pc = in.NextPC()
	}
}

func TestPackedFunctionsShareLines(t *testing.T) {
	// Two tiny packed functions must land on the same cache line — the
	// structural precondition for shadow branches.
	b := NewBuilder(0)
	f1 := b.Func("hot", true)
	f1.ALUReg(0, 1, 2)
	f1.Ret()
	f2 := b.Func("cold", false)
	f2.JmpTo("hot")
	p, err := b.Link("hot")
	if err != nil {
		t.Fatal(err)
	}
	hotAddr, _ := p.LabelAddr("hot")
	coldAddr, _ := p.LabelAddr("cold")
	if LineAddr(hotAddr) != LineAddr(coldAddr) {
		t.Errorf("hot %#x and cold %#x on different lines", hotAddr, coldAddr)
	}
}

func TestCrossFunctionBackwardBranch(t *testing.T) {
	b := NewBuilder(0x1000)
	f1 := b.Func("first", true)
	f1.Label("top")
	f1.Nop(3)
	f1.Ret()
	f2 := b.Func("second", true)
	f2.JmpTo("first.top") // qualified cross-function label
	p, err := b.Link("first")
	if err != nil {
		t.Fatal(err)
	}
	secondAddr, _ := p.LabelAddr("second")
	topAddr, _ := p.LabelAddr("first.top")
	in, err := p.Decode(secondAddr)
	if err != nil {
		t.Fatal(err)
	}
	tgt, ok := in.BranchTarget()
	if !ok || tgt != topAddr {
		t.Errorf("cross-function jmp target = %#x, want %#x", tgt, topAddr)
	}
}

func TestLocalLabelShadowsGlobal(t *testing.T) {
	// A local label with the same name as a function resolves locally.
	b := NewBuilder(0)
	f1 := b.Func("aux", true)
	f1.Ret()
	f2 := b.Func("main", true)
	f2.Nop(1)
	f2.Label("aux")
	f2.Nop(1)
	f2.JmpTo("aux")
	f2.Halt()
	p, err := b.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	localAux, _ := p.LabelAddr("main.aux")
	mainAddr, _ := p.LabelAddr("main")
	in, err := p.Decode(mainAddr + 2) // nop, nop, then jmp
	if err != nil {
		t.Fatal(err)
	}
	tgt, _ := in.BranchTarget()
	if tgt != localAux {
		t.Errorf("jmp resolved to %#x, want local label %#x", tgt, localAux)
	}
}

func TestBytesAt(t *testing.T) {
	p := buildTiny(t)
	if bs := p.BytesAt(p.Base, 4); len(bs) != 4 {
		t.Errorf("BytesAt len = %d", len(bs))
	}
	if bs := p.BytesAt(p.End()-2, 10); len(bs) != 2 {
		t.Errorf("clamped BytesAt len = %d", len(bs))
	}
	if bs := p.BytesAt(p.End(), 1); bs != nil {
		t.Error("BytesAt outside image should be nil")
	}
}

func TestHasLabel(t *testing.T) {
	b := NewBuilder(0)
	f := b.Func("f", false)
	f.Label("x")
	if !f.HasLabel("x") || f.HasLabel("y") {
		t.Error("HasLabel wrong")
	}
}
