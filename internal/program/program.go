// Package program builds executable VLX code images. The workload
// synthesizer (internal/workload) uses it to lay out thousands of
// functions — hot and cold deliberately interleaved so they share
// instruction cache lines — which is the precondition for the shadow
// branch phenomenon the paper studies: cold branches resident in L1-I
// lines fetched on behalf of hot code.
//
// The builder works in two passes. Pass one records instructions and
// label/function references with placeholder offsets; pass two assigns
// final addresses and patches every PC-relative field.
package program

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// LineSize is the instruction cache line size in bytes, shared across
// the whole simulator (paper Table 1: 64B lines).
const LineSize = 64

// LineAddr returns the address of the cache line containing pc.
func LineAddr(pc uint64) uint64 { return pc &^ (LineSize - 1) }

// LineOffset returns pc's byte offset within its cache line.
func LineOffset(pc uint64) int { return int(pc & (LineSize - 1)) }

// Func describes one laid-out function in the final image.
type Func struct {
	Name string
	Addr uint64
	Size int
	// Hot marks functions the workload model executes frequently.
	Hot bool
}

// Program is a finished, immutable code image.
type Program struct {
	// Base is the load address of Code[0].
	Base uint64
	// Code is the raw byte image.
	Code []byte
	// Funcs lists functions sorted by address.
	Funcs []Func
	// Entry is the starting PC.
	Entry uint64

	labels map[string]uint64
}

// End returns the first address past the image.
func (p *Program) End() uint64 { return p.Base + uint64(len(p.Code)) }

// Contains reports whether pc falls inside the image.
func (p *Program) Contains(pc uint64) bool { return pc >= p.Base && pc < p.End() }

// BytesAt returns up to n bytes of code starting at pc, or nil if pc is
// outside the image. The slice aliases the image.
func (p *Program) BytesAt(pc uint64, n int) []byte {
	if !p.Contains(pc) {
		return nil
	}
	off := int(pc - p.Base)
	if off+n > len(p.Code) {
		n = len(p.Code) - off
	}
	return p.Code[off : off+n]
}

// Line returns the full cache line containing pc, padded view into the
// image, or nil when outside.
func (p *Program) Line(pc uint64) []byte {
	return p.BytesAt(LineAddr(pc), LineSize)
}

// Decode decodes the instruction at pc.
func (p *Program) Decode(pc uint64) (isa.Inst, error) {
	bs := p.BytesAt(pc, isa.MaxInstLen)
	if bs == nil {
		return isa.Inst{}, fmt.Errorf("program: pc %#x outside image [%#x,%#x)", pc, p.Base, p.End())
	}
	return isa.Decode(bs, pc)
}

// FuncAt returns the function containing pc, or nil.
func (p *Program) FuncAt(pc uint64) *Func {
	i := sort.Search(len(p.Funcs), func(i int) bool { return p.Funcs[i].Addr > pc })
	if i == 0 {
		return nil
	}
	f := &p.Funcs[i-1]
	if pc < f.Addr+uint64(f.Size) {
		return f
	}
	return nil
}

// LabelAddr returns the resolved address of a named label or function.
func (p *Program) LabelAddr(name string) (uint64, bool) {
	a, ok := p.labels[name]
	return a, ok
}

// fixupKind distinguishes the relocation field widths in play.
type fixupKind uint8

const (
	fixRel32 fixupKind = iota // patch 4 bytes at pos, relative to pos+4
)

type fixup struct {
	kind   fixupKind
	pos    int    // byte offset of the relocation field within the function body
	target string // label or function name
}

// FuncBuilder assembles one function. Obtain one from Builder.Func.
// It embeds the instruction encoder so callers write fb.MovImm32(...)
// directly, and adds label-based branch emitters on top.
type FuncBuilder struct {
	isa.Asm
	name    string
	hot     bool
	align   int
	labels  map[string]int // label -> offset within body
	fixups  []fixup
	builder *Builder
}

// Label defines a local label at the current position. Labels share a
// namespace with function names at link time; the builder qualifies
// local labels as "func.label" to keep them unique, and Branch emitters
// resolve unqualified names against local labels first.
func (fb *FuncBuilder) Label(name string) {
	fb.labels[name] = fb.Len()
}

// HasLabel reports whether a local label is defined.
func (fb *FuncBuilder) HasLabel(name string) bool {
	_, ok := fb.labels[name]
	return ok
}

// JmpTo emits a rel32 unconditional jump to a label or function.
func (fb *FuncBuilder) JmpTo(target string) {
	fb.JmpRel32(0)
	fb.fixups = append(fb.fixups, fixup{fixRel32, fb.Len() - 4, target})
}

// JccTo emits a rel32 conditional jump to a label or function.
func (fb *FuncBuilder) JccTo(cc uint8, target string) {
	fb.JccRel32(cc, 0)
	fb.fixups = append(fb.fixups, fixup{fixRel32, fb.Len() - 4, target})
}

// CallTo emits a rel32 direct call to a label or function.
func (fb *FuncBuilder) CallTo(target string) {
	fb.CallRel32(0)
	fb.fixups = append(fb.fixups, fixup{fixRel32, fb.Len() - 4, target})
}

// Builder accumulates functions and produces a linked Program.
type Builder struct {
	base  uint64
	funcs []*FuncBuilder
	byNam map[string]*FuncBuilder
}

// NewBuilder creates a Builder whose image will be loaded at base. The
// base is rounded up to a line boundary.
func NewBuilder(base uint64) *Builder {
	return &Builder{
		base:  (base + LineSize - 1) &^ (LineSize - 1),
		byNam: make(map[string]*FuncBuilder),
	}
}

// Func starts a new function appended after all existing ones. Layout
// order is definition order, which is how the workload generator
// interleaves hot and cold code. Duplicate names panic: that is a
// generator bug.
func (b *Builder) Func(name string, hot bool) *FuncBuilder {
	if _, dup := b.byNam[name]; dup {
		panic(fmt.Sprintf("program: duplicate function %q", name))
	}
	fb := &FuncBuilder{
		name:    name,
		hot:     hot,
		labels:  make(map[string]int),
		builder: b,
	}
	b.funcs = append(b.funcs, fb)
	b.byNam[name] = fb
	return fb
}

// SetAlign requests byte alignment (power of two) for the function
// start. Zero means "pack tightly": the next function starts at the very
// next byte, maximizing cache-line sharing between functions.
func (fb *FuncBuilder) SetAlign(a int) { fb.align = a }

// NumFuncs returns the number of functions defined so far.
func (b *Builder) NumFuncs() int { return len(b.funcs) }

// Link lays out all functions, resolves every fixup, and returns the
// immutable Program. entry names the entry function.
func (b *Builder) Link(entry string) (*Program, error) {
	if _, ok := b.byNam[entry]; !ok {
		return nil, fmt.Errorf("program: entry function %q not defined", entry)
	}
	// Pass 1: assign addresses.
	addr := b.base
	addrs := make(map[string]uint64, len(b.funcs))
	var image []byte
	var pads []int
	for _, fb := range b.funcs {
		pad := 0
		if fb.align > 1 {
			a := uint64(fb.align)
			aligned := (addr + a - 1) &^ (a - 1)
			pad = int(aligned - addr)
		}
		pads = append(pads, pad)
		addr += uint64(pad)
		addrs[fb.name] = addr
		addr += uint64(fb.Len())
	}
	// Pass 2: resolve labels to absolute addresses.
	labels := make(map[string]uint64)
	for _, fb := range b.funcs {
		labels[fb.name] = addrs[fb.name]
		for l, off := range fb.labels {
			labels[fb.name+"."+l] = addrs[fb.name] + uint64(off)
		}
	}
	// Pass 3: patch fixups and assemble the image.
	var pad isa.Asm
	for i, fb := range b.funcs {
		for _, fx := range fb.fixups {
			tgt, ok := labels[fb.name+"."+fx.target]
			if !ok {
				tgt, ok = labels[fx.target]
			}
			if !ok {
				return nil, fmt.Errorf("program: %s: undefined branch target %q", fb.name, fx.target)
			}
			switch fx.kind {
			case fixRel32:
				fieldEnd := addrs[fb.name] + uint64(fx.pos) + 4
				rel := int64(tgt) - int64(fieldEnd)
				if rel != int64(int32(rel)) {
					return nil, fmt.Errorf("program: %s: target %q out of rel32 range", fb.name, fx.target)
				}
				fb.PatchRel32(fx.pos, int32(rel))
			}
		}
		if pads[i] > 0 {
			pad.Reset()
			pad.Nop(pads[i])
			image = append(image, pad.Bytes()...)
		}
		image = append(image, fb.Bytes()...)
	}
	// Pad the image to a whole number of lines so Program.Line always
	// returns LineSize bytes for any in-image pc.
	if rem := len(image) % LineSize; rem != 0 {
		pad.Reset()
		pad.Nop(LineSize - rem)
		image = append(image, pad.Bytes()...)
	}

	funcs := make([]Func, len(b.funcs))
	for i, fb := range b.funcs {
		funcs[i] = Func{Name: fb.name, Addr: addrs[fb.name], Size: fb.Len(), Hot: fb.hot}
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Addr < funcs[j].Addr })

	return &Program{
		Base:   b.base,
		Code:   image,
		Funcs:  funcs,
		Entry:  addrs[entry],
		labels: labels,
	}, nil
}
