package tage

import (
	"math/rand"
	"testing"
)

func smallConfig() Config {
	return Config{
		NumTables: 6,
		LogBase:   12,
		LogTagged: 9,
		TagBits:   9,
		MinHist:   4,
		MaxHist:   64,
		UseLoop:   true,
		UseSC:     true,
	}
}

// train runs the predictor over a synthetic branch stream and returns
// the mispredict rate over the last `measure` predictions.
func train(p *Predictor, pcs []uint64, outcome func(pc uint64, visit uint64) bool, total, measure int) float64 {
	visits := map[uint64]uint64{}
	misses := 0
	for i := 0; i < total; i++ {
		pc := pcs[i%len(pcs)]
		taken := outcome(pc, visits[pc])
		visits[pc]++
		pred := p.Predict(pc)
		p.SpecPush(pred.Taken, pc)
		if i >= total-measure && pred.Taken != taken {
			misses++
		}
		p.Update(pc, pred, taken)
		p.ArchPush(taken, pc)
		if pred.Taken != taken {
			p.SyncSpec()
		}
	}
	return float64(misses) / float64(measure)
}

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(smallConfig())
	rate := train(p, []uint64{0x400}, func(uint64, uint64) bool { return true }, 2000, 1000)
	if rate > 0.01 {
		t.Errorf("always-taken mispredict rate %.3f", rate)
	}
}

func TestLearnsAlternating(t *testing.T) {
	p := New(smallConfig())
	rate := train(p, []uint64{0x400}, func(_ uint64, v uint64) bool { return v%2 == 0 }, 4000, 1000)
	if rate > 0.02 {
		t.Errorf("alternating mispredict rate %.3f", rate)
	}
}

func TestLearnsShortLoop(t *testing.T) {
	p := New(smallConfig())
	// Loop with trip 5: taken 4, not-taken 1, repeat.
	rate := train(p, []uint64{0x1234}, func(_ uint64, v uint64) bool { return v%5 != 4 }, 8000, 2000)
	if rate > 0.03 {
		t.Errorf("trip-5 loop mispredict rate %.3f", rate)
	}
}

func TestLoopPredictorLearnsLongLoop(t *testing.T) {
	// Trip 40 exceeds plain TAGE history capture for a single branch;
	// the loop predictor should nail it.
	p := New(smallConfig())
	rate := train(p, []uint64{0x88}, func(_ uint64, v uint64) bool { return v%40 != 39 }, 40*400, 40*100)
	if rate > 0.05 {
		t.Errorf("trip-40 loop mispredict rate %.3f", rate)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	p := New(smallConfig())
	rng := rand.New(rand.NewSource(5))
	misses := 0
	const n = 20000
	for i := 0; i < n; i++ {
		taken := rng.Intn(2) == 0
		pred := p.Predict(0x999)
		p.SpecPush(pred.Taken, 0x999)
		if pred.Taken != taken {
			misses++
		}
		p.Update(0x999, pred, taken)
		p.ArchPush(taken, 0x999)
		if pred.Taken != taken {
			p.SyncSpec()
		}
	}
	rate := float64(misses) / n
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("random branch mispredict rate %.3f, want ~0.5", rate)
	}
}

func TestManyBranchesHistoryCorrelated(t *testing.T) {
	// A branch whose outcome equals the outcome of the previous branch
	// in the stream: pure history correlation, bimodal alone cannot get
	// this but TAGE should.
	p := New(smallConfig())
	pcs := []uint64{0x100, 0x200, 0x300, 0x400}
	last := false
	misses, measured := 0, 0
	rng := rand.New(rand.NewSource(9))
	const n = 60000
	for i := 0; i < n; i++ {
		pc := pcs[i%len(pcs)]
		var taken bool
		if pc == 0x100 {
			taken = rng.Intn(2) == 0 // driver: random
		} else {
			taken = last // followers copy the driver
		}
		pred := p.Predict(pc)
		p.SpecPush(pred.Taken, pc)
		if pc != 0x100 && i > n/2 {
			measured++
			if pred.Taken != taken {
				misses++
			}
		}
		p.Update(pc, pred, taken)
		p.ArchPush(taken, pc)
		if pred.Taken != taken {
			p.SyncSpec()
		}
		if pc == 0x100 {
			last = taken
		}
	}
	rate := float64(misses) / float64(measured)
	if rate > 0.10 {
		t.Errorf("history-correlated mispredict rate %.3f", rate)
	}
}

func TestPredictIsPure(t *testing.T) {
	p := New(smallConfig())
	// Prime with some updates.
	for i := 0; i < 100; i++ {
		pred := p.Predict(0x10)
		p.SpecPush(pred.Taken, 0x10)
		p.Update(0x10, pred, i%3 != 0)
		p.ArchPush(i%3 != 0, 0x10)
		if pred.Taken != (i%3 != 0) {
			p.SyncSpec()
		}
	}
	a := p.Predict(0x20)
	for i := 0; i < 50; i++ {
		p.Predict(uint64(0x1000 + i*8)) // wrong-path probes
	}
	b := p.Predict(0x20)
	if a != b {
		t.Error("Predict mutated predictor state")
	}
}

func TestStats(t *testing.T) {
	p := New(smallConfig())
	for i := 0; i < 10; i++ {
		pred := p.Predict(4)
		p.Update(4, pred, true)
	}
	s := p.Stats()
	if s.Predicts != 10 {
		t.Errorf("predicts = %d", s.Predicts)
	}
	p.ResetStats()
	if p.Stats().Predicts != 0 {
		t.Error("stats not reset")
	}
}

func TestStorageBits(t *testing.T) {
	bits := DefaultConfig().StorageBits()
	kb := float64(bits) / 8 / 1024
	// Should be in the tens of KB, the paper's 64KB class.
	if kb < 16 || kb > 96 {
		t.Errorf("default TAGE storage %.1f KB implausible", kb)
	}
}

func TestFoldedHistoryEquivalence(t *testing.T) {
	// The folded register must equal the direct fold of the history
	// window at all times.
	h := newHistory(256)
	const origLen, compLen = 23, 7
	f := newFolded(origLen, compLen)
	rng := rand.New(rand.NewSource(11))
	var window []uint64
	for step := 0; step < 2000; step++ {
		b := uint64(rng.Intn(2))
		oldest := uint64(0)
		if len(window) >= origLen {
			oldest = window[len(window)-origLen]
		} else {
			oldest = h.bit(origLen - 1) // zeros before warmup
		}
		f.update(b, oldest)
		h.push(b)
		window = append(window, b)

		// Direct computation: fold the last origLen bits.
		var direct uint64
		for i := 0; i < origLen; i++ {
			var bit uint64
			if i < len(window) {
				bit = window[len(window)-1-i]
			}
			// bit i (0 = newest) contributes at position
			// (origLen-1-i) mod compLen... — replicate the register's
			// shift semantics instead: rebuild by replay.
			_ = bit
			_ = direct
		}
		// Rebuild by replaying into a fresh register; must match.
		f2 := newFolded(origLen, compLen)
		var replay []uint64
		if len(window) > 512 {
			t.Skip("window bounded for test speed")
		}
		replay = window
		h2 := newHistory(256)
		for _, rb := range replay {
			old := h2.bit(origLen - 1)
			f2.update(rb, old)
			h2.push(rb)
		}
		if f2.comp != f.comp {
			t.Fatalf("step %d: folded register diverged: %#x vs %#x", step, f.comp, f2.comp)
		}
	}
}

func TestHistoryBuffer(t *testing.T) {
	h := newHistory(128)
	seq := []uint64{1, 0, 1, 1, 0, 0, 1}
	for _, b := range seq {
		h.push(b)
	}
	for k := 0; k < len(seq); k++ {
		want := seq[len(seq)-1-k]
		if got := h.bit(k); got != want {
			t.Errorf("bit(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestSaturatingCounters(t *testing.T) {
	c := int8(0)
	for i := 0; i < 10; i++ {
		c = satUpdate3(c, true)
	}
	if c != 3 {
		t.Errorf("sat3 up = %d", c)
	}
	for i := 0; i < 20; i++ {
		c = satUpdate3(c, false)
	}
	if c != -4 {
		t.Errorf("sat3 down = %d", c)
	}
	b := int8(0)
	for i := 0; i < 10; i++ {
		b = satUpdate2(b, true)
	}
	if b != 1 {
		t.Errorf("sat2 up = %d", b)
	}
	for i := 0; i < 10; i++ {
		b = satUpdate2(b, false)
	}
	if b != -2 {
		t.Errorf("sat2 down = %d", b)
	}
	s := int8(0)
	for i := 0; i < 100; i++ {
		s = satUpdate(s, true, 63)
	}
	if s != 63 {
		t.Errorf("sat bound = %d", s)
	}
}

func TestGeometricHistoryLengths(t *testing.T) {
	p := New(DefaultConfig())
	prev := 0
	for i, tb := range p.tables {
		if tb.histLen <= prev {
			t.Errorf("table %d history %d not increasing (prev %d)", i, tb.histLen, prev)
		}
		prev = tb.histLen
	}
	if p.tables[0].histLen != DefaultConfig().MinHist {
		t.Errorf("first table history %d != MinHist", p.tables[0].histLen)
	}
	last := p.tables[len(p.tables)-1].histLen
	if last != DefaultConfig().MaxHist {
		t.Errorf("last table history %d != MaxHist", last)
	}
}

func BenchmarkPredictUpdate(b *testing.B) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	pcs := make([]uint64, 256)
	for i := range pcs {
		pcs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := pcs[i%len(pcs)]
		pred := p.Predict(pc)
		p.SpecPush(pred.Taken, pc)
		p.Update(pc, pred, i%3 != 0)
		p.ArchPush(i%3 != 0, pc)
		if pred.Taken != (i%3 != 0) {
			p.SyncSpec()
		}
	}
}

// TestStatsConservation trains on an unpredictable stream and checks
// the counter identities that make the stats exportable: mispredicts
// never exceed predicts, overrides never exceed predicts, and a
// misprediction-heavy stream allocates tagged entries.
func TestStatsConservation(t *testing.T) {
	p := New(smallConfig())
	rng := rand.New(rand.NewSource(7))
	const n = 2000
	for i := 0; i < n; i++ {
		pc := uint64(0x40 + (i%13)*4)
		pred := p.Predict(pc)
		taken := rng.Intn(2) == 1
		p.Update(pc, pred, taken)
		p.ArchPush(taken, pc)
		p.SyncSpec()
	}
	s := p.Stats()
	if s.Predicts != n {
		t.Fatalf("predicts = %d, want %d", s.Predicts, n)
	}
	if s.Mispredicts > s.Predicts {
		t.Errorf("mispredicts %d exceed predicts %d", s.Mispredicts, s.Predicts)
	}
	if s.LoopOverrides+s.SCOverrides > s.Predicts {
		t.Errorf("overrides %d+%d exceed predicts %d", s.LoopOverrides, s.SCOverrides, s.Predicts)
	}
	if s.Allocations == 0 {
		t.Error("random-direction training allocated no tagged entries")
	}
}
