// Package tage implements a TAGE-SC-L style conditional branch
// predictor (Seznec, CBP-5), the direction predictor the paper's
// baseline front-end uses (Table 1). It is a genuine TAGE: a bimodal
// base table plus N partially-tagged tables indexed by geometrically
// increasing global-history lengths via folded-history registers,
// usefulness counters, and allocation on misprediction — augmented with
// a loop predictor ("L") and a small statistical-corrector bias table
// ("SC").
//
// The simulator uses the immediate-update discipline common in
// front-end studies: the true outcome is known when the prediction is
// consumed, so Predict is followed by Update with the architectural
// outcome, and wrong-path predictions call Predict only (no state
// change). Global history therefore always reflects the true path.
package tage

import "math"

// Config sizes the predictor.
type Config struct {
	// NumTables is the number of tagged tables.
	NumTables int
	// LogBase is log2 of bimodal entries.
	LogBase int
	// LogTagged is log2 of entries per tagged table.
	LogTagged int
	// TagBits is the partial tag width in tagged tables.
	TagBits int
	// MinHist and MaxHist bound the geometric history series.
	MinHist, MaxHist int
	// UseLoop enables the loop predictor.
	UseLoop bool
	// UseSC enables the statistical-corrector bias table.
	UseSC bool
}

// DefaultConfig approximates the paper's 64KB TAGE-SC-L budget.
func DefaultConfig() Config {
	return Config{
		NumTables: 8,
		LogBase:   14,
		LogTagged: 11,
		TagBits:   11,
		MinHist:   5,
		MaxHist:   160,
		UseLoop:   true,
		UseSC:     true,
	}
}

// StorageBits returns the approximate hardware budget in bits.
func (c Config) StorageBits() int {
	bits := (1 << c.LogBase) * 2
	perEntry := 3 + c.TagBits + 2 // ctr + tag + u
	bits += c.NumTables * (1 << c.LogTagged) * perEntry
	if c.UseLoop {
		bits += loopEntries * 52
	}
	if c.UseSC {
		bits += scEntries * 6
	}
	return bits
}

// Stats counts prediction events.
type Stats struct {
	Predicts      uint64
	Mispredicts   uint64
	ProviderHits  [16]uint64 // per-table provider counts (0 = bimodal)
	LoopOverrides uint64
	SCOverrides   uint64
	Allocations   uint64
}

type taggedEntry struct {
	ctr int8 // 3-bit signed saturating [-4,3]
	tag uint32
	u   uint8 // 2-bit usefulness
}

// folded is a Seznec cyclic-shift-register folding of the most recent
// origLen history bits into compLen bits.
type folded struct {
	comp     uint64
	compLen  uint
	origLen  uint
	outPoint uint
}

func newFolded(origLen, compLen int) folded {
	return folded{
		compLen:  uint(compLen),
		origLen:  uint(origLen),
		outPoint: uint(origLen % compLen),
	}
}

// update incorporates a new youngest bit; oldest is the bit that leaves
// the origLen window (the previously (origLen-1)-th most recent bit).
func (f *folded) update(youngest, oldest uint64) {
	f.comp = (f.comp << 1) | youngest
	f.comp ^= oldest << f.outPoint
	f.comp ^= f.comp >> f.compLen
	f.comp &= (1 << f.compLen) - 1
}

// history is a circular global-history bit buffer.
type history struct {
	bits []uint64
	ptr  int // index of most recent bit
	mask int
}

func newHistory(n int) *history {
	// Round up to a power of two of at least n bits.
	words := 1
	for words*64 < n {
		words *= 2
	}
	return &history{bits: make([]uint64, words), mask: words*64 - 1}
}

// bit returns the k-th most recent bit (k=0 is newest).
func (h *history) bit(k int) uint64 {
	idx := (h.ptr - k) & h.mask
	return (h.bits[idx/64] >> (uint(idx) % 64)) & 1
}

// push inserts a new most-recent bit.
func (h *history) push(b uint64) {
	h.ptr = (h.ptr + 1) & h.mask
	word, off := h.ptr/64, uint(h.ptr)%64
	h.bits[word] = (h.bits[word] &^ (1 << off)) | (b << off)
}

// table is one tagged component.
type table struct {
	entries []taggedEntry
	histLen int
}

const (
	loopEntries = 256
	scEntries   = 4096
)

// loopEntry tracks one candidate loop branch.
type loopEntry struct {
	pc       uint64
	trip     uint32 // learned trip count
	current  uint32 // position within the current iteration run
	conf     uint8  // confidence that trip is stable
	takenRun uint32 // running count of consecutive takens
	valid    bool
}

// Prediction carries everything Update needs: the predicted direction
// and the provider bookkeeping.
type Prediction struct {
	// Taken is the final predicted direction.
	Taken bool

	provider  int // -1 = bimodal
	altTaken  bool
	provTaken bool
	indices   [16]uint32
	tags      [16]uint32
	baseIdx   uint32
	loopHit   bool
	loopTaken bool
	scUsed    bool
}

// histState is one complete global-history state: the raw bit buffer,
// the per-table folded registers derived from it, and the path history.
// The predictor keeps two: a speculative state updated with predicted
// outcomes at prediction time (what the BPU indexes with), and an
// architectural state updated with true outcomes at decode. A re-steer
// copies arch over spec, modeling hardware history checkpointing.
type histState struct {
	ghist *history
	phist uint64
	folds [][3]folded // per table: index, tag, tag2
}

func (h *histState) push(b uint64, pc uint64, tables []table) {
	for i := range tables {
		oldest := h.ghist.bit(tables[i].histLen - 1)
		h.folds[i][0].update(b, oldest)
		h.folds[i][1].update(b, oldest)
		h.folds[i][2].update(b, oldest)
	}
	h.ghist.push(b)
	h.phist = (h.phist << 1) | ((pc >> 2) & 1)
}

func (h *histState) copyFrom(src *histState) {
	copy(h.ghist.bits, src.ghist.bits)
	h.ghist.ptr = src.ghist.ptr
	h.phist = src.phist
	copy(h.folds, src.folds)
}

// Predictor is a TAGE-SC-L direction predictor. Not safe for concurrent
// use.
type Predictor struct {
	cfg    Config
	base   []int8 // 2-bit bimodal [-2,1]
	tables []table
	spec   histState // prediction-time history
	arch   histState // decode-time (true-path) history
	loop   []loopEntry
	sc     []int8 // per-hash bias counters
	useAlt int8   // USE_ALT_ON_NA counter
	stats  Stats
}

// New builds a predictor from cfg.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:  cfg,
		base: make([]int8, 1<<cfg.LogBase),
	}
	// Geometric history lengths between MinHist and MaxHist.
	p.tables = make([]table, cfg.NumTables)
	p.spec = histState{ghist: newHistory(cfg.MaxHist + 64), folds: make([][3]folded, cfg.NumTables)}
	p.arch = histState{ghist: newHistory(cfg.MaxHist + 64), folds: make([][3]folded, cfg.NumTables)}
	for i := range p.tables {
		var l int
		if cfg.NumTables == 1 {
			l = cfg.MinHist
		} else {
			ratio := float64(cfg.MaxHist) / float64(cfg.MinHist)
			l = int(float64(cfg.MinHist)*math.Pow(ratio, float64(i)/float64(cfg.NumTables-1)) + 0.5)
		}
		p.tables[i] = table{
			entries: make([]taggedEntry, 1<<cfg.LogTagged),
			histLen: l,
		}
		fs := [3]folded{
			newFolded(l, cfg.LogTagged),
			newFolded(l, cfg.TagBits),
			newFolded(l, cfg.TagBits-1),
		}
		p.spec.folds[i] = fs
		p.arch.folds[i] = fs
	}
	if cfg.UseLoop {
		p.loop = make([]loopEntry, loopEntries)
	}
	if cfg.UseSC {
		p.sc = make([]int8, scEntries)
	}
	return p
}

// clone returns an independent deep copy of one history state.
func (h *histState) clone() histState {
	c := histState{phist: h.phist}
	if h.ghist != nil {
		c.ghist = &history{
			bits: make([]uint64, len(h.ghist.bits)),
			ptr:  h.ghist.ptr,
			mask: h.ghist.mask,
		}
		copy(c.ghist.bits, h.ghist.bits)
	}
	if h.folds != nil {
		c.folds = make([][3]folded, len(h.folds))
		copy(c.folds, h.folds)
	}
	return c
}

// Clone returns an independent deep copy of the predictor: same table
// contents, both history states, loop and bias state, and statistics.
func (p *Predictor) Clone() *Predictor {
	n := &Predictor{
		cfg:    p.cfg,
		base:   make([]int8, len(p.base)),
		tables: make([]table, len(p.tables)),
		spec:   p.spec.clone(),
		arch:   p.arch.clone(),
		loop:   make([]loopEntry, len(p.loop)),
		sc:     make([]int8, len(p.sc)),
		useAlt: p.useAlt,
		stats:  p.stats,
	}
	copy(n.base, p.base)
	copy(n.loop, p.loop)
	copy(n.sc, p.sc)
	for i, t := range p.tables {
		n.tables[i] = table{entries: make([]taggedEntry, len(t.entries)), histLen: t.histLen}
		copy(n.tables[i].entries, t.entries)
	}
	return n
}

func (p *Predictor) index(i int, pc uint64) uint32 {
	mask := uint32(1<<p.cfg.LogTagged) - 1
	h := uint32(pc) ^ uint32(pc>>uint(p.cfg.LogTagged)) ^ uint32(p.spec.folds[i][0].comp) ^
		uint32(p.spec.phist&((1<<16)-1))*uint32(i*2+1)
	return h & mask
}

func (p *Predictor) tag(i int, pc uint64) uint32 {
	mask := uint32(1<<p.cfg.TagBits) - 1
	return (uint32(pc) ^ uint32(p.spec.folds[i][1].comp) ^ (uint32(p.spec.folds[i][2].comp) << 1)) & mask
}

func (p *Predictor) baseIndex(pc uint64) uint32 {
	return uint32(pc) & (uint32(1<<p.cfg.LogBase) - 1)
}

// Predict computes the direction prediction for the conditional branch
// at pc without changing any state, so it is safe on the wrong path.
func (p *Predictor) Predict(pc uint64) Prediction {
	pr := Prediction{provider: -1}
	pr.baseIdx = p.baseIndex(pc)
	basePred := p.base[pr.baseIdx] >= 0

	// Find the two longest-history matching tables.
	prov, alt := -1, -1
	for i := p.cfg.NumTables - 1; i >= 0; i-- {
		idx := p.index(i, pc)
		tg := p.tag(i, pc)
		pr.indices[i] = idx
		pr.tags[i] = tg
		e := &p.tables[i].entries[idx]
		if e.tag == tg {
			if prov < 0 {
				prov = i
			} else if alt < 0 {
				alt = i
				break
			}
		}
	}
	pr.provider = prov
	altPred := basePred
	if alt >= 0 {
		altPred = p.tables[alt].entries[pr.indices[alt]].ctr >= 0
	}
	pr.altTaken = altPred
	pred := basePred
	if prov >= 0 {
		e := &p.tables[prov].entries[pr.indices[prov]]
		pr.provTaken = e.ctr >= 0
		// Weak new entries may be overridden by the alternate
		// prediction (USE_ALT_ON_NA heuristic).
		weak := (e.ctr == 0 || e.ctr == -1) && e.u == 0
		if weak && p.useAlt >= 0 {
			pred = altPred
		} else {
			pred = pr.provTaken
		}
	}
	pr.Taken = pred

	// Statistical corrector: flip low-confidence predictions when the
	// per-branch bias strongly disagrees.
	if p.cfg.UseSC {
		scIdx := (uint32(pc) ^ uint32(pc>>12)) & (scEntries - 1)
		bias := p.sc[scIdx]
		conf := 0
		if prov >= 0 {
			c := p.tables[prov].entries[pr.indices[prov]].ctr
			if c >= 2 || c <= -3 {
				conf = 1
			}
		}
		if conf == 0 && (bias >= 24 || bias <= -24) {
			newPred := bias >= 0
			if newPred != pred {
				pr.scUsed = true
				pred = newPred
				pr.Taken = pred
			}
		}
	}

	// Loop predictor override: a confident loop entry knows exactly
	// which visit falls through.
	if p.cfg.UseLoop {
		le := &p.loop[p.loopIndex(pc)]
		if le.valid && le.pc == pc && le.conf >= 3 && le.trip > 0 {
			pr.loopHit = true
			pr.loopTaken = le.current != le.trip-1
			pr.Taken = pr.loopTaken
		}
	}
	return pr
}

func (p *Predictor) loopIndex(pc uint64) uint32 {
	return uint32(pc>>2) & (loopEntries - 1)
}

// Update trains the predictor with the architectural outcome of the
// branch previously predicted by pred, then pushes the outcome into the
// global history. Call it exactly once per true-path conditional.
func (p *Predictor) Update(pc uint64, pred Prediction, taken bool) {
	p.stats.Predicts++
	if pred.Taken != taken {
		p.stats.Mispredicts++
	}

	// Loop predictor training.
	if p.cfg.UseLoop {
		p.trainLoop(pc, pred, taken)
		if pred.loopHit && pred.loopTaken == taken && pred.provTaken != taken {
			p.stats.LoopOverrides++
		}
	}
	if pred.scUsed && pred.Taken == taken {
		p.stats.SCOverrides++
	}
	if p.cfg.UseSC {
		scIdx := (uint32(pc) ^ uint32(pc>>12)) & (scEntries - 1)
		p.sc[scIdx] = satUpdate(p.sc[scIdx], taken, 63)
	}

	prov := pred.provider
	if prov >= 0 {
		pr := &p.tables[prov].entries[pred.indices[prov]]
		if pred.provider >= 0 && int(prov) < len(p.stats.ProviderHits) {
			p.stats.ProviderHits[prov]++
		}
		// Update usefulness when provider and alt disagree.
		if pred.provTaken != pred.altTaken {
			if pred.provTaken == taken {
				if pr.u < 3 {
					pr.u++
				}
			} else if pr.u > 0 {
				pr.u--
			}
			// Train USE_ALT_ON_NA on weak entries.
			weak := (pr.ctr == 0 || pr.ctr == -1) && pr.u == 0
			if weak {
				if pred.provTaken == taken {
					if p.useAlt > -8 {
						p.useAlt--
					}
				} else if p.useAlt < 7 {
					p.useAlt++
				}
			}
		}
		pr.ctr = satUpdate3(pr.ctr, taken)
	} else {
		p.stats.ProviderHits[0]++
	}
	// Base table always trains.
	p.base[pred.baseIdx] = satUpdate2(p.base[pred.baseIdx], taken)

	// Allocate on misprediction in a longer-history table.
	if pred.Taken != taken && prov < p.cfg.NumTables-1 {
		p.allocate(pc, pred, taken, prov)
	}

}

// SpecPush records a *predicted* conditional outcome into the
// speculative history at prediction time. The BPU indexes with this
// state, so the history a branch sees is a deterministic function of
// program position as long as predictions are correct.
func (p *Predictor) SpecPush(taken bool, pc uint64) {
	var b uint64
	if taken {
		b = 1
	}
	p.spec.push(b, pc, p.tables)
}

// ArchPush records a *true* conditional outcome into the architectural
// history at decode.
func (p *Predictor) ArchPush(taken bool, pc uint64) {
	var b uint64
	if taken {
		b = 1
	}
	p.arch.push(b, pc, p.tables)
}

// SyncSpec repairs the speculative history from the architectural one
// after a re-steer (hardware history checkpoint restore).
func (p *Predictor) SyncSpec() { p.spec.copyFrom(&p.arch) }

// allocate claims up to one entry in a table with longer history than
// the provider, preferring entries with zero usefulness.
func (p *Predictor) allocate(pc uint64, pred Prediction, taken bool, prov int) {
	start := prov + 1
	// Probabilistically skip one table to spread allocations (cheap
	// stand-in for Seznec's random skip, derived from path history).
	if start < p.cfg.NumTables-1 && p.spec.phist&3 == 3 {
		start++
	}
	for i := start; i < p.cfg.NumTables; i++ {
		e := &p.tables[i].entries[pred.indices[i]]
		if e.u == 0 {
			e.tag = pred.tags[i]
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			e.u = 0
			p.stats.Allocations++
			return
		}
	}
	// No victim: age usefulness along the way.
	for i := prov + 1; i < p.cfg.NumTables; i++ {
		e := &p.tables[i].entries[pred.indices[i]]
		if e.u > 0 {
			e.u--
		}
	}
}

func (p *Predictor) trainLoop(pc uint64, pred Prediction, taken bool) {
	le := &p.loop[p.loopIndex(pc)]
	if !le.valid || le.pc != pc {
		// Adopt the slot for this branch on a taken outcome.
		if taken {
			*le = loopEntry{pc: pc, valid: true, takenRun: 1}
		}
		return
	}
	if taken {
		le.takenRun++
		le.current++
		if le.trip > 0 && le.current >= le.trip {
			// Ran past the learned trip count: trip unstable.
			if le.conf > 0 {
				le.conf--
			} else {
				le.trip = 0
			}
			le.current = 0
		}
		return
	}
	// Not taken: the run ended; takenRun+1 is the observed trip count.
	observed := le.takenRun + 1
	if le.trip == observed {
		if le.conf < 7 {
			le.conf++
		}
	} else {
		le.trip = observed
		le.conf = 0
	}
	le.takenRun = 0
	le.current = 0
}

// Stats returns accumulated counts.
func (p *Predictor) Stats() Stats { return p.stats }

// ResetStats zeroes statistics without forgetting learned state.
func (p *Predictor) ResetStats() { p.stats = Stats{} }

// satUpdate3 is a 3-bit signed saturating counter update in [-4,3].
func satUpdate3(c int8, up bool) int8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > -4 {
		return c - 1
	}
	return c
}

// satUpdate2 is a 2-bit signed saturating counter update in [-2,1].
func satUpdate2(c int8, up bool) int8 {
	if up {
		if c < 1 {
			return c + 1
		}
		return c
	}
	if c > -2 {
		return c - 1
	}
	return c
}

// satUpdate is a signed saturating counter with symmetric bound.
func satUpdate(c int8, up bool, bound int8) int8 {
	if up {
		if c < bound {
			return c + 1
		}
		return c
	}
	if c > -bound {
		return c - 1
	}
	return c
}
