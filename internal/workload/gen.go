package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/program"
)

// Workload is a generated benchmark: a linked VLX program plus the
// behaviour oracle that defines its steady-state control flow, and a
// pre-decoded instruction index for fast simulation.
type Workload struct {
	Profile Profile
	Prog    *program.Program
	// Cond maps a conditional branch site PC to its outcome behaviour.
	Cond map[uint64]CondBehavior
	// Ind maps an indirect branch/call site PC to its target behaviour.
	Ind map[uint64]IndirectBehavior

	// instIdx maps image offset -> index into insts, or -1 when the
	// offset is not an instruction boundary on the canonical stream.
	instIdx []int32
	insts   []isa.Inst
	// branchMask maps a cache-line address to a bitmask of the in-line
	// byte offsets of branch instructions starting in that line. The IAG
	// scan uses it to probe the BTB/SBB only at plausible branch sites,
	// the software equivalent of the hardware's per-byte parallel probe.
	branchMask map[uint64]uint64
}

// BranchMask returns the branch start offsets within the line at
// lineAddr as a bitmask: bit i set means a branch instruction starts at
// byte i. One word per line (LineSize = 64) lets the front end merge
// canonical and shadow-discovered offsets with a single OR instead of a
// sorted-slice merge.
func (w *Workload) BranchMask(lineAddr uint64) uint64 {
	return w.branchMask[lineAddr]
}

// InstAt returns the pre-decoded instruction starting at pc, if pc is an
// instruction boundary on the program's canonical decode stream.
func (w *Workload) InstAt(pc uint64) (isa.Inst, bool) {
	if !w.Prog.Contains(pc) {
		return isa.Inst{}, false
	}
	idx := w.instIdx[pc-w.Prog.Base]
	if idx < 0 {
		return isa.Inst{}, false
	}
	return w.insts[idx], true
}

// InstIndex returns the canonical-stream index of the instruction at
// pc, or -1 when pc is not a boundary. The index is dense in
// [0, NumStaticInsts), letting per-site state live in a flat slice
// instead of a PC-keyed map.
func (w *Workload) InstIndex(pc uint64) int {
	if !w.Prog.Contains(pc) {
		return -1
	}
	return int(w.instIdx[pc-w.Prog.Base])
}

// NumStaticInsts returns the count of instructions on the canonical
// stream, a measure of the code footprint.
func (w *Workload) NumStaticInsts() int { return len(w.insts) }

// StaticBranchCount returns the number of static branch sites, a lower
// bound on the BTB working set.
func (w *Workload) StaticBranchCount() int {
	n := 0
	for i := range w.insts {
		if w.insts[i].Class.IsBranch() {
			n++
		}
	}
	return n
}

// condIntent and indIntent record behaviours keyed by link-time labels;
// Generate resolves them to PCs after layout.
type condIntent struct {
	label string
	b     CondBehavior
}

type indIntent struct {
	label   string
	targets []string
	mega    bool
	salt    uint64
}

// gen carries generator state across helper methods.
type gen struct {
	p     Profile
	rng   *rand.Rand
	b     *program.Builder
	conds []condIntent
	inds  []indIntent

	hotNames  []string
	hotLevel  []int
	coldNames []string

	siteSeq int
}

// Generate synthesizes the benchmark described by prof. Generation is
// deterministic: the same profile yields a byte-identical program and
// oracle.
func Generate(prof Profile) (*Workload, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	g := &gen{
		p:   prof,
		rng: rand.New(rand.NewSource(prof.Seed)),
		b:   program.NewBuilder(0x40_0000),
	}
	g.plan()

	// Emit functions in layout order. Interleaved layout packs cold
	// functions between hot ones so they share cache lines — the
	// structural source of shadow branches. BOLT layout segregates them.
	order := g.layoutOrder()
	// main must exist before hot funcs reference is irrelevant (labels
	// resolve at link), so emission order == layout order.
	for _, name := range order {
		switch {
		case name == "main":
			g.emitMain()
		case g.isHot(name):
			g.emitHotFunc(name)
		default:
			g.emitColdFunc(name)
		}
	}

	prog, err := g.b.Link("main")
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", prof.Name, err)
	}

	w := &Workload{
		Profile: prof,
		Prog:    prog,
		Cond:    make(map[uint64]CondBehavior, len(g.conds)),
		Ind:     make(map[uint64]IndirectBehavior, len(g.inds)),
	}
	for _, ci := range g.conds {
		pc, ok := prog.LabelAddr(ci.label)
		if !ok {
			return nil, fmt.Errorf("workload %s: unresolved cond site %q", prof.Name, ci.label)
		}
		w.Cond[pc] = ci.b
	}
	for _, ii := range g.inds {
		pc, ok := prog.LabelAddr(ii.label)
		if !ok {
			return nil, fmt.Errorf("workload %s: unresolved indirect site %q", prof.Name, ii.label)
		}
		targets := make([]uint64, 0, len(ii.targets))
		for _, t := range ii.targets {
			a, ok := prog.LabelAddr(t)
			if !ok {
				return nil, fmt.Errorf("workload %s: unresolved indirect target %q", prof.Name, t)
			}
			targets = append(targets, a)
		}
		if ii.mega {
			w.Ind[pc] = HashTargets{Targets: targets, Salt: ii.salt}
		} else {
			w.Ind[pc] = RoundRobinTargets{Targets: targets}
		}
	}

	if err := w.buildInstIndex(); err != nil {
		return nil, err
	}
	return w, nil
}

// MustGenerate is Generate for tests and examples where a profile error
// is a programming bug.
func MustGenerate(prof Profile) *Workload {
	w, err := Generate(prof)
	if err != nil {
		panic(err)
	}
	return w
}

// buildInstIndex decodes the whole image sequentially. Every generated
// byte is part of exactly one instruction on this canonical stream
// (padding is NOPs), so sequential decode recovers all boundaries.
func (w *Workload) buildInstIndex() error {
	code := w.Prog.Code
	w.instIdx = make([]int32, len(code))
	for i := range w.instIdx {
		w.instIdx[i] = -1
	}
	off := 0
	for off < len(code) {
		in, err := isa.Decode(code[off:], w.Prog.Base+uint64(off))
		if err != nil {
			return fmt.Errorf("workload %s: image not decodable at offset %d: %w", w.Profile.Name, off, err)
		}
		w.instIdx[off] = int32(len(w.insts))
		w.insts = append(w.insts, in)
		off += int(in.Len)
	}
	w.branchMask = make(map[uint64]uint64)
	for i := range w.insts {
		in := &w.insts[i]
		if in.Class.IsBranch() {
			w.branchMask[program.LineAddr(in.PC)] |= 1 << program.LineOffset(in.PC)
		}
	}
	return nil
}

func (g *gen) isHot(name string) bool {
	return len(name) > 0 && name[0] == 'h'
}

// plan assigns hot-function levels and cold chain order.
func (g *gen) plan() {
	p := g.p
	g.hotNames = make([]string, p.HotFuncs)
	g.hotLevel = make([]int, p.HotFuncs)
	for i := range g.hotNames {
		g.hotNames[i] = fmt.Sprintf("h%d", i)
	}
	// Distribute levels geometrically: level l has roughly twice as many
	// functions as level l-1, so the call tree fans out.
	weights := make([]int, p.CallDepth)
	total := 0
	for l := range weights {
		weights[l] = 1 << l
		total += weights[l]
	}
	idx := 0
	for l := 0; l < p.CallDepth; l++ {
		n := p.HotFuncs * weights[l] / total
		if l == p.CallDepth-1 {
			n = p.HotFuncs - idx
		}
		for k := 0; k < n && idx < p.HotFuncs; k++ {
			g.hotLevel[idx] = l
			idx++
		}
	}
	g.coldNames = make([]string, p.ColdFuncs)
	for i := range g.coldNames {
		g.coldNames[i] = fmt.Sprintf("c%d", i)
	}
}

// layoutOrder produces the function emission order. Interleaved layout
// shuffles hot and cold together; BOLT layout puts all hot functions
// first.
func (g *gen) layoutOrder() []string {
	var order []string
	order = append(order, "main")
	if g.p.BoltLayout {
		order = append(order, g.hotNames...)
		order = append(order, g.coldNames...)
		return order
	}
	// Interleave proportionally: between consecutive hot functions,
	// place ColdFuncs/HotFuncs cold ones (remainder spread by error
	// accumulation), so most hot function entries and exits share lines
	// with cold code.
	ci := 0
	acc := 0
	for hi, h := range g.hotNames {
		order = append(order, h)
		acc += g.p.ColdFuncs
		n := acc / g.p.HotFuncs
		acc -= n * g.p.HotFuncs
		for k := 0; k < n && ci < len(g.coldNames); k++ {
			order = append(order, g.coldNames[ci])
			ci++
		}
		_ = hi
	}
	for ; ci < len(g.coldNames); ci++ {
		order = append(order, g.coldNames[ci])
	}
	return order
}

// hotAtLevel returns the names of hot functions at the given level.
func (g *gen) hotAtLevel(l int) []string {
	var out []string
	for i, name := range g.hotNames {
		if g.hotLevel[i] == l {
			out = append(out, name)
		}
	}
	return out
}

// pickHotDeeper returns a random hot function strictly below level l,
// or "" if none exists.
func (g *gen) pickHotDeeper(l int) string {
	var cands []int
	for i := range g.hotNames {
		if g.hotLevel[i] > l {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	return g.hotNames[cands[g.rng.Intn(len(cands))]]
}

// nextSite returns a unique label suffix for a behaviour site.
func (g *gen) nextSite() string {
	g.siteSeq++
	return fmt.Sprintf("s%d", g.siteSeq)
}

// patternCond builds a deterministic repeating outcome pattern with the
// given taken bias: the history-predictable branch behaviour that
// dominates real workloads.
func (g *gen) patternCond(bias float64) CondBehavior {
	// Real branch populations are dominated by strongly biased sites
	// that a bimodal table handles without history capacity; a minority
	// need short-history patterns. Power-of-two lengths keep the joint
	// phase period of co-executing sites small so TAGE can learn the
	// interleavings.
	r := g.rng.Float64()
	var n int
	switch {
	case r < 0.60:
		// Constant-direction site.
		return PatternCond{Pattern: []bool{g.rng.Float64() < bias}}
	case r < 0.90:
		lens := [...]int{2, 4, 8}
		n = lens[g.rng.Intn(len(lens))]
	default:
		n = 16
	}
	pat := make([]bool, n)
	for i := range pat {
		pat[i] = g.rng.Float64() < bias
	}
	return PatternCond{Pattern: pat}
}

// filler emits n non-branch instructions with varied encodings/lengths.
func (g *gen) filler(fb *program.FuncBuilder, n int) {
	for i := 0; i < n; i++ {
		r := func(k int) uint8 { return uint8(g.rng.Intn(k)) }
		switch g.rng.Intn(12) {
		case 0:
			fb.ALUReg(g.rng.Intn(5), r(8), r(8))
		case 1:
			fb.ALUImm8(r(8), int8(g.rng.Intn(256)-128))
		case 2:
			fb.ALUImm32(r(8), g.rng.Int31())
		case 3:
			fb.MovImm8(r(8), int8(g.rng.Intn(256)-128))
		case 4:
			fb.MovImm32(r(8), g.rng.Int31())
		case 5:
			fb.Load(r(8), r(8), int32(g.rng.Intn(4096)-2048))
		case 6:
			fb.Store(r(8), r(8), int32(g.rng.Intn(256)-128))
		case 7:
			fb.Lea(r(8), r(8), int8(g.rng.Intn(100)))
		case 8:
			fb.Push(r(8))
		case 9:
			fb.Pop(r(8))
		case 10:
			fb.IncDec(r(8), g.rng.Intn(2) == 0)
		case 11:
			fb.Nop(1 + g.rng.Intn(4))
		}
	}
}

// condSite emits a conditional branch to target with a behaviour chosen
// from the profile's conditional mix, and registers the intent.
func (g *gen) condSite(fb *program.FuncBuilder, fn, target string, b CondBehavior) {
	site := g.nextSite()
	fb.Label(site)
	if b == nil {
		if g.rng.Float64() < g.p.CondNoise {
			// Data-dependent, irreducibly hard branch.
			b = BiasedCond{P: 0.5, Salt: g.rng.Uint64()}
		} else {
			// Most real branches are history-predictable: a fixed
			// biased pattern that TAGE learns after warmup.
			b = g.patternCond(g.p.CondTakenBias)
		}
	}
	fb.JccTo(uint8(g.rng.Intn(16)), target)
	g.conds = append(g.conds, condIntent{label: fn + "." + site, b: b})
}

// emitMain emits the dispatcher: an infinite loop calling every level-0
// hot function once per iteration.
func (g *gen) emitMain() {
	fb := g.b.Func("main", true)
	level0 := g.hotAtLevel(0)
	fb.Label("loop")
	for i, h := range level0 {
		g.filler(fb, 1+g.rng.Intn(2))
		fb.CallTo(h)
		_ = i
	}
	fb.JmpTo("loop")
}

// emitHotFunc emits one hot function: a chain of basic blocks whose
// terminators follow the profile's mix, plus the cold attachment sites.
func (g *gen) emitHotFunc(name string) {
	p := g.p
	fb := g.b.Func(name, true)
	var level int
	for i, n := range g.hotNames {
		if n == name {
			level = g.hotLevel[i]
			break
		}
	}
	nb := p.BlocksPerHotFunc[0] + g.rng.Intn(p.BlocksPerHotFunc[1]-p.BlocksPerHotFunc[0]+1)

	// Choose which blocks carry cold attachment sites.
	coldBlocks := map[int]bool{}
	for k := 0; k < p.ColdSitesPerHot && nb > 1; k++ {
		coldBlocks[g.rng.Intn(nb-1)] = true
	}

	// Outlined cold regions accumulate and are emitted after the final
	// ret; each needs a back-edge label to return to.
	var outl []outlined

	for blk := 0; blk < nb; blk++ {
		fb.Label(fmt.Sprintf("b%d", blk))
		g.filler(fb, p.InstsPerBlock[0]+g.rng.Intn(p.InstsPerBlock[1]-p.InstsPerBlock[0]+1))

		if coldBlocks[blk] {
			g.emitColdSite(fb, name, &outl)
		}

		if blk == nb-1 {
			break // final block gets the return below
		}
		// Terminator.
		r := g.rng.Float64()
		switch {
		case r < p.PCondSkip:
			// Forward conditional skipping 1-2 blocks when possible.
			skip := 1 + g.rng.Intn(2)
			tgt := blk + 1 + skip
			if tgt >= nb {
				tgt = nb - 1
			}
			if tgt > blk+1 {
				g.condSite(fb, name, fmt.Sprintf("b%d", tgt), nil)
			}
		case r < p.PCondSkip+p.PInnerLoop:
			// Short counted loop around a small body.
			top := fmt.Sprintf("t%d", blk)
			fb.Label(top)
			g.filler(fb, 2)
			fb.IncDec(uint8(g.rng.Intn(8)), true)
			trip := uint64(p.InnerTrip[0] + g.rng.Intn(p.InnerTrip[1]-p.InnerTrip[0]+1))
			site := g.nextSite()
			fb.Label(site)
			fb.JccTo(uint8(g.rng.Intn(16)), top)
			g.conds = append(g.conds, condIntent{label: name + "." + site, b: LoopCond{Trip: trip}})
		case r < p.PCondSkip+p.PInnerLoop+p.PCallNext:
			if callee := g.pickHotDeeper(level); callee != "" {
				fb.CallTo(callee)
			}
		case r < p.PCondSkip+p.PInnerLoop+p.PCallNext+p.PIndCall:
			g.emitIndCall(fb, name, level)
		}
		// Otherwise: plain fallthrough into the next block.
	}
	if g.rng.Float64() < 0.2 {
		fb.RetImm(int16(8 * (1 + g.rng.Intn(4))))
	} else {
		fb.Ret()
	}

	// Outlined cold regions live past the return, inside the same
	// function body: classic slow-path layout.
	for _, o := range outl {
		fb.Label(o.region)
		g.filler(fb, 2+g.rng.Intn(4))
		// A rarely-used conditional inside the cold region.
		site := g.nextSite()
		fb.Label(site)
		fb.JccTo(uint8(g.rng.Intn(16)), o.back)
		g.conds = append(g.conds, condIntent{label: name + "." + site, b: g.patternCond(0.3)})
		g.filler(fb, 1+g.rng.Intn(2))
		fb.JmpTo(o.back)
	}
}

// outlined records a cold region emitted past a hot function's return:
// region is the label of the region, back the label to jump back to.
type outlined struct {
	region string
	back   string
}

// emitColdSite emits one cold attachment inside a hot block: either a
// guarded direct call into a cold chain, or a guard jumping to an
// outlined region (recorded in outl for later emission).
func (g *gen) emitColdSite(fb *program.FuncBuilder, fn string, outl *[]outlined) {
	p := g.p
	period := uint64(p.ColdPeriod/2 + g.rng.Intn(p.ColdPeriod+1))
	if period == 0 {
		period = 1
	}
	phase := uint64(g.rng.Intn(int(period)))
	if g.rng.Float64() < p.PColdViaCall && len(g.coldNames) > 0 {
		// Guard normally taken: jumps over the call. Once per period it
		// falls through and the cold call executes.
		skip := g.nextSite()
		site := g.nextSite()
		fb.Label(site)
		fb.JccTo(uint8(g.rng.Intn(16)), skip)
		g.conds = append(g.conds, condIntent{
			label: fn + "." + site,
			b:     PeriodicCond{Period: period, Phase: phase},
		})
		fb.CallTo(g.pickColdEntry())
		fb.Label(skip)
		return
	}
	// Outlined region: guard normally NOT taken; on a cold episode it
	// jumps to the region, which jumps back.
	region := g.nextSite()
	back := g.nextSite()
	site := g.nextSite()
	fb.Label(site)
	fb.JccTo(uint8(g.rng.Intn(16)), region)
	g.conds = append(g.conds, condIntent{
		label: fn + "." + site,
		b:     InvertCond{Inner: PeriodicCond{Period: period, Phase: phase}},
	})
	fb.Label(back)
	*outl = append(*outl, outlined{region: region, back: back})
}

// emitIndCall emits an indirect call site whose target set is drawn from
// deeper hot functions.
func (g *gen) emitIndCall(fb *program.FuncBuilder, fn string, level int) {
	p := g.p
	var targets []string
	seen := map[string]bool{}
	for k := 0; k < p.IndTargets*2 && len(targets) < p.IndTargets; k++ {
		t := g.pickHotDeeper(level)
		if t == "" {
			break
		}
		if !seen[t] {
			seen[t] = true
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		return
	}
	reg := uint8(g.rng.Intn(8))
	fb.MovImm32(reg, 0) // target register setup; value supplied by oracle
	site := g.nextSite()
	fb.Label(site)
	fb.CallInd(reg)
	g.inds = append(g.inds, indIntent{
		label:   fn + "." + site,
		targets: targets,
		mega:    g.rng.Float64() < p.IndMegamorphic,
		salt:    g.rng.Uint64(),
	})
}

// emitColdFunc emits one cold function: a few blocks, biased conditional
// sites, optional chained call into a later cold function, ending in a
// return or a tail-jump into a later cold function.
func (g *gen) emitColdFunc(name string) {
	p := g.p
	fb := g.b.Func(name, false)
	var idx int
	fmt.Sscanf(name, "c%d", &idx)

	nb := p.BlocksPerColdFunc[0] + g.rng.Intn(p.BlocksPerColdFunc[1]-p.BlocksPerColdFunc[0]+1)
	for blk := 0; blk < nb; blk++ {
		fb.Label(fmt.Sprintf("b%d", blk))
		g.filler(fb, p.InstsPerBlock[0]+g.rng.Intn(p.InstsPerBlock[1]-p.InstsPerBlock[0]+1))
		if blk == nb-1 {
			break
		}
		// Cold-internal conditional skip.
		if g.rng.Float64() < 0.5 && blk+2 < nb {
			g.condSite(fb, name, fmt.Sprintf("b%d", blk+2), g.patternCond(0.4))
		}
		// Chained call one level deeper into the cold set.
		if g.rng.Float64() < 0.45 {
			if callee := g.pickColdDeeper(idx); callee != "" {
				fb.CallTo(callee)
			}
		}
	}
	// Ending: tail-jump (DirectUncond miss source) or return.
	if g.rng.Float64() < p.PColdTailCall {
		if tgt := g.pickColdDeeper(idx); tgt != "" {
			fb.JmpTo(tgt)
			return
		}
	}
	fb.Ret()
}

// pickColdEntry returns a random level-0 cold function: the entry point
// of a cold chain, the only kind hot code calls directly.
func (g *gen) pickColdEntry() string {
	for tries := 0; tries < 64; tries++ {
		idx := g.rng.Intn(len(g.coldNames))
		if g.coldLevel(idx) == 0 {
			return g.coldNames[idx]
		}
	}
	return g.coldNames[0]
}

// coldLevel assigns every cold function a chain level; calls and
// tail-jumps only go from level L to level L+1, so one cold episode
// cascades through at most ColdChainDepth+1 levels instead of walking
// the whole cold set.
func (g *gen) coldLevel(idx int) int {
	return idx % (g.p.ColdChainDepth + 1)
}

// pickColdDeeper returns a nearby cold function exactly one chain level
// deeper, or "" when the caller is already at the deepest level.
func (g *gen) pickColdDeeper(idx int) string {
	want := g.coldLevel(idx) + 1
	if want > g.p.ColdChainDepth {
		return ""
	}
	lo := idx + 1
	hi := idx + 32
	if hi >= len(g.coldNames) {
		hi = len(g.coldNames) - 1
	}
	var cands []int
	for j := lo; j <= hi; j++ {
		if g.coldLevel(j) == want {
			cands = append(cands, j)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	return g.coldNames[cands[g.rng.Intn(len(cands))]]
}
