package workload

import (
	"strconv"
	"testing"

	"repro/internal/isa"
)

// coldCallGraph extracts the static call/tail-jump edges between cold
// functions.
func coldCallGraph(w *Workload) map[string][]string {
	edges := map[string][]string{}
	for _, f := range w.Prog.Funcs {
		if f.Hot {
			continue
		}
		pc := f.Addr
		end := f.Addr + uint64(f.Size)
		for pc < end {
			in, ok := w.InstAt(pc)
			if !ok {
				break
			}
			if tgt, ok := in.BranchTarget(); ok &&
				(in.Class == isa.ClassCall || in.Class == isa.ClassDirectUncond) {
				if g := w.Prog.FuncAt(tgt); g != nil && !g.Hot && g.Name != f.Name &&
					g.Addr == tgt {
					edges[f.Name] = append(edges[f.Name], g.Name)
				}
			}
			pc = in.NextPC()
		}
	}
	return edges
}

// TestColdChainsBoundedAndAcyclic verifies the cold-call structure: the
// static cold-to-cold call graph must be a DAG whose longest path is at
// most ColdChainDepth edges, so one cold episode cannot cascade through
// the whole cold set.
func TestColdChainsBoundedAndAcyclic(t *testing.T) {
	p := smallProfile()
	p.ColdFuncs = 200
	w := MustGenerate(p)
	edges := coldCallGraph(w)
	if len(edges) == 0 {
		t.Fatal("no cold-to-cold edges; chain structure missing")
	}

	// Longest-path DFS with cycle detection.
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := map[string]int{}
	depth := map[string]int{}
	var dfs func(string) int
	dfs = func(n string) int {
		switch state[n] {
		case inStack:
			t.Fatalf("cycle through %s", n)
		case done:
			return depth[n]
		}
		state[n] = inStack
		d := 0
		for _, m := range edges[n] {
			if dd := dfs(m) + 1; dd > d {
				d = dd
			}
		}
		state[n] = done
		depth[n] = d
		return d
	}
	maxDepth := 0
	for n := range edges {
		if d := dfs(n); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth > p.ColdChainDepth {
		t.Errorf("longest cold chain %d exceeds ColdChainDepth %d", maxDepth, p.ColdChainDepth)
	}
}

// TestHotCallsOnlyColdEntries verifies hot code enters the cold set
// only through level-0 chain entries.
func TestHotCallsOnlyColdEntries(t *testing.T) {
	p := smallProfile()
	p.ColdFuncs = 200
	w := MustGenerate(p)
	g := &gen{p: p}
	g.coldNames = make([]string, p.ColdFuncs)

	idxOf := func(name string) int {
		i, err := strconv.Atoi(name[1:])
		if err != nil {
			t.Fatalf("bad cold name %q", name)
		}
		return i
	}

	for _, f := range w.Prog.Funcs {
		if !f.Hot {
			continue
		}
		pc := f.Addr
		end := f.Addr + uint64(f.Size)
		for pc < end {
			in, ok := w.InstAt(pc)
			if !ok {
				break
			}
			if in.Class == isa.ClassCall {
				if tgt, ok := in.BranchTarget(); ok {
					if callee := w.Prog.FuncAt(tgt); callee != nil && !callee.Hot && callee.Addr == tgt {
						if lvl := g.coldLevel(idxOf(callee.Name)); lvl != 0 {
							t.Fatalf("hot %s calls cold %s at chain level %d", f.Name, callee.Name, lvl)
						}
					}
				}
			}
			pc = in.NextPC()
		}
	}
}

// TestColdFractionOfExecution: the cold attachment machinery must fire
// but stay rare, preserving the hot/cold dichotomy.
func TestColdFractionOfExecution(t *testing.T) {
	w := MustGenerate(smallProfile())
	hot, cold := 0, 0
	// Walk the canonical stream weighting nothing — just confirm both
	// kinds of code exist statically with cold being the majority of
	// *sites* (interleaved layout) while tests in internal/emu confirm
	// execution-time rarity.
	for _, f := range w.Prog.Funcs {
		if f.Hot {
			hot++
		} else {
			cold++
		}
	}
	if hot == 0 || cold == 0 {
		t.Fatal("degenerate layout")
	}
	if cold < hot {
		t.Errorf("expected more cold functions than hot (got %d hot, %d cold)", hot, cold)
	}
}
