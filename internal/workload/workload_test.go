package workload

import (
	"bytes"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

// smallProfile returns a fast-to-generate profile for tests.
func smallProfile() Profile {
	p, err := ByName("noop")
	if err != nil {
		panic(err)
	}
	p.HotFuncs = 32
	p.ColdFuncs = 80
	return p
}

func TestRegistryComplete(t *testing.T) {
	suite := SuiteNames()
	if len(suite) != 16 {
		t.Fatalf("suite has %d benchmarks, want 16", len(suite))
	}
	for _, n := range suite {
		if _, err := ByName(n); err != nil {
			t.Errorf("suite benchmark %q not registered: %v", n, err)
		}
	}
	// The pre-BOLT verilator variant exists but is not in the suite.
	if _, err := ByName("verilator"); err != nil {
		t.Error("verilator (pre-bolt) should be registered")
	}
	for _, n := range suite {
		if n == "verilator" {
			t.Error("pre-bolt verilator must not be in the main suite")
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("not-a-benchmark"); err == nil {
		t.Error("expected error")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	ns := Names()
	if len(ns) != 17 {
		t.Errorf("got %d registered profiles, want 17", len(ns))
	}
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Errorf("names not sorted: %q >= %q", ns[i-1], ns[i])
		}
	}
}

func TestProfileValidate(t *testing.T) {
	good := smallProfile()
	if err := good.Validate(); err != nil {
		t.Errorf("good profile invalid: %v", err)
	}
	bads := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.HotFuncs = 1 },
		func(p *Profile) { p.ColdFuncs = -1 },
		func(p *Profile) { p.BlocksPerHotFunc = [2]int{0, 3} },
		func(p *Profile) { p.BlocksPerHotFunc = [2]int{5, 3} },
		func(p *Profile) { p.InstsPerBlock = [2]int{0, 2} },
		func(p *Profile) { p.PCondSkip = 0.9; p.PCallNext = 0.9 },
		func(p *Profile) { p.ColdPeriod = 0 },
		func(p *Profile) { p.CallDepth = 0 },
	}
	for i, mut := range bads {
		p := smallProfile()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d validated", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := smallProfile()
	w1, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Prog.Code, w2.Prog.Code) {
		t.Error("generation is not deterministic")
	}
	if len(w1.Cond) != len(w2.Cond) || len(w1.Ind) != len(w2.Ind) {
		t.Error("behaviour maps differ across runs")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p := smallProfile()
	w1 := MustGenerate(p)
	p.Seed++
	w2 := MustGenerate(p)
	if bytes.Equal(w1.Prog.Code, w2.Prog.Code) {
		t.Error("different seeds produced identical programs")
	}
}

func TestImageFullyDecodable(t *testing.T) {
	w := MustGenerate(smallProfile())
	pc := w.Prog.Base
	n := 0
	for pc < w.Prog.End() {
		in, ok := w.InstAt(pc)
		if !ok {
			t.Fatalf("no instruction at boundary %#x", pc)
		}
		pc = in.NextPC()
		n++
	}
	if n != w.NumStaticInsts() {
		t.Errorf("walked %d instructions, index has %d", n, w.NumStaticInsts())
	}
}

func TestInstAtRejectsNonBoundaries(t *testing.T) {
	w := MustGenerate(smallProfile())
	// Find an instruction longer than 1 byte; its interior is not a
	// boundary.
	pc := w.Prog.Base
	for {
		in, ok := w.InstAt(pc)
		if !ok {
			t.Fatal("ran out of instructions")
		}
		if in.Len > 1 {
			if _, ok := w.InstAt(pc + 1); ok {
				t.Errorf("interior pc %#x reported as boundary", pc+1)
			}
			break
		}
		pc = in.NextPC()
	}
	if _, ok := w.InstAt(w.Prog.End() + 64); ok {
		t.Error("InstAt outside image should fail")
	}
}

func TestEveryCondSiteHasBehavior(t *testing.T) {
	w := MustGenerate(smallProfile())
	missingCond, missingInd := 0, 0
	pc := w.Prog.Base
	for pc < w.Prog.End() {
		in, _ := w.InstAt(pc)
		switch in.Class {
		case isa.ClassDirectCond:
			if _, ok := w.Cond[in.PC]; !ok {
				missingCond++
			}
		case isa.ClassIndirect, isa.ClassIndirectCall:
			if _, ok := w.Ind[in.PC]; !ok {
				missingInd++
			}
		}
		pc = in.NextPC()
	}
	if missingCond != 0 || missingInd != 0 {
		t.Errorf("%d conditional and %d indirect sites lack behaviours", missingCond, missingInd)
	}
}

func TestBranchTargetsInsideImage(t *testing.T) {
	w := MustGenerate(smallProfile())
	pc := w.Prog.Base
	for pc < w.Prog.End() {
		in, _ := w.InstAt(pc)
		if tgt, ok := in.BranchTarget(); ok {
			if !w.Prog.Contains(tgt) {
				t.Fatalf("branch at %#x targets %#x outside image", in.PC, tgt)
			}
			if _, isInst := w.InstAt(tgt); !isInst {
				t.Fatalf("branch at %#x targets non-boundary %#x", in.PC, tgt)
			}
		}
		pc = in.NextPC()
	}
}

func TestIndirectTargetsAreFunctionEntries(t *testing.T) {
	w := MustGenerate(smallProfile())
	for pc, b := range w.Ind {
		for v := uint64(0); v < 32; v++ {
			tgt := b.Target(v)
			f := w.Prog.FuncAt(tgt)
			if f == nil || f.Addr != tgt {
				t.Fatalf("indirect site %#x target %#x is not a function entry", pc, tgt)
			}
		}
	}
}

func TestInterleavedLayoutSharesLines(t *testing.T) {
	w := MustGenerate(smallProfile())
	shared := 0
	funcs := w.Prog.Funcs
	for i := 1; i < len(funcs); i++ {
		prev, cur := funcs[i-1], funcs[i]
		if prev.Hot != cur.Hot &&
			program.LineAddr(prev.Addr+uint64(prev.Size)-1) == program.LineAddr(cur.Addr) {
			shared++
		}
	}
	if shared < len(funcs)/4 {
		t.Errorf("only %d of %d adjacent hot/cold pairs share a line", shared, len(funcs))
	}
}

func TestBoltLayoutSegregates(t *testing.T) {
	p := smallProfile()
	p.BoltLayout = true
	w := MustGenerate(p)
	// In BOLT layout every hot function (except main at the start) must
	// come before every cold function.
	lastHot, firstCold := uint64(0), ^uint64(0)
	for _, f := range w.Prog.Funcs {
		if f.Hot {
			if f.Addr > lastHot {
				lastHot = f.Addr
			}
		} else if f.Addr < firstCold {
			firstCold = f.Addr
		}
	}
	if lastHot > firstCold {
		t.Errorf("bolt layout interleaved: last hot %#x > first cold %#x", lastHot, firstCold)
	}
}

func TestStaticBranchCountSubstantial(t *testing.T) {
	w := MustGenerate(smallProfile())
	n := w.StaticBranchCount()
	if n < 100 {
		t.Errorf("only %d static branches", n)
	}
}

func TestGenerateAllProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation in -short mode")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, _ := ByName(name)
			w, err := Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			if w.StaticBranchCount() < 1000 {
				t.Errorf("%s: only %d static branches", name, w.StaticBranchCount())
			}
			// Footprint sanity: enough code to pressure a 32KB L1-I.
			if len(w.Prog.Code) < 48*1024 {
				t.Errorf("%s: image only %d bytes", name, len(w.Prog.Code))
			}
		})
	}
}

func TestGenerateInvalidProfile(t *testing.T) {
	p := smallProfile()
	p.HotFuncs = 0
	if _, err := Generate(p); err == nil {
		t.Error("expected validation error")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p := smallProfile()
	p.Name = ""
	MustGenerate(p)
}
