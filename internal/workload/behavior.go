// Package workload synthesizes the 16 front-end-bound benchmark models
// the paper evaluates (Table 2). Each benchmark is a deterministic,
// parameterized generator that produces a real VLX program image plus a
// behaviour oracle describing the steady-state control flow: conditional
// outcome patterns, indirect target rotations, and — crucially — the
// cold-branch structure that makes BTB capacity misses land on
// L1-I-resident cache lines (the shadow-branch phenomenon).
package workload

// CondBehavior yields the outcome sequence of one static conditional
// branch site. visit is the zero-based execution count of the site.
type CondBehavior interface {
	Taken(visit uint64) bool
}

// IndirectBehavior yields the target sequence of one static indirect
// branch or call site.
type IndirectBehavior interface {
	Target(visit uint64) uint64
}

// LoopCond models a counted loop's backward branch: taken trip-1 times,
// then not taken once, repeating. A Trip of 1 is never taken; a Trip of
// 0 behaves like 1.
type LoopCond struct {
	Trip uint64
}

// Taken implements CondBehavior.
func (l LoopCond) Taken(visit uint64) bool {
	t := l.Trip
	if t == 0 {
		t = 1
	}
	return visit%t != t-1
}

// PeriodicCond is taken except once every Period visits (at the given
// Phase), modeling guards around rarely-executed cold paths: the
// not-taken visit is the cold episode.
type PeriodicCond struct {
	Period uint64
	Phase  uint64
}

// Taken implements CondBehavior.
func (p PeriodicCond) Taken(visit uint64) bool {
	period := p.Period
	if period == 0 {
		period = 1
	}
	return (visit+p.Phase)%period != 0
}

// BiasedCond is taken with probability P, decided by a deterministic
// per-visit hash so runs are reproducible. Low-entropy sites (P near 0
// or 1) are easy for TAGE; P near 0.5 yields mispredictions.
type BiasedCond struct {
	// P is the taken probability in [0,1].
	P float64
	// Salt decorrelates sites that share the same P.
	Salt uint64
}

// Taken implements CondBehavior.
func (b BiasedCond) Taken(visit uint64) bool {
	h := mix64(visit ^ b.Salt)
	// Map the hash to [0,1) and compare.
	return float64(h>>11)/(1<<53) < b.P
}

// PatternCond replays a fixed boolean pattern, modeling data-dependent
// but strongly history-correlated branches that TAGE learns perfectly.
type PatternCond struct {
	Pattern []bool
}

// Taken implements CondBehavior.
func (p PatternCond) Taken(visit uint64) bool {
	if len(p.Pattern) == 0 {
		return false
	}
	return p.Pattern[visit%uint64(len(p.Pattern))]
}

// RoundRobinTargets rotates through Targets in order, modeling
// dispatch-loop indirect calls with a regular schedule (ITTAGE learns
// these given enough history).
type RoundRobinTargets struct {
	Targets []uint64
}

// Target implements IndirectBehavior.
func (r RoundRobinTargets) Target(visit uint64) uint64 {
	if len(r.Targets) == 0 {
		return 0
	}
	return r.Targets[visit%uint64(len(r.Targets))]
}

// HashTargets picks among Targets pseudo-randomly per visit, modeling
// megamorphic virtual-call sites that defeat indirect prediction.
type HashTargets struct {
	Targets []uint64
	Salt    uint64
}

// Target implements IndirectBehavior.
func (h HashTargets) Target(visit uint64) uint64 {
	if len(h.Targets) == 0 {
		return 0
	}
	return h.Targets[mix64(visit^h.Salt)%uint64(len(h.Targets))]
}

// InvertCond negates another behaviour; used for guards that are
// normally not taken and fire only on cold episodes.
type InvertCond struct {
	Inner CondBehavior
}

// Taken implements CondBehavior.
func (i InvertCond) Taken(visit uint64) bool { return !i.Inner.Taken(visit) }

// mix64 is a SplitMix64 finalizer: a fast, well-distributed 64-bit hash
// used wherever the workload needs reproducible pseudo-randomness.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
