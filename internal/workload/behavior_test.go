package workload

import (
	"testing"
	"testing/quick"
)

func TestLoopCond(t *testing.T) {
	l := LoopCond{Trip: 4}
	want := []bool{true, true, true, false, true, true, true, false}
	for v, w := range want {
		if got := l.Taken(uint64(v)); got != w {
			t.Errorf("visit %d: taken=%v, want %v", v, got, w)
		}
	}
	// Degenerate trips never loop.
	if (LoopCond{Trip: 0}).Taken(0) || (LoopCond{Trip: 1}).Taken(5) {
		t.Error("trip<=1 should never be taken")
	}
}

func TestPeriodicCond(t *testing.T) {
	p := PeriodicCond{Period: 5, Phase: 0}
	notTaken := 0
	for v := uint64(0); v < 50; v++ {
		if !p.Taken(v) {
			notTaken++
		}
	}
	if notTaken != 10 {
		t.Errorf("not-taken %d of 50, want 10", notTaken)
	}
	// Phase shifts the firing visit.
	p2 := PeriodicCond{Period: 5, Phase: 2}
	if p2.Taken(3) {
		t.Error("phase-2 period-5 guard should fire at visit 3")
	}
	// Zero period must not divide by zero.
	_ = PeriodicCond{}.Taken(7)
}

func TestInvertCond(t *testing.T) {
	p := PeriodicCond{Period: 4}
	inv := InvertCond{Inner: p}
	for v := uint64(0); v < 20; v++ {
		if inv.Taken(v) == p.Taken(v) {
			t.Fatalf("invert broken at visit %d", v)
		}
	}
}

func TestBiasedCondRate(t *testing.T) {
	b := BiasedCond{P: 0.7, Salt: 12345}
	taken := 0
	const n = 10000
	for v := uint64(0); v < n; v++ {
		if b.Taken(v) {
			taken++
		}
	}
	rate := float64(taken) / n
	if rate < 0.67 || rate > 0.73 {
		t.Errorf("taken rate %.3f, want ~0.70", rate)
	}
}

func TestBiasedCondDeterministic(t *testing.T) {
	f := func(salt, visit uint64) bool {
		b := BiasedCond{P: 0.5, Salt: salt}
		return b.Taken(visit) == b.Taken(visit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBiasedCondExtremes(t *testing.T) {
	always := BiasedCond{P: 1.0, Salt: 9}
	never := BiasedCond{P: 0.0, Salt: 9}
	for v := uint64(0); v < 1000; v++ {
		if !always.Taken(v) {
			t.Fatalf("P=1 not taken at %d", v)
		}
		if never.Taken(v) {
			t.Fatalf("P=0 taken at %d", v)
		}
	}
}

func TestPatternCond(t *testing.T) {
	p := PatternCond{Pattern: []bool{true, false, false}}
	want := []bool{true, false, false, true, false, false}
	for v, w := range want {
		if got := p.Taken(uint64(v)); got != w {
			t.Errorf("visit %d: %v want %v", v, got, w)
		}
	}
	if (PatternCond{}).Taken(3) {
		t.Error("empty pattern should be not-taken")
	}
}

func TestRoundRobinTargets(t *testing.T) {
	r := RoundRobinTargets{Targets: []uint64{10, 20, 30}}
	want := []uint64{10, 20, 30, 10, 20}
	for v, w := range want {
		if got := r.Target(uint64(v)); got != w {
			t.Errorf("visit %d: %d want %d", v, got, w)
		}
	}
	if (RoundRobinTargets{}).Target(0) != 0 {
		t.Error("empty target set should yield 0")
	}
}

func TestHashTargetsStaysInSet(t *testing.T) {
	h := HashTargets{Targets: []uint64{7, 8, 9}, Salt: 4}
	seen := map[uint64]int{}
	for v := uint64(0); v < 3000; v++ {
		tgt := h.Target(v)
		if tgt != 7 && tgt != 8 && tgt != 9 {
			t.Fatalf("target %d outside set", tgt)
		}
		seen[tgt]++
	}
	// All targets should be exercised roughly uniformly.
	for tgt, n := range seen {
		if n < 500 {
			t.Errorf("target %d picked only %d times", tgt, n)
		}
	}
	if (HashTargets{}).Target(1) != 0 {
		t.Error("empty hash target set should yield 0")
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	x := uint64(0x0123456789abcdef)
	base := mix64(x)
	totalFlips := 0
	for bit := 0; bit < 64; bit++ {
		diff := base ^ mix64(x^(1<<bit))
		for d := diff; d != 0; d &= d - 1 {
			totalFlips++
		}
	}
	avg := float64(totalFlips) / 64
	if avg < 24 || avg > 40 {
		t.Errorf("average bit flips %.1f, want ~32", avg)
	}
}
