package workload

import (
	"fmt"
	"sort"
)

// Profile parameterizes one synthetic benchmark model. The fields encode
// the structural properties that drive the paper's observations: code
// footprint (L1-I pressure, Fig. 13), branch-type mix (Fig. 6),
// cold-branch re-reference structure (BTB capacity misses, Fig. 1), and
// layout style (BOLT vs not, Section 6.1.4).
type Profile struct {
	// Name is the paper's benchmark name (Table 2).
	Name string
	// Suite is the benchmark suite the paper drew it from.
	Suite string
	// Seed makes generation deterministic per benchmark.
	Seed int64

	// HotFuncs is the number of frequently-executed functions; together
	// with block counts it sets the per-iteration instruction footprint.
	HotFuncs int
	// ColdFuncs is the number of rarely-executed functions interleaved
	// with hot code in layout.
	ColdFuncs int
	// BlocksPerHotFunc and BlocksPerColdFunc bound the basic blocks per
	// function [min,max].
	BlocksPerHotFunc  [2]int
	BlocksPerColdFunc [2]int
	// InstsPerBlock bounds the filler instructions per block [min,max].
	InstsPerBlock [2]int

	// Terminator mix for hot-function blocks; the remainder of the
	// probability mass falls through to the next block.
	PCondSkip  float64 // forward conditional skip
	PInnerLoop float64 // short counted backward loop
	PCallNext  float64 // direct call to a deeper hot function
	PIndCall   float64 // indirect call through a rotating target set

	// CondNoise is the fraction of conditional sites that are
	// hash-random (hard for TAGE) rather than biased or patterned.
	CondNoise float64
	// CondTakenBias is the taken probability of biased conditional sites.
	CondTakenBias float64
	// InnerTrip bounds inner-loop trip counts [min,max].
	InnerTrip [2]int

	// Cold-attachment structure. Every hot function gets ColdSitesPerHot
	// cold attachment points; each fires once every ColdPeriod visits.
	ColdSitesPerHot int
	ColdPeriod      int
	// PColdViaCall is the probability a cold site is a guarded direct
	// call into a cold function (produces Call+Return BTB misses); the
	// remainder are outlined cold regions reached by a conditional jump
	// and left by a direct jump (produces DirectCond+DirectUncond
	// misses, no call/ret — the kafka-like mix).
	PColdViaCall float64
	// PColdTailCall is the probability a cold function ends by direct
	// tail-jump into another cold function instead of returning.
	PColdTailCall float64
	// ColdChainDepth is how many cold functions a cold call may chain
	// through (deeper chains mean more returns per episode).
	ColdChainDepth int

	// IndTargets is the fan-out of indirect call sites.
	IndTargets int
	// IndMegamorphic is the fraction of indirect sites with hash-random
	// target selection.
	IndMegamorphic float64

	// BoltLayout lays hot functions out contiguously before all cold
	// functions (as BOLT would), reducing hot/cold line sharing.
	// The default (false) interleaves hot and cold functions tightly.
	BoltLayout bool

	// CallDepth is the number of hot call-graph levels below the
	// dispatcher.
	CallDepth int

	// L1IMPKITarget is the real-system L1-I MPKI the paper reports in
	// Figure 13, used by the Fig. 13 validation harness.
	L1IMPKITarget float64
}

// Validate reports structural problems in a profile.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile has no name")
	}
	if p.HotFuncs < 4 {
		return fmt.Errorf("workload: %s: HotFuncs %d < 4", p.Name, p.HotFuncs)
	}
	if p.ColdFuncs < 0 {
		return fmt.Errorf("workload: %s: negative ColdFuncs", p.Name)
	}
	if p.BlocksPerHotFunc[0] < 1 || p.BlocksPerHotFunc[1] < p.BlocksPerHotFunc[0] {
		return fmt.Errorf("workload: %s: bad BlocksPerHotFunc %v", p.Name, p.BlocksPerHotFunc)
	}
	if p.InstsPerBlock[0] < 1 || p.InstsPerBlock[1] < p.InstsPerBlock[0] {
		return fmt.Errorf("workload: %s: bad InstsPerBlock %v", p.Name, p.InstsPerBlock)
	}
	sum := p.PCondSkip + p.PInnerLoop + p.PCallNext + p.PIndCall
	if sum > 1.0001 {
		return fmt.Errorf("workload: %s: terminator mix sums to %v > 1", p.Name, sum)
	}
	if p.ColdPeriod < 1 {
		return fmt.Errorf("workload: %s: ColdPeriod %d < 1", p.Name, p.ColdPeriod)
	}
	if p.CallDepth < 1 {
		return fmt.Errorf("workload: %s: CallDepth %d < 1", p.Name, p.CallDepth)
	}
	return nil
}

// registry holds all built-in benchmark profiles keyed by name.
var registry = map[string]Profile{}

func register(p Profile) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if _, dup := registry[p.Name]; dup {
		panic("workload: duplicate profile " + p.Name)
	}
	registry[p.Name] = p
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	p, ok := registry[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// Names returns all registered benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SuiteNames returns the names of the paper's 16-benchmark evaluation
// suite in the order Figure 14 lists them. The pre-BOLT verilator
// variant (Section 6.1.4) is registered but not part of the main suite.
func SuiteNames() []string {
	return []string{
		"cassandra", "kafka", "tomcat",
		"finagle-chirper", "finagle-http", "dotty",
		"tpcc", "ycsb", "twitter", "voter",
		"smallbank", "tatp", "sibench", "noop",
		"verilator-bolted", "speedometer2.0",
	}
}

func init() {
	// Shared defaults: individual profiles override the fields that set
	// their character (footprint, mix, cold structure). The numbers are
	// calibrated so the simulated L1-I MPKI ranks like Figure 13 and the
	// BTB miss-type mixes rank like Figure 6.
	base := Profile{
		BlocksPerHotFunc:  [2]int{5, 12},
		BlocksPerColdFunc: [2]int{2, 5},
		InstsPerBlock:     [2]int{3, 7},
		PCondSkip:         0.22,
		PInnerLoop:        0.08,
		PCallNext:         0.30,
		PIndCall:          0.04,
		CondNoise:         0.05,
		CondTakenBias:     0.72,
		InnerTrip:         [2]int{2, 5},
		ColdSitesPerHot:   2,
		ColdPeriod:        18,
		PColdViaCall:      0.70,
		PColdTailCall:     0.30,
		ColdChainDepth:    2,
		IndTargets:        6,
		IndMegamorphic:    0.25,
		CallDepth:         3,
	}
	derive := func(name, suite string, seed int64, mut func(*Profile)) {
		p := base
		p.Name = name
		p.Suite = suite
		p.Seed = seed
		if mut != nil {
			mut(&p)
		}
		register(p)
	}

	// DaCapo.
	derive("cassandra", "DaCapo", 101, func(p *Profile) {
		p.HotFuncs, p.ColdFuncs = 490, 3000
		p.L1IMPKITarget = 41
		p.PColdViaCall = 0.75
		p.ColdPeriod = 12
		p.ColdSitesPerHot = 3
	})
	derive("kafka", "DaCapo", 102, func(p *Profile) {
		// Kafka: many BTB misses sit on resident lines, but the miss mix
		// has few direct calls/returns (Fig. 6), so Skia gains little.
		p.HotFuncs, p.ColdFuncs = 240, 1500
		p.L1IMPKITarget = 24
		p.PColdViaCall = 0.10
		p.PColdTailCall = 0.55
		p.ColdChainDepth = 1
		p.ColdPeriod = 8
		p.ColdSitesPerHot = 2
	})
	derive("tomcat", "DaCapo", 103, func(p *Profile) {
		p.HotFuncs, p.ColdFuncs = 250, 2200
		p.ColdPeriod = 12
		p.L1IMPKITarget = 34
		p.ColdSitesPerHot = 2
	})

	// Renaissance.
	derive("finagle-chirper", "Renaissance", 104, func(p *Profile) {
		// Small footprint, few BTB misses overall: marginal Skia gains.
		p.HotFuncs, p.ColdFuncs = 215, 420
		p.L1IMPKITarget = 12
		p.ColdPeriod = 64
		p.ColdSitesPerHot = 1
	})
	derive("finagle-http", "Renaissance", 105, func(p *Profile) {
		p.HotFuncs, p.ColdFuncs = 205, 1500
		p.ColdPeriod = 12
		p.L1IMPKITarget = 27
		p.ColdSitesPerHot = 2
	})
	derive("dotty", "Renaissance", 106, func(p *Profile) {
		// Compiler: the largest code footprint in the suite.
		p.HotFuncs, p.ColdFuncs = 600, 3000
		p.L1IMPKITarget = 56
		p.PCallNext = 0.34
		p.ColdChainDepth = 3
		p.ColdPeriod = 12
		p.ColdSitesPerHot = 3
	})

	// OLTP-Bench on PostgreSQL.
	derive("tpcc", "OLTP", 107, func(p *Profile) {
		p.HotFuncs, p.ColdFuncs = 440, 2300
		p.L1IMPKITarget = 45
		p.ColdChainDepth = 3
		p.ColdPeriod = 10
		p.ColdSitesPerHot = 3
	})
	derive("ycsb", "OLTP", 108, func(p *Profile) {
		p.HotFuncs, p.ColdFuncs = 210, 1600
		p.L1IMPKITarget = 30
		p.ColdSitesPerHot = 2
		p.ColdPeriod = 12
	})
	derive("twitter", "OLTP", 109, func(p *Profile) {
		p.HotFuncs, p.ColdFuncs = 250, 1900
		p.ColdPeriod = 12
		p.L1IMPKITarget = 35
		p.ColdSitesPerHot = 2
	})
	derive("voter", "OLTP", 110, func(p *Profile) {
		// Call/return heavy: the biggest decoder-idle reduction (Fig 18).
		p.HotFuncs, p.ColdFuncs = 340, 2100
		p.L1IMPKITarget = 40
		p.PColdViaCall = 0.95
		p.ColdChainDepth = 4
		p.PCallNext = 0.36
		p.ColdPeriod = 8
		p.ColdSitesPerHot = 3
	})
	derive("smallbank", "OLTP", 111, func(p *Profile) {
		p.HotFuncs, p.ColdFuncs = 200, 1700
		p.L1IMPKITarget = 32
		p.ColdSitesPerHot = 2
		p.ColdPeriod = 12
	})
	derive("tatp", "OLTP", 112, func(p *Profile) {
		p.HotFuncs, p.ColdFuncs = 200, 1500
		p.ColdPeriod = 12
		p.L1IMPKITarget = 29
		p.ColdSitesPerHot = 2
	})
	derive("sibench", "OLTP", 113, func(p *Profile) {
		// Like voter: direct-uncond/call/ret dominated.
		p.HotFuncs, p.ColdFuncs = 270, 2000
		p.L1IMPKITarget = 37
		p.ColdPeriod = 8
		p.PColdViaCall = 0.92
		p.ColdChainDepth = 4
		p.ColdPeriod = 16
		p.ColdSitesPerHot = 3
	})
	derive("noop", "OLTP", 114, func(p *Profile) {
		p.HotFuncs, p.ColdFuncs = 185, 1100
		p.L1IMPKITarget = 19
	})

	// Chipyard.
	derive("verilator-bolted", "Chipyard", 115, func(p *Profile) {
		// BOLT-optimized layout: hot code packed contiguously, so fewer
		// hot/cold shared lines and fewer BTB misses than pre-BOLT.
		p.HotFuncs, p.ColdFuncs = 600, 2400
		p.L1IMPKITarget = 49
		p.BoltLayout = true
		p.ColdPeriod = 28
		p.ColdSitesPerHot = 3
	})
	derive("verilator", "Chipyard", 116, func(p *Profile) {
		// Pre-BOLT verilator (Section 6.1.4): same program, worse
		// layout, significantly more BTB misses, larger Skia gains.
		p.HotFuncs, p.ColdFuncs = 600, 2400
		p.L1IMPKITarget = 60
		p.BoltLayout = false
		p.ColdPeriod = 14
		p.ColdSitesPerHot = 2
		p.ColdSitesPerHot = 3
	})

	// BrowserBench.
	derive("speedometer2.0", "Browser", 117, func(p *Profile) {
		// JIT-warmed browser score: small steady-state footprint.
		p.HotFuncs, p.ColdFuncs = 185, 560
		p.L1IMPKITarget = 13
		p.ColdPeriod = 56
		p.PIndCall = 0.08
		p.IndMegamorphic = 0.5
	})
}
