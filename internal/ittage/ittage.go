// Package ittage implements an ITTAGE-style indirect branch target
// predictor (Seznec, CBP-2011), used by the paper's baseline BPU
// (Table 1). Like TAGE it combines a tagless base table with
// partially-tagged tables indexed by geometrically longer global path
// history; entries store full targets plus a confidence counter.
//
// The front-end pushes one path-history bit per executed taken branch
// via PushHistory, so the predictor can distinguish target rotations by
// the control-flow path (and by its own previous targets, whose bits
// enter the same history). Wrong-path lookups use Predict only.
package ittage

import "math"

// Config sizes the predictor.
type Config struct {
	// NumTables is the number of tagged tables.
	NumTables int
	// LogBase is log2 of base-table entries.
	LogBase int
	// LogTagged is log2 of entries per tagged table.
	LogTagged int
	// TagBits is the partial tag width.
	TagBits int
	// MinHist and MaxHist bound the geometric history lengths.
	MinHist, MaxHist int
}

// DefaultConfig approximates the paper's 64KB ITTAGE budget.
func DefaultConfig() Config {
	return Config{
		NumTables: 6,
		LogBase:   11,
		LogTagged: 9,
		TagBits:   11,
		MinHist:   4,
		MaxHist:   120,
	}
}

// StorageBits returns the approximate hardware budget in bits.
func (c Config) StorageBits() int {
	bits := (1 << c.LogBase) * (64 + 2)
	perEntry := 64 + 2 + c.TagBits + 2
	bits += c.NumTables * (1 << c.LogTagged) * perEntry
	return bits
}

// Stats counts prediction events.
type Stats struct {
	Predicts     uint64
	Mispredicts  uint64
	NoPrediction uint64
	Allocations  uint64
}

type baseEntry struct {
	target uint64
	ctr    int8
	valid  bool
}

type taggedEntry struct {
	tag    uint32
	target uint64
	ctr    int8 // 2-bit confidence [-2,1]
	u      uint8
	valid  bool
}

type folded struct {
	comp     uint64
	compLen  uint
	outPoint uint
}

func newFolded(origLen, compLen int) folded {
	return folded{compLen: uint(compLen), outPoint: uint(origLen % compLen)}
}

func (f *folded) update(youngest, oldest uint64) {
	f.comp = (f.comp << 1) | youngest
	f.comp ^= oldest << f.outPoint
	f.comp ^= f.comp >> f.compLen
	f.comp &= (1 << f.compLen) - 1
}

type history struct {
	bits []uint64
	ptr  int
	mask int
}

func newHistory(n int) *history {
	words := 1
	for words*64 < n {
		words *= 2
	}
	return &history{bits: make([]uint64, words), mask: words*64 - 1}
}

func (h *history) bit(k int) uint64 {
	idx := (h.ptr - k) & h.mask
	return (h.bits[idx/64] >> (uint(idx) % 64)) & 1
}

func (h *history) push(b uint64) {
	h.ptr = (h.ptr + 1) & h.mask
	word, off := h.ptr/64, uint(h.ptr)%64
	h.bits[word] = (h.bits[word] &^ (1 << off)) | (b << off)
}

type table struct {
	entries []taggedEntry
	histLen int
}

// histState is one complete path-history state (bits plus per-table
// folded registers). The predictor keeps a speculative state advanced
// with predicted targets at prediction time and an architectural state
// advanced with true targets at decode; SyncSpec repairs the former
// from the latter after a re-steer.
type histState struct {
	ghist *history
	folds [][2]folded // per table: index, tag
}

func (h *histState) push(b uint64, tables []table) {
	for i := range tables {
		oldest := h.ghist.bit(tables[i].histLen - 1)
		h.folds[i][0].update(b, oldest)
		h.folds[i][1].update(b, oldest)
	}
	h.ghist.push(b)
}

func (h *histState) copyFrom(src *histState) {
	copy(h.ghist.bits, src.ghist.bits)
	h.ghist.ptr = src.ghist.ptr
	copy(h.folds, src.folds)
}

// Prediction carries provider bookkeeping from Predict to Update.
type Prediction struct {
	// Target is the predicted target, 0 when no prediction exists.
	Target uint64
	// Valid reports whether any component supplied a target.
	Valid bool

	provider int // -1 = base
	indices  [16]uint32
	tags     [16]uint32
	baseIdx  uint32
}

// Predictor is an ITTAGE target predictor. Not safe for concurrent use.
type Predictor struct {
	cfg    Config
	base   []baseEntry
	tables []table
	spec   histState
	arch   histState
	stats  Stats
}

// New builds a predictor from cfg.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:  cfg,
		base: make([]baseEntry, 1<<cfg.LogBase),
	}
	p.tables = make([]table, cfg.NumTables)
	p.spec = histState{ghist: newHistory(cfg.MaxHist + 64), folds: make([][2]folded, cfg.NumTables)}
	p.arch = histState{ghist: newHistory(cfg.MaxHist + 64), folds: make([][2]folded, cfg.NumTables)}
	for i := range p.tables {
		var l int
		if cfg.NumTables == 1 {
			l = cfg.MinHist
		} else {
			ratio := float64(cfg.MaxHist) / float64(cfg.MinHist)
			l = int(float64(cfg.MinHist)*math.Pow(ratio, float64(i)/float64(cfg.NumTables-1)) + 0.5)
		}
		p.tables[i] = table{
			entries: make([]taggedEntry, 1<<cfg.LogTagged),
			histLen: l,
		}
		fs := [2]folded{newFolded(l, cfg.LogTagged), newFolded(l, cfg.TagBits)}
		p.spec.folds[i] = fs
		p.arch.folds[i] = fs
	}
	return p
}

// clone returns an independent deep copy of one history state.
func (h *histState) clone() histState {
	c := histState{}
	if h.ghist != nil {
		c.ghist = &history{
			bits: make([]uint64, len(h.ghist.bits)),
			ptr:  h.ghist.ptr,
			mask: h.ghist.mask,
		}
		copy(c.ghist.bits, h.ghist.bits)
	}
	if h.folds != nil {
		c.folds = make([][2]folded, len(h.folds))
		copy(c.folds, h.folds)
	}
	return c
}

// Clone returns an independent deep copy of the predictor: same table
// contents, both history states, and statistics.
func (p *Predictor) Clone() *Predictor {
	n := &Predictor{
		cfg:    p.cfg,
		base:   make([]baseEntry, len(p.base)),
		tables: make([]table, len(p.tables)),
		spec:   p.spec.clone(),
		arch:   p.arch.clone(),
		stats:  p.stats,
	}
	copy(n.base, p.base)
	for i, t := range p.tables {
		n.tables[i] = table{entries: make([]taggedEntry, len(t.entries)), histLen: t.histLen}
		copy(n.tables[i].entries, t.entries)
	}
	return n
}

func (p *Predictor) index(i int, pc uint64) uint32 {
	mask := uint32(1<<p.cfg.LogTagged) - 1
	return (uint32(pc) ^ uint32(pc>>uint(p.cfg.LogTagged)) ^ uint32(p.spec.folds[i][0].comp)) & mask
}

func (p *Predictor) tag(i int, pc uint64) uint32 {
	mask := uint32(1<<p.cfg.TagBits) - 1
	return (uint32(pc>>2) ^ uint32(p.spec.folds[i][1].comp)) & mask
}

// Predict returns the target prediction for the indirect branch at pc
// without mutating state.
func (p *Predictor) Predict(pc uint64) Prediction {
	pr := Prediction{provider: -1}
	pr.baseIdx = uint32(pc>>1) & (uint32(1<<p.cfg.LogBase) - 1)
	for i := p.cfg.NumTables - 1; i >= 0; i-- {
		pr.indices[i] = p.index(i, pc)
		pr.tags[i] = p.tag(i, pc)
	}
	for i := p.cfg.NumTables - 1; i >= 0; i-- {
		e := &p.tables[i].entries[pr.indices[i]]
		if e.valid && e.tag == pr.tags[i] {
			pr.provider = i
			pr.Target = e.target
			pr.Valid = true
			return pr
		}
	}
	be := &p.base[pr.baseIdx]
	if be.valid {
		pr.Target = be.target
		pr.Valid = true
	}
	return pr
}

// Update trains the predictor with the actual target and pushes nothing
// into history (the front-end pushes history for every taken branch via
// PushHistory, keeping one global ordering).
func (p *Predictor) Update(pc uint64, pred Prediction, actual uint64) {
	p.stats.Predicts++
	correct := pred.Valid && pred.Target == actual
	if !pred.Valid {
		p.stats.NoPrediction++
	}
	if !correct {
		p.stats.Mispredicts++
	}

	if pred.provider >= 0 {
		e := &p.tables[pred.provider].entries[pred.indices[pred.provider]]
		if e.target == actual {
			if e.ctr < 1 {
				e.ctr++
			}
			if e.u < 3 {
				e.u++
			}
		} else {
			if e.ctr > -2 {
				e.ctr--
			}
			if e.ctr <= -2 {
				// Low confidence: replace the target in place.
				e.target = actual
				e.ctr = 0
			}
			if e.u > 0 {
				e.u--
			}
		}
	} else {
		be := &p.base[pred.baseIdx]
		if !be.valid || be.ctr <= -2 {
			*be = baseEntry{target: actual, valid: true}
		} else if be.target == actual {
			if be.ctr < 1 {
				be.ctr++
			}
		} else {
			be.ctr--
		}
	}

	// Allocate a longer-history entry on misprediction.
	if !correct && pred.provider < p.cfg.NumTables-1 {
		for i := pred.provider + 1; i < p.cfg.NumTables; i++ {
			e := &p.tables[i].entries[pred.indices[i]]
			if !e.valid || e.u == 0 {
				*e = taggedEntry{tag: pred.tags[i], target: actual, ctr: 0, valid: true}
				p.stats.Allocations++
				return
			}
		}
		for i := pred.provider + 1; i < p.cfg.NumTables; i++ {
			e := &p.tables[i].entries[pred.indices[i]]
			if e.u > 0 {
				e.u--
			}
		}
	}
}

// pathBits derives the two history bits one taken branch contributes,
// as in Seznec's ITTAGE: target bits carry the information needed to
// tell apart rotation states of a polymorphic site reached along an
// otherwise identical path.
func pathBits(pc, target uint64) (uint64, uint64) {
	b1 := ((pc >> 2) ^ (target >> 4) ^ (target >> 9)) & 1
	b2 := ((target >> 5) ^ (target >> 12)) & 1
	return b1, b2
}

// SpecPush records a *predicted* taken branch (any class) into the
// speculative path history at prediction time.
func (p *Predictor) SpecPush(pc, target uint64) {
	b1, b2 := pathBits(pc, target)
	p.spec.push(b1, p.tables)
	p.spec.push(b2, p.tables)
}

// ArchPush records a *true* taken branch into the architectural path
// history at decode.
func (p *Predictor) ArchPush(pc, target uint64) {
	b1, b2 := pathBits(pc, target)
	p.arch.push(b1, p.tables)
	p.arch.push(b2, p.tables)
}

// SyncSpec repairs the speculative history from the architectural one
// after a re-steer.
func (p *Predictor) SyncSpec() { p.spec.copyFrom(&p.arch) }

// Stats returns accumulated counts.
func (p *Predictor) Stats() Stats { return p.stats }

// ResetStats zeroes statistics without forgetting learned state.
func (p *Predictor) ResetStats() { p.stats = Stats{} }
