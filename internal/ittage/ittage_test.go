package ittage

import (
	"math/rand"
	"testing"
)

func smallConfig() Config {
	return Config{NumTables: 5, LogBase: 9, LogTagged: 8, TagBits: 10, MinHist: 4, MaxHist: 64}
}

func TestMonomorphicSite(t *testing.T) {
	p := New(smallConfig())
	const target = 0xBEEF00
	misses := 0
	for i := 0; i < 1000; i++ {
		pred := p.Predict(0x500)
		if i > 100 && (!pred.Valid || pred.Target != target) {
			misses++
		}
		p.Update(0x500, pred, target)
		p.ArchPush(0x500, target)
		p.SyncSpec()
	}
	if misses != 0 {
		t.Errorf("monomorphic site missed %d times after warmup", misses)
	}
}

func TestRoundRobinTargets(t *testing.T) {
	// A site rotating among 4 targets: the rotation is visible in path
	// history (each target pushes a distinguishable bit pattern), so
	// ITTAGE should learn it well.
	p := New(smallConfig())
	targets := []uint64{0x1000, 0x2010, 0x3020, 0x4030}
	misses, measured := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		actual := targets[i%len(targets)]
		pred := p.Predict(0x700)
		if i > n/2 {
			measured++
			if !pred.Valid || pred.Target != actual {
				misses++
			}
		}
		p.Update(0x700, pred, actual)
		p.ArchPush(0x700, actual)
		p.SyncSpec()
	}
	rate := float64(misses) / float64(measured)
	if rate > 0.15 {
		t.Errorf("round-robin mispredict rate %.3f", rate)
	}
}

func TestMegamorphicSiteIsHard(t *testing.T) {
	p := New(smallConfig())
	rng := rand.New(rand.NewSource(3))
	targets := make([]uint64, 16)
	for i := range targets {
		targets[i] = uint64(0x1000 + i*64)
	}
	misses, measured := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		actual := targets[rng.Intn(len(targets))]
		pred := p.Predict(0x900)
		if i > n/2 {
			measured++
			if !pred.Valid || pred.Target != actual {
				misses++
			}
		}
		p.Update(0x900, pred, actual)
		p.ArchPush(0x900, actual)
		p.SyncSpec()
	}
	rate := float64(misses) / float64(measured)
	if rate < 0.5 {
		t.Errorf("random 16-way site predicted too well: %.3f", rate)
	}
}

func TestNoPredictionBeforeTraining(t *testing.T) {
	p := New(smallConfig())
	pred := p.Predict(0x123)
	if pred.Valid {
		t.Error("untrained predictor should not predict")
	}
	p.Update(0x123, pred, 0x5555)
	if p.Stats().NoPrediction != 1 {
		t.Errorf("NoPrediction = %d", p.Stats().NoPrediction)
	}
	pred = p.Predict(0x123)
	if !pred.Valid || pred.Target != 0x5555 {
		t.Errorf("after one update: %+v", pred)
	}
}

func TestPredictIsPure(t *testing.T) {
	p := New(smallConfig())
	for i := 0; i < 50; i++ {
		pred := p.Predict(0x40)
		p.Update(0x40, pred, 0x1234)
		p.ArchPush(0x40, 0x1234)
		p.SyncSpec()
	}
	a := p.Predict(0x40)
	for i := 0; i < 100; i++ {
		p.Predict(uint64(i * 8))
	}
	b := p.Predict(0x40)
	if a != b {
		t.Error("Predict mutated state")
	}
}

func TestTwoSitesDoNotDestroyEachOther(t *testing.T) {
	p := New(smallConfig())
	missesA, missesB := 0, 0
	for i := 0; i < 4000; i++ {
		predA := p.Predict(0x100)
		if i > 500 && predA.Target != 0xAAA0 {
			missesA++
		}
		p.Update(0x100, predA, 0xAAA0)
		p.ArchPush(0x100, 0xAAA0)
		p.SyncSpec()

		predB := p.Predict(0x2000)
		if i > 500 && predB.Target != 0xBBB0 {
			missesB++
		}
		p.Update(0x2000, predB, 0xBBB0)
		p.ArchPush(0x2000, 0xBBB0)
		p.SyncSpec()
	}
	if missesA > 10 || missesB > 10 {
		t.Errorf("cross-site interference: A=%d B=%d", missesA, missesB)
	}
}

func TestStatsAndReset(t *testing.T) {
	p := New(smallConfig())
	pred := p.Predict(8)
	p.Update(8, pred, 0x10)
	if p.Stats().Predicts != 1 || p.Stats().Mispredicts != 1 {
		t.Errorf("stats %+v", p.Stats())
	}
	p.ResetStats()
	if p.Stats().Predicts != 0 {
		t.Error("stats not reset")
	}
	// Learned target must survive the reset.
	if got := p.Predict(8); !got.Valid || got.Target != 0x10 {
		t.Error("ResetStats dropped learned state")
	}
}

func TestStorageBits(t *testing.T) {
	kb := float64(DefaultConfig().StorageBits()) / 8 / 1024
	if kb < 16 || kb > 96 {
		t.Errorf("default ITTAGE storage %.1f KB implausible", kb)
	}
}

func BenchmarkPredictUpdate(b *testing.B) {
	p := New(DefaultConfig())
	targets := []uint64{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		actual := targets[i%4]
		pred := p.Predict(0x60)
		p.Update(0x60, pred, actual)
		p.ArchPush(0x60, actual)
		p.SyncSpec()
	}
}

// TestStatsConservation cycles one indirect branch through rotating
// targets and checks counter sanity: mispredicts bounded by predicts,
// and target churn forces tagged-entry allocations.
func TestStatsConservation(t *testing.T) {
	p := New(smallConfig())
	const n = 500
	for i := 0; i < n; i++ {
		pc := uint64(0x100)
		pred := p.Predict(pc)
		tgt := uint64(0x1000 + uint64(i%7)*16)
		p.Update(pc, pred, tgt)
		p.ArchPush(pc, tgt)
		p.SyncSpec()
	}
	s := p.Stats()
	if s.Predicts != n {
		t.Fatalf("predicts = %d, want %d", s.Predicts, n)
	}
	if s.Mispredicts > s.Predicts {
		t.Errorf("mispredicts %d exceed predicts %d", s.Mispredicts, s.Predicts)
	}
	if s.Allocations == 0 {
		t.Error("target churn allocated no tagged entries")
	}
}
