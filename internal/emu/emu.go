// Package emu is the functional VLX emulator. It executes a generated
// workload's true control-flow path — conditional outcomes and indirect
// targets come from the workload's behaviour oracle, calls and returns
// from an architectural stack — and feeds the resulting dynamic
// instruction stream to the timing model (internal/cpu). The timing
// model's front-end runs *ahead* on its own predicted path; the emulator
// defines the ground truth it is checked against, which is what makes
// the simulation execution-driven in the sense the paper requires for
// modeling wrong-path effects.
package emu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/workload"
)

// Step is one executed instruction with its resolved control flow.
type Step struct {
	// Inst is the executed instruction.
	Inst isa.Inst
	// Taken reports whether a branch transferred control (always true
	// for unconditional classes; false for not-taken conditionals and
	// all sequential instructions).
	Taken bool
	// NextPC is the architecturally correct next instruction address.
	NextPC uint64
}

// Emulator executes one workload. It is not safe for concurrent use;
// create one per simulation run.
type Emulator struct {
	w     *workload.Workload
	pc    uint64
	stack []uint64
	// visits counts executions per branch site, indexed by the
	// workload's dense canonical-stream instruction index (a flat slice
	// beats a PC-keyed map: the lookup runs once per executed
	// conditional or indirect branch).
	visits []uint64
	count  uint64
	halted bool
}

// MaxStackDepth bounds the architectural call stack; exceeding it means
// the generator produced unexpected recursion.
const MaxStackDepth = 1 << 16

// New creates an emulator positioned at the workload entry point.
func New(w *workload.Workload) *Emulator {
	return &Emulator{
		w:      w,
		pc:     w.Prog.Entry,
		visits: make([]uint64, w.NumStaticInsts()),
	}
}

// Clone returns an independent deep copy of the emulator sharing only
// the immutable workload. Stepping either copy never affects the
// other, which is what makes post-warmup checkpointing sound: every
// sample interval derives from the same architectural state.
func (e *Emulator) Clone() *Emulator {
	c := &Emulator{
		w:      e.w,
		pc:     e.pc,
		stack:  make([]uint64, len(e.stack)),
		visits: make([]uint64, len(e.visits)),
		count:  e.count,
		halted: e.halted,
	}
	copy(c.stack, e.stack)
	copy(c.visits, e.visits)
	return c
}

// PC returns the address of the next instruction to execute.
func (e *Emulator) PC() uint64 { return e.pc }

// InstCount returns the number of instructions executed so far.
func (e *Emulator) InstCount() uint64 { return e.count }

// Halted reports whether a halt instruction was executed or the call
// stack underflowed (program finished).
func (e *Emulator) Halted() bool { return e.halted }

// StackDepth returns the current call-stack depth.
func (e *Emulator) StackDepth() int { return len(e.stack) }

// StackCopy returns a copy of the architectural call stack, oldest
// frame first. The front-end uses it to repair the speculative RAS
// after a re-steer.
func (e *Emulator) StackCopy() []uint64 {
	out := make([]uint64, len(e.stack))
	copy(out, e.stack)
	return out
}

// Stack returns the live architectural call stack, oldest frame first,
// without copying. The returned slice aliases emulator state and is
// invalidated by the next Step; callers that retain it must use
// StackCopy instead. Resteer paths that immediately copy the frames
// into the RAS use this to avoid an allocation per resteer.
func (e *Emulator) Stack() []uint64 { return e.stack }

// Step executes one instruction and returns its outcome. After a halt it
// returns an error.
func (e *Emulator) Step() (Step, error) {
	if e.halted {
		return Step{}, fmt.Errorf("emu: stepping a halted emulator")
	}
	in, ok := e.w.InstAt(e.pc)
	if !ok {
		return Step{}, fmt.Errorf("emu: pc %#x is not an instruction boundary", e.pc)
	}
	st := Step{Inst: in, NextPC: in.NextPC()}

	switch in.Class {
	case isa.ClassSeq:
		if in.Op == isa.OpHalt {
			e.halted = true
		}

	case isa.ClassDirectCond:
		b, ok := e.w.Cond[in.PC]
		if !ok {
			return Step{}, fmt.Errorf("emu: conditional at %#x has no behaviour", in.PC)
		}
		idx := e.w.InstIndex(in.PC)
		v := e.visits[idx]
		e.visits[idx] = v + 1
		if b.Taken(v) {
			st.Taken = true
			tgt, _ := in.BranchTarget()
			st.NextPC = tgt
		}

	case isa.ClassDirectUncond:
		st.Taken = true
		tgt, _ := in.BranchTarget()
		st.NextPC = tgt

	case isa.ClassCall:
		st.Taken = true
		tgt, _ := in.BranchTarget()
		if len(e.stack) >= MaxStackDepth {
			return Step{}, fmt.Errorf("emu: call stack overflow at %#x", in.PC)
		}
		e.stack = append(e.stack, in.NextPC())
		st.NextPC = tgt

	case isa.ClassReturn:
		st.Taken = true
		if len(e.stack) == 0 {
			// Returning from the entry function ends the program.
			e.halted = true
			st.NextPC = in.NextPC()
			break
		}
		st.NextPC = e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]

	case isa.ClassIndirect, isa.ClassIndirectCall:
		b, ok := e.w.Ind[in.PC]
		if !ok {
			return Step{}, fmt.Errorf("emu: indirect at %#x has no behaviour", in.PC)
		}
		idx := e.w.InstIndex(in.PC)
		v := e.visits[idx]
		e.visits[idx] = v + 1
		tgt := b.Target(v)
		if tgt == 0 {
			return Step{}, fmt.Errorf("emu: indirect at %#x produced a nil target", in.PC)
		}
		st.Taken = true
		st.NextPC = tgt
		if in.Class == isa.ClassIndirectCall {
			if len(e.stack) >= MaxStackDepth {
				return Step{}, fmt.Errorf("emu: call stack overflow at %#x", in.PC)
			}
			e.stack = append(e.stack, in.NextPC())
		}
	}

	e.pc = st.NextPC
	e.count++
	return st, nil
}

// Run executes up to n instructions, stopping early on halt. It returns
// the number executed.
func (e *Emulator) Run(n uint64) (uint64, error) {
	var i uint64
	for i = 0; i < n && !e.halted; i++ {
		if _, err := e.Step(); err != nil {
			return i, err
		}
	}
	return i, nil
}
