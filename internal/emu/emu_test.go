package emu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

func testWorkload(t testing.TB) *workload.Workload {
	p, err := workload.ByName("noop")
	if err != nil {
		t.Fatal(err)
	}
	p.HotFuncs = 32
	p.ColdFuncs = 80
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunBasics(t *testing.T) {
	w := testWorkload(t)
	e := New(w)
	if e.PC() != w.Prog.Entry {
		t.Fatalf("initial pc %#x != entry %#x", e.PC(), w.Prog.Entry)
	}
	const n = 100_000
	ran, err := e.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if ran != n {
		t.Fatalf("ran %d instructions, want %d (halted=%v)", ran, n, e.Halted())
	}
	if e.InstCount() != n {
		t.Errorf("InstCount = %d", e.InstCount())
	}
}

func TestExecutionStaysInImage(t *testing.T) {
	w := testWorkload(t)
	e := New(w)
	for i := 0; i < 50_000; i++ {
		st, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !w.Prog.Contains(st.Inst.PC) {
			t.Fatalf("executed pc %#x outside image", st.Inst.PC)
		}
		if !w.Prog.Contains(st.NextPC) {
			t.Fatalf("next pc %#x outside image", st.NextPC)
		}
	}
}

func TestCallsAndReturnsBalance(t *testing.T) {
	w := testWorkload(t)
	e := New(w)
	calls, rets := 0, 0
	maxDepth := 0
	for i := 0; i < 200_000; i++ {
		st, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		switch st.Inst.Class {
		case isa.ClassCall, isa.ClassIndirectCall:
			calls++
		case isa.ClassReturn:
			rets++
		}
		if d := e.StackDepth(); d > maxDepth {
			maxDepth = d
		}
	}
	if calls == 0 || rets == 0 {
		t.Fatalf("no call/return activity: calls=%d rets=%d", calls, rets)
	}
	if diff := calls - rets; diff < 0 || diff > maxDepth+4 {
		t.Errorf("call/ret imbalance %d beyond stack depth %d", diff, maxDepth)
	}
	if maxDepth > 64 {
		t.Errorf("suspicious stack depth %d", maxDepth)
	}
}

func TestReturnTargetsMatchCallSites(t *testing.T) {
	w := testWorkload(t)
	e := New(w)
	var retAddrs []uint64
	for i := 0; i < 100_000; i++ {
		st, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		switch st.Inst.Class {
		case isa.ClassCall, isa.ClassIndirectCall:
			retAddrs = append(retAddrs, st.Inst.NextPC())
		case isa.ClassReturn:
			if len(retAddrs) == 0 {
				continue // return from a frame entered before we watched
			}
			want := retAddrs[len(retAddrs)-1]
			retAddrs = retAddrs[:len(retAddrs)-1]
			if st.NextPC != want {
				t.Fatalf("return at %#x went to %#x, want %#x", st.Inst.PC, st.NextPC, want)
			}
		}
	}
}

func TestBranchOutcomesMatchOracle(t *testing.T) {
	w := testWorkload(t)
	e := New(w)
	visits := map[uint64]uint64{}
	for i := 0; i < 100_000; i++ {
		st, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		pc := st.Inst.PC
		switch st.Inst.Class {
		case isa.ClassDirectCond:
			b := w.Cond[pc]
			if b == nil {
				t.Fatalf("no behaviour for cond at %#x", pc)
			}
			if want := b.Taken(visits[pc]); st.Taken != want {
				t.Fatalf("cond at %#x visit %d: taken=%v, oracle says %v", pc, visits[pc], st.Taken, want)
			}
			if st.Taken {
				tgt, _ := st.Inst.BranchTarget()
				if st.NextPC != tgt {
					t.Fatalf("taken cond went to %#x, target is %#x", st.NextPC, tgt)
				}
			} else if st.NextPC != st.Inst.NextPC() {
				t.Fatalf("not-taken cond went to %#x", st.NextPC)
			}
			visits[pc]++
		case isa.ClassIndirect, isa.ClassIndirectCall:
			b := w.Ind[pc]
			if want := b.Target(visits[pc]); st.NextPC != want {
				t.Fatalf("indirect at %#x went to %#x, oracle says %#x", pc, st.NextPC, want)
			}
			visits[pc]++
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	w := testWorkload(t)
	e1, e2 := New(w), New(w)
	for i := 0; i < 50_000; i++ {
		s1, err1 := e1.Step()
		s2, err2 := e2.Step()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if s1 != s2 {
			t.Fatalf("divergence at step %d: %+v vs %+v", i, s1, s2)
		}
	}
}

func TestColdEpisodesOccur(t *testing.T) {
	w := testWorkload(t)
	e := New(w)
	coldExec := 0
	for i := 0; i < 400_000; i++ {
		st, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if f := w.Prog.FuncAt(st.Inst.PC); f != nil && !f.Hot {
			coldExec++
		}
	}
	if coldExec == 0 {
		t.Error("cold functions never executed: cold-branch structure is broken")
	}
	frac := float64(coldExec) / 400_000
	if frac > 0.25 {
		t.Errorf("cold code is %.1f%% of execution; should be rare", frac*100)
	}
}

func TestBranchMixReasonable(t *testing.T) {
	w := testWorkload(t)
	e := New(w)
	branches := 0
	const n = 200_000
	for i := 0; i < n; i++ {
		st, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.Inst.Class.IsBranch() {
			branches++
		}
	}
	frac := float64(branches) / n
	if frac < 0.08 || frac > 0.45 {
		t.Errorf("dynamic branch fraction %.2f outside plausible range", frac)
	}
}

func TestHaltStopsEmulator(t *testing.T) {
	// Build a tiny workload image manually via a custom profile is
	// overkill; instead drive Step until we inject halt semantics by
	// checking the error after forcing the halted flag.
	w := testWorkload(t)
	e := New(w)
	e.halted = true
	if _, err := e.Step(); err == nil {
		t.Error("stepping a halted emulator should error")
	}
	if n, err := e.Run(10); n != 0 || err != nil {
		t.Errorf("Run on halted emulator: n=%d err=%v", n, err)
	}
}

func BenchmarkEmulatorStep(b *testing.B) {
	w := testWorkload(b)
	e := New(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
