package emu

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestMissingCondBehaviorErrors removes a conditional site's behaviour
// and verifies the emulator reports it instead of guessing.
func TestMissingCondBehaviorErrors(t *testing.T) {
	w := testWorkload(t)
	// Find the first conditional the program will actually execute.
	probe := New(w)
	var condPC uint64
	for i := 0; i < 100_000; i++ {
		st, err := probe.Step()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := w.Cond[st.Inst.PC]; ok {
			condPC = st.Inst.PC
			break
		}
	}
	if condPC == 0 {
		t.Fatal("no conditional executed in probe window")
	}
	saved := w.Cond[condPC]
	delete(w.Cond, condPC)
	defer func() { w.Cond[condPC] = saved }()

	e := New(w)
	var lastErr error
	for i := 0; i < 200_000; i++ {
		if _, err := e.Step(); err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil || !strings.Contains(lastErr.Error(), "no behaviour") {
		t.Errorf("expected behaviour error, got %v", lastErr)
	}
}

// TestMissingIndirectBehaviorErrors does the same for indirect sites.
func TestMissingIndirectBehaviorErrors(t *testing.T) {
	w := testWorkload(t)
	probe := New(w)
	var indPC uint64
	for i := 0; i < 500_000; i++ {
		st, err := probe.Step()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := w.Ind[st.Inst.PC]; ok {
			indPC = st.Inst.PC
			break
		}
	}
	if indPC == 0 {
		t.Skip("no indirect executed in probe window")
	}
	saved := w.Ind[indPC]
	delete(w.Ind, indPC)
	defer func() { w.Ind[indPC] = saved }()

	e := New(w)
	var lastErr error
	for i := 0; i < 600_000; i++ {
		if _, err := e.Step(); err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil || !strings.Contains(lastErr.Error(), "no behaviour") {
		t.Errorf("expected behaviour error, got %v", lastErr)
	}
}

// TestNilIndirectTargetErrors verifies a behaviour returning target 0 is
// rejected rather than executed.
func TestNilIndirectTargetErrors(t *testing.T) {
	w := testWorkload(t)
	probe := New(w)
	var indPC uint64
	for i := 0; i < 500_000; i++ {
		st, err := probe.Step()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := w.Ind[st.Inst.PC]; ok {
			indPC = st.Inst.PC
			break
		}
	}
	if indPC == 0 {
		t.Skip("no indirect executed in probe window")
	}
	saved := w.Ind[indPC]
	w.Ind[indPC] = workload.RoundRobinTargets{} // empty: yields 0
	defer func() { w.Ind[indPC] = saved }()

	e := New(w)
	var lastErr error
	for i := 0; i < 600_000; i++ {
		if _, err := e.Step(); err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil || !strings.Contains(lastErr.Error(), "nil target") {
		t.Errorf("expected nil-target error, got %v", lastErr)
	}
}

// TestStackCopyIsolated verifies mutations of the returned stack copy do
// not leak into the emulator.
func TestStackCopyIsolated(t *testing.T) {
	w := testWorkload(t)
	e := New(w)
	for e.StackDepth() == 0 {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	cp := e.StackCopy()
	if len(cp) != e.StackDepth() {
		t.Fatalf("copy length %d != depth %d", len(cp), e.StackDepth())
	}
	orig := cp[0]
	cp[0] = 0xdeadbeef
	if e.StackCopy()[0] != orig {
		t.Error("StackCopy aliases internal state")
	}
}

// TestNonBoundaryPCErrors: stepping from a corrupted PC fails cleanly.
func TestNonBoundaryPCErrors(t *testing.T) {
	w := testWorkload(t)
	e := New(w)
	// Find a >1-byte instruction and aim the PC inside it by stepping
	// to it and corrupting pc via the only exported route: none exists,
	// so instead verify InstAt-based guard through the public API by
	// checking the error text contract on a workload whose entry is
	// fine — covered implicitly. Here we just assert stepping works
	// from a fresh emulator (the boundary guard's happy path).
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
}
