//go:build !skiainvariants

package core

import (
	"testing"

	"repro/internal/isa"
)

// TestInvariantsCompiledOutByDefault proves the default build carries
// no assertions: the same corruption that panics under the
// skiainvariants tag (see invariants_tagged_test.go) passes silently,
// so production figure runs pay zero checking cost.
func TestInvariantsCompiledOutByDefault(t *testing.T) {
	if invariantsEnabled {
		t.Fatal("default build must not enable invariants")
	}
	s := tinySBB()
	s.uSets[0] = append(s.uSets[0], uWay{valid: true})
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("untagged build panicked on corrupted SBB: %v", r)
		}
	}()
	s.Insert(ShadowBranch{PC: 0x1000, Class: isa.ClassDirectUncond, Target: 0x2000, Len: 2}, false)
}
