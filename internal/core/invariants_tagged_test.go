//go:build skiainvariants

package core

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// TestInvariantFiresOnCorruptedSBB corrupts the buffer's geometry the
// way only a bug could (an extra way appended to a set) and asserts
// the tagged build's occupancy assertion trips on the next insert.
func TestInvariantFiresOnCorruptedSBB(t *testing.T) {
	if !invariantsEnabled {
		t.Fatal("tagged build must enable invariants")
	}
	s := tinySBB()
	s.uSets[0] = append(s.uSets[0], uWay{valid: true})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupted U-SBB set geometry did not trip the invariant")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "skiainvariants") {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	s.Insert(ShadowBranch{PC: 0x1000, Class: isa.ClassDirectUncond, Target: 0x2000, Len: 2}, false)
}

// TestInvariantFiresOnOverfullDecodeCache forces the memo past its
// line bound behind the eviction path's back.
func TestInvariantFiresOnOverfullDecodeCache(t *testing.T) {
	c := NewDecodeCache(2, false)
	c.lines[0x40] = &lineDecodes{}
	c.lines[0x80] = &lineDecodes{}
	c.lines[0xC0] = &lineDecodes{} // past the bound, bypassing record's eviction
	defer func() {
		if recover() == nil {
			t.Fatal("overfull decode cache did not trip the invariant")
		}
	}()
	decodeCacheCheckInvariants(c)
}
