//go:build !skiainvariants

package core

// invariantsEnabled is false in default builds: every assertion call
// below a `if invariantsEnabled` guard is dead code, the empty stubs
// inline to nothing, and the linker drops their symbols entirely
// (proven by TestInvariantSymbolPresence). Build with
// `-tags skiainvariants` to compile the checks in.
const invariantsEnabled = false

func sbbCheckInvariants(*SBB)                 {}
func decodeCacheCheckInvariants(*DecodeCache) {}
