package core

import (
	"testing"

	"repro/internal/isa"
)

func tinySBB() *SBB {
	return MustNewSBB(SBBConfig{
		UEntries: 16, UWays: 4,
		REntries: 16, RWays: 4,
		TagBits:              10,
		RetiredFirstEviction: true,
	})
}

func TestSBBConfigValidation(t *testing.T) {
	bads := []SBBConfig{
		{UEntries: -1, UWays: 4, REntries: 4, RWays: 4, TagBits: 10},
		{UEntries: 4, UWays: 0, REntries: 4, RWays: 4, TagBits: 10},
		{UEntries: 5, UWays: 4, REntries: 4, RWays: 4, TagBits: 10},
		{UEntries: 4, UWays: 4, REntries: 4, RWays: 4, TagBits: 0},
	}
	for i, c := range bads {
		if _, err := NewSBB(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewSBB(DefaultSBBConfig()); err != nil {
		t.Errorf("default rejected: %v", err)
	}
}

func TestDefaultSBBMatchesPaperBudget(t *testing.T) {
	cfg := DefaultSBBConfig()
	if cfg.UEntries != 768 || cfg.REntries != 2024 {
		t.Errorf("entry split %d/%d, paper uses 768/2024", cfg.UEntries, cfg.REntries)
	}
	kb := float64(cfg.StorageBits()) / 8 / 1024
	// Paper: 12.25KB with 78/20-bit entries; ours adds a call bit and a
	// 4-bit length to U entries, landing slightly above.
	if kb < 11.5 || kb > 13.5 {
		t.Errorf("SBB storage %.2f KB, want ~12.25", kb)
	}
}

func TestUInsertLookup(t *testing.T) {
	s := tinySBB()
	sb := ShadowBranch{PC: 0x1005, Class: isa.ClassCall, Target: 0x9000, Len: 5}
	s.Insert(sb, false)
	e, ok := s.LookupU(0x1005)
	if !ok || e.Target != 0x9000 || !e.IsCall || e.Len != 5 {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
	if _, ok := s.LookupU(0x1006); ok {
		t.Error("phantom U hit")
	}
	st := s.Stats()
	if st.UInserts != 1 || st.UHits != 1 || st.UMisses != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestRInsertLookup(t *testing.T) {
	s := tinySBB()
	s.Insert(ShadowBranch{PC: 0x2031, Class: isa.ClassReturn, Len: 1}, false)
	if !s.LookupR(0x2031) {
		t.Fatal("R miss after insert")
	}
	// Same line, different offset: must miss.
	if s.LookupR(0x2032) {
		t.Error("offset mismatch hit")
	}
	// Different line, same offset: must miss.
	if s.LookupR(0x2071) {
		t.Error("line mismatch hit")
	}
	// Two returns on the same line coexist.
	s.Insert(ShadowBranch{PC: 0x2004, Class: isa.ClassReturn, Len: 1}, false)
	if !s.LookupR(0x2031) || !s.LookupR(0x2004) {
		t.Error("same-line returns should coexist")
	}
}

func TestJumpsGoToUSBB(t *testing.T) {
	s := tinySBB()
	s.Insert(ShadowBranch{PC: 0x300, Class: isa.ClassDirectUncond, Target: 0x400, Len: 5}, false)
	e, ok := s.LookupU(0x300)
	if !ok || e.IsCall {
		t.Errorf("jump entry = %+v, %v", e, ok)
	}
	if s.LookupR(0x300) {
		t.Error("jump leaked into R-SBB")
	}
}

func TestIndirectBranchesNotInsertable(t *testing.T) {
	// Indirect branches have no statically decodable target; the SBB
	// must reject them. (Direct conditionals are accepted — the SBD
	// gates them with its IncludeConditionals extension flag.)
	s := tinySBB()
	s.Insert(ShadowBranch{PC: 0x504, Class: isa.ClassIndirect}, false)
	s.Insert(ShadowBranch{PC: 0x508, Class: isa.ClassIndirectCall}, false)
	if _, ok := s.LookupU(0x504); ok {
		t.Error("indirect inserted")
	}
	if _, ok := s.LookupU(0x508); ok {
		t.Error("indirect call inserted")
	}
	if s.Stats().UInserts != 0 {
		t.Error("insert counted for unsupported class")
	}
}

func TestRefreshKeepsRetired(t *testing.T) {
	s := tinySBB()
	sb := ShadowBranch{PC: 0x700, Class: isa.ClassDirectUncond, Target: 1, Len: 2}
	s.Insert(sb, false)
	s.MarkRetired(0x700, isa.ClassDirectUncond)
	// Re-inserting the same branch (common on re-decode) must not
	// clear the retired bit; verify via eviction priority below.
	sb.Target = 2
	s.Insert(sb, false)
	e, _ := s.LookupU(0x700)
	if e.Target != 2 {
		t.Error("refresh did not update target")
	}
	if s.Stats().RetiredMarks != 1 {
		t.Errorf("retired marks = %d", s.Stats().RetiredMarks)
	}
}

func TestRetiredFirstEviction(t *testing.T) {
	// One set with 4 ways: fill with 4 entries, retire 3, insert a 5th;
	// the non-retired one must be the victim even if recently used.
	s := MustNewSBB(SBBConfig{
		UEntries: 4, UWays: 4, REntries: 4, RWays: 4,
		TagBits: 10, RetiredFirstEviction: true,
	})
	pcs := []uint64{0x10, 0x20, 0x30, 0x40} // all map to the single set
	for _, pc := range pcs {
		s.Insert(ShadowBranch{PC: pc, Class: isa.ClassDirectUncond, Target: pc + 1, Len: 2}, false)
	}
	s.MarkRetired(0x10, isa.ClassDirectUncond)
	s.MarkRetired(0x20, isa.ClassDirectUncond)
	s.MarkRetired(0x40, isa.ClassDirectUncond)
	s.LookupU(0x30) // refresh the non-retired entry's LRU
	s.Insert(ShadowBranch{PC: 0x50, Class: isa.ClassDirectUncond, Target: 1, Len: 2}, false)
	if _, ok := s.LookupU(0x30); ok {
		t.Error("non-retired entry survived; retired-first eviction broken")
	}
	for _, pc := range []uint64{0x10, 0x20, 0x40, 0x50} {
		if _, ok := s.LookupU(pc); !ok {
			t.Errorf("entry %#x lost", pc)
		}
	}
}

func TestPlainLRUEvictionWhenDisabled(t *testing.T) {
	s := MustNewSBB(SBBConfig{
		UEntries: 4, UWays: 4, REntries: 4, RWays: 4,
		TagBits: 10, RetiredFirstEviction: false,
	})
	pcs := []uint64{0x10, 0x20, 0x30, 0x40}
	for _, pc := range pcs {
		s.Insert(ShadowBranch{PC: pc, Class: isa.ClassDirectUncond, Target: 1, Len: 2}, false)
	}
	s.MarkRetired(0x10, isa.ClassDirectUncond)
	// 0x10 is LRU; with retired-first off it is evicted despite being
	// retired.
	s.Insert(ShadowBranch{PC: 0x50, Class: isa.ClassDirectUncond, Target: 1, Len: 2}, false)
	if _, ok := s.LookupU(0x10); ok {
		t.Error("LRU entry survived with retired-first disabled")
	}
}

func TestFilterBTBResident(t *testing.T) {
	cfg := DefaultSBBConfig()
	cfg.FilterBTBResident = true
	s := MustNewSBB(cfg)
	s.Insert(ShadowBranch{PC: 0x99, Class: isa.ClassDirectUncond, Target: 1, Len: 2}, true)
	if _, ok := s.LookupU(0x99); ok {
		t.Error("BTB-resident branch inserted despite filter")
	}
	if s.Stats().FilteredBTBResident != 1 {
		t.Errorf("filter stat = %d", s.Stats().FilteredBTBResident)
	}
	// Without the filter flag, residency is ignored.
	s2 := tinySBB()
	s2.Insert(ShadowBranch{PC: 0x99, Class: isa.ClassDirectUncond, Target: 1, Len: 2}, true)
	if _, ok := s2.LookupU(0x99); !ok {
		t.Error("insert skipped without filter enabled")
	}
}

func TestInvalidate(t *testing.T) {
	s := tinySBB()
	s.Insert(ShadowBranch{PC: 0x123, Class: isa.ClassDirectUncond, Target: 1, Len: 2}, false)
	s.Insert(ShadowBranch{PC: 0x456, Class: isa.ClassReturn, Len: 1}, false)
	s.Invalidate(0x123)
	s.Invalidate(0x456)
	if _, ok := s.LookupU(0x123); ok {
		t.Error("U entry survived invalidate")
	}
	if s.LookupR(0x456) {
		t.Error("R entry survived invalidate")
	}
	if s.Stats().Invalidated != 2 {
		t.Errorf("invalidated = %d", s.Stats().Invalidated)
	}
	s.Invalidate(0xFFFF) // absent: no panic
}

func TestMarkRetiredReturn(t *testing.T) {
	s := tinySBB()
	s.Insert(ShadowBranch{PC: 0x2031, Class: isa.ClassReturn, Len: 1}, false)
	s.MarkRetired(0x2031, isa.ClassReturn)
	if s.Stats().RetiredMarks != 1 {
		t.Errorf("retired marks = %d", s.Stats().RetiredMarks)
	}
	// Re-marking is idempotent.
	s.MarkRetired(0x2031, isa.ClassReturn)
	if s.Stats().RetiredMarks != 1 {
		t.Error("re-mark counted twice")
	}
	// Marking an absent pc is a no-op.
	s.MarkRetired(0x9999, isa.ClassReturn)
}

func TestUOnlyAndROnlyConfigs(t *testing.T) {
	// Sensitivity sweeps use degenerate configurations with one buffer
	// empty (Figure 17 endpoints).
	uOnly := MustNewSBB(SBBConfig{UEntries: 8, UWays: 4, REntries: 0, RWays: 4, TagBits: 10})
	uOnly.Insert(ShadowBranch{PC: 0x11, Class: isa.ClassReturn, Len: 1}, false)
	if uOnly.LookupR(0x11) {
		t.Error("R lookup hit with zero R entries")
	}
	uOnly.Insert(ShadowBranch{PC: 0x12, Class: isa.ClassDirectUncond, Target: 1, Len: 2}, false)
	if _, ok := uOnly.LookupU(0x12); !ok {
		t.Error("U half broken in U-only config")
	}

	rOnly := MustNewSBB(SBBConfig{UEntries: 0, UWays: 4, REntries: 8, RWays: 4, TagBits: 10})
	rOnly.Insert(ShadowBranch{PC: 0x21, Class: isa.ClassDirectUncond, Target: 1, Len: 2}, false)
	if _, ok := rOnly.LookupU(0x21); ok {
		t.Error("U lookup hit with zero U entries")
	}
	rOnly.Insert(ShadowBranch{PC: 0x22, Class: isa.ClassReturn, Len: 1}, false)
	if !rOnly.LookupR(0x22) {
		t.Error("R half broken in R-only config")
	}
	rOnly.MarkRetired(0x21, isa.ClassDirectUncond) // no panic on empty U
	uOnly.MarkRetired(0x11, isa.ClassReturn)       // no panic on empty R
	rOnly.Invalidate(0x21)
	uOnly.Invalidate(0x11)
}

func TestNonPowerOfTwoSets(t *testing.T) {
	// The paper's R-SBB has 2024 entries = 506 sets; verify modulo
	// indexing round-trips across a spread of addresses.
	s := MustNewSBB(SBBConfig{UEntries: 768, UWays: 4, REntries: 2024, RWays: 4, TagBits: 10})
	for i := uint64(0); i < 300; i++ {
		pc := 0x40_0000 + i*64 + (i % 60)
		s.Insert(ShadowBranch{PC: pc, Class: isa.ClassReturn, Len: 1}, false)
		if !s.LookupR(pc) {
			t.Fatalf("R entry %#x lost immediately", pc)
		}
	}
}

func TestResetStatsSBB(t *testing.T) {
	s := tinySBB()
	s.Insert(ShadowBranch{PC: 1, Class: isa.ClassReturn, Len: 1}, false)
	s.LookupR(1)
	s.ResetStats()
	if s.Stats() != (SBBStats{}) {
		t.Error("stats not reset")
	}
	if !s.LookupR(1) {
		t.Error("contents lost on stats reset")
	}
}

// TestSBBStatsConservation drives both buffers past capacity and checks
// the counter identities the conserve analyzer expects every exported
// counter to participate in: each lookup is exactly one hit or miss,
// and a buffer never evicts more entries than were inserted.
func TestSBBStatsConservation(t *testing.T) {
	s := tinySBB()
	const n = 64 // 4x both buffers' capacity: evictions are guaranteed
	for i := 0; i < n; i++ {
		pc := uint64(0x1000 + i*64)
		s.Insert(ShadowBranch{PC: pc, Class: isa.ClassDirectUncond, Target: pc + 0x100, Len: 2}, false)
		s.Insert(ShadowBranch{PC: pc + 7, Class: isa.ClassReturn, Len: 1}, false)
	}
	const lookups = 2 * n
	for i := 0; i < lookups; i++ {
		pc := uint64(0x1000 + i*32)
		s.LookupU(pc)
		s.LookupR(pc + 7)
	}
	st := s.Stats()
	if st.UInserts != n || st.RInserts != n {
		t.Fatalf("inserts U=%d R=%d, want %d each", st.UInserts, st.RInserts, n)
	}
	if st.UHits+st.UMisses != lookups {
		t.Errorf("U lookups not conserved: %d hits + %d misses != %d", st.UHits, st.UMisses, lookups)
	}
	if st.RHits+st.RMisses != lookups {
		t.Errorf("R lookups not conserved: %d hits + %d misses != %d", st.RHits, st.RMisses, lookups)
	}
	if st.UEvictions == 0 || st.UEvictions > st.UInserts {
		t.Errorf("U evictions %d outside (0, %d]", st.UEvictions, st.UInserts)
	}
	if st.REvictions == 0 || st.REvictions > st.RInserts {
		t.Errorf("R evictions %d outside (0, %d]", st.REvictions, st.RInserts)
	}
}
