package core

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestInvariantSymbolPresence proves the build-tag pair at the linker
// level: a binary built with -tags skiainvariants contains the
// noinline checker symbol, and a default build does not (the stub is
// inlined away and the linker drops it), so default builds are
// assertion-free by construction, not by convention.
func TestInvariantSymbolPresence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds probe binaries")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		tags string
		want bool
	}{
		{"", false},
		{"skiainvariants", true},
	} {
		bin := filepath.Join(t.TempDir(), "probe")
		args := []string{"build", "-o", bin}
		if tc.tags != "" {
			args = append(args, "-tags", tc.tags)
		}
		args = append(args, "./cmd/skiasim")
		cmd := exec.Command("go", args...)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, out)
		}
		nm := exec.Command("go", "tool", "nm", bin)
		out, err := nm.CombinedOutput()
		if err != nil {
			t.Fatalf("go tool nm: %v\n%s", err, out)
		}
		has := strings.Contains(string(out), "sbbCheckInvariants")
		if has != tc.want {
			t.Errorf("tags=%q: sbbCheckInvariants symbol present = %v, want %v", tc.tags, has, tc.want)
		}
	}
}
