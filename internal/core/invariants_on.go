//go:build skiainvariants

package core

import "fmt"

// invariantsEnabled reports that this build compiled in the cheap
// runtime assertions gated by the skiainvariants build tag. CI runs
// the test suite and a reduced figure sweep with the tag on; default
// builds compile the checks out entirely (the checker symbols are
// absent from the linked binary, see TestInvariantSymbolPresence).
const invariantsEnabled = true

// sbbCheckInvariants panics if the buffer's geometry or occupancy
// drifted from its configuration: every set must hold exactly the
// configured way count, and the valid-entry population can never
// exceed the configured capacity. Marked noinline so the tagged build
// carries a findable symbol proving the assertions are present.
//
//go:noinline
func sbbCheckInvariants(s *SBB) {
	valid := 0
	for i := range s.uSets {
		if len(s.uSets[i]) != s.cfg.UWays {
			panic(fmt.Sprintf("skiainvariants: U-SBB set %d has %d ways, configured %d", i, len(s.uSets[i]), s.cfg.UWays))
		}
		for j := range s.uSets[i] {
			if s.uSets[i][j].valid {
				valid++
			}
		}
	}
	if valid > s.cfg.UEntries {
		panic(fmt.Sprintf("skiainvariants: U-SBB holds %d valid entries, capacity %d", valid, s.cfg.UEntries))
	}
	valid = 0
	for i := range s.rSets {
		if len(s.rSets[i]) != s.cfg.RWays {
			panic(fmt.Sprintf("skiainvariants: R-SBB set %d has %d ways, configured %d", i, len(s.rSets[i]), s.cfg.RWays))
		}
		for j := range s.rSets[i] {
			if s.rSets[i][j].valid {
				valid++
			}
		}
	}
	if valid > s.cfg.REntries {
		panic(fmt.Sprintf("skiainvariants: R-SBB holds %d valid entries, capacity %d", valid, s.cfg.REntries))
	}
}

// decodeCacheCheckInvariants panics if the memo grew past its
// configured line bound — the unbounded-map leak class the eviction
// path exists to prevent — or if the FIFO eviction queue lost track of
// a live line (which would make evictOne silently under-evict) or grew
// past its compaction bound.
//
//go:noinline
func decodeCacheCheckInvariants(c *DecodeCache) {
	if len(c.lines) > c.maxLines {
		panic(fmt.Sprintf("skiainvariants: decode cache holds %d lines, bound %d", len(c.lines), c.maxLines))
	}
	if len(c.order) >= 2*c.maxLines {
		panic(fmt.Sprintf("skiainvariants: decode cache eviction queue holds %d entries, compaction bound %d", len(c.order), 2*c.maxLines))
	}
	queued := make(map[uint64]bool, len(c.order))
	for _, addr := range c.order {
		queued[addr] = true
	}
	for addr := range c.lines {
		if !queued[addr] {
			panic(fmt.Sprintf("skiainvariants: cached line %#x missing from the eviction queue", addr))
		}
	}
}
