// The decoded-line cache: memoizes Shadow Branch Decoder results for
// hot L1-I lines. The paper keeps the SBD off the processor's critical
// path because length-decoding a line is expensive and redundant for
// resident lines (Section 3.2); the simulator pays that cost in
// software every time a line re-enters the FTQ. Program images are
// immutable after linking, so a (lineAddr, offset) pair always decodes
// to the same branches — memoizing the result is purely a simulator
// throughput optimization and must be invisible to every statistic.
//
// To stay invisible, each entry stores not just the extracted branches
// but the full observable side effect of the decode: the SBDStats
// deltas (region counted, discarded/no-valid-path flags, branch count)
// and the path-family count reported through the OnHeadPaths hook. A
// cache hit replays all of them, so a run with the cache enabled is
// bit-identical — report JSON included — to a run without it. The
// differential mode re-decodes on every hit and counts mismatches,
// which the property and differential tests pin to zero.
package core

// regionKind distinguishes head from tail entries under one key space.
type regionKind uint8

const (
	regionHead regionKind = iota
	regionTail
)

// DecodeCacheStats counts cache events for observability and tests.
type DecodeCacheStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64 // lines dropped by InvalidateLine
	Evictions     uint64 // lines dropped by the capacity bound
	Mismatches    uint64 // differential-mode disagreements (must stay 0)
}

// cachedDecode is one memoized head or tail decode.
type cachedDecode struct {
	off       int32
	kind      regionKind
	noValid   bool // head outcome: zero valid paths
	discarded bool // head outcome: over the MaxValidPaths cap
	nFamilies int32
	branches  []ShadowBranch
}

// lineDecodes holds every memoized decode of one cache line. A line is
// entered from only a handful of distinct offsets (its basic-block
// entry points and post-branch tail starts), so a small linear list
// beats a nested map.
type lineDecodes struct {
	entries []cachedDecode
}

// DecodeCache memoizes SBD head/tail decodes keyed by
// (lineAddr, offset). It is not safe for concurrent use; each simulated
// core owns its own instance (mirroring how each core owns its SBD).
type DecodeCache struct {
	lines        map[uint64]*lineDecodes
	maxLines     int
	differential bool
	stats        DecodeCacheStats

	// order records line addresses in insertion order so capacity
	// evictions pick the oldest line deterministically. Map iteration
	// would be cheaper but differs between a core and its clone, and a
	// diverging victim choice shifts the hit/miss/eviction counters the
	// checkpointing contract pins. Invalidated lines leave stale
	// addresses behind; evictOne skips them lazily and compactOrder
	// bounds the backlog.
	order []uint64

	// diffScratch is reused by the differential re-decode so the
	// checking path does not distort the allocation profile it guards.
	//skia:shared-ok transient scratch: fully overwritten before every use, never read across calls
	diffScratch []ShadowBranch

	// freeLines and freeBranches recycle dropped lines' storage:
	// steady-state simulation continuously invalidates (L1-I evictions)
	// and re-records hot lines, and without reuse that churn allocates
	// on the critical path the cache exists to speed up.
	//skia:shared-ok allocation-recycling free list: a clone starting empty allocates on its first invalidations, decode results are identical
	freeLines []*lineDecodes
	//skia:shared-ok allocation-recycling free list: a clone starting empty allocates on its first invalidations, decode results are identical
	freeBranches [][]ShadowBranch
}

// DefaultDecodeCacheLines bounds the cache to comfortably cover an
// L1-I's worth of lines (512 × 64 B = 32 KiB) plus prefetched lines in
// flight, while keeping worst-case footprint small.
const DefaultDecodeCacheLines = 1024

// NewDecodeCache builds a cache bounded to maxLines distinct line
// addresses (0 = DefaultDecodeCacheLines). With differential set, every
// hit re-runs the fresh decode and records disagreements in
// Stats().Mismatches instead of trusting the memo.
func NewDecodeCache(maxLines int, differential bool) *DecodeCache {
	if maxLines <= 0 {
		maxLines = DefaultDecodeCacheLines
	}
	return &DecodeCache{
		lines:        make(map[uint64]*lineDecodes, maxLines),
		maxLines:     maxLines,
		differential: differential,
	}
}

// Clone returns an independent deep copy of the cache: same memoized
// decodes and statistics. The free pools are not carried over (they are
// allocation-recycling scratch, not simulator state), so a clone's
// first few invalidations allocate; steady-state behavior and all
// decode results are identical.
func (c *DecodeCache) Clone() *DecodeCache {
	n := &DecodeCache{
		lines:        make(map[uint64]*lineDecodes, len(c.lines)),
		maxLines:     c.maxLines,
		differential: c.differential,
		stats:        c.stats,
		order:        append([]uint64(nil), c.order...),
	}
	for addr, ld := range c.lines {
		nl := &lineDecodes{entries: make([]cachedDecode, len(ld.entries))}
		copy(nl.entries, ld.entries)
		for i := range nl.entries {
			if b := nl.entries[i].branches; b != nil {
				nb := make([]ShadowBranch, len(b))
				copy(nb, b)
				nl.entries[i].branches = nb
			}
		}
		n.lines[addr] = nl
	}
	return n
}

// Stats returns accumulated cache counters.
func (c *DecodeCache) Stats() DecodeCacheStats { return c.stats }

// lookup finds the memoized decode for (lineAddr, off, kind).
//skia:noalloc
func (c *DecodeCache) lookup(lineAddr uint64, off int, kind regionKind) (*cachedDecode, bool) {
	ld := c.lines[lineAddr]
	if ld != nil {
		for i := range ld.entries {
			e := &ld.entries[i]
			if e.off == int32(off) && e.kind == kind {
				c.stats.Hits++
				return e, true
			}
		}
	}
	c.stats.Misses++
	return nil, false
}

// record memoizes a fresh decode's branches and replay metadata. The
// branch slice is copied: callers hand in a view of their scratch
// buffer.
func (c *DecodeCache) record(lineAddr uint64, off int, kind regionKind, branches []ShadowBranch, nFamilies int, noValid, discarded bool) {
	ld := c.lines[lineAddr]
	if ld == nil {
		if len(c.lines) >= c.maxLines {
			c.evictOne()
		}
		if n := len(c.freeLines); n > 0 {
			ld = c.freeLines[n-1]
			c.freeLines = c.freeLines[:n-1]
		} else {
			ld = &lineDecodes{}
		}
		c.lines[lineAddr] = ld
		c.order = append(c.order, lineAddr)
		if len(c.order) >= 2*c.maxLines {
			c.compactOrder()
		}
	}
	e := cachedDecode{
		off:       int32(off),
		kind:      kind,
		noValid:   noValid,
		discarded: discarded,
		nFamilies: int32(nFamilies),
	}
	if len(branches) > 0 {
		var buf []ShadowBranch
		if n := len(c.freeBranches); n > 0 {
			buf = c.freeBranches[n-1][:0]
			c.freeBranches = c.freeBranches[:n-1]
		}
		e.branches = append(buf, branches...)
	}
	ld.entries = append(ld.entries, e)
	if invariantsEnabled {
		decodeCacheCheckInvariants(c)
	}
}

// release returns a dropped line's storage to the free lists.
func (c *DecodeCache) release(ld *lineDecodes) {
	for i := range ld.entries {
		if b := ld.entries[i].branches; cap(b) > 0 {
			c.freeBranches = append(c.freeBranches, b[:0])
		}
		ld.entries[i] = cachedDecode{}
	}
	ld.entries = ld.entries[:0]
	c.freeLines = append(c.freeLines, ld)
}

// evictOne drops the oldest cached line (FIFO by first insertion) to
// respect the capacity bound. The victim choice must be deterministic:
// an earlier version ranged over the map, and because iteration order
// is per-map-instance, a clone and its original under eviction pressure
// picked different victims and their hit/miss/eviction counters drifted
// apart — caught by the tiny-dcache clone tests.
func (c *DecodeCache) evictOne() {
	for len(c.order) > 0 {
		addr := c.order[0]
		c.order = c.order[1:]
		if ld, ok := c.lines[addr]; ok {
			delete(c.lines, addr)
			c.release(ld)
			c.stats.Evictions++
			return
		}
		// Stale entry: the line was invalidated (or is a duplicate of a
		// re-recorded address whose first copy was already consumed).
	}
}

// compactOrder drops stale order entries — addresses invalidated since
// insertion, and duplicate entries left by invalidate-then-re-record
// cycles (only the oldest copy of a live address is kept, preserving
// FIFO age). Called when the backlog reaches twice the line bound, so
// the queue stays O(maxLines) and the amortized cost per record is
// constant.
func (c *DecodeCache) compactOrder() {
	kept := c.order[:0]
	seen := make(map[uint64]bool, len(c.lines))
	for _, addr := range c.order {
		if _, live := c.lines[addr]; live && !seen[addr] {
			seen[addr] = true
			kept = append(kept, addr)
		}
	}
	c.order = kept
}

// InvalidateLine drops every memoized decode of one line. The front end
// wires this to the L1-I's eviction hook: a line leaving the L1-I is no
// longer hot, so its memo space is better spent elsewhere.
func (c *DecodeCache) InvalidateLine(lineAddr uint64) {
	if ld, ok := c.lines[lineAddr]; ok {
		delete(c.lines, lineAddr)
		c.release(ld)
		c.stats.Invalidations++
	}
}

// Len returns the number of distinct line addresses currently cached.
func (c *DecodeCache) Len() int { return len(c.lines) }

// checkHead re-runs a head decode fresh and compares it against the
// memoized entry, counting any disagreement.
func (c *DecodeCache) checkHead(d *SBD, e *cachedDecode, line []byte, lineAddr uint64, entryOff int) {
	c.diffScratch = c.diffScratch[:0]
	fresh, nFam, noValid, discarded := d.headCore(line, lineAddr, entryOff, c.diffScratch)
	c.diffScratch = fresh
	if nFam != int(e.nFamilies) || noValid != e.noValid || discarded != e.discarded ||
		!sameBranches(fresh, e.branches) {
		c.stats.Mismatches++
	}
}

// checkTail is checkHead for tail decodes.
func (c *DecodeCache) checkTail(d *SBD, e *cachedDecode, line []byte, lineAddr uint64, startOff int) {
	c.diffScratch = c.diffScratch[:0]
	fresh := d.tailCore(line, lineAddr, startOff, c.diffScratch)
	c.diffScratch = fresh
	if !sameBranches(fresh, e.branches) {
		c.stats.Mismatches++
	}
}

func sameBranches(a, b []ShadowBranch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
