package core

import (
	"math/rand"
	"testing"

	"repro/internal/program"
)

// randLine fills a line with a mix of plausible VLX bytes and noise so
// head decoding exercises valid, no-valid-path, and discarded regions.
func randLine(rng *rand.Rand) []byte {
	line := make([]byte, program.LineSize)
	rng.Read(line)
	// Seed stretches of decodable code so some paths validate: short
	// opcodes (nop, push/pop, ret) and rel8 jumps.
	common := []byte{0x90, 0x50, 0x58, 0xC3, 0xEB, 0x70, 0x40, 0xE9}
	for i := 0; i < len(line); i++ {
		if rng.Intn(2) == 0 {
			line[i] = common[rng.Intn(len(common))]
		}
	}
	return line
}

// TestDecodeCacheMatchesFreshDecodes is the property test: across
// randomized lines and offsets, a cached SBD must produce branch
// sequences, statistics, and OnHeadPaths observations identical to an
// uncached SBD — on the first (miss) and every repeated (hit) decode.
func TestDecodeCacheMatchesFreshDecodes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := DefaultSBDConfig()

	cached := NewSBD(cfg)
	cached.AttachCache(NewDecodeCache(0, false))
	fresh := NewSBD(cfg)

	var cachedFam, freshFam []int
	cached.OnHeadPaths = func(n int) { cachedFam = append(cachedFam, n) }
	fresh.OnHeadPaths = func(n int) { freshFam = append(freshFam, n) }

	for trial := 0; trial < 200; trial++ {
		line := randLine(rng)
		lineAddr := uint64(trial) * program.LineSize
		entryOff := 1 + rng.Intn(program.LineSize)
		startOff := rng.Intn(program.LineSize)

		// Decode each region three times: miss, hit, hit.
		for rep := 0; rep < 3; rep++ {
			gotH := cached.DecodeHead(line, lineAddr, entryOff, nil)
			wantH := fresh.DecodeHead(line, lineAddr, entryOff, nil)
			if !sameBranches(gotH, wantH) {
				t.Fatalf("trial %d rep %d: head mismatch: cached %v fresh %v", trial, rep, gotH, wantH)
			}
			gotT := cached.DecodeTail(line, lineAddr, startOff, nil)
			wantT := fresh.DecodeTail(line, lineAddr, startOff, nil)
			if !sameBranches(gotT, wantT) {
				t.Fatalf("trial %d rep %d: tail mismatch: cached %v fresh %v", trial, rep, gotT, wantT)
			}
		}
		if cached.Stats() != fresh.Stats() {
			t.Fatalf("trial %d: stats diverged: cached %+v fresh %+v", trial, cached.Stats(), fresh.Stats())
		}
	}
	if len(cachedFam) != len(freshFam) {
		t.Fatalf("OnHeadPaths call counts differ: %d vs %d", len(cachedFam), len(freshFam))
	}
	for i := range cachedFam {
		if cachedFam[i] != freshFam[i] {
			t.Fatalf("OnHeadPaths observation %d differs: %d vs %d", i, cachedFam[i], freshFam[i])
		}
	}
	cs := cached.cache.Stats()
	if cs.Hits == 0 || cs.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", cs)
	}
}

// TestDecodeCacheDifferentialMode pins the differential checker at zero
// mismatches over randomized repeated decodes.
func TestDecodeCacheDifferentialMode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewSBD(DefaultSBDConfig())
	dc := NewDecodeCache(0, true)
	d.AttachCache(dc)

	for trial := 0; trial < 100; trial++ {
		line := randLine(rng)
		lineAddr := uint64(trial) * program.LineSize
		entryOff := 1 + rng.Intn(program.LineSize)
		for rep := 0; rep < 2; rep++ {
			d.DecodeHead(line, lineAddr, entryOff, nil)
			d.DecodeTail(line, lineAddr, entryOff-1, nil)
		}
	}
	cs := dc.Stats()
	if cs.Hits == 0 {
		t.Fatal("differential mode never hit the cache")
	}
	if cs.Mismatches != 0 {
		t.Fatalf("differential mode found %d mismatches", cs.Mismatches)
	}
}

// TestDecodeCacheInvalidateAndBound checks InvalidateLine drops a
// line's memos and the capacity bound holds under pressure.
func TestDecodeCacheInvalidateAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewSBD(DefaultSBDConfig())
	dc := NewDecodeCache(16, false)
	d.AttachCache(dc)

	line := randLine(rng)
	for i := 0; i < 100; i++ {
		d.DecodeHead(line, uint64(i)*program.LineSize, 8, nil)
	}
	if dc.Len() > 16 {
		t.Fatalf("cache exceeded bound: %d lines > 16", dc.Len())
	}
	if dc.Stats().Evictions == 0 {
		t.Fatal("expected capacity evictions")
	}

	d.DecodeHead(line, 0, 8, nil) // ensure line 0 is present
	before := dc.Stats().Hits
	d.DecodeHead(line, 0, 8, nil)
	if dc.Stats().Hits != before+1 {
		t.Fatal("expected a hit before invalidation")
	}
	dc.InvalidateLine(0)
	missBefore := dc.Stats().Misses
	d.DecodeHead(line, 0, 8, nil)
	if dc.Stats().Misses != missBefore+1 {
		t.Fatal("expected a miss after InvalidateLine")
	}
	if dc.Stats().Invalidations == 0 {
		t.Fatal("invalidation not counted")
	}
}
