package core

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

// TestSBDNeverPanicsOnRandomLines: property — both decoders accept
// arbitrary byte content and arbitrary offsets without panicking, and
// every extracted branch lies inside its shadow region.
func TestSBDNeverPanicsOnRandomLines(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := newTestSBD()
	line := make([]byte, program.LineSize)
	for trial := 0; trial < 5000; trial++ {
		rng.Read(line)
		base := uint64(rng.Intn(1<<30)) &^ 63

		entry := rng.Intn(program.LineSize + 1)
		for _, sb := range d.DecodeHead(line, base, entry, nil) {
			off := int(sb.PC - base)
			if off < 0 || off >= entry {
				t.Fatalf("head branch at +%d outside region [0,%d)", off, entry)
			}
			if !sb.Class.IsShadowEligible() {
				t.Fatalf("ineligible class %v extracted", sb.Class)
			}
		}

		start := rng.Intn(program.LineSize)
		for _, sb := range d.DecodeTail(line, base, start, nil) {
			off := int(sb.PC - base)
			if off < start || off >= program.LineSize {
				t.Fatalf("tail branch at +%d outside region [%d,64)", off, start)
			}
			if off+int(sb.Len) > program.LineSize {
				t.Fatalf("tail branch at +%d len %d crosses the line end", off, sb.Len)
			}
		}
	}
}

// TestCorroboratedSubsetOfRaw: property — enabling corroboration can
// only remove head branches, never add or alter them.
func TestCorroboratedSubsetOfRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	strict := newTestSBD()
	raw := newRawSBD()
	line := make([]byte, program.LineSize)
	for trial := 0; trial < 3000; trial++ {
		rng.Read(line)
		entry := 1 + rng.Intn(program.LineSize-1)
		s := strict.DecodeHead(line, 0, entry, nil)
		r := raw.DecodeHead(line, 0, entry, nil)
		if len(s) > len(r) {
			t.Fatalf("corroboration added branches: %d > %d", len(s), len(r))
		}
		inRaw := map[uint64]ShadowBranch{}
		for _, sb := range r {
			inRaw[sb.PC] = sb
		}
		for _, sb := range s {
			if got, ok := inRaw[sb.PC]; !ok || got != sb {
				t.Fatalf("corroborated branch %+v not in raw set", sb)
			}
		}
	}
}

// TestTailDecodeFindsAllBranchesOnTrueChain: property — when the tail
// region begins at a true instruction boundary of a synthesized stream,
// the tail decoder finds exactly the shadow-eligible branches on that
// stream (its start is certain, so there is no ambiguity).
func TestTailDecodeFindsAllBranchesOnTrueChain(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := newTestSBD()
	for trial := 0; trial < 2000; trial++ {
		var a isa.Asm
		type placed struct {
			off   int
			class isa.Class
		}
		var want []placed
		for a.Len() < program.LineSize {
			switch rng.Intn(8) {
			case 0:
				want = append(want, placed{a.Len(), isa.ClassReturn})
				a.Ret()
			case 1:
				want = append(want, placed{a.Len(), isa.ClassCall})
				a.CallRel32(rng.Int31())
			case 2:
				want = append(want, placed{a.Len(), isa.ClassDirectUncond})
				a.JmpRel8(int8(rng.Intn(100)))
			case 3:
				a.JccRel8(uint8(rng.Intn(16)), 5) // not shadow-eligible
			case 4:
				a.MovImm32(uint8(rng.Intn(8)), rng.Int31())
			case 5:
				a.ALUReg(rng.Intn(5), uint8(rng.Intn(8)), uint8(rng.Intn(8)))
			case 6:
				a.Push(uint8(rng.Intn(8)))
			default:
				a.Nop(1 + rng.Intn(3))
			}
		}
		line := a.Bytes()[:program.LineSize]
		got := d.DecodeTail(line, 0, 0, nil)
		// Branches whose encoding crosses the line end are excluded by
		// the decoder; the last recorded want may be one of those, and
		// decode stops there. Compare against the prefix that fits.
		var fit []placed
		for _, w := range want {
			if w.off+int(isa.LengthAt(line, w.off)) <= program.LineSize &&
				isa.LengthAt(line, w.off) != 0 {
				fit = append(fit, w)
			} else {
				break
			}
		}
		if len(got) != len(fit) {
			t.Fatalf("trial %d: found %d branches, want %d", trial, len(got), len(fit))
		}
		for i := range got {
			if int(got[i].PC) != fit[i].off || got[i].Class != fit[i].class {
				t.Fatalf("trial %d: branch %d = %+v, want off %d class %v",
					trial, i, got[i], fit[i].off, fit[i].class)
			}
		}
	}
}

// TestHeadDecodeTrueBoundaryRegionAlwaysValidates: property — a head
// region consisting of whole true instructions always has at least one
// valid path (the true chain) and is never reported as no-valid-path.
func TestHeadDecodeTrueBoundaryRegionAlwaysValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 2000; trial++ {
		var a isa.Asm
		for a.Len() < 40 {
			switch rng.Intn(5) {
			case 0:
				a.Ret()
			case 1:
				a.CallRel32(rng.Int31())
			case 2:
				a.MovImm32(uint8(rng.Intn(8)), rng.Int31())
			case 3:
				a.ALUImm8(uint8(rng.Intn(8)), int8(rng.Intn(100)))
			default:
				a.Nop(1 + rng.Intn(4))
			}
		}
		entry := a.Len()
		for a.Len() < program.LineSize {
			a.Nop(1)
		}
		d := newTestSBD()
		d.DecodeHead(a.Bytes()[:program.LineSize], 0, entry, nil)
		s := d.Stats()
		if s.HeadNoValidPath != 0 {
			t.Fatalf("trial %d: true-boundary region reported no valid path", trial)
		}
	}
}

// TestSBBInsertLookupRoundTrip: property — any eligible branch inserted
// into a large-enough SBB is immediately findable with the right class
// routing.
func TestSBBInsertLookupRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	s := MustNewSBB(DefaultSBBConfig())
	classes := []isa.Class{isa.ClassDirectUncond, isa.ClassCall, isa.ClassReturn}
	for trial := 0; trial < 3000; trial++ {
		sb := ShadowBranch{
			PC:     uint64(rng.Intn(1 << 22)),
			Class:  classes[rng.Intn(len(classes))],
			Target: uint64(rng.Intn(1 << 22)),
			Len:    uint8(1 + rng.Intn(14)),
		}
		s.Insert(sb, false)
		switch sb.Class {
		case isa.ClassReturn:
			if !s.LookupR(sb.PC) {
				t.Fatalf("return at %#x lost immediately", sb.PC)
			}
		default:
			e, ok := s.LookupU(sb.PC)
			if !ok {
				t.Fatalf("branch at %#x lost immediately", sb.PC)
			}
			if e.Target != sb.Target || e.IsCall != (sb.Class == isa.ClassCall) {
				t.Fatalf("payload mangled: %+v vs %+v", e, sb)
			}
		}
	}
}
