package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

// lineWith builds a 64-byte line from an assembler function, padding the
// remainder with single-byte NOPs, and returns the bytes.
func lineWith(emit func(a *isa.Asm)) []byte {
	var a isa.Asm
	emit(&a)
	for a.Len() < program.LineSize {
		a.Nop(1)
	}
	return a.Bytes()[:program.LineSize]
}

func newTestSBD() *SBD { return NewSBD(DefaultSBDConfig()) }

// newRawSBD disables corroboration so tests can observe the raw path
// mechanics, including uncorroborated first instructions and bogus
// prefix decodes.
func newRawSBD() *SBD {
	cfg := DefaultSBDConfig()
	cfg.RequireCorroboration = false
	return NewSBD(cfg)
}

func TestTailDecodeFindsBranches(t *testing.T) {
	// Layout: [8 bytes executed block ending in taken jmp][shadow tail:
	// call, ret, jmp].
	var callOff, retOff, jmpOff int
	line := lineWith(func(a *isa.Asm) {
		a.Nop(3)
		a.JmpRel32(100) // the exiting branch: ends at offset 8
		callOff = a.Len()
		a.CallRel32(0x40)
		retOff = a.Len()
		a.Ret()
		a.Nop(2)
		jmpOff = a.Len()
		a.JmpRel8(16)
	})
	d := newTestSBD()
	const base = 0x10000
	got := d.DecodeTail(line, base, 8, nil)
	if len(got) != 3 {
		t.Fatalf("found %d shadow branches, want 3: %+v", len(got), got)
	}
	wantPCs := []uint64{base + uint64(callOff), base + uint64(retOff), base + uint64(jmpOff)}
	wantCls := []isa.Class{isa.ClassCall, isa.ClassReturn, isa.ClassDirectUncond}
	for i, sb := range got {
		if sb.PC != wantPCs[i] || sb.Class != wantCls[i] {
			t.Errorf("branch %d = {pc %#x, %v}, want {pc %#x, %v}", i, sb.PC, sb.Class, wantPCs[i], wantCls[i])
		}
	}
	// The call's target must be decodable from PC+len+offset.
	if want := wantPCs[0] + 5 + 0x40; got[0].Target != want {
		t.Errorf("call target %#x, want %#x", got[0].Target, want)
	}
	// Returns carry no target.
	if got[1].Target != 0 {
		t.Errorf("return target should be 0, got %#x", got[1].Target)
	}
	if d.Stats().TailRegions != 1 || d.Stats().TailBranches != 3 {
		t.Errorf("stats %+v", d.Stats())
	}
}

func TestTailDecodeStopsAtInvalidByte(t *testing.T) {
	line := lineWith(func(a *isa.Asm) { a.Nop(4) })
	line[4] = 0x06  // undefined opcode
	line[10] = 0xC3 // a ret beyond the garbage must NOT be found
	d := newTestSBD()
	got := d.DecodeTail(line, 0, 4, nil)
	if len(got) != 0 {
		t.Errorf("decoded past invalid byte: %+v", got)
	}
}

func TestTailDecodeIgnoresConditionals(t *testing.T) {
	line := lineWith(func(a *isa.Asm) {
		a.Nop(2)
		a.JccRel8(3, 10) // conditionals are not shadow-eligible
		a.Ret()
	})
	d := newTestSBD()
	got := d.DecodeTail(line, 0, 2, nil)
	if len(got) != 1 || got[0].Class != isa.ClassReturn {
		t.Errorf("got %+v, want just the return", got)
	}
}

func TestTailDisabled(t *testing.T) {
	cfg := DefaultSBDConfig()
	cfg.Tail = false
	d := NewSBD(cfg)
	line := lineWith(func(a *isa.Asm) { a.Ret() })
	if got := d.DecodeTail(line, 0, 0, nil); got != nil {
		t.Errorf("disabled tail decoder returned %+v", got)
	}
}

func TestTailBadOffsets(t *testing.T) {
	d := newTestSBD()
	line := lineWith(func(a *isa.Asm) { a.Nop(1) })
	if got := d.DecodeTail(line, 0, -1, nil); got != nil {
		t.Error("negative offset should decode nothing")
	}
	if got := d.DecodeTail(line, 0, 64, nil); got != nil {
		t.Error("offset at line end should decode nothing")
	}
}

func TestHeadDecodeSimple(t *testing.T) {
	// Head region [0,8): ret at 0, call at 1 (5 bytes), nop, nop; entry
	// at 8. The true chain 0→1→6→7→8 is the only valid path family.
	var line []byte
	line = lineWith(func(a *isa.Asm) {
		a.Ret()           // 0
		a.CallRel32(0x20) // 1..5
		a.Nop(2)          // 6,7 (one 2-byte nop)
		a.MovImm32(1, 9)  // entry block at 8
	})
	d := newRawSBD()
	got := d.DecodeHead(line, 0x2000, 8, nil)
	if len(got) != 2 {
		t.Fatalf("got %d branches, want ret+call: %+v", len(got), got)
	}
	if got[0].Class != isa.ClassReturn || got[0].PC != 0x2000 {
		t.Errorf("first = %+v", got[0])
	}
	if got[1].Class != isa.ClassCall || got[1].PC != 0x2001 {
		t.Errorf("second = %+v", got[1])
	}
}

func TestHeadDecodeZeroEntryOffset(t *testing.T) {
	d := newTestSBD()
	line := lineWith(func(a *isa.Asm) { a.Nop(4) })
	if got := d.DecodeHead(line, 0, 0, nil); got != nil {
		t.Errorf("no head region should decode nothing, got %+v", got)
	}
	if d.Stats().HeadRegions != 0 {
		t.Error("empty region counted")
	}
}

func TestHeadDecodeSuffixPathsAreOneFamily(t *testing.T) {
	// Ten 1-byte NOPs before the entry: every start index begins a
	// valid path, but all of them merge into the chain from byte 0, so
	// they count as ONE path family and the region is decoded, not
	// discarded. (Counting suffixes would discard every head region
	// containing more than six real instructions.)
	line := lineWith(func(a *isa.Asm) {
		for i := 0; i < 9; i++ {
			a.Nop(1)
		}
		a.Ret() // shadow return at offset 9
		a.MovImm32(1, 5)
	})
	d := newTestSBD()
	got := d.DecodeHead(line, 0, 10, nil)
	if len(got) != 1 || got[0].Class != isa.ClassReturn || got[0].PC != 9 {
		t.Errorf("got %+v, want the shadow return at 9", got)
	}
	if d.Stats().HeadDiscarded != 0 {
		t.Errorf("one-family region discarded: %+v", d.Stats())
	}
}

func TestHeadDecodePathCapDiscards(t *testing.T) {
	// Two disjoint path families:
	//   family A: ret@0 (1B) -> 4-byte prefixed nop@1 -> entry 5
	//   family B: 3-byte nop@2 -> entry 5
	// With MaxValidPaths=1 the region must be discarded; with the
	// default cap it decodes.
	line := make([]byte, program.LineSize)
	line[0] = 0xC3                                              // ret
	line[1], line[2], line[3], line[4] = 0x66, 0x0F, 0x1F, 0xC0 // 4-byte nop
	for i := 5; i < 64; i++ {
		line[i] = 0x90
	}
	// Confirm family B exists: bytes 2..4 decode as a 3-byte nop.
	if isa.LengthAt(line, 2) != 3 {
		t.Fatal("test construction broken: offset 2 should be a 3-byte nop")
	}

	cfg := DefaultSBDConfig()
	cfg.MaxValidPaths = 1
	d := NewSBD(cfg)
	if got := d.DecodeHead(line, 0, 5, nil); len(got) != 0 {
		t.Errorf("over-cap region decoded: %+v", got)
	}
	if d.Stats().HeadDiscarded != 1 {
		t.Errorf("stats %+v", d.Stats())
	}

	d2 := newRawSBD() // default cap 6: two families fit
	got := d2.DecodeHead(line, 0, 5, nil)
	if len(got) != 1 || got[0].Class != isa.ClassReturn {
		t.Errorf("default cap: got %+v, want the ret", got)
	}
}

func TestHeadDecodeNoValidPath(t *testing.T) {
	// An undecodable byte right before the entry point kills every
	// path that must land on the entry.
	line := lineWith(func(a *isa.Asm) { a.Nop(8) })
	line[0] = 0x06 // invalid
	line[1] = 0x06
	line[2] = 0x06
	d := newTestSBD()
	got := d.DecodeHead(line, 0, 3, nil)
	if len(got) != 0 {
		t.Errorf("got %+v", got)
	}
	if d.Stats().HeadNoValidPath != 1 {
		t.Errorf("stats %+v", d.Stats())
	}
}

// TestHeadDecodeAmbiguity reproduces the paper's Figure 8: a region with
// two valid decodings that merge, where the true shadow branch is
// found regardless.
func TestHeadDecodeAmbiguity(t *testing.T) {
	// Bytes: B0 C3 | E9 xx xx xx xx | entry at 7.
	// Path 0: movi8 (2 bytes) -> jmp rel32 (5 bytes) -> 7: valid.
	// Path 1: ret (1 byte) -> 2 -> jmp -> 7: valid (bogus ret at 1).
	line := make([]byte, program.LineSize)
	line[0] = 0xB0 // movi r0, imm8: consumes byte 1
	line[1] = 0xC3 // ...which aliases ret
	line[2] = 0xE9 // jmp rel32
	line[3], line[4], line[5], line[6] = 0x10, 0, 0, 0
	for i := 7; i < 64; i++ {
		line[i] = 0x90
	}
	d := newTestSBD()
	got := d.DecodeHead(line, 0x4000, 7, nil)
	// First-index policy starts at 0: finds only the jmp (the true
	// path), not the bogus ret.
	if len(got) != 1 || got[0].Class != isa.ClassDirectUncond || got[0].PC != 0x4002 {
		t.Fatalf("got %+v, want one jmp at 0x4002", got)
	}
	if want := uint64(0x4000 + 7 + 0x10); got[0].Target != want {
		t.Errorf("target %#x, want %#x", got[0].Target, want)
	}
}

func TestHeadDecodeBogusBranchPossible(t *testing.T) {
	// Construct a region where the first valid path is NOT the true
	// decode and contains a branch the true path does not: byte 0
	// starts a bogus chain that lands on the entry, while the true
	// code was something else entirely. True code: movi32 r1, imm
	// where the imm bytes spell "ret; jmp rel8 x" — decoding from
	// byte 1 (inside the immediate) yields bogus branches.
	line := make([]byte, program.LineSize)
	// True decode (never shown to the SBD): starts at some earlier
	// line; this line begins mid-instruction with leftover immediate
	// bytes: C3 EB 02 90 90 ... entry at 4.
	line[0] = 0xC3 // bogus ret
	line[1] = 0xEB // bogus jmp rel8
	line[2] = 0x02
	line[3] = 0x90
	for i := 4; i < 64; i++ {
		line[i] = 0x90
	}
	d := newRawSBD()
	got := d.DecodeHead(line, 0x8000, 4, nil)
	// Path 0: ret(1) -> jmp(2) -> nop(1) -> 4: valid. The decoder
	// cannot know these are immediate bytes; it reports both branches.
	if len(got) != 2 {
		t.Fatalf("got %+v, want bogus ret+jmp", got)
	}
	if got[0].Class != isa.ClassReturn || got[1].Class != isa.ClassDirectUncond {
		t.Errorf("classes = %v, %v", got[0].Class, got[1].Class)
	}
}

func TestHeadPolicies(t *testing.T) {
	// Region: byte 0 = bogus ret chain, byte 1 starts 2-byte movi8
	// chain; both land on entry at 3 via merge at... construct:
	// 0: C3 (ret, 1B) -> 1
	// 1: B0 xx (movi8, 2B) -> 3 = entry. Path0 = {0,1}, Path1 = {1}.
	// Both valid; merge index = 1.
	line := make([]byte, program.LineSize)
	line[0] = 0xC3
	line[1] = 0xB0
	line[2] = 0x00
	for i := 3; i < 64; i++ {
		line[i] = 0x90
	}

	run := func(pol IndexPolicy) []ShadowBranch {
		cfg := DefaultSBDConfig()
		cfg.Policy = pol
		cfg.RequireCorroboration = false
		return NewSBD(cfg).DecodeHead(line, 0, 3, nil)
	}

	// First: starts at 0, sees the ret.
	if got := run(FirstIndex); len(got) != 1 || got[0].Class != isa.ClassReturn {
		t.Errorf("first-index got %+v", got)
	}
	// Zero: byte 0's path is valid, so same as starting at zero.
	if got := run(ZeroIndex); len(got) != 1 || got[0].Class != isa.ClassReturn {
		t.Errorf("zero-index got %+v", got)
	}
	// Merge: starts at the merge point 1 (visited by both paths),
	// skipping the ret.
	if got := run(MergeIndex); len(got) != 0 {
		t.Errorf("merge-index got %+v, want none (movi is not a branch)", got)
	}
}

func TestZeroIndexFallsBack(t *testing.T) {
	// Byte 0 does not begin a valid path (invalid opcode), but byte 1
	// does; ZeroIndex must fall back to the first valid index.
	line := make([]byte, program.LineSize)
	line[0] = 0x06 // invalid
	line[1] = 0xC3 // ret -> 2 = entry
	for i := 2; i < 64; i++ {
		line[i] = 0x90
	}
	cfg := DefaultSBDConfig()
	cfg.Policy = ZeroIndex
	cfg.RequireCorroboration = false
	got := NewSBD(cfg).DecodeHead(line, 0, 2, nil)
	if len(got) != 1 || got[0].Class != isa.ClassReturn {
		t.Errorf("got %+v", got)
	}
}

func TestHeadDisabled(t *testing.T) {
	cfg := DefaultSBDConfig()
	cfg.Head = false
	d := NewSBD(cfg)
	line := lineWith(func(a *isa.Asm) { a.Ret(); a.Nop(8) })
	if got := d.DecodeHead(line, 0, 4, nil); got != nil {
		t.Errorf("disabled head decoder returned %+v", got)
	}
}

func TestAppendSemantics(t *testing.T) {
	// DecodeTail must append to the destination slice, not replace it.
	d := newTestSBD()
	line := lineWith(func(a *isa.Asm) { a.Nop(1); a.Ret() })
	dst := []ShadowBranch{{PC: 42}}
	dst = d.DecodeTail(line, 0, 1, dst)
	if len(dst) != 2 || dst[0].PC != 42 {
		t.Errorf("append semantics broken: %+v", dst)
	}
}

func TestResetStats(t *testing.T) {
	d := newTestSBD()
	line := lineWith(func(a *isa.Asm) { a.Ret() })
	d.DecodeTail(line, 0, 0, nil)
	d.ResetStats()
	if d.Stats() != (SBDStats{}) {
		t.Error("stats not reset")
	}
}

func TestIndexPolicyString(t *testing.T) {
	if FirstIndex.String() != "first" || ZeroIndex.String() != "zero" || MergeIndex.String() != "merge" {
		t.Error("policy names wrong")
	}
	if IndexPolicy(99).String() != "unknown" {
		t.Error("unknown policy name")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultSBDConfig()
	if !cfg.Head || !cfg.Tail {
		t.Error("both decoders should default on")
	}
	if cfg.MaxValidPaths != 6 {
		t.Errorf("path cap = %d, paper uses 6", cfg.MaxValidPaths)
	}
	if cfg.Policy != FirstIndex {
		t.Error("paper's winning policy is First Index")
	}
}

func BenchmarkHeadDecode(b *testing.B) {
	line := lineWith(func(a *isa.Asm) {
		a.Ret()
		a.CallRel32(0x20)
		a.Nop(2)
		a.MovImm32(1, 9)
	})
	d := newTestSBD()
	var dst []ShadowBranch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = d.DecodeHead(line, 0x2000, 8, dst[:0])
	}
}

func BenchmarkTailDecode(b *testing.B) {
	line := lineWith(func(a *isa.Asm) {
		a.Nop(3)
		a.JmpRel32(100)
		a.CallRel32(0x40)
		a.Ret()
		a.JmpRel8(16)
	})
	d := newTestSBD()
	var dst []ShadowBranch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = d.DecodeTail(line, 0x2000, 8, dst[:0])
	}
}

func TestCorroborationSuppressesBogusPrefix(t *testing.T) {
	// Region: a bogus ret at byte 0 (a mid-instruction residue byte)
	// that merges into the true chain at byte 1, where a real call
	// begins. With corroboration on, the uncorroborated bogus ret is
	// suppressed while the corroborated real call (its index lies on
	// both the byte-0 chain and its own chain) survives.
	line := make([]byte, program.LineSize)
	line[0] = 0xC3 // bogus ret (residue byte)
	line[1] = 0xE8 // true call rel32, 5 bytes -> entry at 6
	line[2], line[3], line[4], line[5] = 0x40, 0, 0, 0
	for i := 6; i < 64; i++ {
		line[i] = 0x90
	}
	d := newTestSBD() // corroboration on by default
	got := d.DecodeHead(line, 0x3000, 6, nil)
	if len(got) != 1 || got[0].Class != isa.ClassCall || got[0].PC != 0x3001 {
		t.Fatalf("got %+v, want only the corroborated call", got)
	}
	// Raw decode sees both.
	raw := newRawSBD().DecodeHead(line, 0x3000, 6, nil)
	if len(raw) != 2 {
		t.Fatalf("raw decode got %+v, want bogus ret + call", raw)
	}
}

func TestIncludeConditionalsExtension(t *testing.T) {
	line := lineWith(func(a *isa.Asm) {
		a.Nop(2)
		a.JmpRel32(64) // the exit at offsets 2..6
		a.JccRel8(4, 10)
		a.Ret()
	})
	// Paper mode: the conditional is skipped.
	got := newTestSBD().DecodeTail(line, 0, 7, nil)
	if len(got) != 1 || got[0].Class != isa.ClassReturn {
		t.Fatalf("paper mode got %+v", got)
	}
	// Extension mode: the conditional is extracted too, with its
	// PC-relative target resolved.
	cfg := DefaultSBDConfig()
	cfg.IncludeConditionals = true
	got = NewSBD(cfg).DecodeTail(line, 0, 7, nil)
	if len(got) != 2 || got[0].Class != isa.ClassDirectCond {
		t.Fatalf("extension mode got %+v", got)
	}
	if want := uint64(7 + 2 + 10); got[0].Target != want {
		t.Errorf("cond target %#x, want %#x", got[0].Target, want)
	}
}

func TestSBBRoutesCondToU(t *testing.T) {
	s := tinySBB()
	s.Insert(ShadowBranch{PC: 0x30, Class: isa.ClassDirectCond, Target: 0x99, Len: 2}, false)
	e, ok := s.LookupU(0x30)
	if !ok || !e.IsCond || e.IsCall {
		t.Errorf("cond entry = %+v, %v", e, ok)
	}
}
