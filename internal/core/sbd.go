// Package core implements the paper's contribution: Skia. It has two
// halves, matching Section 4:
//
//   - The Shadow Branch Decoder (SBD, this file): a minimal
//     boundary-only decoder that opportunistically decodes the unused
//     "shadow" bytes of instruction cache lines entering the FTQ — the
//     Head region before a basic block's entry point and the Tail
//     region after its exiting taken branch — and extracts the branches
//     whose targets need no runtime state: direct unconditional jumps,
//     direct calls, and returns.
//
//   - The Shadow Branch Buffer (SBB, sbb.go): a small structure probed
//     in parallel with the BTB that supplies targets for branches the
//     BTB has lost, letting FDIP keep running ahead instead of falling
//     through down the wrong path.
//
// Head decoding is ambiguous under a variable-length ISA: decoding
// backwards from a known entry point can yield several plausible
// instruction chains. The SBD resolves this with the paper's two-phase
// algorithm — Index Computation (length-decode every candidate start
// byte) and Path Validation (walk candidate chains, keep those that
// land exactly on the entry point) — with the paper's two throttles:
// lines with more than MaxValidPaths valid chains are discarded, and
// the start index is chosen by a configurable policy (First, the
// paper's winner; Zero; or Merge).
package core

import (
	"repro/internal/isa"
	"repro/internal/program"
)

// IndexPolicy selects which validated path the Head decoder follows
// (paper Section 3.2.2, "Valid Index").
type IndexPolicy int

const (
	// FirstIndex decodes from the lowest start byte that begins a valid
	// path — the paper's empirically best policy and the default.
	FirstIndex IndexPolicy = iota
	// ZeroIndex decodes from byte 0 whenever any valid path exists,
	// falling back to the first valid index when byte 0's path is
	// invalid.
	ZeroIndex
	// MergeIndex decodes from the deepest index shared by the most
	// valid paths (the merge point).
	MergeIndex
)

// String implements fmt.Stringer.
func (p IndexPolicy) String() string {
	switch p {
	case FirstIndex:
		return "first"
	case ZeroIndex:
		return "zero"
	case MergeIndex:
		return "merge"
	}
	return "unknown"
}

// SBDConfig parameterizes the Shadow Branch Decoder.
type SBDConfig struct {
	// Head and Tail enable the two orthogonal decoders (Section 3.4).
	Head, Tail bool
	// MaxValidPaths discards a Head region with more valid decode
	// chains than this (paper: 6).
	MaxValidPaths int
	// Policy picks the start index among validated paths.
	Policy IndexPolicy
	// RequireCorroboration extracts a Head shadow branch only when its
	// start index lies on at least two validated paths (every true
	// instruction boundary is itself a valid path start, so real
	// branches past the first instruction are always corroborated,
	// while bogus pre-merge prefix decodes almost never are). This
	// keeps the bogus-branch rate in the paper's reported regime
	// despite VLX's denser valid-encoding space.
	RequireCorroboration bool
	// Latency is the number of cycles between a line entering the FTQ
	// and its shadow branches becoming visible in the SBB; the decode
	// is off the critical path (Section 3.2, footnote 2).
	Latency int
	// IncludeConditionals is an extension beyond the paper: shadow
	// direct conditionals also enter the U-SBB (their targets are
	// PC-relative, so they too need no runtime state; the paper leaves
	// them out because a conditional additionally needs a direction
	// prediction at use time). Off by default.
	IncludeConditionals bool
}

// DefaultSBDConfig returns the paper's configuration: both decoders on,
// six-path cap, First-Index policy, multi-cycle off-critical-path
// latency.
func DefaultSBDConfig() SBDConfig {
	return SBDConfig{
		Head: true, Tail: true,
		MaxValidPaths:        6,
		Policy:               FirstIndex,
		Latency:              4,
		RequireCorroboration: true,
	}
}

// ShadowBranch is one branch extracted from a shadow region.
type ShadowBranch struct {
	// PC is the branch instruction address implied by the decoded path
	// (which may be wrong — a bogus branch — if the path was plausible
	// but not the true decode).
	PC uint64
	// Class is DirectUncond, Call, or Return.
	Class isa.Class
	// Target is the decoded target for DirectUncond and Call; zero for
	// returns (their target comes from the RAS).
	Target uint64
	// Len is the decoded instruction length, needed to compute the
	// fall-through (return address) of shadow calls.
	Len uint8
}

// SBDStats counts decoder events.
type SBDStats struct {
	HeadRegions     uint64 // head regions examined
	HeadDiscarded   uint64 // regions over the valid-path cap
	HeadNoValidPath uint64 // regions with zero valid paths
	HeadBranches    uint64 // branches extracted from heads
	TailRegions     uint64
	TailBranches    uint64
}

// SBD is the Shadow Branch Decoder.
type SBD struct {
	cfg   SBDConfig
	stats SBDStats

	// OnHeadPaths, when non-nil, observes the path-family count of each
	// examined Head region (0 when no valid path exists), before the
	// MaxValidPaths cap is applied. Feeds the attribution engine's
	// valid-paths-per-line distribution; nil costs one comparison per
	// region.
	OnHeadPaths func(families int)

	// cache, when non-nil, memoizes head/tail decode results per
	// (lineAddr, offset); see decodecache.go. The program image is
	// immutable after linking, so cached entries can only go stale
	// through capacity pressure, never through content change —
	// invalidation exists to bound memory, not for correctness.
	//skia:shared-ok Clone's contract: the owner clones the cache separately and re-attaches it (frontend.Clone does both)
	cache *DecodeCache

	// scratch buffers reused across calls to avoid allocation in the
	// simulator's hot loop.
	lengths [program.LineSize]int
	valid   [program.LineSize]bool
	visits  [program.LineSize]int
}

// Clone returns an independent deep copy of the decoder's config,
// statistics, and scratch state. The OnHeadPaths hook and the attached
// decode cache are NOT carried over: the hook is a closure over the
// original owner, and the cache must be cloned separately and
// re-attached so the copy does not share memo storage.
func (d *SBD) Clone() *SBD {
	n := &SBD{cfg: d.cfg, stats: d.stats}
	n.lengths = d.lengths
	n.valid = d.valid
	n.visits = d.visits
	return n
}

// AttachCache installs (or, with nil, removes) a decode cache. The
// cache memoizes DecodeHead/DecodeTail results so hot L1-I lines
// re-entering the FTQ skip re-length-decoding; replayed statistics are
// identical to what the fresh decode would have recorded.
func (d *SBD) AttachCache(c *DecodeCache) { d.cache = c }

// NewSBD builds a decoder from cfg.
func NewSBD(cfg SBDConfig) *SBD {
	if cfg.MaxValidPaths <= 0 {
		cfg.MaxValidPaths = 6
	}
	return &SBD{cfg: cfg}
}

// Config returns the decoder configuration.
func (d *SBD) Config() SBDConfig { return d.cfg }

// Stats returns accumulated decoder statistics.
func (d *SBD) Stats() SBDStats { return d.stats }

// ResetStats zeroes the statistics.
func (d *SBD) ResetStats() { d.stats = SBDStats{} }

// DecodeHead decodes the Head shadow region of a cache line: bytes
// [0, entryOff) where entryOff is the basic block's entry byte within
// the line (the branch target that brought the line into the FTQ). It
// appends extracted branches to dst and returns the result. A nil
// return with no error means the region was discarded or empty.
//skia:noalloc
func (d *SBD) DecodeHead(line []byte, lineAddr uint64, entryOff int, dst []ShadowBranch) []ShadowBranch {
	if !d.cfg.Head || entryOff <= 0 || entryOff > len(line) {
		return dst
	}
	if d.cache != nil {
		if e, ok := d.cache.lookup(lineAddr, entryOff, regionHead); ok {
			if d.cache.differential {
				d.cache.checkHead(d, e, line, lineAddr, entryOff)
			}
			d.stats.HeadRegions++
			if e.noValid {
				d.stats.HeadNoValidPath++
			}
			if e.discarded {
				d.stats.HeadDiscarded++
			}
			d.stats.HeadBranches += uint64(len(e.branches))
			if d.OnHeadPaths != nil {
				d.OnHeadPaths(int(e.nFamilies))
			}
			return append(dst, e.branches...)
		}
	}
	n0 := len(dst)
	dst, nFamilies, noValid, discarded := d.headCore(line, lineAddr, entryOff, dst)
	d.stats.HeadRegions++
	if noValid {
		d.stats.HeadNoValidPath++
	}
	if discarded {
		d.stats.HeadDiscarded++
	}
	d.stats.HeadBranches += uint64(len(dst) - n0)
	if d.OnHeadPaths != nil {
		d.OnHeadPaths(nFamilies)
	}
	if d.cache != nil {
		d.cache.record(lineAddr, entryOff, regionHead, dst[n0:], nFamilies, noValid, discarded)
	}
	return dst
}

// headCore is DecodeHead's side-effect-free body: it appends extracted
// branches to dst and reports the path-family count plus the two
// outcome flags, without touching d.stats or the OnHeadPaths hook. The
// split exists so the decode cache can replay exactly the statistics a
// fresh decode would have produced.
//skia:noalloc
func (d *SBD) headCore(line []byte, lineAddr uint64, entryOff int, dst []ShadowBranch) (out []ShadowBranch, nFam int, noValid, discarded bool) {
	// Phase 1 — Index Computation: the length of the instruction
	// starting at every byte offset in the region (0 = undecodable).
	// The decoder sees the whole line: an instruction may extend past
	// the entry point, but any path containing it cannot align and
	// dies in validation.
	for off := 0; off < entryOff; off++ {
		d.lengths[off] = isa.LengthAt(line, off)
	}

	// Phase 2 — Path Validation: a start index is valid when repeatedly
	// adding decoded lengths lands exactly on the entry offset. Paths
	// that begin on an index already covered by a previously validated
	// path are "merging paths" (paper Section 3.2.2): they introduce no
	// new decoding ambiguity, so only path *families* — maximal
	// non-merging chains — count toward the MaxValidPaths cap. (Every
	// suffix of a valid chain is itself valid, so counting suffixes
	// would discard precisely the regions with the most real code.)
	nFamilies := 0
	firstValid := -1
	for i := range d.visits[:entryOff] {
		d.visits[i] = 0
	}
	for start := 0; start < entryOff; start++ {
		ok := false
		p := start
		for p < entryOff {
			l := d.lengths[p]
			if l == 0 {
				break
			}
			p += l
			if p == entryOff {
				ok = true
				break
			}
		}
		d.valid[start] = ok
		if ok {
			if d.visits[start] == 0 {
				nFamilies++
			}
			if firstValid < 0 {
				firstValid = start
			}
			// Record every index visited by this valid path: merging
			// detection and the Merge policy both need the counts.
			p = start
			for p < entryOff {
				d.visits[p]++
				p += d.lengths[p]
			}
		}
	}
	if firstValid < 0 {
		return dst, nFamilies, true, false
	}
	if nFamilies > d.cfg.MaxValidPaths {
		return dst, nFamilies, false, true
	}

	start := firstValid
	switch d.cfg.Policy {
	case ZeroIndex:
		if d.valid[0] {
			start = 0
		}
	case MergeIndex:
		// The merge point: the deepest index visited by all valid
		// paths; pick the highest-visit-count index, breaking ties
		// toward the deepest.
		best, bestN := firstValid, 0
		for i := 0; i < entryOff; i++ {
			if d.valid[i] || d.visits[i] > 0 {
				if d.visits[i] >= bestN {
					best, bestN = i, d.visits[i]
				}
			}
		}
		start = best
	}

	// Walk the chosen path and extract supported branches.
	for p := start; p < entryOff; p += d.lengths[p] {
		if d.cfg.RequireCorroboration && d.visits[p] < 2 {
			continue
		}
		dst = d.extract(line, lineAddr, p, dst)
	}
	return dst, nFamilies, false, false
}

// DecodeTail decodes the Tail shadow region: bytes [startOff, lineEnd)
// following the taken branch that exits the line. The start byte is
// unambiguous (the exiting branch's end is known), so decoding is a
// single forward walk (Section 3.3). Decoding stops at an undecodable
// byte or an instruction crossing the line end.
//skia:noalloc
func (d *SBD) DecodeTail(line []byte, lineAddr uint64, startOff int, dst []ShadowBranch) []ShadowBranch {
	if !d.cfg.Tail || startOff < 0 || startOff >= len(line) {
		return dst
	}
	if d.cache != nil {
		if e, ok := d.cache.lookup(lineAddr, startOff, regionTail); ok {
			if d.cache.differential {
				d.cache.checkTail(d, e, line, lineAddr, startOff)
			}
			d.stats.TailRegions++
			d.stats.TailBranches += uint64(len(e.branches))
			return append(dst, e.branches...)
		}
	}
	n0 := len(dst)
	dst = d.tailCore(line, lineAddr, startOff, dst)
	d.stats.TailRegions++
	d.stats.TailBranches += uint64(len(dst) - n0)
	if d.cache != nil {
		d.cache.record(lineAddr, startOff, regionTail, dst[n0:], 0, false, false)
	}
	return dst
}

// tailCore is DecodeTail's side-effect-free body: a single forward walk
// appending extracted branches to dst, with no statistics updates.
//skia:noalloc
func (d *SBD) tailCore(line []byte, lineAddr uint64, startOff int, dst []ShadowBranch) []ShadowBranch {
	for p := startOff; p < len(line); {
		l := isa.LengthAt(line, p)
		if l == 0 || p+l > len(line) {
			break
		}
		dst = d.extract(line, lineAddr, p, dst)
		p += l
	}
	return dst
}

// extract decodes the instruction at line[off] and appends it to dst if
// it is a shadow-eligible branch fully contained in the line.
//skia:noalloc
func (d *SBD) extract(line []byte, lineAddr uint64, off int, dst []ShadowBranch) []ShadowBranch {
	in, ok := isa.TryDecode(line[off:], lineAddr+uint64(off))
	if !ok {
		return dst
	}
	if !in.Class.IsShadowEligible() &&
		!(d.cfg.IncludeConditionals && in.Class == isa.ClassDirectCond) {
		return dst
	}
	sb := ShadowBranch{PC: in.PC, Class: in.Class, Len: in.Len}
	if tgt, ok := in.BranchTarget(); ok {
		sb.Target = tgt
	}
	return append(dst, sb)
}
