package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
)

// SBBConfig sizes the Shadow Branch Buffer. The paper's default
// (Section 6.2) splits a 12.25KB budget into a 768-entry U-SBB for
// direct unconditional jumps and calls, and a 2024-entry R-SBB for
// returns, both 4-way with 10-bit tags.
type SBBConfig struct {
	// UEntries and UWays size the DirectUncond/Call buffer.
	UEntries, UWays int
	// REntries and RWays size the Return buffer.
	REntries, RWays int
	// TagBits is the partial-tag width (paper: 10).
	TagBits int
	// RetiredFirstEviction prefers evicting entries whose Retired bit
	// is clear — never-committed, possibly bogus branches — before
	// useful ones (paper Section 4.3). Disabling it is an ablation.
	RetiredFirstEviction bool
	// FilterBTBResident skips inserting branches that currently hit in
	// the BTB (ablation; the paper inserts unconditionally and lets the
	// replacement policy sort it out).
	FilterBTBResident bool
}

// DefaultSBBConfig returns the paper's preferred 12.25KB configuration.
func DefaultSBBConfig() SBBConfig {
	return SBBConfig{
		UEntries: 768, UWays: 4,
		REntries: 2024, RWays: 4,
		TagBits:              10,
		RetiredFirstEviction: true,
	}
}

// StorageBits returns the hardware budget in bits. U-SBB entries carry
// tag + valid + LRU + retired + 64-bit target (the paper's 78 bits)
// plus a call bit and a 4-bit length this implementation adds so shadow
// calls can push the RAS; R-SBB entries carry tag + valid + LRU +
// retired + 6-bit line offset (the paper's ~20 bits).
func (c SBBConfig) StorageBits() int {
	uBits := c.TagBits + 1 + 1 + 1 + 64 + 1 + 4
	rBits := c.TagBits + 1 + 1 + 1 + 6
	return c.UEntries*uBits + c.REntries*rBits
}

// UEntry is a U-SBB payload: a direct unconditional jump, a call, or —
// with the IncludeConditionals extension — a direct conditional.
type UEntry struct {
	// Target is the decoded branch target.
	Target uint64
	// IsCall distinguishes calls (which push the RAS) from jumps.
	IsCall bool
	// IsCond marks extension-mode conditionals, which need a direction
	// prediction before the target is followed.
	IsCond bool
	// Len is the branch instruction length, for fall-through (return
	// address) computation.
	Len uint8
}

type uWay struct {
	tag     uint64
	valid   bool
	retired bool
	lru     uint64
	bornAt  uint64 // Clock() cycle the entry was installed
	pc      uint64 // full branch PC, simulator bookkeeping (see OnRemove)
	e       UEntry
}

type rWay struct {
	tag     uint64
	valid   bool
	retired bool
	lru     uint64
	bornAt  uint64 // Clock() cycle the entry was installed
	pc      uint64 // full branch PC, simulator bookkeeping (see OnRemove)
	offset  uint8  // byte offset of the return within its line
}

// SBBStats counts buffer events.
type SBBStats struct {
	UInserts, RInserts     uint64
	UHits, RHits           uint64
	UMisses, RMisses       uint64
	UEvictions, REvictions uint64
	// FilteredBTBResident counts inserts skipped because the branch was
	// already BTB-resident (only with FilterBTBResident).
	FilteredBTBResident uint64
	// Invalidated counts entries removed after being exposed as bogus.
	Invalidated uint64
	// RetiredMarks counts commit-time retired-bit sets.
	RetiredMarks uint64
}

// SBB is the Shadow Branch Buffer: U-SBB indexed by branch PC, R-SBB
// indexed by cache-line address with a 6-bit in-line offset payload
// (paper Figure 12). Not safe for concurrent use.
type SBB struct {
	cfg   SBBConfig
	uSets [][]uWay
	rSets [][]rWay
	tick  uint64
	stats SBBStats

	// OnEvict, when non-nil, observes capacity evictions: isU selects
	// the buffer, retired reports the victim's retired bit (a useful
	// entry lost rather than a possibly-bogus one), and lifetime is the
	// victim's age in Clock cycles (0 without a Clock). Set by the
	// front-end's observability wiring; nil costs one comparison per
	// eviction.
	OnEvict func(isU, retired bool, lifetime uint64)

	// Clock, when non-nil, timestamps inserts so evictions can report
	// entry lifetimes. The SBB has no cycle counter of its own.
	Clock func() uint64

	// OnRemove, when non-nil, observes every entry leaving the buffer —
	// capacity evictions, invalidations, and tag-aliased overwrites —
	// with the departed entry's full branch PC. The PC is simulator
	// bookkeeping the hardware would not store (partial tags cannot
	// reconstruct it); the front-end uses the hook to retire the PC from
	// its probe-candidate sets so they track live SBB content instead of
	// growing monotonically.
	OnRemove func(pc uint64)
}

// Clone returns an independent deep copy of the SBB: same buffer
// contents, LRU state, and statistics. The OnEvict/Clock/OnRemove hooks
// are deliberately NOT copied — they are closures over the original
// owner's structures; whoever owns the clone must re-wire them.
func (s *SBB) Clone() *SBB {
	n := &SBB{
		cfg:   s.cfg,
		uSets: make([][]uWay, len(s.uSets)),
		rSets: make([][]rWay, len(s.rSets)),
		tick:  s.tick,
		stats: s.stats,
	}
	for i, set := range s.uSets {
		n.uSets[i] = make([]uWay, len(set))
		copy(n.uSets[i], set)
	}
	for i, set := range s.rSets {
		n.rSets[i] = make([]rWay, len(set))
		copy(n.rSets[i], set)
	}
	return n
}

// removed fires OnRemove for a departing entry.
func (s *SBB) removed(pc uint64) {
	if s.OnRemove != nil {
		s.OnRemove(pc)
	}
}

// now returns the current Clock cycle, or 0 without a Clock.
func (s *SBB) now() uint64 {
	if s.Clock == nil {
		return 0
	}
	return s.Clock()
}

// NewSBB builds a buffer from cfg.
func NewSBB(cfg SBBConfig) (*SBB, error) {
	if cfg.UEntries < 0 || cfg.REntries < 0 || cfg.UWays <= 0 || cfg.RWays <= 0 {
		return nil, fmt.Errorf("core: bad SBB geometry %+v", cfg)
	}
	if cfg.UEntries%cfg.UWays != 0 || cfg.REntries%cfg.RWays != 0 {
		return nil, fmt.Errorf("core: SBB entries not divisible by ways: %+v", cfg)
	}
	if cfg.TagBits <= 0 || cfg.TagBits > 40 {
		return nil, fmt.Errorf("core: SBB tag bits %d out of range", cfg.TagBits)
	}
	s := &SBB{cfg: cfg}
	if n := cfg.UEntries / cfg.UWays; n > 0 {
		s.uSets = make([][]uWay, n)
		for i := range s.uSets {
			s.uSets[i] = make([]uWay, cfg.UWays)
		}
	}
	if n := cfg.REntries / cfg.RWays; n > 0 {
		s.rSets = make([][]rWay, n)
		for i := range s.rSets {
			s.rSets[i] = make([]rWay, cfg.RWays)
		}
	}
	return s, nil
}

// MustNewSBB is NewSBB for static configurations.
func MustNewSBB(cfg SBBConfig) *SBB {
	s, err := NewSBB(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the construction configuration.
func (s *SBB) Config() SBBConfig { return s.cfg }

// Stats returns accumulated counts.
func (s *SBB) Stats() SBBStats { return s.stats }

// ResetStats zeroes statistics, preserving contents.
func (s *SBB) ResetStats() { s.stats = SBBStats{} }

// uIndex maps a branch PC to its U-SBB set and tag. Set counts need not
// be powers of two (the paper's 2024-entry R-SBB is not), so indexing
// is modulo with the remaining bits as tag material.
func (s *SBB) uIndex(pc uint64) (int, uint64) {
	n := uint64(len(s.uSets))
	set := int(pc % n)
	tag := (pc / n) & ((1 << uint(s.cfg.TagBits)) - 1)
	return set, tag
}

func (s *SBB) rIndex(lineAddr uint64) (int, uint64) {
	n := uint64(len(s.rSets))
	l := lineAddr >> 6
	set := int(l % n)
	tag := (l / n) & ((1 << uint(s.cfg.TagBits)) - 1)
	return set, tag
}

// LookupU probes the U-SBB for a direct unconditional branch or call at
// pc, refreshing LRU on hit.
//skia:noalloc
func (s *SBB) LookupU(pc uint64) (UEntry, bool) {
	if len(s.uSets) == 0 {
		return UEntry{}, false
	}
	set, tag := s.uIndex(pc)
	for w := range s.uSets[set] {
		wy := &s.uSets[set][w]
		if wy.valid && wy.tag == tag {
			s.tick++
			wy.lru = s.tick
			s.stats.UHits++
			return wy.e, true
		}
	}
	s.stats.UMisses++
	return UEntry{}, false
}

// LookupR probes the R-SBB: does a return instruction start at pc?
//skia:noalloc
func (s *SBB) LookupR(pc uint64) bool {
	if len(s.rSets) == 0 {
		return false
	}
	set, tag := s.rIndex(program.LineAddr(pc))
	off := uint8(program.LineOffset(pc))
	for w := range s.rSets[set] {
		wy := &s.rSets[set][w]
		if wy.valid && wy.tag == tag && wy.offset == off {
			s.tick++
			wy.lru = s.tick
			s.stats.RHits++
			return true
		}
	}
	s.stats.RMisses++
	return false
}

// victimU picks a way to replace: invalid first, then (with
// RetiredFirstEviction) LRU among non-retired, then LRU overall.
func victimU(ways []uWay, retiredFirst bool) int {
	best, bestLRU := -1, ^uint64(0)
	bestNR, bestNRLRU := -1, ^uint64(0)
	for w := range ways {
		if !ways[w].valid {
			return w
		}
		if ways[w].lru < bestLRU {
			best, bestLRU = w, ways[w].lru
		}
		if !ways[w].retired && ways[w].lru < bestNRLRU {
			bestNR, bestNRLRU = w, ways[w].lru
		}
	}
	if retiredFirst && bestNR >= 0 {
		return bestNR
	}
	return best
}

func victimR(ways []rWay, retiredFirst bool) int {
	best, bestLRU := -1, ^uint64(0)
	bestNR, bestNRLRU := -1, ^uint64(0)
	for w := range ways {
		if !ways[w].valid {
			return w
		}
		if ways[w].lru < bestLRU {
			best, bestLRU = w, ways[w].lru
		}
		if !ways[w].retired && ways[w].lru < bestNRLRU {
			bestNR, bestNRLRU = w, ways[w].lru
		}
	}
	if retiredFirst && bestNR >= 0 {
		return bestNR
	}
	return best
}

// Insert installs a shadow branch produced by the SBD. btbResident
// reports whether the branch currently hits in the BTB (used only by
// the FilterBTBResident ablation).
//skia:noalloc
func (s *SBB) Insert(sb ShadowBranch, btbResident bool) {
	if s.cfg.FilterBTBResident && btbResident {
		s.stats.FilteredBTBResident++
		return
	}
	switch sb.Class {
	case isa.ClassDirectUncond, isa.ClassCall, isa.ClassDirectCond:
		s.insertU(sb)
	case isa.ClassReturn:
		s.insertR(sb.PC)
	}
	if invariantsEnabled {
		sbbCheckInvariants(s)
	}
}

//skia:noalloc
func (s *SBB) insertU(sb ShadowBranch) {
	if len(s.uSets) == 0 {
		return
	}
	set, tag := s.uIndex(sb.PC)
	s.tick++
	e := UEntry{
		Target: sb.Target,
		IsCall: sb.Class == isa.ClassCall,
		IsCond: sb.Class == isa.ClassDirectCond,
		Len:    sb.Len,
	}
	for w := range s.uSets[set] {
		wy := &s.uSets[set][w]
		if wy.valid && wy.tag == tag {
			// Refresh in place; keep the retired bit (re-decoding the
			// same shadow region is common). A differing stored PC means
			// the partial tag aliased: the old branch's entry is gone.
			if wy.pc != sb.PC {
				s.removed(wy.pc)
				wy.pc = sb.PC
			}
			wy.e = e
			wy.lru = s.tick
			return
		}
	}
	w := victimU(s.uSets[set], s.cfg.RetiredFirstEviction)
	now := s.now()
	if s.uSets[set][w].valid {
		s.stats.UEvictions++
		if s.OnEvict != nil {
			s.OnEvict(true, s.uSets[set][w].retired, now-s.uSets[set][w].bornAt)
		}
		s.removed(s.uSets[set][w].pc)
	}
	s.uSets[set][w] = uWay{tag: tag, valid: true, lru: s.tick, bornAt: now, pc: sb.PC, e: e}
	s.stats.UInserts++
}

//skia:noalloc
func (s *SBB) insertR(pc uint64) {
	if len(s.rSets) == 0 {
		return
	}
	set, tag := s.rIndex(program.LineAddr(pc))
	off := uint8(program.LineOffset(pc))
	s.tick++
	for w := range s.rSets[set] {
		wy := &s.rSets[set][w]
		if wy.valid && wy.tag == tag && wy.offset == off {
			if wy.pc != pc {
				s.removed(wy.pc)
				wy.pc = pc
			}
			wy.lru = s.tick
			return
		}
	}
	w := victimR(s.rSets[set], s.cfg.RetiredFirstEviction)
	now := s.now()
	if s.rSets[set][w].valid {
		s.stats.REvictions++
		if s.OnEvict != nil {
			s.OnEvict(false, s.rSets[set][w].retired, now-s.rSets[set][w].bornAt)
		}
		s.removed(s.rSets[set][w].pc)
	}
	s.rSets[set][w] = rWay{tag: tag, valid: true, lru: s.tick, bornAt: now, pc: pc, offset: off}
	s.stats.RInserts++
}

// MarkRetired sets the Retired bit on the entry that supplied the
// committed branch at pc (paper Section 4.3).
func (s *SBB) MarkRetired(pc uint64, class isa.Class) {
	switch class {
	case isa.ClassReturn:
		if len(s.rSets) == 0 {
			return
		}
		set, tag := s.rIndex(program.LineAddr(pc))
		off := uint8(program.LineOffset(pc))
		for w := range s.rSets[set] {
			wy := &s.rSets[set][w]
			if wy.valid && wy.tag == tag && wy.offset == off {
				if !wy.retired {
					wy.retired = true
					s.stats.RetiredMarks++
				}
				return
			}
		}
	default:
		if len(s.uSets) == 0 {
			return
		}
		set, tag := s.uIndex(pc)
		for w := range s.uSets[set] {
			wy := &s.uSets[set][w]
			if wy.valid && wy.tag == tag {
				if !wy.retired {
					wy.retired = true
					s.stats.RetiredMarks++
				}
				return
			}
		}
	}
}

// Contains reports whether the SBB currently holds an entry for the
// branch at pc of the given class, without perturbing LRU state or
// hit/miss statistics. Observability probe only — the IAG path uses
// LookupU/LookupR.
func (s *SBB) Contains(pc uint64, class isa.Class) bool {
	if class == isa.ClassReturn {
		if len(s.rSets) == 0 {
			return false
		}
		set, tag := s.rIndex(program.LineAddr(pc))
		off := uint8(program.LineOffset(pc))
		for w := range s.rSets[set] {
			wy := &s.rSets[set][w]
			if wy.valid && wy.tag == tag && wy.offset == off {
				return true
			}
		}
		return false
	}
	if len(s.uSets) == 0 {
		return false
	}
	set, tag := s.uIndex(pc)
	for w := range s.uSets[set] {
		wy := &s.uSets[set][w]
		if wy.valid && wy.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate removes the entry at pc after it has been exposed as bogus
// (the decode stage found no such branch on the true path).
func (s *SBB) Invalidate(pc uint64) {
	if len(s.uSets) > 0 {
		set, tag := s.uIndex(pc)
		for w := range s.uSets[set] {
			wy := &s.uSets[set][w]
			if wy.valid && wy.tag == tag {
				gone := wy.pc
				*wy = uWay{}
				s.stats.Invalidated++
				s.removed(gone)
			}
		}
	}
	if len(s.rSets) > 0 {
		set, tag := s.rIndex(program.LineAddr(pc))
		off := uint8(program.LineOffset(pc))
		for w := range s.rSets[set] {
			wy := &s.rSets[set][w]
			if wy.valid && wy.tag == tag && wy.offset == off {
				gone := wy.pc
				*wy = rWay{}
				s.stats.Invalidated++
				s.removed(gone)
			}
		}
	}
}
