// Package ras models the Return Address Stack, the BPU structure that
// predicts return targets. Skia's R-SBB depends on it: the Shadow Branch
// Buffer only records that a return instruction *exists* at a given
// line offset (20-bit entries, paper Figure 12); the target still comes
// from the RAS at prediction time.
//
// The model is a circular stack with configurable depth. Speculative
// pushes/pops can corrupt it on wrong paths; the front-end repairs it
// from checkpoints at resteer time via Snapshot/Restore, which is how
// commercial cores recover RAS state.
package ras

// Stack is a return address stack. Not safe for concurrent use.
type Stack struct {
	buf []uint64
	top int // index of next free slot
	n   int // live entries, <= len(buf)
}

// New returns a RAS with the given depth (minimum 1).
func New(depth int) *Stack {
	if depth < 1 {
		depth = 1
	}
	return &Stack{buf: make([]uint64, depth)}
}

// Push records a return address (on a call).
func (s *Stack) Push(addr uint64) {
	s.buf[s.top] = addr
	s.top = (s.top + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
}

// Pop predicts and consumes the top return address. On underflow it
// returns 0 and false.
func (s *Stack) Pop() (uint64, bool) {
	if s.n == 0 {
		return 0, false
	}
	s.top = (s.top - 1 + len(s.buf)) % len(s.buf)
	s.n--
	return s.buf[s.top], true
}

// Peek returns the top return address without consuming it.
func (s *Stack) Peek() (uint64, bool) {
	if s.n == 0 {
		return 0, false
	}
	return s.buf[(s.top-1+len(s.buf))%len(s.buf)], true
}

// Depth returns the number of live entries.
func (s *Stack) Depth() int { return s.n }

// Capacity returns the configured depth.
func (s *Stack) Capacity() int { return len(s.buf) }

// Clone returns an independent deep copy of the stack.
func (s *Stack) Clone() *Stack {
	buf := make([]uint64, len(s.buf))
	copy(buf, s.buf)
	return &Stack{buf: buf, top: s.top, n: s.n}
}

// Snapshot captures the full RAS state for later restoration.
type Snapshot struct {
	buf []uint64
	top int
	n   int
}

// Snapshot returns a checkpoint of the current state.
func (s *Stack) Snapshot() Snapshot {
	cp := make([]uint64, len(s.buf))
	copy(cp, s.buf)
	return Snapshot{buf: cp, top: s.top, n: s.n}
}

// Restore rewinds the RAS to a previously captured checkpoint.
func (s *Stack) Restore(sn Snapshot) {
	copy(s.buf, sn.buf)
	s.top = sn.top
	s.n = sn.n
}

// LoadFrom overwrites the RAS with the top entries of an architectural
// call stack (oldest first), modeling a perfect repair from committed
// state after a deep mis-speculation.
func (s *Stack) LoadFrom(arch []uint64) {
	s.top, s.n = 0, 0
	start := 0
	if len(arch) > len(s.buf) {
		start = len(arch) - len(s.buf)
	}
	for _, a := range arch[start:] {
		s.Push(a)
	}
}
