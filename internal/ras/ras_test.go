package ras

import "testing"

func TestPushPop(t *testing.T) {
	s := New(8)
	s.Push(1)
	s.Push(2)
	s.Push(3)
	if s.Depth() != 3 {
		t.Errorf("depth = %d", s.Depth())
	}
	for want := uint64(3); want >= 1; want-- {
		got, ok := s.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Error("pop from empty should fail")
	}
}

func TestPeek(t *testing.T) {
	s := New(4)
	if _, ok := s.Peek(); ok {
		t.Error("peek empty should fail")
	}
	s.Push(42)
	v, ok := s.Peek()
	if !ok || v != 42 {
		t.Errorf("peek = %d,%v", v, ok)
	}
	if s.Depth() != 1 {
		t.Error("peek consumed the entry")
	}
}

func TestOverflowWrapsOldest(t *testing.T) {
	s := New(4)
	for i := uint64(1); i <= 6; i++ {
		s.Push(i)
	}
	if s.Depth() != 4 {
		t.Errorf("depth = %d, want 4", s.Depth())
	}
	// The four most recent survive: 6,5,4,3.
	for want := uint64(6); want >= 3; want-- {
		got, ok := s.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Error("oldest entries should have been overwritten")
	}
}

func TestMinDepth(t *testing.T) {
	s := New(0)
	if s.Capacity() != 1 {
		t.Errorf("capacity = %d, want 1", s.Capacity())
	}
	s.Push(7)
	if v, ok := s.Pop(); !ok || v != 7 {
		t.Error("single-entry RAS broken")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New(8)
	s.Push(1)
	s.Push(2)
	snap := s.Snapshot()
	s.Push(3)
	s.Pop()
	s.Pop()
	s.Restore(snap)
	if s.Depth() != 2 {
		t.Fatalf("depth after restore = %d", s.Depth())
	}
	if v, _ := s.Pop(); v != 2 {
		t.Errorf("restored top = %d", v)
	}
	if v, _ := s.Pop(); v != 1 {
		t.Errorf("restored second = %d", v)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := New(4)
	s.Push(1)
	snap := s.Snapshot()
	s.Push(99) // must not leak into the snapshot
	s.Restore(snap)
	s.Push(2)
	if v, _ := s.Pop(); v != 2 {
		t.Error("snapshot corrupted by later pushes")
	}
	if v, _ := s.Pop(); v != 1 {
		t.Error("snapshot lost original entry")
	}
}

func TestLoadFrom(t *testing.T) {
	s := New(4)
	s.Push(0xdead) // garbage to be replaced
	arch := []uint64{1, 2, 3, 4, 5, 6}
	s.LoadFrom(arch)
	// Only the deepest Capacity() entries fit: 3,4,5,6.
	for want := uint64(6); want >= 3; want-- {
		got, ok := s.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	if s.Depth() != 0 {
		t.Error("stale entries after LoadFrom")
	}
	s.LoadFrom(nil)
	if s.Depth() != 0 {
		t.Error("LoadFrom(nil) should empty the stack")
	}
}

func TestCallReturnSequence(t *testing.T) {
	// Simulate nested call/return pairs and verify perfect prediction.
	s := New(32)
	type frame struct{ ret uint64 }
	var model []frame
	push := func(r uint64) { s.Push(r); model = append(model, frame{r}) }
	pop := func() {
		want := model[len(model)-1].ret
		model = model[:len(model)-1]
		got, ok := s.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	push(100)
	push(200)
	pop()
	push(300)
	push(400)
	pop()
	pop()
	pop()
	if s.Depth() != 0 {
		t.Error("imbalanced")
	}
}
