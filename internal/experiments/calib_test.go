package experiments

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestCalibrateAll(t *testing.T) {
	if os.Getenv("SKIA_CALIBRATE") == "" {
		t.Skip("set SKIA_CALIBRATE=1 to run the calibration sweep")
	}
	o := Options{Warmup: 400_000, Measure: 1_200_000}
	r := o.runner()
	for _, b := range workload.SuiteNames() {
		w, err := r.Workload(b)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(baselineSpec(b, o))
		if err != nil {
			t.Fatal(err)
		}
		fe := res.FE
		tot := float64(fe.BTBMissTotal())
		pc := func(v uint64) float64 {
			if tot == 0 {
				return 0
			}
			return float64(v) / tot * 100
		}
		fmt.Printf("%-18s static=%6d missMPKI=%5.2f l1i=%5.1f(tgt %4.1f) hitFrac=%.2f condMPKI=%4.1f mix[c%2.0f u%2.0f ca%2.0f r%2.0f i%2.0f] ipc=%.2f\n",
			b, w.StaticBranchCount(), res.BTBMissMPKI, res.L1IMPKI, w.Profile.L1IMPKITarget,
			res.BTBMissL1IHitFrac, stats.MPKI(fe.CondMispredicts, res.Instructions),
			pc(fe.BTBMissCond), pc(fe.BTBMissUncond), pc(fe.BTBMissCall), pc(fe.BTBMissReturn), pc(fe.BTBMissIndirect),
			res.IPC)
		_ = sim.DefaultWarmup
	}
}
