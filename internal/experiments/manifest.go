package experiments

// ManifestEntry indexes one written report in a manifest.json.
type ManifestEntry struct {
	ID          string  `json:"id"`
	Title       string  `json:"title"`
	File        string  `json:"file"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Manifest is the top-level index written alongside per-experiment
// report files. cmd/skiaexp writes one per -json -out run and
// cmd/skiactl writes the same shape when aggregating sweep-service
// results, so downstream tooling (cmd/skiacmp, dashboards) reads both
// identically.
type Manifest struct {
	SchemaVersion    int             `json:"schema_version"`
	GeneratedAt      string          `json:"generated_at"`
	GitDescribe      string          `json:"git_describe,omitempty"`
	Args             []string        `json:"args"`
	Experiments      []ManifestEntry `json:"experiments"`
	TotalWallSeconds float64         `json:"total_wall_seconds"`
}
