package experiments

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
)

// TestReportJSONRoundTrip marshals a freshly simulated report, decodes
// it, and requires deep equality: nothing the envelope carries may be
// lost or coerced on the way through disk.
func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Fig15(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	rep.Meta.GitDescribe = "v0-test"
	rep.Meta.GeneratedAt = "2026-08-06T00:00:00Z"
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != rep.ID || back.Title != rep.Title {
		t.Errorf("identity changed: %q/%q", back.ID, back.Title)
	}
	if !reflect.DeepEqual(back.Notes, rep.Notes) {
		t.Errorf("notes changed: %v != %v", back.Notes, rep.Notes)
	}
	if !reflect.DeepEqual(back.Meta, rep.Meta) {
		t.Errorf("meta changed:\n%+v\n!=\n%+v", back.Meta, rep.Meta)
	}
	if !reflect.DeepEqual(back.Table.Columns(), rep.Table.Columns()) {
		t.Errorf("columns changed: %+v != %+v", back.Table.Columns(), rep.Table.Columns())
	}
	if back.Table.NumRows() != rep.Table.NumRows() {
		t.Fatalf("row count changed: %d != %d", back.Table.NumRows(), rep.Table.NumRows())
	}
	for i := 0; i < rep.Table.NumRows(); i++ {
		if !reflect.DeepEqual(back.Table.Row(i), rep.Table.Row(i)) {
			t.Errorf("row %d changed: %+v != %+v", i, back.Table.Row(i), rep.Table.Row(i))
		}
	}
	if back.String() != rep.String() {
		t.Error("plain-text rendering changed across round trip")
	}
}

// TestReportMetaStamped checks the run-metadata envelope a harness
// fills: benchmarks with seeds, effective windows, config labels, and
// the runner's throughput counters.
func TestReportMetaStamped(t *testing.T) {
	o := tinyOpts()
	rep, err := Fig14(o)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Meta
	if len(m.Benchmarks) != 2 || m.Benchmarks[0].Name != "voter" || m.Benchmarks[0].Seed == 0 {
		t.Errorf("benchmarks = %+v", m.Benchmarks)
	}
	if m.WarmupInstructions != o.Warmup || m.MeasureInstructions != o.Measure {
		t.Errorf("windows = %d/%d", m.WarmupInstructions, m.MeasureInstructions)
	}
	if !reflect.DeepEqual(m.ConfigLabels, []string{"baseline", "both", "head", "tail"}) {
		t.Errorf("config labels = %v", m.ConfigLabels)
	}
	if m.Sim == nil {
		t.Fatal("no sim stats")
	}
	// 2 benchmarks x 4 variants.
	if m.Sim.Runs != 8 || m.Sim.Instructions == 0 || m.Sim.InstructionsPerSec <= 0 {
		t.Errorf("sim stats = %+v", m.Sim)
	}
	// Defaults resolve when the options leave windows at zero.
	var o2 Options
	rep2 := &Report{ID: "x", Table: stats.NewTable("a")}
	o2.stamp(rep2, nil, nil)
	if rep2.Meta.WarmupInstructions == 0 || rep2.Meta.MeasureInstructions == 0 {
		t.Errorf("default windows not resolved: %+v", rep2.Meta)
	}
}

// TestReportSchemaVersionChecked ensures decodes of other versions
// fail loudly instead of silently misreading.
func TestReportSchemaVersionChecked(t *testing.T) {
	if _, err := DecodeReport([]byte(`{"schema_version":99,"id":"x","title":"t","meta":{},"table":{"columns":[],"rows":[]}}`)); err == nil {
		t.Error("future schema version accepted")
	}
	if _, err := DecodeReport([]byte(`{"schema_version":1,"id":"x","title":"t","meta":{}}`)); err == nil {
		t.Error("report without table accepted")
	}
}

// TestGoldenReportStable decodes the committed golden report and
// re-marshals it: the bytes must match exactly, pinning the schema.
// Regenerate with:
//
//	go run ./cmd/skiaexp -exp fig14 -json -benchmarks voter,kafka \
//	    -warmup 100000 -measure 300000 -out /tmp/r
//	cp /tmp/r/fig14.json internal/experiments/testdata/fig14.golden.json
//
// (and update the example in EXPERIMENTS.md to match).
func TestGoldenReportStable(t *testing.T) {
	golden, err := os.ReadFile("testdata/fig14.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DecodeReport(golden)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig14" || rep.Table.NumRows() != 3 {
		t.Fatalf("unexpected golden content: id=%q rows=%d", rep.ID, rep.Table.NumRows())
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if string(out) != string(golden) {
		t.Errorf("golden report does not re-marshal byte-identically;\nschema drifted — regenerate testdata/fig14.golden.json and update EXPERIMENTS.md\n--- got ---\n%s", out)
	}
}

// TestDocumentedExampleMatchesMarshaller holds EXPERIMENTS.md to its
// word: the fig14.json example in the "Results schema" section must be
// byte-identical to the golden file, which TestGoldenReportStable pins
// to the marshaller's actual output.
func TestDocumentedExampleMatchesMarshaller(t *testing.T) {
	doc, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	marker := "### Example: fig14.json"
	i := strings.Index(string(doc), marker)
	if i < 0 {
		t.Fatalf("EXPERIMENTS.md lacks the %q section", marker)
	}
	rest := string(doc)[i:]
	start := strings.Index(rest, "```json\n")
	if start < 0 {
		t.Fatal("no fenced json block after the example marker")
	}
	rest = rest[start+len("```json\n"):]
	end := strings.Index(rest, "```")
	if end < 0 {
		t.Fatal("unterminated json block")
	}
	example := rest[:end]
	golden, err := os.ReadFile("testdata/fig14.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if example != string(golden) {
		t.Error("EXPERIMENTS.md example differs from testdata/fig14.golden.json; keep them in sync")
	}
	if _, err := DecodeReport([]byte(example)); err != nil {
		t.Errorf("documented example does not decode: %v", err)
	}
}

// TestReportDecodesV1AndUnknownFields pins the compatibility promise:
// a schema-v1 envelope (no intervals, possibly carrying fields this
// build has never heard of) still decodes, so old goldens keep
// diffing against v3 reports.
func TestReportDecodesV1AndUnknownFields(t *testing.T) {
	v1 := `{
  "schema_version": 1,
  "id": "fig14",
  "title": "legacy",
  "meta": {"warmup_instructions": 100, "some_future_field": {"x": 1}},
  "table": {"columns": [{"name": "benchmark"}, {"name": "ipc", "unit": "ipc"}],
            "rows": [[{"kind": "str", "text": "voter"},
                      {"kind": "num", "text": "2.40", "value": 2.4}]]},
  "extra_top_level": [1, 2, 3]
}`
	rep, err := DecodeReport([]byte(v1))
	if err != nil {
		t.Fatalf("v1 envelope rejected: %v", err)
	}
	if rep.ID != "fig14" || rep.Table.NumRows() != 1 {
		t.Errorf("v1 content mangled: id=%q rows=%d", rep.ID, rep.Table.NumRows())
	}
	if rep.Intervals != nil {
		t.Errorf("v1 report grew intervals: %+v", rep.Intervals)
	}
	if rep.Meta.WarmupInstructions != 100 {
		t.Errorf("meta dropped: %+v", rep.Meta)
	}
}

// TestReportDecodesV2 pins the v2 half of the promise: an intervals-
// bearing v2 envelope decodes with its intervals intact and no
// attribution section invented.
func TestReportDecodesV2(t *testing.T) {
	v2 := `{
  "schema_version": 2,
  "id": "fig15",
  "title": "v2 report",
  "meta": {},
  "table": {"columns": [{"name": "benchmark"}], "rows": [[{"kind": "str", "text": "voter"}]]},
  "intervals": [{"benchmark": "voter", "label": "skia", "summary": {"count": 3, "ipc_mean": 2.1}}]
}`
	rep, err := DecodeReport([]byte(v2))
	if err != nil {
		t.Fatalf("v2 envelope rejected: %v", err)
	}
	if len(rep.Intervals) != 1 || rep.Intervals[0].Summary.Count != 3 {
		t.Errorf("v2 intervals mangled: %+v", rep.Intervals)
	}
	if rep.Attribution != nil {
		t.Errorf("v2 report grew attribution: %+v", rep.Attribution)
	}
}

// TestReportAttributionRoundTrip runs a harness with attribution on
// and requires the per-spec summaries to survive the JSON trip, and
// the section to stay absent entirely when disabled.
func TestReportAttributionRoundTrip(t *testing.T) {
	o := tinyOpts()
	o.Attrib = true
	rep, err := Fig14(o)
	if err != nil {
		t.Fatal(err)
	}
	// 2 benchmarks x 4 variants, sorted by benchmark then label.
	if len(rep.Attribution) != 8 {
		t.Fatalf("attribution summaries = %d, want 8", len(rep.Attribution))
	}
	for i := 1; i < len(rep.Attribution); i++ {
		a, b := rep.Attribution[i-1], rep.Attribution[i]
		if a.Benchmark > b.Benchmark || (a.Benchmark == b.Benchmark && a.Label > b.Label) {
			t.Errorf("summaries unsorted at %d: %+v > %+v", i, a, b)
		}
	}
	for _, s := range rep.Attribution {
		var sum uint64
		for _, c := range s.Summary.Causes {
			sum += c.Count
		}
		if sum != s.Summary.BTBMisses {
			t.Errorf("%s/%s: causes sum %d != total %d",
				s.Benchmark, s.Label, sum, s.Summary.BTBMisses)
		}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Attribution, rep.Attribution) {
		t.Errorf("attribution changed across round trip:\n%+v\n!=\n%+v", back.Attribution, rep.Attribution)
	}
	rep2, err := Fig15(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Attribution) != 0 {
		t.Errorf("attribution stamped while disabled: %+v", rep2.Attribution)
	}
	if data, err := json.Marshal(rep2); err != nil {
		t.Fatal(err)
	} else if strings.Contains(string(data), `"attribution"`) {
		t.Error("disabled report still emits an attribution key")
	}
}

// TestReportIntervalsRoundTrip runs a harness with interval collection
// on and requires the per-spec summaries to survive the JSON trip.
func TestReportIntervalsRoundTrip(t *testing.T) {
	o := tinyOpts()
	o.Interval = 100_000
	rep, err := Fig14(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Intervals) == 0 {
		t.Fatal("no interval summaries stamped")
	}
	// 2 benchmarks x 4 variants, sorted by benchmark then label.
	if len(rep.Intervals) != 8 {
		t.Errorf("summaries = %d, want 8", len(rep.Intervals))
	}
	for i := 1; i < len(rep.Intervals); i++ {
		a, b := rep.Intervals[i-1], rep.Intervals[i]
		if a.Benchmark > b.Benchmark || (a.Benchmark == b.Benchmark && a.Label > b.Label) {
			t.Errorf("summaries unsorted at %d: %+v > %+v", i, a, b)
		}
	}
	for _, s := range rep.Intervals {
		if s.Summary.Count == 0 || s.Summary.IPCMean <= 0 {
			t.Errorf("empty summary: %+v", s)
		}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Intervals, rep.Intervals) {
		t.Errorf("intervals changed across round trip:\n%+v\n!=\n%+v", back.Intervals, rep.Intervals)
	}
	// Without the option the section stays absent entirely.
	rep2, err := Fig15(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Intervals) != 0 {
		t.Errorf("intervals stamped while disabled: %+v", rep2.Intervals)
	}
	if data, err := json.Marshal(rep2); err != nil {
		t.Fatal(err)
	} else if strings.Contains(string(data), `"intervals"`) {
		t.Error("disabled report still emits an intervals key")
	}
}
