package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tinyOpts keeps experiment tests fast: two benchmarks, small windows.
func tinyOpts() Options {
	return Options{
		Warmup:     100_000,
		Measure:    300_000,
		Benchmarks: []string{"voter", "kafka"},
	}
}

func checkReport(t *testing.T, rep *Report, id string, wantRows int) {
	t.Helper()
	if rep.ID != id {
		t.Errorf("ID = %q, want %q", rep.ID, id)
	}
	if rep.Title == "" {
		t.Error("empty title")
	}
	out := rep.String()
	if !strings.Contains(out, id) {
		t.Errorf("rendering lacks id:\n%s", out)
	}
	lines := strings.Count(rep.Table.String(), "\n")
	// header + separator + rows
	if lines < 2+wantRows {
		t.Errorf("table has %d lines, want >= %d:\n%s", lines, 2+wantRows, rep.Table)
	}
}

func TestTable1(t *testing.T) {
	rep := Table1()
	checkReport(t, rep, "table1", 10)
	if !strings.Contains(rep.Table.String(), "12.") {
		t.Error("SBB budget missing from config table")
	}
}

func TestTable2(t *testing.T) {
	rep, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "table2", 16)
	for _, want := range []string{"cassandra", "verilator-bolted", "bolt", "interleaved"} {
		if !strings.Contains(rep.Table.String(), want) {
			t.Errorf("table2 lacks %q", want)
		}
	}
}

func TestFig1(t *testing.T) {
	rep, err := Fig1(tinyOpts(), []int{2048, 8192})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "fig1", 2)
	if len(rep.Notes) == 0 {
		t.Error("fig1 should note the paper's 75% comparison")
	}
}

func TestFig6(t *testing.T) {
	rep, err := Fig6(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "fig6", 2)
}

func TestFig13(t *testing.T) {
	rep, err := Fig13(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "fig13", 2)
}

func TestFig14ShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	o := tinyOpts()
	o.Benchmarks = []string{"voter", "sibench"}
	rep, err := Fig14(o)
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "fig14", 3)
	// Parse the geomean row: tail must beat head (paper Section 6.1),
	// and the combined configuration must provide a positive gain.
	rows := strings.Split(strings.TrimRight(rep.Table.String(), "\n"), "\n")
	last := strings.Fields(rows[len(rows)-1])
	if last[0] != "GEOMEAN" {
		t.Fatalf("last row %v", last)
	}
	head := parseSigned(t, last[1])
	tail := parseSigned(t, last[2])
	both := parseSigned(t, last[3])
	if both <= 0 {
		t.Errorf("combined Skia gain %.2f%% not positive on high-miss benchmarks", both)
	}
	// Tail-only decoding must deliver a solid fraction of the benefit on
	// its own (paper Section 6.1). The strict tail>head ordering is a
	// full-suite, full-window property (checked by cmd/skiaexp and
	// recorded in EXPERIMENTS.md); at this test's micro scale the two
	// are within noise of each other.
	if tail <= 0 {
		t.Errorf("tail-only gain %.2f%% not positive", tail)
	}
	if head <= 0 {
		t.Errorf("head-only gain %.2f%% not positive on call/return-heavy benchmarks", head)
	}
}

func parseSigned(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%"), 64)
	if err != nil {
		t.Fatalf("bad cell %q: %v", cell, err)
	}
	return v
}

func TestFig15(t *testing.T) {
	rep, err := Fig15(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "fig15", 2)
}

func TestFig18(t *testing.T) {
	rep, err := Fig18(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "fig18", 2)
}

func TestBolt(t *testing.T) {
	if testing.Short() {
		t.Skip("four full-size runs")
	}
	rep, err := Bolt(Options{Warmup: 100_000, Measure: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "bolt", 2)
	if !strings.Contains(rep.Table.String(), "verilator-bolted") {
		t.Error("bolted variant missing")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if len(o.benchmarks()) != 16 {
		t.Errorf("default benchmark list has %d entries", len(o.benchmarks()))
	}
	o.Benchmarks = []string{"voter"}
	if len(o.benchmarks()) != 1 {
		t.Error("override ignored")
	}
}

func TestPctAndFormatHelpers(t *testing.T) {
	if pct(0.0564) != "5.64%" {
		t.Errorf("pct = %q", pct(0.0564))
	}
	if f3(1.23456) != "1.235" || f2(1.23456) != "1.23" {
		t.Error("float formatting broken")
	}
}
