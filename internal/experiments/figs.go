package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/stats"
)

// DefaultBTBSizes is the BTB entry sweep used by Figures 1 and 3.
var DefaultBTBSizes = []int{1024, 2048, 4096, 8192, 16384}

// Fig1 reproduces Figure 1: average BTB-miss MPKI across the suite for
// each BTB size, and the portion of those misses whose cache line was
// already L1-I resident — the shadow-branch opportunity.
func Fig1(o Options, sizes []int) (*Report, error) {
	if len(sizes) == 0 {
		sizes = DefaultBTBSizes
	}
	r := o.runner()
	benches := o.benchmarks()
	var specs []sim.RunSpec
	for _, size := range sizes {
		for _, b := range benches {
			spec := baselineSpec(b, o)
			spec.Config.Frontend.BTB = sim.BTBWithEntries(size)
			spec.Label = fmt.Sprintf("%d", size)
			specs = append(specs, spec)
		}
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("btb_entries", "miss_mpki", "miss_l1i_hit_mpki", "l1i_hit_frac").
		SetUnits(stats.UnitNone, stats.UnitMPKI, stats.UnitMPKI, stats.UnitFrac)
	rep := &Report{ID: "fig1", Title: "BTB miss MPKI and fraction resident in L1-I vs BTB size", Table: tb}
	i := 0
	var frac8k float64
	for _, size := range sizes {
		var mpki, hitMpki []float64
		for range benches {
			res := results[i]
			i++
			mpki = append(mpki, res.BTBMissMPKI)
			hitMpki = append(hitMpki, stats.MPKI(res.FE.BTBMissL1IHit, res.Instructions))
		}
		m, h := stats.Mean(mpki), stats.Mean(hitMpki)
		frac := 0.0
		if m > 0 {
			frac = h / m
		}
		if size == 8192 {
			frac8k = frac
		}
		tb.AddCells(cStr(fmt.Sprintf("%d", size)), cF2(m), cF2(h), cPct(frac))
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"paper: ~75%% of 8K-BTB misses are L1-I resident; measured %s", pct(frac8k)))
	return o.stamp(rep, r, benches), nil
}

// Fig3Sizes is the BTB sweep for the Figure 3 headline plot.
var Fig3Sizes = []int{4096, 8192, 16384, 32768}

// Fig3 reproduces Figure 3: geomean speedup (normalized to the 4K-entry
// baseline BTB) of four designs across BTB sizes: plain BTB, BTB grown
// by the SBB's budget, BTB+SBB (Skia), and an infinite BTB.
func Fig3(o Options, sizes []int) (*Report, error) {
	if len(sizes) == 0 {
		sizes = Fig3Sizes
	}
	r := o.runner()
	benches := o.benchmarks()
	sbbBits := core.DefaultSBBConfig().StorageBits()

	type cfgGen struct {
		name string
		mk   func(size int) cpu.Config
	}
	gens := []cfgGen{
		{"btb", func(size int) cpu.Config {
			c := cpu.DefaultConfig()
			c.Frontend.BTB = sim.BTBWithEntries(size)
			return c
		}},
		{"btb+state", func(size int) cpu.Config {
			c := cpu.DefaultConfig()
			c.Frontend.BTB = sim.AugmentedBTB(sim.BTBWithEntries(size), sbbBits)
			return c
		}},
		{"btb+sbb", func(size int) cpu.Config {
			c := cpu.SkiaConfig()
			c.Frontend.BTB = sim.BTBWithEntries(size)
			return c
		}},
		{"infinite", func(int) cpu.Config {
			c := cpu.DefaultConfig()
			c.Frontend.BTB.Infinite = true
			return c
		}},
	}

	var specs []sim.RunSpec
	for _, size := range sizes {
		for _, g := range gens {
			for _, b := range benches {
				specs = append(specs, sim.RunSpec{
					Benchmark: b, Config: o.config(g.mk(size)),
					Warmup: o.Warmup, Measure: o.Measure,
					Label: fmt.Sprintf("%s/%d", g.name, size),
				})
			}
		}
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}

	// Per-benchmark baseline IPCs at the smallest size, plain BTB.
	ipc := map[string][]float64{} // label -> per-benchmark IPCs
	i := 0
	for _, size := range sizes {
		for _, g := range gens {
			key := fmt.Sprintf("%s/%d", g.name, size)
			for range benches {
				ipc[key] = append(ipc[key], results[i].IPC)
				i++
			}
		}
	}
	baseKey := fmt.Sprintf("btb/%d", sizes[0])
	base := ipc[baseKey]

	tb := stats.NewTable("btb_entries", "btb", "btb+state", "btb+sbb", "infinite").
		SetUnits(stats.UnitNone, stats.UnitSpeedup, stats.UnitSpeedup, stats.UnitSpeedup, stats.UnitSpeedup)
	rep := &Report{ID: "fig3", Title: "Geomean speedup vs 4K-entry BTB across designs", Table: tb}
	speedup := func(key string) float64 { return stats.GeomeanSpeedup(ipc[key], base) }
	for _, size := range sizes {
		tb.AddCells(cStr(fmt.Sprintf("%d", size)),
			cPct(speedup(fmt.Sprintf("btb/%d", size))),
			cPct(speedup(fmt.Sprintf("btb+state/%d", size))),
			cPct(speedup(fmt.Sprintf("btb+sbb/%d", size))),
			cPct(speedup(fmt.Sprintf("infinite/%d", sizes[0]))))
	}
	// Shape check at 8K: sbb > state > plain.
	s8, st8, p8 := speedup("btb+sbb/8192"), speedup("btb+state/8192"), speedup("btb/8192")
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"shape at 8K: skia %s vs btb+state %s vs btb %s (paper: skia beats equal-state BTB until saturation)",
		pct(s8), pct(st8), pct(p8)))
	return o.stamp(rep, r, benches), nil
}

// Fig6 reproduces Figure 6: BTB misses by branch type per benchmark at
// the 8K-entry baseline.
func Fig6(o Options) (*Report, error) {
	r := o.runner()
	benches := o.benchmarks()
	var specs []sim.RunSpec
	for _, b := range benches {
		specs = append(specs, baselineSpec(b, o))
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("benchmark", "total_mpki", "cond%", "uncond%", "call%", "return%", "indirect%").
		SetUnits(stats.UnitNone, stats.UnitMPKI, stats.UnitFrac, stats.UnitFrac,
			stats.UnitFrac, stats.UnitFrac, stats.UnitFrac)
	rep := &Report{ID: "fig6", Title: "BTB misses by branch type (8K BTB)", Table: tb}
	for i, b := range benches {
		fe := results[i].FE
		tot := float64(fe.BTBMissTotal())
		pc := func(v uint64) stats.Cell {
			if tot == 0 {
				return cPct(0)
			}
			return cPct(float64(v) / tot)
		}
		tb.AddCells(cStr(b), cF2(results[i].BTBMissMPKI),
			pc(fe.BTBMissCond), pc(fe.BTBMissUncond), pc(fe.BTBMissCall),
			pc(fe.BTBMissReturn), pc(fe.BTBMissIndirect))
	}
	rep.Notes = append(rep.Notes,
		"paper: indirect misses are a vanishing fraction everywhere; direct types dominate")
	return o.stamp(rep, r, benches), nil
}

// Fig13 reproduces Figure 13: simulated L1-I MPKI against the
// real-system MPKI the paper measured with VTune (stored per profile).
func Fig13(o Options) (*Report, error) {
	r := o.runner()
	benches := o.benchmarks()
	var specs []sim.RunSpec
	for _, b := range benches {
		specs = append(specs, baselineSpec(b, o))
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("benchmark", "target_mpki", "simulated_mpki", "diff").
		SetUnits(stats.UnitNone, stats.UnitMPKI, stats.UnitMPKI, stats.UnitFrac)
	rep := &Report{ID: "fig13", Title: "L1-I MPKI: reference target vs simulation", Table: tb}
	var totT, totS float64
	for i, b := range benches {
		w, err := r.Workload(b)
		if err != nil {
			return nil, err
		}
		target := w.Profile.L1IMPKITarget
		got := results[i].L1IMPKI
		totT += target
		totS += got
		diff := 0.0
		if target > 0 {
			diff = (got - target) / target
		}
		tb.AddCells(cStr(b), cF2(target), cF2(got), cPct(diff))
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"aggregate difference %s (paper reports <18%% between real system and gem5)",
		pct(math.Abs(totS-totT)/totT)))
	return o.stamp(rep, r, benches), nil
}

// Fig14 reproduces Figure 14: per-benchmark IPC gain over the 8K-BTB
// baseline for head-only, tail-only, and combined shadow decoding, with
// the geomean row the paper quotes (5.64% combined; 3.68% head; 4.39%
// tail).
func Fig14(o Options) (*Report, error) {
	r := o.runner()
	benches := o.benchmarks()
	variants := []struct {
		name       string
		head, tail bool
		skia       bool
	}{
		{"baseline", false, false, false},
		{"head", true, false, true},
		{"tail", false, true, true},
		{"both", true, true, true},
	}
	var specs []sim.RunSpec
	for _, v := range variants {
		for _, b := range benches {
			var cfg cpu.Config
			if v.skia {
				cfg = cpu.SkiaConfig()
				cfg.Frontend.SBD.Head = v.head
				cfg.Frontend.SBD.Tail = v.tail
			} else {
				cfg = cpu.DefaultConfig()
			}
			specs = append(specs, sim.RunSpec{
				Benchmark: b, Config: o.config(cfg),
				Warmup: o.Warmup, Measure: o.Measure, Label: v.name,
			})
		}
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	ipcs := map[string][]float64{}
	i := 0
	for _, v := range variants {
		for range benches {
			ipcs[v.name] = append(ipcs[v.name], results[i].IPC)
			i++
		}
	}
	tb := stats.NewTable("benchmark", "head", "tail", "both").
		SetUnits(stats.UnitNone, stats.UnitSpeedup, stats.UnitSpeedup, stats.UnitSpeedup)
	rep := &Report{ID: "fig14", Title: "IPC gain over 8K-BTB baseline by shadow-decode variant", Table: tb}
	for bi, b := range benches {
		base := ipcs["baseline"][bi]
		tb.AddCells(cStr(b),
			cPct(stats.Speedup(ipcs["head"][bi], base)),
			cPct(stats.Speedup(ipcs["tail"][bi], base)),
			cPct(stats.Speedup(ipcs["both"][bi], base)))
	}
	gh := stats.GeomeanSpeedup(ipcs["head"], ipcs["baseline"])
	gt := stats.GeomeanSpeedup(ipcs["tail"], ipcs["baseline"])
	gb := stats.GeomeanSpeedup(ipcs["both"], ipcs["baseline"])
	tb.AddCells(cStr("GEOMEAN"), cPct(gh), cPct(gt), cPct(gb))
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"paper geomeans: head +3.68%%, tail +4.39%%, both +5.64%%; measured head %s, tail %s, both %s",
		pct(gh), pct(gt), pct(gb)))
	return o.stamp(rep, r, benches), nil
}

// Fig15 reproduces Figure 15: per-benchmark BTB-miss MPKI split by
// whether the missing branch's line was L1-I resident.
func Fig15(o Options) (*Report, error) {
	r := o.runner()
	benches := o.benchmarks()
	var specs []sim.RunSpec
	for _, b := range benches {
		specs = append(specs, baselineSpec(b, o))
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("benchmark", "miss_l1i_hit_mpki", "miss_l1i_miss_mpki", "hit_frac").
		SetUnits(stats.UnitNone, stats.UnitMPKI, stats.UnitMPKI, stats.UnitFrac)
	rep := &Report{ID: "fig15", Title: "BTB misses with L1-I hit vs miss (8K BTB)", Table: tb}
	for i, b := range benches {
		res := results[i]
		hit := stats.MPKI(res.FE.BTBMissL1IHit, res.Instructions)
		miss := res.BTBMissMPKI - hit
		tb.AddCells(cStr(b), cF2(hit), cF2(miss), cPct(res.BTBMissL1IHitFrac))
	}
	return o.stamp(rep, r, benches), nil
}

// Fig16 reproduces Figure 16: BTB miss MPKI for the baseline, for a BTB
// grown by the SBB budget, and for Skia (misses still unserved after
// the SBB).
func Fig16(o Options) (*Report, error) {
	r := o.runner()
	benches := o.benchmarks()
	sbbBits := core.DefaultSBBConfig().StorageBits()
	augmented := cpu.DefaultConfig()
	augmented.Frontend.BTB = sim.AugmentedBTB(augmented.Frontend.BTB, sbbBits)

	var specs []sim.RunSpec
	for _, b := range benches {
		specs = append(specs, baselineSpec(b, o))
	}
	for _, b := range benches {
		specs = append(specs, sim.RunSpec{Benchmark: b, Config: o.config(augmented),
			Warmup: o.Warmup, Measure: o.Measure, Label: "btb+state"})
	}
	for _, b := range benches {
		specs = append(specs, skiaSpec(b, o))
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	n := len(benches)
	tb := stats.NewTable("benchmark", "baseline_mpki", "btb+state_mpki", "skia_effective_mpki").
		SetUnits(stats.UnitNone, stats.UnitMPKI, stats.UnitMPKI, stats.UnitMPKI)
	rep := &Report{ID: "fig16", Title: "BTB miss MPKI: baseline vs equal-state BTB vs Skia", Table: tb}
	var redState, redSkia []float64
	for i, b := range benches {
		base := results[i].BTBMissMPKI
		state := results[i+n].BTBMissMPKI
		skia := results[i+2*n].EffectiveMissMPKI
		tb.AddCells(cStr(b), cF2(base), cF2(state), cF2(skia))
		if base > 0 {
			redState = append(redState, (base-state)/base)
			redSkia = append(redSkia, (base-skia)/base)
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"mean reduction: btb+state %s, skia %s (paper: Skia reduces far more than equal-state BTB)",
		pct(stats.Mean(redState)), pct(stats.Mean(redSkia))))
	return o.stamp(rep, r, benches), nil
}

// Fig17Splits are the U-SBB budget fractions swept by the Figure 17
// top chart.
var Fig17Splits = []float64{0, 0.25, 0.5, 0.62, 0.75, 1.0}

// Fig17Scales are the total-budget multipliers swept by the Figure 17
// bottom chart.
var Fig17Scales = []float64{0.25, 0.5, 1, 2, 4}

// Fig17 reproduces Figure 17: top, performance across U/R budget splits
// at the constant 12.25KB-class budget; bottom, scaling the total
// budget at the paper's 768:2024 entry ratio.
func Fig17(o Options) (*Report, error) {
	r := o.runner()
	benches := o.benchmarks()
	def := core.DefaultSBBConfig()
	budget := def.StorageBits()
	const uBits, rBits = 82, 19

	mkSplit := func(frac float64) core.SBBConfig {
		cfg := def
		cfg.UEntries = int(frac*float64(budget)/uBits) / cfg.UWays * cfg.UWays
		cfg.REntries = int((1-frac)*float64(budget)/rBits) / cfg.RWays * cfg.RWays
		return cfg
	}
	mkScale := func(scale float64) core.SBBConfig {
		cfg := def
		cfg.UEntries = int(scale*float64(def.UEntries)) / cfg.UWays * cfg.UWays
		cfg.REntries = int(scale*float64(def.REntries)) / cfg.RWays * cfg.RWays
		return cfg
	}

	var specs []sim.RunSpec
	for _, b := range benches {
		specs = append(specs, baselineSpec(b, o))
	}
	for _, frac := range Fig17Splits {
		cfg := cpu.SkiaConfig()
		cfg.Frontend.SBB = mkSplit(frac)
		for _, b := range benches {
			specs = append(specs, sim.RunSpec{Benchmark: b, Config: o.config(cfg),
				Warmup: o.Warmup, Measure: o.Measure, Label: fmt.Sprintf("split %.2f", frac)})
		}
	}
	for _, scale := range Fig17Scales {
		cfg := cpu.SkiaConfig()
		cfg.Frontend.SBB = mkScale(scale)
		for _, b := range benches {
			specs = append(specs, sim.RunSpec{Benchmark: b, Config: o.config(cfg),
				Warmup: o.Warmup, Measure: o.Measure, Label: fmt.Sprintf("scale %.2f", scale)})
		}
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	n := len(benches)
	baseIPC := make([]float64, n)
	for i := range benches {
		baseIPC[i] = results[i].IPC
	}
	idx := n
	take := func() []float64 {
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			out[i] = results[idx].IPC
			idx++
		}
		return out
	}

	tb := stats.NewTable("sweep", "config", "u_entries", "r_entries", "size_kb", "geomean_speedup").
		SetUnits(stats.UnitNone, stats.UnitNone, stats.UnitCount, stats.UnitCount,
			stats.UnitKB, stats.UnitSpeedup)
	rep := &Report{ID: "fig17", Title: "SBB sensitivity: U/R split at fixed budget; total-size scaling", Table: tb}
	var bestSplit float64
	var bestSplitGain = math.Inf(-1)
	for _, frac := range Fig17Splits {
		cfg := mkSplit(frac)
		g := stats.GeomeanSpeedup(take(), baseIPC)
		if g > bestSplitGain {
			bestSplitGain, bestSplit = g, frac
		}
		tb.AddCells(cStr("split"), cStr(fmt.Sprintf("U=%.0f%%", frac*100)),
			cInt(cfg.UEntries), cInt(cfg.REntries),
			cF2(float64(cfg.StorageBits())/8/1024), cPct(g))
	}
	for _, scale := range Fig17Scales {
		cfg := mkScale(scale)
		g := stats.GeomeanSpeedup(take(), baseIPC)
		tb.AddCells(cStr("scale"), cStr(fmt.Sprintf("%.2fx", scale)),
			cInt(cfg.UEntries), cInt(cfg.REntries),
			cF2(float64(cfg.StorageBits())/8/1024), cPct(g))
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"best split keeps both buffers populated (paper picks 768U/2024R); measured best U fraction %.0f%%",
		bestSplit*100))
	return o.stamp(rep, r, benches), nil
}

// Fig18 reproduces Figure 18: per-benchmark reduction in decoder idle
// cycles with Skia versus the baseline.
func Fig18(o Options) (*Report, error) {
	r := o.runner()
	benches := o.benchmarks()
	var specs []sim.RunSpec
	for _, b := range benches {
		specs = append(specs, baselineSpec(b, o))
	}
	for _, b := range benches {
		specs = append(specs, skiaSpec(b, o))
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	n := len(benches)
	tb := stats.NewTable("benchmark", "baseline_idle_frac", "skia_idle_frac", "idle_reduction").
		SetUnits(stats.UnitNone, stats.UnitFrac, stats.UnitFrac, stats.UnitSpeedup)
	rep := &Report{ID: "fig18", Title: "Decoder idle-cycle reduction with Skia (8K BTB)", Table: tb}
	var reds []float64
	for i, b := range benches {
		base := results[i]
		skia := results[i+n]
		// Compare idle cycles normalized per retired instruction so
		// the total-cycle change does not distort the comparison.
		bi := float64(base.FE.DecodeIdleCycles) / float64(base.Instructions)
		si := float64(skia.FE.DecodeIdleCycles) / float64(skia.Instructions)
		red := 0.0
		if bi > 0 {
			red = (bi - si) / bi
		}
		reds = append(reds, red)
		tb.AddCells(cStr(b), cF3(base.DecodeIdleFrac), cF3(skia.DecodeIdleFrac), cPct(red))
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"mean idle reduction %s; paper: voter and sibench show the largest reductions",
		pct(stats.Mean(reds))))
	return o.stamp(rep, r, benches), nil
}
