package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table1 renders the processor configuration (paper Table 1) as
// actually instantiated by this simulator.
func Table1() *Report {
	cfg := cpu.SkiaConfig()
	fe := cfg.Frontend
	tb := stats.NewTable("field", "value")
	add := func(k, v string) { tb.AddRow(k, v) }
	add("ISA", "VLX (synthetic x86-like, 1-15 byte instructions)")
	add("L1-I cache", fmt.Sprintf("%dKB (%d-way, 64B lines)", fe.L1ISize/1024, fe.L1IWays))
	add("Cond. predictor", fmt.Sprintf("TAGE-SC-L, %d tagged tables, %.1fKB",
		fe.TAGE.NumTables, float64(fe.TAGE.StorageBits())/8/1024))
	add("Indirect predictor", fmt.Sprintf("ITTAGE, %d tagged tables, %.1fKB",
		fe.ITTAGE.NumTables, float64(fe.ITTAGE.StorageBits())/8/1024))
	add("BTB", fmt.Sprintf("%d entries, %d-way, %.1fKB",
		fe.BTB.Entries, fe.BTB.Ways, float64(fe.BTB.StorageBits())/8/1024))
	add("U-SBB", fmt.Sprintf("%d entries, %d-way", fe.SBB.UEntries, fe.SBB.UWays))
	add("R-SBB", fmt.Sprintf("%d entries, %d-way", fe.SBB.REntries, fe.SBB.RWays))
	add("SBB total", fmt.Sprintf("%.2fKB (paper: 12.25KB)", float64(fe.SBB.StorageBits())/8/1024))
	add("FTQ", fmt.Sprintf("%d entries", fe.FTQDepth))
	add("Decode / Retire", fmt.Sprintf("%d / %d wide", fe.DecodeWidth, cfg.RetireWidth))
	add("ROB", fmt.Sprintf("%d entries", cfg.ROBSize))
	add("RAS", fmt.Sprintf("%d entries", fe.RASDepth))
	add("Decode re-steer", fmt.Sprintf("%d cycles", fe.DecodeResteerPenalty))
	add("Execute re-steer", fmt.Sprintf("%d cycles", fe.ExecResteerPenalty))
	add("L1-I miss latency", fmt.Sprintf("%d cycles", fe.L1IMissLatency))
	return &Report{ID: "table1", Title: "Processor configuration", Table: tb}
}

// Table2 renders the benchmark registry (paper Table 2) together with
// each model's structural parameters.
func Table2() (*Report, error) {
	tb := stats.NewTable("benchmark", "suite", "hot_funcs", "cold_funcs", "cold_mix", "layout").
		SetUnits(stats.UnitNone, stats.UnitNone, stats.UnitCount, stats.UnitCount,
			stats.UnitNone, stats.UnitNone)
	for _, name := range workload.SuiteNames() {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		mix := fmt.Sprintf("%.0f%% call", p.PColdViaCall*100)
		layout := "interleaved"
		if p.BoltLayout {
			layout = "bolt"
		}
		tb.AddCells(cStr(p.Name), cStr(p.Suite), cInt(p.HotFuncs),
			cInt(p.ColdFuncs), cStr(mix), cStr(layout))
	}
	return &Report{ID: "table2", Title: "Benchmark suite", Table: tb}, nil
}

// Bolt reproduces Section 6.1.4: Skia's gain on pre-BOLT verilator
// versus the bolted binary (paper: 10.27% vs the bolted ~5%-class
// gain), showing the technique is robust to software layout
// optimization.
func Bolt(o Options) (*Report, error) {
	r := o.runner()
	variants := []string{"verilator", "verilator-bolted"}
	var specs []sim.RunSpec
	for _, b := range variants {
		specs = append(specs, baselineSpec(b, o), skiaSpec(b, o))
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("variant", "baseline_ipc", "skia_ipc", "speedup", "baseline_btb_mpki").
		SetUnits(stats.UnitNone, stats.UnitIPC, stats.UnitIPC, stats.UnitSpeedup, stats.UnitMPKI)
	rep := &Report{ID: "bolt", Title: "Skia on pre-BOLT vs bolted verilator", Table: tb}
	var gains []float64
	for i, b := range variants {
		base, skia := results[2*i], results[2*i+1]
		gain := stats.Speedup(skia.IPC, base.IPC)
		gains = append(gains, gain)
		tb.AddCells(cStr(b), cF3(base.IPC), cF3(skia.IPC), cPct(gain), cF2(base.BTBMissMPKI))
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"paper: pre-BOLT gains (10.27%%) exceed bolted gains; measured %s vs %s",
		pct(gains[0]), pct(gains[1])))
	return o.stamp(rep, r, variants), nil
}

// AblationIndexPolicy sweeps the Head decoder's start-index policy
// (paper Section 3.2.2: First beats Zero and Merge).
func AblationIndexPolicy(o Options) (*Report, error) {
	r := o.runner()
	benches := o.benchmarks()
	policies := []core.IndexPolicy{core.FirstIndex, core.ZeroIndex, core.MergeIndex}
	var specs []sim.RunSpec
	for _, b := range benches {
		specs = append(specs, baselineSpec(b, o))
	}
	for _, pol := range policies {
		cfg := cpu.SkiaConfig()
		cfg.Frontend.SBD.Policy = pol
		for _, b := range benches {
			specs = append(specs, sim.RunSpec{Benchmark: b, Config: o.config(cfg),
				Warmup: o.Warmup, Measure: o.Measure, Label: pol.String()})
		}
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	n := len(benches)
	baseIPC := make([]float64, n)
	for i := range benches {
		baseIPC[i] = results[i].IPC
	}
	tb := stats.NewTable("policy", "geomean_speedup", "bogus_inserts").
		SetUnits(stats.UnitNone, stats.UnitSpeedup, stats.UnitCount)
	rep := &Report{ID: "ablation-index", Title: "Head decode index policy (First/Zero/Merge)", Table: tb}
	idx := n
	for _, pol := range policies {
		ipcs := make([]float64, n)
		var bogus uint64
		for i := 0; i < n; i++ {
			ipcs[i] = results[idx].IPC
			bogus += results[idx].FE.SBDBogusInserts
			idx++
		}
		tb.AddCells(cStr(pol.String()), cPct(stats.GeomeanSpeedup(ipcs, baseIPC)), cInt(bogus))
	}
	return o.stamp(rep, r, benches), nil
}

// AblationPathCap sweeps the Head decoder's valid-path cap (paper
// uses 6).
func AblationPathCap(o Options, caps []int) (*Report, error) {
	if len(caps) == 0 {
		caps = []int{1, 2, 4, 6, 8, 12}
	}
	r := o.runner()
	benches := o.benchmarks()
	var specs []sim.RunSpec
	for _, b := range benches {
		specs = append(specs, baselineSpec(b, o))
	}
	for _, c := range caps {
		cfg := cpu.SkiaConfig()
		cfg.Frontend.SBD.MaxValidPaths = c
		for _, b := range benches {
			specs = append(specs, sim.RunSpec{Benchmark: b, Config: o.config(cfg),
				Warmup: o.Warmup, Measure: o.Measure, Label: fmt.Sprintf("cap%d", c)})
		}
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	n := len(benches)
	baseIPC := make([]float64, n)
	for i := range benches {
		baseIPC[i] = results[i].IPC
	}
	tb := stats.NewTable("max_valid_paths", "geomean_speedup", "head_discard_frac", "bogus_inserts").
		SetUnits(stats.UnitNone, stats.UnitSpeedup, stats.UnitFrac, stats.UnitCount)
	rep := &Report{ID: "ablation-pathcap", Title: "Head decode valid-path cap", Table: tb}
	idx := n
	for _, c := range caps {
		ipcs := make([]float64, n)
		var disc, regions, bogus uint64
		for i := 0; i < n; i++ {
			ipcs[i] = results[idx].IPC
			disc += results[idx].SBD.HeadDiscarded
			regions += results[idx].SBD.HeadRegions
			bogus += results[idx].FE.SBDBogusInserts
			idx++
		}
		frac := 0.0
		if regions > 0 {
			frac = float64(disc) / float64(regions)
		}
		tb.AddCells(cStr(fmt.Sprintf("%d", c)), cPct(stats.GeomeanSpeedup(ipcs, baseIPC)),
			cPct(frac), cInt(bogus))
	}
	return o.stamp(rep, r, benches), nil
}

// AblationReplacement compares the SBB's retired-first eviction
// (Section 4.3) with plain LRU, and the insert filter that skips
// BTB-resident branches.
func AblationReplacement(o Options) (*Report, error) {
	r := o.runner()
	benches := o.benchmarks()
	variants := []struct {
		name                 string
		retiredFirst, filter bool
	}{
		{"retired-first (paper)", true, false},
		{"plain LRU", false, false},
		{"retired-first + filter", true, true},
	}
	var specs []sim.RunSpec
	for _, b := range benches {
		specs = append(specs, baselineSpec(b, o))
	}
	for _, v := range variants {
		cfg := cpu.SkiaConfig()
		cfg.Frontend.SBB.RetiredFirstEviction = v.retiredFirst
		cfg.Frontend.SBB.FilterBTBResident = v.filter
		for _, b := range benches {
			specs = append(specs, sim.RunSpec{Benchmark: b, Config: o.config(cfg),
				Warmup: o.Warmup, Measure: o.Measure, Label: v.name})
		}
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	n := len(benches)
	baseIPC := make([]float64, n)
	for i := range benches {
		baseIPC[i] = results[i].IPC
	}
	tb := stats.NewTable("variant", "geomean_speedup", "sbb_covered", "bogus_used").
		SetUnits(stats.UnitNone, stats.UnitSpeedup, stats.UnitCount, stats.UnitCount)
	rep := &Report{ID: "ablation-replacement", Title: "SBB replacement and insert-filter ablations", Table: tb}
	idx := n
	for _, v := range variants {
		ipcs := make([]float64, n)
		var cov, bogus uint64
		for i := 0; i < n; i++ {
			cov += results[idx].FE.SBBCoveredTotal()
			bogus += results[idx].FE.BogusSBBUsed
			ipcs[i] = results[idx].IPC
			idx++
		}
		tb.AddCells(cStr(v.name), cPct(stats.GeomeanSpeedup(ipcs, baseIPC)),
			cInt(cov), cInt(bogus))
	}
	return o.stamp(rep, r, benches), nil
}

// AblationInsertIntoBTB compares the paper's parallel SBB against
// inserting shadow branches straight into the BTB (the design the
// paper rejects in Section 4.2).
func AblationInsertIntoBTB(o Options) (*Report, error) {
	r := o.runner()
	benches := o.benchmarks()
	sbbCfg := cpu.SkiaConfig()
	directCfg := cpu.SkiaConfig()
	directCfg.Frontend.SBDToBTB = true

	var specs []sim.RunSpec
	for _, b := range benches {
		specs = append(specs, baselineSpec(b, o))
	}
	for _, b := range benches {
		specs = append(specs, sim.RunSpec{Benchmark: b, Config: o.config(sbbCfg),
			Warmup: o.Warmup, Measure: o.Measure, Label: "sbb"})
	}
	for _, b := range benches {
		specs = append(specs, sim.RunSpec{Benchmark: b, Config: o.config(directCfg),
			Warmup: o.Warmup, Measure: o.Measure, Label: "direct-to-btb"})
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	n := len(benches)
	baseIPC := make([]float64, n)
	for i := range benches {
		baseIPC[i] = results[i].IPC
	}
	sbbIPC := make([]float64, n)
	dirIPC := make([]float64, n)
	var dirPhantoms uint64
	for i := 0; i < n; i++ {
		sbbIPC[i] = results[n+i].IPC
		dirIPC[i] = results[2*n+i].IPC
		dirPhantoms += results[2*n+i].FE.PhantomBranches
	}
	tb := stats.NewTable("design", "geomean_speedup", "phantom_branches").
		SetUnits(stats.UnitNone, stats.UnitSpeedup, stats.UnitCount)
	rep := &Report{ID: "ablation-sbdtobtb", Title: "Parallel SBB vs inserting shadow branches into the BTB", Table: tb}
	var sbbPhantoms uint64
	for i := 0; i < n; i++ {
		sbbPhantoms += results[n+i].FE.PhantomBranches
	}
	tb.AddCells(cStr("parallel SBB (paper)"), cPct(stats.GeomeanSpeedup(sbbIPC, baseIPC)), cInt(sbbPhantoms))
	tb.AddCells(cStr("direct to BTB"), cPct(stats.GeomeanSpeedup(dirIPC, baseIPC)), cInt(dirPhantoms))
	return o.stamp(rep, r, benches), nil
}

// AblationWrongPath disables wrong-path prefetching during execute
// re-steer windows by zeroing the window (resolution becomes
// instantaneous), quantifying how much of the loss FDIP's wrong-path
// pollution causes.
func AblationWrongPath(o Options) (*Report, error) {
	r := o.runner()
	benches := o.benchmarks()
	noWP := cpu.DefaultConfig()
	noWP.Frontend.ExecResteerPenalty = 1
	var specs []sim.RunSpec
	for _, b := range benches {
		specs = append(specs, baselineSpec(b, o))
	}
	for _, b := range benches {
		specs = append(specs, sim.RunSpec{Benchmark: b, Config: o.config(noWP),
			Warmup: o.Warmup, Measure: o.Measure, Label: "no-wrong-path"})
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	n := len(benches)
	tb := stats.NewTable("benchmark", "wrongpath_blocks_frac", "pollution_evicted", "ipc", "ipc_instant_resolve").
		SetUnits(stats.UnitNone, stats.UnitFrac, stats.UnitCount, stats.UnitIPC, stats.UnitIPC)
	rep := &Report{ID: "ablation-wrongpath", Title: "Wrong-path fetch volume and cost", Table: tb}
	for i, b := range benches {
		base := results[i]
		inst := results[n+i]
		tot := base.FE.Blocks + base.FE.WrongPathBlocks
		frac := 0.0
		if tot > 0 {
			frac = float64(base.FE.WrongPathBlocks) / float64(tot)
		}
		tb.AddCells(cStr(b), cPct(frac), cInt(base.L1I.PollutionEvicted),
			cF3(base.IPC), cF3(inst.IPC))
	}
	return o.stamp(rep, r, benches), nil
}

// ExtensionShadowConds evaluates the beyond-paper extension: letting
// the U-SBB also hold shadow direct conditionals (their targets are
// PC-relative, so the SBD can decode them; the paper leaves them out
// because they need a direction prediction at use time). Compares
// paper-Skia against extended Skia.
func ExtensionShadowConds(o Options) (*Report, error) {
	r := o.runner()
	benches := o.benchmarks()
	ext := cpu.SkiaConfig()
	ext.Frontend.SBD.IncludeConditionals = true

	var specs []sim.RunSpec
	for _, b := range benches {
		specs = append(specs, baselineSpec(b, o))
	}
	for _, b := range benches {
		specs = append(specs, skiaSpec(b, o))
	}
	for _, b := range benches {
		specs = append(specs, sim.RunSpec{Benchmark: b, Config: o.config(ext),
			Warmup: o.Warmup, Measure: o.Measure, Label: "skia+conds"})
	}
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	n := len(benches)
	baseIPC := make([]float64, n)
	skiaIPC := make([]float64, n)
	extIPC := make([]float64, n)
	var skiaCov, extCov, extPhantom uint64
	for i := 0; i < n; i++ {
		baseIPC[i] = results[i].IPC
		skiaIPC[i] = results[n+i].IPC
		extIPC[i] = results[2*n+i].IPC
		skiaCov += results[n+i].FE.SBBCoveredTotal()
		extCov += results[2*n+i].FE.SBBCoveredTotal()
		extPhantom += results[2*n+i].FE.PhantomBranches
	}
	tb := stats.NewTable("design", "geomean_speedup", "sbb_covered").
		SetUnits(stats.UnitNone, stats.UnitSpeedup, stats.UnitCount)
	rep := &Report{ID: "ext-conds", Title: "Extension: shadow conditionals in the U-SBB", Table: tb}
	tb.AddCells(cStr("skia (paper: U+R only)"), cPct(stats.GeomeanSpeedup(skiaIPC, baseIPC)), cInt(skiaCov))
	tb.AddCells(cStr("skia + shadow conds"), cPct(stats.GeomeanSpeedup(extIPC, baseIPC)), cInt(extCov))
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"extension phantoms: %d; conditionals compete for U-SBB capacity with the jumps and calls", extPhantom))
	return o.stamp(rep, r, benches), nil
}
