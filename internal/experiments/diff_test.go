package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestDecodeCacheDifferentialFig14 is the end-to-end guarantee behind
// the decode cache: it is a pure throughput optimization, so a full
// experiment harness must produce byte-identical JSON reports with the
// cache enabled and disabled. Fig14 exercises both shadow decoders
// (head-only, tail-only, combined) across two benchmarks, which makes
// it the densest consumer of cached decodes. Only Meta.Sim (wall-clock
// throughput counters) is normalized away before comparing.
func TestDecodeCacheDifferentialFig14(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Fig14 runs")
	}
	opts := Options{
		Warmup:     100_000,
		Measure:    300_000,
		Benchmarks: []string{"voter", "noop"},
	}

	render := func(o Options) []byte {
		t.Helper()
		rep, err := Fig14(o)
		if err != nil {
			t.Fatal(err)
		}
		rep.Meta.Sim = nil // wall-clock timings differ run to run
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	cached := opts
	fresh := opts
	fresh.NoDecodeCache = true

	jc := render(cached)
	jf := render(fresh)
	if !bytes.Equal(jc, jf) {
		t.Errorf("decode cache changed the report:\n  cached: %s\n  fresh:  %s", jc, jf)
	}
}
