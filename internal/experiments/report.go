package experiments

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// SchemaVersion identifies the JSON envelope format emitted by
// Report.MarshalJSON and consumed by cmd/skiacmp. Bump it on any
// incompatible change and teach DecodeReport the migration.
//
// Version history:
//
//	1 — initial envelope: id/title/meta/table/notes.
//	2 — adds the optional `intervals` section (per-spec interval
//	    metrics summaries). Purely additive: v1 reports decode as v2
//	    reports with no intervals.
//	3 — adds the optional `attribution` section (per-spec BTB-miss
//	    cause taxonomy, stall accounts, offenders, distributions).
//	    Purely additive: v1/v2 reports decode as v3 reports with no
//	    attribution.
//	4 — adds meta.interval_instructions: the effective interval-metrics
//	    collection window, recorded so a report's simulation-affecting
//	    spec (internal/store.SpecOfReport) is fully recoverable from
//	    the envelope alone. Purely additive: older reports decode as
//	    v4 reports with a zero (collection off) interval.
//	5 — adds the optional `sampling` section (per-spec sampled-
//	    simulation summaries: metric point estimates with 95%
//	    confidence intervals, interval/skip accounting) and the
//	    meta.sample_* fields recording the effective sample plan.
//	    Purely additive: older reports decode as v5 reports with no
//	    sampling (exact simulation).
const SchemaVersion = 5

// minSchemaVersion is the oldest envelope DecodeReport still reads.
const minSchemaVersion = 1

// BenchmarkRef names one workload in a run together with the
// generation seed that makes it bit-for-bit reproducible.
type BenchmarkRef struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
}

// RunMeta is the run-metadata envelope wrapped around every JSON
// report: enough provenance to reproduce the run (benchmarks and
// seeds, instruction windows, configuration labels, repo version) and
// enough instrumentation to track simulator throughput over time.
type RunMeta struct {
	// Benchmarks lists the workloads simulated, with their seeds.
	Benchmarks []BenchmarkRef `json:"benchmarks,omitempty"`
	// WarmupInstructions and MeasureInstructions are the effective
	// per-run windows (defaults resolved).
	WarmupInstructions  uint64 `json:"warmup_instructions,omitempty"`
	MeasureInstructions uint64 `json:"measure_instructions,omitempty"`
	// IntervalInstructions is the effective interval-metrics window
	// (Options.Interval): one interval row per this many retired
	// instructions, 0 when collection was off. Schema v4; recorded so
	// the run's simulation-affecting spec is recoverable from the
	// envelope (internal/store keys its archive on it).
	IntervalInstructions uint64 `json:"interval_instructions,omitempty"`
	// SampleIntervals, SampleIntervalInstructions,
	// SampleMicroWarmupInstructions, and SampleWarmWindowInstructions
	// are the effective sampled-simulation plan (Options.Sample,
	// defaults resolved): K detail intervals of this many instructions
	// each, preceded by this much detail re-warmup, with functional
	// warming bounded to the final warm-window instructions of each
	// skip (0 = the whole distance warms). All zero when the run was
	// exact. These change the simulated result, so they are part of
	// the recoverable spec (internal/store.SpecOfReport). Schema v5.
	SampleIntervals               int    `json:"sample_intervals,omitempty"`
	SampleIntervalInstructions    uint64 `json:"sample_interval_instructions,omitempty"`
	SampleMicroWarmupInstructions uint64 `json:"sample_micro_warmup_instructions,omitempty"`
	SampleWarmWindowInstructions  uint64 `json:"sample_warm_window_instructions,omitempty"`
	// SampleShards is the intra-run sharding width the sampled run fan
	// out over. Recorded for provenance only: shard count never
	// changes the result (sharded and serial runs are DeepEqual), so
	// it is not part of the spec. Schema v5.
	SampleShards int `json:"sample_shards,omitempty"`
	// ConfigLabels lists the distinct RunSpec labels simulated
	// (e.g. ["baseline","both","head","tail"]), in the runner's
	// sorted spec order.
	ConfigLabels []string `json:"config_labels,omitempty"`
	// GitDescribe is `git describe --always --dirty --tags` of the
	// tree that produced the report (filled by cmd/skiaexp).
	GitDescribe string `json:"git_describe,omitempty"`
	// GeneratedAt is the RFC 3339 wall-clock timestamp of the run
	// (filled by cmd/skiaexp).
	GeneratedAt string `json:"generated_at,omitempty"`
	// Sim carries the runner's timing and throughput counters.
	Sim *sim.RunnerStats `json:"sim,omitempty"`
}

// stamp fills the report's run-metadata envelope from the options, the
// benchmark list actually simulated, and the runner that executed the
// specs (nil for static tables). It returns the report for use in
// return statements.
func (o Options) stamp(rep *Report, r *sim.Runner, benches []string) *Report {
	warm, meas := o.Warmup, o.Measure
	if warm == 0 {
		warm = sim.DefaultWarmup
	}
	if meas == 0 {
		meas = sim.DefaultMeasure
	}
	m := RunMeta{WarmupInstructions: warm, MeasureInstructions: meas,
		IntervalInstructions: o.Interval}
	if o.Sample != nil {
		p := o.Sample.Normalized(meas)
		m.SampleIntervals = p.Intervals
		m.SampleIntervalInstructions = p.IntervalInsts
		m.SampleMicroWarmupInstructions = p.MicroWarmup
		m.SampleWarmWindowInstructions = p.WarmWindow
		m.SampleShards = p.Shards
	}
	for _, b := range benches {
		ref := BenchmarkRef{Name: b}
		if p, err := workload.ByName(b); err == nil {
			ref.Seed = p.Seed
		}
		m.Benchmarks = append(m.Benchmarks, ref)
	}
	if r != nil {
		st := r.Stats()
		m.Sim = &st
		seen := make(map[string]bool)
		for _, sp := range st.Specs {
			if !seen[sp.Label] {
				seen[sp.Label] = true
				m.ConfigLabels = append(m.ConfigLabels, sp.Label)
			}
		}
		rep.Intervals = r.IntervalSummaries()
		rep.Attribution = r.AttributionSummaries()
		rep.Sampling = r.SamplingSummaries()
	}
	rep.Meta = m
	return rep
}

// reportJSON is the on-disk envelope. Field order here is the field
// order in the emitted JSON; EXPERIMENTS.md ("Results schema")
// documents it field by field.
type reportJSON struct {
	SchemaVersion int                   `json:"schema_version"`
	ID            string                `json:"id"`
	Title         string                `json:"title"`
	Meta          RunMeta               `json:"meta"`
	Table         *stats.Table          `json:"table"`
	Notes         []string              `json:"notes,omitempty"`
	Intervals     []sim.SpecIntervals   `json:"intervals,omitempty"`
	Attribution   []sim.SpecAttribution `json:"attribution,omitempty"`
	Sampling      []sim.SpecSampling    `json:"sampling,omitempty"`
}

// MarshalJSON wraps the report in the versioned run-metadata envelope.
func (r *Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(reportJSON{
		SchemaVersion: SchemaVersion,
		ID:            r.ID,
		Title:         r.Title,
		Meta:          r.Meta,
		Table:         r.Table,
		Notes:         r.Notes,
		Intervals:     r.Intervals,
		Attribution:   r.Attribution,
		Sampling:      r.Sampling,
	})
}

// UnmarshalJSON is the inverse of MarshalJSON. It reads every schema
// version back to minSchemaVersion — older envelopes simply lack the
// later optional sections — and rejects unknown future versions rather
// than silently misreading them. Unknown fields are ignored, so newer
// additive envelopes still diff against reports this build wrote.
func (r *Report) UnmarshalJSON(b []byte) error {
	var j reportJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	if j.SchemaVersion < minSchemaVersion || j.SchemaVersion > SchemaVersion {
		return fmt.Errorf("experiments: report schema version %d, this build reads %d..%d",
			j.SchemaVersion, minSchemaVersion, SchemaVersion)
	}
	if j.Table == nil {
		return fmt.Errorf("experiments: report %q has no table", j.ID)
	}
	*r = Report{ID: j.ID, Title: j.Title, Table: j.Table, Notes: j.Notes, Meta: j.Meta,
		Intervals: j.Intervals, Attribution: j.Attribution, Sampling: j.Sampling}
	return nil
}

// DecodeReport parses one JSON report produced by Report.MarshalJSON
// (for example a skiaexp -json -out file).
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}
