package experiments

import (
	"fmt"
	"sort"
)

// Harness regenerates one paper artifact under the given options.
type Harness func(Options) (*Report, error)

// Catalog returns the full experiment registry, one Harness per
// reproducible artifact, keyed by the IDs cmd/skiaexp accepts and the
// sweep service (internal/serve) schedules. The map is rebuilt per
// call so callers may mutate their copy.
func Catalog() map[string]Harness {
	return map[string]Harness{
		"fig1":  func(o Options) (*Report, error) { return Fig1(o, nil) },
		"fig3":  func(o Options) (*Report, error) { return Fig3(o, nil) },
		"fig6":  Fig6,
		"fig13": Fig13,
		"fig14": Fig14,
		"fig15": Fig15,
		"fig16": Fig16,
		"fig17": Fig17,
		"fig18": Fig18,
		"bolt":  Bolt,
		"table1": func(Options) (*Report, error) {
			return Table1(), nil
		},
		"table2": func(Options) (*Report, error) {
			return Table2()
		},
		"ablation-index": AblationIndexPolicy,
		"ablation-pathcap": func(o Options) (*Report, error) {
			return AblationPathCap(o, nil)
		},
		"ablation-replacement": AblationReplacement,
		"ablation-sbdtobtb":    AblationInsertIntoBTB,
		"ablation-wrongpath":   AblationWrongPath,
		"ext-conds":            ExtensionShadowConds,
	}
}

// Order lists the catalog in presentation order (skiaexp -exp all).
var Order = []string{
	"table1", "table2",
	"fig1", "fig3", "fig6", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
	"bolt",
	"ablation-index", "ablation-pathcap", "ablation-replacement",
	"ablation-sbdtobtb", "ablation-wrongpath",
	"ext-conds",
}

// IDs returns the catalog keys sorted alphabetically.
func IDs() []string {
	cat := Catalog()
	ids := make([]string, 0, len(cat))
	for id := range cat {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run looks up id in the catalog and executes its harness. Unknown
// IDs return an error naming the available set.
func Run(id string, o Options) (*Report, error) {
	fn, ok := Catalog()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return fn(o)
}
