// Package experiments contains one harness per table and figure in the
// paper's evaluation (Section 6), plus the ablations DESIGN.md calls
// out. Each harness assembles RunSpecs, executes them through a
// sim.Runner, and renders the same rows/series the paper reports.
// Absolute numbers differ from the paper's gem5 testbed; the harnesses
// exist to reproduce the shapes: who wins, by roughly what factor, and
// where the crossovers fall.
//
// Every Report renders both as aligned plain text (Report.String) and
// as machine-readable JSON (Report.MarshalJSON): a versioned envelope
// carrying run metadata — benchmarks and seeds, instruction windows,
// config labels, git version, simulator throughput — around a typed
// table whose numeric cells keep their float values alongside the
// rendered text. cmd/skiaexp writes these files with -json/-out and
// cmd/skiacmp diffs two result sets as a regression gate. The schema
// is documented field by field in EXPERIMENTS.md ("Results schema").
//
// Catalog exposes every harness by ID for driving experiments by
// name: cmd/skiaexp iterates it for batch runs, and internal/serve
// (cmd/skiaserve) serves the same catalog over an HTTP job API whose
// specs reuse this package's envelope vocabulary (see API.md).
package experiments

import (
	"context"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options tunes an experiment run.
type Options struct {
	// Warmup and Measure override the per-run instruction windows
	// (zero = sim defaults).
	Warmup, Measure uint64
	// Benchmarks overrides the benchmark list (default: the paper's
	// 16-benchmark suite).
	Benchmarks []string
	// Workers bounds simulation concurrency (0 = GOMAXPROCS).
	Workers int
	// Interval, when nonzero, collects interval metrics (one row per
	// this many retired instructions) on every run; per-spec summaries
	// are embedded in the report envelope's `intervals` section.
	Interval uint64
	// Attrib enables miss attribution on every run; per-spec summaries
	// are embedded in the report envelope's `attribution` section.
	Attrib bool
	// NoDecodeCache disables the simulator-side shadow-decode
	// memoization (see frontend.Config.NoDecodeCache) on every run.
	// Reports are identical either way — the flag exists for
	// differential testing and performance comparison.
	NoDecodeCache bool
	// Sample, when non-nil, switches every run to sampled simulation
	// (see sim.SamplePlan): K detail intervals spliced evenly across
	// the measurement window, skipped-over stretches covered by
	// functionally-warmed fast-forward. Every headline metric gains a
	// 95% confidence interval, embedded in the report envelope's
	// `sampling` section. Table cells then hold sampled estimates, not
	// exact counts.
	Sample *sim.SamplePlan
	// Checkpoint enables warmup checkpointing: specs sharing a
	// (benchmark, warmup, config) prefix pay detail warmup once and
	// continue from clones of the warmed core. Bit-identical results,
	// less wall-clock.
	Checkpoint bool
	// Checkpoints, when non-nil (with Checkpoint set), is the warmed-
	// master store runs draw from. Passing the same cache to several
	// harness calls shares warmups across them — e.g. an exact
	// reference sweep followed by a sampled sweep of the same figure
	// pays each (benchmark, config, warmup) cell once. nil keeps the
	// store private to this call.
	Checkpoints *sim.CheckpointCache
	// SampleEcho makes exact (non-sampled) runs publish a CI-free
	// sampling summary row too, so an exact reference report carries
	// the values a sampled report's confidence intervals are gated
	// against (skiacmp -sample-ci).
	SampleEcho bool
	// Context, when non-nil, bounds every simulation the harness runs:
	// cancellation or deadline expiry aborts in-flight runs at the next
	// instruction chunk and the harness returns an error wrapping
	// ctx.Err(). nil means no bound. The sweep service
	// (internal/serve) sets this per job.
	Context context.Context
	// Progress, when non-nil, receives cumulative live progress from
	// the harness's runner (see sim.Runner.OnProgress): instructions
	// retired so far and the planned total, published at every
	// instruction-chunk boundary. Called concurrently from simulation
	// worker goroutines. The sweep service sets this per job to expose
	// progress, simulated MIPS, and ETA over the job API.
	Progress func(done, planned uint64)
}

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return workload.SuiteNames()
}

func (o Options) runner() *sim.Runner {
	r := sim.NewRunner()
	r.Workers = o.Workers
	r.Interval = o.Interval
	r.Attrib = o.Attrib
	r.Sample = o.Sample
	r.Checkpoint = o.Checkpoint
	r.Checkpoints = o.Checkpoints
	r.SampleEcho = o.SampleEcho
	r.BaseContext = o.Context
	r.OnProgress = o.Progress
	return r
}

// Report is a rendered experiment result.
type Report struct {
	// ID is the paper artifact this regenerates (e.g. "fig14").
	ID string
	// Title describes the experiment.
	Title string
	// Table holds the rendered rows.
	Table *stats.Table
	// Notes carries shape checks and caveats.
	Notes []string
	// Meta is the run-metadata envelope serialized with the JSON
	// form; harnesses fill it via Options.stamp and cmd/skiaexp adds
	// the git version and timestamp.
	Meta RunMeta
	// Intervals holds one interval-metrics summary per simulated spec
	// when the run collected interval timeseries (Options.Interval);
	// nil otherwise. Serialized as the envelope's optional `intervals`
	// section (schema v2).
	Intervals []sim.SpecIntervals
	// Attribution holds one miss-attribution summary per simulated
	// spec when the run enabled it (Options.Attrib); nil otherwise.
	// Serialized as the envelope's optional `attribution` section
	// (schema v3).
	Attribution []sim.SpecAttribution
	// Sampling holds one sampled-simulation summary per simulated spec
	// when the run sampled (Options.Sample) or echoed exact values
	// (Options.SampleEcho); nil otherwise. Serialized as the
	// envelope's optional `sampling` section (schema v5).
	Sampling []sim.SpecSampling
}

// String renders the report.
func (r *Report) String() string {
	s := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Table)
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// config applies run-wide Options toggles to a core configuration.
// Every spec builder routes its config through here so switches like
// NoDecodeCache reach ad-hoc ablation configs too.
func (o Options) config(c cpu.Config) cpu.Config {
	c.Frontend.NoDecodeCache = o.NoDecodeCache
	return c
}

// baselineSpec builds the paper's Table 1 baseline spec for a
// benchmark.
func baselineSpec(bench string, o Options) sim.RunSpec {
	return sim.RunSpec{
		Benchmark: bench,
		Config:    o.config(cpu.DefaultConfig()),
		Warmup:    o.Warmup,
		Measure:   o.Measure,
		Label:     "baseline",
	}
}

// skiaSpec builds the default Skia spec for a benchmark.
func skiaSpec(bench string, o Options) sim.RunSpec {
	return sim.RunSpec{
		Benchmark: bench,
		Config:    o.config(cpu.SkiaConfig()),
		Warmup:    o.Warmup,
		Measure:   o.Measure,
		Label:     "skia",
	}
}

// pct formats a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

// f3 formats with three decimals.
func f3(f float64) string { return fmt.Sprintf("%.3f", f) }

// f2 formats with two decimals.
func f2(f float64) string { return fmt.Sprintf("%.2f", f) }

// Typed-cell constructors: each keeps the exact rendering the plain
// text tables have always used while preserving the numeric value for
// the JSON form.

// cStr builds a label cell.
func cStr(s string) stats.Cell { return stats.Str(s) }

// cPct builds a numeric cell holding a fraction, rendered as a percent.
func cPct(f float64) stats.Cell { return stats.Num(f, pct(f)) }

// cF3 and cF2 build numeric cells with three/two-decimal rendering.
func cF3(f float64) stats.Cell { return stats.Num(f, f3(f)) }
func cF2(f float64) stats.Cell { return stats.Num(f, f2(f)) }

// cInt builds a numeric cell from an integer count.
func cInt[T int | int64 | uint64](n T) stats.Cell {
	return stats.Num(float64(n), fmt.Sprint(n))
}
