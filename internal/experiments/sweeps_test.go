package experiments

import (
	"strings"
	"testing"
)

// microOpts are the absolute minimum windows: these tests verify
// harness plumbing and report structure, not statistical quality.
func microOpts() Options {
	return Options{
		Warmup:     50_000,
		Measure:    150_000,
		Benchmarks: []string{"voter"},
	}
}

func TestFig3Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rep, err := Fig3(microOpts(), []int{4096, 8192})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "fig3", 2)
	for _, col := range []string{"btb+state", "btb+sbb", "infinite"} {
		if !strings.Contains(rep.Table.String(), col) {
			t.Errorf("fig3 lacks column %s", col)
		}
	}
}

func TestFig16Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rep, err := Fig16(microOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "fig16", 1)
	if len(rep.Notes) == 0 {
		t.Error("fig16 should carry the reduction note")
	}
}

func TestFig17Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rep, err := Fig17(microOpts())
	if err != nil {
		t.Fatal(err)
	}
	// 6 splits + 5 scales.
	checkReport(t, rep, "fig17", 11)
	tbl := rep.Table.String()
	if !strings.Contains(tbl, "split") || !strings.Contains(tbl, "scale") {
		t.Error("fig17 missing sweep rows")
	}
	// The default-split row must cost ~12.25KB.
	if !strings.Contains(tbl, "12.") {
		t.Error("fig17 lacks the 12.25KB-class row")
	}
}

func TestAblationIndexPolicyStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rep, err := AblationIndexPolicy(microOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "ablation-index", 3)
	for _, pol := range []string{"first", "zero", "merge"} {
		if !strings.Contains(rep.Table.String(), pol) {
			t.Errorf("missing policy %s", pol)
		}
	}
}

func TestAblationPathCapStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rep, err := AblationPathCap(microOpts(), []int{1, 6})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "ablation-pathcap", 2)
}

func TestAblationReplacementStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rep, err := AblationReplacement(microOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "ablation-replacement", 3)
	if !strings.Contains(rep.Table.String(), "plain LRU") {
		t.Error("missing plain-LRU variant")
	}
}

func TestAblationInsertIntoBTBStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rep, err := AblationInsertIntoBTB(microOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "ablation-sbdtobtb", 2)
}

func TestAblationWrongPathStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rep, err := AblationWrongPath(microOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, "ablation-wrongpath", 1)
}
