// Package cache models set-associative caches with LRU replacement. The
// simulator uses it for the L1 instruction cache, the structure FDIP
// prefetches into and whose residency determines whether a BTB-missing
// branch is a shadow-decode opportunity (paper Figures 1 and 15).
//
// The model tracks, per line, whether it was brought in by a prefetch
// and whether it has been used by a demand access, so the harness can
// measure wrong-path pollution: prefetched lines evicted without ever
// being used.
package cache

import "fmt"

// Stats aggregates cache event counts.
type Stats struct {
	DemandHits     uint64
	DemandMisses   uint64
	PrefetchIssued uint64
	PrefetchHits   uint64 // prefetch found the line already resident
	PrefetchFills  uint64 // prefetch brought a new line in
	Evictions      uint64
	// PollutionEvicted counts prefetched lines evicted before any
	// demand use: wasted fills, typically from wrong-path prefetching.
	PollutionEvicted uint64
}

type line struct {
	tag        uint64
	valid      bool
	lru        uint64 // higher = more recently used
	prefetched bool   // filled by prefetch
	used       bool   // demand-accessed since fill
}

// Cache is a set-associative cache with true-LRU replacement. It is not
// safe for concurrent use.
type Cache struct {
	sets     [][]line
	ways     int
	lineBits uint
	setMask  uint64
	tick     uint64
	stats    Stats
}

// New builds a cache of sizeBytes capacity with the given associativity
// and line size. sizeBytes must be a positive multiple of ways*lineSize
// and the resulting set count must be a power of two.
func New(sizeBytes, ways, lineSize int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %d/%d/%d", sizeBytes, ways, lineSize)
	}
	if lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a power of two", lineSize)
	}
	nlines := sizeBytes / lineSize
	if nlines*lineSize != sizeBytes || nlines%ways != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible into %d-way sets of %dB lines", sizeBytes, ways, lineSize)
	}
	nsets := nlines / ways
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", nsets)
	}
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	c := &Cache{
		sets:     make([][]line, nsets),
		ways:     ways,
		lineBits: lineBits,
		setMask:  uint64(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, ways)
	}
	return c, nil
}

// MustNew is New for static configurations where an error is a bug.
func MustNew(sizeBytes, ways, lineSize int) *Cache {
	c, err := New(sizeBytes, ways, lineSize)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	l := addr >> c.lineBits
	return int(l & c.setMask), l >> uint(popcount(c.setMask))
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// find returns the way index of the line or -1.
func (c *Cache) find(set int, tag uint64) int {
	for w := range c.sets[set] {
		if c.sets[set][w].valid && c.sets[set][w].tag == tag {
			return w
		}
	}
	return -1
}

// victim returns the way to replace in set: an invalid way if any,
// otherwise the least recently used.
func (c *Cache) victim(set int) int {
	best, bestLRU := -1, ^uint64(0)
	for w := range c.sets[set] {
		if !c.sets[set][w].valid {
			return w
		}
		if c.sets[set][w].lru < bestLRU {
			best, bestLRU = w, c.sets[set][w].lru
		}
	}
	return best
}

// Demand performs a demand access to the line containing addr, filling
// on miss. It returns true on hit.
func (c *Cache) Demand(addr uint64) bool {
	c.tick++
	set, tag := c.index(addr)
	if w := c.find(set, tag); w >= 0 {
		ln := &c.sets[set][w]
		ln.lru = c.tick
		ln.used = true
		c.stats.DemandHits++
		return true
	}
	c.stats.DemandMisses++
	c.fill(set, tag, false)
	return false
}

// Prefetch brings the line containing addr into the cache without
// counting a demand event. It returns true if the line was already
// resident.
func (c *Cache) Prefetch(addr uint64) bool {
	c.tick++
	c.stats.PrefetchIssued++
	set, tag := c.index(addr)
	if w := c.find(set, tag); w >= 0 {
		c.sets[set][w].lru = c.tick
		c.stats.PrefetchHits++
		return true
	}
	c.stats.PrefetchFills++
	c.fill(set, tag, true)
	return false
}

// fill installs a line, evicting the LRU victim.
func (c *Cache) fill(set int, tag uint64, prefetched bool) {
	w := c.victim(set)
	ln := &c.sets[set][w]
	if ln.valid {
		c.stats.Evictions++
		if ln.prefetched && !ln.used {
			c.stats.PollutionEvicted++
		}
	}
	*ln = line{tag: tag, valid: true, lru: c.tick, prefetched: prefetched, used: !prefetched}
}

// Contains reports residency of the line containing addr without
// touching LRU state or statistics (a probe, not an access).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	return c.find(set, tag) >= 0
}

// Invalidate drops the line containing addr if present.
func (c *Cache) Invalidate(addr uint64) {
	set, tag := c.index(addr)
	if w := c.find(set, tag); w >= 0 {
		c.sets[set][w] = line{}
	}
}

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics, keeping cache contents (used at the
// warmup/measurement boundary).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }
