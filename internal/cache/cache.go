// Package cache models set-associative caches with LRU replacement. The
// simulator uses it for the L1 instruction cache, the structure FDIP
// prefetches into and whose residency determines whether a BTB-missing
// branch is a shadow-decode opportunity (paper Figures 1 and 15).
//
// The model tracks, per line, whether it was brought in by a prefetch
// and whether it has been used by a demand access, so the harness can
// measure wrong-path pollution: prefetched lines evicted without ever
// being used.
package cache

import "fmt"

// Stats aggregates cache event counts.
type Stats struct {
	DemandHits     uint64
	DemandMisses   uint64
	PrefetchIssued uint64
	PrefetchHits   uint64 // prefetch found the line already resident
	PrefetchFills  uint64 // prefetch brought a new line in
	Evictions      uint64
	// PollutionEvicted counts prefetched lines evicted before any
	// demand use: wasted fills, typically from wrong-path prefetching.
	PollutionEvicted uint64
}

type line struct {
	tag        uint64
	valid      bool
	lru        uint64 // higher = more recently used
	prefetched bool   // filled by prefetch
	used       bool   // demand-accessed since fill
}

// Cache is a set-associative cache with true-LRU replacement. It is not
// safe for concurrent use.
type Cache struct {
	sets     [][]line
	ways     int
	lineBits uint
	setBits  uint
	setMask  uint64
	tick     uint64
	stats    Stats

	// OnEvict, when non-nil, observes every line leaving the cache —
	// capacity evictions and explicit invalidations — with the line's
	// base address. The front end uses it to drop the line's memoized
	// shadow decodes; nil costs one comparison per eviction.
	OnEvict func(lineAddr uint64)
}

// New builds a cache of sizeBytes capacity with the given associativity
// and line size. sizeBytes must be a positive multiple of ways*lineSize
// and the resulting set count must be a power of two.
func New(sizeBytes, ways, lineSize int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %d/%d/%d", sizeBytes, ways, lineSize)
	}
	if lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a power of two", lineSize)
	}
	nlines := sizeBytes / lineSize
	if nlines*lineSize != sizeBytes || nlines%ways != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible into %d-way sets of %dB lines", sizeBytes, ways, lineSize)
	}
	nsets := nlines / ways
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", nsets)
	}
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	setBits := uint(0)
	for 1<<setBits < nsets {
		setBits++
	}
	c := &Cache{
		sets:     make([][]line, nsets),
		ways:     ways,
		lineBits: lineBits,
		setBits:  setBits,
		setMask:  uint64(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, ways)
	}
	return c, nil
}

// MustNew is New for static configurations where an error is a bug.
func MustNew(sizeBytes, ways, lineSize int) *Cache {
	c, err := New(sizeBytes, ways, lineSize)
	if err != nil {
		panic(err)
	}
	return c
}

// Clone returns an independent deep copy of the cache: same geometry,
// same resident lines and LRU state, same statistics. The OnEvict hook
// is deliberately NOT copied — it is a closure over the original
// owner's structures; whoever owns the clone must re-wire it.
func (c *Cache) Clone() *Cache {
	n := &Cache{
		ways:     c.ways,
		lineBits: c.lineBits,
		setBits:  c.setBits,
		setMask:  c.setMask,
		tick:     c.tick,
		stats:    c.stats,
		sets:     make([][]line, len(c.sets)),
	}
	for i, s := range c.sets {
		n.sets[i] = make([]line, len(s))
		copy(n.sets[i], s)
	}
	return n
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	l := addr >> c.lineBits
	return int(l & c.setMask), l >> c.setBits
}

// lineAddr reconstructs a resident line's base address from its set and
// tag, inverting index.
func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	return (tag<<c.setBits | uint64(set)) << c.lineBits
}

// find returns the way index of the line or -1.
func (c *Cache) find(set int, tag uint64) int {
	for w := range c.sets[set] {
		if c.sets[set][w].valid && c.sets[set][w].tag == tag {
			return w
		}
	}
	return -1
}

// victim returns the way to replace in set: an invalid way if any,
// otherwise the least recently used.
func (c *Cache) victim(set int) int {
	best, bestLRU := -1, ^uint64(0)
	for w := range c.sets[set] {
		if !c.sets[set][w].valid {
			return w
		}
		if c.sets[set][w].lru < bestLRU {
			best, bestLRU = w, c.sets[set][w].lru
		}
	}
	return best
}

// Demand performs a demand access to the line containing addr, filling
// on miss. It returns true on hit.
func (c *Cache) Demand(addr uint64) bool {
	c.tick++
	set, tag := c.index(addr)
	if w := c.find(set, tag); w >= 0 {
		ln := &c.sets[set][w]
		ln.lru = c.tick
		ln.used = true
		c.stats.DemandHits++
		return true
	}
	c.stats.DemandMisses++
	c.fill(set, tag, false)
	return false
}

// Prefetch brings the line containing addr into the cache without
// counting a demand event. It returns true if the line was already
// resident.
func (c *Cache) Prefetch(addr uint64) bool {
	c.tick++
	c.stats.PrefetchIssued++
	set, tag := c.index(addr)
	if w := c.find(set, tag); w >= 0 {
		c.sets[set][w].lru = c.tick
		c.stats.PrefetchHits++
		return true
	}
	c.stats.PrefetchFills++
	c.fill(set, tag, true)
	return false
}

// fill installs a line, evicting the LRU victim.
func (c *Cache) fill(set int, tag uint64, prefetched bool) {
	w := c.victim(set)
	ln := &c.sets[set][w]
	if ln.valid {
		c.stats.Evictions++
		if ln.prefetched && !ln.used {
			c.stats.PollutionEvicted++
		}
		if c.OnEvict != nil {
			c.OnEvict(c.lineAddr(set, ln.tag))
		}
	}
	*ln = line{tag: tag, valid: true, lru: c.tick, prefetched: prefetched, used: !prefetched}
}

// Contains reports residency of the line containing addr without
// touching LRU state or statistics (a probe, not an access).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	return c.find(set, tag) >= 0
}

// Invalidate drops the line containing addr if present.
func (c *Cache) Invalidate(addr uint64) {
	set, tag := c.index(addr)
	if w := c.find(set, tag); w >= 0 {
		c.sets[set][w] = line{}
		if c.OnEvict != nil {
			c.OnEvict(c.lineAddr(set, tag))
		}
	}
}

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics, keeping cache contents (used at the
// warmup/measurement boundary).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }
