package cache

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 64); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New(1024, 0, 64); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := New(1024, 4, 63); err == nil {
		t.Error("non-pow2 line accepted")
	}
	if _, err := New(1000, 4, 64); err == nil {
		t.Error("indivisible size accepted")
	}
	if _, err := New(3*64*4, 4, 64); err == nil {
		t.Error("non-pow2 sets accepted")
	}
	c, err := New(32*1024, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSets() != 64 || c.Ways() != 8 {
		t.Errorf("geometry sets=%d ways=%d", c.NumSets(), c.Ways())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustNew(1, 1, 3)
}

func TestDemandHitMiss(t *testing.T) {
	c := MustNew(1024, 2, 64)
	if c.Demand(0x100) {
		t.Error("first access should miss")
	}
	if !c.Demand(0x100) {
		t.Error("second access should hit")
	}
	if !c.Demand(0x13F) {
		t.Error("same line should hit")
	}
	if c.Demand(0x140) {
		t.Error("next line should miss")
	}
	s := c.Stats()
	if s.DemandHits != 2 || s.DemandMisses != 2 {
		t.Errorf("stats %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 ways, 2 sets, 64B lines = 256B cache. Lines mapping to set 0:
	// addresses 0, 128, 256, ...
	c := MustNew(256, 2, 64)
	c.Demand(0)   // set 0
	c.Demand(128) // set 0
	c.Demand(0)   // touch 0: now 128 is LRU
	c.Demand(256) // evicts 128
	if !c.Contains(0) {
		t.Error("recently used line evicted")
	}
	if c.Contains(128) {
		t.Error("LRU line not evicted")
	}
	if !c.Contains(256) {
		t.Error("new line missing")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestPrefetchSemantics(t *testing.T) {
	c := MustNew(1024, 2, 64)
	if c.Prefetch(0x40) {
		t.Error("prefetch of absent line should report false")
	}
	if !c.Prefetch(0x40) {
		t.Error("second prefetch should find it resident")
	}
	if !c.Demand(0x40) {
		t.Error("demand after prefetch should hit")
	}
	s := c.Stats()
	if s.PrefetchIssued != 2 || s.PrefetchFills != 1 || s.PrefetchHits != 1 {
		t.Errorf("stats %+v", s)
	}
	if s.DemandHits != 1 || s.DemandMisses != 0 {
		t.Errorf("stats %+v", s)
	}
}

func TestPollutionAccounting(t *testing.T) {
	c := MustNew(256, 2, 64) // 2 sets x 2 ways
	c.Prefetch(0)            // set 0, never used
	c.Demand(128)            // set 0, used
	c.Demand(256)            // set 0, evicts LRU = line 0 (unused prefetch)
	s := c.Stats()
	if s.PollutionEvicted != 1 {
		t.Errorf("pollution = %d, want 1", s.PollutionEvicted)
	}
	// A used prefetched line is not pollution.
	c2 := MustNew(256, 2, 64)
	c2.Prefetch(0)
	c2.Demand(0) // use it
	c2.Demand(128)
	c2.Demand(256) // evict line 0
	if c2.Stats().PollutionEvicted != 0 {
		t.Errorf("used prefetch counted as pollution")
	}
}

func TestContainsDoesNotDisturb(t *testing.T) {
	c := MustNew(256, 2, 64)
	c.Demand(0)
	c.Demand(128)
	// Probing 0 must not refresh its LRU position.
	for i := 0; i < 10; i++ {
		c.Contains(0)
	}
	c.Demand(256) // should evict 0 (the true LRU)
	if c.Contains(0) {
		t.Error("Contains refreshed LRU")
	}
	before := c.Stats()
	c.Contains(128)
	if c.Stats() != before {
		t.Error("Contains changed stats")
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(1024, 2, 64)
	c.Demand(0x80)
	c.Invalidate(0x80)
	if c.Contains(0x80) {
		t.Error("line still present after invalidate")
	}
	c.Invalidate(0xDEAD000) // absent: must not panic
}

func TestResetStats(t *testing.T) {
	c := MustNew(1024, 2, 64)
	c.Demand(0)
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("stats not zeroed")
	}
	if !c.Contains(0) {
		t.Error("ResetStats dropped contents")
	}
}

func TestCapacityWorkingSet(t *testing.T) {
	// A working set equal to capacity must fit entirely (fully warm,
	// second pass all hits).
	c := MustNew(32*1024, 8, 64)
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 32*1024; a += 64 {
			hit := c.Demand(a)
			if pass == 1 && !hit {
				t.Fatalf("pass 2 miss at %#x", a)
			}
		}
	}
	// Double the working set must produce misses in steady state.
	misses0 := c.Stats().DemandMisses
	for a := uint64(0); a < 64*1024; a += 64 {
		c.Demand(a)
	}
	for a := uint64(0); a < 64*1024; a += 64 {
		c.Demand(a)
	}
	if c.Stats().DemandMisses == misses0 {
		t.Error("oversized working set produced no misses")
	}
}

func TestRandomizedConsistency(t *testing.T) {
	// Model check against a naive fully-recorded reference for a
	// direct-mapped cache.
	c := MustNew(8*64, 1, 64)
	ref := map[int]uint64{} // set -> line address
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		addr := uint64(rng.Intn(1 << 14))
		line := addr &^ 63
		set := int((line >> 6) & 7)
		wantHit := ref[set] == line+1 // +1 to distinguish unset
		gotHit := c.Demand(addr)
		if gotHit != wantHit {
			t.Fatalf("step %d addr %#x: hit=%v want %v", i, addr, gotHit, wantHit)
		}
		ref[set] = line + 1
	}
}
