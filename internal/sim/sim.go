// Package sim runs simulations: it generates (and caches) workloads,
// executes warmup + measurement windows, and fans suites of runs out
// over worker goroutines. Every experiment harness in
// internal/experiments sits on top of this package.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/btb"
	"repro/internal/cpu"
	"repro/internal/workload"
)

// Default simulation window sizes. The paper warms 10M and measures
// 100M instructions on gem5; this simulator is pure Go and the
// synthetic workloads reach steady state much sooner, so the defaults
// are sized for laptop-scale turnaround. Scale them up with the cmd
// flags for tighter confidence.
const (
	DefaultWarmup  = 1_000_000
	DefaultMeasure = 3_000_000
)

// RunSpec describes one simulation.
type RunSpec struct {
	// Benchmark names a registered workload profile.
	Benchmark string
	// Config is the core configuration.
	Config cpu.Config
	// Warmup and Measure are instruction counts for the two phases;
	// zero selects the defaults.
	Warmup, Measure uint64
	// Label annotates the result (e.g. "skia", "btb+state").
	Label string
}

// Result pairs a cpu.Result with its spec label.
type Result struct {
	cpu.Result
	Label string
}

// SpecTiming records the wall time and instruction volume of one
// completed simulation, for the throughput envelope experiment reports
// carry.
type SpecTiming struct {
	Benchmark string `json:"benchmark"`
	Label     string `json:"label,omitempty"`
	// Instructions is the simulated volume, warmup plus measurement.
	Instructions uint64  `json:"instructions"`
	Seconds      float64 `json:"seconds"`
}

// RunnerStats aggregates per-spec timing and throughput over every
// successful Run a Runner has executed.
type RunnerStats struct {
	// Runs counts completed simulations.
	Runs int `json:"runs"`
	// Instructions is the total simulated volume (warmup + measure).
	Instructions uint64 `json:"instructions"`
	// WallSeconds spans the first run's start to the last run's end,
	// so it reflects concurrency; CPUSeconds sums per-run times.
	WallSeconds float64 `json:"wall_seconds"`
	CPUSeconds  float64 `json:"cpu_seconds"`
	// InstructionsPerSec is Instructions / WallSeconds.
	InstructionsPerSec float64 `json:"instructions_per_sec"`
	// Specs holds per-run timings, sorted by benchmark then label.
	Specs []SpecTiming `json:"specs,omitempty"`
}

// Runner generates and caches workloads so that every configuration of
// a benchmark simulates the same program bytes. Workloads are immutable
// after generation, so the cache is safe to share across goroutines.
type Runner struct {
	mu    sync.Mutex
	cache map[string]*workload.Workload
	// Workers bounds concurrent simulations in RunAll (default:
	// GOMAXPROCS).
	Workers int

	timings    []SpecTiming
	totalInsts uint64
	cpuSeconds float64
	firstStart time.Time
	lastEnd    time.Time
}

// NewRunner returns an empty runner.
func NewRunner() *Runner {
	return &Runner{cache: make(map[string]*workload.Workload)}
}

// Workload returns the cached workload for a registered benchmark,
// generating it on first use.
func (r *Runner) Workload(name string) (*workload.Workload, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.cache[name]; ok {
		return w, nil
	}
	prof, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	w, err := workload.Generate(prof)
	if err != nil {
		return nil, err
	}
	r.cache[name] = w
	return w, nil
}

// record books one successful simulation into the runner's timing
// counters.
func (r *Runner) record(spec RunSpec, insts uint64, start, end time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.timings = append(r.timings, SpecTiming{
		Benchmark:    spec.Benchmark,
		Label:        spec.Label,
		Instructions: insts,
		Seconds:      end.Sub(start).Seconds(),
	})
	r.totalInsts += insts
	r.cpuSeconds += end.Sub(start).Seconds()
	if r.firstStart.IsZero() || start.Before(r.firstStart) {
		r.firstStart = start
	}
	if end.After(r.lastEnd) {
		r.lastEnd = end
	}
}

// Stats returns a snapshot of the runner's timing and throughput
// counters across all successful runs so far. Wall time spans the
// first run's start to the last run's end (and so accounts for
// concurrency); per-spec timings include first-use workload
// generation and are sorted by benchmark then label.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RunnerStats{
		Runs:         len(r.timings),
		Instructions: r.totalInsts,
		CPUSeconds:   r.cpuSeconds,
		Specs:        append([]SpecTiming(nil), r.timings...),
	}
	sort.SliceStable(st.Specs, func(i, j int) bool {
		if st.Specs[i].Benchmark != st.Specs[j].Benchmark {
			return st.Specs[i].Benchmark < st.Specs[j].Benchmark
		}
		return st.Specs[i].Label < st.Specs[j].Label
	})
	if !r.firstStart.IsZero() {
		st.WallSeconds = r.lastEnd.Sub(r.firstStart).Seconds()
	}
	if st.WallSeconds > 0 {
		st.InstructionsPerSec = float64(st.Instructions) / st.WallSeconds
	}
	return st
}

// Run executes one simulation: build core, warm up, reset statistics,
// measure.
func (r *Runner) Run(spec RunSpec) (Result, error) {
	start := time.Now()
	w, err := r.Workload(spec.Benchmark)
	if err != nil {
		return Result{}, err
	}
	warm, meas := spec.Warmup, spec.Measure
	if warm == 0 {
		warm = DefaultWarmup
	}
	if meas == 0 {
		meas = DefaultMeasure
	}
	c, err := cpu.New(spec.Config, w)
	if err != nil {
		return Result{}, err
	}
	c.Run(warm)
	c.ResetStats()
	c.Run(meas)
	if err := c.Frontend().Err(); err != nil {
		return Result{}, fmt.Errorf("sim: %s: %w", spec.Benchmark, err)
	}
	res := c.Result(spec.Benchmark)
	if res.FE.ForcedResyncs > 0 {
		return Result{}, fmt.Errorf("sim: %s: %d forced resyncs indicate a front-end modeling bug",
			spec.Benchmark, res.FE.ForcedResyncs)
	}
	r.record(spec, warm+meas, start, time.Now())
	return Result{Result: res, Label: spec.Label}, nil
}

// RunAll executes the specs concurrently (bounded by Workers) and
// returns results in spec order. Every spec runs to completion even
// when siblings fail; the returned error joins one entry per failed
// spec (benchmark and label named), and the result slice still carries
// the successful entries (failed slots are zero-valued).
func (r *Runner) RunAll(specs []RunSpec) ([]Result, error) {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = r.Run(specs[i])
		}(i)
	}
	wg.Wait()
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("spec %s/%s: %w", specs[i].Benchmark, specs[i].Label, err))
		}
	}
	if len(failed) > 0 {
		return results, errors.Join(failed...)
	}
	return results, nil
}

// BTBWithEntries returns the baseline BTB config resized to n entries.
func BTBWithEntries(n int) btb.Config {
	cfg := btb.DefaultConfig()
	cfg.Entries = n
	return cfg
}

// AugmentedBTB grows base by approximately extraBits of storage — the
// iso-hardware-budget competitor from Figure 3 (giving the BTB the
// SBB's budget instead). BTB geometry is quantized (power-of-two sets),
// so the added capacity is rounded to the nearest whole way; the caller
// can compare StorageBits before and after for the exact grant.
func AugmentedBTB(base btb.Config, extraBits int) btb.Config {
	if base.Infinite || base.Entries <= 0 {
		return base
	}
	sets := base.Entries / base.Ways
	perEntry := base.TagBits + 1 + 1 + 2 + 64
	extraEntries := extraBits / perEntry
	extraWays := (extraEntries + sets/2) / sets // nearest
	if extraWays < 1 && extraEntries > 0 {
		extraWays = 1 // never grant less than one way
	}
	out := base
	out.Ways += extraWays
	out.Entries = sets * out.Ways
	return out
}
