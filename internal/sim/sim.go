// Package sim runs simulations: it generates (and caches) workloads,
// executes warmup + measurement windows, and fans suites of runs out
// over worker goroutines. Every experiment harness in
// internal/experiments sits on top of this package.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/btb"
	"repro/internal/cpu"
	"repro/internal/workload"
)

// Default simulation window sizes. The paper warms 10M and measures
// 100M instructions on gem5; this simulator is pure Go and the
// synthetic workloads reach steady state much sooner, so the defaults
// are sized for laptop-scale turnaround. Scale them up with the cmd
// flags for tighter confidence.
const (
	DefaultWarmup  = 1_000_000
	DefaultMeasure = 3_000_000
)

// RunSpec describes one simulation.
type RunSpec struct {
	// Benchmark names a registered workload profile.
	Benchmark string
	// Config is the core configuration.
	Config cpu.Config
	// Warmup and Measure are instruction counts for the two phases;
	// zero selects the defaults.
	Warmup, Measure uint64
	// Label annotates the result (e.g. "skia", "btb+state").
	Label string
}

// Result pairs a cpu.Result with its spec label.
type Result struct {
	cpu.Result
	Label string
}

// Runner generates and caches workloads so that every configuration of
// a benchmark simulates the same program bytes. Workloads are immutable
// after generation, so the cache is safe to share across goroutines.
type Runner struct {
	mu    sync.Mutex
	cache map[string]*workload.Workload
	// Workers bounds concurrent simulations in RunAll (default:
	// GOMAXPROCS).
	Workers int
}

// NewRunner returns an empty runner.
func NewRunner() *Runner {
	return &Runner{cache: make(map[string]*workload.Workload)}
}

// Workload returns the cached workload for a registered benchmark,
// generating it on first use.
func (r *Runner) Workload(name string) (*workload.Workload, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.cache[name]; ok {
		return w, nil
	}
	prof, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	w, err := workload.Generate(prof)
	if err != nil {
		return nil, err
	}
	r.cache[name] = w
	return w, nil
}

// Run executes one simulation: build core, warm up, reset statistics,
// measure.
func (r *Runner) Run(spec RunSpec) (Result, error) {
	w, err := r.Workload(spec.Benchmark)
	if err != nil {
		return Result{}, err
	}
	warm, meas := spec.Warmup, spec.Measure
	if warm == 0 {
		warm = DefaultWarmup
	}
	if meas == 0 {
		meas = DefaultMeasure
	}
	c, err := cpu.New(spec.Config, w)
	if err != nil {
		return Result{}, err
	}
	c.Run(warm)
	c.ResetStats()
	c.Run(meas)
	if err := c.Frontend().Err(); err != nil {
		return Result{}, fmt.Errorf("sim: %s: %w", spec.Benchmark, err)
	}
	res := c.Result(spec.Benchmark)
	if res.FE.ForcedResyncs > 0 {
		return Result{}, fmt.Errorf("sim: %s: %d forced resyncs indicate a front-end modeling bug",
			spec.Benchmark, res.FE.ForcedResyncs)
	}
	return Result{Result: res, Label: spec.Label}, nil
}

// RunAll executes the specs concurrently (bounded by Workers) and
// returns results in spec order. The first error aborts the batch.
func (r *Runner) RunAll(specs []RunSpec) ([]Result, error) {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = r.Run(specs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// BTBWithEntries returns the baseline BTB config resized to n entries.
func BTBWithEntries(n int) btb.Config {
	cfg := btb.DefaultConfig()
	cfg.Entries = n
	return cfg
}

// AugmentedBTB grows base by approximately extraBits of storage — the
// iso-hardware-budget competitor from Figure 3 (giving the BTB the
// SBB's budget instead). BTB geometry is quantized (power-of-two sets),
// so the added capacity is rounded to the nearest whole way; the caller
// can compare StorageBits before and after for the exact grant.
func AugmentedBTB(base btb.Config, extraBits int) btb.Config {
	if base.Infinite || base.Entries <= 0 {
		return base
	}
	sets := base.Entries / base.Ways
	perEntry := base.TagBits + 1 + 1 + 2 + 64
	extraEntries := extraBits / perEntry
	extraWays := (extraEntries + sets/2) / sets // nearest
	if extraWays < 1 && extraEntries > 0 {
		extraWays = 1 // never grant less than one way
	}
	out := base
	out.Ways += extraWays
	out.Entries = sets * out.Ways
	return out
}
