// Package sim runs simulations: it generates (and caches) workloads,
// executes warmup + measurement windows, and fans suites of runs out
// over worker goroutines. Every experiment harness in
// internal/experiments sits on top of this package.
package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attrib"
	"repro/internal/btb"
	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Default simulation window sizes. The paper warms 10M and measures
// 100M instructions on gem5; this simulator is pure Go and the
// synthetic workloads reach steady state much sooner, so the defaults
// are sized for laptop-scale turnaround. Scale them up with the cmd
// flags for tighter confidence.
const (
	DefaultWarmup  = 1_000_000
	DefaultMeasure = 3_000_000
)

// RunSpec describes one simulation.
type RunSpec struct {
	// Benchmark names a registered workload profile.
	Benchmark string
	// Config is the core configuration.
	Config cpu.Config
	// Warmup and Measure are instruction counts for the two phases;
	// zero selects the defaults.
	Warmup, Measure uint64
	// Label annotates the result (e.g. "skia", "btb+state").
	Label string
	// Interval enables interval metrics collection over the
	// measurement window, one row per this many retired instructions
	// (0 falls back to the Runner's Interval; both 0 disables).
	Interval uint64
	// Tracer, when non-nil, receives front-end events during the
	// measurement window. Each spec needs its own tracer: cores are
	// not safe for concurrent use and RunAll runs specs in parallel.
	Tracer metrics.Tracer
	// Attrib enables miss attribution over the measurement window (the
	// Runner's Attrib flag enables it for every spec). Each run gets a
	// private attrib.Engine, so RunAll stays race-free.
	Attrib bool
	// Sample, when non-nil, switches this spec to sampled simulation
	// (overriding the Runner's plan; see SamplePlan). nil falls back to
	// the Runner's Sample, and exact simulation when both are nil.
	Sample *SamplePlan
}

// Result pairs a cpu.Result with its spec label.
type Result struct {
	cpu.Result
	Label string
	// Intervals holds the per-interval timeseries rows when the spec
	// (or runner) enabled interval collection; nil otherwise.
	Intervals []metrics.Interval
	// Attribution holds the miss-attribution summary when the spec (or
	// runner) enabled it; nil otherwise.
	Attribution *attrib.Summary
	// Sampling holds the sampled-simulation summary (per-metric
	// confidence intervals, conservation counters) when the run was
	// sampled, or an exact echo when Runner.SampleEcho was set; nil
	// otherwise.
	Sampling *SampleSummary
}

// SpecIntervals pairs one spec's interval summary with its identity,
// for embedding in report envelopes.
type SpecIntervals struct {
	Benchmark string          `json:"benchmark"`
	Label     string          `json:"label,omitempty"`
	Summary   metrics.Summary `json:"summary"`
}

// SpecAttribution pairs one spec's miss-attribution summary with its
// identity, for embedding in report envelopes (schema v3+).
type SpecAttribution struct {
	Benchmark string         `json:"benchmark"`
	Label     string         `json:"label,omitempty"`
	Summary   attrib.Summary `json:"summary"`
}

// SpecTiming records the wall time and instruction volume of one
// completed simulation, for the throughput envelope experiment reports
// carry.
type SpecTiming struct {
	Benchmark string `json:"benchmark"`
	Label     string `json:"label,omitempty"`
	// Instructions is the simulated volume, warmup plus measurement.
	Instructions uint64  `json:"instructions"`
	Seconds      float64 `json:"seconds"`
}

// RunnerStats aggregates per-spec timing and throughput over every
// successful Run a Runner has executed.
type RunnerStats struct {
	// Runs counts completed simulations.
	Runs int `json:"runs"`
	// Instructions is the total simulated volume (warmup + measure).
	Instructions uint64 `json:"instructions"`
	// WallSeconds spans the first run's start to the last run's end,
	// so it reflects concurrency; CPUSeconds sums per-run times.
	WallSeconds float64 `json:"wall_seconds"`
	CPUSeconds  float64 `json:"cpu_seconds"`
	// InstructionsPerSec is Instructions / WallSeconds.
	InstructionsPerSec float64 `json:"instructions_per_sec"`
	// Specs holds per-run timings, sorted by benchmark then label.
	Specs []SpecTiming `json:"specs,omitempty"`
}

// Runner generates and caches workloads so that every configuration of
// a benchmark simulates the same program bytes. Workloads are immutable
// after generation, so the cache is safe to share across goroutines.
type Runner struct {
	mu    sync.Mutex
	cache map[string]*workload.Workload
	// Workers bounds concurrent simulations in RunAll (default:
	// GOMAXPROCS).
	Workers int
	// Interval, when nonzero, enables interval metrics on every Run
	// whose spec leaves RunSpec.Interval at zero — the switch the
	// experiment harnesses flip from Options without touching specs.
	Interval uint64
	// Attrib enables miss attribution on every Run; specs can also opt
	// in individually via RunSpec.Attrib.
	Attrib bool
	// Sample, when non-nil, switches every Run whose spec leaves
	// RunSpec.Sample nil to sampled simulation (see SamplePlan).
	Sample *SamplePlan
	// Checkpoint enables warmup checkpointing: one warmed master core
	// is kept per (benchmark, config, warmup) and every run starts from
	// a clone, so specs sharing a warmup prefix pay it once. Exact
	// results are bit-identical with or without checkpointing (clones
	// are exact state copies).
	Checkpoint bool
	// Checkpoints, when non-nil (and Checkpoint is set), is the store
	// warmed masters live in. Sharing one CheckpointCache across
	// runners extends warmup reuse beyond a single sweep — e.g. an
	// exact reference pass followed by a sampled pass pays each
	// (benchmark, config, warmup) cell once. nil keeps a runner-local
	// store.
	Checkpoints *CheckpointCache
	// SampleEcho, when set, makes exact (non-sampled) runs publish a
	// sampling summary too: exact metric values with zero confidence
	// intervals. It exists so a CI job can diff a sampled sweep against
	// an exact one with skiacmp -sample-ci over identical keys.
	SampleEcho bool
	// BaseContext, when non-nil, bounds every Run and RunAll call that
	// does not receive an explicit context: cancellation or deadline
	// expiry aborts simulations between instruction chunks. nil means
	// context.Background(). The long-running sweep service
	// (internal/serve) sets this per job so HTTP cancellation and
	// per-job timeouts propagate into the simulation loop.
	BaseContext context.Context
	// OnProgress, when non-nil, receives cumulative progress after
	// every simulated instruction chunk (ctxCheckChunk = 262,144
	// retired instructions) and whenever planned work is registered:
	// done is the total instructions retired across every run this
	// Runner has executed, planned the total its known work will retire
	// (RunAll pre-registers its whole spec list before the first run
	// starts, so done/planned is a stable completion fraction from the
	// first chunk). The hook is called from RunAll's worker goroutines
	// concurrently — implementations must be fast and concurrency-safe.
	// Nil costs one nil check per chunk, nothing per simulated cycle.
	// The sweep service publishes these values as live job progress.
	OnProgress func(done, planned uint64)

	// progressDone / progressPlanned back OnProgress and Progress();
	// atomics, not mu, because they are touched from inside runWindow
	// while mu-holding readers (Stats) may run concurrently.
	progressDone    atomic.Uint64
	progressPlanned atomic.Uint64

	// All capture below is guarded by mu: Run is called from RunAll's
	// worker goroutines, and each run's collector lives privately in
	// its Run call until record() books the summary.
	timings      []SpecTiming
	intervalSums []SpecIntervals
	attribSums   []SpecAttribution
	samplingSums []SpecSampling
	totalInsts   uint64
	cpuSeconds   float64
	firstStart   time.Time
	lastEnd      time.Time
}

// NewRunner returns an empty runner.
func NewRunner() *Runner {
	return &Runner{cache: make(map[string]*workload.Workload)}
}

// Workload returns the cached workload for a registered benchmark,
// generating it on first use.
func (r *Runner) Workload(name string) (*workload.Workload, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.cache[name]; ok {
		return w, nil
	}
	prof, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	w, err := workload.Generate(prof)
	if err != nil {
		return nil, err
	}
	r.cache[name] = w
	return w, nil
}

// record books one successful simulation into the runner's timing
// counters, together with its interval summary when interval metrics
// ran, its attribution summary when an engine was attached, and its
// sampling summary when the run was sampled (or exact-echoed).
func (r *Runner) record(spec RunSpec, insts uint64, start, end time.Time, ivSum *metrics.Summary, at *attrib.Summary, samp *SampleSummary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.timings = append(r.timings, SpecTiming{
		Benchmark:    spec.Benchmark,
		Label:        spec.Label,
		Instructions: insts,
		Seconds:      end.Sub(start).Seconds(),
	})
	if ivSum != nil {
		r.intervalSums = append(r.intervalSums, SpecIntervals{
			Benchmark: spec.Benchmark,
			Label:     spec.Label,
			Summary:   *ivSum,
		})
	}
	if at != nil {
		r.attribSums = append(r.attribSums, SpecAttribution{
			Benchmark: spec.Benchmark,
			Label:     spec.Label,
			Summary:   *at,
		})
	}
	if samp != nil {
		r.samplingSums = append(r.samplingSums, SpecSampling{
			Benchmark: spec.Benchmark,
			Label:     spec.Label,
			Summary:   *samp,
		})
	}
	r.totalInsts += insts
	r.cpuSeconds += end.Sub(start).Seconds()
	if r.firstStart.IsZero() || start.Before(r.firstStart) {
		r.firstStart = start
	}
	if end.After(r.lastEnd) {
		r.lastEnd = end
	}
}

// Stats returns a snapshot of the runner's timing and throughput
// counters across all successful runs so far. Wall time spans the
// first run's start to the last run's end (and so accounts for
// concurrency); per-spec timings include first-use workload
// generation and are sorted by benchmark then label.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RunnerStats{
		Runs:         len(r.timings),
		Instructions: r.totalInsts,
		CPUSeconds:   r.cpuSeconds,
		Specs:        append([]SpecTiming(nil), r.timings...),
	}
	sort.SliceStable(st.Specs, func(i, j int) bool {
		if st.Specs[i].Benchmark != st.Specs[j].Benchmark {
			return st.Specs[i].Benchmark < st.Specs[j].Benchmark
		}
		return st.Specs[i].Label < st.Specs[j].Label
	})
	if !r.firstStart.IsZero() {
		st.WallSeconds = r.lastEnd.Sub(r.firstStart).Seconds()
	}
	if st.WallSeconds > 0 {
		st.InstructionsPerSec = float64(st.Instructions) / st.WallSeconds
	}
	return st
}

// ctxCheckChunk is the instruction granularity at which RunContext
// polls for cancellation. Chunking the cpu.Core.Run window is exact:
// the core's loop only depends on the cumulative retire target, so N
// chunked calls retire the same instructions in the same cycles as one
// call (pinned by TestRunContextChunkingExact).
const ctxCheckChunk = 262_144

// baseContext resolves the runner's ambient context.
func (r *Runner) baseContext() context.Context {
	if r.BaseContext != nil {
		return r.BaseContext
	}
	return context.Background()
}

// runWindow advances the core by n instructions in ctxCheckChunk
// slices, aborting between slices once ctx is done. It stops early if
// the workload ends (the core refuses to retire more). Slices aim at
// an absolute retired-instruction target: cpu.Core.Run may overshoot
// each call by up to the retire width, so per-slice deltas would
// compound into extra instructions, while re-deriving the remainder
// from the absolute target keeps chunked execution bit-identical to a
// single Run call. Each completed slice books its retired delta into
// the runner's progress accounting — the chunk boundary doubles as the
// progress checkpoint, so observability costs nothing inside the
// simulated window itself.
func (r *Runner) runWindow(ctx context.Context, c *cpu.Core, n uint64) error {
	target := c.Retired() + n
	for c.Retired() < target {
		if err := ctx.Err(); err != nil {
			return err
		}
		before := c.Retired()
		step := target - before
		if step > ctxCheckChunk {
			step = ctxCheckChunk
		}
		ran := c.Run(step)
		if d := c.Retired() - before; d > 0 {
			done := r.progressDone.Add(d)
			if r.OnProgress != nil {
				r.OnProgress(done, r.progressPlanned.Load())
			}
		}
		if ran == 0 {
			break // workload exhausted
		}
	}
	return ctx.Err()
}

// addPlanned registers n upcoming instructions of planned work and
// publishes the new plan through OnProgress.
func (r *Runner) addPlanned(n uint64) {
	if n == 0 {
		return
	}
	planned := r.progressPlanned.Add(n)
	if r.OnProgress != nil {
		r.OnProgress(r.progressDone.Load(), planned)
	}
}

// Progress snapshots the runner's cumulative progress: instructions
// retired so far across all runs, and the planned total registered by
// Run/RunAll so far. done normally converges on planned; it stops
// short when a workload exhausts early or a run aborts, and may exceed
// it by up to the retire width per run (cpu.Core.Run overshoot).
func (r *Runner) Progress() (done, planned uint64) {
	return r.progressDone.Load(), r.progressPlanned.Load()
}

// windows resolves the spec's warmup and measurement instruction
// counts against the package defaults.
func (s RunSpec) windows() (warm, meas uint64) {
	warm, meas = s.Warmup, s.Measure
	if warm == 0 {
		warm = DefaultWarmup
	}
	if meas == 0 {
		meas = DefaultMeasure
	}
	return warm, meas
}

// Run executes one simulation: build core, warm up, reset statistics,
// measure. It is RunContext under the runner's BaseContext.
func (r *Runner) Run(spec RunSpec) (Result, error) {
	return r.RunContext(r.baseContext(), spec)
}

// RunContext executes one simulation under ctx: build core, warm up,
// reset statistics, measure. Cancellation is polled every
// ctxCheckChunk simulated instructions; an aborted run returns an
// error wrapping ctx.Err() (test with errors.Is against
// context.Canceled / context.DeadlineExceeded) and books nothing into
// the runner's timing counters.
func (r *Runner) RunContext(ctx context.Context, spec RunSpec) (Result, error) {
	return r.runContext(ctx, spec, true)
}

// runContext is RunContext's body; plan=false when RunAllContext has
// already pre-registered this spec's instruction volume (so it is not
// double-counted in the progress plan).
func (r *Runner) runContext(ctx context.Context, spec RunSpec, plan bool) (Result, error) {
	//skia:nondet-ok wall-clock brackets the run for throughput reporting; no simulated state depends on it
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("sim: %s: %w", spec.Benchmark, err)
	}
	w, err := r.Workload(spec.Benchmark)
	if err != nil {
		return Result{}, err
	}
	warm, meas := spec.windows()
	if plan {
		r.addPlanned(r.plannedInsts(spec))
	}
	c, err := r.warmCore(ctx, spec, w, warm)
	if err != nil {
		return Result{}, err
	}
	if p := r.specPlan(spec); p != nil {
		np := p.normalized(meas)
		interval := spec.Interval
		if interval == 0 {
			interval = r.Interval
		}
		out, detail, err := r.runSampled(ctx, spec, c, np, meas, interval)
		if err != nil {
			return Result{}, err
		}
		var ivSum *metrics.Summary
		if interval > 0 {
			s := metrics.Summarize(interval, out.Intervals)
			ivSum = &s
		}
		//skia:nondet-ok wall-clock closes the throughput window opened above; no simulated state depends on it
		r.record(spec, warm+detail, start, time.Now(), ivSum, nil, out.Sampling)
		return out, nil
	}
	c.ResetStats()
	// Observability attaches at the warmup boundary so intervals and
	// traces cover exactly the measurement window the statistics do.
	// The collector is private to this call — RunAll's workers never
	// share one — so capture stays race-free; only record() touches
	// runner state, under the mutex.
	interval := spec.Interval
	if interval == 0 {
		interval = r.Interval
	}
	var col *metrics.Collector
	if interval > 0 {
		col = metrics.NewCollector(interval)
		c.AttachCollector(col)
	}
	if spec.Tracer != nil {
		c.SetTracer(spec.Tracer)
	}
	var eng *attrib.Engine
	if spec.Attrib || r.Attrib {
		eng = attrib.NewEngine()
		c.AttachAttribution(eng)
	}
	if err := r.runWindow(ctx, c, meas); err != nil {
		return Result{}, fmt.Errorf("sim: %s: measurement aborted: %w", spec.Benchmark, err)
	}
	if err := c.Frontend().Err(); err != nil {
		return Result{}, fmt.Errorf("sim: %s: %w", spec.Benchmark, err)
	}
	res := c.Result(spec.Benchmark)
	if res.FE.ForcedResyncs > 0 {
		return Result{}, fmt.Errorf("sim: %s: %d forced resyncs indicate a front-end modeling bug",
			spec.Benchmark, res.FE.ForcedResyncs)
	}
	out := Result{Result: res, Label: spec.Label}
	var ivSum *metrics.Summary
	if col != nil {
		col.Finish(c.Sample())
		out.Intervals = col.Intervals()
		s := col.Summary()
		ivSum = &s
	}
	var atSum *attrib.Summary
	if eng != nil {
		s := eng.Summary()
		atSum = &s
		out.Attribution = atSum
	}
	if r.SampleEcho {
		out.Sampling = exactEcho(&res, meas)
	}
	//skia:nondet-ok wall-clock closes the throughput window opened above; no simulated state depends on it
	r.record(spec, warm+meas, start, time.Now(), ivSum, atSum, out.Sampling)
	return out, nil
}

// IntervalSummaries returns one summary per interval-collecting run so
// far, sorted by benchmark then label (matching Stats().Specs order).
func (r *Runner) IntervalSummaries() []SpecIntervals {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]SpecIntervals(nil), r.intervalSums...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// AttributionSummaries returns one attribution summary per
// attribution-enabled run so far, sorted by benchmark then label
// (matching Stats().Specs order).
func (r *Runner) AttributionSummaries() []SpecAttribution {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]SpecAttribution(nil), r.attribSums...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// RunAll executes the specs concurrently (bounded by Workers) and
// returns results in spec order. Every spec runs to completion even
// when siblings fail; the returned error joins one entry per failed
// spec (benchmark and label named), and the result slice still carries
// the successful entries (failed slots are zero-valued). It is
// RunAllContext under the runner's BaseContext.
func (r *Runner) RunAll(specs []RunSpec) ([]Result, error) {
	return r.RunAllContext(r.baseContext(), specs)
}

// RunAllContext is RunAll under an explicit context. Once ctx is done,
// in-flight specs abort at their next chunk boundary and queued specs
// fail immediately without simulating; each affected slot's error
// wraps ctx.Err(). The whole spec list's instruction volume is
// registered with the progress plan before the first run starts, so
// OnProgress observers see a stable completion denominator from the
// first chunk.
func (r *Runner) RunAllContext(ctx context.Context, specs []RunSpec) ([]Result, error) {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	var planned uint64
	for _, s := range specs {
		planned += r.plannedInsts(s)
	}
	r.addPlanned(planned)
	results := make([]Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A bare semaphore send would park every queued spec forever
			// if the context died while the in-flight ones held all the
			// slots; a cancelled spec must fail without waiting its turn.
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[i] = fmt.Errorf("aborted before start: %w", ctx.Err())
				return
			}
			defer func() { <-sem }()
			results[i], errs[i] = r.runContext(ctx, specs[i], false)
		}(i)
	}
	wg.Wait()
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("spec %s/%s: %w", specs[i].Benchmark, specs[i].Label, err))
		}
	}
	if len(failed) > 0 {
		return results, errors.Join(failed...)
	}
	return results, nil
}

// BTBWithEntries returns the baseline BTB config resized to n entries.
func BTBWithEntries(n int) btb.Config {
	cfg := btb.DefaultConfig()
	cfg.Entries = n
	return cfg
}

// AugmentedBTB grows base by approximately extraBits of storage — the
// iso-hardware-budget competitor from Figure 3 (giving the BTB the
// SBB's budget instead). BTB geometry is quantized (power-of-two sets),
// so the added capacity is rounded to the nearest whole way; the caller
// can compare StorageBits before and after for the exact grant.
func AugmentedBTB(base btb.Config, extraBits int) btb.Config {
	if base.Infinite || base.Entries <= 0 {
		return base
	}
	sets := base.Entries / base.Ways
	perEntry := base.TagBits + 1 + 1 + 2 + 64
	extraEntries := extraBits / perEntry
	extraWays := (extraEntries + sets/2) / sets // nearest
	if extraWays < 1 && extraEntries > 0 {
		extraWays = 1 // never grant less than one way
	}
	out := base
	out.Ways += extraWays
	out.Entries = sets * out.Ways
	return out
}
