package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cpu"
)

// tinySpec is a fast spec for cancellation tests.
func tinySpec() RunSpec {
	return RunSpec{
		Benchmark: "noop",
		Config:    cpu.SkiaConfig(),
		Warmup:    20_000,
		Measure:   100_000,
		Label:     "skia",
	}
}

// TestRunContextCanceledBeforeStart: a context canceled up front fails
// immediately without booking a run.
func TestRunContextCanceledBeforeStart(t *testing.T) {
	r := NewRunner()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunContext(ctx, tinySpec()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := r.Stats(); st.Runs != 0 {
		t.Errorf("canceled run was booked: %+v", st)
	}
}

// TestRunContextDeadlineAborts: a run much longer than its deadline is
// cut off at a chunk boundary and reports DeadlineExceeded, long
// before the full window would have finished.
func TestRunContextDeadlineAborts(t *testing.T) {
	r := NewRunner()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	spec := tinySpec()
	// ~100M instructions is tens of seconds of simulation; the 50ms
	// deadline must abort it at the next ctxCheckChunk boundary.
	spec.Warmup = 100_000_000
	start := time.Now()
	_, err := r.RunContext(ctx, spec)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("abort took %v; cancellation is not being polled", elapsed)
	}
	if st := r.Stats(); st.Runs != 0 {
		t.Errorf("aborted run was booked: %+v", st)
	}
}

// TestRunContextChunkingExact pins that chunked execution (the
// cancellation poll granularity) is bit-identical to the unchunked
// Run path: same cycles, same IPC, same front-end counters.
func TestRunContextChunkingExact(t *testing.T) {
	spec := RunSpec{
		Benchmark: "voter",
		Config:    cpu.SkiaConfig(),
		// Windows deliberately not multiples of ctxCheckChunk.
		Warmup:  ctxCheckChunk + 12_345,
		Measure: 2*ctxCheckChunk + 6_789,
		Label:   "skia",
	}
	a, err := NewRunner().RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: simulate the same windows in single Run calls.
	b := func() Result {
		r := NewRunner()
		w, err := r.Workload(spec.Benchmark)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cpu.New(spec.Config, w)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(spec.Warmup)
		c.ResetStats()
		c.Run(spec.Measure)
		return Result{Result: c.Result(spec.Benchmark), Label: spec.Label}
	}()
	if a.Cycles != b.Cycles || a.IPC != b.IPC {
		t.Errorf("chunked run diverged: cycles %d vs %d, IPC %v vs %v",
			a.Cycles, b.Cycles, a.IPC, b.IPC)
	}
	if a.FE != b.FE {
		t.Errorf("front-end stats diverged:\n%+v\n!=\n%+v", a.FE, b.FE)
	}
}

// TestRunAllContextCancelSkipsQueued: once the context dies, queued
// specs fail fast with the context error instead of simulating.
func TestRunAllContextCancelSkipsQueued(t *testing.T) {
	r := NewRunner()
	r.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := []RunSpec{tinySpec(), tinySpec(), tinySpec()}
	_, err := r.RunAllContext(ctx, specs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := r.Stats(); st.Runs != 0 {
		t.Errorf("specs ran under a dead context: %+v", st)
	}
}

// TestRunAllContextCancelMidFlight is the regression test for the
// ctxwait finding fixed in this file's sibling sim.go: the worker
// semaphore acquisition used to be a bare send, so specs queued behind
// a full worker pool could only proceed once an in-flight spec handed
// its slot over. Acquisition now selects on ctx.Done, so cancellation
// mid-run must (a) return promptly and (b) deliver a context error for
// every spec — the in-flight one aborted at a chunk boundary, the
// queued ones either failing at acquisition or immediately after it.
func TestRunAllContextCancelMidFlight(t *testing.T) {
	r := NewRunner()
	r.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	specs := []RunSpec{tinySpec(), tinySpec(), tinySpec()}
	for i := range specs {
		// Long enough that cancel lands while spec 0 is mid-simulation
		// and specs 1-2 are parked on the semaphore.
		specs[i].Warmup = 200_000_000
		specs[i].Label = []string{"first", "second", "third"}[i]
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := r.RunAllContext(ctx, specs)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("RunAllContext took %v after cancel; queued specs are not observing cancellation", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, label := range []string{"first", "second", "third"} {
		if !strings.Contains(err.Error(), label) {
			t.Errorf("spec %q missing from joined error: %v", label, err)
		}
	}
}

// TestRunnerBaseContext: Run (no explicit ctx) honors BaseContext.
func TestRunnerBaseContext(t *testing.T) {
	r := NewRunner()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r.BaseContext = ctx
	if _, err := r.Run(tinySpec()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
