package sim

import (
	"reflect"
	"testing"

	"repro/internal/cpu"
)

// determinismSpecs builds a small mixed suite: two benchmarks, each in
// baseline and Skia configuration, enough to exercise workload-cache
// sharing and concurrent scheduling in RunAll.
func determinismSpecs() []RunSpec {
	var specs []RunSpec
	for _, bench := range []string{"voter", "noop"} {
		for _, skia := range []bool{false, true} {
			cfg := cpu.DefaultConfig()
			label := bench + "/base"
			if skia {
				cfg = cpu.SkiaConfig()
				label = bench + "/skia"
			}
			specs = append(specs, RunSpec{
				Benchmark: bench,
				Config:    cfg,
				Warmup:    50_000,
				Measure:   150_000,
				Label:     label,
			})
		}
	}
	return specs
}

// TestRunAllDeterministicAcrossWorkers checks the property the whole
// experiment pipeline rests on: simulation results depend only on the
// specs, never on how RunAll schedules them. A serial run (Workers=1)
// and a heavily concurrent run (Workers=8) must produce structurally
// identical results — every statistic, not just the headline IPC.
// Results carry no wall-clock fields, so reflect.DeepEqual is exact.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	serial := NewRunner()
	serial.Workers = 1
	parallel := NewRunner()
	parallel.Workers = 8

	specs := determinismSpecs()
	rs, err := serial.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(rp) {
		t.Fatalf("result counts differ: %d vs %d", len(rs), len(rp))
	}
	for i := range rs {
		if !reflect.DeepEqual(rs[i], rp[i]) {
			t.Errorf("spec %s: Workers=1 and Workers=8 results differ:\n  serial:   %+v\n  parallel: %+v",
				specs[i].Label, rs[i], rp[i])
		}
	}
}

// TestRunRepeatable checks the same spec run twice on one runner gives
// identical results (workload caching must not leak mutable state
// between runs).
func TestRunRepeatable(t *testing.T) {
	r := NewRunner()
	spec := quickSpec("rep", true)
	a, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same spec, same runner, different results:\n  first:  %+v\n  second: %+v", a, b)
	}
}
