package sim

import (
	"testing"

	"repro/internal/btb"
	"repro/internal/cpu"
)

func quickSpec(label string, skia bool) RunSpec {
	cfg := cpu.DefaultConfig()
	if skia {
		cfg = cpu.SkiaConfig()
	}
	return RunSpec{
		Benchmark: "noop",
		Config:    cfg,
		Warmup:    50_000,
		Measure:   150_000,
		Label:     label,
	}
}

func TestWorkloadCache(t *testing.T) {
	r := NewRunner()
	w1, err := r.Workload("noop")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := r.Workload("noop")
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Error("workload not cached")
	}
	if _, err := r.Workload("nonexistent"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunBasic(t *testing.T) {
	r := NewRunner()
	res, err := r.Run(quickSpec("base", false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "base" {
		t.Errorf("label = %q", res.Label)
	}
	if res.Instructions < 150_000 {
		t.Errorf("measured only %d instructions", res.Instructions)
	}
	if res.IPC <= 0 {
		t.Error("no IPC")
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	r := NewRunner()
	spec := quickSpec("d", false)
	spec.Warmup, spec.Measure = 0, 0
	spec.Benchmark = "noop"
	// Default windows are millions of instructions; just verify the
	// plumbing accepts zeros by using an explicit small sanity run
	// instead (the default-size run is exercised by the experiment
	// harnesses).
	spec.Warmup, spec.Measure = 10_000, 20_000
	res, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 20_000 {
		t.Errorf("instructions = %d", res.Instructions)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	r := NewRunner()
	spec := quickSpec("x", false)
	spec.Benchmark = "ghost"
	if _, err := r.Run(spec); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunAllOrderPreserved(t *testing.T) {
	r := NewRunner()
	specs := []RunSpec{quickSpec("a", false), quickSpec("b", true), quickSpec("c", false)}
	results, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, want := range []string{"a", "b", "c"} {
		if results[i].Label != want {
			t.Errorf("result %d label %q, want %q", i, results[i].Label, want)
		}
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	r := NewRunner()
	specs := []RunSpec{quickSpec("ok", false), {Benchmark: "ghost", Config: cpu.DefaultConfig()}}
	if _, err := r.RunAll(specs); err == nil {
		t.Error("error not propagated")
	}
}

func TestRunAllSharedCacheDeterminism(t *testing.T) {
	// Two identical specs run concurrently over the shared cached
	// workload must produce identical results (the workload is
	// immutable; per-run state is private).
	r := NewRunner()
	r.Workers = 2
	specs := []RunSpec{quickSpec("x", true), quickSpec("x", true)}
	results, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Cycles != results[1].Cycles || results[0].FE != results[1].FE {
		t.Error("concurrent identical runs diverged: shared state leak")
	}
}

func TestBTBWithEntries(t *testing.T) {
	cfg := BTBWithEntries(2048)
	if cfg.Entries != 2048 || cfg.Ways != btb.DefaultConfig().Ways {
		t.Errorf("got %+v", cfg)
	}
}

func TestAugmentedBTB(t *testing.T) {
	base := btb.DefaultConfig() // 8192 entries, 4-way, 78b entries
	sbbBits := 100_000          // ~12.2KB
	aug := AugmentedBTB(base, sbbBits)
	if aug.Entries <= base.Entries {
		t.Errorf("no capacity added: %+v", aug)
	}
	if aug.Entries%aug.Ways != 0 {
		t.Errorf("broken geometry: %+v", aug)
	}
	sets := base.Entries / base.Ways
	if aug.Entries/aug.Ways != sets {
		t.Errorf("set count changed: %+v", aug)
	}
	// The added ways must be buildable.
	if _, err := btb.New(aug); err != nil {
		t.Errorf("augmented config rejected: %v", err)
	}
	// Infinite and degenerate configs pass through.
	inf := AugmentedBTB(btb.Config{Infinite: true}, sbbBits)
	if !inf.Infinite {
		t.Error("infinite config mangled")
	}
	// Tiny extra bits still grant at least one way.
	aug2 := AugmentedBTB(base, 100)
	if aug2.Entries <= base.Entries {
		t.Errorf("minimum grant missing: %+v", aug2)
	}
}
