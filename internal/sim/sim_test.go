package sim

import (
	"strings"
	"testing"

	"repro/internal/btb"
	"repro/internal/cpu"
)

func quickSpec(label string, skia bool) RunSpec {
	cfg := cpu.DefaultConfig()
	if skia {
		cfg = cpu.SkiaConfig()
	}
	return RunSpec{
		Benchmark: "noop",
		Config:    cfg,
		Warmup:    50_000,
		Measure:   150_000,
		Label:     label,
	}
}

func TestWorkloadCache(t *testing.T) {
	r := NewRunner()
	w1, err := r.Workload("noop")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := r.Workload("noop")
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Error("workload not cached")
	}
	if _, err := r.Workload("nonexistent"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunBasic(t *testing.T) {
	r := NewRunner()
	res, err := r.Run(quickSpec("base", false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "base" {
		t.Errorf("label = %q", res.Label)
	}
	if res.Instructions < 150_000 {
		t.Errorf("measured only %d instructions", res.Instructions)
	}
	if res.IPC <= 0 {
		t.Error("no IPC")
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	r := NewRunner()
	spec := quickSpec("d", false)
	spec.Warmup, spec.Measure = 0, 0
	spec.Benchmark = "noop"
	// Default windows are millions of instructions; just verify the
	// plumbing accepts zeros by using an explicit small sanity run
	// instead (the default-size run is exercised by the experiment
	// harnesses).
	spec.Warmup, spec.Measure = 10_000, 20_000
	res, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 20_000 {
		t.Errorf("instructions = %d", res.Instructions)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	r := NewRunner()
	spec := quickSpec("x", false)
	spec.Benchmark = "ghost"
	if _, err := r.Run(spec); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunAllOrderPreserved(t *testing.T) {
	r := NewRunner()
	specs := []RunSpec{quickSpec("a", false), quickSpec("b", true), quickSpec("c", false)}
	results, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, want := range []string{"a", "b", "c"} {
		if results[i].Label != want {
			t.Errorf("result %d label %q, want %q", i, results[i].Label, want)
		}
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	r := NewRunner()
	specs := []RunSpec{quickSpec("ok", false), {Benchmark: "ghost", Config: cpu.DefaultConfig()}}
	if _, err := r.RunAll(specs); err == nil {
		t.Error("error not propagated")
	}
}

func TestRunAllSharedCacheDeterminism(t *testing.T) {
	// Two identical specs run concurrently over the shared cached
	// workload must produce identical results (the workload is
	// immutable; per-run state is private).
	r := NewRunner()
	r.Workers = 2
	specs := []RunSpec{quickSpec("x", true), quickSpec("x", true)}
	results, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Cycles != results[1].Cycles || results[0].FE != results[1].FE {
		t.Error("concurrent identical runs diverged: shared state leak")
	}
}

func TestBTBWithEntries(t *testing.T) {
	cfg := BTBWithEntries(2048)
	if cfg.Entries != 2048 || cfg.Ways != btb.DefaultConfig().Ways {
		t.Errorf("got %+v", cfg)
	}
}

func TestAugmentedBTB(t *testing.T) {
	base := btb.DefaultConfig() // 8192 entries, 4-way, 78b entries
	sbbBits := 100_000          // ~12.2KB
	aug := AugmentedBTB(base, sbbBits)
	if aug.Entries <= base.Entries {
		t.Errorf("no capacity added: %+v", aug)
	}
	if aug.Entries%aug.Ways != 0 {
		t.Errorf("broken geometry: %+v", aug)
	}
	sets := base.Entries / base.Ways
	if aug.Entries/aug.Ways != sets {
		t.Errorf("set count changed: %+v", aug)
	}
	// The added ways must be buildable.
	if _, err := btb.New(aug); err != nil {
		t.Errorf("augmented config rejected: %v", err)
	}
	// Infinite and degenerate configs pass through.
	inf := AugmentedBTB(btb.Config{Infinite: true}, sbbBits)
	if !inf.Infinite {
		t.Error("infinite config mangled")
	}
	// Tiny extra bits still grant at least one way.
	aug2 := AugmentedBTB(base, 100)
	if aug2.Entries <= base.Entries {
		t.Errorf("minimum grant missing: %+v", aug2)
	}
}

func TestRunAllAggregatesAllErrors(t *testing.T) {
	r := NewRunner()
	specs := []RunSpec{
		quickSpec("ok", false),
		{Benchmark: "ghost1", Config: cpu.DefaultConfig(), Label: "skia"},
		{Benchmark: "ghost2", Config: cpu.DefaultConfig(), Label: "base"},
	}
	results, err := r.RunAll(specs)
	if err == nil {
		t.Fatal("errors not propagated")
	}
	// Both failed specs must be named with benchmark and label, so one
	// bad spec no longer hides the rest of the suite.
	for _, want := range []string{"ghost1/skia", "ghost2/base"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error lacks %q:\n%v", want, err)
		}
	}
	// The successful sibling's result must survive.
	if len(results) != 3 || results[0].Label != "ok" || results[0].Instructions == 0 {
		t.Errorf("successful sibling result discarded: %+v", results[:1])
	}
}

func TestRunnerStats(t *testing.T) {
	r := NewRunner()
	if st := r.Stats(); st.Runs != 0 || st.Instructions != 0 || st.WallSeconds != 0 {
		t.Errorf("fresh runner has stats: %+v", st)
	}
	if _, err := r.RunAll([]RunSpec{quickSpec("a", false), quickSpec("b", true)}); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Runs != 2 {
		t.Errorf("Runs = %d", st.Runs)
	}
	// Each quickSpec simulates 50k warmup + 150k measured instructions.
	if st.Instructions != 2*200_000 {
		t.Errorf("Instructions = %d", st.Instructions)
	}
	if st.WallSeconds <= 0 || st.CPUSeconds <= 0 || st.InstructionsPerSec <= 0 {
		t.Errorf("timing not recorded: %+v", st)
	}
	if len(st.Specs) != 2 {
		t.Fatalf("Specs = %+v", st.Specs)
	}
	// Sorted by benchmark then label; both specs run "noop".
	if st.Specs[0].Label != "a" || st.Specs[1].Label != "b" {
		t.Errorf("spec timings not sorted: %+v", st.Specs)
	}
	for _, sp := range st.Specs {
		if sp.Benchmark != "noop" || sp.Instructions != 200_000 || sp.Seconds <= 0 {
			t.Errorf("bad spec timing: %+v", sp)
		}
	}
	// Failed runs must not book timings.
	bad := quickSpec("x", false)
	bad.Benchmark = "ghost"
	if _, err := r.Run(bad); err == nil {
		t.Fatal("ghost accepted")
	}
	if got := r.Stats().Runs; got != 2 {
		t.Errorf("failed run booked a timing: Runs = %d", got)
	}
}
