package sim

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/btb"
	"repro/internal/cpu"
	"repro/internal/metrics"
)

func quickSpec(label string, skia bool) RunSpec {
	cfg := cpu.DefaultConfig()
	if skia {
		cfg = cpu.SkiaConfig()
	}
	return RunSpec{
		Benchmark: "noop",
		Config:    cfg,
		Warmup:    50_000,
		Measure:   150_000,
		Label:     label,
	}
}

func TestWorkloadCache(t *testing.T) {
	r := NewRunner()
	w1, err := r.Workload("noop")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := r.Workload("noop")
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Error("workload not cached")
	}
	if _, err := r.Workload("nonexistent"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunBasic(t *testing.T) {
	r := NewRunner()
	res, err := r.Run(quickSpec("base", false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "base" {
		t.Errorf("label = %q", res.Label)
	}
	if res.Instructions < 150_000 {
		t.Errorf("measured only %d instructions", res.Instructions)
	}
	if res.IPC <= 0 {
		t.Error("no IPC")
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	r := NewRunner()
	spec := quickSpec("d", false)
	spec.Warmup, spec.Measure = 0, 0
	spec.Benchmark = "noop"
	// Default windows are millions of instructions; just verify the
	// plumbing accepts zeros by using an explicit small sanity run
	// instead (the default-size run is exercised by the experiment
	// harnesses).
	spec.Warmup, spec.Measure = 10_000, 20_000
	res, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 20_000 {
		t.Errorf("instructions = %d", res.Instructions)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	r := NewRunner()
	spec := quickSpec("x", false)
	spec.Benchmark = "ghost"
	if _, err := r.Run(spec); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunAllOrderPreserved(t *testing.T) {
	r := NewRunner()
	specs := []RunSpec{quickSpec("a", false), quickSpec("b", true), quickSpec("c", false)}
	results, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, want := range []string{"a", "b", "c"} {
		if results[i].Label != want {
			t.Errorf("result %d label %q, want %q", i, results[i].Label, want)
		}
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	r := NewRunner()
	specs := []RunSpec{quickSpec("ok", false), {Benchmark: "ghost", Config: cpu.DefaultConfig()}}
	if _, err := r.RunAll(specs); err == nil {
		t.Error("error not propagated")
	}
}

func TestRunAllSharedCacheDeterminism(t *testing.T) {
	// Two identical specs run concurrently over the shared cached
	// workload must produce identical results (the workload is
	// immutable; per-run state is private).
	r := NewRunner()
	r.Workers = 2
	specs := []RunSpec{quickSpec("x", true), quickSpec("x", true)}
	results, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Cycles != results[1].Cycles || results[0].FE != results[1].FE {
		t.Error("concurrent identical runs diverged: shared state leak")
	}
}

func TestBTBWithEntries(t *testing.T) {
	cfg := BTBWithEntries(2048)
	if cfg.Entries != 2048 || cfg.Ways != btb.DefaultConfig().Ways {
		t.Errorf("got %+v", cfg)
	}
}

func TestAugmentedBTB(t *testing.T) {
	base := btb.DefaultConfig() // 8192 entries, 4-way, 78b entries
	sbbBits := 100_000          // ~12.2KB
	aug := AugmentedBTB(base, sbbBits)
	if aug.Entries <= base.Entries {
		t.Errorf("no capacity added: %+v", aug)
	}
	if aug.Entries%aug.Ways != 0 {
		t.Errorf("broken geometry: %+v", aug)
	}
	sets := base.Entries / base.Ways
	if aug.Entries/aug.Ways != sets {
		t.Errorf("set count changed: %+v", aug)
	}
	// The added ways must be buildable.
	if _, err := btb.New(aug); err != nil {
		t.Errorf("augmented config rejected: %v", err)
	}
	// Infinite and degenerate configs pass through.
	inf := AugmentedBTB(btb.Config{Infinite: true}, sbbBits)
	if !inf.Infinite {
		t.Error("infinite config mangled")
	}
	// Tiny extra bits still grant at least one way.
	aug2 := AugmentedBTB(base, 100)
	if aug2.Entries <= base.Entries {
		t.Errorf("minimum grant missing: %+v", aug2)
	}
}

func TestRunAllAggregatesAllErrors(t *testing.T) {
	r := NewRunner()
	specs := []RunSpec{
		quickSpec("ok", false),
		{Benchmark: "ghost1", Config: cpu.DefaultConfig(), Label: "skia"},
		{Benchmark: "ghost2", Config: cpu.DefaultConfig(), Label: "base"},
	}
	results, err := r.RunAll(specs)
	if err == nil {
		t.Fatal("errors not propagated")
	}
	// Both failed specs must be named with benchmark and label, so one
	// bad spec no longer hides the rest of the suite.
	for _, want := range []string{"ghost1/skia", "ghost2/base"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error lacks %q:\n%v", want, err)
		}
	}
	// The successful sibling's result must survive.
	if len(results) != 3 || results[0].Label != "ok" || results[0].Instructions == 0 {
		t.Errorf("successful sibling result discarded: %+v", results[:1])
	}
}

func TestRunnerStats(t *testing.T) {
	r := NewRunner()
	if st := r.Stats(); st.Runs != 0 || st.Instructions != 0 || st.WallSeconds != 0 {
		t.Errorf("fresh runner has stats: %+v", st)
	}
	if _, err := r.RunAll([]RunSpec{quickSpec("a", false), quickSpec("b", true)}); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Runs != 2 {
		t.Errorf("Runs = %d", st.Runs)
	}
	// Each quickSpec simulates 50k warmup + 150k measured instructions.
	if st.Instructions != 2*200_000 {
		t.Errorf("Instructions = %d", st.Instructions)
	}
	if st.WallSeconds <= 0 || st.CPUSeconds <= 0 || st.InstructionsPerSec <= 0 {
		t.Errorf("timing not recorded: %+v", st)
	}
	if len(st.Specs) != 2 {
		t.Fatalf("Specs = %+v", st.Specs)
	}
	// Sorted by benchmark then label; both specs run "noop".
	if st.Specs[0].Label != "a" || st.Specs[1].Label != "b" {
		t.Errorf("spec timings not sorted: %+v", st.Specs)
	}
	for _, sp := range st.Specs {
		if sp.Benchmark != "noop" || sp.Instructions != 200_000 || sp.Seconds <= 0 {
			t.Errorf("bad spec timing: %+v", sp)
		}
	}
	// Failed runs must not book timings.
	bad := quickSpec("x", false)
	bad.Benchmark = "ghost"
	if _, err := r.Run(bad); err == nil {
		t.Fatal("ghost accepted")
	}
	if got := r.Stats().Runs; got != 2 {
		t.Errorf("failed run booked a timing: Runs = %d", got)
	}
}

// TestRunIntervalsSumToAggregate is the acceptance check for the
// observability layer: with interval collection enabled, the
// per-interval counter deltas (including the final partial interval)
// must sum exactly to the run's aggregate frontend.Stats and the
// interval widths to the measured window.
func TestRunIntervalsSumToAggregate(t *testing.T) {
	r := NewRunner()
	spec := quickSpec("iv", true)
	spec.Benchmark = "voter"
	spec.Interval = 40_000 // deliberately misaligned with 150k measured
	res, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) == 0 {
		t.Fatal("no intervals collected")
	}
	var insts, cycles, misses, covered, dec, exe, cond uint64
	for _, iv := range res.Intervals {
		insts += iv.Instructions
		cycles += iv.Cycles
		misses += iv.BTBMisses
		covered += iv.SBBCovered
		dec += iv.DecodeResteers
		exe += iv.ExecResteers
		cond += iv.CondMispredicts
	}
	if insts != res.Instructions || cycles != res.Cycles {
		t.Errorf("interval sums %d insts / %d cycles, aggregate %d / %d",
			insts, cycles, res.Instructions, res.Cycles)
	}
	fe := res.FE
	if misses != fe.BTBMissTotal() {
		t.Errorf("BTB miss sum %d, aggregate %d", misses, fe.BTBMissTotal())
	}
	if covered != fe.SBBCoveredTotal() {
		t.Errorf("SBB covered sum %d, aggregate %d", covered, fe.SBBCoveredTotal())
	}
	if dec != fe.DecodeResteers || exe != fe.ExecResteers {
		t.Errorf("resteer sums %d/%d, aggregate %d/%d", dec, exe, fe.DecodeResteers, fe.ExecResteers)
	}
	if cond != fe.CondMispredicts {
		t.Errorf("cond mispredict sum %d, aggregate %d", cond, fe.CondMispredicts)
	}
	// Intervals cover contiguous, strictly increasing ranges.
	for i := 1; i < len(res.Intervals); i++ {
		if res.Intervals[i].StartInstruction != res.Intervals[i-1].EndInstruction {
			t.Errorf("interval %d not contiguous: %+v after %+v",
				i, res.Intervals[i], res.Intervals[i-1])
		}
	}
}

// TestRunIntervalLargerThanWindow: a single partial interval covers the
// whole measured window.
func TestRunIntervalLargerThanWindow(t *testing.T) {
	r := NewRunner()
	spec := quickSpec("big", false)
	spec.Interval = 10_000_000
	res, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) != 1 {
		t.Fatalf("intervals = %d, want 1", len(res.Intervals))
	}
	if res.Intervals[0].Instructions != res.Instructions {
		t.Errorf("partial interval %d insts, window %d",
			res.Intervals[0].Instructions, res.Instructions)
	}
}

// TestRunnerIntervalDefault: the runner-level knob enables collection
// for specs that leave Interval zero, and summaries land in
// IntervalSummaries sorted like Stats().Specs.
func TestRunnerIntervalDefault(t *testing.T) {
	r := NewRunner()
	r.Interval = 50_000
	if _, err := r.RunAll([]RunSpec{quickSpec("a", false), quickSpec("b", true)}); err != nil {
		t.Fatal(err)
	}
	sums := r.IntervalSummaries()
	if len(sums) != 2 {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[0].Label != "a" || sums[1].Label != "b" {
		t.Errorf("summaries not sorted: %+v", sums)
	}
	for _, s := range sums {
		if s.Benchmark != "noop" || s.Summary.Count == 0 || s.Summary.Instructions == 0 {
			t.Errorf("empty summary: %+v", s)
		}
		if s.Summary.Every != 50_000 {
			t.Errorf("every = %d", s.Summary.Every)
		}
	}
	// Disabled runners collect nothing.
	r2 := NewRunner()
	if _, err := r2.Run(quickSpec("off", false)); err != nil {
		t.Fatal(err)
	}
	if got := r2.IntervalSummaries(); len(got) != 0 {
		t.Errorf("intervals collected while disabled: %+v", got)
	}
}

// TestRunTracerRecordsEvents: a per-spec tracer sees the measurement
// window's re-steer and shadow-branch events.
func TestRunTracerRecordsEvents(t *testing.T) {
	r := NewRunner()
	spec := quickSpec("tr", true)
	spec.Benchmark = "voter"
	tr := metrics.NewRingTracer(1 << 16)
	spec.Tracer = tr
	res, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total() == 0 {
		t.Fatal("no events traced")
	}
	kinds := map[metrics.EventKind]uint64{}
	for _, e := range tr.Events() {
		kinds[e.Kind]++
	}
	// The traced decode re-steer count can only be bounded by the
	// aggregate (the ring may have dropped events); with a roomy ring
	// and this window nothing drops, so the counts must match.
	if tr.Dropped() == 0 && kinds[metrics.EvDecodeResteer] != res.FE.DecodeResteers {
		t.Errorf("traced %d decode re-steers, stats say %d",
			kinds[metrics.EvDecodeResteer], res.FE.DecodeResteers)
	}
	if res.FE.SBDInserts > 0 && kinds[metrics.EvSBDInsertU]+kinds[metrics.EvSBDInsertR] == 0 {
		t.Error("SBD inserted but no insert events traced")
	}
}

// TestRunAllCollectorsRaceFree runs many interval- and tracer-equipped
// specs concurrently; under `go test -race` (the CI race job) this
// fails loudly if per-spec capture shares state across workers.
func TestRunAllCollectorsRaceFree(t *testing.T) {
	r := NewRunner()
	r.Workers = 4
	r.Interval = 30_000
	var specs []RunSpec
	tracers := make([]*metrics.RingTracer, 6)
	for i := range tracers {
		tracers[i] = metrics.NewRingTracer(1 << 12)
		s := quickSpec("t"+strconv.Itoa(i), i%2 == 0)
		s.Tracer = tracers[i]
		specs = append(specs, s)
	}
	results, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if len(res.Intervals) == 0 {
			t.Errorf("spec %d collected no intervals", i)
		}
	}
	if got := len(r.IntervalSummaries()); got != len(specs) {
		t.Errorf("summaries = %d, want %d", got, len(specs))
	}
	if got := len(r.Stats().Specs); got != len(specs) {
		t.Errorf("timings = %d, want %d", got, len(specs))
	}
}

// TestAttributionConservation pins the attribution engine's two
// conservation laws end to end: every BTB miss lands in exactly one
// cause bucket (counts sum to the front-end's miss total) and every
// decoder-idle cycle lands in exactly one stall account (counts sum
// to DecodeIdleCycles).
func TestAttributionConservation(t *testing.T) {
	for _, skia := range []bool{false, true} {
		label := "base"
		if skia {
			label = "skia"
		}
		r := NewRunner()
		spec := quickSpec(label, skia)
		spec.Attrib = true
		res, err := r.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		at := res.Attribution
		if at == nil {
			t.Fatalf("%s: Attrib spec returned nil Attribution", label)
		}
		var causeSum uint64
		for _, c := range at.Causes {
			causeSum += c.Count
		}
		if causeSum != at.BTBMisses {
			t.Errorf("%s: cause counts sum to %d, want %d", label, causeSum, at.BTBMisses)
		}
		if at.BTBMisses != res.FE.BTBMissTotal() {
			t.Errorf("%s: attribution saw %d misses, front-end counted %d",
				label, at.BTBMisses, res.FE.BTBMissTotal())
		}
		var stallSum uint64
		for _, s := range at.Stalls {
			stallSum += s.Count
		}
		if stallSum != at.StallCycles {
			t.Errorf("%s: stall counts sum to %d, want %d", label, stallSum, at.StallCycles)
		}
		if at.StallCycles != res.FE.DecodeIdleCycles {
			t.Errorf("%s: attribution saw %d stall cycles, front-end counted %d",
				label, at.StallCycles, res.FE.DecodeIdleCycles)
		}
		if skia {
			var sbbHit uint64
			for _, c := range at.Causes {
				if c.Cause == "sbb-hit" {
					sbbHit = c.Count
				}
			}
			if sbbHit != res.FE.SBBCoveredTotal() {
				t.Errorf("skia: sbb-hit cause = %d, SBBCoveredTotal = %d",
					sbbHit, res.FE.SBBCoveredTotal())
			}
		}
		if got := len(r.AttributionSummaries()); got != 1 {
			t.Errorf("%s: AttributionSummaries = %d entries, want 1", label, got)
		}
	}
}

// TestAttributionDisabledByDefault guards the nil-checked fast path:
// no engine, no summary.
func TestAttributionDisabledByDefault(t *testing.T) {
	r := NewRunner()
	res, err := r.Run(quickSpec("plain", true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attribution != nil {
		t.Error("Attribution non-nil without Attrib")
	}
	if len(r.AttributionSummaries()) != 0 {
		t.Error("runner recorded attribution without Attrib")
	}
}
