package sim

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/metrics"
)

// sampleSpec is the shared window for sampling tests: large enough for
// the workloads to leave transients, small enough to keep the suite
// fast.
func sampleSpec(bench string, skia bool) RunSpec {
	cfg := cpu.DefaultConfig()
	label := "base"
	if skia {
		cfg = cpu.SkiaConfig()
		label = "skia"
	}
	return RunSpec{
		Benchmark: bench,
		Config:    cfg,
		Warmup:    100_000,
		Measure:   1_000_000,
		Label:     bench + "/" + label,
	}
}

// TestSampledWithinCIOfExact is the headline accuracy contract: for
// every registered metric, the sampled point estimate must land within
// its own stated 95% confidence interval (plus a small tolerance floor
// for zero-variance metrics) of the exact value. This is the same gate
// skiacmp -sample-ci applies between report files in CI.
func TestSampledWithinCIOfExact(t *testing.T) {
	for _, bench := range []string{"voter", "noop"} {
		for _, skia := range []bool{false, true} {
			spec := sampleSpec(bench, skia)
			t.Run(spec.Label, func(t *testing.T) {
				r := NewRunner()
				exact, err := r.Run(spec)
				if err != nil {
					t.Fatal(err)
				}

				sspec := spec
				sspec.Sample = &SamplePlan{Intervals: 10}
				sampled, err := r.Run(sspec)
				if err != nil {
					t.Fatal(err)
				}
				if sampled.Sampling == nil {
					t.Fatal("sampled run published no sampling summary")
				}

				exactVals := map[string]float64{}
				for _, m := range exactEcho(&exact.Result, 0).Metrics {
					exactVals[m.Name] = m.Mean
				}
				for _, m := range sampled.Sampling.Metrics {
					want := exactVals[m.Name]
					tol := m.CI + 0.01 + 0.05*math.Abs(want)
					if d := math.Abs(m.Mean - want); d > tol {
						t.Errorf("%s: sampled %.6g vs exact %.6g: |Δ|=%.6g exceeds CI+tol %.6g",
							m.Name, m.Mean, want, d, tol)
					}
				}
			})
		}
	}
}

// TestSampledShardCountInvariant: the same plan run serially and across
// shards must produce DeepEqual results — the whole Result, including
// the sampling summary, spliced intervals, and every counter. This is
// the sharding determinism contract the CI sampling job gates.
func TestSampledShardCountInvariant(t *testing.T) {
	base := sampleSpec("voter", true)
	base.Interval = 50_000

	var results []Result
	for _, shards := range []int{1, 4, 16} {
		spec := base
		spec.Sample = &SamplePlan{Intervals: 8, Shards: shards}
		r := NewRunner()
		res, err := r.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("sharded run %d differs from serial run:\n  serial:  %+v\n  sharded: %+v",
				i, results[0], results[i])
		}
	}
}

// TestSampledRepeatable: two identical sampled runs are DeepEqual.
func TestSampledRepeatable(t *testing.T) {
	spec := sampleSpec("voter", true)
	spec.Sample = &SamplePlan{Intervals: 6, Shards: 3}
	a, err := NewRunner().Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner().Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sampled run not repeatable:\n  a: %+v\n  b: %+v", a, b)
	}
}

// TestSampleConservation checks the instruction accounting of a sampled
// run: the three phase counters partition the advanced total exactly,
// the planned window is echoed, and each phase is within its structural
// bounds (measured ≈ K·L up to retire-width overshoot per interval;
// skipped + micro-warmup equals the sum of interval start positions).
func TestSampleConservation(t *testing.T) {
	spec := sampleSpec("voter", true)
	plan := SamplePlan{Intervals: 8, Shards: 2}
	spec.Sample = &plan
	res, err := NewRunner().Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sampling
	if s == nil {
		t.Fatal("no sampling summary")
	}
	c := s.Counters
	if got := c.SkippedInstructions + c.MicroWarmupInstructions + c.MeasuredInstructions; got != c.AdvancedInstructions {
		t.Errorf("conservation violated: skipped %d + micro-warmup %d + measured %d = %d, advanced %d",
			c.SkippedInstructions, c.MicroWarmupInstructions, c.MeasuredInstructions, got, c.AdvancedInstructions)
	}
	_, meas := spec.windows()
	if c.PlannedWindow != meas {
		t.Errorf("planned window %d, want %d", c.PlannedWindow, meas)
	}

	np := plan.normalized(meas)
	// Every interval measures at least IntervalInsts and overshoots by
	// less than the retire width.
	K := uint64(np.Intervals)
	minMeasured := K * np.IntervalInsts
	slack := K * uint64(spec.Config.RetireWidth)
	if c.MeasuredInstructions < minMeasured || c.MeasuredInstructions >= minMeasured+slack {
		t.Errorf("measured %d outside [%d, %d)", c.MeasuredInstructions, minMeasured, minMeasured+slack)
	}
	// The skip pass is chained: one cursor walks the window once, so
	// the total skipped distance is the last interval's start minus its
	// micro-warmup — and in particular strictly less than the window,
	// never the Σ start_i a per-interval re-skip would pay.
	last := np.intervalStart(np.Intervals-1, meas)
	mw := np.MicroWarmup
	if mw > last {
		mw = last
	}
	if want := last - mw; c.SkippedInstructions != want {
		t.Errorf("skipped %d, want chained cursor distance %d", c.SkippedInstructions, want)
	}
	if c.SkippedInstructions >= meas {
		t.Errorf("skipped %d >= window %d: skip pass is not chained", c.SkippedInstructions, meas)
	}
	// The aggregate result's instruction count is the measured total.
	if res.Instructions != c.MeasuredInstructions {
		t.Errorf("aggregate instructions %d != measured %d", res.Instructions, c.MeasuredInstructions)
	}
}

// TestSampledIntervalSplice: interval rows from a sampled run are
// renumbered sequentially and rebased onto the measurement window's
// instruction axis — indices strictly increasing, instruction spans
// inside [0, meas), cycle spans monotonic.
func TestSampledIntervalSplice(t *testing.T) {
	spec := sampleSpec("voter", true)
	spec.Interval = 25_000
	spec.Sample = &SamplePlan{Intervals: 5}
	res, err := NewRunner().Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) == 0 {
		t.Fatal("no interval rows collected")
	}
	_, meas := spec.windows()
	var prevCycle uint64
	for i, row := range res.Intervals {
		if row.Index != i {
			t.Fatalf("row %d has index %d", i, row.Index)
		}
		if row.EndInstruction <= row.StartInstruction {
			t.Fatalf("row %d: empty instruction span [%d, %d]", i, row.StartInstruction, row.EndInstruction)
		}
		if row.EndInstruction > meas+uint64(spec.Config.RetireWidth) {
			t.Fatalf("row %d: end instruction %d beyond window %d", i, row.EndInstruction, meas)
		}
		if row.StartCycle < prevCycle {
			t.Fatalf("row %d: cycle axis not monotonic: start %d < previous end %d", i, row.StartCycle, prevCycle)
		}
		if row.EndCycle < row.StartCycle {
			t.Fatalf("row %d: negative cycle span", i)
		}
		prevCycle = row.EndCycle
	}
}

// TestCheckpointExactBitIdentical: enabling warmup checkpointing must
// not change exact results at all — the clone is an exact state copy,
// so byte-identical JSON is required, for both fresh builds (the first
// run populating a cell) and checkpoint hits (subsequent runs cloning
// it).
func TestCheckpointExactBitIdentical(t *testing.T) {
	specs := []RunSpec{
		sampleSpec("voter", false),
		sampleSpec("voter", true),
		sampleSpec("noop", true),
	}
	plain := NewRunner()
	ckpt := NewRunner()
	ckpt.Checkpoint = true
	for _, spec := range specs {
		want, err := plain.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		// Twice: first run builds the checkpoint, second hits it.
		for pass := 0; pass < 2; pass++ {
			got, err := ckpt.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			jw, _ := json.Marshal(want)
			jg, _ := json.Marshal(got)
			if string(jw) != string(jg) {
				t.Errorf("%s pass %d: checkpointed run not byte-identical:\n  want %s\n  got  %s",
					spec.Label, pass, jw, jg)
			}
		}
	}
}

// TestCheckpointCacheSharedAcrossRunners: a CheckpointCache handed to
// two runners must let the second reuse the first's warmed master —
// observable as identical results plus the warmed instruction volume
// being booked against the first runner only once per cell.
func TestCheckpointCacheSharedAcrossRunners(t *testing.T) {
	spec := sampleSpec("voter", false)
	cache := NewCheckpointCache()
	a := NewRunner()
	a.Checkpoint = true
	a.Checkpoints = cache
	b := NewRunner()
	b.Checkpoint = true
	b.Checkpoints = cache
	want, err := a.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	jw, _ := json.Marshal(want)
	jg, _ := json.Marshal(got)
	if string(jw) != string(jg) {
		t.Errorf("shared-cache run not byte-identical:\n  want %s\n  got  %s", jw, jg)
	}
	warm, _ := spec.windows()
	key, err := checkpointKey(spec, warm)
	if err != nil {
		t.Fatal(err)
	}
	cell := cache.cell(key)
	if cell.core == nil {
		t.Fatalf("shared cache has no warmed master under %q after two runs", key)
	}
	// A fresh runner on the same cache must hit, not re-warm: runs
	// continue on clones, so the parked master's retire count (warmup,
	// give or take the final cycle's retire width) never moves.
	parked := cell.core.Retired()
	if parked < warm {
		t.Fatalf("warmed master retired %d < warmup %d", parked, warm)
	}
	c := NewRunner()
	c.Checkpoint = true
	c.Checkpoints = cache
	if _, err := c.Run(spec); err != nil {
		t.Fatal(err)
	}
	if got := cell.core.Retired(); got != parked {
		t.Errorf("warmed master advanced from %d to %d retired; clones must leave it parked", parked, got)
	}
}

// TestCheckpointKeySeparatesConfigs: different configs, warmups, or
// benchmarks must never share a checkpoint cell.
func TestCheckpointKeySeparatesConfigs(t *testing.T) {
	a := sampleSpec("voter", false)
	b := sampleSpec("voter", true)
	c := a
	c.Warmup = 200_000
	d := sampleSpec("noop", false)
	keys := map[string]string{}
	for _, spec := range []RunSpec{a, b, c, d} {
		warm, _ := spec.windows()
		k, err := checkpointKey(spec, warm)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := keys[k]; dup {
			t.Errorf("specs %s and %s share checkpoint key %q", prev, spec.Label, k)
		}
		keys[k] = spec.Label
	}
	// Label and sampling plan must NOT affect the key: they cannot
	// change warmed state.
	e := a
	e.Label = "other"
	e.Sample = &SamplePlan{Intervals: 4}
	warm, _ := a.windows()
	ka, _ := checkpointKey(a, warm)
	ke, _ := checkpointKey(e, warm)
	if ka != ke {
		t.Errorf("label/sampling changed checkpoint key: %q vs %q", ka, ke)
	}
}

// TestSampleEchoPublishesExactRow: with SampleEcho set, an exact run
// carries a sampling summary marked Exact whose means are the exact
// metric values with zero confidence intervals.
func TestSampleEchoPublishesExactRow(t *testing.T) {
	r := NewRunner()
	r.SampleEcho = true
	spec := sampleSpec("voter", true)
	res, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sampling
	if s == nil {
		t.Fatal("SampleEcho produced no sampling summary")
	}
	if !s.Exact {
		t.Error("echo row not marked exact")
	}
	if len(s.Metrics) != len(sampleMetrics) {
		t.Fatalf("echo has %d metrics, want %d", len(s.Metrics), len(sampleMetrics))
	}
	for i, m := range s.Metrics {
		if m.CI != 0 {
			t.Errorf("%s: exact echo has nonzero CI %g", m.Name, m.CI)
		}
		if want := sampleMetrics[i].get(&res.Result); m.Mean != want {
			t.Errorf("%s: echo mean %g, exact value %g", m.Name, m.Mean, want)
		}
	}
	sums := r.SamplingSummaries()
	if len(sums) != 1 || !sums[0].Summary.Exact {
		t.Fatalf("runner summaries = %+v, want one exact row", sums)
	}
}

// TestSamplingRejectsTracerAndAttrib: the spliced stream has no single
// cycle axis and attribution summaries cannot be merged, so sampling
// must refuse both with a clear error rather than mis-report.
func TestSamplingRejectsTracerAndAttrib(t *testing.T) {
	spec := sampleSpec("voter", true)
	spec.Sample = &SamplePlan{Intervals: 2}
	spec.Tracer = metrics.NewRingTracer(16)
	if _, err := NewRunner().Run(spec); err == nil || !strings.Contains(err.Error(), "tracing") {
		t.Errorf("tracer + sampling: got %v, want tracing error", err)
	}
	spec.Tracer = nil
	spec.Attrib = true
	if _, err := NewRunner().Run(spec); err == nil || !strings.Contains(err.Error(), "attribution") {
		t.Errorf("attrib + sampling: got %v, want attribution error", err)
	}
}

// TestSamplePlanNormalization pins the plan defaulting rules.
func TestSamplePlanNormalization(t *testing.T) {
	np := SamplePlan{}.normalized(1_000_000)
	if np.Intervals != DefaultSampleIntervals {
		t.Errorf("default intervals %d, want %d", np.Intervals, DefaultSampleIntervals)
	}
	if want := uint64(1_000_000) / uint64(np.Intervals) / 10; np.IntervalInsts != want {
		t.Errorf("default interval insts %d, want %d", np.IntervalInsts, want)
	}
	if np.MicroWarmup != np.IntervalInsts/2 {
		t.Errorf("default micro-warmup %d, want %d", np.MicroWarmup, np.IntervalInsts/2)
	}
	if np.Shards != 1 {
		t.Errorf("default shards %d, want 1", np.Shards)
	}
	// Tiny windows still produce a positive detail length.
	if np := (SamplePlan{Intervals: 4}).normalized(8); np.IntervalInsts == 0 {
		t.Error("tiny window normalized to zero interval length")
	}
}

// TestRunnerSampleDefaultAndOverride: Runner.Sample applies to specs
// without a plan; a spec-level plan wins.
func TestRunnerSampleDefaultAndOverride(t *testing.T) {
	r := NewRunner()
	r.Sample = &SamplePlan{Intervals: 4}
	spec := sampleSpec("voter", true)
	res, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampling == nil || res.Sampling.Intervals != 4 {
		t.Fatalf("runner default plan not applied: %+v", res.Sampling)
	}
	spec.Sample = &SamplePlan{Intervals: 2}
	res, err = r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampling == nil || res.Sampling.Intervals != 2 {
		t.Fatalf("spec override not applied: %+v", res.Sampling)
	}
}

// TestPlannedInstsSampled: the progress plan for a sampled spec counts
// warmup plus per-interval detail only (micro-warmup clipped at each
// interval's start), never the functionally skipped bulk.
func TestPlannedInstsSampled(t *testing.T) {
	r := NewRunner()
	spec := sampleSpec("voter", true)
	warm, meas := spec.windows()
	if got := r.plannedInsts(spec); got != warm+meas {
		t.Errorf("exact planned %d, want %d", got, warm+meas)
	}
	plan := SamplePlan{Intervals: 4, IntervalInsts: 10_000, MicroWarmup: 5_000}
	spec.Sample = &plan
	// Interval 0 starts at the warmup boundary: its micro-warmup clips
	// to zero. The rest pay the full micro-warmup.
	want := warm + 4*10_000 + 3*5_000
	if got := r.plannedInsts(spec); got != want {
		t.Errorf("sampled planned %d, want %d", got, want)
	}
}
