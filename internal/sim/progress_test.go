package sim

import (
	"sync"
	"testing"

	"repro/internal/cpu"
)

// progressLog collects OnProgress callbacks concurrency-safely.
type progressLog struct {
	mu      sync.Mutex
	done    []uint64
	planned []uint64
}

func (p *progressLog) hook(done, planned uint64) {
	p.mu.Lock()
	p.done = append(p.done, done)
	p.planned = append(p.planned, planned)
	p.mu.Unlock()
}

// TestRunnerProgressSingleRun: one run publishes monotonic done counts
// at chunk granularity, the plan is registered before the first chunk,
// and the final done lands on the planned warmup+measure volume (up to
// the core's per-call retire-width overshoot).
func TestRunnerProgressSingleRun(t *testing.T) {
	r := NewRunner()
	var log progressLog
	r.OnProgress = log.hook
	const warm, meas = 100_000, 600_000
	_, err := r.Run(RunSpec{Benchmark: "noop", Config: cpu.SkiaConfig(), Warmup: warm, Measure: meas})
	if err != nil {
		t.Fatal(err)
	}
	if len(log.done) < 2 {
		t.Fatalf("only %d progress callbacks for a %d-instruction run", len(log.done), warm+meas)
	}
	// First callback is the plan registration (done still 0).
	if log.done[0] != 0 || log.planned[0] != warm+meas {
		t.Errorf("first callback = (%d, %d), want (0, %d)", log.done[0], log.planned[0], warm+meas)
	}
	for i := 1; i < len(log.done); i++ {
		if log.done[i] < log.done[i-1] {
			t.Errorf("done regressed: %d after %d", log.done[i], log.done[i-1])
		}
		if log.planned[i] != warm+meas {
			t.Errorf("planned drifted to %d", log.planned[i])
		}
	}
	final := log.done[len(log.done)-1]
	if final < warm+meas || final > warm+meas+64 {
		t.Errorf("final done = %d, want ~%d", final, warm+meas)
	}
	done, planned := r.Progress()
	if done != final || planned != warm+meas {
		t.Errorf("Progress() = (%d, %d), want (%d, %d)", done, planned, final, warm+meas)
	}
}

// TestRunnerProgressRunAllPreplans: RunAll registers the whole spec
// list's volume before any instruction retires, so the completion
// denominator is stable from the first chunk — the property the
// service's ETA depends on.
func TestRunnerProgressRunAllPreplans(t *testing.T) {
	r := NewRunner()
	r.Workers = 2
	var log progressLog
	r.OnProgress = log.hook
	specs := []RunSpec{
		{Benchmark: "noop", Config: cpu.SkiaConfig(), Warmup: 50_000, Measure: 300_000},
		{Benchmark: "voter", Config: cpu.SkiaConfig(), Warmup: 50_000, Measure: 300_000},
	}
	if _, err := r.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	const total = 2 * 350_000
	log.mu.Lock()
	defer log.mu.Unlock()
	if log.planned[0] != total {
		t.Errorf("first callback planned = %d, want %d (pre-registered)", log.planned[0], total)
	}
	for i, p := range log.planned {
		if p != total {
			t.Errorf("callback %d planned = %d, want %d", i, p, total)
		}
	}
	done, planned := r.Progress()
	if planned != total {
		t.Errorf("planned = %d, want %d", planned, total)
	}
	if done < total || done > total+128 {
		t.Errorf("done = %d, want ~%d", done, total)
	}
}
